package lsasg

import (
	"context"

	"lsasg/internal/serve"
)

// Pair is one communication request between two node indices, the unit
// Serve consumes.
type Pair struct {
	Src, Dst int
}

// ServeStats aggregates one Serve run. Every field is deterministic for a
// fixed seed and batch schedule — byte-identical across parallelism
// settings.
type ServeStats struct {
	// Requests is the number of requests served.
	Requests int64
	// Batches is the number of adjustment batches applied; one topology
	// snapshot was published per batch.
	Batches int64
	// MeanRouteDistance is the mean d_S(σ) measured in the snapshot each
	// request was routed against.
	MeanRouteDistance float64
	// MaxRouteDistance is the worst snapshot routing distance observed. For
	// a sharded run this is the worst single LEG (the legs of one
	// cross-shard request finish in different shards' pipelines, so
	// whole-request maxima are not tracked) while MeanRouteDistance spans
	// whole requests — with heavily cross-shard traffic the max can
	// therefore legitimately sit below the mean.
	MaxRouteDistance int
	// TotalTransformRounds sums ρ over all applied adjustments.
	TotalTransformRounds int64
	// MeanAdjustLag is the mean number of adjustments pending (own included)
	// when a request was routed: requests route against the previous batch's
	// snapshot, so the lag averages (BatchSize+1)/2 on full batches.
	MeanAdjustLag float64
	// MaxAdjustLag is the worst such lag (at most BatchSize).
	MaxAdjustLag int
	// Height and DummyCount describe the live topology after the run.
	Height     int
	DummyCount int

	// The sharded fields below stay zero for an unsharded Network.Serve.

	// Shards is the partition count the run served across (0 for a plain
	// Network).
	Shards int
	// CrossShardRequests counts requests whose endpoints resolved to
	// different shards and were routed source→boundary, boundary→destination.
	CrossShardRequests int64
	// Rebalances and MigratedKeys report the skew-driven rebalancer's
	// activity during the run (window-barrier migrations).
	Rebalances   int64
	MigratedKeys int64

	// The KV fields below stay zero for pure-route runs; ServeOps fills
	// them. Counts are at request granularity (a cross-shard scan is one
	// Scan regardless of how many shards it fanned over).
	Gets           int64
	GetHits        int64 // gets that found a value
	Puts           int64
	PutInserts     int64 // puts that joined a new key (vs updated in place)
	Deletes        int64
	DeleteHits     int64 // deletes that removed something
	Scans          int64
	ScannedEntries int64 // entries returned across all scans
}

// engineServeStats folds one engine pipeline run into the public shape —
// the single assembly point shared by Serve and ServeOps.
func engineServeStats(st serve.Stats, height, dummies int) ServeStats {
	return ServeStats{
		Requests:             st.Requests,
		Batches:              st.Batches,
		MeanRouteDistance:    st.MeanRouteDistance(),
		MaxRouteDistance:     st.MaxRouteDistance,
		TotalTransformRounds: st.TotalTransformRounds,
		MeanAdjustLag:        st.MeanAdjustLag(),
		MaxAdjustLag:         st.MaxAdjustLag,
		Height:               height,
		DummyCount:           dummies,
		Gets:                 st.Gets,
		GetHits:              st.GetHits,
		Puts:                 st.Puts,
		PutInserts:           st.PutInserts,
		Deletes:              st.Deletes,
		DeleteHits:           st.DeleteHits,
		Scans:                st.Scans,
		ScannedEntries:       st.ScannedEntries,
	}
}

// Serve consumes communication requests from the channel until it closes (or
// ctx is cancelled) and serves them through the concurrent engine: requests
// are routed in parallel — WithParallelism workers reading an immutable
// topology snapshot — while a single adjuster applies the self-adjusting
// transformations in request order, in batches of WithBatchSize, publishing
// a fresh snapshot per batch.
//
// Requests therefore observe a topology that lags their own batch's
// adjustments (see ServeStats.MeanAdjustLag): routing distances are measured
// in the snapshot, while the live topology advances request by request with
// the trace-runner semantics — each transformation followed by its scoped
// a-balance repair, after one global repair at engine start. Note that this
// is slightly stronger than a sequence of Request calls, which transform but
// never run the standalone repairs; Serve additionally maintains the global
// a-balance property throughout, like core.RunTrace. The working-set
// bookkeeping backing Stats advances in exact request order. For a fixed
// seed and batch schedule the results are deterministic, independent of
// parallelism and of producer timing.
//
// Serve must not run concurrently with other Network methods; all other
// concurrency lives inside the engine. On an invalid request (index out of
// range, self-communication) Serve aborts with an error after finishing the
// batches already in flight.
//
// When Serve returns early (invalid request, cancellation), it stops
// receiving from reqs — a producer doing a bare channel send would block
// forever. Producers should pair every send with the same ctx:
//
//	select {
//	case reqs <- p:
//	case <-ctx.Done():
//	    return
//	}
//
// and the caller should cancel ctx once Serve has returned (defer cancel()).
//
// Serve is exactly ServeOps over a pure-route stream.
func (nw *Network) Serve(ctx context.Context, reqs <-chan Pair) (ServeStats, error) {
	return forwardPairs(ctx, reqs, nw.ServeOps)
}
