package main

import (
	"regexp"
	"strings"
	"testing"
)

const oldBench = `goos: linux
BenchmarkE10_RouteOnly-4    500000   1000 ns/op   12 B/op  1 allocs/op
BenchmarkE10_RouteOnly-4    480000   1050 ns/op   12 B/op  1 allocs/op
BenchmarkE13_ChurnTrace-4       50  90000 ns/op
BenchmarkE16_Join/n=1024-4    2000   4000 ns/op
BenchmarkGone_Thing-4         1000   1111 ns/op
BenchmarkE3_ServeUniform-4    1000  50000 ns/op
BenchmarkSnapshotPublish/n=1024-4   100  7000 ns/op  4000 B/op  40 allocs/op
BenchmarkZeroAlloc-4        100000    500 ns/op     0 B/op  0 allocs/op
PASS
`

const newBench = `goos: linux
BenchmarkE10_RouteOnly-4    500000   1300 ns/op   12 B/op  1 allocs/op
BenchmarkE10_RouteOnly-4    480000   1200 ns/op   12 B/op  1 allocs/op
BenchmarkE13_ChurnTrace-4       50  91000 ns/op
BenchmarkE16_Join/n=1024-4    2000   3000 ns/op
BenchmarkE17_ServeParallel/p=4-4  9999  100 ns/op  0.25 applied/req
BenchmarkE3_ServeUniform-4    1000 500000 ns/op
BenchmarkSnapshotPublish/n=1024-4   100  7100 ns/op  9000 B/op  44 allocs/op
BenchmarkZeroAlloc-4        100000    510 ns/op    64 B/op  2 allocs/op
PASS
`

func parseString(t *testing.T, s string) samples {
	t.Helper()
	res, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParse(t *testing.T) {
	res := parseString(t, oldBench)
	if got := len(res["BenchmarkE10_RouteOnly"]["ns/op"]); got != 2 {
		t.Fatalf("E10 ns/op samples = %d, want 2 (procs suffix stripped, counts collected)", got)
	}
	if got := res["BenchmarkE10_RouteOnly"]["allocs/op"]; len(got) != 2 || got[0] != 1 {
		t.Errorf("E10 allocs/op samples = %v, want [1 1]", got)
	}
	if res["BenchmarkE13_ChurnTrace"]["ns/op"][0] != 90000 {
		t.Errorf("E13 ns/op = %v", res["BenchmarkE13_ChurnTrace"]["ns/op"])
	}
	if _, ok := res["BenchmarkE13_ChurnTrace"]["B/op"]; ok {
		t.Error("E13 carried no -benchmem columns but B/op parsed")
	}
	if _, ok := res["BenchmarkE16_Join/n=1024"]; !ok {
		t.Error("sub-benchmark name not preserved")
	}
	if got := res["BenchmarkSnapshotPublish/n=1024"]["B/op"]; len(got) != 1 || got[0] != 4000 {
		t.Errorf("SnapshotPublish B/op = %v, want [4000]", got)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"Benchmark",
		"BenchmarkX-4 1000", // no ns/op
		"ok  lsasg 1.2s",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as a result", line)
		}
	}
	name, vals, ok := parseLine("BenchmarkE17_ServeParallel/p=4-4  9999  100 ns/op  0.25 applied/req")
	if !ok || name != "BenchmarkE17_ServeParallel/p=4" || vals["ns/op"] != 100 {
		t.Errorf("parsed (%q, %v, %v)", name, vals, ok)
	}
	name, vals, ok = parseLine("BenchmarkMem-8  100  200 ns/op  32 B/op  3 allocs/op")
	if !ok || name != "BenchmarkMem" || vals["B/op"] != 32 || vals["allocs/op"] != 3 {
		t.Errorf("mem line parsed (%q, %v, %v)", name, vals, ok)
	}
}

func TestCompareGate(t *testing.T) {
	oldRes := parseString(t, oldBench)
	newRes := parseString(t, newBench)
	re := regexp.MustCompile(`E10|E13|E16|E17|Gone`)

	verdicts, failed := compare(oldRes, newRes, re, nil, 0.25)
	joined := strings.Join(verdicts, "\n")

	// E10: min 1000 → min 1200 = +20%, inside the 25% gate.
	if !strings.Contains(joined, "OK    BenchmarkE10_RouteOnly") {
		t.Errorf("E10 should pass at +20%%:\n%s", joined)
	}
	// E16 improved; E13 +1.1%.
	if strings.Contains(joined, "FAIL  BenchmarkE16") || strings.Contains(joined, "FAIL  BenchmarkE13") {
		t.Errorf("improvement/noise flagged as regression:\n%s", joined)
	}
	// E17 is new: reported, not failed.
	if !strings.Contains(joined, "NEW   BenchmarkE17_ServeParallel/p=4") {
		t.Errorf("new benchmark not reported:\n%s", joined)
	}
	// Gone benchmark must fail the gate.
	if !strings.Contains(joined, "GONE  BenchmarkGone_Thing") || failed != 1 {
		t.Errorf("failed=%d, want 1 (disappeared benchmark):\n%s", failed, joined)
	}
	// E3 regressed 10× but is outside -match.
	if strings.Contains(joined, "E3_ServeUniform") {
		t.Errorf("unmatched benchmark leaked into the gate:\n%s", joined)
	}
	// Without -memmatch, no memory metric is gated anywhere.
	if strings.Contains(joined, "B/op") || strings.Contains(joined, "allocs/op") {
		t.Errorf("memory metrics gated without -memmatch:\n%s", joined)
	}

	// Tighten the threshold: E10's +20% now fails too.
	_, failed = compare(oldRes, newRes, re, nil, 0.10)
	if failed != 2 {
		t.Errorf("at 10%% threshold failed=%d, want 2", failed)
	}
}

func TestCompareMemGate(t *testing.T) {
	oldRes := parseString(t, oldBench)
	newRes := parseString(t, newBench)
	re := regexp.MustCompile(`E10`)
	memRe := regexp.MustCompile(`SnapshotPublish`)

	// SnapshotPublish: ns/op +1.4% OK, B/op 4000 → 9000 = +125% FAIL,
	// allocs/op 40 → 44 = +10% OK.
	verdicts, failed := compare(oldRes, newRes, re, memRe, 0.25)
	joined := strings.Join(verdicts, "\n")
	if !strings.Contains(joined, "FAIL  BenchmarkSnapshotPublish/n=1024") || !strings.Contains(joined, "B/op") {
		t.Errorf("B/op regression not flagged:\n%s", joined)
	}
	if failed != 1 {
		t.Errorf("failed=%d, want 1 (only B/op):\n%s", failed, joined)
	}
	// A -memmatch benchmark is gated even when it misses -match.
	if !strings.Contains(joined, "BenchmarkSnapshotPublish/n=1024") {
		t.Errorf("memmatch-only benchmark not gated:\n%s", joined)
	}

	// Zero-baseline allocs: 0 → 2 allocs/op must fail regardless of ratio.
	memRe = regexp.MustCompile(`ZeroAlloc`)
	verdicts, failed = compare(oldRes, newRes, re, memRe, 0.25)
	joined = strings.Join(verdicts, "\n")
	if failed != 2 { // B/op 0→64 and allocs/op 0→2
		t.Errorf("zero-baseline growth: failed=%d, want 2:\n%s", failed, joined)
	}
	if !strings.Contains(joined, "FAIL  BenchmarkZeroAlloc") {
		t.Errorf("zero-baseline regression not flagged:\n%s", joined)
	}
}

func TestCompareMemGateMissingBaselineColumns(t *testing.T) {
	// Baseline ran without -benchmem: the memory metrics have no baseline
	// and must be reported, not failed. Losing them in the NEW run fails.
	oldNoMem := `BenchmarkSnapshotPublish/n=1024-4   100  7000 ns/op
PASS
`
	re := regexp.MustCompile(`^$`)
	memRe := regexp.MustCompile(`SnapshotPublish`)
	verdicts, failed := compare(parseString(t, oldNoMem), parseString(t, newBench), re, memRe, 0.25)
	joined := strings.Join(verdicts, "\n")
	if failed != 0 {
		t.Errorf("missing baseline columns: failed=%d, want 0:\n%s", failed, joined)
	}
	if !strings.Contains(joined, "NEW   BenchmarkSnapshotPublish/n=1024") {
		t.Errorf("metrics without baseline not reported as NEW:\n%s", joined)
	}

	_, failed = compare(parseString(t, newBench), parseString(t, oldNoMem), re, memRe, 0.25)
	if failed != 2 { // B/op and allocs/op both disappeared
		t.Errorf("dropped -benchmem columns: failed=%d, want 2", failed)
	}
}

func TestComparePair(t *testing.T) {
	run := `goos: linux
BenchmarkServeObsOverhead/obs=off-4   150000  3700 ns/op
BenchmarkServeObsOverhead/obs=off-4   140000  3650 ns/op
BenchmarkServeObsOverhead/obs=on-4    140000  3900 ns/op
BenchmarkServeObsOverhead/obs=on-4    130000  3790 ns/op
PASS
`
	res := parseString(t, run)
	base, cand := "BenchmarkServeObsOverhead/obs=off", "BenchmarkServeObsOverhead/obs=on"

	// mins: 3650 vs 3790 = +3.8%, inside a 5% gate and outside a 3% one.
	if v, ok := comparePair(res, base+","+cand, 0.05); !ok {
		t.Errorf("pair within threshold failed: %s", v)
	}
	if v, ok := comparePair(res, base+","+cand, 0.03); ok {
		t.Errorf("pair beyond threshold passed: %s", v)
	}
	// A missing lane fails rather than silently passing.
	if v, ok := comparePair(res, base+",BenchmarkNope", 0.05); ok {
		t.Errorf("missing candidate lane passed: %s", v)
	}
	if v, ok := comparePair(res, "BenchmarkNope,"+cand, 0.05); ok {
		t.Errorf("missing base lane passed: %s", v)
	}
}
