package main

import (
	"regexp"
	"strings"
	"testing"
)

const oldBench = `goos: linux
BenchmarkE10_RouteOnly-4    500000   1000 ns/op   12 B/op  1 allocs/op
BenchmarkE10_RouteOnly-4    480000   1050 ns/op   12 B/op  1 allocs/op
BenchmarkE13_ChurnTrace-4       50  90000 ns/op
BenchmarkE16_Join/n=1024-4    2000   4000 ns/op
BenchmarkGone_Thing-4         1000   1111 ns/op
BenchmarkE3_ServeUniform-4    1000  50000 ns/op
PASS
`

const newBench = `goos: linux
BenchmarkE10_RouteOnly-4    500000   1300 ns/op   12 B/op  1 allocs/op
BenchmarkE10_RouteOnly-4    480000   1200 ns/op   12 B/op  1 allocs/op
BenchmarkE13_ChurnTrace-4       50  91000 ns/op
BenchmarkE16_Join/n=1024-4    2000   3000 ns/op
BenchmarkE17_ServeParallel/p=4-4  9999  100 ns/op  0.25 applied/req
BenchmarkE3_ServeUniform-4    1000 500000 ns/op
PASS
`

func parseString(t *testing.T, s string) map[string][]float64 {
	t.Helper()
	res, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParse(t *testing.T) {
	res := parseString(t, oldBench)
	if got := len(res["BenchmarkE10_RouteOnly"]); got != 2 {
		t.Fatalf("E10 samples = %d, want 2 (procs suffix stripped, counts collected)", got)
	}
	if res["BenchmarkE13_ChurnTrace"][0] != 90000 {
		t.Errorf("E13 ns/op = %v", res["BenchmarkE13_ChurnTrace"])
	}
	if _, ok := res["BenchmarkE16_Join/n=1024"]; !ok {
		t.Error("sub-benchmark name not preserved")
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"Benchmark",
		"BenchmarkX-4 1000", // no ns/op
		"ok  lsasg 1.2s",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as a result", line)
		}
	}
	name, v, ok := parseLine("BenchmarkE17_ServeParallel/p=4-4  9999  100 ns/op  0.25 applied/req")
	if !ok || name != "BenchmarkE17_ServeParallel/p=4" || v != 100 {
		t.Errorf("parsed (%q, %v, %v)", name, v, ok)
	}
}

func TestCompareGate(t *testing.T) {
	oldRes := parseString(t, oldBench)
	newRes := parseString(t, newBench)
	re := regexp.MustCompile(`E10|E13|E16|E17|Gone`)

	verdicts, failed := compare(oldRes, newRes, re, 0.25)
	joined := strings.Join(verdicts, "\n")

	// E10: min 1000 → min 1200 = +20%, inside the 25% gate.
	if !strings.Contains(joined, "OK    BenchmarkE10_RouteOnly") {
		t.Errorf("E10 should pass at +20%%:\n%s", joined)
	}
	// E16 improved; E13 +1.1%.
	if strings.Contains(joined, "FAIL  BenchmarkE16") || strings.Contains(joined, "FAIL  BenchmarkE13") {
		t.Errorf("improvement/noise flagged as regression:\n%s", joined)
	}
	// E17 is new: reported, not failed.
	if !strings.Contains(joined, "NEW   BenchmarkE17_ServeParallel/p=4") {
		t.Errorf("new benchmark not reported:\n%s", joined)
	}
	// Gone benchmark must fail the gate.
	if !strings.Contains(joined, "GONE  BenchmarkGone_Thing") || failed != 1 {
		t.Errorf("failed=%d, want 1 (disappeared benchmark):\n%s", failed, joined)
	}
	// E3 regressed 10× but is outside -match.
	if strings.Contains(joined, "E3_ServeUniform") {
		t.Errorf("unmatched benchmark leaked into the gate:\n%s", joined)
	}

	// Tighten the threshold: E10's +20% now fails too.
	_, failed = compare(oldRes, newRes, re, 0.10)
	if failed != 2 {
		t.Errorf("at 10%% threshold failed=%d, want 2", failed)
	}
}
