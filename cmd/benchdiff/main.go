// Command benchdiff is the CI perf-regression gate: it parses two `go test
// -bench` output files (typically the PR head and its merge-base, each run
// with -count N), aggregates each benchmark's ns/op as the minimum across
// counts (the least-noisy point estimate on a shared runner), and fails when
// any benchmark matching -match regressed by more than -threshold.
//
// Benchmarks present only in the new file are reported as new and never
// fail the gate (a PR may introduce the benchmark it is gated on);
// benchmarks that disappeared from the new file DO fail it, so a regression
// cannot hide behind a rename. benchstat remains the human-readable
// companion — benchdiff only decides pass/fail.
//
// Usage:
//
//	benchdiff -old base.txt -new head.txt -match 'E10|E13|E16|E17' -threshold 0.25
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline `go test -bench` output (merge-base)")
		newPath   = flag.String("new", "", "candidate `go test -bench` output (PR head)")
		match     = flag.String("match", "", "regexp selecting the gated benchmarks (empty = all)")
		threshold = flag.Float64("threshold", 0.25, "maximum tolerated ns/op regression (0.25 = +25%)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fail("both -old and -new are required")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fail("bad -match regexp: %v", err)
	}
	oldRes, err := parseFile(*oldPath)
	if err != nil {
		fail("%v", err)
	}
	newRes, err := parseFile(*newPath)
	if err != nil {
		fail("%v", err)
	}

	verdicts, failed := compare(oldRes, newRes, re, *threshold)
	for _, v := range verdicts {
		fmt.Println(v)
	}
	if failed > 0 {
		fail("%d gated benchmark(s) regressed by more than %.0f%%", failed, *threshold*100)
	}
	fmt.Printf("benchdiff: no gated benchmark regressed by more than %.0f%%\n", *threshold*100)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}

// procsSuffix matches the trailing "-<GOMAXPROCS>" go test appends to
// benchmark names (absent when GOMAXPROCS is 1), stripped so runs from
// machines reporting different suffixes still line up.
var procsSuffix = regexp.MustCompile(`-\d+$`)

// parseLine extracts (name, ns/op) from one benchmark result line, e.g.
//
//	BenchmarkE10_RouteOnly-4   123456   9876 ns/op   120 B/op  3 allocs/op
//
// ok reports whether the line was a benchmark result carrying ns/op.
func parseLine(line string) (name string, nsPerOp float64, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return "", 0, false
	}
	for i := 3; i < len(f); i++ {
		if f[i] == "ns/op" {
			v, err := strconv.ParseFloat(f[i-1], 64)
			if err != nil {
				return "", 0, false
			}
			return procsSuffix.ReplaceAllString(f[0], ""), v, true
		}
	}
	return "", 0, false
}

// parse collects every benchmark's ns/op samples (one per -count).
func parse(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if name, v, ok := parseLine(sc.Text()); ok {
			out[name] = append(out[name], v)
		}
	}
	return out, sc.Err()
}

func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark results in %s", path)
	}
	return res, nil
}

func minOf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// compare produces one verdict line per gated benchmark and the number of
// failures (regressions beyond the threshold, plus gated benchmarks missing
// from the new run).
func compare(oldRes, newRes map[string][]float64, re *regexp.Regexp, threshold float64) (verdicts []string, failed int) {
	names := make(map[string]bool, len(oldRes)+len(newRes))
	for n := range oldRes {
		names[n] = true
	}
	for n := range newRes {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		if re.MatchString(n) {
			sorted = append(sorted, n)
		}
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		oldVs, inOld := oldRes[n]
		newVs, inNew := newRes[n]
		switch {
		case !inOld:
			verdicts = append(verdicts, fmt.Sprintf("NEW   %-50s %12.1f ns/op (no baseline)", n, minOf(newVs)))
		case !inNew:
			verdicts = append(verdicts, fmt.Sprintf("GONE  %-50s benchmark disappeared from the new run", n))
			failed++
		default:
			o, nw := minOf(oldVs), minOf(newVs)
			delta := nw/o - 1
			status := "OK   "
			if delta > threshold {
				status = "FAIL "
				failed++
			}
			verdicts = append(verdicts, fmt.Sprintf("%s %-50s %12.1f → %12.1f ns/op  %+6.1f%%",
				status, n, o, nw, delta*100))
		}
	}
	return verdicts, failed
}
