// Command benchdiff is the CI perf-regression gate: it parses two `go test
// -bench` output files (typically the PR head and its merge-base, each run
// with -count N), aggregates each benchmark's metrics as the minimum across
// counts (the least-noisy point estimate on a shared runner), and fails when
// any benchmark matching -match regressed its ns/op by more than -threshold.
// Benchmarks additionally matching -memmatch also gate their B/op and
// allocs/op (requires -benchmem on both runs) — allocation-shaped wins, like
// copy-on-write snapshot publication, regress silently under a pure ns/op
// gate on a noisy runner.
//
// Benchmarks present only in the new file are reported as new and never
// fail the gate (a PR may introduce the benchmark it is gated on);
// benchmarks that disappeared from the new file DO fail it, so a regression
// cannot hide behind a rename. The same applies per metric: a mem-gated
// benchmark whose baseline lacks B/op (no -benchmem) is reported, not
// failed, but one that LOST its memory columns fails. benchstat remains the
// human-readable companion — benchdiff only decides pass/fail.
//
// Usage:
//
//	benchdiff -old base.txt -new head.txt -match 'E10|E13|E16|E17' \
//	  -memmatch 'SnapshotPublish' -threshold 0.25
//
// A second, baseline-free mode gates two lanes of one run against each
// other: -pair 'BASE,CANDIDATE' compares the candidate's ns/op (minimum
// across counts) against the base lane within the -new file alone, failing
// beyond -pairthreshold. Both lanes come from the same binary and the same
// invocation, so the usual cross-run noise floor does not apply and the
// threshold can be far tighter — the obs-overhead gate runs at 5%. -old is
// optional when -pair is given; with both, the cross-run gate runs too.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		oldPath       = flag.String("old", "", "baseline `go test -bench` output (merge-base)")
		newPath       = flag.String("new", "", "candidate `go test -bench` output (PR head)")
		match         = flag.String("match", "", "regexp selecting the gated benchmarks (empty = all)")
		memMatch      = flag.String("memmatch", "", "regexp selecting benchmarks whose B/op and allocs/op are also gated (empty = none)")
		threshold     = flag.Float64("threshold", 0.25, "maximum tolerated regression per gated metric (0.25 = +25%)")
		pair          = flag.String("pair", "", "'BASE,CANDIDATE': gate candidate ns/op against base within the -new file alone")
		pairThreshold = flag.Float64("pairthreshold", 0.05, "maximum tolerated ns/op overhead of the -pair candidate over its base (0.05 = +5%)")
	)
	flag.Parse()
	if *newPath == "" {
		fail("-new is required")
	}
	if *oldPath == "" && *pair == "" {
		fail("-old is required unless -pair is given")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fail("bad -match regexp: %v", err)
	}
	var memRe *regexp.Regexp
	if *memMatch != "" {
		if memRe, err = regexp.Compile(*memMatch); err != nil {
			fail("bad -memmatch regexp: %v", err)
		}
	}
	newRes, err := parseFile(*newPath)
	if err != nil {
		fail("%v", err)
	}

	failed := 0
	if *oldPath != "" {
		oldRes, err := parseFile(*oldPath)
		if err != nil {
			fail("%v", err)
		}
		verdicts, n := compare(oldRes, newRes, re, memRe, *threshold)
		for _, v := range verdicts {
			fmt.Println(v)
		}
		failed += n
	}
	if *pair != "" {
		verdict, ok := comparePair(newRes, *pair, *pairThreshold)
		fmt.Println(verdict)
		if !ok {
			failed++
		}
	}
	if failed > 0 {
		fail("%d gated metric(s) regressed beyond their threshold", failed)
	}
	fmt.Println("benchdiff: no gated benchmark regressed beyond its threshold")
}

// comparePair gates one lane against another inside a single run: both
// minimums come from the -new file, so there is no cross-run noise floor.
func comparePair(res samples, pair string, threshold float64) (string, bool) {
	parts := strings.SplitN(pair, ",", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		fail("bad -pair %q: want 'BASE,CANDIDATE'", pair)
	}
	base, cand := parts[0], parts[1]
	baseVs, okB := res[base]["ns/op"]
	candVs, okC := res[cand]["ns/op"]
	switch {
	case !okB && !okC:
		return fmt.Sprintf("GONE  pair lanes %s and %s missing from the run", base, cand), false
	case !okB:
		return fmt.Sprintf("GONE  pair base lane %s missing from the run", base), false
	case !okC:
		return fmt.Sprintf("GONE  pair candidate lane %s missing from the run", cand), false
	}
	b, c := minOf(baseVs), minOf(candVs)
	if b == 0 {
		return fmt.Sprintf("FAIL  pair base lane %s reported 0 ns/op", base), false
	}
	delta := c/b - 1
	status, ok := "OK   ", true
	if delta > threshold {
		status, ok = "FAIL ", false
	}
	return fmt.Sprintf("%s %-50s %12.1f → %12.1f ns/op  %+6.1f%% (pair, limit %+.0f%%)",
		status, cand+" vs "+base, b, c, delta*100, threshold*100), ok
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}

// gatedUnits are the metrics benchdiff understands, in report order. ns/op
// is gated for every -match benchmark; the memory pair only for -memmatch.
var gatedUnits = []string{"ns/op", "B/op", "allocs/op"}

// procsSuffix matches the trailing "-<GOMAXPROCS>" go test appends to
// benchmark names (absent when GOMAXPROCS is 1), stripped so runs from
// machines reporting different suffixes still line up.
var procsSuffix = regexp.MustCompile(`-\d+$`)

// parseLine extracts the benchmark name and every recognized metric from one
// result line, e.g.
//
//	BenchmarkE10_RouteOnly-4   123456   9876 ns/op   120 B/op  3 allocs/op
//
// ok reports whether the line was a benchmark result carrying ns/op (lines
// without ns/op are not results, whatever custom units they carry).
func parseLine(line string) (name string, vals map[string]float64, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return "", nil, false
	}
	for i := 3; i < len(f); i++ {
		switch f[i] {
		case "ns/op", "B/op", "allocs/op":
			v, err := strconv.ParseFloat(f[i-1], 64)
			if err != nil {
				continue
			}
			if vals == nil {
				vals = make(map[string]float64, len(gatedUnits))
			}
			vals[f[i]] = v
		}
	}
	if _, hasNs := vals["ns/op"]; !hasNs {
		return "", nil, false
	}
	return procsSuffix.ReplaceAllString(f[0], ""), vals, true
}

// samples holds every benchmark's per-metric values (one per -count).
type samples map[string]map[string][]float64

func parse(r io.Reader) (samples, error) {
	out := make(samples)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		name, vals, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		m := out[name]
		if m == nil {
			m = make(map[string][]float64, len(gatedUnits))
			out[name] = m
		}
		for unit, v := range vals {
			m[unit] = append(m[unit], v)
		}
	}
	return out, sc.Err()
}

func parseFile(path string) (samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark results in %s", path)
	}
	return res, nil
}

func minOf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// compare produces verdict lines for every gated benchmark/metric and the
// number of failures: regressions beyond the threshold, gated benchmarks
// missing from the new run, and mem-gated metrics that disappeared.
func compare(oldRes, newRes samples, re, memRe *regexp.Regexp, threshold float64) (verdicts []string, failed int) {
	names := make(map[string]bool, len(oldRes)+len(newRes))
	for n := range oldRes {
		names[n] = true
	}
	for n := range newRes {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		if re.MatchString(n) || (memRe != nil && memRe.MatchString(n)) {
			sorted = append(sorted, n)
		}
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		oldUnits, inOld := oldRes[n]
		newUnits, inNew := newRes[n]
		switch {
		case !inOld:
			verdicts = append(verdicts, fmt.Sprintf("NEW   %-50s %12.1f ns/op (no baseline)", n, minOf(newUnits["ns/op"])))
			continue
		case !inNew:
			verdicts = append(verdicts, fmt.Sprintf("GONE  %-50s benchmark disappeared from the new run", n))
			failed++
			continue
		}
		units := []string{"ns/op"}
		if memRe != nil && memRe.MatchString(n) {
			units = gatedUnits
		}
		for _, unit := range units {
			oldVs, uOld := oldUnits[unit]
			newVs, uNew := newUnits[unit]
			switch {
			case !uOld && !uNew:
				continue // neither run reported it (e.g. no -benchmem anywhere)
			case !uOld:
				verdicts = append(verdicts, fmt.Sprintf("NEW   %-50s %12.1f %s (no baseline)", n, minOf(newVs), unit))
				continue
			case !uNew:
				verdicts = append(verdicts, fmt.Sprintf("GONE  %-50s %s disappeared from the new run", n, unit))
				failed++
				continue
			}
			o, nw := minOf(oldVs), minOf(newVs)
			status, delta := "OK   ", 0.0
			switch {
			case o == 0:
				// A zero baseline (common for allocs/op) has no meaningful
				// ratio: any growth is an unbounded regression.
				if nw > 0 {
					status = "FAIL "
					failed++
				}
			default:
				delta = nw/o - 1
				if delta > threshold {
					status = "FAIL "
					failed++
				}
			}
			verdicts = append(verdicts, fmt.Sprintf("%s %-50s %12.1f → %12.1f %s  %+6.1f%%",
				status, n, o, nw, unit, delta*100))
		}
	}
	return verdicts, failed
}
