// Command dsgexp is the reproducible experiment runner: it executes a
// configurable grid over the registered paper experiments (E1–E20) and
// writes machine-readable results — one CSV and one JSON per experiment
// plus a BENCH_dsgexp.json summary — to a timestamped output directory.
// Two runs with the same flags and seed produce byte-identical CSVs, so
// result files can be diffed across commits to track the performance
// trajectory of the implementation. (The exemptions: E17's requests/sec and
// adjustment-lag columns, the requests/sec columns of E18 and E19, and
// E20's events/sec column are wall-clock measurements; every other column
// is byte-stable.)
//
// Usage:
//
//	dsgexp -quick -seed 1            # all experiments, reduced scale
//	dsgexp -full -repeats 5          # full scale, 5 repeats aggregated as mean/sd
//	dsgexp -only E5,E8 -out results  # two experiments into ./results
//	dsgexp -only E18 -shards 1,4,16  # sweep shard counts for the sharded study
//	dsgexp -only E19 -mix a,e,crud   # sweep KV operation mixes for the KV study
//	dsgexp -list                     # list registered experiments and exit
//
// Experiments run in parallel (bounded by -par); each (experiment, repeat)
// cell derives its own seed from -seed, so parallelism never changes the
// results. The optional -bench flag writes an extra copy of the summary to
// a fixed path (e.g. the repo root) for CI diffing, and -bench-append
// extends a committed perf-trajectory file (a JSON array of summaries,
// oldest first) so performance re-anchors read from data instead of commit
// messages.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lsasg/internal/cliutil"
	"lsasg/internal/experiments"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "run at reduced scale (seconds per experiment)")
		full    = flag.Bool("full", false, "run at full scale (the default)")
		repeats = flag.Int("repeats", 1, "independent repetitions per experiment, aggregated as mean/sd")
		only    = flag.String("only", "", "comma-separated experiment ids to run (e.g. E5,E8); empty = all")
		par     = flag.Int("par", 0, "max experiments running concurrently (0 = GOMAXPROCS)")
		bench   = flag.String("bench", "", "also write the BENCH_dsgexp.json summary to this path")
		benchAp = flag.String("bench-append", "", "append the summary to the perf-trajectory file at this path (a JSON array, oldest first)")
		list    = flag.Bool("list", false, "list registered experiments and exit")
		seed    = cliutil.AddSeed(flag.CommandLine)
		out     = cliutil.AddOut(flag.CommandLine, "output directory (default dsgexp_runs/<timestamp>)")
		shards  = cliutil.AddShards(flag.CommandLine)
		mix     = cliutil.AddMix(flag.CommandLine)
	)
	flag.Parse()

	if *list {
		experiments.FprintRegistry(os.Stdout)
		return
	}
	if *quick && *full {
		fail("pick one of -quick and -full")
	}

	sc := experiments.Full()
	scaleName := "full"
	if *quick {
		sc = experiments.Quick()
		scaleName = "quick"
	}
	sc.Seed = *seed
	if sweep, err := cliutil.ParseShards(*shards); err != nil {
		fail("%v", err)
	} else if sweep != nil {
		sc.Shards = sweep
	}
	if mixes, err := cliutil.ParseMixes(*mix); err != nil {
		fail("%v", err)
	} else if mixes != nil {
		sc.Mixes = mixes
	}

	selected, err := experiments.Select(*only)
	if err != nil {
		fail("%v", err)
	}

	outDir := *out
	if outDir == "" {
		outDir = cliutil.DefaultRunDir("dsgexp")
	}

	fmt.Printf("dsgexp: %d experiment(s), scale=%s, seed=%d, repeats=%d → %s\n",
		len(selected), scaleName, *seed, *repeats, outDir)
	summary, err := experiments.RunGrid(experiments.GridConfig{
		RunConfig:   experiments.RunConfig{Scale: sc, Repeats: *repeats},
		Experiments: selected,
		OutDir:      outDir,
		ScaleName:   scaleName,
		Parallelism: *par,
		Progress: func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("dsgexp: wrote %s in %.1fs\n",
		filepath.Join(outDir, experiments.SummaryFileName), summary.TotalSeconds)

	if *bench != "" {
		src := filepath.Join(outDir, experiments.SummaryFileName)
		data, err := os.ReadFile(src)
		if err == nil {
			err = os.WriteFile(*bench, data, 0o644)
		}
		if err != nil {
			fail("copying summary to %s: %v", *bench, err)
		}
		fmt.Printf("dsgexp: summary also at %s\n", *bench)
	}
	if *benchAp != "" {
		if err := experiments.AppendTrajectory(*benchAp, summary); err != nil {
			fail("%v", err)
		}
		fmt.Printf("dsgexp: summary appended to trajectory %s\n", *benchAp)
	}
	if summary.Failed > 0 {
		fail("%d experiment(s) failed", summary.Failed)
	}
}

func fail(format string, args ...interface{}) {
	cliutil.Fail("dsgexp", format, args...)
}
