// Command dsgviz renders a skip graph as the paper's binary tree of linked
// lists (Fig 1(b)) and animates how DSG reshapes it under a workload.
//
// Like every binary in this repo, -seed fixes the deterministic stream and
// -out captures the report (a file here; stdout when empty), so two runs
// with the same flags and seed produce byte-identical captured output.
//
// Usage:
//
//	dsgviz -n 10                  # random skip graph, one snapshot
//	dsgviz -n 10 -steps 5         # topology after each of 5 hot requests
//	dsgviz -fig1                  # the paper's Figure 1 instance
package main

import (
	"flag"
	"fmt"
	"io"

	"lsasg"
	"lsasg/internal/cliutil"
	"lsasg/internal/skipgraph"
)

func main() {
	var (
		n     = flag.Int("n", 10, "number of nodes")
		steps = flag.Int("steps", 0, "requests between a hot pair to animate")
		fig1  = flag.Bool("fig1", false, "render the paper's Figure 1 skip graph")
		seed  = cliutil.AddSeed(flag.CommandLine)
		out   = cliutil.AddOut(flag.CommandLine, "write the rendering to this file (default stdout)")
	)
	flag.Parse()

	w, err := cliutil.Output(*out)
	if err != nil {
		cliutil.Fail("dsgviz", "%v", err)
	}
	if *fig1 {
		renderFig1(w)
	} else {
		render(w, *n, *steps, *seed)
	}
	if err := w.Close(); err != nil {
		cliutil.Fail("dsgviz", "closing %s: %v", *out, err)
	}
}

func render(w io.Writer, n, steps int, seed int64) {
	nw, err := lsasg.New(n, lsasg.WithSeed(seed))
	if err != nil {
		cliutil.Fail("dsgviz", "%v", err)
	}
	fmt.Fprintln(w, "# initial topology")
	nw.RenderTopology(w)
	hotA, hotB := 0, n-1
	for i := 0; i < steps; i++ {
		if _, err := nw.Request(hotA, hotB); err != nil {
			cliutil.Fail("dsgviz", "%v", err)
		}
		fmt.Fprintf(w, "\n# after request %d: %d → %d\n", i+1, hotA, hotB)
		nw.RenderTopology(w)
	}
	if steps > 0 {
		if ok, lvl := nw.DirectlyLinked(hotA, hotB); ok {
			fmt.Fprintf(w, "\nnodes %d and %d are directly linked at level %d\n", hotA, hotB, lvl)
		}
	}
}

// renderFig1 prints the 6-node, 3-level skip graph of the paper's Fig 1,
// with the letter names used there.
func renderFig1(w io.Writer) {
	g := skipgraph.NewFromVectors([]skipgraph.VectorEntry{
		{Key: 1, ID: 1, Vector: "00"},   // A
		{Key: 7, ID: 7, Vector: "10"},   // G
		{Key: 10, ID: 10, Vector: "00"}, // J
		{Key: 13, ID: 13, Vector: "01"}, // M
		{Key: 18, ID: 18, Vector: "11"}, // R
		{Key: 23, ID: 23, Vector: "10"}, // W
	})
	names := map[int64]string{1: "A", 7: "G", 10: "J", 13: "M", 18: "R", 23: "W"}
	fmt.Fprintln(w, "# Figure 1: 6-node skip graph as a binary tree of linked lists")
	fmt.Fprint(w, g.TreeView().RenderLevels(func(n *skipgraph.Node) string {
		return names[n.ID()]
	}, nil))
	fmt.Fprintln(w, "\nmembership vectors:")
	for _, n := range g.Nodes() {
		fmt.Fprintf(w, "  m(%s) = %q\n", names[n.ID()], n.MembershipVector())
	}
}
