package main

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"

	"lsasg"
)

// selfCheck drives both Service implementations through nothing but the
// lsasg.Service interface with the same seeded mixed load and confirms
// they expose the same observable KV state (a digest over every outcome
// and the final scanned keyspace; path metrics legitimately differ). It is
// the command-line twin of the repo's interface-conformance test — a fast
// smoke that an installed binary can run against the library it shipped
// with.
func selfCheck(w io.Writer, seed int64) error {
	const n = 64
	builders := []struct {
		name  string
		build func() (lsasg.Service, error)
	}{
		{"single", func() (lsasg.Service, error) {
			return lsasg.New(n, lsasg.WithSeed(seed), lsasg.WithBatchSize(1))
		}},
		{"sharded", func() (lsasg.Service, error) {
			return lsasg.NewSharded(n, lsasg.WithShards(4), lsasg.WithSeed(seed),
				lsasg.WithBatchSize(1), lsasg.WithRebalanceWindow(1))
		}},
	}
	digests := make([]string, len(builders))
	for i, b := range builders {
		svc, err := b.build()
		if err != nil {
			return fmt.Errorf("%s: %w", b.name, err)
		}
		digest, requests, err := driveService(svc, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", b.name, err)
		}
		digests[i] = digest
		fmt.Fprintf(w, "selfcheck %-7s %d requests, state %s\n", b.name, requests, digest[:16])
	}
	if digests[0] != digests[1] {
		return fmt.Errorf("observable KV state diverges: single %s != sharded %s", digests[0], digests[1])
	}
	fmt.Fprintln(w, "selfcheck ok: both services expose identical observable state")
	return nil
}

// driveService pushes a seeded mixed load through the interface and
// digests everything observable.
func driveService(svc lsasg.Service, seed int64) (string, int, error) {
	h := sha256.New()
	note := func(format string, args ...any) { fmt.Fprintf(h, format+"\n", args...) }

	rng := rand.New(rand.NewSource(seed))
	n := svc.N()
	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	pickLive := func() int {
		for {
			if k := rng.Intn(n); live[k] {
				return k
			}
		}
	}

	for i := 0; i < 200; i++ {
		src := pickLive()
		switch i % 5 {
		case 0, 1:
			key := rng.Intn(n)
			_, existed, err := svc.Put(src, key, []byte(fmt.Sprintf("s%d", i)))
			if err != nil {
				return "", 0, err
			}
			note("put %d existed=%v", key, existed)
			live[key] = true
		case 2:
			key := pickLive()
			val, _, found, err := svc.Get(src, key)
			if err != nil {
				return "", 0, err
			}
			note("get %d %q found=%v", key, val, found)
		case 3:
			kvs, err := svc.Scan(src, rng.Intn(n), 1+rng.Intn(8))
			if err != nil {
				return "", 0, err
			}
			for _, kv := range kvs {
				note("scanned %d=%q", kv.Key, kv.Value)
			}
		case 4:
			key := pickLive()
			if key == src {
				continue
			}
			existed, err := svc.Delete(src, key)
			if err != nil {
				return "", 0, err
			}
			note("delete %d existed=%v", key, existed)
			live[key] = false
		}
	}

	// One pipelined generation through the same interface.
	ops := make(chan lsasg.Op)
	go func() {
		defer close(ops)
		for i := 0; i < 200; i++ {
			src := pickLive()
			var op lsasg.Op
			switch i % 3 {
			case 0:
				dst := pickLive()
				for dst == src {
					dst = pickLive()
				}
				op = lsasg.RouteOp(src, dst)
			case 1:
				op = lsasg.GetOp(src, pickLive())
			case 2:
				op = lsasg.ScanOp(src, rng.Intn(n), 1+rng.Intn(8))
			}
			ops <- op
		}
	}()
	st, err := svc.ServeOps(context.Background(), ops, func(r lsasg.OpResult) {
		note("op %d %d→%d found=%v existed=%v %q entries=%d",
			r.Op.Kind, r.Op.Src, r.Op.Dst, r.Found, r.Existed, r.Value, len(r.Entries))
	})
	if err != nil {
		return "", 0, err
	}
	note("kv %d/%d %d/%d %d/%d %d/%d", st.Gets, st.GetHits, st.Puts, st.PutInserts,
		st.Deletes, st.DeleteHits, st.Scans, st.ScannedEntries)

	kvs, err := svc.Scan(0, 0, n)
	if err != nil {
		return "", 0, err
	}
	for _, kv := range kvs {
		note("final %d=%q", kv.Key, kv.Value)
	}
	if err := svc.Verify(); err != nil {
		return "", 0, err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), svc.Stats().Requests, nil
}
