// Command dsgbench renders the experiment tables as human-readable text:
// empirical validations of every lemma/theorem in the paper plus the
// comparison studies against the static skip graph and SplayNet. It is the
// interactive twin of cmd/dsgexp, which runs the same registry but writes
// machine-readable CSV/JSON result files.
//
// Like every binary in this repo, -seed fixes the deterministic stream and
// -out captures the report (a file here; stdout when empty). Timing goes to
// stderr, so two runs with the same -seed produce byte-identical captured
// output — except the wall-clock columns of E17 (requests/sec, lag), E18
// and E19 (requests/sec), and E20 (events/sec), which measure real elapsed
// time by design.
//
// Usage:
//
//	dsgbench                      # run every experiment at full scale
//	dsgbench -run E1,E8           # run selected experiments
//	dsgbench -quick -out rep.txt  # smaller sizes, report into rep.txt
//	dsgbench -seed 7              # change the random seed
//	dsgbench -run E18 -shards 2,8 # sweep shard counts for the sharded study
//	dsgbench -run E19 -mix a,crud # sweep KV operation mixes for the KV study
//	dsgbench -list                # list registered experiments and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"lsasg/internal/cliutil"
	"lsasg/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "", "comma-separated experiment ids (e.g. E1,E8); empty = all")
		quick  = flag.Bool("quick", false, "run at reduced scale")
		list   = flag.Bool("list", false, "list registered experiments and exit")
		check  = flag.Bool("selfcheck", false, "run the Service conformance smoke and exit")
		seed   = cliutil.AddSeed(flag.CommandLine)
		out    = cliutil.AddOut(flag.CommandLine, "write the rendered tables to this file (default stdout)")
		shards = cliutil.AddShards(flag.CommandLine)
		mix    = cliutil.AddMix(flag.CommandLine)
	)
	flag.Parse()

	if *list {
		experiments.FprintRegistry(os.Stdout)
		return
	}
	if *check {
		if err := selfCheck(os.Stdout, *seed); err != nil {
			cliutil.Fail("dsgbench", "selfcheck: %v", err)
		}
		return
	}

	sc := experiments.Full()
	if *quick {
		sc = experiments.Quick()
	}
	sc.Seed = *seed
	if sweep, err := cliutil.ParseShards(*shards); err != nil {
		cliutil.Fail("dsgbench", "%v", err)
	} else if sweep != nil {
		sc.Shards = sweep
	}
	if mixes, err := cliutil.ParseMixes(*mix); err != nil {
		cliutil.Fail("dsgbench", "%v", err)
	} else if mixes != nil {
		sc.Mixes = mixes
	}

	selected, err := experiments.Select(*run)
	if err != nil {
		cliutil.Fail("dsgbench", "%v", err)
	}
	w, err := cliutil.Output(*out)
	if err != nil {
		cliutil.Fail("dsgbench", "%v", err)
	}
	for _, e := range selected {
		res, err := experiments.Run(e, experiments.RunConfig{Scale: sc})
		if err != nil {
			cliutil.Fail("dsgbench", "%v", err)
		}
		res.Table.Render(w)
		fmt.Fprintf(w, "(%s [%s])\n\n", e.ID, e.PaperRef)
		fmt.Fprintf(os.Stderr, "dsgbench: %s in %.1fs\n", e.ID, res.Elapsed.Seconds())
	}
	if err := w.Close(); err != nil {
		cliutil.Fail("dsgbench", "closing %s: %v", *out, err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "dsgbench: report at %s\n", *out)
	}
}
