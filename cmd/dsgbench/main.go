// Command dsgbench renders the experiment tables as human-readable text on
// stdout: empirical validations of every lemma/theorem in the paper plus
// the comparison studies against the static skip graph and SplayNet. It is
// the interactive twin of cmd/dsgexp, which runs the same registry but
// writes machine-readable CSV/JSON result files.
//
// Usage:
//
//	dsgbench                 # run every experiment at full scale
//	dsgbench -run E1,E8      # run selected experiments
//	dsgbench -quick          # smaller sizes (seconds instead of minutes)
//	dsgbench -seed 7         # change the random seed
//	dsgbench -list           # list registered experiments and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"lsasg/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiment ids (e.g. E1,E8); empty = all")
		quick = flag.Bool("quick", false, "run at reduced scale")
		seed  = flag.Int64("seed", 1, "random seed")
		list  = flag.Bool("list", false, "list registered experiments and exit")
	)
	flag.Parse()

	if *list {
		experiments.FprintRegistry(os.Stdout)
		return
	}

	sc := experiments.Full()
	if *quick {
		sc = experiments.Quick()
	}
	sc.Seed = *seed

	selected, err := experiments.Select(*run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsgbench: %v\n", err)
		os.Exit(2)
	}
	for _, e := range selected {
		res, err := experiments.Run(e, experiments.RunConfig{Scale: sc})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsgbench: %v\n", err)
			os.Exit(1)
		}
		res.Table.Render(os.Stdout)
		fmt.Printf("(%s [%s] in %.1fs)\n\n", e.ID, e.PaperRef, res.Elapsed.Seconds())
	}
}
