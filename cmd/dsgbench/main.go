// Command dsgbench regenerates the experiment tables of EXPERIMENTS.md:
// empirical validations of every lemma/theorem in the paper plus the
// comparison studies against the static skip graph and SplayNet.
//
// Usage:
//
//	dsgbench                 # run every experiment at full scale
//	dsgbench -run E1,E8      # run selected experiments
//	dsgbench -quick          # smaller sizes (seconds instead of minutes)
//	dsgbench -seed 7         # change the random seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lsasg/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiment ids (e.g. E1,E8); empty = all")
		quick = flag.Bool("quick", false, "run at reduced scale")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	sc := experiments.Full()
	if *quick {
		sc = experiments.Quick()
	}
	sc.Seed = *seed

	selected := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}

	ran := 0
	for _, e := range experiments.All() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		start := time.Now()
		table := e.Run(sc)
		table.Render(os.Stdout)
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "dsgbench: no experiment matched %q\n", *run)
		os.Exit(2)
	}
}
