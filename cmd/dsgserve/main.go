// Command dsgserve runs the self-adjusting skip graph as a network daemon:
// one lsasg.Service — single-graph or sharded — behind the wire protocol on
// a TCP port, with Prometheus-text observability on a second port. Clients
// speak the length-prefixed binary protocol (docs/WIRE.md); cmd/dsgctl is
// the reference client.
//
// The daemon defaults to -batch 1 and -window 1 so synchronous clients see
// each op answered as soon as it is served; pipelined clients (dsgctl
// replay) keep the deterministic-stats contract at any setting. SIGINT and
// SIGTERM drain gracefully: in-flight requests are answered, the serving
// generation is retired, then the process exits.
//
// Usage:
//
//	dsgserve                          # 256 keys on :4600, metrics on :4601
//	dsgserve -n 1024 -shards 8        # sharded service
//	dsgserve -addr :7000 -metrics ""  # custom port, observability off
//	dsgserve -seed 7 -balance 3      # deterministic stream, a-balance a=3
//	dsgserve -pprof                   # live profiles under /debug/pprof/
//	dsgserve -trace=false             # drop span/histogram instrumentation
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // profiles gated behind -pprof; see the mux graft below
	"os"
	"os/signal"
	"syscall"
	"time"

	"lsasg"
	"lsasg/internal/obs"
	"lsasg/internal/wire"
)

func main() {
	var (
		addr        = flag.String("addr", ":4600", "TCP address to serve the wire protocol on")
		metricsAddr = flag.String("metrics", ":4601", "HTTP address for /metrics and /healthz; empty disables")
		n           = flag.Int("n", 256, "size of the key space [0, n)")
		shards      = flag.Int("shards", 1, "shard count; 1 runs the single-graph service")
		balance     = flag.Int("balance", 0, "a-balance parameter; 0 keeps the default")
		seed        = flag.Int64("seed", 1, "seed for the deterministic stream")
		batch       = flag.Int("batch", 1, "pipeline batch size (1 answers synchronous clients promptly)")
		window      = flag.Int("window", 1, "sharded outcome-window size in batches")
		parallelism = flag.Int("parallelism", 1, "routing workers per pipeline run")
		membership  = flag.Bool("membership", false, "enable AddNode/RemoveNode admin (disables working-set tracking)")
		drainFor    = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget before connections are cut")
		trace       = flag.Bool("trace", true, "record op spans and latency histograms (TraceDump, dsgctl trace)")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the metrics address")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("dsgserve: ")

	opts := []lsasg.Option{
		lsasg.WithSeed(*seed),
		lsasg.WithBatchSize(*batch),
		lsasg.WithParallelism(*parallelism),
	}
	if *balance > 0 {
		opts = append(opts, lsasg.WithBalance(*balance))
	}
	if *membership {
		opts = append(opts, lsasg.WithoutWorkingSetTracking())
	}
	if *trace {
		opts = append(opts, lsasg.WithTracing())
	}

	var svc lsasg.Service
	var err error
	if *shards > 1 {
		opts = append(opts, lsasg.WithShards(*shards), lsasg.WithRebalanceWindow(*window))
		svc, err = lsasg.NewSharded(*n, opts...)
	} else {
		svc, err = lsasg.New(*n, opts...)
	}
	if err != nil {
		log.Fatal(err)
	}

	var srvOpts []wire.ServerOption
	var tracer *obs.Tracer
	if tp, ok := svc.(interface{ Tracer() *obs.Tracer }); ok {
		if tracer = tp.Tracer(); tracer != nil {
			srvOpts = append(srvOpts, wire.WithTracer(tracer))
		}
	}
	srv := wire.NewServer(svc, srvOpts...)
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d keys (%d shard(s)) on %s", *n, *shards, lis.Addr())

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		handler := srv.Collector().Handler()
		if *pprofOn {
			// The pprof package registers on http.DefaultServeMux at import;
			// graft that mux under /debug/pprof/ so profiles share the
			// metrics port without exposing them by default.
			outer := http.NewServeMux()
			outer.Handle("/", handler)
			outer.Handle("/debug/pprof/", http.DefaultServeMux)
			handler = outer
			log.Printf("pprof on http://%s/debug/pprof/", *metricsAddr)
		}
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: handler}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", *metricsAddr)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%v: draining (budget %v)", s, *drainFor)
	case err := <-serveErr:
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("forced shutdown: %v", err)
		os.Exit(1)
	}
	if metricsSrv != nil {
		metricsSrv.Shutdown(context.Background())
	}
	if err := svc.Verify(); err != nil {
		log.Fatalf("post-drain verify: %v", err)
	}
	if tracer != nil {
		for _, l := range tracer.VerbLatencies() {
			if l.Count == 0 {
				continue
			}
			log.Printf("latency %s: n=%d p50=%v p99=%v", obs.KindName(l.Kind),
				l.Count, time.Duration(l.P50Nanos), time.Duration(l.P99Nanos))
		}
	}
	fmt.Fprintln(os.Stderr, "dsgserve: drained cleanly")
}
