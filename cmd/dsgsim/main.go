// Command dsgsim runs one self-adjusting skip-graph simulation and prints
// per-request traces and a summary.
//
// Like every binary in this repo, -seed fixes the deterministic stream and
// -out captures the report (a file here; stdout when empty), so two runs
// with the same flags and seed produce byte-identical captured output.
//
// Usage:
//
//	dsgsim -n 64 -m 500 -workload zipf -s 1.3
//	dsgsim -n 128 -m 2000 -workload temporal -w 8 -trace=false
//	dsgsim -n 64 -m 500 -seed 7 -out run.txt
package main

import (
	"flag"
	"fmt"

	"lsasg"
	"lsasg/internal/cliutil"
	"lsasg/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 64, "number of nodes")
		m       = flag.Int("m", 500, "number of requests")
		kind    = flag.String("workload", "zipf", "uniform|zipf|pairs|temporal|clustered|adversarial")
		s       = flag.Float64("s", 1.2, "zipf exponent")
		w       = flag.Int("w", 8, "temporal working-set size")
		k       = flag.Int("k", 4, "hot pair count")
		balance = flag.Int("a", 4, "a-balance parameter")
		trace   = flag.Bool("trace", true, "print per-request lines")
		seed    = cliutil.AddSeed(flag.CommandLine)
		out     = cliutil.AddOut(flag.CommandLine, "write the trace and summary to this file (default stdout)")
	)
	flag.Parse()

	var gen workload.Generator
	switch *kind {
	case "uniform":
		gen = workload.Uniform{Seed: *seed}
	case "zipf":
		gen = workload.Zipf{Seed: *seed, S: *s}
	case "pairs":
		gen = workload.RepeatedPairs{Seed: *seed, K: *k, Hot: 0.9}
	case "temporal":
		gen = workload.Temporal{Seed: *seed, W: *w, Churn: 0.1}
	case "clustered":
		gen = workload.Clustered{Seed: *seed, C: 8, Local: 0.9}
	case "adversarial":
		gen = workload.Adversarial{Seed: *seed}
	default:
		cliutil.Fail("dsgsim", "unknown workload %q", *kind)
	}

	nw, err := lsasg.New(*n, lsasg.WithSeed(*seed), lsasg.WithBalance(*balance))
	if err != nil {
		cliutil.Fail("dsgsim", "%v", err)
	}
	outW, err := cliutil.Output(*out)
	if err != nil {
		cliutil.Fail("dsgsim", "%v", err)
	}
	fmt.Fprintf(outW, "# %d nodes, %d requests, workload %s, a=%d, seed=%d\n",
		*n, *m, gen.Name(), *balance, *seed)
	for i, r := range gen.Generate(*n, *m) {
		res, err := nw.Request(r.Src, r.Dst)
		if err != nil {
			cliutil.Fail("dsgsim", "request %d: %v", i, err)
		}
		if *trace {
			fmt.Fprintf(outW, "t=%-6d %3d→%-3d dist=%-3d T=%-4d rounds=%-5d level=%d\n",
				i+1, r.Src, r.Dst, res.RouteDistance, res.WorkingSetNumber,
				res.TransformRounds, res.DirectLevel)
		}
	}
	st := nw.Stats()
	fmt.Fprintf(outW, "\nrequests            %d\n", st.Requests)
	fmt.Fprintf(outW, "mean route distance %.3f\n", st.MeanRouteDistance)
	fmt.Fprintf(outW, "max route distance  %d\n", st.MaxRouteDistance)
	fmt.Fprintf(outW, "transform rounds    %d\n", st.TotalTransformRounds)
	fmt.Fprintf(outW, "WS(sigma)           %.1f (%.3f/request)\n", st.WorkingSetBound,
		st.WorkingSetBound/float64(st.Requests))
	fmt.Fprintf(outW, "height              %d\n", st.Height)
	fmt.Fprintf(outW, "dummies             %d\n", st.DummyCount)
	if err := outW.Close(); err != nil {
		cliutil.Fail("dsgsim", "closing %s: %v", *out, err)
	}
}
