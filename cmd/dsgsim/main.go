// Command dsgsim runs one self-adjusting skip-graph simulation and prints
// per-request traces and a summary.
//
// Usage:
//
//	dsgsim -n 64 -m 500 -workload zipf -s 1.3
//	dsgsim -n 128 -m 2000 -workload temporal -w 8 -trace=false
package main

import (
	"flag"
	"fmt"
	"os"

	"lsasg"
	"lsasg/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 64, "number of nodes")
		m       = flag.Int("m", 500, "number of requests")
		kind    = flag.String("workload", "zipf", "uniform|zipf|pairs|temporal|clustered|adversarial")
		s       = flag.Float64("s", 1.2, "zipf exponent")
		w       = flag.Int("w", 8, "temporal working-set size")
		k       = flag.Int("k", 4, "hot pair count")
		balance = flag.Int("a", 4, "a-balance parameter")
		seed    = flag.Int64("seed", 1, "random seed")
		trace   = flag.Bool("trace", true, "print per-request lines")
	)
	flag.Parse()

	var gen workload.Generator
	switch *kind {
	case "uniform":
		gen = workload.Uniform{Seed: *seed}
	case "zipf":
		gen = workload.Zipf{Seed: *seed, S: *s}
	case "pairs":
		gen = workload.RepeatedPairs{Seed: *seed, K: *k, Hot: 0.9}
	case "temporal":
		gen = workload.Temporal{Seed: *seed, W: *w, Churn: 0.1}
	case "clustered":
		gen = workload.Clustered{Seed: *seed, C: 8, Local: 0.9}
	case "adversarial":
		gen = workload.Adversarial{Seed: *seed}
	default:
		fmt.Fprintf(os.Stderr, "dsgsim: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	nw, err := lsasg.New(*n, lsasg.WithSeed(*seed), lsasg.WithBalance(*balance))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsgsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# %d nodes, %d requests, workload %s, a=%d\n", *n, *m, gen.Name(), *balance)
	for i, r := range gen.Generate(*n, *m) {
		res, err := nw.Request(r.Src, r.Dst)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsgsim: request %d: %v\n", i, err)
			os.Exit(1)
		}
		if *trace {
			fmt.Printf("t=%-6d %3d→%-3d dist=%-3d T=%-4d rounds=%-5d level=%d\n",
				i+1, r.Src, r.Dst, res.RouteDistance, res.WorkingSetNumber,
				res.TransformRounds, res.DirectLevel)
		}
	}
	st := nw.Stats()
	fmt.Printf("\nrequests            %d\n", st.Requests)
	fmt.Printf("mean route distance %.3f\n", st.MeanRouteDistance)
	fmt.Printf("max route distance  %d\n", st.MaxRouteDistance)
	fmt.Printf("transform rounds    %d\n", st.TotalTransformRounds)
	fmt.Printf("WS(sigma)           %.1f (%.3f/request)\n", st.WorkingSetBound,
		st.WorkingSetBound/float64(st.Requests))
	fmt.Printf("height              %d\n", st.Height)
	fmt.Printf("dummies             %d\n", st.DummyCount)
}
