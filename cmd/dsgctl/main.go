// Command dsgctl is the reference wire client for a dsgserve daemon: the
// synchronous KV surface, the admin verbs, and a pipelined trace replay
// whose stats columns reproduce an in-process run byte-for-byte.
//
// Usage:
//
//	dsgctl -addr :4600 put 3 29 hello    # put key 29 from origin 3
//	dsgctl get 7 29                      # read key 29 from origin 7
//	dsgctl delete 3 29                   # tracked leave
//	dsgctl scan 0 24 8                   # up to 8 entries from key ≥ 24
//	dsgctl route 3 17                    # serve one communication request
//	dsgctl stats                         # cycle the generation, print stats
//	dsgctl replay -len 512 -trace-seed 7 # seeded trace, deterministic columns
//	dsgctl trace -limit 8                # p50/p99 per verb + slowest spans
//	dsgctl crash 4 | verify | addnode | removenode 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"lsasg/internal/obs"
	"lsasg/internal/wire"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dsgctl [-addr host:port] <get|put|delete|scan|route|stats|replay|trace|crash|verify|addnode|removenode> [args]")
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsgctl: "+format+"\n", args...)
	os.Exit(1)
}

func argInt(args []string, i int, name string) int {
	if i >= len(args) {
		fail("missing argument %s", name)
	}
	v, err := strconv.Atoi(args[i])
	if err != nil {
		fail("argument %s: %v", name, err)
	}
	return v
}

func main() {
	addr := flag.String("addr", "127.0.0.1:4600", "daemon address")
	traceN := flag.Int("n", 256, "replay: the daemon's keyspace size")
	traceLen := flag.Int("len", 512, "replay: trace length")
	traceSeed := flag.Int64("trace-seed", 1, "replay: trace seed")
	spanLimit := flag.Int("limit", 16, "trace: max spans to dump (0 for all retained)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	// Accept flags on either side of the subcommand (`dsgctl -limit 8 trace`
	// and `dsgctl trace -limit 8` both work): re-parse what follows it.
	if err := flag.CommandLine.Parse(args); err != nil {
		usage()
	}
	args = flag.CommandLine.Args()

	cl, err := wire.DialClient(*addr)
	if err != nil {
		fail("%v", err)
	}
	defer cl.Close()

	switch cmd {
	case "get":
		src, key := argInt(args, 0, "src"), argInt(args, 1, "key")
		val, ver, found, err := cl.Get(src, key)
		if err != nil {
			fail("%v", err)
		}
		if !found {
			fmt.Printf("key %d: not found\n", key)
			return
		}
		fmt.Printf("key %d = %q (v%d)\n", key, val, ver)
	case "put":
		src, key := argInt(args, 0, "src"), argInt(args, 1, "key")
		if len(args) < 3 {
			fail("missing argument value")
		}
		ver, existed, err := cl.Put(src, key, []byte(args[2]))
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("key %d = v%d (existed=%v)\n", key, ver, existed)
	case "delete":
		src, key := argInt(args, 0, "src"), argInt(args, 1, "key")
		existed, err := cl.Delete(src, key)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("key %d deleted (existed=%v)\n", key, existed)
	case "scan":
		src, start, limit := argInt(args, 0, "src"), argInt(args, 1, "start"), argInt(args, 2, "limit")
		kvs, err := cl.Scan(src, start, limit)
		if err != nil {
			fail("%v", err)
		}
		for _, kv := range kvs {
			fmt.Printf("%d\t%q\tv%d\n", kv.Key, kv.Value, kv.Version)
		}
		fmt.Printf("(%d entries)\n", len(kvs))
	case "route":
		src, dst := argInt(args, 0, "src"), argInt(args, 1, "dst")
		resp, err := cl.Route(src, dst)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("routed %d→%d: distance %d, %d hops, lag %d\n",
			src, dst, resp.Distance, resp.Hops, resp.Lag)
	case "stats":
		st, err := cl.Stats()
		if err != nil {
			fail("%v", err)
		}
		printStats(st)
	case "replay":
		ops := wire.ReplayTrace(*traceN, *traceLen, *traceSeed)
		resps, st, err := cl.Replay(ops)
		if err != nil {
			fail("%v", err)
		}
		failures := 0
		for _, r := range resps {
			if r.Code != wire.CodeOK {
				failures++
			}
		}
		fmt.Printf("replayed %d ops (%d failed)\n", len(resps), failures)
		fmt.Printf("columns: %s\n", wire.StatsColumns(st.Serve))
		printStats(st)
	case "trace":
		spans, lats, err := cl.TraceDump(*spanLimit)
		if err != nil {
			fail("%v", err)
		}
		for _, l := range lats {
			if l.Count == 0 {
				continue
			}
			fmt.Printf("%-7s n=%-8d p50=%-12v p99=%v\n", obs.KindName(l.Kind),
				l.Count, time.Duration(l.P50Nanos), time.Duration(l.P99Nanos))
		}
		for i, s := range spans {
			kind := obs.KindName(s.Kind)
			mark := ""
			if s.Cross {
				mark = " cross"
			}
			if s.RouteMiss {
				mark += " miss"
			}
			fmt.Printf("#%d seq=%d %s %d→%d total=%v epoch=%d dist=%d hops=%d lag=%d%s\n",
				i+1, s.Seq, kind, s.Src, s.Dst, time.Duration(s.TotalNanos),
				s.Epoch, s.RouteDistance, s.RouteHops, s.AdjustLag, mark)
			for _, leg := range s.Legs {
				fmt.Printf("    leg shard=%d dist=%d hops=%d lag=%d epoch=%d %v\n",
					leg.Shard, leg.Distance, leg.Hops, leg.AdjustLag, leg.Epoch, time.Duration(leg.Nanos))
			}
		}
		fmt.Printf("(%d spans)\n", len(spans))
	case "crash":
		if err := cl.Crash(argInt(args, 0, "node")); err != nil {
			fail("%v", err)
		}
		fmt.Println("crashed")
	case "verify":
		if err := cl.Verify(); err != nil {
			fail("%v", err)
		}
		fmt.Println("ok")
	case "addnode":
		idx, err := cl.AddNode()
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("joined node %d\n", idx)
	case "removenode":
		if err := cl.RemoveNode(argInt(args, 0, "node")); err != nil {
			fail("%v", err)
		}
		fmt.Println("removed")
	default:
		usage()
	}
}

func printStats(st wire.StatsPayload) {
	c, s := st.Cum, st.Serve
	fmt.Printf("cumulative: %d requests, mean distance %.3f (max %d), %d transform rounds, height %d, %d dummies\n",
		c.Requests, c.MeanRouteDistance, c.MaxRouteDistance, c.TotalTransformRounds, c.Height, c.DummyCount)
	if c.ShedAdjustments > 0 || c.Rebalances > 0 {
		fmt.Printf("            %d shed adjustments, %d rebalances (%d keys)\n",
			c.ShedAdjustments, c.Rebalances, c.MigratedKeys)
	}
	fmt.Printf("last generation: %d requests in %d batches, mean lag %.3f (max %d)\n",
		s.Requests, s.Batches, s.MeanAdjustLag, s.MaxAdjustLag)
	if s.Gets+s.Puts+s.Deletes+s.Scans > 0 {
		fmt.Printf("                 KV: %d gets (%d hits), %d puts (%d joins), %d deletes (%d hits), %d scans (%d entries)\n",
			s.Gets, s.GetHits, s.Puts, s.PutInserts, s.Deletes, s.DeleteHits, s.Scans, s.ScannedEntries)
	}
}
