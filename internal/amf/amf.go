// Package amf implements the paper's Approximate Median Finding algorithm
// (§V, Algorithm 2): given a linked list of n positions each holding a
// value, build a balanced probabilistic skip list, gather values leftward
// level by level (a node that did not step up forwards everything it holds
// to its nearest left neighbour that did), and from level ⌈log_{a/2} h⌉+1
// onward locally sort and uniformly sample a·h values, carrying left/right
// rank credits so the head can pick a value whose rank is within
// n/2 ± n/(2a) of the true median (Lemma 1).
//
// Values admit one special class, +∞, used by DSG's priority rule P1 for
// the communicating pair.
package amf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lsasg/internal/skiplist"
)

// Value is a totally ordered priority value: either a finite int64 or +∞.
type Value struct {
	Inf bool
	V   int64
}

// Finite returns a finite Value.
func Finite(v int64) Value { return Value{V: v} }

// Infinite returns the +∞ Value.
func Infinite() Value { return Value{Inf: true} }

// Less reports v < o.
func (v Value) Less(o Value) bool {
	if v.Inf {
		return false
	}
	if o.Inf {
		return true
	}
	return v.V < o.V
}

// Cmp returns -1, 0, or 1 as v <, ==, > o.
func (v Value) Cmp(o Value) int {
	switch {
	case v.Less(o):
		return -1
	case o.Less(v):
		return 1
	default:
		return 0
	}
}

// GreaterEq reports v ≥ o (the comparison DSG uses against the median).
func (v Value) GreaterEq(o Value) bool { return !v.Less(o) }

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.Inf {
		return "+inf"
	}
	return fmt.Sprintf("%d", v.V)
}

// item is a surviving value plus rank credits: below counts discarded
// original values known to be ≤ val, above counts those known to be ≥ val.
// Every original value is absorbed into exactly one credit, so
// Σ (1 + below + above) over surviving items is always n.
type item struct {
	val   Value
	below int64
	above int64
}

// Result is the outcome of one AMF run. The skip list built during the run
// is exposed for reuse: DSG reuses it for distributed counts (|gs|, L_low,
// L_high), a-balance chain detection, and group-id broadcast, and destroys
// it afterwards (paper Algorithm 1, steps 5–8).
type Result struct {
	Median Value
	Rounds int
	// List is the balanced skip list, nil when the input was small enough
	// (≤ 2a) for a direct linear gather.
	List *skiplist.SkipList

	n int
}

// Find runs AMF over the given values with balance parameter a. It panics
// on an empty input or a < 2.
func Find(values []Value, a int, rng *rand.Rand) *Result {
	n := len(values)
	if n == 0 {
		panic("amf: no values")
	}
	if a < 2 {
		panic(fmt.Sprintf("amf: need a >= 2, got %d", a))
	}
	if n == 1 {
		return &Result{Median: values[0], Rounds: 1, n: n}
	}
	if n <= 2*a {
		// The list is shorter than a constant: the left-most node gathers
		// everything linearly and computes the exact median.
		sorted := append([]Value(nil), values...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
		return &Result{
			Median: sorted[(n-1)/2],
			Rounds: 2 * n, // linear gather plus linear broadcast
			n:      n,
		}
	}

	sl := skiplist.Build(n, a, rng)
	rounds := sl.ConstructionRounds
	h := sl.Height()
	sampleSize := a * h
	threshold := samplingThreshold(h, a)

	held := make(map[int][]item, n)
	for p, v := range values {
		held[p] = []item{{val: v}}
	}
	for d := 0; d < h; d++ {
		lower, upper := sl.Level(d), sl.Level(d+1)
		k := 0
		collector := upper[0]
		levelRounds, segLoad := 0, 0
		for _, p := range lower {
			if k < len(upper) && upper[k] == p {
				collector = p
				k++
				segLoad = 0
				continue
			}
			segLoad += len(held[p])
			held[collector] = append(held[collector], held[p]...)
			delete(held, p)
			if segLoad > levelRounds {
				levelRounds = segLoad
			}
		}
		rounds += levelRounds
		if d >= threshold {
			for _, q := range upper {
				held[q] = sortAndSample(held[q], sampleSize)
			}
		}
	}
	head := sl.Level(0)[0]
	final := held[head]
	sort.SliceStable(final, func(i, j int) bool { return final[i].val.Less(final[j].val) })
	median := pickMedianByRanks(final, n)
	rounds += sl.BroadcastRounds() // announce the median to the base level
	return &Result{Median: median, Rounds: rounds, List: sl, n: n}
}

// samplingThreshold returns ⌈log_{a/2} h⌉ + 1, the level from which
// sampling starts. For a ≤ 4 the base degenerates; we clamp it to 2, which
// only makes sampling start later (never earlier) than the paper requires.
func samplingThreshold(h, a int) int {
	base := float64(a) / 2
	if base < 2 {
		base = 2
	}
	if h <= 1 {
		return 1
	}
	t := int(math.Ceil(math.Log(float64(h))/math.Log(base))) + 1
	if t < 1 {
		t = 1
	}
	return t
}

// sortAndSample sorts the items and uniformly samples `size` of them,
// always retaining both extremes. Discarded items fold their credits into
// retained neighbours: the item itself and its above-credit go to the
// nearest retained item below it (which it is ≥), its below-credit goes to
// the nearest retained item above it (which bounds it from above).
func sortAndSample(items []item, size int) []item {
	if len(items) <= size || len(items) < 3 {
		sort.SliceStable(items, func(i, j int) bool { return items[i].val.Less(items[j].val) })
		return items
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].val.Less(items[j].val) })
	if size < 2 {
		size = 2
	}
	m := len(items)
	retained := make([]int, 0, size)
	last := -1
	for j := 0; j < size; j++ {
		idx := j * (m - 1) / (size - 1)
		if idx != last {
			retained = append(retained, idx)
			last = idx
		}
	}
	out := make([]item, len(retained))
	for k, idx := range retained {
		out[k] = items[idx]
	}
	// A discarded item v' between retained L and R satisfies L ≤ v' ≤ R,
	// so its above-credit is valid as L's above and its below-credit as
	// R's below. v' itself could go either way; alternating sides keeps
	// the two credit kinds in balance, which the midpoint rank estimator
	// in pickMedianByRanks depends on (a one-sided fold biases the
	// selection toward an extreme).
	flip := false
	for k := 0; k+1 < len(retained); k++ {
		lo, hi := retained[k], retained[k+1]
		for i := lo + 1; i < hi; i++ {
			if flip {
				out[k].above += items[i].above
				out[k+1].below += 1 + items[i].below
			} else {
				out[k].above += 1 + items[i].above
				out[k+1].below += items[i].below
			}
			flip = !flip
		}
	}
	return out
}

// pickMedianByRanks selects the surviving value whose estimated global rank
// is closest to (n+1)/2. For item j in the sorted list, the values certainly
// ≤ it are itself, its below-credit, and every lower item with its
// below-credit; symmetric for ≥; the rest are uncertain and split evenly.
func pickMedianByRanks(sorted []item, n int) Value {
	if len(sorted) == 0 {
		panic("amf: empty final list")
	}
	prefix := make([]int64, len(sorted)+1) // prefix[j] = Σ_{i<j} (1 + below_i)
	suffix := make([]int64, len(sorted)+1) // suffix[j] = Σ_{i>=j} (1 + above_i)
	for j, it := range sorted {
		prefix[j+1] = prefix[j] + 1 + it.below
	}
	for j := len(sorted) - 1; j >= 0; j-- {
		suffix[j] = suffix[j+1] + 1 + sorted[j].above
	}
	target := float64(n+1) / 2
	bestJ, bestDist := 0, math.Inf(1)
	for j, it := range sorted {
		certainLE := prefix[j] + 1 + it.below
		certainGE := suffix[j+1] + 1 + it.above
		uncertain := float64(int64(n) - certainLE - certainGE + 1) // self counted twice
		est := float64(certainLE) + uncertain/2
		if d := math.Abs(est - target); d < bestDist {
			bestDist = d
			bestJ = j
		}
	}
	return sorted[bestJ].val
}

// Count runs a distributed count of positions satisfying pred, reusing the
// skip list when one was built. It returns the count and the round cost.
func (r *Result) Count(pred func(p int) bool) (int, int) {
	if r.List != nil {
		return r.List.Count(pred)
	}
	c := 0
	for p := 0; p < r.n; p++ {
		if pred(p) {
			c++
		}
	}
	return c, 2 * r.n // linear gather + linear broadcast along the list
}

// BroadcastRounds returns the cost of broadcasting one value to the whole
// list (used to propagate a split group's new group-id).
func (r *Result) BroadcastRounds() int {
	if r.List != nil {
		return r.List.BroadcastRounds()
	}
	return r.n
}

// TrueMedianRankWindow reports, for testing and the E1 experiment, the rank
// window [n/2 - n/2a, n/2 + n/2a] of Lemma 1 for a list of length n.
func TrueMedianRankWindow(n, a int) (lo, hi float64) {
	half := float64(n) / 2
	slack := float64(n) / float64(2*a)
	return half - slack, half + slack
}
