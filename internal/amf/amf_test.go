package amf

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// trueRank returns how many values in vs are strictly less than m and how
// many are ≤ m, bracketing m's rank range under ties.
func trueRank(vs []Value, m Value) (lo, hi int) {
	for _, v := range vs {
		if v.Less(m) {
			lo++
		}
		if !m.Less(v) {
			hi++
		}
	}
	return lo, hi
}

func TestValueOrdering(t *testing.T) {
	inf := Infinite()
	a, b := Finite(-5), Finite(7)
	if !a.Less(b) || b.Less(a) {
		t.Error("finite ordering broken")
	}
	if !a.Less(inf) || inf.Less(a) {
		t.Error("infinity ordering broken")
	}
	if inf.Less(inf) {
		t.Error("inf < inf")
	}
	if inf.Cmp(inf) != 0 || a.Cmp(a) != 0 {
		t.Error("Cmp of equal values not 0")
	}
	if !inf.GreaterEq(b) || !b.GreaterEq(b) || a.GreaterEq(b) {
		t.Error("GreaterEq broken")
	}
	if inf.String() != "+inf" || b.String() != "7" {
		t.Error("String broken")
	}
}

func TestExactMedianSmallLists(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 8; n++ { // all ≤ 2a for a=4 → exact
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = Finite(int64(rng.Intn(100)))
		}
		res := Find(vs, 4, rng)
		sorted := append([]Value(nil), vs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
		want := sorted[(n-1)/2]
		if res.Median.Cmp(want) != 0 {
			t.Fatalf("n=%d: median %v, want %v", n, res.Median, want)
		}
		if res.List != nil {
			t.Fatalf("n=%d: built a skip list for a tiny input", n)
		}
	}
}

// TestLemma1RankWindow is experiment E1's core assertion: the AMF output's
// rank lies within n/2 ± n/(2a) (Lemma 1). We run many random instances
// per (n, a) and require every one inside the window.
func TestLemma1RankWindow(t *testing.T) {
	for _, a := range []int{4, 8} {
		for _, n := range []int{50, 200, 1000} {
			for trial := 0; trial < 15; trial++ {
				rng := rand.New(rand.NewSource(int64(n*100 + trial + a)))
				vs := make([]Value, n)
				for i := range vs {
					vs[i] = Finite(int64(rng.Intn(1 << 20)))
				}
				res := Find(vs, a, rng)
				lo, hi := trueRank(vs, res.Median)
				wLo, wHi := TrueMedianRankWindow(n, a)
				// The returned value's rank range [lo+1, hi] must intersect
				// the Lemma 1 window.
				if float64(hi) < wLo || float64(lo+1) > wHi {
					t.Errorf("a=%d n=%d trial=%d: median rank in [%d,%d], window [%.1f,%.1f]",
						a, n, trial, lo+1, hi, wLo, wHi)
				}
			}
		}
	}
}

func TestMedianWithInfinities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Majority-infinite input: the median must be ∞.
	vs := []Value{Infinite(), Infinite(), Infinite(), Finite(1), Finite(2)}
	res := Find(vs, 2, rng)
	if !res.Median.Inf {
		t.Fatalf("median = %v, want +inf", res.Median)
	}
	// Two infinities among many negatives: the median is finite.
	n := 100
	vs = make([]Value, n)
	for i := range vs {
		vs[i] = Finite(int64(-i * 10))
	}
	vs[0], vs[1] = Infinite(), Infinite()
	res = Find(vs, 4, rng)
	if res.Median.Inf {
		t.Fatal("median should be finite when infinities are a minority")
	}
}

// TestRoundsPolylog: under CONGEST one value crosses a link per round, so
// AMF's gather costs Θ(a²h) per level below the sampling threshold and the
// total is polylogarithmic in n (the paper's "expected O(log n)" counts
// value-batches, not single-value rounds). Assert sub-linear growth and an
// explicit a²·(h+2)² envelope.
func TestRoundsPolylog(t *testing.T) {
	const a = 4
	meanRounds := func(n int) (rounds, height float64) {
		totalR, totalH := 0, 0
		const trials = 10
		for i := 0; i < trials; i++ {
			rng := rand.New(rand.NewSource(int64(n + i)))
			vs := make([]Value, n)
			for j := range vs {
				vs[j] = Finite(int64(j))
			}
			res := Find(vs, a, rng)
			totalR += res.Rounds
			totalH += res.List.Height()
		}
		return float64(totalR) / trials, float64(totalH) / trials
	}
	small, _ := meanRounds(128)
	large, h := meanRounds(4096)
	if large > 16*small {
		t.Errorf("AMF rounds grow near-linearly: %.1f → %.1f for 32x input", small, large)
	}
	if limit := 8 * a * a * (h + 2) * (h + 2); large > limit {
		t.Errorf("AMF rounds %.1f exceed the a²(h+2)² envelope %.1f (h=%.1f)", large, limit, h)
	}
}

func TestCountReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 200
	vs := make([]Value, n)
	for i := range vs {
		vs[i] = Finite(int64(i))
	}
	res := Find(vs, 4, rng)
	count, rounds := res.Count(func(p int) bool { return p < 50 })
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
	if rounds <= 0 {
		t.Fatal("count rounds must be positive")
	}
	if res.BroadcastRounds() <= 0 {
		t.Fatal("broadcast rounds must be positive")
	}
}

// TestCreditConservationQuick: every original value is accounted for in the
// surviving items' credits (the invariant behind pickMedianByRanks).
func TestCreditConservationQuick(t *testing.T) {
	f := func(seed int64, szRaw uint16) bool {
		n := int(szRaw%3000) + 64
		rng := rand.New(rand.NewSource(seed))
		items := make([]item, n)
		for i := range items {
			items[i] = item{val: Finite(int64(rng.Intn(1000)))}
		}
		sampled := sortAndSample(items, 16)
		var total int64
		for _, it := range sampled {
			total += 1 + it.below + it.above
		}
		return total == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMedianAllEqual: ties must not confuse rank selection.
func TestMedianAllEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vs := make([]Value, 500)
	for i := range vs {
		vs[i] = Finite(42)
	}
	res := Find(vs, 4, rng)
	if res.Median.Inf || res.Median.V != 42 {
		t.Fatalf("median = %v, want 42", res.Median)
	}
}

func TestFindPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { Find(nil, 4, rng) },
		func() { Find([]Value{Finite(1)}, 1, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}
