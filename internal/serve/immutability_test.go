package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lsasg/internal/core"
)

// This file is the immutability property test for structurally shared
// snapshots: an epoch, once published, must answer every route byte-
// identically forever, no matter how much churn (joins, leaves, crashes,
// repairs) later publishes write through the shared structure. Run under
// -race in CI (the race job's serve step), this also proves the publisher
// never writes into trie or node versions reachable from an old epoch.

// snapshotFingerprint routes every pair in the snapshot and flattens paths,
// level drops, and error texts into one comparable string.
func snapshotFingerprint(s *Snapshot, pairs [][2]int64) string {
	var b strings.Builder
	for _, p := range pairs {
		r, err := s.Route(p[0], p[1])
		fmt.Fprintf(&b, "%d->%d:", p[0], p[1])
		for _, n := range r.Path {
			fmt.Fprintf(&b, "%d,", n.ID())
		}
		fmt.Fprintf(&b, "drops=%d", r.LevelDrops)
		if err != nil {
			fmt.Fprintf(&b, " err=%v", err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestSnapshotImmutableUnderChurn publishes an epoch, then drives a full
// free-running churn+crash+repair trace against the live graph while a
// concurrent reader keeps re-fingerprinting the OLD epoch. The old epoch's
// answers must never change — not at the end, and not at any point in
// between.
func TestSnapshotImmutableUnderChurn(t *testing.T) {
	d := core.New(64, core.Config{A: 4, Seed: 29})
	e := New(d, Config{BatchSize: 8, TolerateAdjustMiss: true})

	// Deterministic probe pairs spanning the initial id range, including ids
	// that the churn below will remove or crash.
	var pairs [][2]int64
	for i := int64(0); i < 64; i += 5 {
		pairs = append(pairs, [2]int64{i, 63 - i})
		pairs = append(pairs, [2]int64{(i * 7) % 64, (i*11 + 3) % 64})
	}

	snap0 := e.Snapshot()
	want := snapshotFingerprint(snap0, pairs)

	var (
		mismatch atomic.Bool
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if snapshotFingerprint(snap0, pairs) != want {
					mismatch.Store(true)
					return
				}
			}
		}
	}()

	e.Start()
	// Churn: joins of fresh ids, leaves of initial ids (each at most once,
	// never one that crashes), crashes of a disjoint subset, plus routes to
	// drive the detect→repair cycle. Barriers between rounds force publishes
	// so the live epoch advances far past snap0.
	nextJoin := int64(1000)
	for round := 0; round < 8; round++ {
		for i := 0; i < 4; i++ {
			e.SubmitJoin(nextJoin)
			nextJoin++
		}
		e.SubmitLeave(int64(round * 3))  // ids 0,3,...,21: leave exactly once
		e.SubmitCrash(int64(40 + round)) // ids 40..47: crash, disjoint from leaves
		if err := e.MigrateMembership(nil, nil); err != nil {
			t.Fatal(err)
		}
		// Routes against the fresh epoch: some hit corpses and enqueue
		// repairs, some succeed; either way they must not disturb snap0.
		e.Route(1, 62)
		e.Route(2, int64(40+round))
		e.Route(int64(44), 1)
		if err := e.MigrateMembership(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	close(stop)
	wg.Wait()

	if mismatch.Load() {
		t.Fatal("old epoch's routes changed while churn was in flight")
	}
	if got := snapshotFingerprint(snap0, pairs); got != want {
		t.Fatalf("old epoch diverged after churn:\nbefore:\n%s\nafter:\n%s", want, got)
	}
	if live := e.Snapshot(); live.Epoch == snap0.Epoch {
		t.Fatal("churn published no new epochs; the test exercised nothing")
	}
}
