package serve

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"lsasg/internal/core"
	"lsasg/internal/workload"
)

// feed pushes the request list into a channel the engine consumes.
func feed(reqs []workload.Request) <-chan core.Op {
	ch := make(chan core.Op)
	go func() {
		defer close(ch)
		for _, r := range reqs {
			ch <- core.RouteOp(int64(r.Src), int64(r.Dst))
		}
	}()
	return ch
}

// runServe serves one fixed workload with the given parallelism and returns
// the aggregate stats plus the per-request result log (in sequence order).
func runServe(t *testing.T, p int, collect bool) (Stats, []Result) {
	t.Helper()
	const n = 64
	var log []Result
	cfg := Config{Parallelism: p, BatchSize: 16}
	if collect {
		cfg.OnResult = func(r Result) { log = append(log, r) }
	}
	e := New(core.New(n, core.Config{A: 4, Seed: 21}), cfg)
	reqs := workload.Zipf{Seed: 21, S: 1.2}.Generate(n, 480)
	st, err := e.Serve(context.Background(), feed(reqs))
	if err != nil {
		t.Fatalf("p=%d: %v", p, err)
	}
	return st, log
}

// TestServeDeterministicAcrossParallelism is the engine's core contract:
// same seed + same batch schedule ⇒ byte-identical aggregate stats (and
// identical per-request results) no matter how many routing workers run.
func TestServeDeterministicAcrossParallelism(t *testing.T) {
	base, baseLog := runServe(t, 1, true)
	baseJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		st, log := runServe(t, p, true)
		gotJSON, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(baseJSON) {
			t.Errorf("p=%d stats diverge from p=1:\n p=1: %s\n p=%d: %s", p, baseJSON, p, gotJSON)
		}
		if !reflect.DeepEqual(log, baseLog) {
			for i := range baseLog {
				if i < len(log) && !reflect.DeepEqual(log[i], baseLog[i]) {
					t.Fatalf("p=%d: first divergent request %d:\n p=1: %+v\n p=%d: %+v",
						p, i, baseLog[i], p, log[i])
				}
			}
			t.Errorf("p=%d: result logs differ in length: %d vs %d", p, len(log), len(baseLog))
		}
	}
}

// TestServeStatsShape sanity-checks the aggregate bookkeeping.
func TestServeStatsShape(t *testing.T) {
	st, log := runServe(t, 4, true)
	if st.Requests != 480 || int(st.Requests) != len(log) {
		t.Fatalf("served %d requests, logged %d, want 480", st.Requests, len(log))
	}
	if st.Batches != 30 || st.SnapshotsPublished != 30 {
		t.Errorf("480 requests at k=16: %d batches, %d snapshots, want 30/30", st.Batches, st.SnapshotsPublished)
	}
	// Full batches of 16: lag runs 1..16, mean 8.5.
	if got := st.MeanAdjustLag(); got != 8.5 {
		t.Errorf("mean adjust lag %v, want 8.5", got)
	}
	if st.MaxAdjustLag != 16 {
		t.Errorf("max adjust lag %d, want 16", st.MaxAdjustLag)
	}
	if st.MeanRouteDistance() <= 0 {
		t.Errorf("mean route distance %v, want > 0", st.MeanRouteDistance())
	}
	if st.HeightAfter <= 0 {
		t.Errorf("height after %d", st.HeightAfter)
	}
	for i, r := range log {
		if r.Seq != int64(i) {
			t.Fatalf("result %d carries seq %d", i, r.Seq)
		}
		if want := int64(i / 16); r.Epoch != want {
			t.Fatalf("request %d routed against epoch %d, want %d", i, r.Epoch, want)
		}
		if r.DirectLevel < 1 {
			t.Fatalf("request %d not directly linked after adjustment: level %d", i, r.DirectLevel)
		}
	}
}

// TestServeAdaptsTopology: repeated pairs must become cheap once their
// adjustment lands in a published snapshot — the self-adjusting property
// survives batching.
func TestServeAdaptsTopology(t *testing.T) {
	const n = 64
	d := core.New(n, core.Config{A: 4, Seed: 3})
	var log []Result
	e := New(d, Config{Parallelism: 4, BatchSize: 8, OnResult: func(r Result) { log = append(log, r) }})
	reqs := make([]workload.Request, 120)
	for i := range reqs {
		reqs[i] = workload.Request{Src: 5, Dst: 50}
	}
	if _, err := e.Serve(context.Background(), feed(reqs)); err != nil {
		t.Fatal(err)
	}
	// From the second batch on, the pair routes in an adapted snapshot.
	for i := 8; i < len(log); i++ {
		if log[i].RouteDistance != 0 {
			t.Fatalf("request %d still routes at distance %d after adaptation", i, log[i].RouteDistance)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("live DSG invalid after serve: %v", err)
	}
}

// TestServeContextCancel: cancelling mid-stream returns ctx.Err() with the
// stats accumulated so far, and the live DSG stays valid.
func TestServeContextCancel(t *testing.T) {
	const n = 32
	d := core.New(n, core.Config{A: 4, Seed: 9})
	e := New(d, Config{Parallelism: 2, BatchSize: 8})
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan core.Op)
	go func() {
		defer close(ch)
		reqs := workload.Uniform{Seed: 9}.Generate(n, 1000)
		for i, r := range reqs {
			// The documented producer pattern: select on the same ctx so the
			// feeder unblocks once Serve stops receiving.
			select {
			case ch <- core.RouteOp(int64(r.Src), int64(r.Dst)):
			case <-ctx.Done():
				return
			}
			if i == 100 {
				cancel()
			}
		}
	}()
	st, err := e.Serve(ctx, ch)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Requests == 0 {
		t.Error("no requests served before cancellation")
	}
	if verr := d.Validate(); verr != nil {
		t.Fatalf("live DSG invalid after cancel: %v", verr)
	}
}

// TestServeBadPairAborts: an unknown node id aborts the run with an error.
func TestServeBadPairAborts(t *testing.T) {
	e := New(core.New(16, core.Config{A: 4, Seed: 1}), Config{BatchSize: 4})
	ch := make(chan core.Op, 2)
	ch <- core.RouteOp(1, 2)
	ch <- core.RouteOp(3, 99)
	close(ch)
	if _, err := e.Serve(context.Background(), ch); err == nil {
		t.Fatal("expected error for unknown node id")
	}
}
