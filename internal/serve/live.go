package serve

import (
	"errors"
	"fmt"

	"lsasg/internal/core"
	"lsasg/internal/obs"
	"lsasg/internal/skipgraph"
)

// This file is the free-running mode: Route may be called from any number of
// goroutines; completed requests are offered to a bounded queue that the
// single adjuster goroutine drains in batches, publishing a snapshot per
// batch. Routing never blocks on adjustment — when the queue is full the
// adjustment is shed and counted, trading adaptation speed for throughput.

// LiveStats is a point-in-time sample of the free-running counters.
type LiveStats struct {
	Routed             int64 // requests routed against a snapshot
	RouteDistanceSum   int64 // Σ d_S over routed requests
	Enqueued           int64 // tasks accepted into the queue
	Applied            int64 // adjustments applied by the adjuster
	Shed               int64 // tasks dropped because the queue was full
	Failed             int64 // tasks the adjuster consumed but could not apply
	Joins, Leaves      int64 // membership events applied
	Crashes            int64 // crash injections applied
	DeadDetected       int64 // routes that ran into a dead peer
	CrashRepairs       int64 // dead nodes spliced out by the adjuster
	SnapshotsPublished int64
	Pending            int64 // tasks accepted but not yet consumed
}

// Start launches the adjuster goroutine. It must be called exactly once, and
// only on an engine that is not used via Serve.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		panic("serve: Engine.Start called twice")
	}
	if e.serving {
		panic("serve: Engine.Start while Serve is running")
	}
	e.started = true
	e.queue = make(chan task, e.cfg.backlog())
	e.done = make(chan struct{})
	go e.adjustLoop()
}

// Stop closes the queue, waits for the adjuster to drain it, publishes the
// final snapshot, and returns the first error the adjuster encountered (nil
// in a healthy run).
func (e *Engine) Stop() error {
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		return fmt.Errorf("serve: Stop before Start")
	}
	if !e.closing {
		e.closing = true
		close(e.queue)
	}
	e.mu.Unlock()
	<-e.done
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// maxRouteAttempts bounds the detect→repair→retry loop in Route: each
// attempt runs against a strictly newer snapshot, but repeated repair
// failures (e.g. TolerateAdjustMiss drops during a migration, or fresh
// crashes landing every epoch) could otherwise retry forever. After the
// bound the last DeadRouteError is surfaced and the caller degrades.
const maxRouteAttempts = 4

// Route routes src → dst against the freshest published snapshot and offers
// the pair to the adjustment queue. Safe for concurrent use. The returned
// epoch identifies the snapshot the request saw.
//
// A route that runs into a crashed peer is the failure detector of the
// free-running mode: the dead node is reported (DeadDetected), a repair task
// is offered to the adjuster, and the route retries only if a snapshot newer
// than the one it failed on has already been published (the repair may be in
// it), at most maxRouteAttempts times in total. Without a fresher snapshot,
// or once the attempts are spent, the last DeadRouteError is returned and
// the caller degrades — the repair lands asynchronously and a later route
// succeeds. Repair tasks are sheddable like everything else: a dropped one
// is re-offered by the next detection.
func (e *Engine) Route(src, dst int64) (skipgraph.RouteResult, int64, error) {
	snap := e.snap.Load()
	for attempt := 1; ; attempt++ {
		r, err := snap.Route(src, dst)
		if err == nil {
			e.routed.Add(1)
			e.routeDist.Add(int64(r.Distance()))
			e.offer(task{op: opAdjust, src: src, dst: dst})
			return r, snap.Epoch, nil
		}
		var dre *skipgraph.DeadRouteError
		if !errors.As(err, &dre) {
			return r, snap.Epoch, err
		}
		e.detected.Add(1)
		e.cfg.Tracer.RetryEvent(obs.EventDeadRoute)
		e.offer(task{op: opRepair, src: dre.Node.ID()})
		if attempt >= maxRouteAttempts {
			return r, snap.Epoch, err
		}
		if fresh := e.snap.Load(); fresh.Epoch > snap.Epoch {
			snap = fresh
			continue
		}
		return r, snap.Epoch, err
	}
}

// SubmitJoin enqueues a node join to be applied by the adjuster (serialized
// with all other mutation). It reports whether the event was accepted; a
// full queue sheds it like any other adjustment.
func (e *Engine) SubmitJoin(id int64) bool {
	return e.offer(task{op: opJoin, src: id})
}

// SubmitLeave enqueues a node departure.
func (e *Engine) SubmitLeave(id int64) bool {
	return e.offer(task{op: opLeave, src: id})
}

// SubmitCrash enqueues a crash injection: the node fails in place, leaving
// its neighbours' references dangling until a route detects the corpse and a
// repair splices it out.
func (e *Engine) SubmitCrash(id int64) bool {
	return e.offer(task{op: opCrash, src: id})
}

// offer attempts a non-blocking enqueue; a full or closing queue sheds.
// enqueued is incremented before the send (and rolled back on shed) so
// enqueued ≥ consumed always holds — Pending never reads negative even when
// the adjuster consumes a task the instant it lands.
func (e *Engine) offer(t task) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.started || e.closing {
		e.shed.Add(1)
		e.cfg.Tracer.RetryEvent(obs.EventShed)
		return false
	}
	e.enqueued.Add(1)
	select {
	case e.queue <- t:
		return true
	default:
		e.enqueued.Add(-1)
		e.shed.Add(1)
		e.cfg.Tracer.RetryEvent(obs.EventShed)
		return false
	}
}

// Live samples the free-running counters.
func (e *Engine) Live() LiveStats {
	enq, con := e.enqueued.Load(), e.consumed.Load()
	return LiveStats{
		Routed:             e.routed.Load(),
		RouteDistanceSum:   e.routeDist.Load(),
		Enqueued:           enq,
		Applied:            e.applied.Load(),
		Shed:               e.shed.Load(),
		Failed:             e.failed.Load(),
		Joins:              e.joins.Load(),
		Leaves:             e.leaves.Load(),
		Crashes:            e.crashes.Load(),
		DeadDetected:       e.detected.Load(),
		CrashRepairs:       e.repairs.Load(),
		SnapshotsPublished: e.epochs.Load(),
		Pending:            enq - con,
	}
}

// Pending returns the number of tasks accepted but not yet consumed — the
// instantaneous adjustment lag behind the routed stream.
func (e *Engine) Pending() int64 {
	return e.enqueued.Load() - e.consumed.Load()
}

// adjustLoop drains the queue in batches of BatchSize, applies each batch to
// the live graph, and publishes a snapshot per batch. It blocks for the
// first task of a batch and fills the rest opportunistically, so a saturated
// queue yields full batches while a trickle still adjusts promptly.
func (e *Engine) adjustLoop() {
	defer close(e.done)
	k := e.cfg.batchSize()
	batch := make([]task, 0, k)
	for {
		t, ok := <-e.queue
		if !ok {
			return
		}
		batch = append(batch[:0], t)
		closed := false
	fill:
		for len(batch) < k {
			select {
			case t2, ok2 := <-e.queue:
				if !ok2 {
					closed = true
					break fill
				}
				batch = append(batch, t2)
			default:
				break fill
			}
		}
		e.applyLive(batch)
		e.publish()
		for _, bt := range batch {
			if bt.op == opBarrier {
				close(bt.done)
			}
		}
		if closed {
			return
		}
	}
}

// applyLive applies one batch of tasks in order. The first error is recorded
// and later tasks still apply — in free-running mode a bad request (e.g. a
// route that raced a departure) must not wedge the adjuster.
func (e *Engine) applyLive(batch []task) {
	for _, t := range batch {
		if t.op == opBarrier {
			continue // signalled by adjustLoop after the snapshot publishes
		}
		var err error
		switch t.op {
		case opAdjust:
			_, err = e.dsg.Adjust(t.src, t.dst)
			if err == nil {
				e.applied.Add(1)
			}
		case opJoin:
			if t.entry != nil {
				err = e.dsg.Restore(*t.entry)
			} else {
				_, err = e.dsg.Add(t.src)
			}
			if err == nil {
				e.joins.Add(1)
			}
		case opLeave:
			err = e.dsg.RemoveNode(t.src)
			if err == nil {
				e.leaves.Add(1)
			} else if errors.Is(err, core.ErrCrashedNode) {
				// The departure raced a crash of the same node (a migration
				// drain discovering a death): the graceful path is gone, so
				// repair the corpse instead — the id is spliced out exactly
				// once either way, and a paired destination-side join can
				// still recover it elsewhere.
				if e.dsg.RepairCrashedID(t.src) {
					e.repairs.Add(1)
				}
				e.leaves.Add(1)
				err = nil
			}
		case opCrash:
			err = e.dsg.Crash(t.src)
			if err == nil {
				e.crashes.Add(1)
			}
		case opRepair:
			// Idempotent: a node already repaired (or never crashed) is a
			// no-op, not an error — many detections may race one failure.
			if e.dsg.RepairCrashedID(t.src) {
				e.repairs.Add(1)
			}
		}
		e.consumed.Add(1)
		if err != nil {
			e.failed.Add(1)
			tolerated := e.cfg.TolerateAdjustMiss &&
				((t.op == opAdjust && (errors.Is(err, core.ErrUnknownNode) || errors.Is(err, core.ErrCrashedNode))) ||
					(t.op == opCrash && errors.Is(err, core.ErrUnknownNode)))
			if !tolerated {
				e.errMu.Lock()
				if e.firstErr == nil {
					e.firstErr = err
				}
				e.errMu.Unlock()
			}
		}
		if t.done != nil {
			t.done <- err
		}
	}
}
