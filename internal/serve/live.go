package serve

import (
	"errors"
	"fmt"

	"lsasg/internal/core"
	"lsasg/internal/skipgraph"
)

// This file is the free-running mode: Route may be called from any number of
// goroutines; completed requests are offered to a bounded queue that the
// single adjuster goroutine drains in batches, publishing a snapshot per
// batch. Routing never blocks on adjustment — when the queue is full the
// adjustment is shed and counted, trading adaptation speed for throughput.

// LiveStats is a point-in-time sample of the free-running counters.
type LiveStats struct {
	Routed             int64 // requests routed against a snapshot
	RouteDistanceSum   int64 // Σ d_S over routed requests
	Enqueued           int64 // tasks accepted into the queue
	Applied            int64 // adjustments applied by the adjuster
	Shed               int64 // tasks dropped because the queue was full
	Failed             int64 // tasks the adjuster consumed but could not apply
	Joins, Leaves      int64 // membership events applied
	SnapshotsPublished int64
	Pending            int64 // tasks accepted but not yet consumed
}

// Start launches the adjuster goroutine. It must be called exactly once, and
// only on an engine that is not used via Serve.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		panic("serve: Engine.Start called twice")
	}
	if e.serving {
		panic("serve: Engine.Start while Serve is running")
	}
	e.started = true
	e.queue = make(chan task, e.cfg.backlog())
	e.done = make(chan struct{})
	go e.adjustLoop()
}

// Stop closes the queue, waits for the adjuster to drain it, publishes the
// final snapshot, and returns the first error the adjuster encountered (nil
// in a healthy run).
func (e *Engine) Stop() error {
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		return fmt.Errorf("serve: Stop before Start")
	}
	if !e.closing {
		e.closing = true
		close(e.queue)
	}
	e.mu.Unlock()
	<-e.done
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// Route routes src → dst against the freshest published snapshot and offers
// the pair to the adjustment queue. Safe for concurrent use. The returned
// epoch identifies the snapshot the request saw.
func (e *Engine) Route(src, dst int64) (skipgraph.RouteResult, int64, error) {
	snap := e.snap.Load()
	r, err := snap.Route(src, dst)
	if err != nil {
		return r, snap.Epoch, err
	}
	e.routed.Add(1)
	e.routeDist.Add(int64(r.Distance()))
	e.offer(task{op: opAdjust, src: src, dst: dst})
	return r, snap.Epoch, nil
}

// SubmitJoin enqueues a node join to be applied by the adjuster (serialized
// with all other mutation). It reports whether the event was accepted; a
// full queue sheds it like any other adjustment.
func (e *Engine) SubmitJoin(id int64) bool {
	return e.offer(task{op: opJoin, src: id})
}

// SubmitLeave enqueues a node departure.
func (e *Engine) SubmitLeave(id int64) bool {
	return e.offer(task{op: opLeave, src: id})
}

// offer attempts a non-blocking enqueue; a full or closing queue sheds.
// enqueued is incremented before the send (and rolled back on shed) so
// enqueued ≥ consumed always holds — Pending never reads negative even when
// the adjuster consumes a task the instant it lands.
func (e *Engine) offer(t task) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.started || e.closing {
		e.shed.Add(1)
		return false
	}
	e.enqueued.Add(1)
	select {
	case e.queue <- t:
		return true
	default:
		e.enqueued.Add(-1)
		e.shed.Add(1)
		return false
	}
}

// Live samples the free-running counters.
func (e *Engine) Live() LiveStats {
	enq, con := e.enqueued.Load(), e.consumed.Load()
	return LiveStats{
		Routed:             e.routed.Load(),
		RouteDistanceSum:   e.routeDist.Load(),
		Enqueued:           enq,
		Applied:            e.applied.Load(),
		Shed:               e.shed.Load(),
		Failed:             e.failed.Load(),
		Joins:              e.joins.Load(),
		Leaves:             e.leaves.Load(),
		SnapshotsPublished: e.epochs.Load(),
		Pending:            enq - con,
	}
}

// Pending returns the number of tasks accepted but not yet consumed — the
// instantaneous adjustment lag behind the routed stream.
func (e *Engine) Pending() int64 {
	return e.enqueued.Load() - e.consumed.Load()
}

// adjustLoop drains the queue in batches of BatchSize, applies each batch to
// the live graph, and publishes a snapshot per batch. It blocks for the
// first task of a batch and fills the rest opportunistically, so a saturated
// queue yields full batches while a trickle still adjusts promptly.
func (e *Engine) adjustLoop() {
	defer close(e.done)
	k := e.cfg.batchSize()
	batch := make([]task, 0, k)
	for {
		t, ok := <-e.queue
		if !ok {
			return
		}
		batch = append(batch[:0], t)
		closed := false
	fill:
		for len(batch) < k {
			select {
			case t2, ok2 := <-e.queue:
				if !ok2 {
					closed = true
					break fill
				}
				batch = append(batch, t2)
			default:
				break fill
			}
		}
		e.applyLive(batch)
		e.publish()
		for _, bt := range batch {
			if bt.op == opBarrier {
				close(bt.done)
			}
		}
		if closed {
			return
		}
	}
}

// applyLive applies one batch of tasks in order. The first error is recorded
// and later tasks still apply — in free-running mode a bad request (e.g. a
// route that raced a departure) must not wedge the adjuster.
func (e *Engine) applyLive(batch []task) {
	for _, t := range batch {
		if t.op == opBarrier {
			continue // signalled by adjustLoop after the snapshot publishes
		}
		var err error
		switch t.op {
		case opAdjust:
			_, err = e.dsg.Adjust(t.src, t.dst)
			if err == nil {
				e.applied.Add(1)
			}
		case opJoin:
			_, err = e.dsg.Add(t.src)
			if err == nil {
				e.joins.Add(1)
			}
		case opLeave:
			err = e.dsg.RemoveNode(t.src)
			if err == nil {
				e.leaves.Add(1)
			}
		}
		e.consumed.Add(1)
		if err != nil {
			e.failed.Add(1)
			tolerated := t.op == opAdjust && e.cfg.TolerateAdjustMiss && errors.Is(err, core.ErrUnknownNode)
			if !tolerated {
				e.errMu.Lock()
				if e.firstErr == nil {
					e.firstErr = err
				}
				e.errMu.Unlock()
			}
		}
		if t.done != nil {
			t.done <- err
		}
	}
}
