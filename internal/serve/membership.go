package serve

import "fmt"

// This file is the membership-migration surface used by the sharded service
// (internal/shard): a rebalancer moves a contiguous key range between two
// engines' graphs as a tracked leave/join batch. Each engine mode has its
// own entry point — ApplyMembershipBatch for an idle engine (the
// deterministic pipeline migrates at inter-window barriers) and
// MigrateMembership for a running one (tasks serialize through the adjuster
// like all other mutation, but unlike SubmitJoin/SubmitLeave they are never
// shed: a dropped migration op would strand a key in zero or two shards).

// ApplyMembershipBatch applies joins then leaves directly to the live graph
// and publishes one fresh snapshot. It requires an idle engine — neither
// Serve nor free-running mode active — because it mutates outside the
// adjuster. Failing ids are skipped (the rest of the batch still applies)
// and the first error is returned; the snapshot publishes either way so the
// routing side always observes whatever did apply.
func (e *Engine) ApplyMembershipBatch(joins, leaves []int64) error {
	e.mu.Lock()
	if e.started || e.serving {
		e.mu.Unlock()
		return fmt.Errorf("serve: ApplyMembershipBatch needs an idle engine (no Serve, no Start)")
	}
	e.serving = true // reserve the engine against overlapping mutation
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.serving = false
		e.mu.Unlock()
	}()

	var firstErr error
	for _, id := range joins {
		if _, err := e.dsg.Add(id); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		e.joins.Add(1)
	}
	for _, id := range leaves {
		if err := e.dsg.RemoveNode(id); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		e.leaves.Add(1)
	}
	e.publish()
	return firstErr
}

// MigrateMembership enqueues joins then leaves onto a free-running engine's
// adjustment queue with blocking sends (never shed), then waits until the
// snapshot containing every one of them has published. It returns the first
// apply error (nil in a healthy migration). The publish barrier is what lets
// a caller order "keys visible in the destination shard" strictly before a
// directory epoch swap.
func (e *Engine) MigrateMembership(joins, leaves []int64) error {
	dones := make([]chan error, 0, len(joins)+len(leaves))
	enqueue := func(op taskOp, id int64) error {
		ch := make(chan error, 1) // buffered: the adjuster never blocks on it
		if err := e.offerWait(task{op: op, src: id, done: ch}); err != nil {
			return err
		}
		dones = append(dones, ch)
		return nil
	}
	for _, id := range joins {
		if err := enqueue(opJoin, id); err != nil {
			return err
		}
	}
	for _, id := range leaves {
		if err := enqueue(opLeave, id); err != nil {
			return err
		}
	}
	barrier := make(chan error)
	if err := e.offerWait(task{op: opBarrier, done: barrier}); err != nil {
		return err
	}
	var firstErr error
	for _, ch := range dones {
		if err := <-ch; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	<-barrier // closed after the batch's snapshot publication
	return firstErr
}

// offerWait is the blocking twin of offer: it enqueues t, waiting for queue
// space instead of shedding. Holding the read lock across the send is safe —
// the adjuster drains independently of the lock, and Stop cannot close the
// queue until the lock is released — and is what guarantees the send never
// races the close. Barriers stay out of the Enqueued/Pending books: they are
// control flow, not work.
func (e *Engine) offerWait(t task) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.started || e.closing {
		return fmt.Errorf("serve: membership migration on an engine that is not running")
	}
	if t.op != opBarrier {
		e.enqueued.Add(1)
	}
	e.queue <- t
	return nil
}
