package serve

import (
	"fmt"

	"lsasg/internal/skipgraph"
)

// This file is the membership-migration surface used by the sharded service
// (internal/shard): a rebalancer moves a contiguous key range between two
// engines' graphs as a tracked leave/join batch. Each engine mode has its
// own entry point — ApplyMigrationBatch for an idle engine (the
// deterministic pipeline migrates at inter-window barriers) and
// MigrateEntries for a running one (tasks serialize through the adjuster
// like all other mutation, but unlike SubmitJoin/SubmitLeave they are never
// shed: a dropped migration op would strand a key in zero or two shards).
// Joins are skipgraph.Entry records so a migrated key arrives with its
// value and version intact; the int64-only wrappers remain for callers
// moving bare topology (tests, churn drivers).

// bareEntries lifts plain ids into value-less entries.
func bareEntries(ids []int64) []skipgraph.Entry {
	es := make([]skipgraph.Entry, len(ids))
	for i, id := range ids {
		es[i] = skipgraph.Entry{ID: id}
	}
	return es
}

// ApplyMembershipBatch applies value-less joins then leaves on an idle
// engine; see ApplyMigrationBatch.
func (e *Engine) ApplyMembershipBatch(joins, leaves []int64) error {
	return e.ApplyMigrationBatch(bareEntries(joins), leaves)
}

// ApplyMigrationBatch applies joins (with carried value records) then
// leaves directly to the live graph and publishes one fresh snapshot. It
// requires an idle engine — neither Serve nor free-running mode active —
// because it mutates outside the adjuster. Failing entries are skipped (the
// rest of the batch still applies) and the first error is returned; the
// snapshot publishes either way so the routing side always observes
// whatever did apply.
func (e *Engine) ApplyMigrationBatch(joins []skipgraph.Entry, leaves []int64) error {
	e.mu.Lock()
	if e.started || e.serving {
		e.mu.Unlock()
		return fmt.Errorf("serve: ApplyMigrationBatch needs an idle engine (no Serve, no Start)")
	}
	e.serving = true // reserve the engine against overlapping mutation
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.serving = false
		e.mu.Unlock()
	}()

	var firstErr error
	for _, en := range joins {
		if err := e.dsg.Restore(en); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		e.joins.Add(1)
	}
	for _, id := range leaves {
		if err := e.dsg.RemoveNode(id); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		e.leaves.Add(1)
	}
	e.publish()
	return firstErr
}

// MigrateMembership enqueues value-less joins then leaves on a free-running
// engine; see MigrateEntries.
func (e *Engine) MigrateMembership(joins, leaves []int64) error {
	return e.MigrateEntries(bareEntries(joins), leaves)
}

// MigrateEntries enqueues joins (with carried value records) then leaves
// onto a free-running engine's adjustment queue with blocking sends (never
// shed), then waits until the snapshot containing every one of them has
// published. It returns the first apply error (nil in a healthy migration).
// The publish barrier is what lets a caller order "keys visible in the
// destination shard" strictly before a directory epoch swap.
func (e *Engine) MigrateEntries(joins []skipgraph.Entry, leaves []int64) error {
	dones := make([]chan error, 0, len(joins)+len(leaves))
	enqueue := func(t task) error {
		ch := make(chan error, 1) // buffered: the adjuster never blocks on it
		t.done = ch
		if err := e.offerWait(t); err != nil {
			return err
		}
		dones = append(dones, ch)
		return nil
	}
	for i := range joins {
		if err := enqueue(task{op: opJoin, src: joins[i].ID, entry: &joins[i]}); err != nil {
			return err
		}
	}
	for _, id := range leaves {
		if err := enqueue(task{op: opLeave, src: id}); err != nil {
			return err
		}
	}
	barrier := make(chan error)
	if err := e.offerWait(task{op: opBarrier, done: barrier}); err != nil {
		return err
	}
	var firstErr error
	for _, ch := range dones {
		if err := <-ch; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	<-barrier // closed after the batch's snapshot publication
	return firstErr
}

// offerWait is the blocking twin of offer: it enqueues t, waiting for queue
// space instead of shedding. Holding the read lock across the send is safe —
// the adjuster drains independently of the lock, and Stop cannot close the
// queue until the lock is released — and is what guarantees the send never
// races the close. Barriers stay out of the Enqueued/Pending books: they are
// control flow, not work.
func (e *Engine) offerWait(t task) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.started || e.closing {
		return fmt.Errorf("serve: membership migration on an engine that is not running")
	}
	if t.op != opBarrier {
		e.enqueued.Add(1)
	}
	e.queue <- t
	return nil
}
