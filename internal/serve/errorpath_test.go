package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"lsasg/internal/core"
	"lsasg/internal/skipgraph"
)

// This file is the error-path layer for the serving engine: queue shedding,
// adjustment-miss tolerance, early cancellation, and the free-running crash
// detect/repair cycle. The happy paths live in serve_test.go.

// TestOfferShedsWhenQueueFull pins the shed-on-full contract without racing a
// live adjuster: the engine is put in the started state by hand (no
// adjustLoop draining), so the queue fills deterministically.
func TestOfferShedsWhenQueueFull(t *testing.T) {
	e := New(core.New(16, core.Config{A: 4, Seed: 1}), Config{})
	e.mu.Lock()
	e.started = true
	e.queue = make(chan task, 1)
	e.mu.Unlock()
	if !e.SubmitJoin(100) {
		t.Fatal("first offer should be accepted into the empty queue")
	}
	if e.SubmitLeave(3) {
		t.Error("second offer should shed: queue is full")
	}
	if e.SubmitCrash(4) {
		t.Error("third offer should shed: queue is still full")
	}
	st := e.Live()
	if st.Enqueued != 1 || st.Shed != 2 || st.Pending != 1 {
		t.Errorf("enqueued=%d shed=%d pending=%d, want 1/2/1", st.Enqueued, st.Shed, st.Pending)
	}
}

// TestOfferShedsBeforeStart: an engine that is not free-running sheds every
// submission (and a Route still succeeds — only its adjustment is lost).
func TestOfferShedsBeforeStart(t *testing.T) {
	e := New(core.New(16, core.Config{A: 4, Seed: 2}), Config{})
	if e.SubmitCrash(5) {
		t.Error("submission before Start should shed")
	}
	if _, _, err := e.Route(1, 9); err != nil {
		t.Fatalf("route before Start: %v", err)
	}
	st := e.Live()
	if st.Routed != 1 || st.Shed != 2 || st.Enqueued != 0 {
		t.Errorf("routed=%d shed=%d enqueued=%d, want 1/2/0", st.Routed, st.Shed, st.Enqueued)
	}
}

// TestTolerateAdjustMiss drives applyLive directly (single-threaded, no
// adjuster goroutine) through every miss class and checks which ones reach
// the engine's first-error slot.
func TestTolerateAdjustMiss(t *testing.T) {
	cases := []struct {
		name     string
		tolerate bool
		batch    task
		prep     func(d *core.DSG)
		fatal    bool // should land in firstErr
	}{
		{name: "unknown adjust intolerant", tolerate: false,
			batch: task{op: opAdjust, src: 1, dst: 99}, fatal: true},
		{name: "unknown adjust tolerated", tolerate: true,
			batch: task{op: opAdjust, src: 1, dst: 99}, fatal: false},
		{name: "crashed endpoint adjust tolerated", tolerate: true,
			batch: task{op: opAdjust, src: 1, dst: 9},
			prep:  func(d *core.DSG) { d.Crash(9) }, fatal: false},
		{name: "crashed endpoint adjust intolerant", tolerate: false,
			batch: task{op: opAdjust, src: 1, dst: 9},
			prep:  func(d *core.DSG) { d.Crash(9) }, fatal: true},
		{name: "crash of migrated id tolerated", tolerate: true,
			batch: task{op: opCrash, src: 99}, fatal: false},
		{name: "unknown leave stays fatal", tolerate: true,
			batch: task{op: opLeave, src: 99}, fatal: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := core.New(16, core.Config{A: 4, Seed: 7})
			if tc.prep != nil {
				tc.prep(d)
			}
			e := New(d, Config{TolerateAdjustMiss: tc.tolerate})
			e.applyLive([]task{tc.batch})
			st := e.Live()
			if st.Failed != 1 {
				t.Fatalf("failed=%d, want 1", st.Failed)
			}
			e.errMu.Lock()
			gotFatal := e.firstErr != nil
			e.errMu.Unlock()
			if gotFatal != tc.fatal {
				t.Errorf("firstErr set = %v, want %v (err: %v)", gotFatal, tc.fatal, e.firstErr)
			}
		})
	}
}

// TestApplyLiveLeaveRacesCrash: a leave consumed after the same node crashed
// must degrade into the crash repair — the id leaves the graph exactly once,
// counted as both a leave and a repair, and is not an engine fault.
func TestApplyLiveLeaveRacesCrash(t *testing.T) {
	d := core.New(16, core.Config{A: 4, Seed: 11})
	if err := d.Crash(6); err != nil {
		t.Fatal(err)
	}
	e := New(d, Config{})
	e.applyLive([]task{{op: opLeave, src: 6}})
	st := e.Live()
	if st.Leaves != 1 || st.CrashRepairs != 1 || st.Failed != 0 {
		t.Errorf("leaves=%d repairs=%d failed=%d, want 1/1/0", st.Leaves, st.CrashRepairs, st.Failed)
	}
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.firstErr != nil {
		t.Errorf("firstErr = %v, want nil", e.firstErr)
	}
	if d.NodeByID(6) != nil {
		t.Error("node 6 still present after leave-races-crash repair")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid after repair: %v", err)
	}
}

// TestServeEarlyCancel: a context cancelled before Serve starts returns
// ctx.Err() having served nothing, and the engine stays reusable.
func TestServeEarlyCancel(t *testing.T) {
	d := core.New(16, core.Config{A: 4, Seed: 13})
	e := New(d, Config{BatchSize: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch := make(chan core.Op, 1)
	ch <- core.RouteOp(1, 2)
	close(ch)
	st, err := e.Serve(ctx, ch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Requests != 0 {
		t.Errorf("served %d requests under a dead context, want 0", st.Requests)
	}
	// The engine was released: a fresh healthy run must work.
	ch2 := make(chan core.Op, 1)
	ch2 <- core.RouteOp(1, 2)
	close(ch2)
	if _, err := e.Serve(context.Background(), ch2); err != nil {
		t.Fatalf("reuse after early cancel: %v", err)
	}
}

// TestRouteRetryBounded pins the retry cap on the detect→repair→retry loop:
// when every retry finds a fresher snapshot that STILL contains the corpse
// (repair failing or perpetually behind), Route must give up after
// maxRouteAttempts and surface the DeadRouteError instead of livelocking.
// The unbounded pre-fix loop hangs here: a background goroutine publishes an
// ever-newer epoch of the same corpse-bearing replica as fast as it can.
func TestRouteRetryBounded(t *testing.T) {
	d := core.New(32, core.Config{A: 4, Seed: 19})
	if err := d.Crash(7); err != nil {
		t.Fatal(err)
	}
	e := New(d, Config{}) // the epoch-0 replica contains the corpse
	base := e.snap.Load()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
				e.snap.Store(&Snapshot{Epoch: base.Epoch + i, Graph: base.Graph})
			}
		}
	}()
	_, _, err := e.Route(3, 7)
	close(stop)
	wg.Wait()
	var dre *skipgraph.DeadRouteError
	if !errors.As(err, &dre) || dre.Node.ID() != 7 {
		t.Fatalf("route to corpse: %v, want DeadRouteError on 7", err)
	}
	if det := e.Live().DeadDetected; det < 1 || det > maxRouteAttempts {
		t.Errorf("DeadDetected = %d, want in [1, %d]", det, maxRouteAttempts)
	}
}

// TestBacklogClampedToBatchSize pins the Config.backlog clamp: a backlog
// below the batch size can never hold a full batch, so it is raised to
// BatchSize; defaults and sane explicit values are untouched.
func TestBacklogClampedToBatchSize(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{}, 128},                          // default: 4 × default batch 32
		{Config{BatchSize: 64}, 256},             // default: 4 × batch
		{Config{BatchSize: 64, Backlog: 8}, 64},  // clamped up to batch
		{Config{BatchSize: 2, Backlog: 5}, 5},    // explicit value ≥ batch kept
		{Config{BatchSize: 16, Backlog: 16}, 16}, // boundary kept
	}
	for _, tc := range cases {
		if got := tc.cfg.backlog(); got != tc.want {
			t.Errorf("backlog(batch=%d, backlog=%d) = %d, want %d",
				tc.cfg.BatchSize, tc.cfg.Backlog, got, tc.want)
		}
	}

	// Behavioral: a free-running engine configured with Backlog < BatchSize
	// must still accept and apply a full batch of submissions.
	d := core.New(16, core.Config{A: 4, Seed: 23})
	e := New(d, Config{BatchSize: 8, Backlog: 2})
	e.Start()
	for id := int64(100); id < 106; id++ {
		if !e.SubmitJoin(id) {
			t.Fatalf("join %d shed despite clamped backlog", id)
		}
	}
	if err := e.MigrateMembership(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if st := e.Live(); st.Joins != 6 {
		t.Errorf("joins applied = %d, want 6", st.Joins)
	}
}

// TestLiveCrashDetectRepair is the free-running failure cycle end to end:
// inject a crash, detect it at route time, let the adjuster splice the corpse
// out, and observe routing recover in a later epoch.
func TestLiveCrashDetectRepair(t *testing.T) {
	d := core.New(32, core.Config{A: 4, Seed: 17})
	e := New(d, Config{BatchSize: 4, TolerateAdjustMiss: true})
	e.Start()
	if !e.SubmitCrash(12) {
		t.Fatal("crash submission shed")
	}
	// Barrier: the crash is applied and a snapshot containing the corpse has
	// published before we probe it.
	if err := e.MigrateMembership(nil, nil); err != nil {
		t.Fatal(err)
	}
	_, _, err := e.Route(3, 12)
	var dre *skipgraph.DeadRouteError
	if !errors.As(err, &dre) || dre.Node.ID() != 12 {
		t.Fatalf("probe of corpse: %v, want DeadRouteError on 12", err)
	}
	// Barrier again: the repair task offered by the detection has applied.
	if err := e.MigrateMembership(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Route(3, 25); err != nil {
		t.Fatalf("route after repair: %v", err)
	}
	if err := e.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	st := e.Live()
	if st.Crashes != 1 || st.DeadDetected < 1 || st.CrashRepairs != 1 {
		t.Errorf("crashes=%d detected=%d repairs=%d, want 1/≥1/1", st.Crashes, st.DeadDetected, st.CrashRepairs)
	}
	if d.NodeByID(12) != nil {
		t.Error("corpse 12 still present after detect/repair cycle")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("live DSG invalid after crash cycle: %v", err)
	}
}
