package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"lsasg/internal/core"
)

// TestServeStress is the race-detector stress for the snapshot path: many
// goroutines hammer Route (reading published snapshots) while the adjuster
// mutates the live graph, publishes new snapshots, and absorbs concurrent
// join/leave churn. CI runs this with -race -count=2 on every PR.
func TestServeStress(t *testing.T) {
	const (
		n       = 96
		workers = 8
		perW    = 400
	)
	d := core.New(n, core.Config{A: 4, Seed: 42})
	e := New(d, Config{BatchSize: 16, Backlog: 64})
	e.Start()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perW; i++ {
				u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
				if u == v {
					continue
				}
				if _, _, err := e.Route(u, v); err != nil {
					t.Errorf("worker %d: route %d→%d: %v", w, u, v, err)
					return
				}
			}
		}(w)
	}
	// Churn transient ids (≥ n) through the same adjuster while routing runs:
	// joins and leaves serialize with the transformations, so the stable core
	// 0..n-1 stays routable in every snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			id := int64(n + i%8)
			if e.SubmitJoin(id) {
				e.SubmitLeave(id)
			}
		}
	}()
	wg.Wait()
	if err := e.Stop(); err != nil {
		// A leave can fail when its join was shed; only that pairing is
		// tolerated here (SubmitLeave fires only after an accepted join, but
		// the join itself may fail on a duplicate transient id whose earlier
		// leave was shed).
		t.Logf("adjuster reported: %v", err)
	}

	live := e.Live()
	if live.Routed == 0 || live.Applied == 0 || live.SnapshotsPublished == 0 {
		t.Fatalf("stress did nothing: %+v", live)
	}
	if live.Enqueued != live.Applied+live.Failed+live.Joins+live.Leaves || live.Pending != 0 {
		t.Errorf("counter books don't balance after drain: %+v", live)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("live DSG invalid after stress: %v", err)
	}

	// The final snapshot must route the whole stable core.
	snap := e.Snapshot()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
		if u == v {
			continue
		}
		if _, err := snap.Route(u, v); err != nil {
			t.Fatalf("final snapshot cannot route %d→%d: %v", u, v, err)
		}
	}
}

// TestModeConflict: one engine, one mode — Serve on a started engine (and
// an overlapping Serve) must error instead of racing the adjuster.
func TestModeConflict(t *testing.T) {
	d := core.New(16, core.Config{A: 4, Seed: 1})
	e := New(d, Config{})
	e.Start()
	defer e.Stop()
	ch := make(chan core.Pair)
	close(ch)
	if _, err := e.Serve(context.Background(), ch); err == nil {
		t.Fatal("Serve on a Start()ed engine must fail")
	}

	e2 := New(core.New(16, core.Config{A: 4, Seed: 1}), Config{})
	blocked := make(chan core.Pair) // never closed during the first Serve
	ret := make(chan error, 1)
	go func() {
		_, err := e2.Serve(context.Background(), blocked)
		ret <- err
	}()
	// Wait until the first Serve is committed to its mode flag.
	for {
		e2.mu.Lock()
		s := e2.serving
		e2.mu.Unlock()
		if s {
			break
		}
	}
	ch2 := make(chan core.Pair)
	close(ch2)
	if _, err := e2.Serve(context.Background(), ch2); err == nil {
		t.Fatal("overlapping Serve must fail")
	}
	close(blocked)
	if err := <-ret; err != nil {
		t.Fatalf("first Serve failed: %v", err)
	}
}

// TestStopIdempotentAndRouteAfterStop: stopping twice is safe and a Route
// after Stop sheds its adjustment instead of panicking on the closed queue.
func TestStopIdempotentAndRouteAfterStop(t *testing.T) {
	d := core.New(16, core.Config{A: 4, Seed: 1})
	e := New(d, Config{})
	e.Start()
	if _, _, err := e.Route(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	shedBefore := e.Live().Shed
	if _, _, err := e.Route(3, 4); err != nil {
		t.Fatal(err)
	}
	if e.Live().Shed != shedBefore+1 {
		t.Error("route after stop should shed its adjustment")
	}
}
