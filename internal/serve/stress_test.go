package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"lsasg/internal/core"
)

// TestServeStress is the race-detector stress for the snapshot path: many
// goroutines hammer Route (reading published snapshots) while the adjuster
// mutates the live graph, publishes new snapshots, and absorbs concurrent
// join/leave churn. CI runs this with -race -count=2 on every PR.
func TestServeStress(t *testing.T) {
	const (
		n       = 96
		workers = 8
		perW    = 400
	)
	d := core.New(n, core.Config{A: 4, Seed: 42})
	e := New(d, Config{BatchSize: 16, Backlog: 64})
	e.Start()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perW; i++ {
				u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
				if u == v {
					continue
				}
				if _, _, err := e.Route(u, v); err != nil {
					t.Errorf("worker %d: route %d→%d: %v", w, u, v, err)
					return
				}
			}
		}(w)
	}
	// Churn transient ids (≥ n) through the same adjuster while routing runs:
	// joins and leaves serialize with the transformations, so the stable core
	// 0..n-1 stays routable in every snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			id := int64(n + i%8)
			if e.SubmitJoin(id) {
				e.SubmitLeave(id)
			}
		}
	}()
	wg.Wait()
	if err := e.Stop(); err != nil {
		// A leave can fail when its join was shed; only that pairing is
		// tolerated here (SubmitLeave fires only after an accepted join, but
		// the join itself may fail on a duplicate transient id whose earlier
		// leave was shed).
		t.Logf("adjuster reported: %v", err)
	}

	live := e.Live()
	if live.Routed == 0 || live.Applied == 0 || live.SnapshotsPublished == 0 {
		t.Fatalf("stress did nothing: %+v", live)
	}
	if live.Enqueued != live.Applied+live.Failed+live.Joins+live.Leaves || live.Pending != 0 {
		t.Errorf("counter books don't balance after drain: %+v", live)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("live DSG invalid after stress: %v", err)
	}

	// The final snapshot must route the whole stable core.
	snap := e.Snapshot()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
		if u == v {
			continue
		}
		if _, err := snap.Route(u, v); err != nil {
			t.Fatalf("final snapshot cannot route %d→%d: %v", u, v, err)
		}
	}
}

// TestMigrateMembershipStress races the never-shed migration path against
// routing load: workers route on snapshots while a migrator cycles key
// ranges out of and back into the graph through MigrateMembership, whose
// publish barrier must hold under the race detector. CI runs this alongside
// TestServeStress with -race.
func TestMigrateMembershipStress(t *testing.T) {
	const (
		n       = 64
		workers = 4
		perW    = 250
	)
	d := core.New(n, core.Config{A: 4, Seed: 11})
	e := New(d, Config{BatchSize: 8, Backlog: 32})
	e.Start()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < perW; i++ {
				// Route only within the stable core [8, n): keys below 8
				// migrate out and back concurrently.
				u := int64(8 + rng.Intn(n-8))
				v := int64(8 + rng.Intn(n-8))
				if u == v {
					continue
				}
				if _, _, err := e.Route(u, v); err != nil {
					t.Errorf("worker %d: route %d→%d: %v", w, u, v, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		moving := []int64{0, 1, 2, 3, 4, 5, 6, 7}
		for cycle := 0; cycle < 10; cycle++ {
			if err := e.MigrateMembership(nil, moving); err != nil {
				t.Errorf("cycle %d: migrate out: %v", cycle, err)
				return
			}
			if err := e.MigrateMembership(moving, nil); err != nil {
				t.Errorf("cycle %d: migrate in: %v", cycle, err)
				return
			}
		}
	}()
	wg.Wait()
	if err := e.Stop(); err != nil {
		t.Fatalf("adjuster reported: %v", err)
	}
	live := e.Live()
	if live.Joins != 80 || live.Leaves != 80 {
		t.Errorf("migration cycles applied %d joins / %d leaves, want 80/80", live.Joins, live.Leaves)
	}
	if live.Enqueued != live.Applied+live.Failed+live.Joins+live.Leaves || live.Pending != 0 {
		t.Errorf("counter books don't balance after drain: %+v", live)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("live DSG invalid after migration stress: %v", err)
	}
}

// TestApplyMembershipBatchIdle: the idle-mode migration entry point applies
// the batch, publishes exactly one snapshot, and refuses busy engines.
func TestApplyMembershipBatchIdle(t *testing.T) {
	d := core.New(16, core.Config{A: 4, Seed: 5})
	e := New(d, Config{})
	epoch0 := e.Snapshot().Epoch
	if err := e.ApplyMembershipBatch([]int64{100, 101}, []int64{3}); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.Epoch != epoch0+1 {
		t.Errorf("epoch advanced %d→%d, want one publication", epoch0, snap.Epoch)
	}
	if _, err := snap.Route(100, 101); err != nil {
		t.Errorf("joined keys not routable in the new snapshot: %v", err)
	}
	if _, err := snap.Route(1, 3); err == nil {
		t.Error("left key 3 still routable in the new snapshot")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("live DSG invalid after batch: %v", err)
	}

	busy := New(core.New(16, core.Config{A: 4, Seed: 5}), Config{})
	busy.Start()
	defer busy.Stop()
	if err := busy.ApplyMembershipBatch([]int64{50}, nil); err == nil {
		t.Error("ApplyMembershipBatch on a started engine must fail")
	}
}

// TestModeConflict: one engine, one mode — Serve on a started engine (and
// an overlapping Serve) must error instead of racing the adjuster.
func TestModeConflict(t *testing.T) {
	d := core.New(16, core.Config{A: 4, Seed: 1})
	e := New(d, Config{})
	e.Start()
	defer e.Stop()
	ch := make(chan core.Op)
	close(ch)
	if _, err := e.Serve(context.Background(), ch); err == nil {
		t.Fatal("Serve on a Start()ed engine must fail")
	}

	e2 := New(core.New(16, core.Config{A: 4, Seed: 1}), Config{})
	blocked := make(chan core.Op) // never closed during the first Serve
	ret := make(chan error, 1)
	go func() {
		_, err := e2.Serve(context.Background(), blocked)
		ret <- err
	}()
	// Wait until the first Serve is committed to its mode flag.
	for {
		e2.mu.Lock()
		s := e2.serving
		e2.mu.Unlock()
		if s {
			break
		}
	}
	ch2 := make(chan core.Op)
	close(ch2)
	if _, err := e2.Serve(context.Background(), ch2); err == nil {
		t.Fatal("overlapping Serve must fail")
	}
	close(blocked)
	if err := <-ret; err != nil {
		t.Fatalf("first Serve failed: %v", err)
	}
}

// TestStopIdempotentAndRouteAfterStop: stopping twice is safe and a Route
// after Stop sheds its adjustment instead of panicking on the closed queue.
func TestStopIdempotentAndRouteAfterStop(t *testing.T) {
	d := core.New(16, core.Config{A: 4, Seed: 1})
	e := New(d, Config{})
	e.Start()
	if _, _, err := e.Route(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	shedBefore := e.Live().Shed
	if _, _, err := e.Route(3, 4); err != nil {
		t.Fatal(err)
	}
	if e.Live().Shed != shedBefore+1 {
		t.Error("route after stop should shed its adjustment")
	}
}
