package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lsasg/internal/core"
	"lsasg/internal/obs"
	"lsasg/internal/skipgraph"
)

// Config parameterizes an Engine.
type Config struct {
	// Parallelism is the number of routing workers used by Serve (and the
	// suggested number of Route callers in free-running mode). Values < 1
	// mean 1.
	Parallelism int
	// BatchSize is the number of adjustments applied between snapshot
	// publications. Values < 1 mean 32.
	BatchSize int
	// Backlog bounds the free-running adjustment queue. Values < 1 mean
	// 4×BatchSize; values below BatchSize are clamped up to BatchSize —
	// the adjuster blocks for the first task of a batch and fills the rest
	// from the queue, so a queue smaller than a batch could never deliver
	// one and would stall adaptation behind shedding.
	Backlog int
	// OnResult, when non-nil, observes every request served by Serve, in
	// sequence order (the deterministic order, independent of Parallelism).
	OnResult func(r Result)
	// TolerateAdjustMiss, when true, keeps a free-running adjustment that
	// fails on an unknown node id (core.ErrUnknownNode) or a crashed
	// endpoint (core.ErrCrashedNode) out of the engine's first-error slot —
	// it still counts in LiveStats.Failed. A sharded service sets it:
	// routing legs race shard migrations and crash repairs by design, and a
	// leg whose endpoint migrated away (or died) between route and
	// adjustment is expected, not an engine fault. It also covers crash
	// submissions for ids that already migrated off the shard.
	//
	// In the deterministic Serve pipeline it extends the same tolerance to
	// route ops: a route leg whose endpoint a Delete removed earlier in the
	// stream (the data plane mutates membership mid-window) records a
	// RouteMiss / zero adjustment instead of aborting the run. Error-free
	// streams behave identically with or without it.
	TolerateAdjustMiss bool
	// Tracer, when non-nil, turns on the observability layer
	// (internal/obs): stage latency histograms around the batch pipeline
	// (route leg, adjust apply), per-verb op latency, and slowest-span
	// exemplars. A nil tracer keeps the hot path timing-free — the cost is
	// one predictable branch per choke point. Wall-clock measurements never
	// feed Stats, so tracing cannot perturb the deterministic contracts.
	Tracer *obs.Tracer
	// TraceLegsOnly marks this engine as serving legs of a sharded
	// dispatcher: it still feeds the tracer's stage histograms and the
	// per-leg timing (Result.RouteNanos), but leaves whole-op spans and
	// per-verb latency to the dispatcher that assembles the legs —
	// otherwise every cross-shard op would be double-counted.
	TraceLegsOnly bool
}

func (c Config) parallelism() int {
	if c.Parallelism < 1 {
		return 1
	}
	return c.Parallelism
}

func (c Config) batchSize() int {
	if c.BatchSize < 1 {
		return 32
	}
	return c.BatchSize
}

func (c Config) backlog() int {
	if c.Backlog < 1 {
		return 4 * c.batchSize()
	}
	if c.Backlog < c.batchSize() {
		return c.batchSize()
	}
	return c.Backlog
}

// Snapshot is an immutable routing replica of the topology at a published
// epoch. The replica structurally shares every node the publishing batch did
// not touch with neighbouring epochs (copy-on-write, see
// skipgraph.Publisher); it is never mutated after publication and is safe
// for any number of concurrent readers.
type Snapshot struct {
	Epoch int64
	Graph *skipgraph.Replica
}

// Route routes src → dst inside the snapshot.
func (s *Snapshot) Route(src, dst int64) (skipgraph.RouteResult, error) {
	return s.Graph.RouteKeys(skipgraph.KeyOf(src), skipgraph.KeyOf(dst))
}

// Get reads a key's value record from the snapshot — lock-free, no
// coordination with the adjuster.
func (s *Snapshot) Get(key int64) ([]byte, int64, bool) {
	return s.Graph.GetValue(skipgraph.KeyOf(key))
}

// Scan reads up to limit value-bearing entries from the snapshot's level-0
// run, starting at the first key ≥ start. Lock-free like Get.
func (s *Snapshot) Scan(start int64, limit int) []skipgraph.Entry {
	if limit <= 0 {
		limit = 1
	}
	return s.Graph.ScanFrom(skipgraph.KeyOf(start), limit)
}

// Result reports one request served by the deterministic Serve pipeline:
// the routing half (and any Get/Scan read) measured against the batch's
// snapshot, the adjustment half from the serialized mutation.
type Result struct {
	Seq   int64   // 0-based position in the request sequence
	Op    core.Op // the request envelope
	Epoch int64   // snapshot epoch the request was routed against

	RouteDistance int // d_S(σ) in the snapshot
	RouteHops     int
	// RouteMiss marks a KV op whose access path could not be measured in
	// the snapshot (an endpoint not yet published or already gone — e.g. a
	// Put of a brand-new key routes before its join is visible). The data
	// outcome is unaffected; only the distance sample is absent.
	RouteMiss bool
	// AdjustLag is the number of adjustments pending when the request was
	// routed (its own included): requests route against the snapshot of the
	// previous batch, so the lag is the request's 1-based position within
	// its batch.
	AdjustLag int

	// RouteNanos is the wall-clock duration of the op's snapshot-side work
	// (route plus any Get/Scan read). Populated only when the engine has a
	// Tracer; exempt from the determinism contracts and never fed into
	// Stats.
	RouteNanos int64

	TransformRounds int
	DirectLevel     int
	Alpha           int
	HeightAfter     int
	RepairInserted  int
	RepairRemoved   int

	// KV outcome. Get and Scan report the snapshot read (the epoch above is
	// the read point); Put and Delete report the adjuster's outcome.
	Found   bool              // OpGet: key present with a value
	Value   []byte            // OpGet: the value read (immutable)
	Version int64             // OpGet: version read; OpPut: version written
	Existed bool              // OpPut: overwrote; OpDelete: removed something
	Entries []skipgraph.Entry // OpScan: the entries read
}

// Stats aggregates one Serve run. Every field is deterministic for a fixed
// seed and batch schedule: identical across Parallelism settings.
type Stats struct {
	Requests           int64
	Batches            int64
	SnapshotsPublished int64

	TotalRouteDistance   int64
	MaxRouteDistance     int
	TotalRouteHops       int64
	TotalTransformRounds int64
	TotalAdjustLag       int64
	MaxAdjustLag         int
	RepairInserted       int64
	RepairRemoved        int64

	// KV op counters. Gets/Puts/Deletes/Scans count ops by kind (Requests
	// counts every op, routes included); hits and inserts split the outcomes;
	// ScannedEntries totals entries returned across scans; RouteMisses counts
	// KV ops whose access path was unmeasurable in the snapshot.
	Gets           int64
	GetHits        int64
	Puts           int64
	PutInserts     int64 // puts that joined a new key (vs updated in place)
	Deletes        int64
	DeleteHits     int64
	Scans          int64
	ScannedEntries int64
	RouteMisses    int64

	HeightAfter int // live-graph height after the final batch
}

// MeanRouteDistance returns the mean snapshot routing distance per request.
func (s Stats) MeanRouteDistance() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.TotalRouteDistance) / float64(s.Requests)
}

// MeanAdjustLag returns the mean number of pending adjustments at route time.
func (s Stats) MeanAdjustLag() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.TotalAdjustLag) / float64(s.Requests)
}

// Engine serves communication requests concurrently over one DSG. An engine
// is used in exactly one mode: either a single Serve call (deterministic
// batch pipeline) or Start/Route/Stop (free-running). The DSG must not be
// touched by anyone else while the engine is running — all mutation goes
// through the engine's single adjuster.
type Engine struct {
	dsg *core.DSG
	cfg Config

	// pub owns snapshot publication: it tracks which nodes each batch
	// touches and path-copies exactly those into the next epoch's replica.
	// Like the live graph, it must only be used by the adjuster.
	pub *skipgraph.Publisher

	snap atomic.Pointer[Snapshot]

	// Free-running state.
	queue   chan task
	done    chan struct{}
	mu      sync.RWMutex // guards closing against Route's enqueue, and the mode flags
	closing bool
	started bool // free-running mode active (Start called)
	serving bool // a Serve call is in flight

	routed    atomic.Int64
	routeDist atomic.Int64
	enqueued  atomic.Int64
	consumed  atomic.Int64
	applied   atomic.Int64
	shed      atomic.Int64
	failed    atomic.Int64
	joins     atomic.Int64
	leaves    atomic.Int64
	epochs    atomic.Int64
	crashes   atomic.Int64 // opCrash tasks applied
	detected  atomic.Int64 // dead peers detected by Route
	repairs   atomic.Int64 // crash repairs applied by the adjuster

	errMu    sync.Mutex
	firstErr error
}

type taskOp byte

const (
	opAdjust taskOp = iota
	opJoin
	opLeave
	// opCrash injects a crash failure: the node is marked dead in place
	// (dangling neighbour references, no repair) by the adjuster.
	opCrash
	// opRepair splices a detected dead node out and restores a-balance over
	// its ex-lists (core.RepairCrashedID). Idempotent by construction —
	// many routes may detect the same failure and each enqueue a repair.
	opRepair
	// opBarrier carries no mutation: its done channel is closed after the
	// snapshot of the batch containing it publishes, so a caller can wait
	// until every previously enqueued task is both applied AND visible to
	// routers. Migration uses it to order "joins visible" before a directory
	// swap.
	opBarrier
)

type task struct {
	op       taskOp
	src, dst int64
	// entry, when non-nil on an opJoin, carries a migrated key's value
	// record: the join restores the value (version preserved) instead of
	// creating a bare node.
	entry *skipgraph.Entry
	// done, when non-nil, receives the task's apply error (nil on success);
	// for opBarrier it is closed after the batch's snapshot publication.
	done chan error
}

// New creates an engine over the DSG and publishes the epoch-0 snapshot.
// The scoped repairs behind every adjustment assume a globally a-balanced
// starting point, so New runs the global balance repair once (a no-op on an
// already-balanced graph). Epoch 0 is the publisher's initial replica — one
// pass over the graph, no deep copy — which keeps engine construction cheap
// for the migration-receiver engines internal/shard spins up.
func New(d *core.DSG, cfg Config) *Engine {
	d.RepairBalance()
	e := &Engine{dsg: d, cfg: cfg, pub: skipgraph.NewPublisher(d.Graph())}
	e.snap.Store(&Snapshot{Epoch: 0, Graph: e.pub.Current()})
	return e
}

// Snapshot returns the most recently published snapshot.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// publish freezes the batch's mutations into the next-epoch snapshot,
// path-copying the touched nodes and structurally sharing the rest. Only the
// adjuster (or the Serve loop between batches) may call it.
func (e *Engine) publish() {
	next := &Snapshot{Epoch: e.snap.Load().Epoch + 1, Graph: e.pub.Publish()}
	e.snap.Store(next)
	e.epochs.Add(1)
}

// ApplyOpIdle applies one op directly to the live graph and publishes a
// fresh snapshot — the synchronous single-op entry point for an idle engine
// (neither Serve nor free-running mode active). The sharded service's sync
// KV surface is built on it: one op, applied and visible, before the call
// returns.
func (e *Engine) ApplyOpIdle(op core.Op) (core.OpResult, error) {
	e.mu.Lock()
	if e.started || e.serving {
		e.mu.Unlock()
		return core.OpResult{}, fmt.Errorf("serve: ApplyOpIdle needs an idle engine (no Serve, no Start)")
	}
	e.serving = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.serving = false
		e.mu.Unlock()
	}()
	res, err := e.dsg.ApplyOp(op)
	e.publish()
	return res, err
}

// ApplyCrashIdle injects a crash failure directly on an idle engine (neither
// Serve nor free-running mode active) and publishes the post-crash snapshot,
// so routers immediately see the corpse. The synchronous twin of SubmitCrash
// for services that cycle their pipelines around admin operations.
func (e *Engine) ApplyCrashIdle(id int64) error {
	e.mu.Lock()
	if e.started || e.serving {
		e.mu.Unlock()
		return fmt.Errorf("serve: ApplyCrashIdle needs an idle engine (no Serve, no Start)")
	}
	e.serving = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.serving = false
		e.mu.Unlock()
	}()
	if err := e.dsg.Crash(id); err != nil {
		return err
	}
	e.crashes.Add(1)
	e.publish()
	return nil
}

// Serve consumes op envelopes until the channel closes (or ctx is
// cancelled) and returns the aggregate statistics. Requests are processed
// in batches of BatchSize: the whole batch is routed in parallel by
// Parallelism workers against the snapshot published after the previous
// batch — Get and Scan take their reads from that same snapshot, lock-free —
// while the single adjuster concurrently applies the batch's mutations in
// sequence order to the live graph (KV writes flow through the same
// transformation and scoped repair as routes; see core.ApplyOp); then the
// next snapshot is published. Batches are filled to BatchSize (blocking on
// the channel) so the batch schedule — and with it every statistic — is a
// pure function of the request sequence, independent of Parallelism and of
// producer timing. An invalid route op aborts with an error (KV ops are
// total and never do); already-applied batches stay applied.
//
// Serve refuses to run on an engine in free-running mode (Start), and
// rejects overlapping Serve calls — both would race the adjuster over the
// live graph. Sequential Serve calls on one engine are fine.
func (e *Engine) Serve(ctx context.Context, in <-chan core.Op) (Stats, error) {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return Stats{}, fmt.Errorf("serve: Serve on an engine already in free-running mode (Start)")
	}
	if e.serving {
		e.mu.Unlock()
		return Stats{}, fmt.Errorf("serve: overlapping Serve calls on one engine")
	}
	e.serving = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.serving = false
		e.mu.Unlock()
	}()

	var st Stats
	// A context dead on arrival serves nothing, deterministically — without
	// this check the intake select below races ctx.Done() against a ready
	// channel and can drain a few requests first.
	if err := ctx.Err(); err != nil {
		return st, err
	}
	k := e.cfg.batchSize()
	batch := make([]core.Op, 0, k)
	routes := make([]routeOut, k)
	seq := int64(0)
	tr := e.cfg.Tracer
	for {
		batch = batch[:0]
		stop := false
		cancelled := false
		for len(batch) < k && !stop {
			select {
			case <-ctx.Done():
				stop, cancelled = true, true
			case p, ok := <-in:
				if !ok {
					stop = true
					break
				}
				batch = append(batch, p)
			}
		}
		if len(batch) > 0 {
			snap := e.snap.Load()
			adjCh := make(chan adjOutcome, 1)
			go func(ops []core.Op) {
				var started time.Time
				if tr != nil {
					started = time.Now()
				}
				rs, err := e.applyOps(ops)
				if tr != nil {
					tr.ObserveStage(obs.StageAdjustApply, time.Since(started))
				}
				adjCh <- adjOutcome{results: rs, err: err}
			}(batch)
			routeErr := e.routeBatch(snap, batch, routes)
			adj := <-adjCh
			if routeErr != nil {
				return st, routeErr
			}
			if adj.err != nil {
				return st, adj.err
			}
			e.publish()
			st.Batches++
			st.SnapshotsPublished++
			for i := range batch {
				r := Result{
					Seq:             seq,
					Op:              batch[i],
					Epoch:           snap.Epoch,
					RouteDistance:   routes[i].route.Distance(),
					RouteHops:       routes[i].route.Hops(),
					RouteMiss:       routes[i].miss,
					AdjustLag:       i + 1,
					RouteNanos:      routes[i].nanos,
					TransformRounds: adj.results[i].TransformRounds,
					DirectLevel:     adj.results[i].DirectLevel,
					Alpha:           adj.results[i].Alpha,
					HeightAfter:     adj.results[i].HeightAfter,
					RepairInserted:  adj.results[i].RepairInserted,
					RepairRemoved:   adj.results[i].RepairRemoved,
					Version:         adj.results[i].Version,
					Existed:         adj.results[i].Existed,
				}
				switch batch[i].Kind {
				case core.OpGet:
					// The documented read point is the snapshot the op routed
					// against, not the live graph mid-batch.
					r.Found, r.Value, r.Version = routes[i].found, routes[i].val, routes[i].ver
				case core.OpScan:
					r.Entries = routes[i].entries
				}
				if tr != nil && !e.cfg.TraceLegsOnly {
					tr.ObserveOp(int64(batch[i].Kind), time.Duration(r.RouteNanos))
					if tr.WouldRecord(r.RouteNanos) {
						tr.RecordSpan(obs.Span{
							Seq:           r.Seq,
							Kind:          int64(batch[i].Kind),
							Src:           batch[i].Src,
							Dst:           batch[i].Dst,
							Start:         time.Now().UnixNano(),
							TotalNanos:    r.RouteNanos,
							Epoch:         r.Epoch,
							RouteDistance: int64(r.RouteDistance),
							RouteHops:     int64(r.RouteHops),
							AdjustLag:     int64(r.AdjustLag),
							RouteMiss:     r.RouteMiss,
							Legs: []obs.LegSpan{{
								Distance:  int64(r.RouteDistance),
								Hops:      int64(r.RouteHops),
								AdjustLag: int64(r.AdjustLag),
								Epoch:     r.Epoch,
								Nanos:     r.RouteNanos,
							}},
						})
					}
				}
				seq++
				st.accumulate(r)
				if e.cfg.OnResult != nil {
					e.cfg.OnResult(r)
				}
			}
		}
		if stop {
			st.HeightAfter = e.dsg.Graph().Height()
			if cancelled {
				return st, ctx.Err()
			}
			return st, nil
		}
	}
}

func (s *Stats) accumulate(r Result) {
	s.Requests++
	s.TotalRouteDistance += int64(r.RouteDistance)
	s.TotalRouteHops += int64(r.RouteHops)
	if r.RouteDistance > s.MaxRouteDistance {
		s.MaxRouteDistance = r.RouteDistance
	}
	s.TotalTransformRounds += int64(r.TransformRounds)
	s.TotalAdjustLag += int64(r.AdjustLag)
	if r.AdjustLag > s.MaxAdjustLag {
		s.MaxAdjustLag = r.AdjustLag
	}
	s.RepairInserted += int64(r.RepairInserted)
	s.RepairRemoved += int64(r.RepairRemoved)
	if r.RouteMiss {
		s.RouteMisses++
	}
	switch r.Op.Kind {
	case core.OpGet:
		s.Gets++
		if r.Found {
			s.GetHits++
		}
	case core.OpPut:
		s.Puts++
		if !r.Existed {
			s.PutInserts++
		}
	case core.OpDelete:
		s.Deletes++
		if r.Existed {
			s.DeleteHits++
		}
	case core.OpScan:
		s.Scans++
		s.ScannedEntries += int64(len(r.Entries))
	}
}

type adjOutcome struct {
	results []core.OpResult
	err     error
}

// applyOps is the adjuster half of one deterministic batch. Without
// TolerateAdjustMiss it is exactly core.ApplyOps (strict, legacy error
// text). With it, a route op that fails on a vanished or crashed endpoint —
// the data plane removed it earlier in the stream — yields a zero result
// and the batch continues, mirroring the free-running adjuster's tolerance.
func (e *Engine) applyOps(ops []core.Op) ([]core.OpResult, error) {
	if !e.cfg.TolerateAdjustMiss {
		return e.dsg.ApplyOps(ops)
	}
	results := make([]core.OpResult, 0, len(ops))
	for i, op := range ops {
		r, err := e.dsg.ApplyOp(op)
		if err != nil {
			if op.Kind == core.OpRoute && (errors.Is(err, core.ErrUnknownNode) || errors.Is(err, core.ErrCrashedNode)) {
				results = append(results, core.OpResult{})
				continue
			}
			return results, fmt.Errorf("core: batch op %d (%s %d→%d): %w", i, op.Kind, op.Src, op.Dst, err)
		}
		results = append(results, r)
	}
	return results, nil
}

// routeOut is the routing-side outcome of one op: the measured access path
// plus any snapshot read (Get/Scan).
type routeOut struct {
	route   skipgraph.RouteResult
	miss    bool
	found   bool
	val     []byte
	ver     int64
	entries []skipgraph.Entry
	nanos   int64 // wall time of the snapshot-side work; 0 without a Tracer
}

// routeOp performs the snapshot half of one op. OpRoute keeps the strict
// legacy contract — a route failure aborts the batch. KV point ops tolerate
// an unmeasurable access path (the endpoint may be joining in this very
// batch, or already departed) and record a miss instead; Get reads the
// value from the snapshot; Scan is a pure snapshot read with no path.
func (e *Engine) routeOp(snap *Snapshot, op core.Op) (routeOut, error) {
	var out routeOut
	switch op.Kind {
	case core.OpRoute:
		r, err := snap.Route(op.Src, op.Dst)
		if err != nil {
			if e.cfg.TolerateAdjustMiss {
				out.miss = true
				return out, nil
			}
			return out, fmt.Errorf("serve: routing %d→%d (epoch %d): %w", op.Src, op.Dst, snap.Epoch, err)
		}
		out.route = r
		return out, nil
	case core.OpScan:
		out.entries = snap.Scan(op.Dst, op.Limit)
		return out, nil
	}
	if r, err := snap.Route(op.Src, op.Dst); err == nil {
		out.route = r
	} else {
		out.miss = true
	}
	if op.Kind == core.OpGet {
		out.val, out.ver, out.found = snap.Get(op.Dst)
	}
	return out, nil
}

// routeOpTraced wraps routeOp with the per-leg wall clock when tracing is
// on; with a nil tracer it is routeOp plus one branch.
func (e *Engine) routeOpTraced(snap *Snapshot, op core.Op) (routeOut, error) {
	tr := e.cfg.Tracer
	if tr == nil {
		return e.routeOp(snap, op)
	}
	start := time.Now()
	out, err := e.routeOp(snap, op)
	d := time.Since(start)
	out.nanos = int64(d)
	tr.ObserveStage(obs.StageRouteLeg, d)
	return out, err
}

// routeBatch routes every op of the batch against the snapshot, fanning
// the work over the configured number of workers. results[i] corresponds to
// batch[i], so the outcome is independent of worker scheduling.
func (e *Engine) routeBatch(snap *Snapshot, batch []core.Op, results []routeOut) error {
	p := e.cfg.parallelism()
	if p > len(batch) {
		p = len(batch)
	}
	if p == 1 {
		tr := e.cfg.Tracer
		if tr == nil {
			for i, op := range batch {
				r, err := e.routeOp(snap, op)
				if err != nil {
					return err
				}
				results[i] = r
			}
			return nil
		}
		// Chained clock: op i's end timestamp doubles as op i+1's start, so
		// the sequential hot path pays one clock read per op instead of two.
		// The loop body between reads is a few stores — the skew is noise
		// next to any op the histograms can resolve.
		prev := time.Now()
		for i, op := range batch {
			r, err := e.routeOp(snap, op)
			if err != nil {
				return err
			}
			now := time.Now()
			d := now.Sub(prev)
			prev = now
			r.nanos = int64(d)
			tr.ObserveStage(obs.StageRouteLeg, d)
			results[i] = r
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		outErr  error
	)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				r, err := e.routeOpTraced(snap, batch[i])
				if err != nil {
					errOnce.Do(func() { outErr = err })
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	return outErr
}
