package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"lsasg/internal/core"
	"lsasg/internal/skipgraph"
)

// Config parameterizes an Engine.
type Config struct {
	// Parallelism is the number of routing workers used by Serve (and the
	// suggested number of Route callers in free-running mode). Values < 1
	// mean 1.
	Parallelism int
	// BatchSize is the number of adjustments applied between snapshot
	// publications. Values < 1 mean 32.
	BatchSize int
	// Backlog bounds the free-running adjustment queue. Values < 1 mean
	// 4×BatchSize; values below BatchSize are clamped up to BatchSize —
	// the adjuster blocks for the first task of a batch and fills the rest
	// from the queue, so a queue smaller than a batch could never deliver
	// one and would stall adaptation behind shedding.
	Backlog int
	// OnResult, when non-nil, observes every request served by Serve, in
	// sequence order (the deterministic order, independent of Parallelism).
	OnResult func(r Result)
	// TolerateAdjustMiss, when true, keeps a free-running adjustment that
	// fails on an unknown node id (core.ErrUnknownNode) or a crashed
	// endpoint (core.ErrCrashedNode) out of the engine's first-error slot —
	// it still counts in LiveStats.Failed. A sharded service sets it:
	// routing legs race shard migrations and crash repairs by design, and a
	// leg whose endpoint migrated away (or died) between route and
	// adjustment is expected, not an engine fault. It also covers crash
	// submissions for ids that already migrated off the shard.
	TolerateAdjustMiss bool
}

func (c Config) parallelism() int {
	if c.Parallelism < 1 {
		return 1
	}
	return c.Parallelism
}

func (c Config) batchSize() int {
	if c.BatchSize < 1 {
		return 32
	}
	return c.BatchSize
}

func (c Config) backlog() int {
	if c.Backlog < 1 {
		return 4 * c.batchSize()
	}
	if c.Backlog < c.batchSize() {
		return c.batchSize()
	}
	return c.Backlog
}

// Snapshot is an immutable routing replica of the topology at a published
// epoch. The replica structurally shares every node the publishing batch did
// not touch with neighbouring epochs (copy-on-write, see
// skipgraph.Publisher); it is never mutated after publication and is safe
// for any number of concurrent readers.
type Snapshot struct {
	Epoch int64
	Graph *skipgraph.Replica
}

// Route routes src → dst inside the snapshot.
func (s *Snapshot) Route(src, dst int64) (skipgraph.RouteResult, error) {
	return s.Graph.RouteKeys(skipgraph.KeyOf(src), skipgraph.KeyOf(dst))
}

// Result reports one request served by the deterministic Serve pipeline:
// the routing half measured against the batch's snapshot, the adjustment
// half from the serialized transformation.
type Result struct {
	Seq   int64     // 0-based position in the request sequence
	Pair  core.Pair // the request
	Epoch int64     // snapshot epoch the request was routed against

	RouteDistance int // d_S(σ) in the snapshot
	RouteHops     int
	// AdjustLag is the number of adjustments pending when the request was
	// routed (its own included): requests route against the snapshot of the
	// previous batch, so the lag is the request's 1-based position within
	// its batch.
	AdjustLag int

	TransformRounds int
	DirectLevel     int
	Alpha           int
	HeightAfter     int
	RepairInserted  int
	RepairRemoved   int
}

// Stats aggregates one Serve run. Every field is deterministic for a fixed
// seed and batch schedule: identical across Parallelism settings.
type Stats struct {
	Requests           int64
	Batches            int64
	SnapshotsPublished int64

	TotalRouteDistance   int64
	MaxRouteDistance     int
	TotalRouteHops       int64
	TotalTransformRounds int64
	TotalAdjustLag       int64
	MaxAdjustLag         int
	RepairInserted       int64
	RepairRemoved        int64

	HeightAfter int // live-graph height after the final batch
}

// MeanRouteDistance returns the mean snapshot routing distance per request.
func (s Stats) MeanRouteDistance() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.TotalRouteDistance) / float64(s.Requests)
}

// MeanAdjustLag returns the mean number of pending adjustments at route time.
func (s Stats) MeanAdjustLag() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.TotalAdjustLag) / float64(s.Requests)
}

// Engine serves communication requests concurrently over one DSG. An engine
// is used in exactly one mode: either a single Serve call (deterministic
// batch pipeline) or Start/Route/Stop (free-running). The DSG must not be
// touched by anyone else while the engine is running — all mutation goes
// through the engine's single adjuster.
type Engine struct {
	dsg *core.DSG
	cfg Config

	// pub owns snapshot publication: it tracks which nodes each batch
	// touches and path-copies exactly those into the next epoch's replica.
	// Like the live graph, it must only be used by the adjuster.
	pub *skipgraph.Publisher

	snap atomic.Pointer[Snapshot]

	// Free-running state.
	queue   chan task
	done    chan struct{}
	mu      sync.RWMutex // guards closing against Route's enqueue, and the mode flags
	closing bool
	started bool // free-running mode active (Start called)
	serving bool // a Serve call is in flight

	routed    atomic.Int64
	routeDist atomic.Int64
	enqueued  atomic.Int64
	consumed  atomic.Int64
	applied   atomic.Int64
	shed      atomic.Int64
	failed    atomic.Int64
	joins     atomic.Int64
	leaves    atomic.Int64
	epochs    atomic.Int64
	crashes   atomic.Int64 // opCrash tasks applied
	detected  atomic.Int64 // dead peers detected by Route
	repairs   atomic.Int64 // crash repairs applied by the adjuster

	errMu    sync.Mutex
	firstErr error
}

type taskOp byte

const (
	opAdjust taskOp = iota
	opJoin
	opLeave
	// opCrash injects a crash failure: the node is marked dead in place
	// (dangling neighbour references, no repair) by the adjuster.
	opCrash
	// opRepair splices a detected dead node out and restores a-balance over
	// its ex-lists (core.RepairCrashedID). Idempotent by construction —
	// many routes may detect the same failure and each enqueue a repair.
	opRepair
	// opBarrier carries no mutation: its done channel is closed after the
	// snapshot of the batch containing it publishes, so a caller can wait
	// until every previously enqueued task is both applied AND visible to
	// routers. Migration uses it to order "joins visible" before a directory
	// swap.
	opBarrier
)

type task struct {
	op       taskOp
	src, dst int64
	// done, when non-nil, receives the task's apply error (nil on success);
	// for opBarrier it is closed after the batch's snapshot publication.
	done chan error
}

// New creates an engine over the DSG and publishes the epoch-0 snapshot.
// The scoped repairs behind every adjustment assume a globally a-balanced
// starting point, so New runs the global balance repair once (a no-op on an
// already-balanced graph). Epoch 0 is the publisher's initial replica — one
// pass over the graph, no deep copy — which keeps engine construction cheap
// for the migration-receiver engines internal/shard spins up.
func New(d *core.DSG, cfg Config) *Engine {
	d.RepairBalance()
	e := &Engine{dsg: d, cfg: cfg, pub: skipgraph.NewPublisher(d.Graph())}
	e.snap.Store(&Snapshot{Epoch: 0, Graph: e.pub.Current()})
	return e
}

// Snapshot returns the most recently published snapshot.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// publish freezes the batch's mutations into the next-epoch snapshot,
// path-copying the touched nodes and structurally sharing the rest. Only the
// adjuster (or the Serve loop between batches) may call it.
func (e *Engine) publish() {
	next := &Snapshot{Epoch: e.snap.Load().Epoch + 1, Graph: e.pub.Publish()}
	e.snap.Store(next)
	e.epochs.Add(1)
}

// Serve consumes pairs until the channel closes (or ctx is cancelled) and
// returns the aggregate statistics. Requests are processed in batches of
// BatchSize: the whole batch is routed in parallel by Parallelism workers
// against the snapshot published after the previous batch, while the single
// adjuster concurrently applies the batch's transformations in sequence
// order to the live graph; then the next snapshot is published. Batches are
// filled to BatchSize (blocking on the channel) so the batch schedule — and
// with it every statistic — is a pure function of the request sequence,
// independent of Parallelism and of producer timing. An invalid pair aborts
// with an error; already-applied batches stay applied.
//
// Serve refuses to run on an engine in free-running mode (Start), and
// rejects overlapping Serve calls — both would race the adjuster over the
// live graph. Sequential Serve calls on one engine are fine.
func (e *Engine) Serve(ctx context.Context, in <-chan core.Pair) (Stats, error) {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return Stats{}, fmt.Errorf("serve: Serve on an engine already in free-running mode (Start)")
	}
	if e.serving {
		e.mu.Unlock()
		return Stats{}, fmt.Errorf("serve: overlapping Serve calls on one engine")
	}
	e.serving = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.serving = false
		e.mu.Unlock()
	}()

	var st Stats
	// A context dead on arrival serves nothing, deterministically — without
	// this check the intake select below races ctx.Done() against a ready
	// channel and can drain a few requests first.
	if err := ctx.Err(); err != nil {
		return st, err
	}
	k := e.cfg.batchSize()
	batch := make([]core.Pair, 0, k)
	routes := make([]skipgraph.RouteResult, k)
	seq := int64(0)
	for {
		batch = batch[:0]
		stop := false
		cancelled := false
		for len(batch) < k && !stop {
			select {
			case <-ctx.Done():
				stop, cancelled = true, true
			case p, ok := <-in:
				if !ok {
					stop = true
					break
				}
				batch = append(batch, p)
			}
		}
		if len(batch) > 0 {
			snap := e.snap.Load()
			adjCh := make(chan adjOutcome, 1)
			go func(pairs []core.Pair) {
				rs, err := e.dsg.ApplyBatch(pairs)
				adjCh <- adjOutcome{results: rs, err: err}
			}(batch)
			routeErr := e.routeBatch(snap, batch, routes)
			adj := <-adjCh
			if routeErr != nil {
				return st, routeErr
			}
			if adj.err != nil {
				return st, adj.err
			}
			e.publish()
			st.Batches++
			st.SnapshotsPublished++
			for i := range batch {
				r := Result{
					Seq:             seq,
					Pair:            batch[i],
					Epoch:           snap.Epoch,
					RouteDistance:   routes[i].Distance(),
					RouteHops:       routes[i].Hops(),
					AdjustLag:       i + 1,
					TransformRounds: adj.results[i].TransformRounds,
					DirectLevel:     adj.results[i].DirectLevel,
					Alpha:           adj.results[i].Alpha,
					HeightAfter:     adj.results[i].HeightAfter,
					RepairInserted:  adj.results[i].RepairInserted,
					RepairRemoved:   adj.results[i].RepairRemoved,
				}
				seq++
				st.accumulate(r)
				if e.cfg.OnResult != nil {
					e.cfg.OnResult(r)
				}
			}
		}
		if stop {
			st.HeightAfter = e.dsg.Graph().Height()
			if cancelled {
				return st, ctx.Err()
			}
			return st, nil
		}
	}
}

func (s *Stats) accumulate(r Result) {
	s.Requests++
	s.TotalRouteDistance += int64(r.RouteDistance)
	s.TotalRouteHops += int64(r.RouteHops)
	if r.RouteDistance > s.MaxRouteDistance {
		s.MaxRouteDistance = r.RouteDistance
	}
	s.TotalTransformRounds += int64(r.TransformRounds)
	s.TotalAdjustLag += int64(r.AdjustLag)
	if r.AdjustLag > s.MaxAdjustLag {
		s.MaxAdjustLag = r.AdjustLag
	}
	s.RepairInserted += int64(r.RepairInserted)
	s.RepairRemoved += int64(r.RepairRemoved)
}

type adjOutcome struct {
	results []core.AdjustResult
	err     error
}

// routeBatch routes every pair of the batch against the snapshot, fanning
// the work over the configured number of workers. results[i] corresponds to
// batch[i], so the outcome is independent of worker scheduling.
func (e *Engine) routeBatch(snap *Snapshot, batch []core.Pair, results []skipgraph.RouteResult) error {
	p := e.cfg.parallelism()
	if p > len(batch) {
		p = len(batch)
	}
	if p == 1 {
		for i, pair := range batch {
			r, err := snap.Route(pair.Src, pair.Dst)
			if err != nil {
				return fmt.Errorf("serve: routing %d→%d (epoch %d): %w", pair.Src, pair.Dst, snap.Epoch, err)
			}
			results[i] = r
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		outErr  error
	)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				r, err := snap.Route(batch[i].Src, batch[i].Dst)
				if err != nil {
					errOnce.Do(func() {
						outErr = fmt.Errorf("serve: routing %d→%d (epoch %d): %w",
							batch[i].Src, batch[i].Dst, snap.Epoch, err)
					})
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	return outErr
}
