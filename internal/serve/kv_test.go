package serve

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"lsasg/internal/core"
	"lsasg/internal/skipgraph"
)

// feedOps pushes a fixed op list into a channel the engine consumes.
func feedOps(ops []core.Op) <-chan core.Op {
	ch := make(chan core.Op)
	go func() {
		defer close(ch)
		for _, op := range ops {
			ch <- op
		}
	}()
	return ch
}

// TestApplyOpIdleAndSnapshotReads exercises the synchronous single-op entry
// point and the lock-free snapshot read surface (Get/Scan) the sharded
// service builds its sync KV calls on.
func TestApplyOpIdleAndSnapshotReads(t *testing.T) {
	e := New(core.New(16, core.Config{A: 4, Seed: 5}), Config{})
	e0 := e.Snapshot().Epoch

	res, err := e.ApplyOpIdle(core.Op{Kind: core.OpPut, Src: 1, Dst: 9, Value: []byte("nine")})
	if err != nil {
		t.Fatalf("idle put: %v", err)
	}
	if !res.Existed || res.Version != 1 {
		t.Fatalf("idle put of live key: Existed=%v Version=%d, want true/1", res.Existed, res.Version)
	}
	if _, err := e.ApplyOpIdle(core.Op{Kind: core.OpPut, Src: 2, Dst: 4, Value: []byte("four")}); err != nil {
		t.Fatalf("idle put: %v", err)
	}

	snap := e.Snapshot()
	if snap.Epoch != e0+2 {
		t.Fatalf("each idle op must publish: epoch %d, want %d", snap.Epoch, e0+2)
	}
	if v, ver, ok := snap.Get(9); !ok || ver != 1 || !bytes.Equal(v, []byte("nine")) {
		t.Fatalf("snapshot get 9 = %q v%d ok=%v", v, ver, ok)
	}
	if _, _, ok := snap.Get(10); ok {
		t.Fatal("snapshot get of a valueless key must miss")
	}
	if got := snap.Scan(0, 10); len(got) != 2 || got[0].ID != 4 || got[1].ID != 9 {
		t.Fatalf("snapshot scan = %v, want keys [4 9]", got)
	}
	if got := snap.Scan(5, 0); len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("snapshot scan with clamped limit = %v, want [9]", got)
	}

	res, err = e.ApplyOpIdle(core.Op{Kind: core.OpGet, Src: 3, Dst: 9})
	if err != nil || !res.Found || string(res.Value) != "nine" {
		t.Fatalf("idle get 9 = %+v, %v", res, err)
	}
	res, err = e.ApplyOpIdle(core.Op{Kind: core.OpDelete, Src: 3, Dst: 9})
	if err != nil || !res.Existed {
		t.Fatalf("idle delete 9 = %+v, %v", res, err)
	}
	if _, _, ok := e.Snapshot().Get(9); ok {
		t.Fatal("deleted key still readable in the fresh snapshot")
	}

	// A busy engine refuses the idle entry point.
	e.Start()
	if _, err := e.ApplyOpIdle(core.RouteOp(1, 2)); err == nil {
		t.Fatal("ApplyOpIdle on a started engine must fail")
	}
	if err := e.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("pending after stop = %d, want 0", got)
	}
}

// TestServeKVOps drives every op kind through the deterministic pipeline
// with BatchSize 1 (each op reads the snapshot of all earlier ops) and
// checks both the per-result read outcomes and the aggregated KV counters,
// including the tolerated route legs of puts to brand-new keys.
func TestServeKVOps(t *testing.T) {
	const n = 16
	var results []Result
	e := New(core.New(n, core.Config{A: 4, Seed: 11}), Config{
		Parallelism:        2,
		BatchSize:          1,
		TolerateAdjustMiss: true,
		OnResult:           func(r Result) { results = append(results, r) },
	})
	ops := []core.Op{
		{Kind: core.OpPut, Src: 1, Dst: 40, Value: []byte("new")}, // join: route leg unmeasurable
		{Kind: core.OpPut, Src: 2, Dst: 5, Value: []byte("live")}, // update in place
		{Kind: core.OpGet, Src: 3, Dst: 40},                       // hit, reads previous snapshot
		{Kind: core.OpGet, Src: 3, Dst: 11},                       // valueless: miss, path measured
		{Kind: core.OpScan, Dst: 0, Limit: 8},                     // both records
		core.RouteOp(6, 12),                                       // plain route
		{Kind: core.OpDelete, Src: 1, Dst: 40},                    // tracked leave
		core.RouteOp(2, 40),                                       // endpoint gone: tolerated miss
		{Kind: core.OpDelete, Src: 1, Dst: 40},                    // idempotent re-delete
	}
	st, err := e.Serve(context.Background(), feedOps(ops))
	if err != nil {
		t.Fatalf("serve: %v", err)
	}

	if st.Requests != int64(len(ops)) || st.Batches != int64(len(ops)) {
		t.Fatalf("requests/batches = %d/%d, want %d each", st.Requests, st.Batches, len(ops))
	}
	want := Stats{Gets: 2, GetHits: 1, Puts: 2, PutInserts: 1, Deletes: 2, DeleteHits: 1, Scans: 1, ScannedEntries: 2}
	if st.Gets != want.Gets || st.GetHits != want.GetHits || st.Puts != want.Puts ||
		st.PutInserts != want.PutInserts || st.Deletes != want.Deletes ||
		st.DeleteHits != want.DeleteHits || st.Scans != want.Scans || st.ScannedEntries != want.ScannedEntries {
		t.Fatalf("kv counters = %+v", st)
	}
	// The put-join and the route to the deleted endpoint are both
	// unmeasurable in their snapshots.
	if st.RouteMisses < 2 {
		t.Fatalf("route misses = %d, want >= 2", st.RouteMisses)
	}
	if st.MeanAdjustLag() != 1 {
		t.Fatalf("mean adjust lag at BatchSize 1 = %v, want 1", st.MeanAdjustLag())
	}
	if st.MeanRouteDistance() <= 0 {
		t.Fatalf("mean route distance = %v, want > 0", st.MeanRouteDistance())
	}
	var zero Stats
	if zero.MeanRouteDistance() != 0 || zero.MeanAdjustLag() != 0 {
		t.Fatal("zero-request means must be 0")
	}

	if len(results) != len(ops) {
		t.Fatalf("observed %d results, want %d", len(results), len(ops))
	}
	if r := results[2]; !r.Found || string(r.Value) != "new" || r.Version != 1 {
		t.Fatalf("get 40 = %+v, want hit of %q v1", r, "new")
	}
	if r := results[3]; r.Found || r.RouteMiss {
		t.Fatalf("get 11 = Found=%v RouteMiss=%v, want measurable miss", r.Found, r.RouteMiss)
	}
	if r := results[4]; len(r.Entries) != 2 || r.Entries[0].ID != 5 || r.Entries[1].ID != 40 {
		t.Fatalf("scan entries = %v, want keys [5 40]", r.Entries)
	}
	if r := results[7]; !r.RouteMiss || r.TransformRounds != 0 {
		t.Fatalf("route to deleted endpoint = %+v, want tolerated miss", r)
	}
	if r := results[8]; r.Existed {
		t.Fatal("re-delete of a gone key must report Existed=false")
	}
}

// TestServeTolerantStillAbortsOnBadOp confirms TolerateAdjustMiss only
// forgives vanished route endpoints — a structurally invalid op (self-route)
// still aborts the batch with the op identified in the error.
func TestServeTolerantStillAbortsOnBadOp(t *testing.T) {
	e := New(core.New(16, core.Config{A: 4, Seed: 3}), Config{BatchSize: 1, TolerateAdjustMiss: true})
	_, err := e.Serve(context.Background(), feedOps([]core.Op{core.RouteOp(7, 7)}))
	if err == nil || !strings.Contains(err.Error(), "route 7→7") {
		t.Fatalf("self-route under tolerance = %v, want batch abort naming the op", err)
	}
}

// TestMigrationValueEntriesAndErrors covers the migration surface in both
// engine modes: value-carrying entries arrive with versions intact, failing
// entries are skipped with the first error reported, and both entry points
// refuse the wrong engine mode.
func TestMigrationValueEntriesAndErrors(t *testing.T) {
	e := New(core.New(16, core.Config{A: 4, Seed: 7}), Config{BatchSize: 4})

	// Idle-mode batch with one failing join (id already present) and one
	// failing leave (id unknown): the good half still applies.
	joins := []skipgraph.Entry{
		{ID: 40, Value: []byte("forty"), Version: 9, HasValue: true},
		{ID: 3}, // already in the graph: Restore fails
	}
	if err := e.ApplyMigrationBatch(joins, []int64{5, 99}); err == nil {
		t.Fatal("batch with duplicate join and unknown leave must report an error")
	}
	snap := e.Snapshot()
	if v, ver, ok := snap.Get(40); !ok || ver != 9 || string(v) != "forty" {
		t.Fatalf("migrated entry = %q v%d ok=%v, want forty v9", v, ver, ok)
	}
	if _, err := snap.Route(1, 5); err == nil {
		t.Fatal("leave 5 did not apply")
	}

	// Migration on an engine that is not running is refused.
	if err := e.MigrateEntries(nil, []int64{2}); err == nil {
		t.Fatal("MigrateEntries on a stopped engine must fail")
	}

	e.Start()
	if err := e.ApplyMigrationBatch(nil, nil); err == nil {
		t.Fatal("ApplyMigrationBatch on a started engine must fail")
	}
	// Running-mode migration: the value entry is visible (publish barrier)
	// by the time the call returns.
	in := []skipgraph.Entry{{ID: 50, Value: []byte("fifty"), Version: 12, HasValue: true}}
	if err := e.MigrateEntries(in, []int64{7}); err != nil {
		t.Fatalf("running migration: %v", err)
	}
	if v, ver, ok := e.Snapshot().Get(50); !ok || ver != 12 || string(v) != "fifty" {
		t.Fatalf("running-mode migrated entry = %q v%d ok=%v, want fifty v12", v, ver, ok)
	}
	// A failing leave inside a running migration surfaces both as the call's
	// first error and as the engine's first error, which Stop reports.
	if err := e.MigrateEntries(nil, []int64{123}); err == nil {
		t.Fatal("running migration with unknown leave must report an error")
	}
	if err := e.Stop(); err == nil || !strings.Contains(err.Error(), "123") {
		t.Fatalf("stop after failed migration = %v, want the adjuster's first error", err)
	}
}
