// Package serve is the concurrent serving engine: it routes many
// communication requests in parallel against an immutable topology snapshot
// while a single adjuster goroutine applies the self-adjusting
// transformations (and their scoped a-balance repairs) in batches,
// publishing a fresh snapshot after every batch.
//
// The split exploits the two halves of the paper's serving model: routing is
// a pure read of the topology (Appendix B), while the transformation
// (§IV-C–F) mutates it. Readers therefore scale across cores against an
// epoch-stamped immutable replica (skipgraph.Replica), and all mutation
// stays serialized in one goroutine, preserving the sequential semantics of
// the transformation — including its seeded randomness — no matter how many
// routing workers run.
//
// Snapshots are copy-on-write, not deep copies: the graph's mutation paths
// record which nodes a batch touched, and publish (skipgraph.Publisher)
// freezes fresh immutable versions of exactly those nodes, structurally
// sharing everything else with the previous epoch. What is copied per epoch:
// the touched nodes' link/liveness records and the trie path to each
// touched slot. What is shared: every untouched node's frozen record and
// every untouched trie subtree. Readers are safe because published versions
// are never written again — the publisher path-copies before every write —
// so publication costs O(lists touched) per batch instead of O(n), matching
// the locality the paper proves for adjustment work. The old deep copy
// (skipgraph.Graph.Clone) survives as the test oracle the replica is pinned
// against.
//
// The engine has two modes, sharing the snapshot and batch machinery:
//
//   - Serve (deterministic batch pipeline): requests are consumed in batches
//     of BatchSize; each batch is routed in parallel against the snapshot
//     published after the previous batch while the adjuster concurrently
//     applies the batch's transformations in sequence order to the live
//     graph. Every statistic is a pure function of the request sequence and
//     the batch schedule — byte-identical across Parallelism settings.
//
//   - Start/Route/Stop (free-running): callers route on the freshest
//     published snapshot from any goroutine; each routed request is offered
//     to a bounded adjustment queue that the adjuster drains in batches.
//     When the queue is full the adjustment is shed (counted, never blocks
//     routing) — the topology adapts as fast as one core allows while
//     routing throughput scales with the callers.
//
// Requests routed against a snapshot see a topology that lags the live graph
// by at most the adjustment backlog. The lag delays the working-set
// adaptation but never breaks correctness: every snapshot is a complete,
// valid skip graph, so any routing in it stays within its a·H worst case.
//
// # Stable stat names
//
// The counters this package exports feed the public lsasg stats under fixed
// field names; both sides are part of the compatibility surface:
//
//   - LiveStats.Shed — adjustments dropped because the free-running queue was
//     full — surfaces as lsasg.Stats.ShedAdjustments (summed over all engines
//     of a sharded network; always 0 in the deterministic Serve pipeline,
//     which never sheds).
//   - Engine joins/leaves driven by shard migration (ApplyMembershipBatch /
//     MigrateMembership) are additionally counted by the sharded service and
//     surface as lsasg.Stats.Rebalances (planner runs that migrated a range)
//     and lsasg.Stats.MigratedKeys (keys moved across shards).
package serve
