package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// Fuzz coverage for the codec: decoding must never panic on arbitrary
// bytes, and whatever decodes must re-encode to the same frame
// (decode∘encode is the identity on the valid subset).

func FuzzDecodeRequest(f *testing.F) {
	for _, req := range sampleRequests() {
		f.Add(req.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body)
		if err != nil {
			return
		}
		again := req.Encode()
		if !bytes.Equal(again, body) {
			t.Fatalf("decode/encode changed a valid frame:\n in  %x\n out %x", body, again)
		}
		// A second pass through the codec is stable.
		back, err := DecodeRequest(again)
		if err != nil || !reflect.DeepEqual(back, req) {
			t.Fatalf("re-decode diverged: %+v vs %+v (err %v)", back, req, err)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	for _, resp := range sampleResponses() {
		f.Add(resp.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0x81})
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := DecodeResponse(body)
		if err != nil {
			return
		}
		again := resp.Encode()
		back, err := DecodeResponse(again)
		if err != nil || !reflect.DeepEqual(back, resp) {
			t.Fatalf("re-decode diverged: %+v vs %+v (err %v)", back, resp, err)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("seed"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, stream []byte) {
		body, err := ReadFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, body); err != nil {
			t.Fatalf("re-framing a read frame failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), stream[:out.Len()]) {
			t.Fatalf("frame not byte-stable")
		}
	})
}
