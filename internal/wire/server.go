package wire

import (
	"bufio"
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lsasg"
	"lsasg/internal/obs"
)

// nodeAdmin is the optional membership surface behind VerbAddNode and
// VerbRemoveNode. The single-graph Network implements it; the sharded
// service does not (its key space is fixed by the shard directory), so
// those verbs answer CodeInvalid there.
type nodeAdmin interface {
	AddNode() (int, error)
	RemoveNode(idx int) error
}

// crasher is the fault-injection surface behind VerbCrash.
type crasher interface{ Crash(idx int) error }

// Server fronts one lsasg.Service over a TCP listener.
//
// The service's methods are not concurrency-safe, so a single owner
// goroutine holds it and everything else funnels through the intake
// channel. Ops are served in generations: one long-running ServeOps
// pipeline consumes a generation's ops channel, and its onResult callback
// answers waiters in FIFO order — results arrive in dispatch order, which
// is the order the owner appended them. Admin verbs (Stats, AddNode,
// RemoveNode, Crash, Verify) need an idle service, so each one closes the
// current generation's ops channel, drains the pipeline, runs against the
// quiesced service, and lets the next op start a fresh generation. A
// generation that dies on an op error answers its first pending waiter
// with the real error and every later one with CodeRetry — their ops were
// fine, the pipeline just restarted under them.
type Server struct {
	svc    lsasg.Service
	col    *Collector
	tracer *obs.Tracer

	writeTimeout time.Duration
	idleTimeout  time.Duration
	maxPending   int

	// n mirrors svc.N() so connection readers can validate envelopes
	// without touching the service; the owner refreshes it after
	// membership admin.
	n atomic.Int64

	intake    chan item
	quit      chan struct{}
	ownerDone chan struct{}
	baseCtx   context.Context
	cancel    context.CancelFunc

	// lastServe is the most recent cleanly-completed generation's stats.
	// Owner-goroutine state; reached by admin handling only.
	lastServe lsasg.ServeStats

	mu      sync.Mutex
	lis     net.Listener
	conns   map[*serverConn]struct{}
	closing bool
	connWG  sync.WaitGroup
}

// item is one unit of intake: an op bound for the serving pipeline, or an
// admin request (hasOp false) that cycles it.
type item struct {
	req   Request
	op    lsasg.Op
	hasOp bool
	c     *serverConn
}

// waiter is one op awaiting its pipeline result.
type waiter struct {
	req Request
	c   *serverConn
}

type genDone struct {
	st  lsasg.ServeStats
	err error
}

// generation is one ServeOps run over the service.
type generation struct {
	ops     chan lsasg.Op
	waiters chan waiter
	done    chan genDone
	res     *genDone
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithWriteTimeout bounds each response-frame write. A connection that
// cannot absorb its responses within the bound is declared dead and its
// remaining output discarded, so a stalled client can never wedge the
// serving pipeline. Zero disables the bound.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// WithIdleTimeout closes connections idle longer than d. Zero (the
// default) keeps idle connections open indefinitely.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idleTimeout = d }
}

// WithMaxPending caps ops in flight inside one serving generation; beyond
// it, intake exerts backpressure on connection readers.
func WithMaxPending(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxPending = n
		}
	}
}

// WithTracer attaches the service's observability tracer: VerbTraceDump
// answers from its slow-span ring, and the collector renders its latency
// histograms and retry counters on /metrics. Without it, TraceDump
// answers CodeInvalid and the histogram families render empty.
func WithTracer(tr *obs.Tracer) ServerOption {
	return func(s *Server) {
		if tr != nil {
			s.tracer = tr
			s.col.setTracer(tr)
		}
	}
}

// NewServer wraps svc. The owner goroutine starts immediately; Serve
// accepts connections, Shutdown drains and stops.
func NewServer(svc lsasg.Service, opts ...ServerOption) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		svc:          svc,
		col:          NewCollector(),
		writeTimeout: 10 * time.Second,
		maxPending:   1024,
		intake:       make(chan item, 256),
		quit:         make(chan struct{}),
		ownerDone:    make(chan struct{}),
		baseCtx:      ctx,
		cancel:       cancel,
		conns:        map[*serverConn]struct{}{},
	}
	for _, opt := range opts {
		opt(s)
	}
	s.n.Store(int64(svc.N()))
	go s.owner()
	return s
}

// Collector exposes the server's metrics aggregate (for the HTTP
// observability endpoint).
func (s *Server) Collector() *Collector { return s.col }

// Serve accepts connections on lis until Shutdown (or a fatal listener
// error). Transient accept errors back off exponentially up to a second.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		lis.Close()
		return nil
	}
	s.lis = lis
	s.mu.Unlock()

	backoff := 5 * time.Millisecond
	for {
		nc, err := lis.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				time.Sleep(backoff)
				if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				continue
			}
			return err
		}
		backoff = 5 * time.Millisecond
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		c := &serverConn{nc: nc, out: make(chan []byte, 256), closed: make(chan struct{})}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// Shutdown drains gracefully: stop accepting, stop reading new frames,
// answer everything already in flight, retire the serving generation, and
// close connections. If ctx expires first, the in-flight pipeline is
// aborted and connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	lis := s.lis
	s.mu.Unlock()
	if already {
		<-s.ownerDone
		return nil
	}
	if lis != nil {
		lis.Close()
	}
	close(s.quit)
	s.pokeConns()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(s.intake)
		<-s.ownerDone
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		s.closeConns()
		<-done
		return ctx.Err()
	}
}

// pokeConns breaks readers out of blocking reads so they observe quit.
func (s *Server) pokeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	for c := range s.conns {
		c.nc.SetReadDeadline(now)
	}
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.markClosed()
		c.nc.Close()
	}
}

// --- owner: the one goroutine that touches the service ---------------------

func (s *Server) owner() {
	defer close(s.ownerDone)
	var gen *generation
	for {
		var it item
		var ok bool
		if gen == nil {
			it, ok = <-s.intake
		} else {
			// Watch the live generation while idle: a pipeline that dies
			// on an op error must answer its waiters now, not when the
			// next request happens to arrive.
			select {
			case res := <-gen.done:
				gen.res = &res
				s.finishGeneration(gen)
				gen = nil
				continue
			case it, ok = <-s.intake:
			}
		}
		if !ok {
			break
		}
		if it.hasOp {
			if gen == nil {
				gen = s.startGeneration()
			}
			if !s.genSubmit(gen, waiter{req: it.req, c: it.c}, it.op) {
				// Generation died under this op; the drain answers its
				// waiter (CodeRetry unless it inherited the error).
				s.finishGeneration(gen)
				gen = nil
			}
			continue
		}
		if gen != nil {
			close(gen.ops)
			s.finishGeneration(gen)
			gen = nil
		}
		s.handleAdmin(it)
	}
	if gen != nil {
		close(gen.ops)
		s.finishGeneration(gen)
	}
}

func (s *Server) startGeneration() *generation {
	g := &generation{
		ops:     make(chan lsasg.Op),
		waiters: make(chan waiter, s.maxPending),
		done:    make(chan genDone, 1),
	}
	go func() {
		st, err := s.svc.ServeOps(s.baseCtx, g.ops, func(r lsasg.OpResult) {
			// FIFO: results arrive in dispatch order, which is the order
			// the owner appended waiters.
			w := <-g.waiters
			s.col.observeResult(w.req.Verb, r)
			s.respond(w.c, opResponse(w.req, r))
		})
		g.done <- genDone{st: st, err: err}
	}()
	return g
}

// genSubmit appends the waiter and hands the op to the pipeline. The
// waiter goes first so that if the generation dies in between, the drain
// still answers it. Returns false when the generation has ended.
func (s *Server) genSubmit(g *generation, w waiter, op lsasg.Op) bool {
	select {
	case g.waiters <- w:
	case res := <-g.done:
		g.res = &res
		return false
	}
	select {
	case g.ops <- op:
		return true
	case res := <-g.done:
		g.res = &res
		return false
	}
}

// finishGeneration waits out the pipeline, answers any waiter it left
// behind, and snapshots the quiesced service for the collector. On a clean
// close no waiters remain (every forwarded op produced a result); on an
// error the first pending waiter is the op that failed — it gets the real
// error — and later ones get CodeRetry.
func (s *Server) finishGeneration(g *generation) {
	res := g.res
	if res == nil {
		r := <-g.done
		res = &r
	}
	first := true
	for {
		var w waiter
		select {
		case w = <-g.waiters:
		default:
			if res.err == nil {
				s.lastServe = res.st
			}
			s.col.observeGeneration(s.svc.Stats(), s.lastServe)
			return
		}
		var resp Response
		if first && res.err != nil {
			code := CodeOf(res.err)
			if code == CodeOK {
				code = CodeInternal
			}
			resp = errResponse(w.req, code, res.err.Error())
		} else {
			resp = errResponse(w.req, CodeRetry, "serving generation restarted")
		}
		first = false
		s.col.observeError(resp.Code)
		s.respond(w.c, resp)
	}
}

// handleAdmin runs an admin verb against the idle service.
func (s *Server) handleAdmin(it item) {
	req := it.req
	resp := Response{Verb: req.Verb, Seq: req.Seq}
	switch req.Verb {
	case VerbStats:
		resp.Stats = &StatsPayload{Cum: s.svc.Stats(), Serve: s.lastServe}
	case VerbVerify:
		if err := s.svc.Verify(); err != nil {
			resp = errResponse(req, CodeInternal, err.Error())
		}
	case VerbAddNode:
		na, ok := s.svc.(nodeAdmin)
		if !ok {
			resp = errResponse(req, CodeInvalid, "service does not support node membership admin")
			break
		}
		idx, err := na.AddNode()
		if err != nil {
			resp = errResponse(req, CodeOf(err), err.Error())
			break
		}
		resp.Node = int64(idx)
		s.n.Store(int64(s.svc.N()))
	case VerbRemoveNode:
		na, ok := s.svc.(nodeAdmin)
		if !ok {
			resp = errResponse(req, CodeInvalid, "service does not support node membership admin")
			break
		}
		if err := na.RemoveNode(int(req.Dst)); err != nil {
			resp = errResponse(req, CodeOf(err), err.Error())
			break
		}
		s.n.Store(int64(s.svc.N()))
	case VerbTraceDump:
		if s.tracer == nil {
			resp = errResponse(req, CodeInvalid, "tracing is not enabled on this daemon")
			break
		}
		resp.Spans = s.tracer.SlowSpans(int(req.Limit))
		resp.Latency = s.tracer.VerbLatencies()
	case VerbCrash:
		cr, ok := s.svc.(crasher)
		if !ok {
			resp = errResponse(req, CodeInvalid, "service does not support crash injection")
			break
		}
		if err := cr.Crash(int(req.Dst)); err != nil {
			resp = errResponse(req, CodeOf(err), err.Error())
		}
	default:
		resp = errResponse(req, CodeInvalid, "not an admin verb")
	}
	s.col.observeAdmin(req.Verb)
	if resp.Code != CodeOK {
		s.col.observeError(resp.Code)
	}
	s.respond(it.c, resp)
}

// respond sends one answer and retires the request's pending mark.
func (s *Server) respond(c *serverConn, resp Response) {
	c.send(resp.Encode())
	c.pending.Done()
}

func errResponse(req Request, code ErrCode, msg string) Response {
	return Response{Verb: req.Verb, Seq: req.Seq, Code: code, Msg: msg}
}

// opResponse maps one pipeline outcome onto the wire.
func opResponse(req Request, r lsasg.OpResult) Response {
	resp := Response{
		Verb:     req.Verb,
		Seq:      req.Seq,
		Distance: int64(r.RouteDistance),
		Hops:     int64(r.RouteHops),
		Lag:      int64(r.AdjustLag),
	}
	switch r.Op.Kind {
	case lsasg.RouteKind:
		resp.Node = int64(r.Op.Dst)
	case lsasg.GetKind:
		resp.Found = r.Found
		resp.Version = r.Version
		resp.Value = r.Value
	case lsasg.PutKind:
		resp.Version = r.Version
		resp.Existed = r.Existed
	case lsasg.DeleteKind:
		resp.Existed = r.Existed
	case lsasg.ScanKind:
		if len(r.Entries) > 0 {
			resp.Entries = make([]Entry, len(r.Entries))
			for i, kv := range r.Entries {
				resp.Entries[i] = Entry{Key: int64(kv.Key), Version: kv.Version, Value: kv.Value}
			}
		}
	}
	return resp
}

// --- per-connection goroutines ---------------------------------------------

// serverConn is one accepted connection: a reader loop (the handleConn
// goroutine) and a writer goroutine joined by the out channel. closed
// marks the writer dead — further sends are discarded, which keeps the
// pipeline's onResult from ever blocking on a broken peer.
type serverConn struct {
	nc        net.Conn
	out       chan []byte
	closed    chan struct{}
	closeOnce sync.Once
	// pending counts requests handed to the owner and not yet answered.
	pending sync.WaitGroup
}

func (c *serverConn) send(body []byte) {
	select {
	case c.out <- body:
	case <-c.closed:
	}
}

func (c *serverConn) markClosed() {
	c.closeOnce.Do(func() { close(c.closed) })
}

func (s *Server) handleConn(c *serverConn) {
	defer s.connWG.Done()
	s.col.connOpened()
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		s.connWriter(c)
	}()

	br := bufio.NewReader(c.nc)
	for {
		select {
		case <-s.quit:
			goto drain
		default:
		}
		if s.idleTimeout > 0 {
			c.nc.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		body, err := ReadFrame(br)
		if err != nil {
			goto drain
		}
		req, err := DecodeRequest(body)
		if err != nil {
			// Framing is intact but the payload is not trustworthy;
			// give up on the stream.
			goto drain
		}
		s.dispatch(c, req)
	}

drain:
	// Answer everything already in flight, then retire the writer.
	c.pending.Wait()
	close(c.out)
	writerDone.Wait()
	c.markClosed()
	c.nc.Close()
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.col.connClosed()
}

// dispatch validates an op envelope at the edge (so a bad request cannot
// kill a serving generation) and funnels the request to the owner.
func (s *Server) dispatch(c *serverConn, req Request) {
	it := item{req: req, c: c}
	if op, ok := req.Op(); ok {
		if err := op.Validate(int(s.n.Load())); err != nil {
			code := CodeOf(err)
			if code == CodeOK || code == CodeInternal {
				code = CodeInvalid
			}
			s.col.observeError(code)
			c.send(errResponse(req, code, err.Error()).Encode())
			return
		}
		it.op, it.hasOp = op, true
	}
	c.pending.Add(1)
	select {
	case s.intake <- it:
	case <-s.quit:
		c.pending.Done()
		c.send(errResponse(req, CodeRetry, "server shutting down").Encode())
	}
}

// connWriter flushes response frames, batching while the queue is
// non-empty. A write failure or timeout declares the connection dead and
// the rest of its output is discarded.
func (s *Server) connWriter(c *serverConn) {
	bw := bufio.NewWriter(c.nc)
	for body := range c.out {
		if s.writeTimeout > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		if err := WriteFrame(bw, body); err != nil {
			c.markClosed()
			break
		}
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				c.markClosed()
				break
			}
		}
	}
	for range c.out {
		// Dead connection: discard queued output so senders never block.
	}
}
