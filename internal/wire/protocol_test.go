package wire

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"lsasg"
	"lsasg/internal/obs"
)

// Exhaustive codec coverage: every verb round-trips losslessly through
// Encode/Decode for both frame directions, and malformed frames fail
// loudly instead of decoding to garbage.

func sampleRequests() []Request {
	return []Request{
		{Verb: VerbRoute, Seq: 1, Src: 3, Dst: 17},
		{Verb: VerbGet, Seq: 2, Src: 0, Dst: 9},
		{Verb: VerbPut, Seq: 3, Src: 5, Dst: 9, Value: []byte("hello")},
		{Verb: VerbPut, Seq: 4, Src: 5, Dst: 9}, // nil value
		{Verb: VerbDelete, Seq: 5, Src: 1, Dst: 2},
		{Verb: VerbScan, Seq: 6, Src: 7, Dst: 0, Limit: 64},
		{Verb: VerbStats, Seq: 7},
		{Verb: VerbAddNode, Seq: 8},
		{Verb: VerbRemoveNode, Seq: 9, Dst: 31},
		{Verb: VerbCrash, Seq: 10, Dst: 4},
		{Verb: VerbVerify, Seq: 11},
		{Verb: VerbTraceDump, Seq: 12, Limit: 16},
		{Verb: VerbRoute, Seq: ^uint64(0), Src: -1, Dst: 1 << 40}, // extremes survive
	}
}

func sampleResponses() []Response {
	return []Response{
		{Verb: VerbRoute, Seq: 1, Node: 17, Distance: 5, Hops: 3, Lag: 2},
		{Verb: VerbGet, Seq: 2, Found: true, Version: 7, Value: []byte("v"), Distance: 1, Hops: 1},
		{Verb: VerbGet, Seq: 3}, // miss: everything zero
		{Verb: VerbPut, Seq: 4, Existed: true, Version: 9},
		{Verb: VerbDelete, Seq: 5, Existed: true},
		{Verb: VerbScan, Seq: 6, Entries: []Entry{
			{Key: 3, Version: 1, Value: []byte("a")},
			{Key: 7, Version: 4, Value: nil},
			{Key: 12, Version: 2, Value: []byte("long enough to matter")},
		}},
		{Verb: VerbScan, Seq: 7}, // empty scan
		{Verb: VerbStats, Seq: 8, Stats: &StatsPayload{
			Cum: lsasg.Stats{
				Requests: 100, MeanRouteDistance: 2.5, MaxRouteDistance: 9,
				TotalTransformRounds: 42, WorkingSetBound: 123.75, Height: 6,
				DummyCount: 3, ShedAdjustments: 11, Rebalances: 2, MigratedKeys: 17,
			},
			Serve: lsasg.ServeStats{
				Requests: 50, Batches: 50, MeanRouteDistance: 1.25, MaxRouteDistance: 4,
				TotalTransformRounds: 20, MeanAdjustLag: 0.5, MaxAdjustLag: 2,
				Height: 6, DummyCount: 3, Shards: 4, CrossShardRequests: 12,
				Rebalances: 1, MigratedKeys: 8, Gets: 10, GetHits: 7, Puts: 20,
				PutInserts: 5, Deletes: 3, DeleteHits: 2, Scans: 4, ScannedEntries: 31,
			},
		}},
		{Verb: VerbCrash, Seq: 9, Code: CodeOutOfRange, Msg: "node index 99 not in [0, 32)"},
		{Verb: VerbVerify, Seq: 10, Code: CodeInternal, Msg: "invariant broken"},
		{Verb: VerbRoute, Seq: 11, Code: CodeRetry, Msg: "serving generation restarted"},
		{Verb: VerbTraceDump, Seq: 12, Spans: []obs.Span{
			{
				Seq: 41, Kind: obs.KindScan, Src: 7, Dst: 0, Start: 1700000000_000000001,
				TotalNanos: 48_500, Epoch: 12, RouteDistance: 0, RouteHops: 0,
				AdjustLag: 3, Cross: true,
				Legs: []obs.LegSpan{
					{Shard: 0, Distance: 0, Hops: 0, AdjustLag: 3, Epoch: 12, Nanos: 30_000},
					{Shard: 1, Distance: 0, Hops: 0, AdjustLag: 1, Epoch: 9, Nanos: 18_500},
				},
			},
			{
				Seq: 17, Kind: obs.KindRoute, Src: 3, Dst: 29, Start: 1700000000_000000002,
				TotalNanos: 9_000, Epoch: 4, RouteDistance: 5, RouteHops: 6,
				AdjustLag: 2, RouteMiss: true,
				Legs: []obs.LegSpan{{Distance: 5, Hops: 6, AdjustLag: 2, Epoch: 4, Nanos: 9_000}},
			},
			{Seq: 2, Kind: obs.KindGet, Src: 1, Dst: 9}, // zero span, no legs
		}, Latency: []obs.VerbLatency{
			{Kind: obs.KindRoute, Count: 100, P50Nanos: 2048, P99Nanos: 16384},
			{Kind: obs.KindScan, Count: 4, P50Nanos: 32768, P99Nanos: 65536},
		}},
		{Verb: VerbTraceDump, Seq: 13}, // tracing disabled: empty dump
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		got, err := DecodeRequest(req.Encode())
		if err != nil {
			t.Fatalf("%v: decode: %v", req.Verb, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("round trip changed the request:\n got %+v\nwant %+v", got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, resp := range sampleResponses() {
		got, err := DecodeResponse(resp.Encode())
		if err != nil {
			t.Fatalf("%v seq %d: decode: %v", resp.Verb, resp.Seq, err)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Errorf("round trip changed the response:\n got %+v\nwant %+v", got, resp)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 4096)}
	for _, body := range bodies {
		if err := WriteFrame(&buf, body); err != nil {
			t.Fatal(err)
		}
	}
	for _, body := range bodies {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, body) {
			t.Errorf("frame round trip: got %d bytes, want %d", len(got), len(body))
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("read past the last frame must fail")
	}
}

func TestFrameLimits(t *testing.T) {
	if err := WriteFrame(&bytes.Buffer{}, make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized write must fail")
	}
	// A header promising more than MaxFrame is refused before allocation.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("oversized header must fail")
	}
	// A header promising more than the stream holds reports truncation.
	short := append([]byte{0, 0, 0, 10}, 'x')
	if _, err := ReadFrame(bytes.NewReader(short)); err == nil {
		t.Error("truncated body must fail")
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	good := Request{Verb: VerbPut, Seq: 1, Src: 2, Dst: 3, Value: []byte("v")}.Encode()
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 0),
		"verb zero":      append([]byte{0}, good[1:]...),
		"verb too big":   append([]byte{byte(verbMax) + 1}, good[1:]...),
		"response flag":  append([]byte{byte(VerbPut | responseFlag)}, good[1:]...),
	}
	for name, body := range cases {
		if _, err := DecodeRequest(body); err == nil {
			t.Errorf("%s: decode must fail", name)
		}
	}
}

func TestDecodeResponseRejectsMalformed(t *testing.T) {
	good := sampleResponses()[5].Encode() // the entry-carrying scan
	withStats := sampleResponses()[7].Encode()
	cases := map[string][]byte{
		"empty":           {},
		"truncated":       good[:len(good)-2],
		"trailing bytes":  append(append([]byte{}, good...), 0),
		"no flag":         append([]byte{byte(VerbScan)}, good[1:]...),
		"bad verb":        append([]byte{byte(responseFlag)}, good[1:]...),
		"truncated stats": withStats[:len(withStats)-8],
	}
	for name, body := range cases {
		if _, err := DecodeResponse(body); err == nil {
			t.Errorf("%s: decode must fail", name)
		}
	}
}

// TestDecodeResponseCountBombs feeds frames whose section counts (entries,
// spans, span legs, latency summaries) promise far more elements than the
// frame could hold: the decoder must refuse without allocating for them.
// Offsets count back from the frame tail, which is
// [entryCount:4][hasStats:1][spanCount:4][latencyCount:4].
func TestDecodeResponseCountBombs(t *testing.T) {
	body := Response{Verb: VerbScan, Seq: 1}.Encode()
	bombAt := func(fromEnd int) []byte {
		b := append([]byte{}, body...)
		copy(b[len(b)-fromEnd:], []byte{0xff, 0xff, 0xff, 0x0f})
		return b
	}
	cases := map[string][]byte{
		"entry count":   bombAt(13),
		"span count":    bombAt(8),
		"latency count": bombAt(4),
	}
	// A leg-count bomb needs a span whose leg count is the last field.
	withSpan := Response{Verb: VerbTraceDump, Seq: 2, Spans: []obs.Span{{Seq: 1}}}.Encode()
	legBomb := append([]byte{}, withSpan...)
	copy(legBomb[len(legBomb)-8:], []byte{0xff, 0xff, 0xff, 0x0f})
	cases["leg count"] = legBomb
	for name, b := range cases {
		if _, err := DecodeResponse(b); err == nil {
			t.Errorf("%s bomb must fail to decode", name)
		}
	}
}

func TestRequestOpMapping(t *testing.T) {
	cases := []struct {
		req  Request
		want lsasg.Op
	}{
		{Request{Verb: VerbRoute, Src: 1, Dst: 2}, lsasg.RouteOp(1, 2)},
		{Request{Verb: VerbGet, Src: 1, Dst: 2}, lsasg.GetOp(1, 2)},
		{Request{Verb: VerbPut, Src: 1, Dst: 2, Value: []byte("v")}, lsasg.PutOp(1, 2, []byte("v"))},
		{Request{Verb: VerbDelete, Src: 1, Dst: 2}, lsasg.DeleteOp(1, 2)},
		{Request{Verb: VerbScan, Src: 1, Dst: 2, Limit: 5}, lsasg.ScanOp(1, 2, 5)},
	}
	for _, tc := range cases {
		op, ok := tc.req.Op()
		if !ok || !reflect.DeepEqual(op, tc.want) {
			t.Errorf("%v.Op() = %+v, %v; want %+v", tc.req.Verb, op, ok, tc.want)
		}
		// And the reverse direction agrees.
		back, ok := RequestFor(tc.want)
		if !ok || !reflect.DeepEqual(back, tc.req) {
			t.Errorf("RequestFor(%+v) = %+v, %v; want %+v", tc.want, back, ok, tc.req)
		}
	}
	for _, v := range []Verb{VerbStats, VerbAddNode, VerbRemoveNode, VerbCrash, VerbVerify, VerbTraceDump} {
		if _, ok := (Request{Verb: v}).Op(); ok {
			t.Errorf("admin verb %v must not map to an op", v)
		}
	}
}

func TestErrorMappingAcrossTheWire(t *testing.T) {
	cases := []struct {
		err      error
		code     ErrCode
		sentinel error
	}{
		{fmt.Errorf("ctx: %w", lsasg.ErrUnknownKey), CodeUnknownKey, lsasg.ErrUnknownKey},
		{fmt.Errorf("ctx: %w", lsasg.ErrDeadNode), CodeDeadNode, lsasg.ErrDeadNode},
		{fmt.Errorf("ctx: %w", lsasg.ErrOutOfRange), CodeOutOfRange, lsasg.ErrOutOfRange},
		{ErrRetry, CodeRetry, ErrRetry},
		{errors.New("anything else"), CodeInternal, nil},
	}
	for _, tc := range cases {
		if got := CodeOf(tc.err); got != tc.code {
			t.Errorf("CodeOf(%v) = %v, want %v", tc.err, got, tc.code)
		}
		resp := Response{Verb: VerbGet, Code: tc.code, Msg: tc.err.Error()}
		remote := resp.Err()
		if remote == nil {
			t.Fatalf("code %v must reconstruct an error", tc.code)
		}
		if tc.sentinel != nil && !errors.Is(remote, tc.sentinel) {
			t.Errorf("reconstructed %q does not match its sentinel", remote)
		}
		if !strings.Contains(remote.Error(), tc.err.Error()) {
			t.Errorf("reconstructed %q lost the remote message %q", remote, tc.err)
		}
	}
	if CodeOf(nil) != CodeOK {
		t.Error("nil error must map to CodeOK")
	}
	if (Response{Code: CodeOK}).Err() != nil {
		t.Error("CodeOK must reconstruct nil")
	}
}

func TestRetryableCodes(t *testing.T) {
	want := map[ErrCode]bool{
		CodeOK: false, CodeUnknownKey: true, CodeDeadNode: true,
		CodeOutOfRange: false, CodeRetry: true, CodeInvalid: false, CodeInternal: false,
	}
	for code, retryable := range want {
		if code.Retryable() != retryable {
			t.Errorf("%d.Retryable() = %v, want %v", code, !retryable, retryable)
		}
	}
}

func TestVerbString(t *testing.T) {
	for v := VerbRoute; v <= verbMax; v++ {
		if s := v.String(); strings.HasPrefix(s, "verb(") {
			t.Errorf("verb %d has no name", v)
		}
		if v.String() != (v | responseFlag).String() {
			t.Errorf("response flag changes verb %d's name", v)
		}
	}
	if s := Verb(0).String(); !strings.HasPrefix(s, "verb(") {
		t.Errorf("invalid verb renders as %q", s)
	}
}
