package wire

import (
	"strings"
	"testing"
	"time"

	"lsasg/internal/obs"
)

// goldenFamilies is the pinned metric-family set: every `# TYPE` line
// Render must emit, in order. Adding or renaming a family is a deliberate
// act — update this list and docs/WIRE.md together.
var goldenFamilies = []string{
	"dsg_requests_total counter",
	"dsg_errors_total counter",
	"dsg_req_per_sec gauge",
	"dsg_adjust_lag_mean gauge",
	"dsg_adjust_lag_max gauge",
	"dsg_route_distance_mean gauge",
	"dsg_shed_adjustments_total counter",
	"dsg_shed_rate gauge",
	"dsg_rebalances_total counter",
	"dsg_migrated_keys_total counter",
	"dsg_kv_ops_total counter",
	"dsg_kv_hits_total counter",
	"dsg_kv_scanned_entries_total counter",
	"dsg_op_latency_seconds histogram",
	"dsg_stage_latency_seconds histogram",
	"dsg_retry_events_total counter",
	"dsg_goroutines gauge",
	"dsg_heap_alloc_bytes gauge",
	"dsg_gc_cycles_total counter",
	"dsg_gc_pause_seconds_total counter",
	"dsg_height gauge",
	"dsg_dummy_nodes gauge",
	"dsg_generations_total counter",
	"dsg_connections gauge",
	"dsg_uptime_seconds gauge",
}

func renderedFamilies(body string) []string {
	var fams []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	return fams
}

// TestRenderGoldenFamilies pins the full exposition: the family set is
// stable even on a freshly-built collector with no traffic and no
// attached tracer, so scrapers can rely on every series existing.
func TestRenderGoldenFamilies(t *testing.T) {
	body := NewCollector().Render()
	got := renderedFamilies(body)
	if len(got) != len(goldenFamilies) {
		t.Fatalf("rendered %d families, want %d:\n%s", len(got), len(goldenFamilies), strings.Join(got, "\n"))
	}
	for i, want := range goldenFamilies {
		if got[i] != want {
			t.Errorf("family %d = %q, want %q", i, got[i], want)
		}
	}
}

// TestRenderHistogramSeries checks the latency families' label sets and
// the Prometheus histogram invariants: cumulative buckets ending at +Inf,
// +Inf count equal to _count, bounds in seconds.
func TestRenderHistogramSeries(t *testing.T) {
	c := NewCollector()
	tr := obs.NewTracer()
	c.setTracer(tr)
	tr.ObserveOp(obs.KindGet, 3*time.Microsecond)
	tr.ObserveOp(obs.KindGet, 40*time.Millisecond)
	tr.ObserveStage(obs.StageRouteLeg, 2*time.Microsecond)
	tr.RetryEvent(obs.EventShed)
	body := c.Render()

	for _, verb := range []string{"route", "get", "put", "delete", "scan"} {
		if !strings.Contains(body, `dsg_op_latency_seconds_bucket{verb="`+verb+`",le="+Inf"}`) {
			t.Errorf("missing +Inf bucket for verb %q", verb)
		}
		if !strings.Contains(body, `dsg_op_latency_seconds_count{verb="`+verb+`"}`) {
			t.Errorf("missing _count for verb %q", verb)
		}
	}
	for _, stage := range []string{"route_leg", "adjust_apply"} {
		if !strings.Contains(body, `dsg_stage_latency_seconds_bucket{stage="`+stage+`",le="+Inf"}`) {
			t.Errorf("missing +Inf bucket for stage %q", stage)
		}
	}
	for _, want := range []string{
		`dsg_op_latency_seconds_count{verb="get"} 2`,
		`dsg_stage_latency_seconds_count{stage="route_leg"} 1`,
		`dsg_retry_events_total{event="shed"} 1`,
		`dsg_retry_events_total{event="unknown_key"} 0`,
		`dsg_retry_events_total{event="dead_route"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The first finite bound is 256ns in seconds; buckets are cumulative,
	// so the +Inf series must equal the count.
	if !strings.Contains(body, `le="2.56e-07"`) {
		t.Errorf("first bucket bound not rendered in seconds:\n%s", body)
	}
	if !strings.Contains(body, `dsg_op_latency_seconds_bucket{verb="get",le="+Inf"} 2`) {
		t.Errorf("+Inf bucket does not match count")
	}
}

// TestCollectorUnknownKeyFeedsTracer: wire-level unknown-key responses
// surface as retry events on the attached tracer.
func TestCollectorUnknownKeyFeedsTracer(t *testing.T) {
	c := NewCollector()
	tr := obs.NewTracer()
	c.setTracer(tr)
	c.observeError(CodeUnknownKey)
	c.observeError(CodeRetry) // not an unknown-key event
	if got := tr.RetryEvents(obs.EventUnknownKey); got != 1 {
		t.Errorf("unknown_key events = %d, want 1", got)
	}
	if !strings.Contains(c.Render(), `dsg_retry_events_total{event="unknown_key"} 1`) {
		t.Error("unknown_key retry event not rendered")
	}
}
