// Package wire is the networked runtime of the self-adjusting skip graph: a
// length-prefixed binary protocol carrying the full op envelope
// (Route/Get/Put/Delete/Scan) plus admin verbs (Stats, AddNode, RemoveNode,
// Crash, Verify, TraceDump), a Server that fronts any lsasg.Service over TCP, and a
// pooling Client with transient-error retry. The deterministic serving
// contract survives the wire: a server runs the service's ServeOps pipeline
// in generations, so a trace replayed through a connection produces stats
// byte-identical to the same trace served in-process (see docs/WIRE.md).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"lsasg"
	"lsasg/internal/obs"
)

// ErrRetry reports an op aborted by a serving-generation restart — another
// op's failure or an admin cycle racing it. The op itself was fine;
// resubmit it. The client's Do retries it automatically.
var ErrRetry = errors.New("wire: serving generation restarted, retry")

// Verb discriminates one request frame. Responses echo the request verb
// with the high bit set.
type Verb uint8

const (
	// VerbRoute serves one communication request src→dst.
	VerbRoute Verb = 1 + iota
	// VerbGet reads Dst's value as an access from Src.
	VerbGet
	// VerbPut writes Value to Dst as an access from Src.
	VerbPut
	// VerbDelete removes Dst from the keyspace.
	VerbDelete
	// VerbScan reads up to Limit entries from the first key ≥ Dst.
	VerbScan
	// VerbStats cycles the serving generation and returns the cumulative
	// service statistics plus the just-ended generation's ServeStats.
	VerbStats
	// VerbAddNode joins a new node and returns its index.
	VerbAddNode
	// VerbRemoveNode removes node Dst.
	VerbRemoveNode
	// VerbCrash injects a crash failure on node Dst.
	VerbCrash
	// VerbVerify checks all structural invariants of the topology.
	VerbVerify
	// VerbTraceDump returns the slowest-span exemplars and per-verb latency
	// summaries from a tracing-enabled daemon. Limit caps the span count
	// (0 returns every retained span). Like every admin verb it cycles the
	// serving generation.
	VerbTraceDump

	verbMax = VerbTraceDump

	// responseFlag marks a frame as the response to the verb in its low
	// bits.
	responseFlag Verb = 0x80
)

// String names the verb (response flag stripped).
func (v Verb) String() string {
	switch v &^ responseFlag {
	case VerbRoute:
		return "route"
	case VerbGet:
		return "get"
	case VerbPut:
		return "put"
	case VerbDelete:
		return "delete"
	case VerbScan:
		return "scan"
	case VerbStats:
		return "stats"
	case VerbAddNode:
		return "addnode"
	case VerbRemoveNode:
		return "removenode"
	case VerbCrash:
		return "crash"
	case VerbVerify:
		return "verify"
	case VerbTraceDump:
		return "tracedump"
	}
	return fmt.Sprintf("verb(%d)", uint8(v))
}

// ErrCode classifies a non-OK response. Codes are stable wire contract —
// the client maps them back onto the root error sentinels so errors.Is
// works across the process boundary.
type ErrCode uint8

const (
	// CodeOK is a successful response.
	CodeOK ErrCode = iota
	// CodeUnknownKey maps lsasg.ErrUnknownKey: the endpoint is not in the
	// keyspace (deleted, migrated mid-route, or never existed). Transient;
	// retryable.
	CodeUnknownKey
	// CodeDeadNode maps lsasg.ErrDeadNode: the op ran into a crash-failed
	// node before a repair. Transient by design; retryable.
	CodeDeadNode
	// CodeOutOfRange maps lsasg.ErrOutOfRange: an endpoint outside [0, N).
	CodeOutOfRange
	// CodeRetry reports an op that was aborted by a serving-generation
	// restart (another op's failure, or an admin cycle racing the op). The
	// op itself was fine — resubmit it.
	CodeRetry
	// CodeInvalid reports a malformed or unsupported request.
	CodeInvalid
	// CodeInternal is any other server-side failure.
	CodeInternal
)

const (
	// MaxFrame bounds one frame's body (verb + seq + payload). A scan of
	// the whole keyspace must fit, so the bound is generous.
	MaxFrame = 4 << 20
	// headerLen is the length prefix.
	headerLen = 4
)

// Request is one decoded request frame: the verb plus the op-envelope
// fields it uses (unused fields are zero and still round-trip).
type Request struct {
	Verb  Verb
	Seq   uint64
	Src   int64
	Dst   int64
	Limit int64
	Value []byte
}

// Entry is one scanned KV entry on the wire.
type Entry struct {
	Key     int64
	Version int64
	Value   []byte
}

// StatsPayload carries VerbStats' result: the cumulative service statistics
// and the exact ServeStats of the generation the call ended — for a single
// uninterrupted replay, the same struct the in-process ServeOps call would
// have returned.
type StatsPayload struct {
	Cum   lsasg.Stats
	Serve lsasg.ServeStats
}

// Response is one decoded response frame. Code discriminates success; on
// failure Msg carries the error text and the result fields are zero.
type Response struct {
	Verb Verb
	Seq  uint64
	Code ErrCode
	Msg  string

	Found   bool
	Existed bool
	Version int64
	Node    int64

	Distance int64
	Hops     int64
	Lag      int64

	Value   []byte
	Entries []Entry

	Stats *StatsPayload

	// Spans and Latency carry VerbTraceDump's result: the slowest-span
	// exemplars (slowest first) and the per-verb latency summaries. Empty
	// on every other verb.
	Spans   []obs.Span
	Latency []obs.VerbLatency
}

// --- frame I/O -------------------------------------------------------------

// WriteFrame writes one length-prefixed frame body.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame body %d bytes exceeds the %d limit", len(body), MaxFrame)
	}
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame body, refusing frames over
// MaxFrame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame body %d bytes exceeds the %d limit", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// --- encoding primitives ---------------------------------------------------

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) bytes(b []byte) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated frame")
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) bool() bool   { return d.u8() != 0 }
func (d *decoder) bytes() []byte {
	if d.err != nil || len(d.buf) < 4 {
		d.fail()
		return nil
	}
	n := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	if uint32(len(d.buf)) < n {
		d.fail()
		return nil
	}
	b := d.buf[:n:n]
	d.buf = d.buf[n:]
	if n == 0 {
		return nil
	}
	return b
}

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after frame payload", len(d.buf))
	}
	return nil
}

// --- request codec ---------------------------------------------------------

// Encode serializes the request into a frame body.
func (r Request) Encode() []byte {
	var e encoder
	e.u8(uint8(r.Verb))
	e.u64(r.Seq)
	e.i64(r.Src)
	e.i64(r.Dst)
	e.i64(r.Limit)
	e.bytes(r.Value)
	return e.buf
}

// DecodeRequest parses one request frame body.
func DecodeRequest(body []byte) (Request, error) {
	d := decoder{buf: body}
	var r Request
	r.Verb = Verb(d.u8())
	r.Seq = d.u64()
	r.Src = d.i64()
	r.Dst = d.i64()
	r.Limit = d.i64()
	r.Value = d.bytes()
	if err := d.done(); err != nil {
		return Request{}, err
	}
	if r.Verb&responseFlag != 0 || r.Verb < VerbRoute || r.Verb > verbMax {
		return Request{}, fmt.Errorf("wire: invalid request verb %d", uint8(r.Verb))
	}
	return r, nil
}

// Op converts an op-carrying request into the public envelope. Admin verbs
// have no envelope.
func (r Request) Op() (lsasg.Op, bool) {
	switch r.Verb {
	case VerbRoute:
		return lsasg.RouteOp(int(r.Src), int(r.Dst)), true
	case VerbGet:
		return lsasg.GetOp(int(r.Src), int(r.Dst)), true
	case VerbPut:
		return lsasg.PutOp(int(r.Src), int(r.Dst), r.Value), true
	case VerbDelete:
		return lsasg.DeleteOp(int(r.Src), int(r.Dst)), true
	case VerbScan:
		return lsasg.ScanOp(int(r.Src), int(r.Dst), int(r.Limit)), true
	}
	return lsasg.Op{}, false
}

// --- response codec --------------------------------------------------------

func encodeStats(e *encoder, s *StatsPayload) {
	c := s.Cum
	e.i64(int64(c.Requests))
	e.f64(c.MeanRouteDistance)
	e.i64(int64(c.MaxRouteDistance))
	e.i64(c.TotalTransformRounds)
	e.f64(c.WorkingSetBound)
	e.i64(int64(c.Height))
	e.i64(int64(c.DummyCount))
	e.i64(c.ShedAdjustments)
	e.i64(c.Rebalances)
	e.i64(c.MigratedKeys)
	v := s.Serve
	e.i64(v.Requests)
	e.i64(v.Batches)
	e.f64(v.MeanRouteDistance)
	e.i64(int64(v.MaxRouteDistance))
	e.i64(v.TotalTransformRounds)
	e.f64(v.MeanAdjustLag)
	e.i64(int64(v.MaxAdjustLag))
	e.i64(int64(v.Height))
	e.i64(int64(v.DummyCount))
	e.i64(int64(v.Shards))
	e.i64(v.CrossShardRequests)
	e.i64(v.Rebalances)
	e.i64(v.MigratedKeys)
	e.i64(v.Gets)
	e.i64(v.GetHits)
	e.i64(v.Puts)
	e.i64(v.PutInserts)
	e.i64(v.Deletes)
	e.i64(v.DeleteHits)
	e.i64(v.Scans)
	e.i64(v.ScannedEntries)
}

func decodeStats(d *decoder) *StatsPayload {
	var s StatsPayload
	c := &s.Cum
	c.Requests = int(d.i64())
	c.MeanRouteDistance = d.f64()
	c.MaxRouteDistance = int(d.i64())
	c.TotalTransformRounds = d.i64()
	c.WorkingSetBound = d.f64()
	c.Height = int(d.i64())
	c.DummyCount = int(d.i64())
	c.ShedAdjustments = d.i64()
	c.Rebalances = d.i64()
	c.MigratedKeys = d.i64()
	v := &s.Serve
	v.Requests = d.i64()
	v.Batches = d.i64()
	v.MeanRouteDistance = d.f64()
	v.MaxRouteDistance = int(d.i64())
	v.TotalTransformRounds = d.i64()
	v.MeanAdjustLag = d.f64()
	v.MaxAdjustLag = int(d.i64())
	v.Height = int(d.i64())
	v.DummyCount = int(d.i64())
	v.Shards = int(d.i64())
	v.CrossShardRequests = d.i64()
	v.Rebalances = d.i64()
	v.MigratedKeys = d.i64()
	v.Gets = d.i64()
	v.GetHits = d.i64()
	v.Puts = d.i64()
	v.PutInserts = d.i64()
	v.Deletes = d.i64()
	v.DeleteHits = d.i64()
	v.Scans = d.i64()
	v.ScannedEntries = d.i64()
	return &s
}

// Encode serializes the response into a frame body.
func (r Response) Encode() []byte {
	var e encoder
	e.u8(uint8(r.Verb | responseFlag))
	e.u64(r.Seq)
	e.u8(uint8(r.Code))
	e.bytes([]byte(r.Msg))
	e.bool(r.Found)
	e.bool(r.Existed)
	e.i64(r.Version)
	e.i64(r.Node)
	e.i64(r.Distance)
	e.i64(r.Hops)
	e.i64(r.Lag)
	e.bytes(r.Value)
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(r.Entries)))
	for _, ent := range r.Entries {
		e.i64(ent.Key)
		e.i64(ent.Version)
		e.bytes(ent.Value)
	}
	if r.Stats != nil {
		e.bool(true)
		encodeStats(&e, r.Stats)
	} else {
		e.bool(false)
	}
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(r.Spans)))
	for _, s := range r.Spans {
		encodeSpan(&e, s)
	}
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(r.Latency)))
	for _, l := range r.Latency {
		e.i64(l.Kind)
		e.i64(l.Count)
		e.i64(l.P50Nanos)
		e.i64(l.P99Nanos)
	}
	return e.buf
}

// Span and latency wire sizes: the fixed prefix of one span (ten i64s, two
// bools, one leg count) and the full size of one leg / one latency entry.
// The decoder's count bombs are rejected against them before allocating.
const (
	spanMinWire     = 10*8 + 2 + 4
	legWire         = 6 * 8
	verbLatencyWire = 4 * 8
)

func encodeSpan(e *encoder, s obs.Span) {
	e.i64(s.Seq)
	e.i64(s.Kind)
	e.i64(s.Src)
	e.i64(s.Dst)
	e.i64(s.Start)
	e.i64(s.TotalNanos)
	e.i64(s.Epoch)
	e.i64(s.RouteDistance)
	e.i64(s.RouteHops)
	e.i64(s.AdjustLag)
	e.bool(s.RouteMiss)
	e.bool(s.Cross)
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(s.Legs)))
	for _, l := range s.Legs {
		e.i64(l.Shard)
		e.i64(l.Distance)
		e.i64(l.Hops)
		e.i64(l.AdjustLag)
		e.i64(l.Epoch)
		e.i64(l.Nanos)
	}
}

func decodeSpan(d *decoder) obs.Span {
	var s obs.Span
	s.Seq = d.i64()
	s.Kind = d.i64()
	s.Src = d.i64()
	s.Dst = d.i64()
	s.Start = d.i64()
	s.TotalNanos = d.i64()
	s.Epoch = d.i64()
	s.RouteDistance = d.i64()
	s.RouteHops = d.i64()
	s.AdjustLag = d.i64()
	s.RouteMiss = d.bool()
	s.Cross = d.bool()
	if d.err != nil || len(d.buf) < 4 {
		d.fail()
		return s
	}
	m := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	if uint64(m)*legWire > uint64(len(d.buf)) {
		d.fail()
		return s
	}
	for i := uint32(0); i < m && d.err == nil; i++ {
		s.Legs = append(s.Legs, obs.LegSpan{
			Shard:     d.i64(),
			Distance:  d.i64(),
			Hops:      d.i64(),
			AdjustLag: d.i64(),
			Epoch:     d.i64(),
			Nanos:     d.i64(),
		})
	}
	return s
}

// DecodeResponse parses one response frame body.
func DecodeResponse(body []byte) (Response, error) {
	d := decoder{buf: body}
	var r Response
	verb := Verb(d.u8())
	r.Seq = d.u64()
	r.Code = ErrCode(d.u8())
	r.Msg = string(d.bytes())
	r.Found = d.bool()
	r.Existed = d.bool()
	r.Version = d.i64()
	r.Node = d.i64()
	r.Distance = d.i64()
	r.Hops = d.i64()
	r.Lag = d.i64()
	r.Value = d.bytes()
	if d.err == nil && len(d.buf) >= 4 {
		n := binary.BigEndian.Uint32(d.buf)
		d.buf = d.buf[4:]
		// Each entry is at least 20 bytes; reject counts the frame cannot
		// hold before allocating.
		if uint64(n)*20 > uint64(len(d.buf)) {
			d.fail()
		} else {
			for i := uint32(0); i < n && d.err == nil; i++ {
				r.Entries = append(r.Entries, Entry{Key: d.i64(), Version: d.i64(), Value: d.bytes()})
			}
		}
	} else {
		d.fail()
	}
	if d.bool() {
		r.Stats = decodeStats(&d)
	}
	if d.err == nil && len(d.buf) >= 4 {
		n := binary.BigEndian.Uint32(d.buf)
		d.buf = d.buf[4:]
		if uint64(n)*spanMinWire > uint64(len(d.buf)) {
			d.fail()
		} else {
			for i := uint32(0); i < n && d.err == nil; i++ {
				r.Spans = append(r.Spans, decodeSpan(&d))
			}
		}
	} else {
		d.fail()
	}
	if d.err == nil && len(d.buf) >= 4 {
		n := binary.BigEndian.Uint32(d.buf)
		d.buf = d.buf[4:]
		if uint64(n)*verbLatencyWire > uint64(len(d.buf)) {
			d.fail()
		} else {
			for i := uint32(0); i < n && d.err == nil; i++ {
				r.Latency = append(r.Latency, obs.VerbLatency{
					Kind:     d.i64(),
					Count:    d.i64(),
					P50Nanos: d.i64(),
					P99Nanos: d.i64(),
				})
			}
		}
	} else {
		d.fail()
	}
	if err := d.done(); err != nil {
		return Response{}, err
	}
	if verb&responseFlag == 0 {
		return Response{}, fmt.Errorf("wire: response frame missing the response flag (verb %d)", uint8(verb))
	}
	r.Verb = verb &^ responseFlag
	if r.Verb < VerbRoute || r.Verb > verbMax {
		return Response{}, fmt.Errorf("wire: invalid response verb %d", uint8(r.Verb))
	}
	return r, nil
}

// --- error mapping ---------------------------------------------------------

// CodeOf classifies an error into its wire code via the root sentinels.
func CodeOf(err error) ErrCode {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, lsasg.ErrUnknownKey):
		return CodeUnknownKey
	case errors.Is(err, lsasg.ErrDeadNode):
		return CodeDeadNode
	case errors.Is(err, lsasg.ErrOutOfRange):
		return CodeOutOfRange
	case errors.Is(err, ErrRetry):
		return CodeRetry
	}
	return CodeInternal
}

// Err reconstructs a response's error on the client side, re-attaching the
// matching root sentinel so errors.Is carries across the wire. A CodeOK
// response returns nil.
func (r Response) Err() error {
	switch r.Code {
	case CodeOK:
		return nil
	case CodeUnknownKey:
		return fmt.Errorf("%w (remote: %s)", lsasg.ErrUnknownKey, r.Msg)
	case CodeDeadNode:
		return fmt.Errorf("%w (remote: %s)", lsasg.ErrDeadNode, r.Msg)
	case CodeOutOfRange:
		return fmt.Errorf("%w (remote: %s)", lsasg.ErrOutOfRange, r.Msg)
	case CodeRetry:
		return fmt.Errorf("%w (remote: %s)", ErrRetry, r.Msg)
	case CodeInvalid:
		return fmt.Errorf("wire: invalid request (remote: %s)", r.Msg)
	}
	return fmt.Errorf("wire: remote error: %s", r.Msg)
}

// Retryable reports whether the code marks a transient condition a client
// should retry: generation restarts, and the by-design-transient unknown-key
// and dead-node races.
func (c ErrCode) Retryable() bool {
	return c == CodeRetry || c == CodeUnknownKey || c == CodeDeadNode
}
