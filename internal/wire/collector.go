package wire

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lsasg"
	"lsasg/internal/obs"
)

// Collector aggregates serving observability without perturbing the hot
// path: per-op counters advance on lock-free atomics as results flow, and
// the topology-level figures (height, shed, rebalances, migrated keys) are
// snapshotted only at generation boundaries — the service's methods are not
// concurrency-safe, so the collector never touches the service while a
// pipeline runs. It renders the Prometheus text exposition format (metric
// names are listed in docs/WIRE.md).
type Collector struct {
	start time.Time

	// Per-verb completed-request counters, indexed by Verb.
	ops [verbMax + 1]atomic.Int64
	// Per-code error counters.
	errs [CodeInternal + 1]atomic.Int64

	// Access-path accumulators over completed ops.
	distSum atomic.Int64
	lagSum  atomic.Int64
	lagMax  atomic.Int64

	// KV outcome accumulators.
	getHits    atomic.Int64
	putInserts atomic.Int64
	delHits    atomic.Int64
	scanned    atomic.Int64

	conns atomic.Int64

	// tracer backs the latency-histogram and retry-event families. Always
	// non-nil: NewCollector installs a private one so Render always emits
	// the full family set; WithTracer swaps in the service's live tracer
	// before the server starts, so every family then reflects real serving
	// measurements.
	tracer *obs.Tracer

	// Boundary snapshot: cumulative service stats captured when a serving
	// generation ends (ServeOps returned, service idle).
	mu   sync.Mutex
	cum  lsasg.Stats
	last lsasg.ServeStats
	gens int64

	// req/s gauge state: the previous scrape's observation.
	scrapeMu  sync.Mutex
	prevAt    time.Time
	prevTotal int64
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	now := time.Now()
	return &Collector{start: now, prevAt: now, tracer: obs.NewTracer()}
}

// setTracer replaces the collector's metric source with the service's live
// tracer. Must be called before the server starts handling connections.
func (c *Collector) setTracer(tr *obs.Tracer) {
	if tr != nil {
		c.tracer = tr
	}
}

// observeResult records one completed op.
func (c *Collector) observeResult(v Verb, r lsasg.OpResult) {
	c.ops[v].Add(1)
	c.distSum.Add(int64(r.RouteDistance))
	c.lagSum.Add(int64(r.AdjustLag))
	for {
		cur := c.lagMax.Load()
		if int64(r.AdjustLag) <= cur || c.lagMax.CompareAndSwap(cur, int64(r.AdjustLag)) {
			break
		}
	}
	switch r.Op.Kind {
	case lsasg.GetKind:
		if r.Found {
			c.getHits.Add(1)
		}
	case lsasg.PutKind:
		if !r.Existed {
			c.putInserts.Add(1)
		}
	case lsasg.DeleteKind:
		if r.Existed {
			c.delHits.Add(1)
		}
	case lsasg.ScanKind:
		c.scanned.Add(int64(len(r.Entries)))
	}
}

// observeAdmin records one completed admin request.
func (c *Collector) observeAdmin(v Verb) { c.ops[v].Add(1) }

// observeError records one non-OK response. Unknown-key responses also
// feed the tracer's retry-event counter: on the wire they are exactly the
// ErrUnknownKey outcomes a free-running client would retry.
func (c *Collector) observeError(code ErrCode) {
	if int(code) < len(c.errs) {
		c.errs[code].Add(1)
	}
	if code == CodeUnknownKey {
		c.tracer.RetryEvent(obs.EventUnknownKey)
	}
}

// observeGeneration snapshots the service's cumulative stats at a
// generation boundary — the only moment the service is idle.
func (c *Collector) observeGeneration(cum lsasg.Stats, last lsasg.ServeStats) {
	c.mu.Lock()
	c.cum = cum
	c.last = last
	c.gens++
	c.mu.Unlock()
}

func (c *Collector) connOpened() { c.conns.Add(1) }
func (c *Collector) connClosed() { c.conns.Add(-1) }

func (c *Collector) opTotal() int64 {
	var t int64
	for v := VerbRoute; v <= VerbScan; v++ {
		t += c.ops[v].Load()
	}
	return t
}

// Render writes the Prometheus text exposition of every metric.
func (c *Collector) Render() string {
	var b strings.Builder
	now := time.Now()
	total := c.opTotal()

	c.scrapeMu.Lock()
	dt := now.Sub(c.prevAt).Seconds()
	rate := 0.0
	if dt > 0 {
		rate = float64(total-c.prevTotal) / dt
	}
	c.prevAt, c.prevTotal = now, total
	c.scrapeMu.Unlock()

	c.mu.Lock()
	cum, last, gens := c.cum, c.last, c.gens
	c.mu.Unlock()

	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("dsg_requests_total", "Completed requests by verb.")
	for v := VerbRoute; v <= verbMax; v++ {
		fmt.Fprintf(&b, "dsg_requests_total{verb=%q} %d\n", v.String(), c.ops[v].Load())
	}

	counter("dsg_errors_total", "Non-OK responses by wire error code.")
	for code, name := range map[ErrCode]string{
		CodeUnknownKey: "unknown_key", CodeDeadNode: "dead_node",
		CodeOutOfRange: "out_of_range", CodeRetry: "retry",
		CodeInvalid: "invalid", CodeInternal: "internal",
	} {
		fmt.Fprintf(&b, "dsg_errors_total{code=%q} %d\n", name, c.errs[code].Load())
	}

	gauge("dsg_req_per_sec", "Op throughput since the previous scrape.")
	fmt.Fprintf(&b, "dsg_req_per_sec %g\n", rate)

	gauge("dsg_adjust_lag_mean", "Mean pending adjustments at route time over all completed ops.")
	mean := 0.0
	if total > 0 {
		mean = float64(c.lagSum.Load()) / float64(total)
	}
	fmt.Fprintf(&b, "dsg_adjust_lag_mean %g\n", mean)
	gauge("dsg_adjust_lag_max", "Worst pending-adjustment count observed.")
	fmt.Fprintf(&b, "dsg_adjust_lag_max %d\n", c.lagMax.Load())

	gauge("dsg_route_distance_mean", "Mean snapshot routing distance over all completed ops.")
	meanDist := 0.0
	if total > 0 {
		meanDist = float64(c.distSum.Load()) / float64(total)
	}
	fmt.Fprintf(&b, "dsg_route_distance_mean %g\n", meanDist)

	counter("dsg_shed_adjustments_total", "Adjustments dropped by free-running engines (generation-boundary snapshot).")
	fmt.Fprintf(&b, "dsg_shed_adjustments_total %d\n", cum.ShedAdjustments)
	gauge("dsg_shed_rate", "Shed adjustments per served request (generation-boundary snapshot).")
	shedRate := 0.0
	if cum.Requests > 0 {
		shedRate = float64(cum.ShedAdjustments) / float64(cum.Requests)
	}
	fmt.Fprintf(&b, "dsg_shed_rate %g\n", shedRate)

	counter("dsg_rebalances_total", "Skew-driven shard migrations (generation-boundary snapshot).")
	fmt.Fprintf(&b, "dsg_rebalances_total %d\n", cum.Rebalances)
	counter("dsg_migrated_keys_total", "Keys moved across shards by the rebalancer (generation-boundary snapshot).")
	fmt.Fprintf(&b, "dsg_migrated_keys_total %d\n", cum.MigratedKeys)

	counter("dsg_kv_ops_total", "Completed KV data-plane ops by kind.")
	fmt.Fprintf(&b, "dsg_kv_ops_total{op=\"get\"} %d\n", c.ops[VerbGet].Load())
	fmt.Fprintf(&b, "dsg_kv_ops_total{op=\"put\"} %d\n", c.ops[VerbPut].Load())
	fmt.Fprintf(&b, "dsg_kv_ops_total{op=\"delete\"} %d\n", c.ops[VerbDelete].Load())
	fmt.Fprintf(&b, "dsg_kv_ops_total{op=\"scan\"} %d\n", c.ops[VerbScan].Load())
	counter("dsg_kv_hits_total", "KV op outcomes: get hits, put joins, delete hits.")
	fmt.Fprintf(&b, "dsg_kv_hits_total{op=\"get\"} %d\n", c.getHits.Load())
	fmt.Fprintf(&b, "dsg_kv_hits_total{op=\"put_insert\"} %d\n", c.putInserts.Load())
	fmt.Fprintf(&b, "dsg_kv_hits_total{op=\"delete\"} %d\n", c.delHits.Load())
	counter("dsg_kv_scanned_entries_total", "Entries returned across all scans.")
	fmt.Fprintf(&b, "dsg_kv_scanned_entries_total %d\n", c.scanned.Load())

	histogram := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	writeHist := func(name, label, value string, h *obs.Histogram) {
		buckets, sumNanos, count := h.Snapshot()
		cum := int64(0)
		for i := 0; i < obs.NumBuckets; i++ {
			cum += buckets[i]
			fmt.Fprintf(&b, "%s_bucket{%s=%q,le=\"%g\"} %d\n",
				name, label, value, obs.BucketBound(i).Seconds(), cum)
		}
		cum += buckets[obs.NumBuckets]
		fmt.Fprintf(&b, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, value, cum)
		fmt.Fprintf(&b, "%s_sum{%s=%q} %g\n", name, label, value, float64(sumNanos)/1e9)
		fmt.Fprintf(&b, "%s_count{%s=%q} %d\n", name, label, value, count)
	}

	histogram("dsg_op_latency_seconds", "Snapshot-side service time per completed op, by verb.")
	for k := int64(0); k < obs.NumKinds(); k++ {
		writeHist("dsg_op_latency_seconds", "verb", obs.KindName(k), c.tracer.VerbHistogram(k))
	}
	histogram("dsg_stage_latency_seconds", "Per-stage pipeline timings: one route leg, one adjuster batch apply.")
	for st := 0; st < obs.NumStages(); st++ {
		writeHist("dsg_stage_latency_seconds", "stage", obs.StageName(st), c.tracer.StageHistogram(st))
	}

	counter("dsg_retry_events_total", "Retry-triggering events: shed requests, unknown-key responses, dead-route detections.")
	for ev := 0; ev < obs.NumEvents(); ev++ {
		fmt.Fprintf(&b, "dsg_retry_events_total{event=%q} %d\n", obs.EventName(ev), c.tracer.RetryEvents(ev))
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("dsg_goroutines", "Live goroutines in the daemon process.")
	fmt.Fprintf(&b, "dsg_goroutines %d\n", runtime.NumGoroutine())
	gauge("dsg_heap_alloc_bytes", "Heap bytes in use (runtime.MemStats.HeapAlloc).")
	fmt.Fprintf(&b, "dsg_heap_alloc_bytes %d\n", ms.HeapAlloc)
	counter("dsg_gc_cycles_total", "Completed garbage-collection cycles.")
	fmt.Fprintf(&b, "dsg_gc_cycles_total %d\n", ms.NumGC)
	counter("dsg_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.")
	fmt.Fprintf(&b, "dsg_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)

	gauge("dsg_height", "Skip-graph height at the last generation boundary.")
	fmt.Fprintf(&b, "dsg_height %d\n", last.Height)
	gauge("dsg_dummy_nodes", "Dummy-node population at the last generation boundary.")
	fmt.Fprintf(&b, "dsg_dummy_nodes %d\n", last.DummyCount)
	counter("dsg_generations_total", "Serving generations completed (admin cycles and restarts).")
	fmt.Fprintf(&b, "dsg_generations_total %d\n", gens)
	gauge("dsg_connections", "Open client connections.")
	fmt.Fprintf(&b, "dsg_connections %d\n", c.conns.Load())
	gauge("dsg_uptime_seconds", "Seconds since the collector started.")
	fmt.Fprintf(&b, "dsg_uptime_seconds %g\n", now.Sub(c.start).Seconds())
	return b.String()
}

// Handler returns an http.Handler serving /metrics (Prometheus text) and
// /healthz (liveness).
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, c.Render())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}
