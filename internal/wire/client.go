package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"lsasg"
	"lsasg/internal/obs"
)

// Client speaks the wire protocol to one server. Connections are pooled:
// each synchronous call checks one out, round-trips a frame, and returns
// it. Transient failures — generation restarts (CodeRetry) and the
// by-design-transient ErrUnknownKey/ErrDeadNode races — are retried with
// capped exponential backoff.
type Client struct {
	addr string
	pool chan *clientConn
	seq  atomic.Uint64

	maxAttempts int
	timeout     time.Duration
	dialTimeout time.Duration
}

type clientConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithPoolSize caps idle pooled connections (default 4).
func WithPoolSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.pool = make(chan *clientConn, n)
		}
	}
}

// WithTimeout bounds each frame write/read (default 30s; zero disables).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithMaxAttempts caps Do's tries per request, first included (default 4).
func WithMaxAttempts(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.maxAttempts = n
		}
	}
}

// WithDialTimeout bounds connection establishment (default 5s).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.dialTimeout = d }
}

// DialClient connects to a server, failing fast if it is unreachable.
func DialClient(addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{
		addr:        addr,
		pool:        make(chan *clientConn, 4),
		maxAttempts: 4,
		timeout:     30 * time.Second,
		dialTimeout: 5 * time.Second,
	}
	for _, opt := range opts {
		opt(c)
	}
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.putConn(cc)
	return c, nil
}

// Close tears down every pooled connection.
func (c *Client) Close() {
	for {
		select {
		case cc := <-c.pool:
			cc.nc.Close()
		default:
			return
		}
	}
}

func (c *Client) dial() (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return nil, err
	}
	return &clientConn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}, nil
}

func (c *Client) getConn() (*clientConn, error) {
	select {
	case cc := <-c.pool:
		return cc, nil
	default:
		return c.dial()
	}
}

func (c *Client) putConn(cc *clientConn) {
	select {
	case c.pool <- cc:
	default:
		cc.nc.Close()
	}
}

// roundTrip writes one request and reads its response on a pooled
// connection. Any transport or protocol fault closes the connection.
func (c *Client) roundTrip(req Request) (Response, error) {
	cc, err := c.getConn()
	if err != nil {
		return Response{}, err
	}
	if c.timeout > 0 {
		cc.nc.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := WriteFrame(cc.bw, req.Encode()); err != nil {
		cc.nc.Close()
		return Response{}, err
	}
	if err := cc.bw.Flush(); err != nil {
		cc.nc.Close()
		return Response{}, err
	}
	body, err := ReadFrame(cc.br)
	if err != nil {
		cc.nc.Close()
		return Response{}, err
	}
	resp, err := DecodeResponse(body)
	if err != nil {
		cc.nc.Close()
		return Response{}, err
	}
	if resp.Seq != req.Seq {
		cc.nc.Close()
		return Response{}, fmt.Errorf("wire: response seq %d for request %d", resp.Seq, req.Seq)
	}
	c.putConn(cc)
	return resp, nil
}

// Do round-trips one request, retrying transport faults and retryable
// codes with capped exponential backoff (1ms doubling, 50ms cap). The
// response is returned alongside its decoded error, if any.
func (c *Client) Do(req Request) (Response, error) {
	req.Seq = c.seq.Add(1)
	var last error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			d := time.Millisecond << (attempt - 1)
			if d > 50*time.Millisecond {
				d = 50 * time.Millisecond
			}
			time.Sleep(d)
		}
		resp, err := c.roundTrip(req)
		if err != nil {
			last = err
			continue
		}
		if resp.Code != CodeOK && resp.Code.Retryable() {
			last = resp.Err()
			continue
		}
		return resp, resp.Err()
	}
	return Response{}, fmt.Errorf("wire: request failed after %d attempts: %w", c.maxAttempts, last)
}

// RequestFor converts a public op envelope into its wire request (Seq
// unset). The second result is false for an unmapped kind.
func RequestFor(op lsasg.Op) (Request, bool) {
	var v Verb
	switch op.Kind {
	case lsasg.RouteKind:
		v = VerbRoute
	case lsasg.GetKind:
		v = VerbGet
	case lsasg.PutKind:
		v = VerbPut
	case lsasg.DeleteKind:
		v = VerbDelete
	case lsasg.ScanKind:
		v = VerbScan
	default:
		return Request{}, false
	}
	return Request{Verb: v, Src: int64(op.Src), Dst: int64(op.Dst), Limit: int64(op.Limit), Value: op.Value}, true
}

// --- synchronous op surface -------------------------------------------------

// Route serves one communication request src→dst.
func (c *Client) Route(src, dst int) (Response, error) {
	return c.Do(Request{Verb: VerbRoute, Src: int64(src), Dst: int64(dst)})
}

// Get reads key's value as an access from src.
func (c *Client) Get(src, key int) (value []byte, version int64, found bool, err error) {
	resp, err := c.Do(Request{Verb: VerbGet, Src: int64(src), Dst: int64(key)})
	if err != nil {
		return nil, 0, false, err
	}
	return resp.Value, resp.Version, resp.Found, nil
}

// Put writes value to key as an access from src.
func (c *Client) Put(src, key int, value []byte) (version int64, existed bool, err error) {
	resp, err := c.Do(Request{Verb: VerbPut, Src: int64(src), Dst: int64(key), Value: value})
	if err != nil {
		return 0, false, err
	}
	return resp.Version, resp.Existed, nil
}

// Delete removes key from the keyspace.
func (c *Client) Delete(src, key int) (existed bool, err error) {
	resp, err := c.Do(Request{Verb: VerbDelete, Src: int64(src), Dst: int64(key)})
	if err != nil {
		return false, err
	}
	return resp.Existed, nil
}

// Scan reads up to limit entries in ascending key order from the first
// key ≥ start.
func (c *Client) Scan(src, start, limit int) ([]lsasg.KV, error) {
	resp, err := c.Do(Request{Verb: VerbScan, Src: int64(src), Dst: int64(start), Limit: int64(limit)})
	if err != nil {
		return nil, err
	}
	kvs := make([]lsasg.KV, len(resp.Entries))
	for i, ent := range resp.Entries {
		kvs[i] = lsasg.KV{Key: int(ent.Key), Value: ent.Value, Version: ent.Version}
	}
	return kvs, nil
}

// --- admin surface ----------------------------------------------------------

// Stats cycles the serving generation and returns the cumulative service
// statistics plus the just-ended generation's ServeStats.
func (c *Client) Stats() (StatsPayload, error) {
	resp, err := c.Do(Request{Verb: VerbStats})
	if err != nil {
		return StatsPayload{}, err
	}
	if resp.Stats == nil {
		return StatsPayload{}, fmt.Errorf("wire: stats response carried no payload")
	}
	return *resp.Stats, nil
}

// AddNode joins a new node and returns its index.
func (c *Client) AddNode() (int, error) {
	resp, err := c.Do(Request{Verb: VerbAddNode})
	if err != nil {
		return 0, err
	}
	return int(resp.Node), nil
}

// RemoveNode removes node idx.
func (c *Client) RemoveNode(idx int) error {
	_, err := c.Do(Request{Verb: VerbRemoveNode, Dst: int64(idx)})
	return err
}

// Crash injects a crash failure on node idx.
func (c *Client) Crash(idx int) error {
	_, err := c.Do(Request{Verb: VerbCrash, Dst: int64(idx)})
	return err
}

// Verify checks the remote topology's structural invariants.
func (c *Client) Verify() error {
	_, err := c.Do(Request{Verb: VerbVerify})
	return err
}

// TraceDump fetches the daemon's slowest-span ring (at most limit spans,
// 0 for all retained) plus per-verb latency summaries. Fails with
// CodeInvalid when the daemon runs without tracing.
func (c *Client) TraceDump(limit int) ([]obs.Span, []obs.VerbLatency, error) {
	resp, err := c.Do(Request{Verb: VerbTraceDump, Limit: int64(limit)})
	if err != nil {
		return nil, nil, err
	}
	return resp.Spans, resp.Latency, nil
}

// --- pipelined replay -------------------------------------------------------

// Replay pipelines a trace down ONE connection in order, follows it with a
// Stats frame, and collects every response. A connection's frames enter
// the server's intake in read order and the owner consumes that queue
// FIFO, so the trailing Stats cycles the serving generation only after the
// whole trace: the returned StatsPayload.Serve is exactly the ServeStats
// an in-process ServeOps call over the same trace would return. No
// retries happen here — a mid-trace failure surfaces in the responses so
// the caller sees the trace's true outcome.
func (c *Client) Replay(ops []lsasg.Op) ([]Response, StatsPayload, error) {
	for _, op := range ops {
		if _, ok := RequestFor(op); !ok {
			return nil, StatsPayload{}, fmt.Errorf("wire: op kind %v cannot replay", op.Kind)
		}
	}
	cc, err := c.getConn()
	if err != nil {
		return nil, StatsPayload{}, err
	}
	base := c.seq.Add(uint64(len(ops)) + 1)
	first := base - uint64(len(ops)) // ops get first..base-1, Stats gets base

	writeErr := make(chan error, 1)
	go func() {
		for i, op := range ops {
			req, _ := RequestFor(op)
			req.Seq = first + uint64(i)
			if err := WriteFrame(cc.bw, req.Encode()); err != nil {
				writeErr <- err
				return
			}
		}
		if err := WriteFrame(cc.bw, Request{Verb: VerbStats, Seq: base}.Encode()); err != nil {
			writeErr <- err
			return
		}
		writeErr <- cc.bw.Flush()
	}()

	resps := make([]Response, 0, len(ops))
	var stats StatsPayload
	for i := 0; i <= len(ops); i++ {
		if c.timeout > 0 {
			cc.nc.SetReadDeadline(time.Now().Add(c.timeout))
		}
		body, err := ReadFrame(cc.br)
		if err == nil {
			var resp Response
			if resp, err = DecodeResponse(body); err == nil {
				if want := first + uint64(i); resp.Seq != want {
					err = fmt.Errorf("wire: replay response seq %d, want %d", resp.Seq, want)
				} else if i < len(ops) {
					resps = append(resps, resp)
				} else if resp.Stats != nil {
					stats = *resp.Stats
				} else if e := resp.Err(); e != nil {
					err = e
				} else {
					err = fmt.Errorf("wire: stats response carried no payload")
				}
			}
		}
		if err != nil {
			cc.nc.Close()
			<-writeErr
			return resps, StatsPayload{}, err
		}
	}
	if err := <-writeErr; err != nil {
		cc.nc.Close()
		return resps, StatsPayload{}, err
	}
	c.putConn(cc)
	return resps, stats, nil
}
