package wire

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lsasg"
	"lsasg/internal/obs"
)

// Loopback integration: a real server on 127.0.0.1, a real client, and the
// determinism contract — a trace replayed through the wire produces stats
// byte-identical to the same trace served in-process.

func startServer(t *testing.T, svc lsasg.Service, opts ...ServerOption) (*Server, *Client) {
	t.Helper()
	srv := NewServer(svc, opts...)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	cl, err := DialClient(lis.Addr().String(), WithTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return srv, cl
}

func TestLoopbackKVSurface(t *testing.T) {
	nw, err := lsasg.New(32, lsasg.WithSeed(3), lsasg.WithBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	_, cl := startServer(t, nw)

	if _, _, found, err := cl.Get(0, 9); err != nil || found {
		t.Fatalf("get of unwritten key: found=%v err=%v", found, err)
	}
	ver, existed, err := cl.Put(0, 9, []byte("hello"))
	if err != nil || !existed || ver != 1 {
		t.Fatalf("put: version=%d existed=%v err=%v", ver, existed, err)
	}
	val, rver, found, err := cl.Get(3, 9)
	if err != nil || !found || string(val) != "hello" || rver != ver {
		t.Fatalf("get after put: %q v%d found=%v err=%v", val, rver, found, err)
	}
	for _, k := range []int{12, 3, 7} {
		if _, _, err := cl.Put(1, k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := cl.Scan(2, 0, 10)
	if err != nil || len(kvs) != 4 || kvs[0].Key != 3 || kvs[3].Key != 12 {
		t.Fatalf("scan = %v, %v", kvs, err)
	}
	if existed, err := cl.Delete(0, 9); err != nil || !existed {
		t.Fatalf("delete: existed=%v err=%v", existed, err)
	}
	resp, err := cl.Route(4, 20)
	if err != nil || resp.Node != 20 {
		t.Fatalf("route: %+v, %v", resp, err)
	}
	if resp.Hops < 1 {
		t.Errorf("route reported %d hops", resp.Hops)
	}
	if err := cl.Verify(); err != nil {
		t.Fatal(err)
	}

	// The remote error surface keeps its sentinels.
	if _, _, _, err := cl.Get(0, 99); !errors.Is(err, lsasg.ErrOutOfRange) {
		t.Errorf("out-of-range get returned %v, want ErrOutOfRange", err)
	}
	if _, err := cl.Scan(99, 0, 1); !errors.Is(err, lsasg.ErrOutOfRange) {
		t.Errorf("out-of-range scan origin returned %v, want ErrOutOfRange", err)
	}

	// Stats cycles the generation and reports what it served.
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Serve.Puts != 4 || st.Serve.Deletes != 1 || st.Serve.Scans != 1 {
		t.Errorf("serve stats: %+v", st.Serve)
	}
	if st.Cum.Requests == 0 {
		t.Errorf("cumulative stats empty: %+v", st.Cum)
	}

	// And traffic keeps flowing on the next generation.
	if _, _, err := cl.Put(5, 11, []byte("next-gen")); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackMembershipAdmin(t *testing.T) {
	nw, err := lsasg.New(16, lsasg.WithSeed(5), lsasg.WithBatchSize(1),
		lsasg.WithoutWorkingSetTracking())
	if err != nil {
		t.Fatal(err)
	}
	_, cl := startServer(t, nw)

	idx, err := cl.AddNode()
	if err != nil || idx != 16 {
		t.Fatalf("AddNode = %d, %v", idx, err)
	}
	// The widened keyspace is visible to edge validation immediately.
	if _, _, err := cl.Put(0, 16, []byte("new")); err != nil {
		t.Fatalf("put to joined node: %v", err)
	}
	if err := cl.RemoveNode(7); err != nil {
		t.Fatal(err)
	}
	if err := cl.Verify(); err != nil {
		t.Fatal(err)
	}

	// The sharded service has a fixed directory: membership admin is
	// refused, not mis-served.
	snw, err := lsasg.NewSharded(32, lsasg.WithShards(4), lsasg.WithSeed(5),
		lsasg.WithBatchSize(1), lsasg.WithRebalanceWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	_, scl := startServer(t, snw)
	if _, err := scl.AddNode(); err == nil {
		t.Error("sharded AddNode must be refused")
	}
}

func TestLoopbackGenerationRestart(t *testing.T) {
	nw, err := lsasg.New(16, lsasg.WithSeed(7), lsasg.WithBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	_, cl := startServer(t, nw)

	// Delete key 5, then route to it: the op kills its serving generation
	// and the client's retries cannot save it — the sentinel survives.
	if _, err := cl.Delete(0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Route(1, 5); !errors.Is(err, lsasg.ErrUnknownKey) {
		t.Fatalf("route to departed key returned %v, want ErrUnknownKey", err)
	}
	// The service recovered into a fresh generation.
	if _, _, err := cl.Put(2, 9, []byte("alive")); err != nil {
		t.Fatalf("traffic after generation restart: %v", err)
	}
	if err := cl.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackCrashInjection(t *testing.T) {
	nw, err := lsasg.New(16, lsasg.WithSeed(9), lsasg.WithBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	_, cl := startServer(t, nw)
	if err := cl.Crash(3); err != nil {
		t.Fatal(err)
	}
	// Routing straight at the crashed node trips the failure.
	if _, err := cl.Route(1, 3); !errors.Is(err, lsasg.ErrDeadNode) {
		t.Fatalf("route to crashed node returned %v, want ErrDeadNode", err)
	}
	if err := cl.Crash(99); !errors.Is(err, lsasg.ErrOutOfRange) {
		t.Fatalf("crash of out-of-range node returned %v", err)
	}
}

func inProcessReplay(t *testing.T, svc lsasg.Service, ops []lsasg.Op) lsasg.ServeStats {
	t.Helper()
	ch := make(chan lsasg.Op)
	go func() {
		defer close(ch)
		for _, op := range ops {
			ch <- op
		}
	}()
	st, err := svc.ServeOps(context.Background(), ch, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestReplayDeterminism(t *testing.T) {
	const n, length, seed = 64, 400, 17
	cases := []struct {
		name  string
		build func(extra ...lsasg.Option) (lsasg.Service, error)
	}{
		{"single", func(extra ...lsasg.Option) (lsasg.Service, error) {
			opts := append([]lsasg.Option{lsasg.WithSeed(seed), lsasg.WithBatchSize(1)}, extra...)
			return lsasg.New(n, opts...)
		}},
		{"sharded", func(extra ...lsasg.Option) (lsasg.Service, error) {
			opts := append([]lsasg.Option{lsasg.WithShards(4), lsasg.WithSeed(seed),
				lsasg.WithBatchSize(1), lsasg.WithRebalanceWindow(1)}, extra...)
			return lsasg.NewSharded(n, opts...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ops := ReplayTrace(n, length, seed)

			// The reference run is untraced; the wire run carries full
			// instrumentation. Matching stats pin the contract that tracing
			// never perturbs the deterministic pipeline.
			ref, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			want := StatsColumns(inProcessReplay(t, ref, ops))

			svc, err := tc.build(lsasg.WithTracing())
			if err != nil {
				t.Fatal(err)
			}
			tr := svc.(interface{ Tracer() *obs.Tracer }).Tracer()
			if tr == nil {
				t.Fatal("WithTracing left the tracer nil")
			}
			_, cl := startServer(t, svc, WithTracer(tr))
			resps, stats, err := cl.Replay(ops)
			if err != nil {
				t.Fatal(err)
			}
			if len(resps) != len(ops) {
				t.Fatalf("%d responses for %d ops", len(resps), len(ops))
			}
			for i, r := range resps {
				if r.Code != CodeOK {
					t.Fatalf("op %d (%v) failed: %s", i, r.Verb, r.Msg)
				}
			}
			got := StatsColumns(stats.Serve)
			if got != want {
				t.Errorf("wire replay diverged from the in-process run:\n got  %s\n want %s", got, want)
			}
			if err := cl.Verify(); err != nil {
				t.Fatal(err)
			}

			// The instrumented run actually measured: every replayed op fed
			// its verb histogram, and the slow-span ring retained spans.
			spans, lats, err := cl.TraceDump(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(spans) == 0 {
				t.Error("trace dump returned no spans after a 400-op replay")
			}
			var measured int64
			for _, l := range lats {
				measured += l.Count
			}
			if measured != int64(len(ops)) {
				t.Errorf("verb histograms measured %d ops, want %d", measured, len(ops))
			}
			for _, s := range spans {
				if s.TotalNanos <= 0 || len(s.Legs) == 0 {
					t.Errorf("degenerate span: %+v", s)
				}
			}
		})
	}
}

func TestTraceDumpDisabled(t *testing.T) {
	nw, err := lsasg.New(16, lsasg.WithSeed(19), lsasg.WithBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	_, cl := startServer(t, nw) // no WithTracer
	if _, _, err := cl.TraceDump(8); err == nil || !strings.Contains(err.Error(), "tracing is not enabled") {
		t.Fatalf("trace dump on untraced daemon returned %v, want invalid-request refusal", err)
	}
}

func TestTraceDumpLimit(t *testing.T) {
	nw, err := lsasg.New(32, lsasg.WithSeed(21), lsasg.WithBatchSize(1), lsasg.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	_, cl := startServer(t, nw, WithTracer(nw.Tracer()))
	for i := 0; i < 20; i++ {
		if _, _, err := cl.Put(i, (i+5)%32, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	spans, lats, err := cl.TraceDump(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 || len(spans) > 3 {
		t.Fatalf("limit 3 returned %d spans", len(spans))
	}
	// Slowest-first ordering survives the wire.
	for i := 1; i < len(spans); i++ {
		if spans[i].TotalNanos > spans[i-1].TotalNanos {
			t.Errorf("spans out of order: %d then %d ns", spans[i-1].TotalNanos, spans[i].TotalNanos)
		}
	}
	var put int64
	for _, l := range lats {
		if l.Kind == obs.KindPut {
			put = l.Count
		}
	}
	if put != 20 {
		t.Errorf("put latency count = %d, want 20", put)
	}
}

func TestShutdownDrains(t *testing.T) {
	nw, err := lsasg.New(16, lsasg.WithSeed(11), lsasg.WithBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(nw)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	cl, err := DialClient(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Put(0, 5, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// A second shutdown is a no-op, and the port no longer answers.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("repeat shutdown: %v", err)
	}
	if _, err := DialClient(lis.Addr().String(), WithDialTimeout(200*time.Millisecond)); err == nil {
		t.Error("dial after shutdown must fail")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	nw, err := lsasg.New(32, lsasg.WithSeed(13), lsasg.WithBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, cl := startServer(t, nw)

	cl.Put(0, 9, []byte("x"))
	cl.Get(1, 9)
	cl.Scan(2, 0, 4)
	cl.Route(3, 20)
	if _, err := cl.Stats(); err != nil { // cycles the generation: snapshots height
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Collector().Handler())
	defer ts.Close()
	body := httpGet(t, ts.URL+"/metrics")
	for _, want := range []string{
		`dsg_requests_total{verb="get"} 1`,
		`dsg_requests_total{verb="put"} 1`,
		`dsg_requests_total{verb="scan"} 1`,
		`dsg_requests_total{verb="route"} 1`,
		`dsg_requests_total{verb="stats"} 1`,
		"dsg_req_per_sec",
		"dsg_adjust_lag_mean",
		"dsg_route_distance_mean",
		"dsg_shed_adjustments_total",
		"dsg_shed_rate",
		"dsg_rebalances_total 0",
		"dsg_migrated_keys_total 0",
		`dsg_kv_ops_total{op="get"} 1`,
		`dsg_kv_hits_total{op="get"} 1`,
		"dsg_kv_scanned_entries_total 1",
		"dsg_generations_total 1",
		"dsg_connections 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(body, "dsg_height ") || strings.Contains(body, "dsg_height 0") {
		t.Errorf("dsg_height not snapshotted at the generation boundary:\n%s", body)
	}
	if got := httpGet(t, ts.URL+"/healthz"); !strings.Contains(got, "ok") {
		t.Errorf("healthz = %q", got)
	}
}
