package wire

import (
	"fmt"
	"math/rand"

	"lsasg"
)

// ReplayTrace builds a seeded E17-style mixed workload over n keys that
// cannot fail mid-pipeline: routes, zipf-skewed point reads and writes,
// short scans, and — last — a tracked join and leave on each of the four
// reserved top keys, which nothing else touches. Replaying it through a
// fresh daemon reproduces an in-process ServeOps run column-for-column
// (see StatsColumns and docs/WIRE.md).
func ReplayTrace(n, length int, seed int64) []lsasg.Op {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(n-5))
	key := func() int { return int(zipf.Uint64()) }
	pick := func(not int) int {
		for {
			if v := rng.Intn(n - 4); v != not {
				return v
			}
		}
	}
	var ops []lsasg.Op
	for i := 0; i < length; i++ {
		switch r := rng.Float64(); {
		case r < 0.40:
			d := key()
			ops = append(ops, lsasg.RouteOp(pick(d), d))
		case r < 0.65:
			ops = append(ops, lsasg.GetOp(rng.Intn(n-4), key()))
		case r < 0.90:
			ops = append(ops, lsasg.PutOp(rng.Intn(n-4), key(), []byte(fmt.Sprintf("v%d", i))))
		default:
			ops = append(ops, lsasg.ScanOp(rng.Intn(n-4), key(), 1+rng.Intn(8)))
		}
	}
	for k := n - 4; k < n; k++ {
		ops = append(ops, lsasg.PutOp(0, k, []byte("reserved")))
	}
	for k := n - 4; k < n; k++ {
		ops = append(ops, lsasg.DeleteOp(0, k))
	}
	return ops
}

// StatsColumns renders every deterministic ServeStats column as one CSV
// line — the byte-comparison format of the wire-replay determinism
// contract.
func StatsColumns(st lsasg.ServeStats) string {
	return fmt.Sprintf("%d,%d,%.6f,%d,%d,%.6f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
		st.Requests, st.Batches, st.MeanRouteDistance, st.MaxRouteDistance,
		st.TotalTransformRounds, st.MeanAdjustLag, st.MaxAdjustLag,
		st.Height, st.DummyCount, st.Shards, st.CrossShardRequests,
		st.Rebalances, st.MigratedKeys,
		st.Gets, st.GetHits, st.Puts, st.PutInserts, st.Deletes, st.DeleteHits,
		st.Scans, st.ScannedEntries)
}
