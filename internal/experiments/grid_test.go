package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lsasg/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// gridQuickSeed1 runs the grid that the acceptance criteria pin down:
// dsgexp -quick -seed 1, restricted to the given experiments.
func gridQuickSeed1(t *testing.T, dir string, ids string) *GridSummary {
	t.Helper()
	sc := Quick()
	sc.Seed = 1
	selected, err := Select(ids)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunGrid(GridConfig{
		RunConfig:   RunConfig{Scale: sc},
		Experiments: selected,
		OutDir:      dir,
		ScaleName:   "quick",
	})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestGridGoldenCSV asserts that `dsgexp -quick -seed 1` produces
// byte-stable CSV output by pinning E1's CSV to a checked-in golden file.
// Regenerate with `go test ./internal/experiments -run Golden -update`
// after an intentional change to the experiment or the emitters.
func TestGridGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	dir := t.TempDir()
	gridQuickSeed1(t, dir, "E1")
	got, err := os.ReadFile(filepath.Join(dir, "E1-amf-quality.csv"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "E1-amf-quality.quick-seed1.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(got) != string(want) {
		t.Errorf("E1 CSV drifted from golden file %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestChurnGoldenCSV pins the churn experiment's CSV the same way: the
// acceptance contract is that `dsgexp -only E13 -quick -seed 1` is
// byte-stable across runs and commits. Regenerate with
// `go test ./internal/experiments -run Golden -update` after an
// intentional change.
func TestChurnGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	dir := t.TempDir()
	gridQuickSeed1(t, dir, "E13")
	got, err := os.ReadFile(filepath.Join(dir, "E13-churn-routing.csv"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "E13-churn-routing.quick-seed1.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(got) != string(want) {
		t.Errorf("E13 CSV drifted from golden file %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// normalizeWallClock replaces every cell of the named columns with "WALL"
// and returns the re-encoded CSV. E17/E18 report wall-clock measurements in
// otherwise byte-stable tables; golden comparisons mask exactly those
// columns, per the documented exemption.
func normalizeWallClock(t *testing.T, data []byte, wallCols ...string) []byte {
	t.Helper()
	records, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("empty CSV")
	}
	mask := map[int]bool{}
	for _, name := range wallCols {
		found := false
		for j, col := range records[0] {
			if col == name {
				mask[j], found = true, true
			}
		}
		if !found {
			t.Fatalf("wall-clock column %q not in header %v", name, records[0])
		}
	}
	for _, row := range records[1:] {
		for j := range row {
			if mask[j] {
				row[j] = "WALL"
			}
		}
	}
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := w.WriteAll(records); err != nil {
		t.Fatal(err)
	}
	return []byte(sb.String())
}

// TestShardedGoldenCSV pins the E18 deterministic-mode contract: with a
// fixed seed and shard count, `dsgexp -only E18 -quick -seed 1` produces
// byte-stable CSV output in every column except the wall-clock "req/s"
// column, which is masked on both sides of the comparison. Regenerate with
// `go test ./internal/experiments -run Golden -update` after an intentional
// change to the experiment, the sharded service, or the emitters.
func TestShardedGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	dir := t.TempDir()
	gridQuickSeed1(t, dir, "E18")
	raw, err := os.ReadFile(filepath.Join(dir, "E18-sharded-serving.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeWallClock(t, raw, "req/s")
	golden := filepath.Join("testdata", "E18-sharded-serving.quick-seed1.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(got) != string(want) {
		t.Errorf("E18 CSV drifted from golden file %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestKVGoldenCSV pins the KV data-plane contract: with a fixed seed, mix
// list, and shard sweep, `dsgexp -only E19 -quick -seed 1` produces
// byte-stable CSV output in every column except the wall-clock "req/s"
// column, which is masked on both sides of the comparison. In particular
// the hit rates, put-insert counts, scan lengths, and rebalancer activity
// are exact — the mix generator, the deterministic pipeline, and the
// cross-shard scan stitching are all deterministic for a fixed seed.
// Regenerate with `go test ./internal/experiments -run Golden -update`
// after an intentional change.
func TestKVGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	dir := t.TempDir()
	gridQuickSeed1(t, dir, "E19")
	raw, err := os.ReadFile(filepath.Join(dir, "E19-kv-workload.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeWallClock(t, raw, "req/s")
	golden := filepath.Join("testdata", "E19-kv-workload.quick-seed1.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(got) != string(want) {
		t.Errorf("E19 CSV drifted from golden file %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestCrashGoldenCSV pins the availability-under-failure contract: with a
// fixed seed, `dsgexp -only E20 -quick -seed 1` produces byte-stable CSV
// output in every column except the wall-clock "events/s" column, which is
// masked on both sides of the comparison. In particular the availability,
// detection, repair-cost, and time-to-recovery columns are exact —
// the crash model, the stale-probe schedule, and the repair machinery are
// all deterministic for a fixed seed. Regenerate with
// `go test ./internal/experiments -run Golden -update` after an intentional
// change.
func TestCrashGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	dir := t.TempDir()
	gridQuickSeed1(t, dir, "E20")
	raw, err := os.ReadFile(filepath.Join(dir, "E20-crash-availability.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeWallClock(t, raw, "events/s")
	golden := filepath.Join("testdata", "E20-crash-availability.quick-seed1.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(got) != string(want) {
		t.Errorf("E20 CSV drifted from golden file %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestGridDeterministic runs the same two-experiment grid twice and
// requires identical CSV bytes — the reproducibility contract of dsgexp.
func TestGridDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	dir1, dir2 := t.TempDir(), t.TempDir()
	gridQuickSeed1(t, dir1, "E1,E12")
	gridQuickSeed1(t, dir2, "E1,E12")
	for _, name := range []string{"E1-amf-quality.csv", "E12-sim-validation.csv"} {
		a, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between identically seeded runs", name)
		}
	}
}

// TestGridOutputs checks the summary document and the per-experiment JSON.
func TestGridOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	dir := t.TempDir()
	sum := gridQuickSeed1(t, dir, "E12")
	if sum.Failed != 0 || len(sum.Experiments) != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	en := sum.Experiments[0]
	if en.ID != "E12" || en.CSV != "E12-sim-validation.csv" || en.Rows < 1 {
		t.Errorf("entry = %+v", en)
	}

	var onDisk GridSummary
	data, err := os.ReadFile(filepath.Join(dir, SummaryFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.Tool != "dsgexp" || onDisk.ScaleName != "quick" || onDisk.BaseSeed != 1 {
		t.Errorf("summary on disk = %+v", onDisk)
	}

	var rep Report
	data, err = os.ReadFile(filepath.Join(dir, en.JSON))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ID != "E12" || rep.PaperRef == "" || rep.Table == nil || rep.Table.NumRows() != rep.Rows {
		t.Errorf("report on disk = %+v", rep)
	}
}

// TestAppendTrajectory covers the perf-trajectory file's lifecycle: created
// on first append, extended in order, and a legacy single-summary file is
// wrapped into an array.
func TestAppendTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_dsgexp.json")
	read := func() []GridSummary {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var tr []GridSummary
		if err := json.Unmarshal(data, &tr); err != nil {
			t.Fatalf("trajectory is not a summary array: %v", err)
		}
		return tr
	}

	if err := AppendTrajectory(path, &GridSummary{Tool: "dsgexp", ScaleName: "quick", BaseSeed: 1}); err != nil {
		t.Fatal(err)
	}
	if tr := read(); len(tr) != 1 || tr[0].BaseSeed != 1 {
		t.Fatalf("first append: %+v", tr)
	}
	if err := AppendTrajectory(path, &GridSummary{Tool: "dsgexp", ScaleName: "quick", BaseSeed: 2}); err != nil {
		t.Fatal(err)
	}
	if tr := read(); len(tr) != 2 || tr[0].BaseSeed != 1 || tr[1].BaseSeed != 2 {
		t.Fatalf("second append: %+v", tr)
	}

	// Legacy file: one bare summary object becomes the trajectory's head.
	legacy := filepath.Join(t.TempDir(), "BENCH_dsgexp.json")
	if err := os.WriteFile(legacy, []byte(`{"tool":"dsgexp","base_seed":7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrajectory(legacy, &GridSummary{Tool: "dsgexp", BaseSeed: 8}); err != nil {
		t.Fatal(err)
	}
	path = legacy
	if tr := read(); len(tr) != 2 || tr[0].BaseSeed != 7 || tr[1].BaseSeed != 8 {
		t.Fatalf("legacy upgrade: %+v", tr)
	}

	// Garbage neither array nor object is refused, not clobbered.
	bad := filepath.Join(t.TempDir(), "BENCH_dsgexp.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrajectory(bad, &GridSummary{}); err == nil {
		t.Error("appending to a corrupt trajectory must fail")
	}
}

// TestGridRecordsFailure ensures one failing experiment doesn't abort the
// grid and is recorded in the summary.
func TestGridRecordsFailure(t *testing.T) {
	boom := Experiment{ID: "EX", Name: "boom", Description: "d", PaperRef: "p",
		Run: func(Scale) *stats.Table { panic("boom") }}
	e12, _ := ByID("E12")
	sc := Quick()
	sc.Seed = 1
	dir := t.TempDir()
	sum, err := RunGrid(GridConfig{
		RunConfig:   RunConfig{Scale: sc},
		Experiments: []Experiment{boom, e12},
		OutDir:      dir,
		ScaleName:   "quick",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 {
		t.Errorf("failed = %d, want 1", sum.Failed)
	}
	if sum.Experiments[0].Error == "" {
		t.Error("failing experiment should record its error")
	}
	if sum.Experiments[1].Error != "" || sum.Experiments[1].Rows < 1 {
		t.Errorf("healthy experiment should still complete: %+v", sum.Experiments[1])
	}
}
