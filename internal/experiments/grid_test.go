package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lsasg/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// gridQuickSeed1 runs the grid that the acceptance criteria pin down:
// dsgexp -quick -seed 1, restricted to the given experiments.
func gridQuickSeed1(t *testing.T, dir string, ids string) *GridSummary {
	t.Helper()
	sc := Quick()
	sc.Seed = 1
	selected, err := Select(ids)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunGrid(GridConfig{
		RunConfig:   RunConfig{Scale: sc},
		Experiments: selected,
		OutDir:      dir,
		ScaleName:   "quick",
	})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestGridGoldenCSV asserts that `dsgexp -quick -seed 1` produces
// byte-stable CSV output by pinning E1's CSV to a checked-in golden file.
// Regenerate with `go test ./internal/experiments -run Golden -update`
// after an intentional change to the experiment or the emitters.
func TestGridGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	dir := t.TempDir()
	gridQuickSeed1(t, dir, "E1")
	got, err := os.ReadFile(filepath.Join(dir, "E1-amf-quality.csv"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "E1-amf-quality.quick-seed1.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(got) != string(want) {
		t.Errorf("E1 CSV drifted from golden file %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestChurnGoldenCSV pins the churn experiment's CSV the same way: the
// acceptance contract is that `dsgexp -only E13 -quick -seed 1` is
// byte-stable across runs and commits. Regenerate with
// `go test ./internal/experiments -run Golden -update` after an
// intentional change.
func TestChurnGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	dir := t.TempDir()
	gridQuickSeed1(t, dir, "E13")
	got, err := os.ReadFile(filepath.Join(dir, "E13-churn-routing.csv"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "E13-churn-routing.quick-seed1.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(got) != string(want) {
		t.Errorf("E13 CSV drifted from golden file %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestGridDeterministic runs the same two-experiment grid twice and
// requires identical CSV bytes — the reproducibility contract of dsgexp.
func TestGridDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	dir1, dir2 := t.TempDir(), t.TempDir()
	gridQuickSeed1(t, dir1, "E1,E12")
	gridQuickSeed1(t, dir2, "E1,E12")
	for _, name := range []string{"E1-amf-quality.csv", "E12-sim-validation.csv"} {
		a, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between identically seeded runs", name)
		}
	}
}

// TestGridOutputs checks the summary document and the per-experiment JSON.
func TestGridOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	dir := t.TempDir()
	sum := gridQuickSeed1(t, dir, "E12")
	if sum.Failed != 0 || len(sum.Experiments) != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	en := sum.Experiments[0]
	if en.ID != "E12" || en.CSV != "E12-sim-validation.csv" || en.Rows < 1 {
		t.Errorf("entry = %+v", en)
	}

	var onDisk GridSummary
	data, err := os.ReadFile(filepath.Join(dir, SummaryFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.Tool != "dsgexp" || onDisk.ScaleName != "quick" || onDisk.BaseSeed != 1 {
		t.Errorf("summary on disk = %+v", onDisk)
	}

	var rep Report
	data, err = os.ReadFile(filepath.Join(dir, en.JSON))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ID != "E12" || rep.PaperRef == "" || rep.Table == nil || rep.Table.NumRows() != rep.Rows {
		t.Errorf("report on disk = %+v", rep)
	}
}

// TestGridRecordsFailure ensures one failing experiment doesn't abort the
// grid and is recorded in the summary.
func TestGridRecordsFailure(t *testing.T) {
	boom := Experiment{ID: "EX", Name: "boom", Description: "d", PaperRef: "p",
		Run: func(Scale) *stats.Table { panic("boom") }}
	e12, _ := ByID("E12")
	sc := Quick()
	sc.Seed = 1
	dir := t.TempDir()
	sum, err := RunGrid(GridConfig{
		RunConfig:   RunConfig{Scale: sc},
		Experiments: []Experiment{boom, e12},
		OutDir:      dir,
		ScaleName:   "quick",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 {
		t.Errorf("failed = %d, want 1", sum.Failed)
	}
	if sum.Experiments[0].Error == "" {
		t.Error("failing experiment should record its error")
	}
	if sum.Experiments[1].Error != "" || sum.Experiments[1].Rows < 1 {
		t.Errorf("healthy experiment should still complete: %+v", sum.Experiments[1])
	}
}
