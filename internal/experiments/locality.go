package experiments

import (
	"math"
	"math/rand"

	"lsasg/internal/core"
	"lsasg/internal/stats"
)

// E16JoinLocality measures the paper's headline *locality* claim on the
// membership path (§IV-F/§IV-G): a join or leave may only touch the lists
// along its search path plus the repair's knock-on lists, so the work per
// membership event must grow sublinearly in n — where a whole-graph relink
// or balance rescan grows linearly. The work measure is deterministic
// (nodes examined while splicing plus nodes scanned by the scoped balance
// repair), so the CSV is byte-stable per seed like every other experiment.
func E16JoinLocality(sc Scale) *stats.Table {
	t := stats.NewTable("E16 — join/leave locality (scoped work per membership event vs n)",
		"n", "events", "join scan/event", "repair scan/event", "total/event", "total/log2 n", "total/n")
	sizes := sc.LocalitySizes
	if len(sizes) == 0 {
		sizes = sc.Sizes
	}
	for _, n := range sizes {
		d := core.New(n, core.Config{A: 4, Seed: sc.Seed})
		// The random initial topology carries no balance guarantee; one
		// global repair gives every size the same certified starting point.
		d.RepairBalance()
		rng := rand.New(rand.NewSource(sc.Seed + int64(n)))
		live := make([]int64, n)
		for i := range live {
			live[i] = int64(i)
		}
		nextID := int64(n)
		j0, r0 := d.LocalityWork()
		events := 0
		for i := 0; i < sc.Requests/2; i++ {
			if _, err := d.Add(nextID); err != nil {
				panic(err)
			}
			live = append(live, nextID)
			nextID++
			events++
			victim := rng.Intn(len(live))
			if err := d.RemoveNode(live[victim]); err != nil {
				panic(err)
			}
			live = append(live[:victim], live[victim+1:]...)
			events++
		}
		j1, r1 := d.LocalityWork()
		join := float64(j1 - j0)
		repair := float64(r1 - r0)
		total := (join + repair) / float64(events)
		t.AddRow(n, events, join/float64(events), repair/float64(events),
			total, total/math.Log2(float64(n)), total/float64(n))
	}
	return t
}
