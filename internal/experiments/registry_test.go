package experiments

import (
	"strconv"
	"strings"
	"testing"

	"lsasg/internal/stats"
)

func TestRegistryWellFormed(t *testing.T) {
	reg := Registry()
	if len(reg) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(reg))
	}
	// E1..E20 are contiguous.
	seenID := map[string]bool{}
	seenName := map[string]bool{}
	for i, e := range reg {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("entry %d has id %q, want %s", i, e.ID, want)
		}
		if seenID[e.ID] || seenName[e.Name] {
			t.Errorf("duplicate id/name %q/%q", e.ID, e.Name)
		}
		seenID[e.ID], seenName[e.Name] = true, true
		if e.Name == "" || e.Description == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("%s: incomplete registry entry %+v", e.ID, e)
		}
		if strings.ToLower(e.Name) != e.Name || strings.ContainsAny(e.Name, " _") {
			t.Errorf("%s: name %q is not a lowercase hyphenated slug", e.ID, e.Name)
		}
	}
}

func TestByIDAndSelect(t *testing.T) {
	if e, ok := ByID("e8"); !ok || e.ID != "E8" {
		t.Errorf("ByID(e8) = %v, %v", e, ok)
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) should fail")
	}

	all, err := Select("")
	if err != nil || len(all) != 20 {
		t.Errorf("Select(\"\") = %d experiments, err %v", len(all), err)
	}
	if _, ok := ByID("E20"); !ok {
		t.Error("ByID(E20) should resolve the crash-availability experiment")
	}
	if e, ok := ByID("E19"); !ok || e.Name != "kv-workload" {
		t.Errorf("ByID(E19) = %v, %v; should resolve the KV-workload experiment", e, ok)
	}
	some, err := Select(" e8, E5 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].ID != "E5" || some[1].ID != "E8" {
		t.Errorf("Select should return canonical order, got %v", some)
	}
	if _, err := Select("E1,bogus"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestSeedForIndependence(t *testing.T) {
	// Distinct experiments draw from distinct streams; repeats advance by 1.
	if seedFor(1, "E1", 0) == seedFor(1, "E2", 0) {
		t.Error("E1 and E2 share a seed stream")
	}
	if seedFor(1, "E1", 1) != seedFor(1, "E1", 0)+1 {
		t.Error("repeat seeds should be consecutive")
	}
	if seedFor(1, "E1", 0) != seedFor(1, "E1", 0) {
		t.Error("seedFor is not deterministic")
	}
}

func TestRunRepeatsAndAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	e, _ := ByID("E1")
	cfg := RunConfig{Scale: Quick(), Repeats: 2}
	res, err := Run(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 2 || res.Seeds[0] == res.Seeds[1] {
		t.Errorf("seeds = %v, want 2 distinct", res.Seeds)
	}
	if len(res.Repeats) != 2 {
		t.Fatalf("got %d repeat tables", len(res.Repeats))
	}
	// Aggregation doubles numeric columns with an "sd" companion.
	found := false
	for _, c := range res.Table.Columns {
		if strings.HasSuffix(c, " sd") {
			found = true
		}
	}
	if !found {
		t.Errorf("aggregate table lacks sd columns: %v", res.Table.Columns)
	}
	rep := res.Report(cfg)
	if rep.ID != "E1" || rep.RepeatCount != 2 || rep.Rows != res.Table.NumRows() || rep.Table == nil {
		t.Errorf("report = %+v", rep)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	bad := Experiment{ID: "EX", Name: "boom", Description: "d", PaperRef: "p",
		Run: func(Scale) *stats.Table { panic("kaboom") }}
	_, err := Run(bad, RunConfig{Scale: Quick()})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("panic should surface as error, got %v", err)
	}
}
