package experiments

import (
	"context"
	"time"

	"lsasg/internal/core"
	"lsasg/internal/shard"
	"lsasg/internal/stats"
	"lsasg/internal/workload"
)

// E18ShardedServing measures the partitioned serving subsystem: the key
// space splits across s independent self-adjusting skip graphs behind an
// epoch-stamped directory, each with its own adjuster pipeline, and a
// skew-driven rebalancer migrates contiguous key ranges at deterministic
// window barriers. Reported per (trace, s) cell: wall-clock requests/sec
// through the deterministic pipeline (the s shard pipelines run
// concurrently, so aggregate throughput scales with s on a multi-core
// machine), the cross-shard request fraction, the mean whole-request routing
// distance (legs + boundary intermediates + the inter-shard forwarding hop),
// the rebalancer's migration activity, and the max/mean shard-load ratio of
// the first vs last window — the skew the planner saw before acting vs what
// it left behind.
//
// Per the E17 convention, the "req/s" column is a wall-clock measurement and
// exempt from dsgexp's byte-identical-CSV contract; every other column is
// deterministic for a fixed (seed, shards) pair — the golden test pins them.
//
// The hotshard trace concentrates traffic on the first eighth of the key
// space — one contiguous range, i.e. (a slice of) one shard — so the
// load-ratio columns show the rebalancer splitting the hot range across
// neighbours; on uniform traffic the planner correctly does nothing.
func E18ShardedServing(sc Scale) *stats.Table {
	t := stats.NewTable("E18 — sharded serving: throughput, cross-shard routing, skew rebalancing (req/s is wall-clock)",
		"trace", "s", "n", "requests", "req/s", "cross frac", "mean dist", "legs",
		"rebalances", "moved keys", "load ratio pre", "load ratio post")
	n := sc.Sizes[len(sc.Sizes)-1]
	m := sc.Requests
	shardCounts := sc.Shards
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	window := m / 6
	if window < 1 {
		window = 1
	}
	traces := []struct {
		name string
		gen  workload.Generator
	}{
		{"uniform", workload.Uniform{Seed: sc.Seed}},
		{"zipf", workload.Zipf{Seed: sc.Seed, S: 1.2}},
		{"hotshard", workload.HotRange{Seed: sc.Seed + 1, LoFrac: 0, HiFrac: 0.125, Hot: 0.85}},
	}
	for _, tr := range traces {
		reqs := tr.gen.Generate(n, m)
		for _, s := range shardCounts {
			// An infeasible lane (shard.New requires ≥ MinShardKeys keys per
			// shard) fails the experiment loudly rather than vanishing from
			// the sweep.
			svc, err := shard.New(n, shard.Config{
				Shards:         s,
				A:              4,
				Seed:           sc.Seed,
				Parallelism:    2,
				BatchSize:      32,
				RebalanceEvery: window,
			})
			if err != nil {
				panic(err)
			}
			in := make(chan core.Op)
			go func() {
				defer close(in)
				for _, r := range reqs {
					in <- core.RouteOp(int64(r.Src), int64(r.Dst))
				}
			}()
			start := time.Now()
			st, err := svc.Serve(context.Background(), in)
			if err != nil {
				panic(err)
			}
			elapsed := time.Since(start)
			reqPerSec := float64(st.Requests) / elapsed.Seconds()
			crossFrac := float64(st.Cross) / float64(st.Requests)
			meanDist := float64(st.TotalRouteDistance) / float64(st.Requests)
			t.AddRow(tr.name, s, n, st.Requests, reqPerSec, crossFrac, meanDist, st.Legs,
				st.Rebalances, st.MovedKeys, st.LoadRatioFirst, st.LoadRatioLast)
		}
	}
	return t
}
