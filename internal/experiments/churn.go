package experiments

import (
	"fmt"

	"lsasg/internal/baseline"
	"lsasg/internal/core"
	"lsasg/internal/stats"
	"lsasg/internal/workload"
)

// churnTrace generates a trace and runs it through a fresh DSG with
// periodic full-graph validation (every validateEvery events; the runner
// errors out on any invariant violation, so every churn experiment doubles
// as an invariant check).
func churnTrace(n int, g workload.TraceGenerator, m int, seed int64, validateEvery int) (workload.Trace, core.TraceStats, *core.DSG) {
	tr, err := g.Trace(n, m)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	d := core.New(n, core.Config{A: 4, Seed: seed})
	st, err := d.RunTrace(tr, core.TraceOptions{ValidateEvery: validateEvery})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return tr, st, d
}

// staticTrace applies the same trace to the non-adapting baseline and
// returns its mean routing distance per route event.
func staticTrace(n int, tr workload.Trace, seed int64) float64 {
	s := baseline.NewStatic(n, seed)
	total, routes := 0, 0
	for i, ev := range tr {
		var err error
		switch ev.Op {
		case workload.OpRoute:
			var d int
			d, err = s.RouteIDs(ev.Src, ev.Dst)
			total += d
			routes++
		case workload.OpJoin:
			err = s.Join(ev.Node)
		case workload.OpLeave:
			err = s.Leave(ev.Node)
		}
		if err != nil {
			panic(fmt.Sprintf("experiments: static trace event %d: %v", i, err))
		}
	}
	if routes == 0 {
		return 0
	}
	return float64(total) / float64(routes)
}

// churnRates is the Poisson churn sweep shared by E13 and E14: expected
// membership events per route, from none to one-in-two.
var churnRates = []float64{0, 0.05, 0.2, 0.5}

// E13ChurnRouting measures the routing cost of DSG vs the static skip
// graph as Poisson churn intensifies under skewed traffic: does the
// self-adjusting advantage survive continuous joins and leaves?
func E13ChurnRouting(sc Scale) *stats.Table {
	t := stats.NewTable("E13 — routing cost under churn (DSG vs static, Zipf 1.2 traffic)",
		"n", "churn rate", "events", "joins", "leaves", "DSG dist", "static dist", "DSG/static")
	for _, n := range sc.Sizes {
		for _, rate := range churnRates {
			gen := workload.PoissonChurn{Seed: sc.Seed, Rate: rate, Base: workload.Zipf{Seed: sc.Seed, S: 1.2}}
			tr, st, _ := churnTrace(n, gen, sc.Requests, sc.Seed, 100)
			static := staticTrace(n, tr, sc.Seed)
			ratio := 0.0
			if static > 0 {
				ratio = st.MeanRouteDistance() / static
			}
			t.AddRow(n, rate, len(tr), st.Joins, st.Leaves,
				st.MeanRouteDistance(), static, ratio)
		}
	}
	return t
}

// E14ChurnAdjustment measures the adjustment cost of churn: transformation
// rounds per route, balance-repair actions per membership event, and the
// dummy population, across churn rates. Validation runs every 50 events,
// so every row also certifies the full invariant set under that rate.
func E14ChurnAdjustment(sc Scale) *stats.Table {
	t := stats.NewTable("E14 — adjustment cost under churn (Poisson, Zipf 1.2 traffic)",
		"n", "churn rate", "transform rounds/route", "repairs/route", "repairs/churn event", "dummies", "max height", "validations")
	n := sc.Sizes[len(sc.Sizes)-1]
	for _, rate := range churnRates {
		gen := workload.PoissonChurn{Seed: sc.Seed, Rate: rate, Base: workload.Zipf{Seed: sc.Seed, S: 1.2}}
		_, st, d := churnTrace(n, gen, sc.Requests, sc.Seed, 50)
		t.AddRow(n, rate, st.MeanTransformRounds(), st.RepairDummiesPerRoute(),
			st.RepairDummiesPerChurn(), d.DummyCount(), st.MaxHeight, st.Validations)
	}
	return t
}

// E15ChurnPatterns contrasts churn shapes at comparable volume: memoryless
// Poisson turnover, flash-crowd join bursts, and correlated departures of
// key-adjacent nodes (rack failures), all over working-set traffic.
func E15ChurnPatterns(sc Scale) *stats.Table {
	t := stats.NewTable("E15 — churn patterns (temporal traffic, comparable churn volume)",
		"n", "pattern", "params", "joins", "leaves", "DSG dist", "static dist", "rounds/route")
	n := sc.Sizes[len(sc.Sizes)-1]
	base := func() workload.Generator { return workload.Temporal{Seed: sc.Seed, W: 8, Churn: 0.1} }
	period := 25
	for _, gen := range []workload.TraceGenerator{
		workload.PoissonChurn{Seed: sc.Seed, Rate: 0.2, Base: base()},
		workload.FlashCrowd{Seed: sc.Seed, Period: period, Burst: 5, Base: base()},
		workload.CorrelatedDepartures{Seed: sc.Seed, Period: period, Burst: 5, Base: base()},
	} {
		tr, st, _ := churnTrace(n, gen, sc.Requests, sc.Seed, 100)
		static := staticTrace(n, tr, sc.Seed)
		t.AddRow(n, gen.Name(), workload.ParamString(gen), st.Joins, st.Leaves,
			st.MeanRouteDistance(), static, st.MeanTransformRounds())
	}
	return t
}
