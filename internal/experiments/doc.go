// Package experiments is the paper-experiment registry and runner.
//
// Each registered Experiment (E1–E16) empirically validates one
// lemma/theorem of Locally Self-Adjusting Skip Graphs (Huq & Ghosh, ICDCS
// 2017) or runs one of the comparison studies the paper motivates; the
// paper itself has no quantitative evaluation section (it is analysis-only),
// so this registry is the repo's evaluation. docs/EXPERIMENTS.md maps every
// experiment to its paper reference and the expected qualitative outcome.
//
// The package has three layers:
//
//   - the experiment functions (E1AMFQuality … E12SimValidation), each a
//     pure func(Scale) *stats.Table;
//   - the registry (Registry, ByID, Select): stable ids, file-name slugs,
//     descriptions, and paper references for every experiment;
//   - the runner (Run, RunGrid): per-experiment seed derivation, repeat
//     aggregation into mean/sd columns, panic isolation, parallel grid
//     execution, and the CSV/JSON/BENCH_dsgexp.json output files consumed
//     by cmd/dsgexp.
//
// Reproducibility contract: every (experiment, repeat) cell derives its
// seed deterministically from the base seed and the experiment id, so runs
// with the same flags produce byte-identical CSVs regardless of
// parallelism, and filtering experiments never shifts another experiment's
// randomness.
package experiments
