package experiments

import (
	"fmt"
	"io"
	"strings"

	"lsasg/internal/stats"
)

// Experiment is one registered paper experiment: a stable id, a short name
// for file names, human-readable context (what it validates and where in the
// paper), and the runner itself. The registry is the single source of truth
// consumed by cmd/dsgexp, cmd/dsgbench, the tests, and docs/EXPERIMENTS.md.
type Experiment struct {
	// ID is the stable identifier (E1..E20) used for filtering and file
	// names.
	ID string
	// Name is a short slug (lowercase, hyphenated) for output files.
	Name string
	// Description says what the experiment measures, in one sentence.
	Description string
	// PaperRef names the figure/lemma/theorem of Huq & Ghosh (ICDCS 2017)
	// the experiment validates, or the related work a comparison targets.
	PaperRef string
	// Run executes the experiment at the given scale and returns its table.
	Run func(Scale) *stats.Table
}

// Registry returns every registered experiment in canonical (E1..E20)
// order.
func Registry() []Experiment {
	return []Experiment{
		{
			ID:          "E1",
			Name:        "amf-quality",
			Description: "AMF's approximate median lands within n/2a ranks of the true median.",
			PaperRef:    "Lemma 1 (Algorithm 2, AMF)",
			Run:         E1AMFQuality,
		},
		{
			ID:          "E2",
			Name:        "amf-rounds",
			Description: "AMF's distributed round cost grows as O(h^2) in the skip-list height h.",
			PaperRef:    "Lemma 2/3 (Algorithm 2 round accounting)",
			Run:         E2AMFRounds,
		},
		{
			ID:          "E3",
			Name:        "direct-level",
			Description: "The level of the direct link created for a served pair stays below log_{2a/(a+1)} n.",
			PaperRef:    "Lemma 4",
			Run:         E3DirectLevel,
		},
		{
			ID:          "E4",
			Name:        "height",
			Description: "The skip-graph height after any transformation stays below log_{3/2} n.",
			PaperRef:    "Lemma 5",
			Run:         E4Height,
		},
		{
			ID:          "E5",
			Name:        "working-set-property",
			Description: "Routing distance between previously communicating pairs is O(log T_t(u,v)).",
			PaperRef:    "Theorem 2 (working-set property)",
			Run:         E5WorkingSetProperty,
		},
		{
			ID:          "E6",
			Name:        "routing-vs-ws",
			Description: "Total routing cost stays within a constant factor of the working-set bound WS(σ).",
			PaperRef:    "Theorems 1 + 4",
			Run:         E6RoutingVsWS,
		},
		{
			ID:          "E7",
			Name:        "total-cost-vs-ws",
			Description: "Routing plus transformation cost stays within an O(log n) factor of WS(σ).",
			PaperRef:    "Theorems 3 + 5",
			Run:         E7TotalCostVsWS,
		},
		{
			ID:          "E8",
			Name:        "comparison",
			Description: "Headline study: mean routing distance of DSG vs the static skip graph vs SplayNet.",
			PaperRef:    "§II comparison (Aspnes-Shah skip graph; SplayNet, IPDPS 2013)",
			Run:         E8Comparison,
		},
		{
			ID:          "E9",
			Name:        "temporal-sweep",
			Description: "DSG's advantage over the static graph grows as the working-set size W shrinks.",
			PaperRef:    "§I motivation (temporal locality)",
			Run:         E9TemporalSweep,
		},
		{
			ID:          "E10",
			Name:        "worst-case",
			Description: "Per-request worst case on adversarial traffic: DSG's O(log n) vs SplayNet's amortized-only bound.",
			PaperRef:    "Theorem 2 corollary (a·H per-request bound)",
			Run:         E10WorstCase,
		},
		{
			ID:          "E11",
			Name:        "balance-ablation",
			Description: "Sweep of the a-balance parameter: distance vs transformation rounds vs dummy overhead.",
			PaperRef:    "§IV (a-balance property)",
			Run:         E11BalanceAblation,
		},
		{
			ID:          "E12",
			Name:        "sim-validation",
			Description: "Sequential round accounting cross-checked against distributed CONGEST executions.",
			PaperRef:    "§III model (CONGEST); Appendices B + D",
			Run:         E12SimValidation,
		},
		{
			ID:          "E13",
			Name:        "churn-routing",
			Description: "Routing cost of DSG vs the static skip graph under increasing Poisson churn rates.",
			PaperRef:    "§IV-G (node join/leave); Interlaced churn model",
			Run:         E13ChurnRouting,
		},
		{
			ID:          "E14",
			Name:        "churn-adjustment",
			Description: "Adjustment cost of churn: transformation rounds, balance repairs, and dummy population, invariant-checked.",
			PaperRef:    "§IV-F/G (a-balance maintenance under membership changes)",
			Run:         E14ChurnAdjustment,
		},
		{
			ID:          "E15",
			Name:        "churn-patterns",
			Description: "Churn shape comparison: Poisson turnover vs flash-crowd joins vs correlated departures.",
			PaperRef:    "§IV-G; Aspnes-Shah §5 (fault tolerance of correlated failures)",
			Run:         E15ChurnPatterns,
		},
		{
			ID:          "E16",
			Name:        "join-locality",
			Description: "Per-membership-event adjustment work grows sublinearly in n: joins, leaves, and balance repair are local.",
			PaperRef:    "§IV-F/§IV-G (local self-adjustment); Interlaced (2019) decentralized stabilization",
			Run:         E16JoinLocality,
		},
		{
			ID:          "E17",
			Name:        "serve-throughput",
			Description: "Concurrent serving: requests/sec scales with snapshot-routing workers while one adjuster batches adaptations.",
			PaperRef:    "§III serving model; NUMA-aware layered skip graphs (Thomas & Mendes); Interlaced churn stabilization",
			Run:         E17ThroughputScaling,
		},
		{
			ID:          "E18",
			Name:        "sharded-serving",
			Description: "Partitioned serving: throughput scales with shard count while cross-shard routes stay two-leg and a skew-driven rebalancer levels hot shards.",
			PaperRef:    "Aspnes-Shah partitioned key space (Skip Graphs, SODA 2003); Interlaced decentralized partitions; §III serving model",
			Run:         E18ShardedServing,
		},
		{
			ID:          "E19",
			Name:        "kv-workload",
			Description: "KV data plane: YCSB-style get/put/delete/scan mixes served through the sharded pipeline, with put-joins, delete-leaves, and cross-shard scan stitching.",
			PaperRef:    "§III serving model (accesses as σ=(o,k)); Aspnes-Shah resource location (Skip Graphs, SODA 2003); YCSB core workloads (SoCC 2010)",
			Run:         E19KVWorkload,
		},
		{
			ID:          "E20",
			Name:        "crash-availability",
			Description: "Availability under crash failures: contact-time detection, decentralized local repair, and time-to-recovery across failure patterns.",
			PaperRef:    "Rainbow Skip Graph (SODA 2006) contact-time fault discovery; Interlaced decentralized stabilization; §IV-G repair machinery",
			Run:         E20CrashAvailability,
		},
	}
}

// IDs returns the registered experiment ids in canonical order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}

// ByID looks up one experiment by its id (case-insensitive).
func ByID(id string) (Experiment, bool) {
	id = strings.ToUpper(strings.TrimSpace(id))
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// FprintRegistry writes the registry listing shared by the -list flag of
// cmd/dsgexp and cmd/dsgbench.
func FprintRegistry(w io.Writer) {
	for _, e := range Registry() {
		fmt.Fprintf(w, "%-4s %-22s %s\n     ref: %s\n", e.ID, e.Name, e.Description, e.PaperRef)
	}
}

// Select parses a comma-separated id filter ("E5,E8", case-insensitive,
// blanks ignored) and returns the matching experiments in canonical order.
// An empty filter selects every experiment; an unknown id is an error.
func Select(filter string) ([]Experiment, error) {
	filter = strings.TrimSpace(filter)
	if filter == "" {
		return Registry(), nil
	}
	want := map[string]bool{}
	for _, id := range strings.Split(filter, ",") {
		id = strings.ToUpper(strings.TrimSpace(id))
		if id == "" {
			continue
		}
		if _, ok := ByID(id); !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
				id, strings.Join(IDs(), ","))
		}
		want[id] = true
	}
	var out []Experiment
	for _, e := range Registry() {
		if want[e.ID] {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty selection %q", filter)
	}
	return out, nil
}
