package experiments

import (
	"time"

	"lsasg/internal/stats"
	"lsasg/internal/workload"
)

// E20CrashAvailability measures availability under crash failures: nodes fail
// in place (no leave-side repair — their neighbours' references dangle at an
// unresponsive peer), the network discovers each failure only when a route
// contacts the corpse, and a decentralized repair then splices the dead node
// out and restores a-balance over exactly its ex-lists. The failure-discovery
// model follows the Rainbow Skip Graph (Goodrich et al., SODA 2006): no
// heartbeat subsystem, failures surface at contact time; the repair locality
// follows the same scoped machinery as graceful leaves (§IV-G), per
// Interlaced's decentralized churn stabilization.
//
// Reported per (pattern, intensity) cell, all deterministic for a fixed seed:
// route availability (fraction of attempted routes that succeeded — Stale > 0
// keeps clients probing recently crashed peers, so availability < 1 exactly
// reflects the stale-view window), detections and repairs (repairs ≤ crashes;
// a crash no probe ever touches stays dark), the repair cost in a-balance
// dummy actions, and time-to-recovery measured in trace events between each
// crash and its repair. Full-graph validation runs every 100 events, so every
// row also certifies the invariant set under that failure intensity. The one
// wall-clock column ("events/s") is exempt from the byte-stable CSV contract,
// per the E17/E18 convention.
func E20CrashAvailability(sc Scale) *stats.Table {
	t := stats.NewTable("E20 — availability under crash failures (contact-time detection, local repair; events/s is wall-clock)",
		"n", "pattern", "params", "events", "crashes", "availability",
		"detections", "repairs", "repair dummies", "mean recovery", "max recovery", "events/s")
	n := sc.Sizes[len(sc.Sizes)-1]
	const stale = 0.3
	gens := []workload.TraceGenerator{
		workload.IndependentCrashes{Seed: sc.Seed, Rate: 0, Stale: 0},
		workload.IndependentCrashes{Seed: sc.Seed, Rate: 0.02, Stale: stale},
		workload.IndependentCrashes{Seed: sc.Seed, Rate: 0.1, Stale: stale},
		workload.IndependentCrashes{Seed: sc.Seed, Rate: 0.3, Stale: stale},
		workload.CorrelatedCrashes{Seed: sc.Seed, Period: 25, Burst: 3, Stale: stale},
		workload.FlashFailure{Seed: sc.Seed, Frac: 0.25, Stale: stale},
	}
	for _, gen := range gens {
		start := time.Now()
		tr, st, _ := churnTrace(n, gen, sc.Requests, sc.Seed, 100)
		elapsed := time.Since(start)
		t.AddRow(n, gen.Name(), workload.ParamString(gen), len(tr), st.Crashes,
			st.RouteSuccessRate(), st.CrashDetections, st.CrashRepairs, st.RepairDummies,
			st.MeanRecoveryEvents(), st.MaxRecoveryEvents,
			float64(len(tr))/elapsed.Seconds())
	}
	return t
}
