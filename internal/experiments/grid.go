package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"
)

// GridConfig drives one reproducible grid run over a set of registered
// experiments: every experiment executes Repeats times at the given Scale,
// and the aggregated results land in OutDir as one CSV plus one JSON per
// experiment and a BENCH_dsgexp.json summary.
type GridConfig struct {
	RunConfig
	// Experiments is the selection to run (from Select/Registry).
	Experiments []Experiment
	// OutDir receives the result files; it is created if missing.
	OutDir string
	// ScaleName labels the scale ("quick"/"full") in the summary.
	ScaleName string
	// Parallelism bounds the number of experiments running concurrently;
	// values < 1 mean min(GOMAXPROCS, len(Experiments)). Each experiment is
	// seeded independently (see seedFor), so concurrency never changes the
	// results — only the wall-clock time.
	Parallelism int
	// Progress, when non-nil, receives one line per completed experiment.
	Progress func(format string, args ...interface{})
}

// GridEntry is one experiment's line in the BENCH_dsgexp.json summary.
type GridEntry struct {
	ID             string  `json:"id"`
	Name           string  `json:"name"`
	PaperRef       string  `json:"paper_ref"`
	Rows           int     `json:"rows"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	CSV            string  `json:"csv"`
	JSON           string  `json:"json"`
	Error          string  `json:"error,omitempty"`
}

// GridSummary is the top-level BENCH_dsgexp.json document: the
// machine-readable record of one grid run that CI and later PRs diff to
// track the performance trajectory.
type GridSummary struct {
	Tool           string      `json:"tool"`
	GoVersion      string      `json:"go_version"`
	ScaleName      string      `json:"scale"`
	Scale          ScaleInfo   `json:"scale_params"`
	BaseSeed       int64       `json:"base_seed"`
	Repeats        int         `json:"repeats"`
	Experiments    []GridEntry `json:"experiments"`
	Failed         int         `json:"failed"`
	TotalSeconds   float64     `json:"total_seconds"`
	StartedAtUnix  int64       `json:"started_at_unix"`
	FinishedAtUnix int64       `json:"finished_at_unix"`
}

// SummaryFileName is the name of the grid summary written into OutDir.
const SummaryFileName = "BENCH_dsgexp.json"

// fileStem names the per-experiment output files: "E8-comparison".
func fileStem(e Experiment) string { return e.ID + "-" + e.Name }

// RunGrid executes the configured grid and writes all result files. It
// returns the summary; an experiment that fails is recorded in the summary
// (Error set, Failed incremented) without aborting the others. A non-nil
// error means the grid itself could not run (bad config, unwritable OutDir).
func RunGrid(cfg GridConfig) (*GridSummary, error) {
	if len(cfg.Experiments) == 0 {
		return nil, fmt.Errorf("experiments: grid has no experiments")
	}
	if cfg.OutDir == "" {
		return nil, fmt.Errorf("experiments: grid needs an output directory")
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return nil, err
	}
	par := cfg.Parallelism
	if par < 1 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(cfg.Experiments) {
		par = len(cfg.Experiments)
	}

	start := time.Now()
	entries := make([]GridEntry, len(cfg.Experiments))
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex // guards Progress
		sem = make(chan struct{}, par)
	)
	for i, e := range cfg.Experiments {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			entries[i] = runGridEntry(e, cfg)
			if cfg.Progress != nil {
				mu.Lock()
				if entries[i].Error != "" {
					cfg.Progress("%-4s FAILED: %s", e.ID, entries[i].Error)
				} else {
					cfg.Progress("%-4s %-22s %4d rows  %6.1fs  [%s]",
						e.ID, e.Name, entries[i].Rows, entries[i].ElapsedSeconds, e.PaperRef)
				}
				mu.Unlock()
			}
		}(i, e)
	}
	wg.Wait()

	summary := &GridSummary{
		Tool:      "dsgexp",
		GoVersion: runtime.Version(),
		ScaleName: cfg.ScaleName,
		Scale: ScaleInfo{
			Sizes:    cfg.Scale.Sizes,
			Requests: cfg.Scale.Requests,
			Trials:   cfg.Scale.Trials,
		},
		BaseSeed:       cfg.Scale.Seed,
		Repeats:        cfg.repeats(),
		Experiments:    entries,
		TotalSeconds:   time.Since(start).Seconds(),
		StartedAtUnix:  start.Unix(),
		FinishedAtUnix: time.Now().Unix(),
	}
	for _, en := range entries {
		if en.Error != "" {
			summary.Failed++
		}
	}
	if err := writeJSON(filepath.Join(cfg.OutDir, SummaryFileName), summary); err != nil {
		return nil, err
	}
	return summary, nil
}

// runGridEntry runs one experiment and writes its CSV + JSON files.
func runGridEntry(e Experiment, cfg GridConfig) GridEntry {
	entry := GridEntry{ID: e.ID, Name: e.Name, PaperRef: e.PaperRef}
	res, err := Run(e, cfg.RunConfig)
	if err != nil {
		entry.Error = err.Error()
		return entry
	}
	stem := fileStem(e)
	entry.CSV = stem + ".csv"
	entry.JSON = stem + ".json"
	entry.Rows = res.Table.NumRows()
	entry.ElapsedSeconds = res.Elapsed.Seconds()

	csvFile, err := os.Create(filepath.Join(cfg.OutDir, entry.CSV))
	if err == nil {
		err = res.Table.WriteCSV(csvFile)
		if cerr := csvFile.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = writeJSON(filepath.Join(cfg.OutDir, entry.JSON), res.Report(cfg.RunConfig))
	}
	if err != nil {
		entry.Error = err.Error()
	}
	return entry
}

// writeJSON writes v as indented JSON with a trailing newline.
func writeJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// AppendTrajectory appends one grid summary to the perf-trajectory file at
// path: a JSON array of GridSummary documents, oldest first — the committed
// record CI extends on every run so performance re-anchors read from data
// instead of commit messages. A missing or empty file starts a new
// trajectory; a legacy single-summary file is wrapped into an array first.
func AppendTrajectory(path string, s *GridSummary) error {
	var trajectory []json.RawMessage
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err) || (err == nil && len(bytes.TrimSpace(data)) == 0):
		// new trajectory
	case err != nil:
		return fmt.Errorf("experiments: reading trajectory %s: %w", path, err)
	default:
		if uerr := json.Unmarshal(data, &trajectory); uerr != nil {
			// A pre-trajectory file holding one bare summary: wrap it.
			var one map[string]json.RawMessage
			if json.Unmarshal(data, &one) != nil {
				return fmt.Errorf("experiments: trajectory %s is neither an array nor a summary: %w", path, uerr)
			}
			trajectory = []json.RawMessage{json.RawMessage(bytes.TrimSpace(data))}
		}
	}
	entry, err := json.Marshal(s)
	if err != nil {
		return err
	}
	trajectory = append(trajectory, entry)
	return writeJSON(path, trajectory)
}
