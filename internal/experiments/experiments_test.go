package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment at Quick scale and
// sanity-checks that each produces a non-empty table. This doubles as the
// regression harness for the experiment code itself.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	sc := Quick()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table := e.Run(sc)
			out := table.String()
			if !strings.Contains(out, e.ID+" ") {
				t.Errorf("%s: table title %q lacks the experiment id", e.ID, table.Title)
			}
			if len(strings.Split(strings.TrimSpace(out), "\n")) < 4 {
				t.Errorf("%s: table has no data rows:\n%s", e.ID, out)
			}
		})
	}
}

// TestLemmaTablesReportOK asserts that the bound-checking experiments
// (E1, E3, E4) report ok=true in every row at Quick scale.
func TestLemmaTablesReportOK(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	sc := Quick()
	for _, e := range []struct {
		id  string
		run func(Scale) string
	}{
		{"E1", func(s Scale) string { return E1AMFQuality(s).String() }},
		{"E3", func(s Scale) string { return E3DirectLevel(s).String() }},
		{"E4", func(s Scale) string { return E4Height(s).String() }},
	} {
		out := e.run(sc)
		if strings.Contains(out, "false") {
			t.Errorf("%s reported a bound violation:\n%s", e.id, out)
		}
	}
}
