package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"lsasg/internal/amf"
	"lsasg/internal/baseline"
	"lsasg/internal/core"
	"lsasg/internal/sim"
	"lsasg/internal/skipgraph"
	"lsasg/internal/skiplist"
	"lsasg/internal/stats"
	"lsasg/internal/workingset"
	"lsasg/internal/workload"
)

// Scale shrinks the experiment sizes for quick runs (tests use Quick).
type Scale struct {
	Sizes    []int // node counts for DSG experiments
	Requests int   // requests per run
	Trials   int   // repetitions for randomized subroutines
	Seed     int64
	// LocalitySizes are the node counts for the join/leave locality study
	// (E16). They run far beyond Sizes because sublinear per-event cost
	// only separates from linear at scale; membership events are cheap, so
	// large graphs stay affordable.
	LocalitySizes []int
	// Shards are the shard counts swept by the partitioned-serving study
	// (E18); the -shards flag of cmd/dsgexp and cmd/dsgbench overrides them.
	Shards []int
	// Mixes are the KV operation mixes swept by the KV-workload study
	// (E19), as workload.ParseMix inputs; the -mix flag of cmd/dsgexp and
	// cmd/dsgbench overrides them.
	Mixes []string
}

// Full is the scale used by cmd/dsgbench.
func Full() Scale {
	return Scale{Sizes: []int{64, 128, 256}, Requests: 2000, Trials: 20, Seed: 1,
		LocalitySizes: []int{1024, 4096, 16384},
		Shards:        []int{1, 2, 4, 8},
		Mixes:         []string{"a", "b", "e", "crud"}}
}

// Quick is a fast scale for tests and smoke runs.
func Quick() Scale {
	return Scale{Sizes: []int{32, 64}, Requests: 300, Trials: 5, Seed: 1,
		LocalitySizes: []int{256, 1024},
		Shards:        []int{1, 2, 4},
		Mixes:         []string{"a", "b", "e"}}
}

// E1AMFQuality validates Lemma 1: the AMF output's rank error stays within
// n/(2a) of the true median rank.
func E1AMFQuality(sc Scale) *stats.Table {
	t := stats.NewTable("E1 — AMF approximation quality (Lemma 1: rank within n/2 ± n/2a)",
		"n", "a", "trials", "max|rank-n/2|", "bound n/2a", "ok")
	rng := rand.New(rand.NewSource(sc.Seed))
	for _, n := range []int{100, 400, 1600} {
		for _, a := range []int{2, 4, 8} {
			maxErr := 0.0
			for trial := 0; trial < sc.Trials; trial++ {
				vs := make([]amf.Value, n)
				for i := range vs {
					vs[i] = amf.Finite(int64(rng.Intn(1 << 20)))
				}
				res := amf.Find(vs, a, rng)
				below := 0
				for _, v := range vs {
					if v.Less(res.Median) {
						below++
					}
				}
				// Rank of the returned value (position among n values).
				if e := math.Abs(float64(below) + 0.5 - float64(n)/2); e > maxErr {
					maxErr = e
				}
			}
			bound := float64(n) / float64(2*a)
			t.AddRow(n, a, sc.Trials, maxErr, bound, maxErr <= bound+1)
		}
	}
	return t
}

// E2AMFRounds measures AMF's round cost against the skip-list height
// (expected O(polylog n); the paper's Algorithm 2 analysis).
func E2AMFRounds(sc Scale) *stats.Table {
	t := stats.NewTable("E2 — AMF round cost vs n (a = 4)",
		"n", "mean rounds", "mean height h", "rounds/h^2")
	rng := rand.New(rand.NewSource(sc.Seed + 2))
	for _, n := range []int{128, 512, 2048, 8192} {
		totalR, totalH := 0.0, 0.0
		for trial := 0; trial < sc.Trials; trial++ {
			vs := make([]amf.Value, n)
			for i := range vs {
				vs[i] = amf.Finite(int64(rng.Intn(1 << 20)))
			}
			res := amf.Find(vs, 4, rng)
			totalR += float64(res.Rounds)
			totalH += float64(res.List.Height())
		}
		r := totalR / float64(sc.Trials)
		h := totalH / float64(sc.Trials)
		t.AddRow(n, r, h, r/(h*h))
	}
	return t
}

// runDSG drives one DSG network over a request sequence, returning the
// per-request route distances and transformation rounds plus WS(σ).
func runDSG(n int, a int, reqs []workload.Request, seed int64) (dists, rounds []int, ws float64) {
	d := core.New(n, core.Config{A: a, Seed: seed})
	bound := workingset.NewBound(n)
	for _, r := range reqs {
		bound.Add(r.Src, r.Dst)
		res, err := d.Serve(int64(r.Src), int64(r.Dst))
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		dists = append(dists, res.RouteDistance)
		rounds = append(rounds, res.TransformRounds)
	}
	return dists, rounds, bound.Total()
}

// E3DirectLevel validates Lemma 4: the pair's direct-link level stays at
// most log_{2a/(a+1)} n (plus approximation slack).
func E3DirectLevel(sc Scale) *stats.Table {
	t := stats.NewTable("E3 — direct-link level (Lemma 4: ≤ log_{2a/(a+1)} n)",
		"n", "a", "max level", "bound", "ok")
	for _, n := range sc.Sizes {
		for _, a := range []int{2, 4} {
			d := core.New(n, core.Config{A: a, Seed: sc.Seed})
			rng := rand.New(rand.NewSource(sc.Seed + int64(n)))
			maxLvl := 0
			for i := 0; i < sc.Requests/2; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				res, err := d.Serve(int64(u), int64(v))
				if err != nil {
					panic(err)
				}
				if res.DirectLevel > maxLvl {
					maxLvl = res.DirectLevel
				}
			}
			bound := math.Log(float64(n)) / math.Log(2*float64(a)/(float64(a)+1))
			t.AddRow(n, a, maxLvl, bound, float64(maxLvl) <= bound+3)
		}
	}
	return t
}

// E4Height validates Lemma 5: the height after any transformation stays at
// most log_{3/2} n.
func E4Height(sc Scale) *stats.Table {
	t := stats.NewTable("E4 — height after transformation (Lemma 5: ≤ log_{3/2} n)",
		"n", "max height", "bound", "ok")
	for _, n := range sc.Sizes {
		d := core.New(n, core.Config{A: 4, Seed: sc.Seed})
		rng := rand.New(rand.NewSource(sc.Seed + int64(2*n)))
		maxH := 0
		for i := 0; i < sc.Requests/2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			res, err := d.Serve(int64(u), int64(v))
			if err != nil {
				panic(err)
			}
			if res.HeightAfter > maxH {
				maxH = res.HeightAfter
			}
		}
		bound := math.Log(float64(n)) / math.Log(1.5)
		t.AddRow(n, maxH, bound, float64(maxH) <= bound+3)
	}
	return t
}

// E5WorkingSetProperty validates Theorem 2: routing distance between
// previously communicating pairs is O(log T_t(u,v)). Reported is the p99
// and max of distance / (log2 T + 1).
func E5WorkingSetProperty(sc Scale) *stats.Table {
	t := stats.NewTable("E5 — working-set property (Theorem 2: d(u,v) = O(log T))",
		"n", "workload", "params", "checked", "mean ratio", "p99 ratio", "max ratio")
	for _, n := range sc.Sizes {
		for _, gen := range []workload.Generator{
			workload.Temporal{Seed: sc.Seed, W: 8, Churn: 0.1},
			workload.Zipf{Seed: sc.Seed, S: 1.2},
		} {
			d := core.New(n, core.Config{A: 4, Seed: sc.Seed})
			tracker := workingset.NewTracker(n)
			var ratios []float64
			for _, r := range gen.Generate(n, sc.Requests) {
				tNum := tracker.WorkingSetNumber(r.Src, r.Dst)
				if tNum < n { // previously communicating pair
					src := d.NodeByID(int64(r.Src))
					dst := d.NodeByID(int64(r.Dst))
					route, err := d.Graph().Route(src, dst)
					if err != nil {
						panic(err)
					}
					ratios = append(ratios, float64(route.Distance())/(math.Log2(float64(tNum))+1))
				}
				tracker.Record(r.Src, r.Dst)
				if _, err := d.Serve(int64(r.Src), int64(r.Dst)); err != nil {
					panic(err)
				}
			}
			s := stats.Summarize(ratios)
			t.AddRow(n, gen.Name(), workload.ParamString(gen), s.N, s.Mean, s.P99, s.Max)
		}
	}
	return t
}

// E6RoutingVsWS validates Theorems 1+4: DSG's total routing cost is within
// a constant factor of the working-set bound WS(σ).
func E6RoutingVsWS(sc Scale) *stats.Table {
	t := stats.NewTable("E6 — routing cost vs working-set bound (Theorem 4: constant factor)",
		"n", "workload", "params", "Σ(d+1)", "WS(σ)", "ratio")
	for _, n := range sc.Sizes {
		for _, gen := range workload.Suite(sc.Seed) {
			reqs := gen.Generate(n, sc.Requests)
			dists, _, ws := runDSG(n, 4, reqs, sc.Seed)
			total := 0.0
			for _, d := range dists {
				total += float64(d) + 1
			}
			t.AddRow(n, gen.Name(), workload.ParamString(gen), total, ws, total/math.Max(ws, 1))
		}
	}
	return t
}

// E7TotalCostVsWS validates Theorems 3+5: routing plus transformation cost
// is within an O(log n)-ish factor of WS(σ).
func E7TotalCostVsWS(sc Scale) *stats.Table {
	t := stats.NewTable("E7 — total cost vs working-set bound (Theorem 5: O(log) factor)",
		"n", "workload", "params", "Σcost", "WS(σ)", "ratio", "ratio/log2 n")
	for _, n := range sc.Sizes {
		for _, gen := range []workload.Generator{
			workload.Temporal{Seed: sc.Seed, W: 8, Churn: 0.1},
			workload.Uniform{Seed: sc.Seed},
		} {
			reqs := gen.Generate(n, sc.Requests)
			dists, rounds, ws := runDSG(n, 4, reqs, sc.Seed)
			total := 0.0
			for i := range dists {
				total += float64(dists[i]) + float64(rounds[i]) + 1
			}
			ratio := total / math.Max(ws, 1)
			t.AddRow(n, gen.Name(), workload.ParamString(gen), total, ws, ratio, ratio/math.Log2(float64(n)))
		}
	}
	return t
}

// E8Comparison is the headline study: mean routing distance per request of
// DSG vs the static skip graph vs SplayNet across workload skews.
func E8Comparison(sc Scale) *stats.Table {
	t := stats.NewTable("E8 — mean routing distance: DSG vs static skip graph vs SplayNet",
		"n", "workload", "params", "DSG", "static", "SplayNet", "DSG/static")
	n := sc.Sizes[len(sc.Sizes)-1]
	for _, gen := range workload.Suite(sc.Seed) {
		reqs := gen.Generate(n, sc.Requests)
		dists, _, _ := runDSG(n, 4, reqs, sc.Seed)
		meanDSG := stats.MeanInts(dists)

		st := baseline.NewStatic(n, sc.Seed)
		var stDists []int
		for _, r := range reqs {
			d, err := st.Request(r.Src, r.Dst)
			if err != nil {
				panic(err)
			}
			stDists = append(stDists, d)
		}
		meanStatic := stats.MeanInts(stDists)

		sn := baseline.NewSplayNet(n)
		var snDists []int
		for _, r := range reqs {
			d, err := sn.Request(r.Src, r.Dst)
			if err != nil {
				panic(err)
			}
			snDists = append(snDists, d)
		}
		meanSplay := stats.MeanInts(snDists)

		t.AddRow(n, gen.Name(), workload.ParamString(gen), meanDSG, meanStatic, meanSplay,
			meanDSG/math.Max(meanStatic, 0.001))
	}
	return t
}

// E9TemporalSweep shows the cost as a function of working-set size W: the
// smaller the active set, the bigger DSG's win.
func E9TemporalSweep(sc Scale) *stats.Table {
	t := stats.NewTable("E9 — temporal locality sweep (mean distance vs working-set size W)",
		"n", "W", "DSG", "static", "WS(σ)/m")
	n := sc.Sizes[len(sc.Sizes)-1]
	for _, w := range []int{4, 8, 16, 32} {
		gen := workload.Temporal{Seed: sc.Seed, W: w, Churn: 0.05}
		reqs := gen.Generate(n, sc.Requests)
		dists, _, ws := runDSG(n, 4, reqs, sc.Seed)
		st := baseline.NewStatic(n, sc.Seed)
		var stDists []int
		for _, r := range reqs {
			d, _ := st.Request(r.Src, r.Dst)
			stDists = append(stDists, d)
		}
		t.AddRow(n, w, stats.MeanInts(dists), stats.MeanInts(stDists), ws/float64(len(reqs)))
	}
	return t
}

// E10WorstCase contrasts DSG's per-request O(log n) guarantee with
// SplayNet's amortized-only guarantee: the max single-request distance on
// an adversarial sequence.
func E10WorstCase(sc Scale) *stats.Table {
	t := stats.NewTable("E10 — worst single-request distance (adversarial workload)",
		"n", "DSG max", "DSG mean", "SplayNet max", "SplayNet mean", "a·H bound")
	for _, n := range sc.Sizes {
		reqs := workload.Adversarial{Seed: sc.Seed}.Generate(n, sc.Requests)
		dists, _, _ := runDSG(n, 4, reqs, sc.Seed)
		sn := baseline.NewSplayNet(n)
		var snDists []int
		for _, r := range reqs {
			d, _ := sn.Request(r.Src, r.Dst)
			snDists = append(snDists, d)
		}
		bound := 4 * (int(math.Log(float64(n))/math.Log(1.5)) + 3)
		t.AddRow(n, stats.MaxInts(dists), stats.MeanInts(dists),
			stats.MaxInts(snDists), stats.MeanInts(snDists), bound)
	}
	return t
}

// E11BalanceAblation sweeps the a-balance parameter: the height/dummy/cost
// trade-off called out in DESIGN.md.
func E11BalanceAblation(sc Scale) *stats.Table {
	t := stats.NewTable("E11 — a-balance ablation (Zipf 1.2 workload)",
		"n", "a", "mean dist", "mean transform rounds", "final height", "dummies")
	// The a=2 configuration maintains dummies aggressively; the ablation
	// uses the middle size so the sweep completes in reasonable time.
	n := sc.Sizes[len(sc.Sizes)/2]
	reqs := workload.Zipf{Seed: sc.Seed, S: 1.2}.Generate(n, sc.Requests)
	for _, a := range []int{2, 3, 4, 8} {
		d := core.New(n, core.Config{A: a, Seed: sc.Seed})
		var dists, rounds []int
		for _, r := range reqs {
			res, err := d.Serve(int64(r.Src), int64(r.Dst))
			if err != nil {
				panic(err)
			}
			dists = append(dists, res.RouteDistance)
			rounds = append(rounds, res.TransformRounds)
		}
		t.AddRow(n, a, stats.MeanInts(dists), stats.MeanInts(rounds),
			d.Graph().Height(), d.DummyCount())
	}
	return t
}

// E12SimValidation cross-checks the sequential round accounting against
// genuinely distributed executions on the CONGEST engine.
func E12SimValidation(sc Scale) *stats.Table {
	t := stats.NewTable("E12 — distributed cross-validation (CONGEST engine)",
		"check", "n", "trials", "mismatches", "note")
	rng := rand.New(rand.NewSource(sc.Seed + 12))
	n := 64
	g := skipgraph.NewRandom(n, sc.Seed)
	mism := 0
	for i := 0; i < sc.Trials*5; i++ {
		a := int64(rng.Intn(n))
		b := int64(rng.Intn(n))
		seq, err := g.RouteKeys(skipgraph.KeyOf(a), skipgraph.KeyOf(b))
		if err != nil {
			panic(err)
		}
		dist, err := sim.DistributedRoute(g, skipgraph.KeyOf(a), skipgraph.KeyOf(b))
		if err != nil {
			panic(err)
		}
		if int(dist.Hops) != seq.Hops() {
			mism++
		}
	}
	t.AddRow("routing hops", n, sc.Trials*5, mism, "token-passing == sequential")

	mism = 0
	for i := 0; i < sc.Trials; i++ {
		sl := skiplist.Build(200, 4, rng)
		values := make([]int64, 200)
		var want int64
		for j := range values {
			values[j] = int64(rng.Intn(50))
			want += values[j]
		}
		out, err := sim.DistributedSum(sl, values)
		if err != nil {
			panic(err)
		}
		_, seqRounds := sl.Sum(values)
		if out.Total != want || out.Rounds > seqRounds {
			mism++
		}
	}
	t.AddRow("skip-list sum", 200, sc.Trials, mism, "pipelined rounds ≤ sequential estimate")
	return t
}
