package experiments

import (
	"sync"
	"sync/atomic"
	"time"

	"lsasg/internal/core"
	"lsasg/internal/serve"
	"lsasg/internal/stats"
	"lsasg/internal/workload"
)

// E17ThroughputScaling measures the concurrent serving engine: p workers
// route in parallel against immutable topology snapshots while the single
// adjuster batches transformations, shedding adjustments it cannot keep up
// with. Reported per (trace, p) cell: wall-clock requests/sec, the snapshot
// routing quality, the fraction of requests whose adjustment was applied vs
// shed, and the mean adjustment lag (tasks pending behind the routed
// stream) sampled after every request.
//
// Unlike E1–E16, the req/s and lag columns are wall-clock measurements and
// therefore NOT byte-stable across runs — E17 is the one experiment exempt
// from dsgexp's byte-identical-CSV contract (the structural columns still
// are stable).
//
// The churn-overlaid trace routes over the stable core 0..n-1 while
// transient nodes (ids ≥ n) join and leave through the same serialized
// adjuster, so every snapshot keeps the routed ids resolvable.
func E17ThroughputScaling(sc Scale) *stats.Table {
	t := stats.NewTable("E17 — serving throughput scaling (wall-clock; snapshot-parallel routing, batched adjustment)",
		"trace", "p", "n", "requests", "req/s", "mean dist", "applied frac", "shed frac", "snapshots", "mean lag")
	n := sc.Sizes[len(sc.Sizes)-1]
	m := sc.Requests
	traces := []struct {
		name  string
		gen   workload.Generator
		churn bool
	}{
		{"uniform", workload.Uniform{Seed: sc.Seed}, false},
		{"zipf", workload.Zipf{Seed: sc.Seed, S: 1.2}, false},
		{"zipf+churn", workload.Zipf{Seed: sc.Seed + 1, S: 1.2}, true},
	}
	for _, tr := range traces {
		reqs := tr.gen.Generate(n, m)
		for _, p := range []int{1, 2, 4, 8} {
			d := core.New(n, core.Config{A: 4, Seed: sc.Seed})
			e := serve.New(d, serve.Config{BatchSize: 32, Backlog: 128})
			e.Start()

			stop := make(chan struct{})
			var churnWG sync.WaitGroup
			if tr.churn {
				churnWG.Add(1)
				go func() {
					defer churnWG.Done()
					// Strictly fresh transient ids: a shed leave can strand a
					// node, but no id is ever reused, so no join can collide.
					for id := int64(n); ; id++ {
						select {
						case <-stop:
							return
						default:
						}
						if e.SubmitJoin(id) {
							e.SubmitLeave(id)
						}
						time.Sleep(200 * time.Microsecond)
					}
				}()
			}

			var (
				lagSum atomic.Int64
				wg     sync.WaitGroup
			)
			start := time.Now()
			for w := 0; w < p; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(reqs); i += p {
						r := reqs[i]
						if r.Src == r.Dst {
							continue
						}
						if _, _, err := e.Route(int64(r.Src), int64(r.Dst)); err != nil {
							panic(err) // stable-core ids are always routable
						}
						lagSum.Add(e.Pending())
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(stop)
			churnWG.Wait()
			_ = e.Stop() // shed-join/leave pairings are tolerated (see Live.Failed)

			live := e.Live()
			reqPerSec := float64(live.Routed) / elapsed.Seconds()
			meanDist := float64(live.RouteDistanceSum) / float64(live.Routed)
			applied := float64(live.Applied) / float64(live.Routed)
			shedFrac := float64(live.Shed) / float64(live.Enqueued+live.Shed)
			meanLag := float64(lagSum.Load()) / float64(live.Routed)
			t.AddRow(tr.name, p, n, live.Routed, reqPerSec, meanDist, applied, shedFrac,
				live.SnapshotsPublished, meanLag)
		}
	}
	return t
}
