package experiments

import (
	"fmt"
	"hash/fnv"
	"time"

	"lsasg/internal/stats"
)

// RunConfig controls one registry execution by the runner.
type RunConfig struct {
	// Scale is the experiment scale (Quick or Full, typically). Its Seed
	// field is the base seed; the runner derives per-experiment, per-repeat
	// seeds from it (see seedFor).
	Scale Scale
	// Repeats is the number of independent repetitions per experiment
	// (each with its own derived seed); results are aggregated into
	// mean/stddev columns. Values < 1 are treated as 1.
	Repeats int
}

// repeats returns the effective repetition count (Repeats clamped to ≥ 1).
func (c RunConfig) repeats() int {
	if c.Repeats < 1 {
		return 1
	}
	return c.Repeats
}

// RunResult is the outcome of running one experiment under a RunConfig.
// Report is its wire form.
type RunResult struct {
	Experiment Experiment
	Seeds      []int64        // one derived seed per repeat
	Table      *stats.Table   // aggregated over repeats
	Repeats    []*stats.Table // per-repeat raw tables
	Elapsed    time.Duration
}

// seedFor derives the seed for one (experiment, repeat) cell. Each
// experiment gets its own deterministic stream (an FNV offset of its id) so
// adding or filtering experiments never shifts another experiment's
// randomness, and each repeat advances the stream by one.
func seedFor(base int64, id string, repeat int) int64 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return base + int64(h.Sum32()%1_000_003)*1_000 + int64(repeat)
}

// Run executes one experiment Repeats times and aggregates the results.
// Panics inside experiment code are converted to errors so a single failing
// experiment cannot take down a whole grid run.
func Run(e Experiment, cfg RunConfig) (res *RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: %s panicked: %v", e.ID, r)
		}
	}()
	res = &RunResult{Experiment: e}
	start := time.Now()
	for rep := 0; rep < cfg.repeats(); rep++ {
		sc := cfg.Scale
		sc.Seed = seedFor(cfg.Scale.Seed, e.ID, rep)
		res.Seeds = append(res.Seeds, sc.Seed)
		res.Repeats = append(res.Repeats, e.Run(sc))
	}
	res.Table, err = stats.Aggregate(res.Repeats)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Report is the machine-readable per-experiment record written as
// <id>.json by cmd/dsgexp; BENCH_dsgexp.json aggregates one summary line
// per experiment.
type Report struct {
	ID             string       `json:"id"`
	Name           string       `json:"name"`
	Description    string       `json:"description"`
	PaperRef       string       `json:"paper_ref"`
	Scale          ScaleInfo    `json:"scale"`
	BaseSeed       int64        `json:"base_seed"`
	Seeds          []int64      `json:"seeds"`
	RepeatCount    int          `json:"repeats"`
	Rows           int          `json:"rows"`
	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Table          *stats.Table `json:"table"`
}

// ScaleInfo is the wire form of Scale (everything but the derived seeds).
type ScaleInfo struct {
	Sizes    []int `json:"sizes"`
	Requests int   `json:"requests"`
	Trials   int   `json:"trials"`
}

// Report converts a RunResult into its wire form.
func (r *RunResult) Report(cfg RunConfig) Report {
	return Report{
		ID:          r.Experiment.ID,
		Name:        r.Experiment.Name,
		Description: r.Experiment.Description,
		PaperRef:    r.Experiment.PaperRef,
		Scale: ScaleInfo{
			Sizes:    cfg.Scale.Sizes,
			Requests: cfg.Scale.Requests,
			Trials:   cfg.Scale.Trials,
		},
		BaseSeed:       cfg.Scale.Seed,
		Seeds:          r.Seeds,
		RepeatCount:    len(r.Seeds),
		Rows:           r.Table.NumRows(),
		ElapsedSeconds: r.Elapsed.Seconds(),
		Table:          r.Table,
	}
}
