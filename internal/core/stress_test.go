package core

import (
	"math/rand"
	"testing"
)

func TestStressHarsh(t *testing.T) {
	for _, a := range []int{2, 3, 4, 8} {
		for _, n := range []int{5, 17, 128} {
			d := New(n, Config{A: a, Seed: int64(a*100 + n), CheckInvariants: true})
			rng := rand.New(rand.NewSource(int64(n)))
			for i := 0; i < 300; i++ {
				u := int64(rng.Intn(n))
				v := int64(rng.Intn(n))
				if u == v {
					continue
				}
				if _, err := d.Serve(u, v); err != nil {
					t.Fatalf("a=%d n=%d req %d (%d,%d): %v", a, n, i, u, v, err)
				}
			}
			h := d.Graph().Height()
			t.Logf("a=%d n=%d: height=%d dummies=%d", a, n, h, d.DummyCount())
		}
	}
}
