package core

import (
	"fmt"

	"lsasg/internal/skipgraph"
)

// This file is the op envelope of the KV data plane: the request type every
// serving layer boundary (engine dispatch, shard dispatch, public API)
// carries instead of a bare src/dst pair. Route is the zero value, so a
// pure-route stream behaves — byte for byte — exactly as it did when the
// boundaries carried Pair.
//
// The split of responsibilities matches the serving architecture: the
// routing side (internal/serve) measures distances and performs Get/Scan
// reads against the immutable epoch snapshot, while ApplyOp here is the
// adjuster half — the serialized mutation and topology adaptation. Point
// ops adjust the topology exactly like a communication request: a Get or
// Put of key k from origin o is an access σ=(o,k) and feeds the same
// transformation and scoped balance repair. Put of an absent key is a
// tracked join; Delete is a tracked leave; both on a crashed key go through
// the crash-repair path first.

// OpKind discriminates the request envelope. OpRoute is the zero value.
type OpKind uint8

const (
	// OpRoute is a pure communication request: route src→dst, then adjust.
	OpRoute OpKind = iota
	// OpGet reads Dst's value (snapshot read in the engine; live read here)
	// and adjusts the topology for the access like a route.
	OpGet
	// OpPut writes Value to Dst — update in place when the key is alive,
	// tracked join when absent, crash-repair + rejoin when dead — and
	// adjusts for the access.
	OpPut
	// OpDelete removes Dst from the keyspace: a tracked leave (scoped
	// balance repair included), or a crash repair when the key is dead.
	OpDelete
	// OpScan reads up to Limit value-bearing entries from the level-0 run
	// starting at the first key ≥ Dst. Read-only: no adjustment.
	OpScan
)

// String names the op kind for diagnostics.
func (k OpKind) String() string {
	switch k {
	case OpRoute:
		return "route"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	}
	return fmt.Sprintf("opkind(%d)", byte(k))
}

// Op is one request envelope. Src is the accessing origin and Dst the
// target key (the scan start for OpScan). Value is the OpPut payload;
// Limit caps OpScan results. Tag is an opaque correlation id the sharded
// dispatcher uses to stitch multi-leg results back together; the engine
// carries it through untouched.
type Op struct {
	Kind     OpKind
	Src, Dst int64
	Value    []byte
	Limit    int
	Tag      int64
}

// RouteOp builds the envelope of a plain communication request.
func RouteOp(src, dst int64) Op { return Op{Kind: OpRoute, Src: src, Dst: dst} }

// OpResult reports the adjuster half of one applied op: the transformation
// measures (zero when the op ran no transformation) plus the KV outcome.
type OpResult struct {
	AdjustResult

	// Found/Value/Version report a Get against the live graph at apply
	// time. The engine overwrites the read with the snapshot's (that is the
	// documented read point); the sync API uses the live read directly.
	Found   bool
	Value   []byte
	Version int64

	// Existed reports whether a Put overwrote an existing live key (false:
	// the op was a tracked join) and whether a Delete removed anything.
	Existed bool

	// Entries holds OpScan results read from the live graph at apply time;
	// like the Get fields, the engine substitutes the snapshot read.
	Entries []skipgraph.Entry
}

// ApplyOp applies the adjuster half of one op and returns its result. For
// OpRoute the semantics are exactly Adjust's, errors included. KV ops are
// total by design: a Get/Put/Delete whose transform endpoint is missing or
// dead skips the transformation instead of failing (the access still
// resolves: a miss, a join, a repair), so a deterministic pipeline never
// aborts on data racing membership within a batch.
func (d *DSG) ApplyOp(op Op) (OpResult, error) {
	switch op.Kind {
	case OpRoute:
		r, err := d.Adjust(op.Src, op.Dst)
		return OpResult{AdjustResult: r}, err
	case OpGet:
		var res OpResult
		if n := d.NodeByID(op.Dst); n != nil && !n.Dead() {
			if v, ver, ok := d.g.GetValue(n.Key()); ok {
				res.Found, res.Value, res.Version = true, v, ver
			}
		}
		res.AdjustResult = d.adjustIfPossible(op.Src, op.Dst)
		return res, nil
	case OpPut:
		return d.applyPut(op)
	case OpDelete:
		return d.applyDelete(op)
	case OpScan:
		limit := op.Limit
		if limit <= 0 {
			limit = 1
		}
		return OpResult{Entries: d.g.ScanFrom(skipgraph.KeyOf(op.Dst), limit)}, nil
	}
	return OpResult{}, fmt.Errorf("core: unknown op kind %d", op.Kind)
}

// applyPut writes op.Value to op.Dst. An alive key updates in place (the
// value swap is a touched mutation, so the next publish freezes it); an
// absent key is a tracked join carrying the value; a crashed key is
// repaired (corpse spliced out, its record lost — crash-stop) and rejoined
// fresh. Either way the access then adjusts the topology like a route.
func (d *DSG) applyPut(op Op) (OpResult, error) {
	var res OpResult
	n := d.NodeByID(op.Dst)
	if n != nil && n.Dead() {
		d.repairCrashed(n)
		n = nil
	}
	if n != nil {
		res.Existed = true
	} else {
		added, err := d.Add(op.Dst)
		if err != nil {
			return res, fmt.Errorf("core: put join %d: %w", op.Dst, err)
		}
		n = added
	}
	d.kvSeq++
	d.g.SetValue(n, op.Value, d.kvSeq)
	res.Version = d.kvSeq
	res.AdjustResult = d.adjustIfPossible(op.Src, op.Dst)
	return res, nil
}

// applyDelete removes op.Dst from the keyspace: a tracked leave for an
// alive key, the crash-repair splice for a dead one (a deleted-then-crashed
// key must not resurrect — once removed here, a late crash or repair of the
// id is a no-op). Deleting an absent key is an idempotent miss. No
// transformation runs: the pair no longer exists to link.
func (d *DSG) applyDelete(op Op) (OpResult, error) {
	var res OpResult
	n := d.NodeByID(op.Dst)
	if n == nil {
		return res, nil
	}
	res.Existed = true
	if n.Dead() {
		d.repairCrashed(n)
		return res, nil
	}
	if err := d.RemoveNode(op.Dst); err != nil {
		return res, fmt.Errorf("core: delete %d: %w", op.Dst, err)
	}
	return res, nil
}

// adjustIfPossible runs the access transformation for (src, dst) when both
// endpoints are alive real nodes and distinct, and returns the zero result
// otherwise — the KV ops' tolerant twin of Adjust. A missing endpoint is
// not an error for a data op: the data outcome (miss, join, update) already
// happened; only the topology adaptation is skipped.
func (d *DSG) adjustIfPossible(src, dst int64) AdjustResult {
	u, v := d.NodeByID(src), d.NodeByID(dst)
	if u == nil || v == nil || u == v || u.Dead() || v.Dead() {
		return AdjustResult{}
	}
	r, err := d.Adjust(src, dst)
	if err != nil {
		// Unreachable by construction (all of Adjust's rejections are
		// pre-checked above), but a scoped-repair invariant failure under
		// CheckInvariants still surfaces loudly rather than silently.
		panic(fmt.Sprintf("core: kv adjust (%d,%d): %v", src, dst, err))
	}
	return r
}

// ApplyOps applies a batch of ops in order, each mutation followed by its
// scoped balance repair, and returns one result per op. This is the
// adjuster's batch entry point for the op envelope; for a batch of OpRoute
// ops it is exactly ApplyBatch. A failing op aborts the batch; the applied
// prefix stays applied and results carries exactly that prefix.
func (d *DSG) ApplyOps(ops []Op) ([]OpResult, error) {
	results := make([]OpResult, 0, len(ops))
	for i, op := range ops {
		r, err := d.ApplyOp(op)
		if err != nil {
			return results, fmt.Errorf("core: batch op %d (%s %d→%d): %w", i, op.Kind, op.Src, op.Dst, err)
		}
		results = append(results, r)
	}
	return results, nil
}

// Restore re-creates one migrated key on this graph: a tracked join plus
// the value record carried from the donor shard, version preserved. The
// version clock advances past the restored version so later writes on this
// graph stay monotonic per key.
func (d *DSG) Restore(e skipgraph.Entry) error {
	n, err := d.Add(e.ID)
	if err != nil {
		return err
	}
	if e.HasValue {
		if e.Version > d.kvSeq {
			d.kvSeq = e.Version
		}
		d.g.SetValue(n, e.Value, e.Version)
	}
	return nil
}

// KVVersion returns the current value-version clock (the version the most
// recent write received).
func (d *DSG) KVVersion() int64 { return d.kvSeq }
