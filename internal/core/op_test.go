package core

import (
	"bytes"
	"errors"
	"testing"

	"lsasg/internal/skipgraph"
)

// Directed tests for the op envelope (op.go): the totality contract of the
// KV ops, the version clock, and the interplay with crash repair. The
// randomized coverage lives in kv_fuzz_test.go; these pin each documented
// branch explicitly.

func TestApplyOpRouteMatchesAdjust(t *testing.T) {
	d := New(8, Config{A: 4, Seed: 1})
	d.RepairBalance()
	res, err := d.ApplyOp(RouteOp(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.HeightAfter < 1 {
		t.Errorf("route 0→5 reported height %d", res.HeightAfter)
	}
	if _, err := d.ApplyOp(RouteOp(3, 3)); err == nil {
		t.Error("self-route must keep Adjust's error semantics")
	}
	if _, err := d.ApplyOp(Op{Kind: OpKind(99)}); err == nil {
		t.Error("unknown op kind must fail")
	}
}

func TestApplyOpGetHitAndMiss(t *testing.T) {
	d := New(8, Config{A: 4, Seed: 1})
	d.RepairBalance()

	// Every key starts valueless: a Get is a miss, yet the access still
	// adjusts the topology (totality: no error).
	res, err := d.ApplyOp(Op{Kind: OpGet, Src: 0, Dst: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("get of a never-written key must miss")
	}

	if _, err := d.ApplyOp(Op{Kind: OpPut, Src: 0, Dst: 5, Value: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	res, err = d.ApplyOp(Op{Kind: OpGet, Src: 1, Dst: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !bytes.Equal(res.Value, []byte("x")) || res.Version != 1 {
		t.Errorf("get after put: found=%v value=%q version=%d", res.Found, res.Value, res.Version)
	}

	// Crash-stop: the record becomes unreadable the moment the key crashes.
	if err := d.Crash(5); err != nil {
		t.Fatal(err)
	}
	res, err = d.ApplyOp(Op{Kind: OpGet, Src: 1, Dst: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("get of a crashed key must miss")
	}
	// The tolerant adjust skipped the dead endpoint: no transformation ran.
	if res.TransformRounds != 0 {
		t.Errorf("get of a crashed key ran %d transform rounds", res.TransformRounds)
	}
}

func TestApplyPutUpdateJoinAndRepair(t *testing.T) {
	d := New(8, Config{A: 4, Seed: 1})
	d.RepairBalance()

	// Update in place: the key is alive, versions are the global clock.
	r1, err := d.ApplyOp(Op{Kind: OpPut, Src: 0, Dst: 3, Value: []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Existed || r1.Version != 1 {
		t.Errorf("put on live key: existed=%v version=%d", r1.Existed, r1.Version)
	}
	r2, err := d.ApplyOp(Op{Kind: OpPut, Src: 0, Dst: 3, Value: []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Existed || r2.Version != 2 {
		t.Errorf("second put: existed=%v version=%d", r2.Existed, r2.Version)
	}

	// Tracked join: put of an absent key adds it.
	if err := d.RemoveNode(6); err != nil {
		t.Fatal(err)
	}
	r3, err := d.ApplyOp(Op{Kind: OpPut, Src: 0, Dst: 6, Value: []byte("c")})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Existed || r3.Version != 3 {
		t.Errorf("put join: existed=%v version=%d", r3.Existed, r3.Version)
	}
	if n := d.NodeByID(6); n == nil || n.Dead() {
		t.Fatal("put join did not re-add key 6")
	}

	// Crash-repair + rejoin: put of a dead key splices the corpse, loses the
	// old record (crash-stop), and joins fresh with the new value.
	if err := d.Crash(3); err != nil {
		t.Fatal(err)
	}
	r4, err := d.ApplyOp(Op{Kind: OpPut, Src: 0, Dst: 3, Value: []byte("d")})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Existed || r4.Version != 4 {
		t.Errorf("put on crashed key: existed=%v version=%d", r4.Existed, r4.Version)
	}
	ids := d.DrainCrashRepairs()
	if len(ids) != 1 || ids[0] != 3 {
		t.Errorf("crash-repair log after put-repair: %v", ids)
	}
	g, err := d.ApplyOp(Op{Kind: OpGet, Src: 0, Dst: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Found || !bytes.Equal(g.Value, []byte("d")) {
		t.Errorf("read after repair-rejoin: found=%v value=%q", g.Found, g.Value)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeleteLeaveMissAndCrashRepair(t *testing.T) {
	d := New(8, Config{A: 4, Seed: 1})
	d.RepairBalance()
	if _, err := d.ApplyOp(Op{Kind: OpPut, Src: 0, Dst: 4, Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}

	// Tracked leave.
	r, err := d.ApplyOp(Op{Kind: OpDelete, Src: 0, Dst: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Existed || d.NodeByID(4) != nil {
		t.Errorf("delete of live key: existed=%v node=%v", r.Existed, d.NodeByID(4))
	}

	// Idempotent miss.
	r, err = d.ApplyOp(Op{Kind: OpDelete, Src: 0, Dst: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Existed {
		t.Error("delete of absent key must report existed=false")
	}

	// Delete of a dead key is the crash-repair splice.
	if err := d.Crash(7); err != nil {
		t.Fatal(err)
	}
	r, err = d.ApplyOp(Op{Kind: OpDelete, Src: 0, Dst: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Existed || d.NodeByID(7) != nil {
		t.Errorf("delete of crashed key: existed=%v node=%v", r.Existed, d.NodeByID(7))
	}
	if ids := d.DrainCrashRepairs(); len(ids) != 1 || ids[0] != 7 {
		t.Errorf("crash-repair log after delete-repair: %v", ids)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDeletedThenCrashedNoResurrect pins the resurrection guard: once a key
// is deleted — whether it was alive or already a corpse at delete time — a
// late RepairCrashedID of that id must decline and the key must stay gone.
func TestDeletedThenCrashedNoResurrect(t *testing.T) {
	d := New(8, Config{A: 4, Seed: 1})
	d.RepairBalance()
	if _, err := d.ApplyOp(Op{Kind: OpPut, Src: 0, Dst: 5, Value: []byte("doomed")}); err != nil {
		t.Fatal(err)
	}

	// Crash first, then delete: applyDelete takes the repair path.
	if err := d.Crash(5); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyOp(Op{Kind: OpDelete, Src: 0, Dst: 5}); err != nil {
		t.Fatal(err)
	}
	d.DrainCrashRepairs()
	if d.RepairCrashedID(5) {
		t.Error("repair of a deleted key must decline")
	}
	if d.NodeByID(5) != nil {
		t.Fatal("deleted-then-repaired key resurrected")
	}

	// Delete while alive, then probe the id: same guarantee.
	if _, err := d.ApplyOp(Op{Kind: OpDelete, Src: 0, Dst: 2}); err != nil {
		t.Fatal(err)
	}
	if d.RepairCrashedID(2) {
		t.Error("repair of a departed key must decline")
	}
	if d.NodeByID(2) != nil {
		t.Fatal("departed key resurrected by a stale repair")
	}

	// Neither key reappears in a full scan, and the graph stays valid.
	for _, e := range d.Graph().ScanFrom(skipgraph.KeyOf(0), 16) {
		if e.ID == 5 || e.ID == 2 {
			t.Errorf("deleted key %d visible in scan", e.ID)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyOpScanReadsSortedLiveRecords(t *testing.T) {
	d := New(8, Config{A: 4, Seed: 1})
	d.RepairBalance()
	for _, k := range []int64{6, 1, 4} {
		if _, err := d.ApplyOp(Op{Kind: OpPut, Src: 0, Dst: k, Value: []byte{byte(k)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Crash(4); err != nil {
		t.Fatal(err)
	}

	res, err := d.ApplyOp(Op{Kind: OpScan, Dst: 0, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 || res.Entries[0].ID != 1 || res.Entries[1].ID != 6 {
		t.Fatalf("scan = %v, want keys [1 6] (crashed 4 skipped, valueless skipped)", res.Entries)
	}

	// Limit truncation and start offset; Limit ≤ 0 is clamped to 1.
	res, _ = d.ApplyOp(Op{Kind: OpScan, Dst: 2, Limit: 1})
	if len(res.Entries) != 1 || res.Entries[0].ID != 6 {
		t.Fatalf("scan from 2 limit 1 = %v, want [6]", res.Entries)
	}
	res, _ = d.ApplyOp(Op{Kind: OpScan, Dst: 0, Limit: 0})
	if len(res.Entries) != 1 {
		t.Fatalf("scan with limit 0 must clamp to 1, got %v", res.Entries)
	}
}

func TestApplyOpsPrefixOnError(t *testing.T) {
	d := New(8, Config{A: 4, Seed: 1})
	d.RepairBalance()
	if err := d.RemoveNode(6); err != nil {
		t.Fatal(err)
	}
	results, err := d.ApplyOps([]Op{
		{Kind: OpPut, Src: 0, Dst: 1, Value: []byte("x")},
		RouteOp(0, 6), // unknown node: routes keep strict errors
		{Kind: OpPut, Src: 0, Dst: 2, Value: []byte("y")},
	})
	if err == nil {
		t.Fatal("route to a removed node must abort the batch")
	}
	if !errors.Is(err, ErrUnknownNode) {
		t.Errorf("abort error = %v, want ErrUnknownNode", err)
	}
	if len(results) != 1 || results[0].Version != 1 {
		t.Errorf("applied prefix = %d results, want exactly the put before the failure", len(results))
	}
}

func TestRestorePreservesVersionAndClock(t *testing.T) {
	d := New(8, Config{A: 4, Seed: 1})
	d.RepairBalance()
	if err := d.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveNode(5); err != nil {
		t.Fatal(err)
	}

	// A migrated record re-joins with its donor-side version intact, and the
	// clock advances past it so later writes stay monotonic.
	if err := d.Restore(skipgraph.Entry{ID: 3, Value: []byte("moved"), Version: 41, HasValue: true}); err != nil {
		t.Fatal(err)
	}
	if got := d.KVVersion(); got != 41 {
		t.Errorf("clock after restore = %d, want 41", got)
	}
	g, err := d.ApplyOp(Op{Kind: OpGet, Src: 0, Dst: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Found || !bytes.Equal(g.Value, []byte("moved")) || g.Version != 41 {
		t.Errorf("restored read: found=%v value=%q version=%d", g.Found, g.Value, g.Version)
	}

	// A valueless migrated key restores as a bare member.
	if err := d.Restore(skipgraph.Entry{ID: 5}); err != nil {
		t.Fatal(err)
	}
	if n := d.NodeByID(5); n == nil {
		t.Fatal("valueless restore did not re-add the key")
	}
	if res, _ := d.ApplyOp(Op{Kind: OpGet, Src: 0, Dst: 5}); res.Found {
		t.Error("valueless restore must not invent a record")
	}

	// Next write continues past the restored version.
	w, err := d.ApplyOp(Op{Kind: OpPut, Src: 0, Dst: 1, Value: []byte("z")})
	if err != nil {
		t.Fatal(err)
	}
	if w.Version != 42 {
		t.Errorf("write after restore got version %d, want 42", w.Version)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
