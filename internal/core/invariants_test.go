package core

import (
	"math/rand"
	"strings"
	"testing"

	"lsasg/internal/skipgraph"
)

// TestRepairBalanceConverges repairs freshly built random topologies (whose
// independent membership bits carry no balance guarantee) across sizes,
// balance parameters, and seeds, and requires a clean validator afterwards.
func TestRepairBalanceConverges(t *testing.T) {
	for _, a := range []int{2, 3, 4} {
		for _, n := range []int{5, 32, 200} {
			for seed := int64(0); seed < 5; seed++ {
				d := New(n, Config{A: a, Seed: seed})
				d.RepairBalance()
				if err := d.Validate(); err != nil {
					t.Errorf("a=%d n=%d seed=%d: %v", a, n, seed, err)
				}
			}
		}
	}
}

// TestRepairBalanceIdempotent requires a second repair right after a first
// to be a no-op.
func TestRepairBalanceIdempotent(t *testing.T) {
	d := New(64, Config{A: 2, Seed: 9})
	d.RepairBalance()
	if ins, rem := d.RepairBalance(); ins != 0 || rem != 0 {
		t.Errorf("second repair did work: inserted %d, removed %d", ins, rem)
	}
}

// TestValidateAfterTraffic runs plain request traffic with the runner-style
// repair after each request and requires the validator to stay clean.
func TestValidateAfterTraffic(t *testing.T) {
	d := New(48, Config{A: 2, Seed: 5})
	d.RepairBalance()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 150; i++ {
		u, v := int64(rng.Intn(48)), int64(rng.Intn(48))
		if u == v {
			continue
		}
		if _, err := d.Serve(u, v); err != nil {
			t.Fatal(err)
		}
		d.RepairBalance()
		if err := d.Validate(); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

// TestValidateDetectsCorruption drives the validator over hand-corrupted
// states: each case must be caught with the right error class.
func TestValidateDetectsCorruption(t *testing.T) {
	fresh := func() *DSG {
		d := New(16, Config{A: 4, Seed: 1})
		d.RepairBalance()
		if err := d.Validate(); err != nil {
			t.Fatalf("baseline not clean: %v", err)
		}
		return d
	}

	t.Run("dummy bookkeeping", func(t *testing.T) {
		d := fresh()
		d.dummyCount += 3
		if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "dummies") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("missing state", func(t *testing.T) {
		d := fresh()
		delete(d.st, d.NodeByID(7))
		if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "state") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("timestamp below base", func(t *testing.T) {
		d := fresh()
		s := d.state(d.NodeByID(3))
		s.B = 2
		s.ensure(2)
		s.T[0] = 99
		if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "below base") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("balance violation", func(t *testing.T) {
		// Keys 0, 1, 2 all take bit 1 = 0: a run of 3 > a = 2.
		g := skipgraph.NewFromVectors([]skipgraph.VectorEntry{
			{Key: 0, ID: 0, Vector: "000"},
			{Key: 1, ID: 1, Vector: "001"},
			{Key: 2, ID: 2, Vector: "01"},
			{Key: 3, ID: 3, Vector: "10"},
			{Key: 4, ID: 4, Vector: "11"},
		})
		d := NewFromGraph(g, Config{A: 2, Seed: 1})
		if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "balance") {
			t.Errorf("err = %v", err)
		}
		d.RepairBalance()
		if err := d.Validate(); err != nil {
			t.Errorf("after repair: %v", err)
		}
	})
	t.Run("shallow state arrays", func(t *testing.T) {
		d := fresh()
		s := d.state(d.NodeByID(5))
		s.G = s.G[:1]
		if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "exceeds group state") {
			t.Errorf("err = %v", err)
		}
	})
}
