package core

import (
	"fmt"
	"math/rand"

	"lsasg/internal/skipgraph"
)

// NewFromGraph wraps an existing skip graph in a DSG with default per-node
// state, used by tests that reconstruct the paper's worked examples.
func NewFromGraph(g *skipgraph.Graph, cfg Config) *DSG {
	cfg = cfg.withDefaults()
	d := &DSG{
		cfg: cfg,
		g:   g,
		rng: rand.New(rand.NewSource(cfg.Seed + 1)),
		st:  make(map[*skipgraph.Node]*nodeState, g.N()),
	}
	maxID := int64(0)
	for _, node := range g.Nodes() {
		if node.ID() > maxID {
			maxID = node.ID()
		}
	}
	d.nextDummyID = maxID + 1
	if cfg.Finder != nil {
		d.finder = cfg.Finder
	} else {
		d.finder = &AMFFinder{A: cfg.A, Rng: d.rng}
	}
	for _, node := range g.Nodes() {
		d.st[node] = d.freshState(node)
	}
	return d
}

// Add joins a new node with the given id (key = id) using the standard
// skip-graph join with random membership bits, initializes its DSG state,
// and repairs any a-balance violation the join introduced (§IV-G).
func (d *DSG) Add(id int64) (*skipgraph.Node, error) {
	key := skipgraph.KeyOf(id)
	if d.g.ByKey(key) != nil {
		return nil, fmt.Errorf("core: node %d already present", id)
	}
	n := d.g.Insert(key, id, func(*skipgraph.Node, int) byte { return byte(d.rng.Intn(2)) })
	d.st[n] = d.freshState(n)
	d.repairStaticBalance()
	return n, nil
}

// RemoveNode removes a node (standard skip-graph leave) and repairs any
// a-balance violation the departure introduced (§IV-G).
func (d *DSG) RemoveNode(id int64) error {
	key := skipgraph.KeyOf(id)
	n := d.g.ByKey(key)
	if n == nil {
		return fmt.Errorf("core: node %d not present", id)
	}
	d.g.Remove(key)
	delete(d.st, n)
	d.repairStaticBalance()
	return nil
}

// repairStaticBalance places dummy nodes to break any over-long same-bit
// chain found outside a transformation (after node addition/removal).
func (d *DSG) repairStaticBalance() {
	a := d.cfg.A
	for _, viol := range d.g.BalanceViolations(a) {
		start := d.g.ByKey(viol.Start)
		if start == nil {
			continue
		}
		list := d.g.ListAt(start, viol.Level)
		// Find the run and insert a dummy after its a-th member.
		idx := -1
		for i, x := range list {
			if x == start {
				idx = i
				break
			}
		}
		if idx < 0 || idx+a >= len(list) {
			continue
		}
		left, right := list[idx+a-1], list[idx+a]
		key, ok := d.staticFreeKey(left.Key(), right.Key())
		if !ok {
			continue
		}
		id := d.nextDummyID
		d.nextDummyID++
		dm := skipgraph.NewDummy(key, id)
		for i := 1; i <= viol.Level; i++ {
			dm.SetBit(i, left.Bit(i))
		}
		dm.SetBit(viol.Level+1, 1-viol.Bit)
		s := &nodeState{B: viol.Level + 1}
		s.ensure(viol.Level + 2)
		for i := range s.G {
			s.G[i] = id
		}
		d.st[dm] = s
		d.g.SpliceIn(dm)
		d.dummyCount++
	}
}

func (d *DSG) staticFreeKey(a, b skipgraph.Key) (skipgraph.Key, bool) {
	for minor := a.Minor + 1; minor < 1<<30; minor++ {
		k := skipgraph.Key{Primary: a.Primary, Minor: minor}
		if !k.Less(b) {
			return skipgraph.Key{}, false
		}
		if d.g.ByKey(k) == nil {
			return k, true
		}
	}
	return skipgraph.Key{}, false
}

// checkInvariants verifies the post-transformation guarantees used by the
// analysis: structural consistency, a direct u-v link (the self-adjusting
// model's requirement), and group/list coherence at every level.
func (d *DSG) checkInvariants(u, v *skipgraph.Node) error {
	if err := d.g.Verify(); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if ok, _ := d.g.DirectlyLinked(u, v); !ok {
		return fmt.Errorf("nodes %d and %d not directly linked", u.ID(), v.ID())
	}
	// The pair's size-2 list carries the request timestamp (rule T1).
	dPrime := skipgraph.CommonPrefixLen(u, v)
	if got := d.state(u).timestamp(dPrime); got != d.clock {
		return fmt.Errorf("node %d timestamp at pair level %d is %d, want %d", u.ID(), dPrime, got, d.clock)
	}
	for _, x := range d.g.Nodes() {
		if x.IsDummy() {
			continue
		}
		sx := d.state(x)
		// T6 invariant: no timestamps below the group-base.
		for i := 0; i < sx.B && i < len(sx.T); i++ {
			if sx.T[i] != 0 {
				return fmt.Errorf("node %d has timestamp %d at level %d below base %d", x.ID(), sx.T[i], i, sx.B)
			}
		}
		// State arrays never lag the membership vector.
		if x.BitsLen() >= len(sx.G)+1 {
			return fmt.Errorf("node %d vector depth %d exceeds group state %d", x.ID(), x.BitsLen(), len(sx.G))
		}
	}
	return nil
}
