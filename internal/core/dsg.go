package core

import (
	"fmt"
	"math/rand"

	"lsasg/internal/skipgraph"
)

// NewFromGraph wraps an existing skip graph in a DSG with default per-node
// state, used by tests that reconstruct the paper's worked examples.
func NewFromGraph(g *skipgraph.Graph, cfg Config) *DSG {
	cfg = cfg.withDefaults()
	d := &DSG{
		cfg: cfg,
		g:   g,
		rng: rand.New(rand.NewSource(cfg.Seed + 1)),
		st:  make(map[*skipgraph.Node]*nodeState, g.N()),
	}
	maxID := int64(0)
	for node := range g.All() {
		if node.ID() > maxID {
			maxID = node.ID()
		}
	}
	d.nextDummyID = maxID + 1
	if cfg.DummyIDBase > d.nextDummyID {
		d.nextDummyID = cfg.DummyIDBase
	}
	if cfg.Finder != nil {
		d.finder = cfg.Finder
	} else {
		d.finder = &AMFFinder{A: cfg.A, Rng: d.rng}
	}
	for node := range g.All() {
		d.st[node] = d.freshState(node)
	}
	return d
}

// Add joins a new node with the given id (key = id) using the local
// skip-graph join with random membership bits, initializes its DSG state,
// and repairs a-balance over exactly the lists the join touched (§IV-G).
// Nothing outside the join's search path — and the repair's knock-on
// lists — is read or written.
func (d *DSG) Add(id int64) (*skipgraph.Node, error) {
	key := skipgraph.KeyOf(id)
	if d.g.ByKey(key) != nil {
		return nil, fmt.Errorf("core: node %d already present", id)
	}
	n, eff := d.g.InsertTracked(key, id, func(*skipgraph.Node, int) byte { return byte(d.rng.Intn(2)) })
	d.st[n] = d.freshState(n)
	// The join may have lengthened adjacent peers' membership vectors to
	// keep them distinct from the newcomer; grow exactly those peers' state
	// arrays to match (a node is its own group at its new singleton levels,
	// §IV-B).
	for _, x := range eff.Extended {
		d.syncStateDepthFor(x)
	}
	d.joinScan += eff.Work
	d.RepairBalanceIn(eff.Touched)
	return n, nil
}

// syncStateDepthFor extends one node's per-level state arrays to cover its
// current membership vector.
func (d *DSG) syncStateDepthFor(x *skipgraph.Node) {
	s := d.state(x)
	for lvl := len(s.G); lvl <= x.BitsLen()+1; lvl++ {
		s.setGroup(lvl, x.ID())
	}
}

// RemoveNode removes a node (standard skip-graph leave) and repairs
// a-balance over exactly the lists the departure touched (§IV-G): the
// node's exit can merge a same-bit run at each level it occupied, and
// those lists — anchored at surviving neighbours — are the entire dirty
// set.
func (d *DSG) RemoveNode(id int64) error {
	key := skipgraph.KeyOf(id)
	if n := d.g.ByKey(key); n != nil && n.Dead() {
		// A crashed node cannot run the leave-side protocol; its removal
		// goes through the crash-repair path (RepairCrashedID) instead.
		return fmt.Errorf("%w: %d", ErrCrashedNode, id)
	}
	n, refs := d.g.RemoveTracked(key)
	if n == nil {
		return fmt.Errorf("core: node %d not present", id)
	}
	delete(d.st, n)
	d.RepairBalanceIn(refs)
	return nil
}

// dummyRemovable reports whether removing dm keeps every list a-balanced:
// at each level dm participates in, the same-bit runs its departure would
// merge (or shorten) must not exceed `a`. A node lacking the next level's
// bit is a run boundary, so dm itself may be breaking a chain purely by
// presence.
func (d *DSG) dummyRemovable(dm *skipgraph.Node) bool {
	a := d.cfg.A
	for e := 0; e <= dm.BitsLen(); e++ {
		bitLevel := e + 1
		l, r := dm.Prev(e), dm.Next(e)
		if l == nil || r == nil {
			continue // removal can only shorten an edge run
		}
		if !l.HasBit(bitLevel) || !r.HasBit(bitLevel) || l.Bit(bitLevel) != r.Bit(bitLevel) {
			continue // a boundary survives on at least one side
		}
		b := l.Bit(bitLevel)
		runLen, hasReal := 0, false
		for x := l; x != nil && x.HasBit(bitLevel) && x.Bit(bitLevel) == b; x = x.Prev(e) {
			runLen++
			hasReal = hasReal || !x.IsDummy()
		}
		for x := r; x != nil && x.HasBit(bitLevel) && x.Bit(bitLevel) == b; x = x.Next(e) {
			runLen++
			hasReal = hasReal || !x.IsDummy()
		}
		// All-dummy runs are exempt from the a-balance property (see
		// skipgraph.listRunViolations).
		if runLen > a && hasReal {
			return false
		}
	}
	return true
}

// removeDummy splices a dummy out of the graph, drops its state, and — when
// the dummy was the only separator between two real live nodes sharing a
// membership prefix at the top of their vectors — extends those nodes until
// distinct again (the validator's adjacency invariant). It returns the lists
// any such extension touched, which the balance-repair loops must fold back
// into their dirty sets: a longer vector means new list memberships, and
// those can carry fresh a-balance violations.
func (d *DSG) removeDummy(dm *skipgraph.Node) []skipgraph.ListRef {
	var cands []*skipgraph.Node
	for l := 0; l <= dm.MaxLinkedLevel(); l++ {
		for _, nb := range []*skipgraph.Node{dm.Prev(l), dm.Next(l)} {
			if nb != nil && !nb.IsDummy() && !nb.Dead() {
				cands = append(cands, nb)
			}
		}
	}
	d.g.Remove(dm.Key())
	delete(d.st, dm)
	d.dummyCount--
	eff := d.g.ExtendDistinctFrom(cands, func(*skipgraph.Node, int) byte { return byte(d.rng.Intn(2)) })
	for _, x := range eff.Extended {
		d.syncStateDepthFor(x)
	}
	return eff.Touched
}

// freeKeyIn finds a key strictly between a and b for which occupied is
// false, bisecting the open minor interval so repeated dummy placement
// keeps both halves splittable (dense minor+1 packing would exhaust the
// gap between two dummies). If the bisection path is fully occupied it
// falls back to a linear scan of the whole interval.
func freeKeyIn(a, b skipgraph.Key, occupied func(skipgraph.Key) bool) (skipgraph.Key, bool) {
	lo := a.Minor
	hi := int32(1 << 30)
	if b.Primary == a.Primary {
		hi = b.Minor
	}
	for hi-lo >= 2 {
		mid := lo + (hi-lo)/2
		k := skipgraph.Key{Primary: a.Primary, Minor: mid}
		if !occupied(k) {
			return k, true
		}
		hi = mid
	}
	for minor := a.Minor + 1; ; minor++ {
		k := skipgraph.Key{Primary: a.Primary, Minor: minor}
		if !k.Less(b) || minor >= 1<<30 {
			return skipgraph.Key{}, false
		}
		if !occupied(k) {
			return k, true
		}
	}
}

// staticFreeKey finds an unused key strictly between a and b.
func (d *DSG) staticFreeKey(a, b skipgraph.Key) (skipgraph.Key, bool) {
	return freeKeyIn(a, b, func(k skipgraph.Key) bool { return d.g.ByKey(k) != nil })
}

// checkInvariants verifies the post-transformation guarantees used by the
// analysis: structural consistency, a direct u-v link (the self-adjusting
// model's requirement), and group/list coherence at every level.
func (d *DSG) checkInvariants(u, v *skipgraph.Node) error {
	if err := d.g.Verify(); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if ok, _ := d.g.DirectlyLinked(u, v); !ok {
		return fmt.Errorf("nodes %d and %d not directly linked", u.ID(), v.ID())
	}
	// The pair's size-2 list carries the request timestamp (rule T1).
	dPrime := skipgraph.CommonPrefixLen(u, v)
	if got := d.state(u).timestamp(dPrime); got != d.clock {
		return fmt.Errorf("node %d timestamp at pair level %d is %d, want %d", u.ID(), dPrime, got, d.clock)
	}
	for x := range d.g.All() {
		if x.IsDummy() {
			continue
		}
		sx := d.state(x)
		// T6 invariant: no timestamps below the group-base.
		for i := 0; i < sx.B && i < len(sx.T); i++ {
			if sx.T[i] != 0 {
				return fmt.Errorf("node %d has timestamp %d at level %d below base %d", x.ID(), sx.T[i], i, sx.B)
			}
		}
		// State arrays never lag the membership vector.
		if x.BitsLen() >= len(sx.G)+1 {
			return fmt.Errorf("node %d vector depth %d exceeds group state %d", x.ID(), x.BitsLen(), len(sx.G))
		}
	}
	return nil
}
