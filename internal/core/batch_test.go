package core

import (
	"math/rand"
	"testing"
)

// TestAdjustMatchesServe: routing is read-only, so applying a request
// sequence through Adjust must leave the DSG in exactly the state Serve (plus
// its scoped repair) leaves it in: same clock, same topology, same balance.
func TestAdjustMatchesServe(t *testing.T) {
	const n = 48
	a := New(n, Config{A: 4, Seed: 5})
	b := New(n, Config{A: 4, Seed: 5})
	a.RepairBalance()
	b.RepairBalance()

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
		if u == v {
			continue
		}
		sres, err := a.Serve(u, v)
		if err != nil {
			t.Fatalf("serve %d→%d: %v", u, v, err)
		}
		a.RepairBalancePending()
		ares, err := b.Adjust(u, v)
		if err != nil {
			t.Fatalf("adjust %d→%d: %v", u, v, err)
		}
		if ares.TransformRounds != sres.TransformRounds || ares.Alpha != sres.Alpha ||
			ares.DirectLevel != sres.DirectLevel || ares.Time != sres.Time {
			t.Fatalf("adjust result %+v diverges from serve result %+v", ares, sres)
		}
	}
	if a.Clock() != b.Clock() {
		t.Fatalf("clocks diverged: serve %d, adjust %d", a.Clock(), b.Clock())
	}
	if a.Graph().Height() != b.Graph().Height() || a.DummyCount() != b.DummyCount() {
		t.Fatalf("topology diverged: serve (h=%d, dummies=%d), adjust (h=%d, dummies=%d)",
			a.Graph().Height(), a.DummyCount(), b.Graph().Height(), b.DummyCount())
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("adjust-built DSG invalid: %v", err)
	}
}

// TestApplyBatch checks ordered application, per-pair results, and the
// applied-prefix contract on error.
func TestApplyBatch(t *testing.T) {
	d := New(32, Config{A: 4, Seed: 2})
	d.RepairBalance()

	pairs := []Pair{{0, 9}, {9, 17}, {0, 9}, {3, 30}}
	results, err := d.ApplyBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("got %d results for %d pairs", len(results), len(pairs))
	}
	for i, r := range results {
		if r.Time != int64(i+1) {
			t.Errorf("pair %d applied at time %d, want %d", i, r.Time, i+1)
		}
	}
	if ok, _ := d.Graph().DirectlyLinked(d.NodeByID(3), d.NodeByID(30)); !ok {
		t.Error("last batch pair not directly linked")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid after batch: %v", err)
	}

	// A bad pair aborts the batch but keeps the applied prefix.
	before := d.Clock()
	results, err = d.ApplyBatch([]Pair{{1, 2}, {5, 99}})
	if err == nil {
		t.Fatal("expected error for unknown node id")
	}
	if len(results) != 1 || d.Clock() != before+1 {
		t.Fatalf("applied prefix: %d results, clock %d (was %d)", len(results), d.Clock(), before)
	}
}
