package core

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"lsasg/internal/skipgraph"
)

var (
	kvFuzzSeeds  = flag.Int("kvfuzz.seeds", 3, "number of random seeds for the KV fuzz test")
	kvFuzzEvents = flag.Int("kvfuzz.events", 800, "events per KV fuzz seed")
)

// This file extends the crash fuzz with the KV data plane: random
// get/put/delete/scan operations interleaved with the full churn-and-crash
// repertoire (route, join, leave, crash, probe). The oracle is a sorted map
// of live value records — exactly the state a scan must observe — layered
// over the crash fuzz's two-population membership oracle. After every op the
// harness asserts the op's own result (hit/miss, existed, version), the
// full-graph validator, the membership oracle, the version clock, and a
// complete level-0 scan against the sorted-map oracle, so a value leaking
// through a delete, surviving a crash it must not survive, or going missing
// under churn fails immediately. Failures shrink ddmin-style to a minimal
// reproducing sequence before reporting.

// kvFuzzOp is one randomized KV-plane operation. Route/join/leave/crash/
// probe reuse the crash-fuzz semantics; get/put/delete carry (origin, key)
// in (A, B is the key for 'g'/'w'/'d'); scan carries (start, limit) in
// (A, B).
type kvFuzzOp struct {
	Kind byte // 'g' get, 'w' put, 'd' delete, 's' scan, 'r' route, 'j' join, 'l' leave, 'c' crash, 'p' probe
	A, B int64
}

func (op kvFuzzOp) String() string {
	switch op.Kind {
	case 'g':
		return fmt.Sprintf("get(%d→%d)", op.A, op.B)
	case 'w':
		return fmt.Sprintf("put(%d→%d)", op.A, op.B)
	case 'd':
		return fmt.Sprintf("delete(%d→%d)", op.A, op.B)
	case 's':
		return fmt.Sprintf("scan(%d,limit=%d)", op.A, op.B)
	case 'r':
		return fmt.Sprintf("route(%d,%d)", op.A, op.B)
	case 'j':
		return fmt.Sprintf("join(%d)", op.A)
	case 'c':
		return fmt.Sprintf("crash(%d)", op.A)
	case 'p':
		return fmt.Sprintf("probe(%d)", op.A)
	default:
		return fmt.Sprintf("leave(%d)", op.A)
	}
}

// pick returns a uniformly random element of s.
func pick(rng *rand.Rand, s []int64) int64 { return s[rng.Intn(len(s))] }

// genKVFuzzOps builds a random KV op sequence that is valid when replayed
// from the start. Keys for point ops are drawn across all three populations
// — live (updates and hits), departed (revival joins and miss reads), and
// crashed (the repair-then-rejoin put path and crash-stop miss reads) — so
// every branch of the totality contract gets traffic.
func genKVFuzzOps(rng *rand.Rand, n, count int) []kvFuzzOp {
	live := make([]int64, n)
	for i := range live {
		live[i] = int64(i)
	}
	var crashed, departed []int64
	next := int64(n)
	// pickKey draws a point-op target: mostly live, sometimes departed or
	// crashed or brand new. fresh mints a new id (the caller decides whether
	// the op makes it live).
	pickKey := func(pLive, pDeparted, pCrashed float64) (id int64, fresh bool) {
		switch r := rng.Float64(); {
		case r < pLive:
			return pick(rng, live), false
		case r < pLive+pDeparted && len(departed) > 0:
			return pick(rng, departed), false
		case r < pLive+pDeparted+pCrashed && len(crashed) > 0:
			return pick(rng, crashed), false
		default:
			id = next
			next++
			return id, true
		}
	}
	drop := func(s []int64, id int64) []int64 {
		for i, x := range s {
			if x == id {
				return append(s[:i], s[i+1:]...)
			}
		}
		return s
	}
	ops := make([]kvFuzzOp, 0, count)
	for len(ops) < count {
		switch r := rng.Float64(); {
		case r < 0.25: // get
			key, _ := pickKey(0.70, 0.12, 0.12)
			ops = append(ops, kvFuzzOp{Kind: 'g', A: pick(rng, live), B: key})
		case r < 0.45: // put: update, revival join, fresh join, or dead repair+rejoin
			key, fresh := pickKey(0.60, 0.15, 0.10)
			ops = append(ops, kvFuzzOp{Kind: 'w', A: pick(rng, live), B: key})
			if !fresh {
				departed = drop(departed, key)
				crashed = drop(crashed, key)
			}
			found := false
			for _, x := range live {
				if x == key {
					found = true
					break
				}
			}
			if !found {
				live = append(live, key)
			}
		case r < 0.55: // delete
			key, fresh := pickKey(0.70, 0.15, 0.15)
			if fresh {
				next-- // a fresh id was never there; make it an absent-key no-op
			}
			if len(live) <= 4 {
				continue
			}
			ops = append(ops, kvFuzzOp{Kind: 'd', A: pick(rng, live), B: key})
			live = drop(live, key)
			crashed = drop(crashed, key)
			departed = append(departed, key)
		case r < 0.65: // scan
			ops = append(ops, kvFuzzOp{Kind: 's', A: int64(rng.Intn(int(next))), B: int64(1 + rng.Intn(8))})
		case r < 0.80: // route
			i, j := rng.Intn(len(live)), rng.Intn(len(live))
			if i == j {
				continue
			}
			ops = append(ops, kvFuzzOp{Kind: 'r', A: live[i], B: live[j]})
		case r < 0.87: // join
			ops = append(ops, kvFuzzOp{Kind: 'j', A: next})
			live = append(live, next)
			next++
		case r < 0.92: // leave
			if len(live) <= 4 {
				continue
			}
			id := pick(rng, live)
			ops = append(ops, kvFuzzOp{Kind: 'l', A: id})
			live = drop(live, id)
			departed = append(departed, id)
		case r < 0.97: // crash
			if len(live) <= 4 {
				continue
			}
			id := pick(rng, live)
			ops = append(ops, kvFuzzOp{Kind: 'c', A: id})
			live = drop(live, id)
			crashed = append(crashed, id)
		default: // probe
			if len(crashed) == 0 {
				continue
			}
			ops = append(ops, kvFuzzOp{Kind: 'p', A: pick(rng, crashed)})
		}
	}
	return ops
}

// kvFuzzValue synthesizes the deterministic payload of the i-th op writing
// key — both the replay and the oracle derive it the same way.
func kvFuzzValue(key int64, i int) []byte {
	return []byte(fmt.Sprintf("v%d.%d", key, i))
}

// runKVFuzz replays an op sequence against a fresh DSG, the two-population
// membership oracle, and the sorted-map value oracle. Inapplicable ops
// (possible after shrinking) are skipped. Returns the index of the first
// failing op, or -1.
func runKVFuzz(n, a int, seed int64, ops []kvFuzzOp) (int, error) {
	d := New(n, Config{A: a, Seed: seed})
	d.RepairBalance()
	if err := d.Validate(); err != nil {
		return 0, fmt.Errorf("invalid before any op: %w", err)
	}
	live := make([]int64, n)
	for i := range live {
		live[i] = int64(i)
	}
	var dead []int64
	vals := map[int64][]byte{}
	vers := map[int64]int64{}
	var expSeq int64
	find := func(s []int64, id int64) int {
		i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
		if i < len(s) && s[i] == id {
			return i
		}
		return -1
	}
	insert := func(s []int64, id int64) []int64 {
		pos := sort.Search(len(s), func(i int) bool { return s[i] >= id })
		s = append(s, 0)
		copy(s[pos+1:], s[pos:])
		s[pos] = id
		return s
	}
	d.DrainCrashRepairs()
	for i, op := range ops {
		switch op.Kind {
		case 'g':
			if find(live, op.A) < 0 {
				continue
			}
			res, err := d.ApplyOp(Op{Kind: OpGet, Src: op.A, Dst: op.B})
			if err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			want, ok := vals[op.B]
			if res.Found != ok {
				return i, fmt.Errorf("%s: found=%v, oracle %v", op, res.Found, ok)
			}
			if ok && (!bytes.Equal(res.Value, want) || res.Version != vers[op.B]) {
				return i, fmt.Errorf("%s: read (%q, v%d), oracle (%q, v%d)",
					op, res.Value, res.Version, want, vers[op.B])
			}
		case 'w':
			if find(live, op.A) < 0 {
				continue
			}
			wasLive := find(live, op.B) >= 0
			val := kvFuzzValue(op.B, i)
			res, err := d.ApplyOp(Op{Kind: OpPut, Src: op.A, Dst: op.B, Value: val})
			if err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			expSeq++
			if res.Version != expSeq {
				return i, fmt.Errorf("%s: version %d, want %d", op, res.Version, expSeq)
			}
			if res.Existed != wasLive {
				return i, fmt.Errorf("%s: existed=%v, oracle %v", op, res.Existed, wasLive)
			}
			if !wasLive {
				live = insert(live, op.B)
			}
			vals[op.B], vers[op.B] = val, expSeq
		case 'd':
			if find(live, op.A) < 0 {
				continue
			}
			wasLive := find(live, op.B) >= 0
			wasDead := find(dead, op.B) >= 0
			if wasLive && len(live) <= 3 {
				continue
			}
			res, err := d.ApplyOp(Op{Kind: OpDelete, Src: op.A, Dst: op.B})
			if err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			if res.Existed != (wasLive || wasDead) {
				return i, fmt.Errorf("%s: existed=%v, oracle live=%v dead=%v", op, res.Existed, wasLive, wasDead)
			}
			if wasLive {
				live = append(live[:find(live, op.B)], live[find(live, op.B)+1:]...)
			}
			delete(vals, op.B)
			delete(vers, op.B)
		case 's':
			res, err := d.ApplyOp(Op{Kind: OpScan, Dst: op.A, Limit: int(op.B)})
			if err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			if err := checkScan(res.Entries, op.A, int(op.B), vals, vers); err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
		case 'r':
			if find(live, op.A) < 0 || find(live, op.B) < 0 || op.A == op.B {
				continue
			}
			bound := d.Graph().MaxSearchPath(a) + d.DummyCount() + len(dead)
			res, err := d.Serve(op.A, op.B)
			if err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			d.RepairBalancePending()
			if res.RouteDistance > bound {
				return i, fmt.Errorf("%s: distance %d exceeds a·H+dummies+dead = %d", op, res.RouteDistance, bound)
			}
		case 'j':
			if find(live, op.A) >= 0 || find(dead, op.A) >= 0 {
				continue
			}
			if _, err := d.Add(op.A); err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			live = insert(live, op.A)
		case 'l':
			pos := find(live, op.A)
			if pos < 0 || len(live) <= 3 {
				continue
			}
			if err := d.RemoveNode(op.A); err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			live = append(live[:pos], live[pos+1:]...)
			delete(vals, op.A)
			delete(vers, op.A)
		case 'c':
			pos := find(live, op.A)
			if pos < 0 || len(live) <= 3 {
				continue
			}
			if err := d.Crash(op.A); err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			live = append(live[:pos], live[pos+1:]...)
			dead = insert(dead, op.A)
			// Crash-stop: the record is unreadable now and lost at repair.
			delete(vals, op.A)
			delete(vers, op.A)
		case 'p':
			if find(dead, op.A) < 0 {
				continue
			}
			if !d.RepairCrashedID(op.A) {
				return i, fmt.Errorf("%s: corpse %d in oracle but repair declined", op, op.A)
			}
		}
		for _, id := range d.DrainCrashRepairs() {
			if pos := find(dead, id); pos >= 0 {
				dead = append(dead[:pos], dead[pos+1:]...)
			} else {
				return i, fmt.Errorf("%s: repaired id %d was not in the dead oracle", op, id)
			}
		}
		if err := d.Validate(); err != nil {
			return i, fmt.Errorf("%s: %w", op, err)
		}
		if err := checkCrashOracle(d, live, dead); err != nil {
			return i, fmt.Errorf("%s: %w", op, err)
		}
		if got := d.KVVersion(); got != expSeq {
			return i, fmt.Errorf("%s: version clock %d, want %d", op, got, expSeq)
		}
		// The master check: a full level-0 scan must read back exactly the
		// sorted-map oracle — every live record, no deleted/crashed leftovers.
		full := d.Graph().ScanFrom(skipgraph.KeyOf(0), len(vals)+1)
		if err := checkScan(full, 0, len(vals)+1, vals, vers); err != nil {
			return i, fmt.Errorf("%s: full scan: %w", op, err)
		}
		if len(full) != len(vals) {
			return i, fmt.Errorf("%s: full scan returned %d records, oracle holds %d", op, len(full), len(vals))
		}
	}
	return -1, nil
}

// checkScan compares scan output against the sorted-map oracle restricted
// to keys ≥ start, truncated at limit.
func checkScan(got []skipgraph.Entry, start int64, limit int, vals map[int64][]byte, vers map[int64]int64) error {
	var want []int64
	for k := range vals {
		if k >= start {
			want = append(want, k)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if limit < len(want) {
		want = want[:limit]
	}
	if len(got) != len(want) {
		return fmt.Errorf("scan returned %d entries, oracle expects %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			return fmt.Errorf("scan position %d holds key %d, oracle expects %d", i, e.ID, want[i])
		}
		if !bytes.Equal(e.Value, vals[e.ID]) || e.Version != vers[e.ID] {
			return fmt.Errorf("scan key %d holds (%q, v%d), oracle (%q, v%d)",
				e.ID, e.Value, e.Version, vals[e.ID], vers[e.ID])
		}
	}
	return nil
}

// shrinkKVFuzz is ddmin-style chunk removal over runKVFuzz.
func shrinkKVFuzz(n, a int, seed int64, ops []kvFuzzOp, budget int) []kvFuzzOp {
	if idx, err := runKVFuzz(n, a, seed, ops); err != nil && idx+1 < len(ops) {
		ops = ops[:idx+1]
	}
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(ops) && budget > 0; {
			cand := make([]kvFuzzOp, 0, len(ops)-chunk)
			cand = append(cand, ops[:start]...)
			cand = append(cand, ops[start+chunk:]...)
			budget--
			if _, err := runKVFuzz(n, a, seed, cand); err != nil {
				ops = cand
			} else {
				start += chunk
			}
		}
	}
	return ops
}

// TestKVFuzz is the randomized KV data-plane harness: for each seed it
// replays hundreds of random get/put/delete/scan events interleaved with
// churn and crash failures against the sorted-map oracle, asserting op
// results, the full-graph validator, the version clock, and a complete
// scan-vs-oracle comparison after every op. A failure is shrunk to a
// minimal reproducing sequence before reporting.
func TestKVFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz is slow")
	}
	const n = 24
	for _, a := range []int{2, 4} {
		for s := 0; s < *kvFuzzSeeds; s++ {
			seed := int64(9000*a + s)
			t.Run(fmt.Sprintf("a=%d/seed=%d", a, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				ops := genKVFuzzOps(rng, n, *kvFuzzEvents)
				idx, err := runKVFuzz(n, a, seed, ops)
				if err == nil {
					return
				}
				min := shrinkKVFuzz(n, a, seed, ops, 400)
				t.Fatalf("op %d failed: %v\nminimal reproduction (n=%d a=%d seed=%d, %d ops):\n%v",
					idx, err, n, a, seed, len(min), min)
			})
		}
	}
}
