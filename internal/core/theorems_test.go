package core

import (
	"math"
	"math/rand"
	"testing"

	"lsasg/internal/skipgraph"
	"lsasg/internal/workingset"
)

// TestDirectLinkAfterRequest (the self-adjusting model's requirement and
// Lemma 4): after every request the pair shares a size-2 list, at a level
// no higher than log_{2a/(a+1)} n plus slack for approximation noise.
func TestDirectLinkAfterRequest(t *testing.T) {
	const n = 64
	for _, a := range []int{2, 4, 8} {
		d := New(n, Config{A: a, Seed: int64(a)})
		rng := rand.New(rand.NewSource(int64(a * 7)))
		bound := math.Log(float64(n)) / math.Log(2*float64(a)/(float64(a)+1))
		for i := 0; i < 150; i++ {
			u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
			if u == v {
				continue
			}
			res, err := d.Serve(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if res.DirectLevel < 0 {
				t.Fatalf("a=%d req %d: no direct link", a, i)
			}
			if float64(res.DirectLevel) > bound+3 {
				t.Errorf("a=%d req %d: direct level %d exceeds Lemma 4 bound %.1f+3",
					a, i, res.DirectLevel, bound)
			}
		}
	}
}

// TestHeightBound (Lemma 5): after any transformation the height stays at
// most log_{3/2} n plus slack for dummies added by balance repair.
func TestHeightBound(t *testing.T) {
	for _, n := range []int{16, 64, 200} {
		d := New(n, Config{A: 4, Seed: int64(n)})
		rng := rand.New(rand.NewSource(int64(n + 1)))
		bound := math.Log(float64(n))/math.Log(1.5) + 3
		for i := 0; i < 300; i++ {
			u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
			if u == v {
				continue
			}
			res, err := d.Serve(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if float64(res.HeightAfter) > bound {
				t.Errorf("n=%d req %d: height %d > log_1.5 n bound %.1f", n, i, res.HeightAfter, bound)
			}
		}
	}
}

// TestRepeatedPairBecomesCheap: after (u,v) is served once, the next
// routing between them crosses their direct link, so the distance is 0
// intermediates as long as no other request disturbs them.
func TestRepeatedPairBecomesCheap(t *testing.T) {
	d := New(32, Config{A: 4, Seed: 5})
	if _, err := d.Serve(3, 27); err != nil {
		t.Fatal(err)
	}
	res, err := d.Serve(3, 27)
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteDistance != 0 {
		t.Fatalf("repeat distance = %d, want 0", res.RouteDistance)
	}
	if res.Alpha == 0 {
		t.Fatalf("repeat alpha = 0, want the pair's high common level")
	}
}

// TestWorkingSetProperty (Theorem 2): for pairs that communicated before,
// the routing distance stays O(log T_t(u, v)). We drive a skewed workload
// and check distance ≤ c·(log2 T + 1) for a constant c = a + 2.
func TestWorkingSetProperty(t *testing.T) {
	const n = 64
	const a = 4
	d := New(n, Config{A: a, Seed: 11})
	ws := workingset.NewTracker(n)
	rng := rand.New(rand.NewSource(13))
	// A working-set-style workload over a small active set, with churn.
	active := []int{1, 5, 9, 13, 40, 50}
	violations, checked := 0, 0
	for i := 0; i < 600; i++ {
		if rng.Intn(10) == 0 {
			active[rng.Intn(len(active))] = rng.Intn(n)
		}
		u := active[rng.Intn(len(active))]
		v := active[rng.Intn(len(active))]
		if u == v {
			continue
		}
		tNum := ws.WorkingSetNumber(u, v)
		firstTime := tNum == n
		node := d.Graph().ByKey(skipgraph.KeyOf(int64(u)))
		dst := d.Graph().ByKey(skipgraph.KeyOf(int64(v)))
		route, err := d.Graph().Route(node, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !firstTime {
			checked++
			limit := float64(a) * (math.Log2(float64(tNum)) + 2)
			if float64(route.Distance()) > limit {
				violations++
			}
		}
		ws.Record(u, v)
		if _, err := d.Serve(int64(u), int64(v)); err != nil {
			t.Fatal(err)
		}
	}
	if checked == 0 {
		t.Fatal("no repeated pairs checked")
	}
	// Allow a small tail from approximation noise: ≤ 2% violations.
	if violations*50 > checked {
		t.Errorf("working-set property violated %d/%d times", violations, checked)
	}
}

// TestTransformationRoundsPolylog (Theorem 3 flavour): the transformation
// cost per request is polylogarithmic in n, far below n.
func TestTransformationRoundsPolylog(t *testing.T) {
	meanRounds := func(n int) float64 {
		d := New(n, Config{A: 4, Seed: int64(n)})
		rng := rand.New(rand.NewSource(int64(n * 3)))
		total := 0
		const reqs = 60
		for i := 0; i < reqs; i++ {
			u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
			if u == v {
				continue
			}
			res, err := d.Serve(u, v)
			if err != nil {
				t.Fatal(err)
			}
			total += res.TransformRounds
		}
		return float64(total) / reqs
	}
	small, large := meanRounds(64), meanRounds(512)
	// 8x nodes should cost well under 6x the rounds if polylog.
	if large > 6*small {
		t.Errorf("transformation rounds scale too fast: %.1f → %.1f", small, large)
	}
}

// TestDummiesDestroyedOnNotification: dummies inside l_alpha vanish when a
// transformation touches them (§IV-F), keeping the population bounded.
func TestDummiesDestroyedOnNotification(t *testing.T) {
	const n = 64
	d := New(n, Config{A: 2, Seed: 3}) // a=2 inserts dummies aggressively
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
		if u == v {
			continue
		}
		if _, err := d.Serve(u, v); err != nil {
			t.Fatal(err)
		}
	}
	before := d.DummyCount()
	// A request between the extreme keys has alpha 0 with high probability
	// only if their vectors diverge at level 1; force alpha=0 by picking a
	// pair that was never served together... simply serve several fresh
	// pairs and require the dummy count to stay bounded rather than grow.
	for i := 0; i < 20; i++ {
		u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
		if u == v {
			continue
		}
		res, err := d.Serve(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if res.Alpha == 0 && res.DummiesDestroyed == 0 && before > 0 {
			// A full-graph transformation must clean every dummy that
			// existed before it.
			t.Errorf("alpha-0 transformation destroyed no dummies (had %d)", before)
		}
		before = d.DummyCount()
	}
	if d.DummyCount() > 3*n {
		t.Errorf("dummy population %d grew beyond 3n", d.DummyCount())
	}
}

// TestAddRemoveNodes exercises §IV-G.
func TestAddRemoveNodes(t *testing.T) {
	d := New(16, Config{A: 4, Seed: 8, CheckInvariants: true})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		u, v := int64(rng.Intn(16)), int64(rng.Intn(16))
		if u == v {
			continue
		}
		if _, err := d.Serve(u, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Add(100); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(100); err == nil {
		t.Fatal("duplicate Add should fail")
	}
	if err := d.Graph().Verify(); err != nil {
		t.Fatalf("after add: %v", err)
	}
	if _, err := d.Serve(100, 3); err != nil {
		t.Fatalf("serving new node: %v", err)
	}
	if err := d.RemoveNode(100); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveNode(100); err == nil {
		t.Fatal("double remove should fail")
	}
	if err := d.Graph().Verify(); err != nil {
		t.Fatalf("after remove: %v", err)
	}
	if _, err := d.Serve(0, 15); err != nil {
		t.Fatalf("serving after removal: %v", err)
	}
}

// TestServeErrors covers the error paths.
func TestServeErrors(t *testing.T) {
	d := New(8, Config{A: 4, Seed: 1})
	if _, err := d.Serve(0, 0); err == nil {
		t.Error("self request should fail")
	}
	if _, err := d.Serve(0, 99); err == nil {
		t.Error("unknown destination should fail")
	}
	if _, err := d.Serve(99, 0); err == nil {
		t.Error("unknown source should fail")
	}
}

// TestExactFinderDeterministic: with the exact median finder and a fixed
// seed the run is fully deterministic.
func TestExactFinderDeterministic(t *testing.T) {
	run := func() []int {
		d := New(32, Config{A: 4, Seed: 9, Finder: ExactFinder{}})
		rng := rand.New(rand.NewSource(10))
		var dists []int
		for i := 0; i < 50; i++ {
			u, v := int64(rng.Intn(32)), int64(rng.Intn(32))
			if u == v {
				continue
			}
			res, err := d.Serve(u, v)
			if err != nil {
				t.Fatal(err)
			}
			dists = append(dists, res.RouteDistance)
		}
		return dists
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
