package core

import (
	"testing"

	"lsasg/internal/workload"
)

// TestRunTraceValidatesEveryEvent drives every churn generator shape
// through the trace runner with per-event full-graph validation on.
func TestRunTraceValidatesEveryEvent(t *testing.T) {
	const n, m = 32, 150
	gens := []workload.TraceGenerator{
		workload.NoChurn{Base: workload.Zipf{Seed: 1, S: 1.2}},
		workload.PoissonChurn{Seed: 2, Rate: 0.2, Base: workload.Temporal{Seed: 2, W: 8, Churn: 0.1}},
		workload.FlashCrowd{Seed: 3, Period: 20, Burst: 4},
		workload.CorrelatedDepartures{Seed: 4, Period: 25, Burst: 3},
	}
	for _, a := range []int{2, 4} {
		for _, g := range gens {
			tr, err := g.Trace(n, m)
			if err != nil {
				t.Fatalf("a=%d %s: %v", a, g.Name(), err)
			}
			d := New(n, Config{A: a, Seed: int64(a)})
			st, err := d.RunTrace(tr, TraceOptions{ValidateEvery: 1})
			if err != nil {
				t.Fatalf("a=%d %s: %v", a, g.Name(), err)
			}
			if st.Routes != m {
				t.Errorf("a=%d %s: %d routes, want %d", a, g.Name(), st.Routes, m)
			}
			if st.Validations != len(tr)+1 {
				t.Errorf("a=%d %s: %d validations, want %d", a, g.Name(), st.Validations, len(tr)+1)
			}
			t.Logf("a=%d %s: %+v", a, g.Name(), st)
		}
	}
}

// TestRunTraceKeepsWorkingSetState checks the membership path preserves the
// self-adjusting state: after churn, a previously hot pair that survived
// stays cheap to route.
func TestRunTraceKeepsWorkingSetState(t *testing.T) {
	const n = 64
	d := New(n, Config{A: 4, Seed: 7})
	// Make (3, 40) hot.
	for i := 0; i < 20; i++ {
		if _, err := d.Serve(3, 40); err != nil {
			t.Fatal(err)
		}
	}
	// Churn ten unrelated nodes through the network.
	tr := workload.Trace{}
	for i := 0; i < 10; i++ {
		tr = append(tr, workload.Event{Op: workload.OpJoin, Node: int64(n + i)})
		tr = append(tr, workload.Event{Op: workload.OpLeave, Node: int64(10 + i)})
	}
	if _, err := d.RunTrace(tr, TraceOptions{ValidateEvery: 1}); err != nil {
		t.Fatal(err)
	}
	route, err := d.Graph().Route(d.NodeByID(3), d.NodeByID(40))
	if err != nil {
		t.Fatal(err)
	}
	if route.Distance() > 0 {
		t.Errorf("hot pair distance %d after churn, want direct link", route.Distance())
	}
}

// TestRunTraceRejectsBadEvents covers the error paths.
func TestRunTraceRejectsBadEvents(t *testing.T) {
	d := New(8, Config{A: 4, Seed: 1})
	cases := []workload.Trace{
		{{Op: workload.OpRoute, Src: 99, Dst: 0}},
		{{Op: workload.OpJoin, Node: 3}},
		{{Op: workload.OpLeave, Node: 99}},
		{{Op: workload.OpCrash, Node: 99}},
		{{Op: workload.Op(9)}},
	}
	for i, tr := range cases {
		if _, err := d.RunTrace(tr, TraceOptions{}); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
	// A route to an UNKNOWN destination is not an error but a failed
	// availability probe: the runner cannot tell a crashed-and-repaired
	// peer from one that never existed (Trace.Validate rejects the latter
	// up front).
	st, err := d.RunTrace(workload.Trace{{Op: workload.OpRoute, Src: 0, Dst: 99}}, TraceOptions{})
	if err != nil {
		t.Fatalf("unknown-dst probe: %v", err)
	}
	if st.FailedRoutes != 1 || st.Routes != 0 {
		t.Errorf("unknown-dst probe: failed=%d routes=%d, want 1/0", st.FailedRoutes, st.Routes)
	}
}
