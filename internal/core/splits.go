package core

import (
	"fmt"
	"sort"

	"lsasg/internal/amf"
	"lsasg/internal/skipgraph"
)

// listWork is one linked list awaiting its split during a transformation.
type listWork struct {
	nodes []*skipgraph.Node // key order; may include dummies (run-breakers)
	level int               // the list's level; the split assigns bits for level+1
}

// runSplits performs the recursive, level-parallel splitting of l_alpha
// (§IV-C): every list of size ≥ 2 computes an approximate median priority
// and partitions into the 0- and 1-subgraphs at the next level, until all
// involved real nodes are singleton. Lists at the same level run in
// parallel, so a level's round cost is the maximum over its lists.
func (d *DSG) runSplits(ctx *transformCtx) {
	// The initial list is l_alpha in key order: the real members plus any
	// retained level-alpha dummies, which act as chain boundaries.
	initial := append(append([]*skipgraph.Node(nil), ctx.members...), ctx.keptDummies...)
	sort.Slice(initial, func(i, j int) bool { return initial[i].Key().Less(initial[j].Key()) })
	frontier := []listWork{{nodes: initial, level: ctx.alpha}}
	for len(frontier) > 0 {
		levelRounds := 0
		var next []listWork
		for _, work := range frontier {
			zeros, ones, rounds := d.splitList(ctx, work)
			if rounds > levelRounds {
				levelRounds = rounds
			}
			for _, side := range [][]*skipgraph.Node{zeros, ones} {
				if countReal(side) >= 2 {
					next = append(next, listWork{nodes: side, level: work.level + 1})
				}
			}
		}
		ctx.rounds += levelRounds
		frontier = next
	}
}

func countReal(side []*skipgraph.Node) int {
	c := 0
	for _, x := range side {
		if !x.IsDummy() {
			c++
		}
	}
	return c
}

// splitList splits one list at level work.level, assigning membership bits
// for level work.level+1 to its real members, and returns the two child
// lists (key order) plus the round cost. Dummies in the list do not
// participate (§IV-F): they stay singleton above this level and only serve
// to break chains; freshly inserted dummies join the child sibling list.
func (d *DSG) splitList(ctx *transformCtx, work listWork) (zeros, ones []*skipgraph.Node, rounds int) {
	L, dl := work.nodes, work.level
	bitLevel := dl + 1
	u, v, t := ctx.u, ctx.v, ctx.t

	real := make([]*skipgraph.Node, 0, len(L))
	for _, x := range L {
		if !x.IsDummy() {
			real = append(real, x)
		}
	}
	if len(real) < 2 {
		return nil, nil, 0
	}

	inZero := make(map[*skipgraph.Node]bool, len(real))
	var mres MedianResult
	haveMedian := false

	pairOnly := len(real) == 2 && ((real[0] == u && real[1] == v) || (real[0] == v && real[1] == u))
	switch {
	case pairOnly && len(L) == 2:
		// The pair reached its size-2 list (level d' of rule T1); one more
		// split makes both singleton. The left node takes the 0-subgraph.
		inZero[real[0]] = true
		d.state(real[0]).setDominating(bitLevel, true)
		rounds = 1
	case pairOnly:
		// Only dummies accompany the pair; both move to the 0-subgraph and
		// the dummies (which take no further bits) stay behind, so the next
		// level holds the pair alone.
		inZero[real[0]] = true
		inZero[real[1]] = true
		rounds = 1
	default:
		values := make([]amf.Value, len(real))
		for i, x := range real {
			values[i] = ctx.pri[x]
		}
		mres = d.finder.FindMedian(values)
		haveMedian = true
		rounds += mres.Rounds
		M := mres.Median
		for _, x := range real {
			if ctx.med[x] == nil {
				ctx.med[x] = make(map[int]amf.Value)
			}
			ctx.med[x][dl] = M
		}
		if M.Inf || M.V >= 0 {
			// Case 1: M is positive. Split by P(x) ≥ M; this divides the
			// merged communicating group. Nodes moving to the 0-subgraph
			// record the boundary with D = true at the formed level; the
			// 1-subgraph's old flags survive so that nested boundaries from
			// earlier positive splits stay readable (DESIGN.md §3, and the
			// paper's Fig 4 walk-through requires exactly this).
			for _, x := range real {
				ge := ctx.pri[x].GreaterEq(M)
				inZero[x] = ge
				if ge {
					d.state(x).setDominating(bitLevel, true)
				}
			}
		} else {
			rounds += d.splitNegative(ctx, real, dl, M, mres, inZero)
		}
	}

	if allSameSide(real, inZero) && !pairOnly {
		// Degenerate tie (e.g. an old group with identical timestamps):
		// the paper's comparison split cannot make progress, so fall back
		// to a positional split that keeps the communicating pair together
		// in the 0-subgraph (DESIGN.md §3.1).
		d.fallbackSplit(ctx, real, inZero)
	}
	for _, x := range real {
		if inZero[x] {
			x.SetBit(bitLevel, 0)
		} else {
			x.SetBit(bitLevel, 1)
		}
	}

	// Linear neighbour search at the new level costs at most `a` rounds
	// thanks to the a-balance property (§IV-C).
	rounds += d.cfg.A

	// a-balance maintenance: break runs longer than `a` with dummies
	// placed in the sibling subgraph (§IV-F). Existing dummies already act
	// as chain boundaries.
	withDummies, added := d.repairBalance(ctx, L, dl)
	if added > 0 {
		rounds += d.cfg.A // chain detection handshake
	}

	// Child lists at bitLevel: real members by their new bit plus freshly
	// inserted dummies (which carry a bit for bitLevel); old dummies stop
	// at level dl.
	for _, x := range withDummies {
		if !x.HasBit(bitLevel) {
			continue
		}
		if x.Bit(bitLevel) == 0 {
			zeros = append(zeros, x)
		} else {
			ones = append(ones, x)
		}
	}

	rounds += d.reassignGroups(ctx, real, dl, haveMedian, mres)
	d.recomputeP4(ctx, zeros, ones, bitLevel, t)
	return zeros, ones, rounds
}

func allSameSide(real []*skipgraph.Node, inZero map[*skipgraph.Node]bool) bool {
	zeros := 0
	for _, x := range real {
		if inZero[x] {
			zeros++
		}
	}
	return zeros == 0 || zeros == len(real)
}

// splitNegative handles Case 2 of §IV-C: the approximate median is
// negative, so a non-communicating group gs may straddle it (equation 2).
// The |gs| thresholds decide whether gs splits along old D flags, moves
// wholesale to the lighter side, or becomes the whole 1-subgraph.
func (d *DSG) splitNegative(ctx *transformCtx, real []*skipgraph.Node, dl int, M amf.Value, mres MedianResult, inZero map[*skipgraph.Node]bool) (rounds int) {
	t := ctx.t
	var gs []*skipgraph.Node
	var gsID int64
	for _, x := range real {
		p := ctx.pri[x]
		if p.Inf || p.V >= 0 {
			continue
		}
		g := d.state(x).group(dl)
		lo := -g * t
		if lo <= M.V && M.V < lo+t {
			if len(gs) > 0 && g != gsID {
				// Distinct groups occupy disjoint bands, so two straddling
				// groups would indicate a priority-rule bug.
				panic(fmt.Sprintf("core: two straddling groups %d and %d", gsID, g))
			}
			gsID = g
			gs = append(gs, x)
		}
	}
	if len(gs) == 0 {
		for _, x := range real {
			inZero[x] = ctx.pri[x].GreaterEq(M)
		}
		return 0
	}
	inGs := make(map[*skipgraph.Node]bool, len(gs))
	for _, x := range gs {
		inGs[x] = true
	}
	rounds += mres.CountRounds // distributed count of |gs|
	switch {
	case 3*len(gs) > 2*len(real):
		// gs is too big: split it along the is-dominating-group flags,
		// which reproduce its most recent positive-median split boundary.
		trues := 0
		for _, x := range gs {
			if d.state(x).dominating(dl) {
				trues++
			}
		}
		if trues == 0 || trues == len(gs) {
			// No recorded boundary (can happen for groups formed before
			// any positive split); fall back to a positional halving of gs
			// to preserve progress and the height bound.
			for i, x := range gs {
				inZero[x] = i < (len(gs)+1)/2
			}
		} else {
			for _, x := range gs {
				inZero[x] = !d.state(x).dominating(dl)
			}
		}
		for _, x := range real {
			if !inGs[x] {
				inZero[x] = true
			}
		}
	case 3*len(gs) < len(real):
		// gs is small: everyone else splits around M; gs moves wholesale
		// to the lighter side.
		low, high := 0, 0
		for _, x := range real {
			if ctx.pri[x].GreaterEq(M) {
				high++
			} else {
				low++
			}
		}
		rounds += 2 * mres.CountRounds // distributed counts of L_low, L_high
		for _, x := range real {
			if !inGs[x] {
				inZero[x] = ctx.pri[x].GreaterEq(M)
			}
		}
		gsToZero := high < low
		// Guard: if every non-gs node lies on one side, force gs to the
		// other so both subgraphs are non-empty.
		nonGsZero, nonGsOne := 0, 0
		for _, x := range real {
			if inGs[x] {
				continue
			}
			if inZero[x] {
				nonGsZero++
			} else {
				nonGsOne++
			}
		}
		if nonGsZero == 0 {
			gsToZero = true
		} else if nonGsOne == 0 {
			gsToZero = false
		}
		for _, x := range gs {
			inZero[x] = gsToZero
		}
	default:
		// 1/3 ≤ |gs|/|L| ≤ 2/3: gs becomes the whole 1-subgraph.
		for _, x := range real {
			inZero[x] = !inGs[x]
		}
	}
	return rounds
}

// fallbackSplit is the deterministic tie-breaker for degenerate lists: the
// communicating pair first, then descending priority, then key order; the
// first half goes to the 0-subgraph.
func (d *DSG) fallbackSplit(ctx *transformCtx, real []*skipgraph.Node, inZero map[*skipgraph.Node]bool) {
	ordered := append([]*skipgraph.Node(nil), real...)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		pa, pb := ctx.pri[a], ctx.pri[b]
		if c := pa.Cmp(pb); c != 0 {
			return c > 0
		}
		return a.Key().Less(b.Key())
	})
	half := (len(ordered) + 1) / 2
	for i, x := range ordered {
		inZero[x] = i < half
	}
}

// reassignGroups applies Algorithm 1 step 8 over the real members: the list
// holding u and v adopts u's identifier; a group split by this step gives
// its 1-subgraph portion the identifier of that portion's left-most member
// (broadcast via the AMF skip list); intact groups carry their identifier
// up a level.
func (d *DSG) reassignGroups(ctx *transformCtx, real []*skipgraph.Node, dl int, haveMedian bool, mres MedianResult) (rounds int) {
	u, v := ctx.u, ctx.v
	bitLevel := dl + 1

	var zeros, ones []*skipgraph.Node
	for _, x := range real {
		if x.Bit(bitLevel) == 0 {
			zeros = append(zeros, x)
		} else {
			ones = append(ones, x)
		}
	}
	zeroHasUV := containsBoth(zeros, u, v)

	// Detect groups (by level-dl id) with members on both sides.
	sideCount := make(map[int64][2]int, 4)
	for _, x := range zeros {
		c := sideCount[d.state(x).group(dl)]
		c[0]++
		sideCount[d.state(x).group(dl)] = c
	}
	for _, x := range ones {
		c := sideCount[d.state(x).group(dl)]
		c[1]++
		sideCount[d.state(x).group(dl)] = c
	}
	splitGroups := make(map[int64]bool, 1)
	for g, c := range sideCount {
		if c[0] > 0 && c[1] > 0 {
			splitGroups[g] = true
		}
	}

	for _, x := range zeros {
		if zeroHasUV {
			d.state(x).setGroup(bitLevel, u.ID())
		} else {
			d.state(x).setGroup(bitLevel, d.state(x).group(dl))
		}
	}
	// 1-subgraph portions of split groups take their left-most member's id.
	newID := make(map[int64]int64, len(splitGroups))
	for _, x := range ones {
		g := d.state(x).group(dl)
		if splitGroups[g] {
			if _, ok := newID[g]; !ok {
				newID[g] = x.ID() // first in key order = left-most
			}
			d.state(x).setGroup(bitLevel, newID[g])
		} else {
			d.state(x).setGroup(bitLevel, g)
		}
	}
	if len(splitGroups) > 0 {
		if haveMedian {
			rounds += mres.BroadcastRounds // propagate the new group-id
		} else {
			rounds++
		}
	}
	return rounds
}

// recomputeP4 applies priority rule P4: real members of a freshly formed
// list that does not contain the communicating pair take the negative band
// priority of their level-(bitLevel) group.
func (d *DSG) recomputeP4(ctx *transformCtx, zeros, ones []*skipgraph.Node, bitLevel int, t int64) {
	for _, side := range [][]*skipgraph.Node{zeros, ones} {
		if containsBoth(side, ctx.u, ctx.v) {
			continue // the pair's list keeps P1/P2 priorities
		}
		for _, x := range side {
			if x.IsDummy() {
				continue
			}
			sx := d.state(x)
			ctx.pri[x] = amf.Finite(-sx.group(bitLevel)*t + sx.timestamp(bitLevel+1))
		}
	}
}

func containsBoth(side []*skipgraph.Node, u, v *skipgraph.Node) bool {
	var hasU, hasV bool
	for _, x := range side {
		if x == u {
			hasU = true
		}
		if x == v {
			hasV = true
		}
	}
	return hasU && hasV
}
