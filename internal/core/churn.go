package core

import (
	"fmt"

	"lsasg/internal/workload"
)

// TraceOptions controls how a DSG consumes a workload trace.
type TraceOptions struct {
	// ValidateEvery runs the full-graph validator after every k-th event
	// (1 = after every event); 0 disables validation. A violation aborts
	// the run with the offending event in the error.
	ValidateEvery int
	// OnEvent, when non-nil, observes every applied event and its cost.
	OnEvent func(i int, ev workload.Event, cost EventCost)
}

// EventCost is the cost of one applied trace event in the paper's measures.
type EventCost struct {
	// RouteDistance and TransformRounds are set for route events (§III).
	RouteDistance   int
	TransformRounds int
	// RepairDummies counts the a-balance repair actions (dummy insertions
	// plus removals) the event triggered — §IV-G's adjustment cost for
	// joins/leaves, plus the sweep that fixes violations a transformation
	// leaked outside its region.
	RepairDummies int
}

// TraceStats aggregates one trace run. Adjustment cost covers both the
// self-adjusting transformations (rounds) and the membership repairs
// (dummies inserted to restore a-balance after joins/leaves).
type TraceStats struct {
	Routes, Joins, Leaves int

	RouteDistance   int // Σ d_S(σ) over route events
	TransformRounds int // Σ ρ over route events
	RepairDummies   int // Σ balance-repair actions over all events
	RouteRepairs    int // repair actions attributable to route events
	ChurnRepairs    int // repair actions attributable to joins/leaves

	MaxHeight   int // highest graph height observed after any event
	Validations int // number of full-graph validations performed

	// Crash-failure measures (experiment E20). Routes counts only routes
	// that succeeded; FailedRoutes counts availability probes that targeted
	// a crashed (or already-repaired) peer. A failed probe against a peer
	// still marked dead doubles as its failure detection.
	Crashes         int // crash events applied
	FailedRoutes    int // routes that failed against a crashed peer
	CrashDetections int // dead peers detected at route/transform time
	CrashRepairs    int // crash repairs completed (nodes spliced out)
	// RecoveredCrashes counts crashes whose repair happened within the
	// trace; RecoveryEvents sums, and MaxRecoveryEvents maximizes, the
	// number of trace events between each crash and its repair — the
	// deterministic time-to-recovery measure.
	RecoveredCrashes  int
	RecoveryEvents    int
	MaxRecoveryEvents int
}

// MeanRouteDistance returns the mean routing distance per route event.
func (s TraceStats) MeanRouteDistance() float64 {
	if s.Routes == 0 {
		return 0
	}
	return float64(s.RouteDistance) / float64(s.Routes)
}

// MeanTransformRounds returns the mean transformation rounds per route.
func (s TraceStats) MeanTransformRounds() float64 {
	if s.Routes == 0 {
		return 0
	}
	return float64(s.TransformRounds) / float64(s.Routes)
}

// RepairDummiesPerChurn returns the mean balance-repair actions per
// membership event.
func (s TraceStats) RepairDummiesPerChurn() float64 {
	if s.Joins+s.Leaves == 0 {
		return 0
	}
	return float64(s.ChurnRepairs) / float64(s.Joins+s.Leaves)
}

// RepairDummiesPerRoute returns the mean balance-repair actions per route
// event.
func (s TraceStats) RepairDummiesPerRoute() float64 {
	if s.Routes == 0 {
		return 0
	}
	return float64(s.RouteRepairs) / float64(s.Routes)
}

// RouteSuccessRate returns the fraction of attempted routes that succeeded —
// the availability measure under crash failures (1.0 with no failed probes).
func (s TraceStats) RouteSuccessRate() float64 {
	attempted := s.Routes + s.FailedRoutes
	if attempted == 0 {
		return 1
	}
	return float64(s.Routes) / float64(attempted)
}

// MeanRecoveryEvents returns the mean number of trace events between a crash
// and its repair, over the crashes repaired within the trace.
func (s TraceStats) MeanRecoveryEvents() float64 {
	if s.RecoveredCrashes == 0 {
		return 0
	}
	return float64(s.RecoveryEvents) / float64(s.RecoveredCrashes)
}

// RunTrace consumes a dynamic workload: route events are served through the
// full self-adjusting machinery (§IV-C–F), joins and leaves go through the
// membership path with a-balance repair (§IV-G), and the per-node DSG state
// (timestamps, groups, bases) persists across membership changes — a join
// or leave never resets the working-set structure the previous routes
// built. The runner owns the global a-balance property, but restores it
// *locally*: a transformation records every list it dirtied (its dummies
// can extend runs below alpha, and a destroyed dummy may have been breaking
// a lower chain), and after every route the runner repairs exactly that
// dirty set (RepairBalancePending) — nothing outside it can have a new
// violation. Joins and leaves repair their own touched lists inside
// Add/RemoveNode. Only before the first event does the runner run the
// global repair once, so the validator's guarantees hold from event zero
// even on the random initial topology (whose independent membership bits
// carry no balance guarantee).
//
// Crash events (workload.OpCrash) mark the node dead in place — no repair
// runs until a route detects the failure. Routes that target a crashed peer
// fail (availability probes, counted in FailedRoutes) and trigger the
// peer's repair; routes whose path crosses a dead intermediate detect and
// repair it inside Serve, then re-route. Per-crash time-to-recovery is the
// event distance between the crash and its repair.
func (d *DSG) RunTrace(tr workload.Trace, opts TraceOptions) (TraceStats, error) {
	var st TraceStats
	d.RepairBalance()
	if opts.ValidateEvery > 0 {
		if err := d.Validate(); err != nil {
			return st, fmt.Errorf("core: invalid before trace: %w", err)
		}
		st.Validations++
	}
	repairWork := func() int {
		ins, rem := d.RepairStats()
		return ins + rem
	}
	_, det0, rep0 := d.CrashStats()
	d.DrainCrashRepairs() // discard repairs from before this trace
	crashEvent := make(map[int64]int)
	for i, ev := range tr {
		var cost EventCost
		before := repairWork()
		switch ev.Op {
		case workload.OpRoute:
			if vNode := d.NodeByID(ev.Dst); vNode == nil || vNode.Dead() {
				// Availability probe from a stale client view: the
				// destination crashed (and may already be repaired away).
				// The failed contact attempt is itself the failure
				// detection when the peer is still marked dead.
				if vNode != nil {
					d.crashDetectCount++
					d.repairCrashed(vNode)
				}
				st.FailedRoutes++
			} else {
				res, err := d.Serve(ev.Src, ev.Dst)
				if err != nil {
					return st, fmt.Errorf("core: trace event %d %s: %w", i, ev, err)
				}
				d.RepairBalancePending()
				st.Routes++
				st.RouteDistance += res.RouteDistance
				st.TransformRounds += res.TransformRounds
				cost.RouteDistance = res.RouteDistance
				cost.TransformRounds = res.TransformRounds
			}
		case workload.OpJoin:
			if _, err := d.Add(ev.Node); err != nil {
				return st, fmt.Errorf("core: trace event %d %s: %w", i, ev, err)
			}
			st.Joins++
		case workload.OpLeave:
			if err := d.RemoveNode(ev.Node); err != nil {
				return st, fmt.Errorf("core: trace event %d %s: %w", i, ev, err)
			}
			st.Leaves++
		case workload.OpCrash:
			if err := d.Crash(ev.Node); err != nil {
				return st, fmt.Errorf("core: trace event %d %s: %w", i, ev, err)
			}
			st.Crashes++
			crashEvent[ev.Node] = i
		default:
			return st, fmt.Errorf("core: trace event %d has unknown op %d", i, int(ev.Op))
		}
		for _, id := range d.DrainCrashRepairs() {
			ce, ok := crashEvent[id]
			if !ok {
				continue
			}
			gap := i - ce
			st.RecoveredCrashes++
			st.RecoveryEvents += gap
			if gap > st.MaxRecoveryEvents {
				st.MaxRecoveryEvents = gap
			}
			delete(crashEvent, id)
		}
		cost.RepairDummies = repairWork() - before
		st.RepairDummies += cost.RepairDummies
		if ev.Op == workload.OpRoute {
			st.RouteRepairs += cost.RepairDummies
		} else {
			st.ChurnRepairs += cost.RepairDummies
		}
		if h := d.g.Height(); h > st.MaxHeight {
			st.MaxHeight = h
		}
		if opts.ValidateEvery > 0 && (i+1)%opts.ValidateEvery == 0 {
			if err := d.Validate(); err != nil {
				return st, fmt.Errorf("core: invariant violated after event %d %s: %w", i, ev, err)
			}
			st.Validations++
		}
		if opts.OnEvent != nil {
			opts.OnEvent(i, ev, cost)
		}
	}
	_, det, rep := d.CrashStats()
	st.CrashDetections = det - det0
	st.CrashRepairs = rep - rep0
	return st, nil
}
