package core

import (
	"fmt"

	"lsasg/internal/skipgraph"
)

// Validate is the full-graph invariant validator backing the churn harness:
// it checks every structural guarantee the analysis relies on, over the
// whole network, independent of any particular request. The trace driver
// and the fuzz tests call it after every event; experiments sample it.
//
// Checked, in order:
//  1. structure — strictly sorted level-0 list, link symmetry, and every
//     level-i list being exactly the key-ordered run of nodes sharing an
//     i-bit membership prefix (skipgraph.Graph.Verify);
//  2. membership-vector consistency — real nodes key their id's primary
//     slot, dummies occupy minor slots, and no two real nodes share a full
//     membership vector (every real node is singleton past its vector);
//  3. a-balance — no level-d list contains more than `a` consecutive
//     members with the same level-(d+1) bit (§III);
//  4. dummy bookkeeping — DummyCount matches the graph, and the per-node
//     DSG state map is in exact bijection with the node set;
//  5. per-node state sanity — no timestamps below the group-base (rule T6)
//     and state arrays at least as deep as the membership vector.
//
// Validate never mutates the DSG. It returns the first violation found.
func (d *DSG) Validate() error {
	if err := d.g.Verify(); err != nil {
		return fmt.Errorf("structure: %w", err)
	}
	dummies := 0
	for _, x := range d.g.Nodes() {
		if x.IsDummy() {
			dummies++
			if x.Key().Minor == 0 {
				return fmt.Errorf("vector: dummy %d occupies primary key slot %v", x.ID(), x.Key())
			}
		} else {
			if x.Key() != skipgraph.KeyOf(x.ID()) {
				return fmt.Errorf("vector: real node %d keyed %v, want %v", x.ID(), x.Key(), skipgraph.KeyOf(x.ID()))
			}
			// Past its membership vector a real node must be alone among
			// real nodes; only dummies may share its top list (they stop
			// splitting by design, §IV-F).
			top := x.BitsLen()
			for _, nb := range []*skipgraph.Node{x.Prev(top), x.Next(top)} {
				if nb != nil && !nb.IsDummy() {
					return fmt.Errorf("vector: real nodes %d and %d share the full vector %q",
						x.ID(), nb.ID(), x.MembershipVector())
				}
			}
		}
	}
	if viols := d.g.BalanceViolations(d.cfg.A); len(viols) > 0 {
		return fmt.Errorf("balance: %d violation(s), first: %s", len(viols), viols[0])
	}
	if dummies != d.dummyCount {
		return fmt.Errorf("dummies: bookkeeping says %d, graph holds %d", d.dummyCount, dummies)
	}
	if len(d.st) != d.g.N() {
		return fmt.Errorf("state: %d state entries for %d nodes", len(d.st), d.g.N())
	}
	for _, x := range d.g.Nodes() {
		sx, ok := d.st[x]
		if !ok {
			return fmt.Errorf("state: node %d has no DSG state", x.ID())
		}
		if sx.B < 0 {
			return fmt.Errorf("state: node %d has negative group-base %d", x.ID(), sx.B)
		}
		for i := 0; i < sx.B && i < len(sx.T); i++ {
			if sx.T[i] != 0 {
				return fmt.Errorf("state: node %d has timestamp %d at level %d below base %d",
					x.ID(), sx.T[i], i, sx.B)
			}
		}
		if x.BitsLen() >= len(sx.G)+1 {
			return fmt.Errorf("state: node %d vector depth %d exceeds group state %d",
				x.ID(), x.BitsLen(), len(sx.G))
		}
	}
	return nil
}

// RepairBalance restores the a-balance property across the whole graph and
// returns how many dummies it inserted and removed. Over-long runs are
// first shortened by dropping redundant dummies (ones whose removal leaves
// every list balanced); only all-real or irreducible runs get a fresh dummy
// chain-breaker. One repair pass can itself lengthen a run at a lower level
// (a new dummy carries the prefix bits of its left neighbour), so the
// repair iterates to a fixed point. Add, RemoveNode, and the trace runner
// invoke it automatically (a transformation only repairs the region it
// touched); callers constructing a DSG from a random topology (whose
// independent membership bits carry no balance guarantee) run it once
// before enforcing Validate.
func (d *DSG) RepairBalance() (inserted, removed int) {
	// Each pass strictly shrinks the total violation mass except for the
	// rare lower-level lengthening, so a generous cap only guards against a
	// repair that cannot make progress (key-space exhaustion).
	for pass := 0; pass < 4*len(d.g.Nodes())+16; pass++ {
		ins, rem := d.repairStaticBalancePass()
		inserted += ins
		removed += rem
		if ins == 0 && rem == 0 {
			break
		}
	}
	// Garbage-collect dummies the repairs above (or earlier transformations)
	// left redundant: any dummy whose removal keeps every list balanced is
	// pure overhead — it stretches routing paths without breaking a chain.
	// Removal only shortens runs, so one dummy's departure can make another
	// removable; sweep until a pass finds nothing.
	for {
		swept := 0
		for _, x := range d.g.Nodes() {
			if x.IsDummy() && d.dummyRemovable(x) {
				d.removeDummy(x)
				swept++
			}
		}
		removed += swept
		if swept == 0 {
			break
		}
	}
	d.repairInserted += inserted
	d.repairRemoved += removed
	return inserted, removed
}

// RepairStats returns the cumulative number of dummy insertions and
// removals RepairBalance has performed over the DSG's lifetime.
func (d *DSG) RepairStats() (inserted, removed int) {
	return d.repairInserted, d.repairRemoved
}
