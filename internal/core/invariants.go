package core

import (
	"fmt"
	"sort"

	"lsasg/internal/skipgraph"
)

// Validate is the full-graph invariant validator backing the churn harness:
// it checks every structural guarantee the analysis relies on, over the
// whole network, independent of any particular request. The trace driver
// and the fuzz tests call it after every event; experiments sample it.
// Validate is deliberately global — it is the correctness oracle the scoped
// repair paths (RepairBalanceIn and the local join/leave) are measured
// against, so it must not share their dirty-list bookkeeping.
//
// Checked, in order:
//  1. structure — strictly sorted level-0 list, link symmetry, and every
//     level-i list being exactly the key-ordered run of nodes sharing an
//     i-bit membership prefix (skipgraph.Graph.Verify);
//  2. membership-vector consistency — real nodes key their id's primary
//     slot, dummies occupy minor slots, and no two real nodes share a full
//     membership vector (every real node is singleton past its vector);
//  3. a-balance — no level-d list contains more than `a` consecutive
//     members with the same level-(d+1) bit (§III);
//  4. dummy bookkeeping — DummyCount matches the graph, and the per-node
//     DSG state map is in exact bijection with the node set;
//  5. per-node state sanity — no timestamps below the group-base (rule T6)
//     and state arrays at least as deep as the membership vector.
//
// Validate never mutates the DSG. It returns the first violation found.
func (d *DSG) Validate() error {
	if err := d.g.Verify(); err != nil {
		return fmt.Errorf("structure: %w", err)
	}
	dummies := 0
	for x := range d.g.All() {
		if x.IsDummy() {
			dummies++
			if x.Key().Minor == 0 {
				return fmt.Errorf("vector: dummy %d occupies primary key slot %v", x.ID(), x.Key())
			}
		} else {
			if x.Key() != skipgraph.KeyOf(x.ID()) {
				return fmt.Errorf("vector: real node %d keyed %v, want %v", x.ID(), x.Key(), skipgraph.KeyOf(x.ID()))
			}
			// Past its membership vector a real node must be alone among
			// live real nodes; only dummies — and crashed peers, which
			// cannot extend their vectors and whose repair splices them out
			// — may share its top list (dummies stop splitting by design,
			// §IV-F).
			if x.Dead() {
				continue
			}
			top := x.BitsLen()
			for _, nb := range []*skipgraph.Node{x.Prev(top), x.Next(top)} {
				if nb != nil && !nb.IsDummy() && !nb.Dead() {
					return fmt.Errorf("vector: real nodes %d and %d share the full vector %q",
						x.ID(), nb.ID(), x.MembershipVector())
				}
			}
		}
	}
	if viols := d.g.BalanceViolations(d.cfg.A); len(viols) > 0 {
		return fmt.Errorf("balance: %d violation(s), first: %s", len(viols), viols[0])
	}
	if dummies != d.dummyCount {
		return fmt.Errorf("dummies: bookkeeping says %d, graph holds %d", d.dummyCount, dummies)
	}
	if len(d.st) != d.g.N() {
		return fmt.Errorf("state: %d state entries for %d nodes", len(d.st), d.g.N())
	}
	for x := range d.g.All() {
		sx, ok := d.st[x]
		if !ok {
			return fmt.Errorf("state: node %d has no DSG state", x.ID())
		}
		if sx.B < 0 {
			return fmt.Errorf("state: node %d has negative group-base %d", x.ID(), sx.B)
		}
		for i := 0; i < sx.B && i < len(sx.T); i++ {
			if sx.T[i] != 0 {
				return fmt.Errorf("state: node %d has timestamp %d at level %d below base %d",
					x.ID(), sx.T[i], i, sx.B)
			}
		}
		if x.BitsLen() >= len(sx.G)+1 {
			return fmt.Errorf("state: node %d vector depth %d exceeds group state %d",
				x.ID(), x.BitsLen(), len(sx.G))
		}
	}
	return nil
}

// RepairBalance restores the a-balance property across the whole graph and
// returns how many dummies it inserted and removed. Over-long runs are
// first shortened by dropping redundant dummies (ones whose removal leaves
// every list balanced); only all-real or irreducible runs get a fresh dummy
// chain-breaker. One repair pass can itself lengthen a run at a lower level
// (a new dummy carries the prefix bits of its left neighbour), so the
// repair iterates to a fixed point. This is the global fallback: the hot
// paths (Add, RemoveNode, the trace runner) use RepairBalanceIn over the
// lists they actually touched; callers constructing a DSG from a random
// topology (whose independent membership bits carry no balance guarantee)
// run the global repair once before enforcing Validate.
func (d *DSG) RepairBalance() (inserted, removed int) {
	// A global repair supersedes any recorded per-request dirty set.
	d.pending = d.pending[:0]
	// Each pass strictly shrinks the total violation mass except for the
	// rare lower-level lengthening, so a generous cap only guards against a
	// repair that cannot make progress (key-space exhaustion).
	for pass := 0; pass < 4*d.g.N()+16; pass++ {
		ins, rem, _ := d.repairViolations(d.g.BalanceViolations(d.cfg.A))
		inserted += ins
		removed += rem
		if ins == 0 && rem == 0 {
			break
		}
	}
	// Garbage-collect dummies the repairs above (or earlier transformations)
	// left redundant: any dummy whose removal keeps every list balanced is
	// pure overhead — it stretches routing paths without breaking a chain.
	// Removal only shortens runs, so one dummy's departure can make another
	// removable; sweep until a pass finds nothing.
	var extRefs []skipgraph.ListRef
	for {
		swept := 0
		var dummies []*skipgraph.Node
		for x := range d.g.All() {
			if x.IsDummy() {
				dummies = append(dummies, x)
			}
		}
		for _, x := range dummies {
			if d.dummyRemovable(x) {
				extRefs = append(extRefs, d.removeDummy(x)...)
				swept++
			}
		}
		removed += swept
		if swept == 0 {
			break
		}
	}
	d.repairInserted += inserted
	d.repairRemoved += removed
	// A distinctness extension during GC creates new list memberships that
	// can carry fresh a-balance violations; chase them scoped.
	if len(extRefs) > 0 {
		ins, rem := d.RepairBalanceIn(extRefs)
		inserted += ins
		removed += rem
	}
	return inserted, removed
}

// RepairBalanceIn restores the a-balance property over the given dirty
// lists only, iterating to a fixed point: every repair action (dummy
// insertion or removal) adds the lists it touched to the dirty set, so
// knock-on violations at lower levels are chased without ever rescanning
// untouched parts of the graph. Lists outside the dirty set cannot have
// new violations by construction — the local join, leave, and repair
// operations report every list whose membership or bits they changed.
// Validate (global) remains the correctness oracle for that claim.
func (d *DSG) RepairBalanceIn(refs []skipgraph.ListRef) (inserted, removed int) {
	// Each pass scans only the frontier — the refs new since the previous
	// pass. That loses nothing: a list can only gain a violation through a
	// repair action, and every action self-reports its lists in `touched`
	// (a run still over-long after a break is adjacent to the inserted
	// dummy, whose windowed refs cover it). The accumulated set is kept for
	// the garbage-collection phase below.
	frontier := refs
	for len(frontier) > 0 {
		var dirty []skipgraph.ListRef
		for pass := 0; pass < 4*d.g.N()+16 && len(frontier) > 0; pass++ {
			dirty = append(dirty, frontier...)
			viols, scanned := d.g.BalanceViolationsIn(d.cfg.A, frontier)
			d.repairScan += scanned
			ins, rem, touched := d.repairViolations(viols)
			inserted += ins
			removed += rem
			frontier = touched
		}
		// Scoped garbage collection: only a dummy inside a dirty list can have
		// had the run it was breaking shortened, so only those can have become
		// redundant since the last repair. After the first sweep, only the
		// lists around a removal can hold newly redundant dummies.
		var extRefs []skipgraph.ListRef
		gcFrontier := dirty
		for {
			swept := 0
			var next []skipgraph.ListRef
			for _, x := range d.dummiesIn(gcFrontier) {
				if d.g.ByKey(x.Key()) == x && d.dummyRemovable(x) {
					next = append(next, skipgraph.ExListRefs(x)...)
					ext := d.removeDummy(x)
					next = append(next, ext...)
					extRefs = append(extRefs, ext...)
					swept++
				}
			}
			removed += swept
			if swept == 0 {
				break
			}
			gcFrontier = next
		}
		// A removal that forced a distinctness extension created new list
		// memberships; those can carry fresh a-balance violations, so they
		// become the next round's frontier.
		frontier = extRefs
	}
	d.repairInserted += inserted
	d.repairRemoved += removed
	return inserted, removed
}

// RepairBalancePending repairs a-balance over the lists the most recent
// transformation touched (recorded by Serve) and clears the record. The
// trace runner calls it after every route; callers driving Serve directly
// may use it as the cheap alternative to the global RepairBalance.
func (d *DSG) RepairBalancePending() (inserted, removed int) {
	refs := d.pending
	d.pending = nil
	return d.RepairBalanceIn(refs)
}

// repairViolations repairs one violation snapshot (shorten a run by
// dropping a redundant in-run dummy, else break it with a fresh dummy
// chain-breaker) and returns the action counts plus a ListRef for every
// list the actions touched — the knock-on dirty set a scoped repair must
// re-examine.
func (d *DSG) repairViolations(viols []skipgraph.BalanceViolation) (inserted, removed int, touched []skipgraph.ListRef) {
	a := d.cfg.A
	for _, viol := range viols {
		start := d.g.ByKey(viol.Start)
		if start == nil || !start.HasBit(viol.Level+1) || start.Bit(viol.Level+1) != viol.Bit {
			continue
		}
		// Recompute the run from the live links — an earlier repair in this
		// pass may have shortened or shifted the snapshot's run — without
		// ever materializing the containing list (level-0 lists span the
		// whole graph).
		run := []*skipgraph.Node{start}
		for y := start.Next(viol.Level); y != nil && y.HasBit(viol.Level+1) && y.Bit(viol.Level+1) == viol.Bit; y = y.Next(viol.Level) {
			run = append(run, y)
		}
		if len(run) <= a {
			continue
		}
		// Prefer shortening the run by dropping a redundant in-run dummy —
		// one whose removal leaves every list it touches balanced. That
		// keeps the dummy population bounded instead of growing a breaker
		// for every leak.
		dropped := false
		for _, y := range run {
			if y.IsDummy() && d.dummyRemovable(y) {
				touched = append(touched, skipgraph.ExListRefs(y)...)
				touched = append(touched, d.removeDummy(y)...)
				removed++
				dropped = true
				break
			}
		}
		if dropped {
			continue
		}
		// Break the run after its a-th member if that gap has a free key;
		// otherwise fall back to any other interior gap — every interior
		// break strictly shortens the run, so the fixed-point loop still
		// converges.
		gaps := make([]int, 0, len(run)-1)
		for j := a - 1; j < len(run)-1; j++ {
			gaps = append(gaps, j)
		}
		for j := a - 2; j >= 0; j-- {
			gaps = append(gaps, j)
		}
		for _, j := range gaps {
			left, right := run[j], run[j+1]
			key, ok := d.staticFreeKey(left.Key(), right.Key())
			if !ok {
				continue
			}
			id := d.nextDummyID
			d.nextDummyID++
			dm := skipgraph.NewDummy(key, id)
			for i := 1; i <= viol.Level; i++ {
				dm.SetBit(i, left.Bit(i))
			}
			dm.SetBit(viol.Level+1, 1-viol.Bit)
			s := &nodeState{B: viol.Level + 1}
			s.ensure(viol.Level + 2)
			for i := range s.G {
				s.G[i] = id
			}
			d.st[dm] = s
			d.g.SpliceIn(dm)
			d.dummyCount++
			inserted++
			for l := 0; l <= dm.MaxLinkedLevel(); l++ {
				touched = append(touched, skipgraph.ListRef{Node: dm, Level: l})
			}
			break
		}
	}
	return inserted, removed, touched
}

// dummiesIn collects the live dummies appearing in any of the given dirty
// regions, in key order (the same order the global garbage-collection
// sweep visits them). Only these can have become redundant: removability
// depends solely on the runs around a dummy, and those changed only inside
// the dirty windows.
func (d *DSG) dummiesIn(refs []skipgraph.ListRef) []*skipgraph.Node {
	seen := make(map[*skipgraph.Node]bool)
	var out []*skipgraph.Node
	for _, ref := range refs {
		window, scanned := d.g.Window(ref)
		d.repairScan += scanned
		for _, y := range window {
			if y.IsDummy() && !seen[y] {
				seen[y] = true
				out = append(out, y)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key().Less(out[j].Key()) })
	return out
}

// RepairStats returns the cumulative number of dummy insertions and
// removals RepairBalance has performed over the DSG's lifetime.
func (d *DSG) RepairStats() (inserted, removed int) {
	return d.repairInserted, d.repairRemoved
}

// LocalityWork returns the cumulative deterministic work counters of the
// scoped membership paths: nodes examined while splicing local joins, and
// nodes scanned by scoped balance repairs. Experiment E16 reports their
// per-event deltas to demonstrate sublinear per-join cost.
func (d *DSG) LocalityWork() (joinScan, repairScan int) {
	return d.joinScan, d.repairScan
}
