package core

import (
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

var (
	crashFuzzSeeds  = flag.Int("crashfuzz.seeds", 3, "number of random seeds for the crash fuzz test")
	crashFuzzEvents = flag.Int("crashfuzz.events", 800, "events per crash fuzz seed")
)

// This file extends the churn fuzz with crash failures: ops additionally
// crash live nodes in place ('c') and probe crashed peers ('p', a stale
// client contacting the corpse — the detection that triggers its repair).
// Routes between live nodes run over a graph that may contain dead nodes, so
// they exercise the dead-end rerouting and the in-transform corpse sweep.
// The oracle tracks BOTH populations: the live id set and the set of crashed
// ids not yet repaired (still physically present in every list). After every
// op, the crash-repair log reconciles the dead oracle — whichever path
// repaired a corpse (probe, route detection, transform sweep), the oracle
// learns exactly which ids left the graph — and the full validator plus the
// population check must pass.

// genCrashFuzzOps builds a random op sequence that is valid when replayed
// from the start. The generator's own membership model assumes every crashed
// id is still probe-able (probes of already-repaired ids are skipped at
// replay time, like any op shrinking made inapplicable).
func genCrashFuzzOps(rng *rand.Rand, n, count int) []fuzzOp {
	live := make([]int64, n)
	for i := range live {
		live[i] = int64(i)
	}
	var crashed []int64
	next := int64(n)
	ops := make([]fuzzOp, 0, count)
	for len(ops) < count {
		switch r := rng.Float64(); {
		case r < 0.60:
			i, j := rng.Intn(len(live)), rng.Intn(len(live))
			if i == j {
				continue
			}
			ops = append(ops, fuzzOp{Kind: 'r', A: live[i], B: live[j]})
		case r < 0.72:
			ops = append(ops, fuzzOp{Kind: 'j', A: next})
			live = append(live, next)
			next++
		case r < 0.80:
			if len(live) <= 3 {
				continue
			}
			i := rng.Intn(len(live))
			ops = append(ops, fuzzOp{Kind: 'l', A: live[i]})
			live = append(live[:i], live[i+1:]...)
		case r < 0.92:
			if len(live) <= 3 {
				continue
			}
			i := rng.Intn(len(live))
			ops = append(ops, fuzzOp{Kind: 'c', A: live[i]})
			crashed = append(crashed, live[i])
			live = append(live[:i], live[i+1:]...)
		default:
			if len(crashed) == 0 {
				continue
			}
			ops = append(ops, fuzzOp{Kind: 'p', A: crashed[rng.Intn(len(crashed))]})
		}
	}
	return ops
}

// runCrashFuzz replays an op sequence against a fresh DSG and the two-set
// oracle, asserting the full validator and population agreement after every
// applied op. Inapplicable ops (possible after shrinking) are skipped. It
// returns the index of the first failing op, or -1.
func runCrashFuzz(n, a int, seed int64, ops []fuzzOp) (int, error) {
	d := New(n, Config{A: a, Seed: seed})
	d.RepairBalance()
	if err := d.Validate(); err != nil {
		return 0, fmt.Errorf("invalid before any op: %w", err)
	}
	live := make([]int64, n)
	for i := range live {
		live[i] = int64(i)
	}
	var dead []int64 // crashed, not yet repaired — sorted ascending
	find := func(s []int64, id int64) int {
		i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
		if i < len(s) && s[i] == id {
			return i
		}
		return -1
	}
	insert := func(s []int64, id int64) []int64 {
		pos := sort.Search(len(s), func(i int) bool { return s[i] >= id })
		s = append(s, 0)
		copy(s[pos+1:], s[pos:])
		s[pos] = id
		return s
	}
	d.DrainCrashRepairs()
	for i, op := range ops {
		switch op.Kind {
		case 'r':
			if find(live, op.A) < 0 || find(live, op.B) < 0 || op.A == op.B {
				continue
			}
			// Dead nodes count like dummies for the distance allowance: the
			// a-balance invariant exempts them, so they can pad runs until a
			// detection splices them out.
			bound := d.Graph().MaxSearchPath(a) + d.DummyCount() + len(dead)
			res, err := d.Serve(op.A, op.B)
			if err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			d.RepairBalancePending()
			if res.RouteDistance > bound {
				return i, fmt.Errorf("%s: distance %d exceeds a·H+dummies+dead = %d", op, res.RouteDistance, bound)
			}
		case 'j':
			if find(live, op.A) >= 0 || find(dead, op.A) >= 0 {
				continue
			}
			if _, err := d.Add(op.A); err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			live = insert(live, op.A)
		case 'l':
			pos := find(live, op.A)
			if pos < 0 || len(live) <= 3 {
				continue
			}
			if err := d.RemoveNode(op.A); err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			live = append(live[:pos], live[pos+1:]...)
		case 'c':
			pos := find(live, op.A)
			if pos < 0 || len(live) <= 3 {
				continue
			}
			if err := d.Crash(op.A); err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			live = append(live[:pos], live[pos+1:]...)
			dead = insert(dead, op.A)
		case 'p':
			if find(dead, op.A) < 0 {
				continue // already repaired by a route detection
			}
			if !d.RepairCrashedID(op.A) {
				return i, fmt.Errorf("%s: corpse %d in oracle but repair declined", op, op.A)
			}
		}
		for _, id := range d.DrainCrashRepairs() {
			if pos := find(dead, id); pos >= 0 {
				dead = append(dead[:pos], dead[pos+1:]...)
			} else {
				return i, fmt.Errorf("%s: repaired id %d was not in the dead oracle", op, id)
			}
		}
		if err := d.Validate(); err != nil {
			return i, fmt.Errorf("%s: %w", op, err)
		}
		if err := checkCrashOracle(d, live, dead); err != nil {
			return i, fmt.Errorf("%s: %w", op, err)
		}
	}
	return -1, nil
}

// checkCrashOracle compares the DSG's real-node population against the
// merged live+dead oracle and the graph's own dead list against the dead
// oracle.
func checkCrashOracle(d *DSG, live, dead []int64) error {
	want := make([]int64, 0, len(live)+len(dead))
	want = append(want, live...)
	want = append(want, dead...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if got := d.Graph().RealN(); got != len(want) {
		return fmt.Errorf("oracle: %d real nodes, want %d (%d live + %d dead)",
			got, len(want), len(live), len(dead))
	}
	var ids []int64
	for _, x := range d.Graph().Nodes() {
		if !x.IsDummy() {
			ids = append(ids, x.ID())
		}
	}
	for i, id := range ids {
		if id != want[i] {
			return fmt.Errorf("oracle: position %d holds id %d, want %d", i, id, want[i])
		}
	}
	got := d.CrashedIDs()
	if len(got) != len(dead) {
		return fmt.Errorf("oracle: %d crashed ids in graph, want %d", len(got), len(dead))
	}
	for i, id := range got {
		if id != dead[i] {
			return fmt.Errorf("oracle: crashed position %d holds id %d, want %d", i, id, dead[i])
		}
	}
	return nil
}

// shrinkCrashFuzz is ddmin-style chunk removal over runCrashFuzz.
func shrinkCrashFuzz(n, a int, seed int64, ops []fuzzOp, budget int) []fuzzOp {
	if idx, err := runCrashFuzz(n, a, seed, ops); err != nil && idx+1 < len(ops) {
		ops = ops[:idx+1]
	}
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(ops) && budget > 0; {
			cand := make([]fuzzOp, 0, len(ops)-chunk)
			cand = append(cand, ops[:start]...)
			cand = append(cand, ops[start+chunk:]...)
			budget--
			if _, err := runCrashFuzz(n, a, seed, cand); err != nil {
				ops = cand
			} else {
				start += chunk
			}
		}
	}
	return ops
}

// TestCrashFuzz is the randomized crash-failure harness: for each seed it
// replays hundreds of random route/join/leave/crash/probe events against the
// two-set oracle, asserting the full-graph validator after every op (so
// every repair path — probe detection, route detection, transform sweep —
// restores the complete invariant set). A failure is shrunk to a minimal
// reproducing sequence before reporting.
func TestCrashFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz is slow")
	}
	const n = 24
	for _, a := range []int{2, 4} {
		for s := 0; s < *crashFuzzSeeds; s++ {
			seed := int64(2000*a + s)
			t.Run(fmt.Sprintf("a=%d/seed=%d", a, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				ops := genCrashFuzzOps(rng, n, *crashFuzzEvents)
				idx, err := runCrashFuzz(n, a, seed, ops)
				if err == nil {
					return
				}
				min := shrinkCrashFuzz(n, a, seed, ops, 400)
				t.Fatalf("op %d failed: %v\nminimal reproduction (n=%d a=%d seed=%d, %d ops):\n%v",
					idx, err, n, a, seed, len(min), min)
			})
		}
	}
}
