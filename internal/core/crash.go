package core

import (
	"errors"
	"fmt"
	"sort"

	"lsasg/internal/skipgraph"
)

// This file is the crash-failure path: fault injection (Crash) plus the
// decentralized repair that detection triggers. A crash marks the node dead
// in place — no leave-side protocol runs, every neighbour keeps a dangling
// reference — and the graph stays fully valid structurally; only routes that
// try to contact the dead peer fail (skipgraph.DeadRouteError). Repair is
// scoped exactly like a graceful leave: the dead node's ex-lists
// (skipgraph.ExListRefs) are the entire dirty set, and RepairBalanceIn
// restores the a-balance invariant over just those lists. No global
// coordination, matching Interlaced's decentralized churn stabilization and
// the Rainbow Skip Graph's local fault recovery.

// ErrCrashedNode is wrapped by Serve and Adjust when an endpoint has
// crashed but not yet been repaired. A free-running engine with
// TolerateAdjustMiss matches it (errors.Is): an adjustment whose endpoint
// crashed between route and apply is expected under failures, not an engine
// fault.
var ErrCrashedNode = errors.New("core: crashed node")

// Crash marks the real node with the given id as crashed: it vanishes from
// the request-serving population without any repair, leaving its links —
// its neighbours' dangling references — untouched until a route detects it.
// Crashing an unknown id errors (wrapping ErrUnknownNode); crashing an
// already-dead node is a no-op, so Crash is idempotent.
func (d *DSG) Crash(id int64) error {
	n := d.NodeByID(id)
	if n == nil {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if n.Dead() {
		return nil
	}
	d.g.Crash(n.Key())
	d.crashCount++
	return nil
}

// repairCrashed splices a detected dead node out of every list it occupied,
// restores vector distinctness among its surviving neighbours, and repairs
// a-balance over exactly the touched lists. The refs are anchored at
// surviving neighbours (ExListRefs), so the repair is as scoped as a
// graceful leave: the departure can only have merged same-bit runs around
// the vacated positions.
//
// The distinctness step is the one repair a graceful leave never needs: a
// corpse is exempt from the distinctness invariant (like a dummy), so it may
// be the only separator between two live nodes sharing a full membership
// prefix — its removal brings them adjacent at their top level, and they
// must extend their vectors until distinct again (localJoin's rule, run in
// reverse).
func (d *DSG) repairCrashed(n *skipgraph.Node) {
	refs := skipgraph.ExListRefs(n)
	var cands []*skipgraph.Node
	for l := 0; l <= n.MaxLinkedLevel(); l++ {
		for _, nb := range []*skipgraph.Node{n.Prev(l), n.Next(l)} {
			if nb != nil && !nb.IsDummy() && !nb.Dead() {
				cands = append(cands, nb)
			}
		}
	}
	d.g.Remove(n.Key())
	delete(d.st, n)
	d.crashRepairCount++
	d.crashRepairLog = append(d.crashRepairLog, n.ID())
	eff := d.g.ExtendDistinctFrom(cands, func(*skipgraph.Node, int) byte { return byte(d.rng.Intn(2)) })
	for _, x := range eff.Extended {
		d.syncStateDepthFor(x)
	}
	d.RepairBalanceIn(append(refs, eff.Touched...))
}

// RepairCrashedID repairs the crashed node with the given id and reports
// whether a repair ran. It is idempotent: an id that is absent (already
// repaired, or never existed) or alive is a no-op, so duplicate repair
// requests — the same failure detected by many routes — are safe.
func (d *DSG) RepairCrashedID(id int64) bool {
	n := d.NodeByID(id)
	if n == nil || !n.Dead() {
		return false
	}
	d.repairCrashed(n)
	return true
}

// RepairAllCrashed sweeps every still-dead node through the scoped crash
// repair and returns how many it repaired. It models an anti-entropy pass; the
// hot path is detection-triggered per-node repair.
func (d *DSG) RepairAllCrashed() int {
	repaired := 0
	for _, n := range d.g.DeadNodes() {
		d.repairCrashed(n)
		repaired++
	}
	return repaired
}

// CrashedIDs returns the ids of crashed nodes awaiting repair, ascending.
func (d *DSG) CrashedIDs() []int64 {
	var ids []int64
	for _, n := range d.g.DeadNodes() {
		ids = append(ids, n.ID())
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CrashStats returns the cumulative crash counters: nodes crashed, dead
// peers detected (at route or transform time), and crash repairs completed.
func (d *DSG) CrashStats() (crashes, detections, repairs int) {
	return d.crashCount, d.crashDetectCount, d.crashRepairCount
}

// DrainCrashRepairs returns the ids repaired since the previous call, in
// repair order, and clears the log. The trace runner drains it after every
// event to compute per-crash time-to-recovery.
func (d *DSG) DrainCrashRepairs() []int64 {
	out := d.crashRepairLog
	d.crashRepairLog = nil
	return out
}
