package core

import (
	"strings"
	"testing"

	"lsasg/internal/amf"
	"lsasg/internal/skipgraph"
)

// Figure 4 of the paper walks one full DSG transformation: nodes U and V
// communicate at time 8 in skip graph S8 and the algorithm produces S9,
// with specific lists, groups, and timestamps (the paper "assumes" the
// medians M_0 = 2 and M_1 = 5, which we inject via a ScriptedFinder).
//
// Node identifiers are alphabet positions: B=2, D=4, E=5, F=6, G=7, H=8,
// I=9, J=10, U=21, V=22.

const (
	nB = 2
	nD = 4
	nE = 5
	nF = 6
	nG = 7
	nH = 8
	nI = 9
	nJ = 10
	nU = 21
	nV = 22
)

// buildS8 reconstructs the S8 skip graph of Fig 4(b) with its DSG state.
func buildS8(t *testing.T) *DSG {
	t.Helper()
	g := skipgraph.NewFromVectors([]skipgraph.VectorEntry{
		{Key: nB, ID: nB, Vector: "10"},
		{Key: nD, ID: nD, Vector: "11"},
		{Key: nE, ID: nE, Vector: "001"},
		{Key: nF, ID: nF, Vector: "01"},
		{Key: nG, ID: nG, Vector: "10"},
		{Key: nH, ID: nH, Vector: "000"},
		{Key: nI, ID: nI, Vector: "01"},
		{Key: nJ, ID: nJ, Vector: "000"},
		{Key: nU, ID: nU, Vector: "11"},
		{Key: nV, ID: nV, Vector: "001"},
	})
	d := NewFromGraph(g, Config{
		A:      4,
		Seed:   1,
		Finder: &ScriptedFinder{Script: []amf.Value{amf.Finite(2), amf.Finite(5)}},
	})
	set := func(id int64, ts, groups []int64, dom []bool, base int) {
		n := d.NodeByID(id)
		if n == nil {
			t.Fatalf("missing node %d", id)
		}
		d.SetStateForTest(n, ts, groups, dom, base)
	}
	// Timestamps and groups from Fig 4(b); U's group {B,G,D,U} carries id 2
	// (B), V's group {V,E} id 5 (E), H/J id 10, F/I id 6 per §IV-C's
	// example. D flags record that {B,G} formed a 0-subgraph at level 2 and
	// {E,H,J,V} one at level 2, {H,J} at level 3.
	set(nB, []int64{0, 4, 6, 0}, []int64{2, 2, 2, 2}, []bool{false, false, true, false}, 1)
	set(nG, []int64{0, 4, 6, 0}, []int64{2, 2, 2, 7}, []bool{false, false, true, false}, 1)
	set(nD, []int64{0, 4, 4, 0}, []int64{2, 2, 4, 4}, nil, 1)
	set(nU, []int64{0, 2, 2, 0}, []int64{2, 2, 4, 21}, nil, 1)
	set(nE, []int64{0, 0, 0, 5}, []int64{5, 5, 5, 5}, []bool{false, false, true, false}, 3)
	set(nV, []int64{0, 0, 0, 5}, []int64{5, 5, 5, 5}, []bool{false, false, true, true}, 3)
	set(nH, []int64{0, 0, 0, 7}, []int64{10, 10, 10, 10}, []bool{false, false, true, true}, 3)
	set(nJ, []int64{0, 0, 0, 7}, []int64{10, 10, 10, 10}, []bool{false, false, true, true}, 3)
	set(nF, []int64{0, 0, 1, 0}, []int64{6, 6, 6, 6}, nil, 2)
	set(nI, []int64{0, 0, 1, 0}, []int64{6, 6, 6, 6}, nil, 2)
	d.SetClockForTest(7) // the request U→V arrives at time 8
	return d
}

// listIDs returns the sorted ids of the level-`level` list containing id.
func listIDs(d *DSG, id int64, level int) []int64 {
	n := d.NodeByID(id)
	var ids []int64
	for _, x := range d.Graph().ListAt(n, level) {
		if !x.IsDummy() {
			ids = append(ids, x.ID())
		}
	}
	return ids
}

func sameIDs(got []int64, want ...int64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestFigure4Transformation replays the S8 → S9 transformation and checks
// the resulting structure against Fig 4(c).
func TestFigure4Transformation(t *testing.T) {
	d := buildS8(t)
	res, err := d.Serve(nU, nV)
	if err != nil {
		t.Fatalf("Serve(U, V): %v", err)
	}
	if res.Alpha != 0 {
		t.Errorf("alpha = %d, want 0 (the paper: highest common level of U and V is 0)", res.Alpha)
	}

	// S9 level 1: 0-subgraph {D, U, V, E, B, G}, 1-subgraph {F, I, H, J}.
	if got := listIDs(d, nU, 1); !sameIDs(got, nB, nD, nE, nG, nU, nV) {
		t.Errorf("level-1 list of U = %v, want [B D E G U V]", got)
	}
	if got := listIDs(d, nF, 1); !sameIDs(got, nF, nH, nI, nJ) {
		t.Errorf("level-1 list of F = %v, want [F H I J]", got)
	}
	// S9 level 2: {U, V, E} and {B, G, D}; {F, I} and {H, J}.
	if got := listIDs(d, nU, 2); !sameIDs(got, nE, nU, nV) {
		t.Errorf("level-2 list of U = %v, want [E U V]", got)
	}
	if got := listIDs(d, nB, 2); !sameIDs(got, nB, nD, nG) {
		t.Errorf("level-2 list of B = %v, want [B D G]", got)
	}
	if got := listIDs(d, nF, 2); !sameIDs(got, nF, nI) {
		t.Errorf("level-2 list of F = %v, want [F I]", got)
	}
	if got := listIDs(d, nH, 2); !sameIDs(got, nH, nJ) {
		t.Errorf("level-2 list of H = %v, want [H J]", got)
	}
	// S9 level 3: {U, V} directly linked, {E} alone, {B, G}, {D}.
	if got := listIDs(d, nU, 3); !sameIDs(got, nU, nV) {
		t.Errorf("level-3 list of U = %v, want [U V]", got)
	}
	if ok, lvl := d.Graph().DirectlyLinked(d.NodeByID(nU), d.NodeByID(nV)); !ok || lvl != 3 {
		t.Errorf("U-V direct link at level %d (ok=%v), want level 3", lvl, ok)
	}
	if got := listIDs(d, nE, 3); !sameIDs(got, nE) {
		t.Errorf("level-3 list of E = %v, want [E]", got)
	}
	if got := listIDs(d, nB, 3); !sameIDs(got, nB, nG) {
		t.Errorf("level-3 list of B = %v, want [B G] (the D-flag split of gs={B,G,D})", got)
	}
	if got := listIDs(d, nD, 3); !sameIDs(got, nD) {
		t.Errorf("level-3 list of D = %v, want [D]", got)
	}

	// Timestamps of Fig 4(c). Columns are levels 0..3.
	wantTS := map[int64][4]int64{
		nU: {0, 2, 5, 8},
		nV: {0, 2, 5, 8},
		nE: {0, 2, 5, 5},
		nB: {0, 2, 4, 6},
		nG: {0, 2, 4, 6},
		nD: {0, 2, 4, 4},
		nF: {0, 0, 1, 0},
		nI: {0, 0, 1, 0},
		nH: {0, 0, 7, 7},
		nJ: {0, 0, 7, 7},
	}
	for id, want := range wantTS {
		n := d.NodeByID(id)
		for lvl := 0; lvl < 4; lvl++ {
			if id == nF || id == nI {
				if lvl == 3 {
					continue // F and I are singleton below level 3; Fig 4(c) truncates
				}
			}
			if got := d.Timestamp(n, lvl); got != want[lvl] {
				t.Errorf("T[%s][%d] = %d, want %d", nodeName(id), lvl, got, want[lvl])
			}
		}
	}

	// Group ids: the merged group carries u's identifier (21) at levels
	// 0..2 for the pair's lists; {B, G, D} at level 2 takes the left-most
	// member's id (B = 2), per the paper's caption ("the group of node B at
	// level 2 has 3 nodes").
	for _, id := range []int64{nU, nV, nE} {
		if got := d.Group(d.NodeByID(id), 2); got != nU {
			t.Errorf("G[%s][2] = %d, want 21", nodeName(id), got)
		}
	}
	for _, id := range []int64{nB, nG, nD} {
		if got := d.Group(d.NodeByID(id), 2); got != nB {
			t.Errorf("G[%s][2] = %d, want 2 (left-most of split group)", nodeName(id), got)
		}
	}

	if err := d.Graph().Verify(); err != nil {
		t.Errorf("post-transformation Verify: %v", err)
	}
}

// TestFigure4Priorities checks the P1/P2/P3 priority assignment of §IV-C
// on the S8 fixture: P(U)=P(V)=∞, P(D)=P(G)=P(B)=2, P(E)=5, and H/J/F/I
// take band priorities -G·t + T.
func TestFigure4Priorities(t *testing.T) {
	d := buildS8(t)
	u, v := d.NodeByID(nU), d.NodeByID(nV)
	ctx := &transformCtx{
		u: u, v: v, t: 8, alpha: 0,
		oldT:    make(map[*skipgraph.Node][]int64),
		oldG:    make(map[*skipgraph.Node][]int64),
		oldBits: make(map[*skipgraph.Node]string),
		pri:     make(map[*skipgraph.Node]priority),
	}
	for _, x := range d.Graph().Nodes() {
		ctx.members = append(ctx.members, x)
		s := d.state(x)
		ctx.oldT[x] = append([]int64(nil), s.T...)
		ctx.oldG[x] = append([]int64(nil), s.G...)
		ctx.oldBits[x] = x.MembershipVector()
	}
	d.computePriorities(ctx)

	want := map[int64]amf.Value{
		nU: amf.Infinite(),
		nV: amf.Infinite(),
		nB: amf.Finite(2),
		nG: amf.Finite(2),
		nD: amf.Finite(2),
		nE: amf.Finite(5),
		nH: amf.Finite(-10*8 + 0),
		nJ: amf.Finite(-10*8 + 0),
		nF: amf.Finite(-6*8 + 0),
		nI: amf.Finite(-6*8 + 0),
	}
	for id, w := range want {
		got := ctx.pri[d.NodeByID(id)]
		if got.Cmp(w) != 0 {
			t.Errorf("P(%s) = %v, want %v", nodeName(id), got, w)
		}
	}
}

func nodeName(id int64) string {
	names := map[int64]string{nB: "B", nD: "D", nE: "E", nF: "F", nG: "G",
		nH: "H", nI: "I", nJ: "J", nU: "U", nV: "V"}
	return names[id]
}

// TestFigure4Rendering exercises the tree view on the reconstructed S8 so
// the dsgviz output format is pinned.
func TestFigure4Rendering(t *testing.T) {
	d := buildS8(t)
	tree := d.Graph().TreeView()
	out := tree.RenderLevels(func(n *skipgraph.Node) string { return nodeName(n.ID()) }, nil)
	wantLines := []string{
		"L0: B D E F G H I J U V",
		"L1: E F H I J V | B D G U",
		"L2: E H J V | F I | B G | D U",
		"L3: H J | E V",
	}
	got := strings.Split(strings.TrimSpace(out), "\n")
	if len(got) != len(wantLines) {
		t.Fatalf("rendered %d lines, want %d:\n%s", len(got), len(wantLines), out)
	}
	for i, w := range wantLines {
		if got[i] != w {
			t.Errorf("line %d = %q, want %q", i, got[i], w)
		}
	}
}
