// Package core implements the paper's primary contribution: the Dynamic
// Skip Graphs (DSG) self-adjusting algorithm (§IV). Upon a communication
// request (u, v), DSG routes with the standard skip-graph routing and then
// locally and partially transforms the topology so that u and v share a
// linked list of size two, while preserving the working-set property for
// non-communicating groups and keeping the height O(log n).
//
// The algorithm state per node is exactly the paper's: a membership vector,
// a timestamp T and a group-id G per level, an is-dominating-group bit D
// per level, and a group-base B — O(log n) words per node.
package core

import (
	"math/rand"
	"sort"

	"lsasg/internal/amf"
)

// MedianResult is what a split step needs from a median-finding run: the
// approximate median itself, the synchronous-round cost, and the reusable
// count/broadcast primitives backed by the balanced skip list the run built.
type MedianResult struct {
	Median amf.Value
	Rounds int
	// CountRounds is the round cost of one distributed count over the list.
	CountRounds int
	// BroadcastRounds is the round cost of one list-wide broadcast.
	BroadcastRounds int
}

// MedianFinder abstracts the approximate-median subroutine so tests can
// substitute exact or scripted medians (e.g. to replay the paper's Fig 4).
type MedianFinder interface {
	FindMedian(values []amf.Value) MedianResult
}

// AMFFinder runs the paper's randomized AMF algorithm (§V).
type AMFFinder struct {
	A   int
	Rng *rand.Rand
}

// FindMedian implements MedianFinder.
func (f *AMFFinder) FindMedian(values []amf.Value) MedianResult {
	res := amf.Find(values, f.A, f.Rng)
	// Counts of |gs|, L_low, L_high reuse the same skip list, so the
	// per-count cost equals one distributed sum over it.
	_, countRounds := res.Count(func(int) bool { return true })
	return MedianResult{
		Median:          res.Median,
		Rounds:          res.Rounds,
		CountRounds:     countRounds,
		BroadcastRounds: res.BroadcastRounds(),
	}
}

// ExactFinder returns the true median (lower median) with an idealized
// logarithmic round cost. Used in tests to remove approximation noise.
type ExactFinder struct{}

// FindMedian implements MedianFinder.
func (ExactFinder) FindMedian(values []amf.Value) MedianResult {
	sorted := append([]amf.Value(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	m := sorted[(len(sorted)-1)/2]
	r := logCeil(len(values)) + 1
	return MedianResult{Median: m, Rounds: r, CountRounds: r, BroadcastRounds: r}
}

// ScriptedFinder replays a fixed sequence of medians, one per FindMedian
// call in transformation order, for reconstructing the paper's worked
// example (Fig 4, which "assumes" specific median values). After the script
// is exhausted it falls back to the exact median.
type ScriptedFinder struct {
	Script []amf.Value
	next   int
}

// FindMedian implements MedianFinder.
func (f *ScriptedFinder) FindMedian(values []amf.Value) MedianResult {
	if f.next < len(f.Script) {
		m := f.Script[f.next]
		f.next++
		r := logCeil(len(values)) + 1
		return MedianResult{Median: m, Rounds: r, CountRounds: r, BroadcastRounds: r}
	}
	return ExactFinder{}.FindMedian(values)
}

func logCeil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}
