package core

import (
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

var (
	fuzzSeeds  = flag.Int("churnfuzz.seeds", 3, "number of random seeds for the churn fuzz test")
	fuzzEvents = flag.Int("churnfuzz.events", 1200, "events per churn fuzz seed")
)

// fuzzOp is one randomized operation against the DSG under test. The crash
// fuzz (crash_fuzz_test.go) reuses it with two extra kinds.
type fuzzOp struct {
	Kind byte  // 'r' route, 'j' join, 'l' leave, 'c' crash, 'p' probe corpse
	A, B int64 // route endpoints, or the subject id in A
}

func (op fuzzOp) String() string {
	switch op.Kind {
	case 'r':
		return fmt.Sprintf("route(%d,%d)", op.A, op.B)
	case 'j':
		return fmt.Sprintf("join(%d)", op.A)
	case 'c':
		return fmt.Sprintf("crash(%d)", op.A)
	case 'p':
		return fmt.Sprintf("probe(%d)", op.A)
	default:
		return fmt.Sprintf("leave(%d)", op.A)
	}
}

// genFuzzOps builds a random op sequence that is valid when replayed from
// the start: routes touch live ids, joins mint fresh ids, leaves keep the
// population above two.
func genFuzzOps(rng *rand.Rand, n, count int) []fuzzOp {
	live := make([]int64, n)
	for i := range live {
		live[i] = int64(i)
	}
	next := int64(n)
	ops := make([]fuzzOp, 0, count)
	for len(ops) < count {
		switch r := rng.Float64(); {
		case r < 0.70:
			i, j := rng.Intn(len(live)), rng.Intn(len(live))
			if i == j {
				continue
			}
			ops = append(ops, fuzzOp{Kind: 'r', A: live[i], B: live[j]})
		case r < 0.85:
			ops = append(ops, fuzzOp{Kind: 'j', A: next})
			live = append(live, next)
			next++
		default:
			if len(live) <= 2 {
				continue
			}
			i := rng.Intn(len(live))
			ops = append(ops, fuzzOp{Kind: 'l', A: live[i]})
			live = append(live[:i], live[i+1:]...)
		}
	}
	return ops
}

// runFuzz replays an op sequence against a fresh DSG and a sorted-slice
// oracle of the live id set, asserting the full-graph validator and the
// oracle agreement after every applied op. Ops that are inapplicable in the
// current membership (possible after shrinking removed an op they depended
// on) are skipped, so any subsequence replays deterministically. It returns
// the index of the first failing op, or -1.
func runFuzz(n int, a int, seed int64, ops []fuzzOp) (int, error) {
	d := New(n, Config{A: a, Seed: seed})
	d.RepairBalance()
	if err := d.Validate(); err != nil {
		return 0, fmt.Errorf("invalid before any op: %w", err)
	}
	oracle := make([]int64, n) // sorted live real ids
	for i := range oracle {
		oracle[i] = int64(i)
	}
	find := func(id int64) int {
		i := sort.Search(len(oracle), func(i int) bool { return oracle[i] >= id })
		if i < len(oracle) && oracle[i] == id {
			return i
		}
		return -1
	}
	for i, op := range ops {
		switch op.Kind {
		case 'r':
			if find(op.A) < 0 || find(op.B) < 0 || op.A == op.B {
				continue // inapplicable after shrinking
			}
			// The worst-case bound is a·H over real nodes; dummy hops come
			// on top (all-dummy runs are exempt from a-balance), so the
			// population is the sound allowance.
			bound := d.Graph().MaxSearchPath(a) + d.DummyCount()
			res, err := d.Serve(op.A, op.B)
			if err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			// The scoped repair over the transformation's recorded dirty
			// lists must satisfy the *global* validator below — the fuzz
			// doubles as the differential test for repair locality.
			d.RepairBalancePending()
			if res.RouteDistance > bound {
				return i, fmt.Errorf("%s: distance %d exceeds a·H+dummies = %d", op, res.RouteDistance, bound)
			}
		case 'j':
			if find(op.A) >= 0 {
				continue
			}
			if _, err := d.Add(op.A); err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			pos := sort.Search(len(oracle), func(i int) bool { return oracle[i] >= op.A })
			oracle = append(oracle, 0)
			copy(oracle[pos+1:], oracle[pos:])
			oracle[pos] = op.A
		case 'l':
			pos := find(op.A)
			if pos < 0 || len(oracle) <= 2 {
				continue
			}
			if err := d.RemoveNode(op.A); err != nil {
				return i, fmt.Errorf("%s: %w", op, err)
			}
			oracle = append(oracle[:pos], oracle[pos+1:]...)
		}
		if err := d.Validate(); err != nil {
			return i, fmt.Errorf("%s: %w", op, err)
		}
		if err := checkOracle(d, oracle); err != nil {
			return i, fmt.Errorf("%s: %w", op, err)
		}
	}
	return -1, nil
}

// checkOracle compares the DSG's real-node population against the sorted
// oracle slice: same size, same ids, same key order.
func checkOracle(d *DSG, oracle []int64) error {
	if got := d.Graph().RealN(); got != len(oracle) {
		return fmt.Errorf("oracle: %d real nodes, want %d", got, len(oracle))
	}
	var ids []int64
	for _, x := range d.Graph().Nodes() {
		if !x.IsDummy() {
			ids = append(ids, x.ID())
		}
	}
	for i, id := range ids {
		if id != oracle[i] {
			return fmt.Errorf("oracle: position %d holds id %d, want %d", i, id, oracle[i])
		}
	}
	for _, id := range oracle {
		if d.NodeByID(id) == nil {
			return fmt.Errorf("oracle: live id %d not found by key", id)
		}
	}
	return nil
}

// shrinkFuzz reduces a failing op sequence to a locally minimal one via
// ddmin-style chunk removal: repeatedly drop the largest chunk whose
// removal still fails, then retry with smaller chunks down to single ops.
func shrinkFuzz(n, a int, seed int64, ops []fuzzOp, budget int) []fuzzOp {
	// First cut: everything after the failing op is irrelevant.
	if idx, err := runFuzz(n, a, seed, ops); err != nil && idx+1 < len(ops) {
		ops = ops[:idx+1]
	}
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(ops) && budget > 0; {
			cand := make([]fuzzOp, 0, len(ops)-chunk)
			cand = append(cand, ops[:start]...)
			cand = append(cand, ops[start+chunk:]...)
			budget--
			if _, err := runFuzz(n, a, seed, cand); err != nil {
				ops = cand // chunk was irrelevant; keep it removed
			} else {
				start += chunk
			}
		}
	}
	return ops
}

// TestChurnFuzz is the randomized churn harness: for each seed it replays
// 1000+ random route/join/leave events against a sorted-slice oracle,
// asserting the full-graph validator after every op. A failure is shrunk
// to a minimal reproducing sequence before reporting.
func TestChurnFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz is slow")
	}
	const n = 24
	for _, a := range []int{2, 4} {
		for s := 0; s < *fuzzSeeds; s++ {
			seed := int64(1000*a + s)
			t.Run(fmt.Sprintf("a=%d/seed=%d", a, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				ops := genFuzzOps(rng, n, *fuzzEvents)
				idx, err := runFuzz(n, a, seed, ops)
				if err == nil {
					return
				}
				min := shrinkFuzz(n, a, seed, ops, 400)
				t.Fatalf("op %d failed: %v\nminimal reproduction (n=%d a=%d seed=%d, %d ops):\n%v",
					idx, err, n, a, seed, len(min), min)
			})
		}
	}
}
