package core

import (
	"errors"
	"fmt"
	"sort"

	"lsasg/internal/amf"
	"lsasg/internal/skipgraph"
)

// RequestResult summarizes one served communication request.
type RequestResult struct {
	Time  int64 // logical time t of the request
	Alpha int   // highest common level of u and v before transformation

	RouteDistance int // d_S(σ): intermediate nodes on the routing path
	RouteHops     int // link traversals (RouteDistance + 1)

	TransformRounds int // ρ: synchronous rounds spent transforming
	DirectLevel     int // level of the new size-2 list holding u and v

	DummiesInserted  int
	DummiesDestroyed int
	HeightAfter      int
}

// ServiceCost returns the paper's cost of serving the request:
// d_St(σ) + ρ + 1 (§III).
func (r RequestResult) ServiceCost() int {
	return r.RouteDistance + r.TransformRounds + 1
}

// Serve handles one communication request between the real nodes with the
// given identifiers: it routes u → v in the current topology, then runs the
// DSG transformation (§IV-C through §IV-F).
//
// Serve tolerates crashed intermediates: a route that contacts a dead peer
// (skipgraph.DeadRouteError) detects the failure, repairs it locally
// (repairCrashed), and re-routes — each retry removes one dead node, so the
// loop terminates. A crashed ENDPOINT is the caller's failure, reported as
// ErrCrashedNode without a transformation.
func (d *DSG) Serve(uid, vid int64) (RequestResult, error) {
	u, v := d.NodeByID(uid), d.NodeByID(vid)
	if u == nil || v == nil {
		return RequestResult{}, fmt.Errorf("core: unknown node id %d or %d", uid, vid)
	}
	if u == v {
		return RequestResult{}, fmt.Errorf("core: self-communication for id %d", uid)
	}
	if u.Dead() {
		return RequestResult{}, fmt.Errorf("%w: %d", ErrCrashedNode, uid)
	}
	if v.Dead() {
		return RequestResult{}, fmt.Errorf("%w: %d", ErrCrashedNode, vid)
	}
	var route skipgraph.RouteResult
	for {
		r, err := d.g.Route(u, v)
		if err == nil {
			route = r
			break
		}
		var dre *skipgraph.DeadRouteError
		if errors.As(err, &dre) && dre.Node != u && dre.Node != v {
			// Failure detector fired on an intermediate: repair it in place
			// and retry. The dead population strictly shrinks per retry.
			d.crashDetectCount++
			d.repairCrashed(dre.Node)
			continue
		}
		return RequestResult{}, fmt.Errorf("core: routing failed: %w", err)
	}
	d.clock++
	res := d.transform(u, v, d.clock)
	res.RouteDistance = route.Distance()
	res.RouteHops = route.Hops()
	if d.cfg.CheckInvariants {
		if err := d.checkInvariants(u, v); err != nil {
			return res, fmt.Errorf("core: invariant violated after request %d: %w", d.clock, err)
		}
	}
	return res, nil
}

// transformCtx carries the bookkeeping one transformation needs across its
// phases; everything here is per-request scratch state.
type transformCtx struct {
	u, v  *skipgraph.Node
	t     int64
	alpha int

	members []*skipgraph.Node // real members of l_alpha, key order

	oldT    map[*skipgraph.Node][]int64
	oldG    map[*skipgraph.Node][]int64
	oldBits map[*skipgraph.Node]string // old membership vectors
	oldBu   int
	oldBv   int

	pri         map[*skipgraph.Node]priority
	med         map[*skipgraph.Node]map[int]amf.Value // median received per list level
	splitEvents map[*skipgraph.Node][]int             // list levels where x's group split
	glower      map[*skipgraph.Node]bool              // nodes that initialized/received Glower

	newDummies  []*skipgraph.Node
	keptDummies []*skipgraph.Node      // level-alpha dummies that survive (chain breakers below)
	pendingKeys map[skipgraph.Key]bool // keys reserved for dummies this request
	rounds      int
}

// transform runs the full DSG topology transformation for request (u, v)
// at time t and returns the result fields it is responsible for.
func (d *DSG) transform(u, v *skipgraph.Node, t int64) RequestResult {
	ctx := &transformCtx{
		u: u, v: v, t: t,
		alpha:       skipgraph.CommonPrefixLen(u, v),
		oldT:        make(map[*skipgraph.Node][]int64),
		oldG:        make(map[*skipgraph.Node][]int64),
		oldBits:     make(map[*skipgraph.Node]string),
		pri:         make(map[*skipgraph.Node]priority),
		med:         make(map[*skipgraph.Node]map[int]amf.Value),
		splitEvents: make(map[*skipgraph.Node][]int),
		glower:      make(map[*skipgraph.Node]bool),
		pendingKeys: make(map[skipgraph.Key]bool),
	}
	res := RequestResult{Time: t, Alpha: ctx.alpha}

	// Each request records the lists it dirties so the trace runner can
	// repair a-balance locally afterwards (RepairBalancePending); resetting
	// here bounds the record to one request for callers that never consume
	// it.
	d.pending = d.pending[:0]

	// A crashed member of l_alpha cannot take part in the transformation —
	// the notification broadcast would be its first contact, so detect and
	// repair it now, exactly like a route-time detection. Each repair
	// removes one dead node (it may insert dummies, never dead nodes), so
	// the rescan loop terminates.
	for {
		var deadMember *skipgraph.Node
		for _, x := range d.g.ListAt(u, ctx.alpha) {
			if !x.IsDummy() && x.Dead() {
				deadMember = x
				break
			}
		}
		if deadMember == nil {
			break
		}
		d.crashDetectCount++
		d.repairCrashed(deadMember)
	}

	// Dummy nodes destroy themselves upon receiving the transformation
	// notification (§IV-F): they link their neighbours and vanish. One
	// refinement over the paper's wording: a dummy placed exactly at level
	// alpha breaks a chain at level alpha-1, which this transformation
	// will not rebuild — destroying it would leak an a-balance violation
	// below the transformed region, so it stays (it still participates in
	// l_alpha's split as a chain boundary). A destroyed dummy may have been
	// breaking chains below alpha, so its ex-lists join the dirty set.
	for _, x := range d.g.ListAt(u, ctx.alpha) {
		if x.IsDummy() && x.BitsLen() > ctx.alpha {
			d.pending = append(d.pending, skipgraph.ExListRefs(x)...)
			d.g.Remove(x.Key())
			delete(d.st, x)
			d.dummyCount--
			res.DummiesDestroyed++
		} else if !x.IsDummy() {
			ctx.members = append(ctx.members, x)
		} else {
			ctx.keptDummies = append(ctx.keptDummies, x)
		}
	}
	ctx.rounds++ // parallel dummy self-destruction

	// Snapshot the old state the timestamp rules refer to ("in S_t").
	for _, x := range ctx.members {
		s := d.state(x)
		ctx.oldT[x] = append([]int64(nil), s.T...)
		ctx.oldG[x] = append([]int64(nil), s.G...)
		ctx.oldBits[x] = x.MembershipVector()
	}
	ctx.oldBu, ctx.oldBv = d.state(u).B, d.state(v).B

	// Notification broadcast: u and v flood l_alpha with their O(H_t) words
	// of state through the sub-skip-graph; pipelined under CONGEST.
	height := d.g.Height()
	ctx.rounds += d.cfg.A*(height-ctx.alpha) + 2*height

	d.computePriorities(ctx)
	d.mergeGroups(ctx)

	// Reassign the membership vector of every member above alpha.
	for _, x := range ctx.members {
		x.TruncateBits(ctx.alpha)
	}
	d.runSplits(ctx)

	// The splits rewrote every member's membership vector and per-level
	// state up to its new singleton level; drop stale entries beyond it.
	for _, x := range ctx.members {
		s := d.state(x)
		depth := x.BitsLen()
		if len(s.T) > depth+2 {
			s.T = s.T[:depth+2]
		}
		if len(s.G) > depth+1 {
			s.G = s.G[:depth+1]
		}
		if len(s.D) > depth+1 {
			s.D = s.D[:depth+1]
		}
		if s.B > depth {
			s.B = depth
		}
	}

	// Install dummies created during balance repair, then rebuild the links
	// of the transformed sub-skip-graph.
	for _, dm := range ctx.newDummies {
		d.g.SpliceIn(dm)
		d.dummyCount++
		res.DummiesInserted++
	}
	all := append(append([]*skipgraph.Node(nil), ctx.members...), ctx.newDummies...)
	all = append(all, ctx.keptDummies...)
	sort.Slice(all, func(i, j int) bool { return all[i].Key().Less(all[j].Key()) })
	d.g.Relink(all, ctx.alpha, nil)

	// Dirty-list record for the scoped post-request repair: every rebuilt
	// list of the transformed region is dirty end to end (Whole, anchored
	// at its head so the scoped scan deduplicates for free), while a fresh
	// dummy's below-alpha splices only dirty the runs around it.
	for _, x := range all {
		for l := ctx.alpha; l <= x.MaxLinkedLevel(); l++ {
			if x.Prev(l) == nil {
				d.pending = append(d.pending, skipgraph.ListRef{Node: x, Level: l, Whole: true})
			}
		}
	}
	for _, dm := range ctx.newDummies {
		for l := 0; l < ctx.alpha; l++ {
			d.pending = append(d.pending, skipgraph.ListRef{Node: dm, Level: l})
		}
	}

	d.applyGroupBaseRules(ctx)
	d.applyTimestampRules(ctx)
	for _, dm := range ctx.newDummies {
		d.st[dm].B = d.g.SingletonLevel(dm)
	}

	res.TransformRounds = ctx.rounds
	res.HeightAfter = d.g.Height()
	if ok, lvl := d.g.DirectlyLinked(u, v); ok {
		res.DirectLevel = lvl
	} else {
		res.DirectLevel = -1
	}
	return res
}

// computePriorities applies priority rules P1–P3 (§IV-C) over l_alpha.
func (d *DSG) computePriorities(ctx *transformCtx) {
	u, v, t, alpha := ctx.u, ctx.v, ctx.t, ctx.alpha
	su, sv := d.state(u), d.state(v)
	gu, gv := su.group(alpha), sv.group(alpha)
	for _, x := range ctx.members {
		sx := d.state(x)
		switch {
		case x == u || x == v:
			// P1: the communicating pair takes priority +∞.
			ctx.pri[x] = amf.Infinite()
		case sx.group(alpha) == gu:
			// P2 w.r.t. u: min of the pair's timestamps at the highest
			// level where x still shares u's group.
			c := highestCommonGroupLevel(sx, su, alpha)
			ctx.pri[x] = amf.Finite(min64(sx.timestamp(c), su.timestamp(c)))
		case sx.group(alpha) == gv:
			// P2 w.r.t. v.
			c := highestCommonGroupLevel(sx, sv, alpha)
			ctx.pri[x] = amf.Finite(min64(sx.timestamp(c), sv.timestamp(c)))
		default:
			// P3: a non-communicating group occupies the distinct negative
			// band [-G·t, -G·t + t).
			ctx.pri[x] = amf.Finite(-sx.group(alpha)*t + sx.timestamp(alpha+1))
		}
	}
}

// highestCommonGroupLevel returns the highest level c ≥ alpha at which the
// two states hold the same group-id.
func highestCommonGroupLevel(a, b *nodeState, alpha int) int {
	c := alpha
	for lvl := alpha; lvl < len(a.G) && lvl < len(b.G); lvl++ {
		if a.G[lvl] == b.G[lvl] {
			c = lvl
		} else {
			break
		}
	}
	return c
}

// mergeGroups merges u's and v's groups at level alpha (everyone adopts
// u's identifier as group-id) and runs the Appendix C lower-level group-id
// and group-base propagation when the pair's lower groups differ.
func (d *DSG) mergeGroups(ctx *transformCtx) {
	u, v, alpha := ctx.u, ctx.v, ctx.alpha
	su, sv := d.state(u), d.state(v)
	gu, gv := su.group(alpha), sv.group(alpha)
	minB := ctx.oldBu
	if ctx.oldBv < minB {
		minB = ctx.oldBv
	}
	merged := make([]*skipgraph.Node, 0, len(ctx.members))
	for _, x := range ctx.members {
		sx := d.state(x)
		if sx.group(alpha) == gu || sx.group(alpha) == gv {
			sx.setGroup(alpha, u.ID())
			// Every member of the merged group shares the pair's lower
			// group-base (Appendix C's Glower propagation; see DESIGN.md
			// §3 — Fig 4 requires this for node E's level-1 timestamp).
			if minB < sx.B {
				sx.B = minB
			}
			merged = append(merged, x)
		}
	}
	if alpha == 0 || ctx.oldG[u][alpha-1] == groupAtOld(ctx, v, alpha-1) {
		// Lower groups already coincide (or there is nothing below alpha).
		for _, x := range merged {
			ctx.glower[x] = true
		}
		return
	}
	// Appendix C: pick Glower from the node with the smaller group-base,
	// broadcast it through l_max(Bu,Bv), and stamp it below alpha.
	bu, bv := ctx.oldBu, ctx.oldBv
	source := u
	if bv < bu {
		source = v
	}
	glower := make([]int64, alpha)
	srcOld := ctx.oldG[source]
	for i := 0; i < alpha; i++ {
		if i < len(srcOld) {
			glower[i] = srcOld[i]
		} else {
			glower[i] = source.ID()
		}
	}
	maxB, minB := bu, bv
	if maxB < minB {
		maxB, minB = minB, maxB
	}
	// Recipients: nodes of the level-max(Bu,Bv) list containing u and v
	// whose group there matches u's or v's old group.
	if maxB <= alpha {
		guB := groupAtOld(ctx, u, maxB)
		gvB := groupAtOld(ctx, v, maxB)
		for _, y := range d.g.ListAt(u, maxB) {
			if y.IsDummy() {
				continue
			}
			sy := d.state(y)
			if sy.group(maxB) == guB || sy.group(maxB) == gvB {
				sy.B = minB
				for i := 0; i < alpha; i++ {
					sy.setGroup(i, glower[i])
				}
				ctx.glower[y] = true
			}
		}
		ctx.rounds += d.cfg.A * (d.g.Height() - maxB) // broadcast in the sub-skip-graph
	}
	for _, x := range merged {
		sx := d.state(x)
		for i := 0; i < alpha; i++ {
			sx.setGroup(i, glower[i])
		}
		ctx.glower[x] = true
	}
}

// groupAtOld reads a node's pre-transformation group-id at a level, falling
// back to the live state when the node was outside l_alpha (not snapshot).
func groupAtOld(ctx *transformCtx, n *skipgraph.Node, level int) int64 {
	if old, ok := ctx.oldG[n]; ok {
		if level < len(old) {
			return old[level]
		}
		if len(old) > 0 {
			return old[len(old)-1]
		}
	}
	return -1
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
