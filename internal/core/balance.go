package core

import "lsasg/internal/skipgraph"

// repairBalance scans the freshly split list L (level dl) for runs of more
// than `a` consecutive members assigned to the same side and breaks each by
// inserting a dummy node into the sibling subgraph (§IV-F). Dummies copy
// the list's membership prefix, take the opposite bit at dl+1, and stop
// there — per the paper they do not participate in transformations, so they
// never split further. Existing dummies in L (which carry no dl+1 bit) act
// as chain boundaries. The rebuilt list, dummies in position, is returned.
func (d *DSG) repairBalance(ctx *transformCtx, L []*skipgraph.Node, dl int) ([]*skipgraph.Node, int) {
	a := d.cfg.A
	if len(L) <= a {
		return L, 0
	}
	bitLevel := dl + 1
	out := make([]*skipgraph.Node, 0, len(L)+2)
	added := 0
	run := 0
	var runZero bool
	for _, x := range L {
		if !x.HasBit(bitLevel) {
			// An old dummy: it belongs to neither subgraph and breaks any
			// chain through it.
			out = append(out, x)
			run = 0
			continue
		}
		zero := x.Bit(bitLevel) == 0
		if run > 0 && zero == runZero {
			run++
			if run > a {
				prev := out[len(out)-1]
				if dm, ok := d.makeDummy(ctx, prev, x, dl, !zero); ok {
					out = append(out, dm)
					added++
					run = 1
				}
			}
		} else {
			run = 1
			runZero = zero
		}
		out = append(out, x)
	}
	if added == 0 {
		return L, 0
	}
	return out, added
}

// makeDummy creates a dummy node keyed strictly between left and right,
// sharing their membership prefix through level dl and taking the sibling
// subgraph at level dl+1 (`zero` selects the 0-subgraph). It returns false
// when no key slot is free, in which case the chain stays unrepaired.
func (d *DSG) makeDummy(ctx *transformCtx, left, right *skipgraph.Node, dl int, zero bool) (*skipgraph.Node, bool) {
	key, ok := d.freeKeyBetween(ctx, left.Key(), right.Key())
	if !ok {
		return nil, false
	}
	id := d.nextDummyID
	d.nextDummyID++
	dm := skipgraph.NewDummy(key, id)
	for i := 1; i <= dl; i++ {
		dm.SetBit(i, left.Bit(i))
	}
	if zero {
		dm.SetBit(dl+1, 0)
	} else {
		dm.SetBit(dl+1, 1)
	}
	s := &nodeState{B: dl + 1}
	s.ensure(dl + 2)
	for i := range s.G {
		s.G[i] = id
	}
	d.st[dm] = s
	ctx.newDummies = append(ctx.newDummies, dm)
	ctx.pendingKeys[key] = true
	return dm, true
}

// freeKeyBetween finds a key strictly between a and b that is neither in
// the graph nor reserved for a dummy created earlier this request.
func (d *DSG) freeKeyBetween(ctx *transformCtx, a, b skipgraph.Key) (skipgraph.Key, bool) {
	return freeKeyIn(a, b, func(k skipgraph.Key) bool {
		return d.g.ByKey(k) != nil || ctx.pendingKeys[k]
	})
}
