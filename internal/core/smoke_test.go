package core

import (
	"math/rand"
	"testing"
)

// TestSmokeServe drives random requests through a DSG with invariant
// checking enabled; any structural breakage fails immediately.
func TestSmokeServe(t *testing.T) {
	for _, n := range []int{4, 8, 16, 33, 64} {
		d := New(n, Config{A: 4, Seed: 42, CheckInvariants: true})
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			u := int64(rng.Intn(n))
			v := int64(rng.Intn(n))
			if u == v {
				continue
			}
			res, err := d.Serve(u, v)
			if err != nil {
				t.Fatalf("n=%d request %d (%d,%d): %v", n, i, u, v, err)
			}
			if res.DirectLevel < 0 {
				t.Fatalf("n=%d request %d (%d,%d): no direct link", n, i, u, v)
			}
		}
	}
}
