package core

import (
	"errors"
	"fmt"
)

// ErrUnknownNode is wrapped by Adjust when an endpoint id is not in the
// graph. A free-running sharded engine matches it (errors.Is) to tolerate
// adjustments that raced a shard migration: the pair routed fine against an
// older snapshot, but one endpoint left this shard before its adjustment
// reached the adjuster.
var ErrUnknownNode = errors.New("core: unknown node id")

// Pair is one communication request by node identifiers, the unit the
// concurrent serving engine (internal/serve) feeds into the adjuster.
type Pair struct {
	Src, Dst int64
}

// AdjustResult reports one applied transformation: the non-routing half of
// Serve. Routing happened elsewhere (against a topology snapshot), so only
// the adaptation-side measures appear here.
type AdjustResult struct {
	Time            int64 // logical time t of the transformation
	Alpha           int   // highest common level of the pair before transforming
	TransformRounds int   // ρ: synchronous rounds spent transforming
	DirectLevel     int   // level of the new size-2 list holding the pair
	HeightAfter     int   // graph height after the transformation

	// RepairInserted/RepairRemoved count the scoped a-balance repair actions
	// (RepairBalancePending) the transformation triggered.
	RepairInserted int
	RepairRemoved  int
}

// Adjust applies the DSG transformation for the pair (u, v) without routing
// first, then repairs a-balance over exactly the lists the transformation
// dirtied (RepairBalancePending). It is the adaptation half of Serve, split
// out so a serving engine can route requests in parallel against an immutable
// snapshot while a single adjuster applies the transformations in order.
func (d *DSG) Adjust(uid, vid int64) (AdjustResult, error) {
	u, v := d.NodeByID(uid), d.NodeByID(vid)
	if u == nil || v == nil {
		return AdjustResult{}, fmt.Errorf("%w: %d or %d", ErrUnknownNode, uid, vid)
	}
	if u == v {
		return AdjustResult{}, fmt.Errorf("core: self-communication for id %d", uid)
	}
	if u.Dead() || v.Dead() {
		// The pair routed against a snapshot that predates the crash; the
		// transformation must not resurrect a dead endpoint into a group.
		return AdjustResult{}, fmt.Errorf("%w: %d or %d", ErrCrashedNode, uid, vid)
	}
	d.clock++
	r := d.transform(u, v, d.clock)
	ins, rem := d.RepairBalancePending()
	if d.cfg.CheckInvariants {
		if err := d.checkInvariants(u, v); err != nil {
			return AdjustResult{}, fmt.Errorf("core: invariant violated after adjustment %d: %w", d.clock, err)
		}
	}
	return AdjustResult{
		Time:            r.Time,
		Alpha:           r.Alpha,
		TransformRounds: r.TransformRounds,
		DirectLevel:     r.DirectLevel,
		HeightAfter:     d.g.Height(),
		RepairInserted:  ins,
		RepairRemoved:   rem,
	}, nil
}

// ApplyBatch applies the transformations for a batch of pairs in order, each
// followed by its scoped balance repair, and returns one result per pair.
// This is the adjuster's batch entry point: after a batch the caller
// publishes a fresh topology snapshot, so the routing side observes
// adjustments at batch granularity. A failing pair aborts the batch; the
// already-applied prefix remains applied (results carries exactly the applied
// prefix alongside the error).
func (d *DSG) ApplyBatch(pairs []Pair) ([]AdjustResult, error) {
	results := make([]AdjustResult, 0, len(pairs))
	for i, p := range pairs {
		r, err := d.Adjust(p.Src, p.Dst)
		if err != nil {
			return results, fmt.Errorf("core: batch pair %d (%d→%d): %w", i, p.Src, p.Dst, err)
		}
		results = append(results, r)
	}
	return results, nil
}
