package core

import (
	"errors"
	"testing"

	"lsasg/internal/workload"
)

// TestCrashEndpointErrors covers the error paths a crashed-but-unrepaired
// node forces: every protocol that would need the corpse to participate
// reports ErrCrashedNode instead of operating on it.
func TestCrashEndpointErrors(t *testing.T) {
	d := New(16, Config{A: 4, Seed: 1})
	d.RepairBalance()
	if err := d.Crash(99); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("crash of unknown id: %v, want ErrUnknownNode", err)
	}
	if err := d.Crash(5); err != nil {
		t.Fatal(err)
	}
	if err := d.Crash(5); err != nil {
		t.Errorf("second crash of same id: %v, want idempotent nil", err)
	}
	if c, _, _ := d.CrashStats(); c != 1 {
		t.Errorf("crash count %d after double crash, want 1", c)
	}
	if _, err := d.Serve(5, 8); !errors.Is(err, ErrCrashedNode) {
		t.Errorf("serve from corpse: %v, want ErrCrashedNode", err)
	}
	if _, err := d.Serve(8, 5); !errors.Is(err, ErrCrashedNode) {
		t.Errorf("serve to corpse: %v, want ErrCrashedNode", err)
	}
	if _, err := d.Adjust(8, 5); !errors.Is(err, ErrCrashedNode) {
		t.Errorf("adjust with dead endpoint: %v, want ErrCrashedNode", err)
	}
	if err := d.RemoveNode(5); !errors.Is(err, ErrCrashedNode) {
		t.Errorf("graceful leave of corpse: %v, want ErrCrashedNode", err)
	}
	// The corpse is still physically present and exempt from validation.
	if err := d.Validate(); err != nil {
		t.Fatalf("graph invalid with unrepaired corpse: %v", err)
	}
	if ids := d.CrashedIDs(); len(ids) != 1 || ids[0] != 5 {
		t.Errorf("crashed ids = %v, want [5]", ids)
	}
}

// TestCrashRepairIdempotency is the repair-idempotency scenario: crashing the
// same node twice, crashing another node mid-repair, and sweeping the rest
// must each converge to a valid graph without double-repairing anything.
func TestCrashRepairIdempotency(t *testing.T) {
	d := New(32, Config{A: 4, Seed: 3})
	d.RepairBalance()
	for _, id := range []int64{7, 19} {
		if err := d.Crash(id); err != nil {
			t.Fatal(err)
		}
	}
	// Repair node 7 while 19 is still dead — repair must cope with corpses
	// among the surviving neighbours it rewires.
	if !d.RepairCrashedID(7) {
		t.Fatal("first repair of 7 declined")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid after repairing 7 with 19 still dead: %v", err)
	}
	if d.RepairCrashedID(7) {
		t.Error("second repair of 7 ran, want no-op")
	}
	// Crash a third node mid-repair of 19's cohort, then sweep.
	if err := d.Crash(23); err != nil {
		t.Fatal(err)
	}
	if got := d.RepairAllCrashed(); got != 2 {
		t.Errorf("sweep repaired %d corpses, want 2", got)
	}
	if got := d.RepairAllCrashed(); got != 0 {
		t.Errorf("second sweep repaired %d corpses, want 0", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid after full sweep: %v", err)
	}
	if ids := d.CrashedIDs(); len(ids) != 0 {
		t.Errorf("crashed ids = %v after sweep, want none", ids)
	}
	for _, id := range []int64{7, 19, 23} {
		if d.NodeByID(id) != nil {
			t.Errorf("repaired id %d still present", id)
		}
	}
	if _, _, repairs := d.CrashStats(); repairs != 3 {
		t.Errorf("repair count %d, want 3", repairs)
	}
}

// TestJoinBesideCorpse joins new nodes while unrepaired corpses still occupy
// their lists: the local join must treat dead peers like dummies (they cannot
// extend their vectors) and the graph must stay valid throughout.
func TestJoinBesideCorpse(t *testing.T) {
	const n = 24
	d := New(n, Config{A: 2, Seed: 9})
	d.RepairBalance()
	for _, id := range []int64{4, 5, 6} {
		if err := d.Crash(id); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(n); id < n+6; id++ {
		if _, err := d.Add(id); err != nil {
			t.Fatalf("join %d beside corpses: %v", id, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("invalid after join %d: %v", id, err)
		}
	}
	if got := d.RepairAllCrashed(); got != 3 {
		t.Fatalf("sweep repaired %d corpses, want 3", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid after sweep: %v", err)
	}
}

// TestStaleProbeDetectsCrash drives the trace runner's availability-probe
// path: a route addressed to a crashed destination fails for the client but
// IS the failure detection — the contact attempt triggers the decentralized
// repair, and the corpse is gone afterwards.
func TestStaleProbeDetectsCrash(t *testing.T) {
	d := New(16, Config{A: 4, Seed: 5})
	tr := workload.Trace{
		{Op: workload.OpCrash, Node: 6},
		{Op: workload.OpRoute, Src: 2, Dst: 6},
		{Op: workload.OpRoute, Src: 2, Dst: 9},
	}
	st, err := d.RunTrace(tr, TraceOptions{ValidateEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Crashes != 1 || st.FailedRoutes != 1 || st.Routes != 1 {
		t.Errorf("stats = %+v, want 1 crash, 1 failed probe, 1 served route", st)
	}
	if _, det, rep := d.CrashStats(); det != 1 || rep != 1 {
		t.Errorf("detections=%d repairs=%d, want 1/1", det, rep)
	}
	if ids := d.CrashedIDs(); len(ids) != 0 {
		t.Errorf("crashed ids = %v after probe detection, want none", ids)
	}
	if reps := d.DrainCrashRepairs(); len(reps) != 0 {
		t.Errorf("repair log %v not drained by trace runner", reps)
	}
}
