package core

import (
	"sort"

	"lsasg/internal/skipgraph"
)

// computeOldGroupSplits finds, for every member, the old levels d ≥ alpha
// at which its pre-transformation group (nodes sharing the old group-id and
// the old level-d list) no longer shares a level-d list afterwards. These
// are the split events rules T5 and the group-base rules (Appendix C)
// refer to ("a group g at level d in S_t splits ... in S_{t+1}").
func (d *DSG) computeOldGroupSplits(ctx *transformCtx) {
	type groupKey struct {
		level  int
		prefix string
		gid    int64
	}
	groups := make(map[groupKey][]*skipgraph.Node)
	for _, x := range ctx.members {
		bits := ctx.oldBits[x]
		oldG := ctx.oldG[x]
		for lvl := ctx.alpha; lvl <= len(bits); lvl++ {
			gid := int64(-1)
			if lvl < len(oldG) {
				gid = oldG[lvl]
			}
			k := groupKey{level: lvl, prefix: bits[:minInt(lvl, len(bits))], gid: gid}
			groups[k] = append(groups[k], x)
		}
	}
	for k, members := range groups {
		if len(members) < 2 {
			continue
		}
		// The group split at level k.level iff its members no longer share
		// a level-k.level list (new membership prefixes diverge).
		split := false
		first := members[0]
		for _, y := range members[1:] {
			if !sharePrefix(first, y, k.level) {
				split = true
				break
			}
		}
		if split {
			for _, x := range members {
				ctx.splitEvents[x] = append(ctx.splitEvents[x], k.level)
			}
		}
	}
	// Deterministic rule application: the map iteration above enumerates
	// groups in arbitrary order, but the base/T5 rules are order-sensitive.
	for x, splits := range ctx.splitEvents {
		sort.Ints(splits)
		ctx.splitEvents[x] = splits
	}
}

func sharePrefix(a, b *skipgraph.Node, level int) bool {
	return skipgraph.CommonPrefixLen(a, b) >= level
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// applyGroupBaseRules updates group-bases after the structural
// transformation (Appendix C): a node whose group split at its base level
// drops its base by one; a node based at alpha whose lowest split happened
// well above alpha rebases just below that split. (Merge-driven base
// updates were already applied in mergeGroups.)
func (d *DSG) applyGroupBaseRules(ctx *transformCtx) {
	d.computeOldGroupSplits(ctx)
	for _, x := range ctx.members {
		splits := ctx.splitEvents[x]
		if len(splits) == 0 {
			continue
		}
		sx := d.state(x)
		lowest := splits[0]
		for _, dl := range splits {
			if dl < lowest {
				lowest = dl
			}
			if sx.B == dl {
				sx.B = dl - 1
			}
		}
		if sx.B == ctx.alpha && lowest > ctx.alpha+1 {
			sx.B = lowest - 1
		}
		if sx.B < 0 {
			sx.B = 0
		}
	}
	// The communicating pair rebases to the lower of the two old bases
	// (their groups below alpha are now shared, Appendix C), clamped by
	// d': for a first-time pair the merged group {u, v} tops out at the
	// direct-link level, which is then the highest level of its biggest
	// group.
	minB := ctx.oldBu
	if ctx.oldBv < minB {
		minB = ctx.oldBv
	}
	if dPrime := skipgraph.CommonPrefixLen(ctx.u, ctx.v); dPrime < minB {
		minB = dPrime
	}
	d.state(ctx.u).B = minB
	d.state(ctx.v).B = minB
}

// applyTimestampRules executes the timestamp update of §IV-E. The order is
// the paper's T1–T6 with one documented clarification (DESIGN.md §3): a
// "group transport" pass implements the repositioning of unchanged groups
// that Fig 4(c) displays but that rules T2/T3 alone leave under-specified.
func (d *DSG) applyTimestampRules(ctx *transformCtx) {
	d.transportGroupTimes(ctx)
	d.ruleT1(ctx)
	d.ruleT2(ctx)
	d.ruleT3(ctx)
	d.ruleT4(ctx)
	d.ruleT5(ctx)
	d.ruleT6(ctx)
}

// transportGroupTimes moves each surviving group's timestamp to the level
// the group now occupies. For every new list S at a level d > alpha that
// does not contain the communicating pair, the members' common ancestor in
// the old topology sat at level e = their longest common old membership
// prefix; each member's old level-e timestamp becomes its level-d
// timestamp. Singletons carry the timestamp of their old singleton level.
// This reproduces Fig 4(c) exactly: the displaced group {B,G,D} keeps its
// merge time 4 one level up, {B,G} keeps 6, intact subtrees keep their old
// values verbatim.
func (d *DSG) transportGroupTimes(ctx *transformCtx) {
	u, v := ctx.u, ctx.v
	// Group the members by their new prefixes, level by level.
	byPrefix := make(map[string][]*skipgraph.Node)
	maxDepth := 0
	for _, x := range ctx.members {
		if depth := x.BitsLen(); depth > maxDepth {
			maxDepth = depth
		}
	}
	for lvl := ctx.alpha + 1; lvl <= maxDepth; lvl++ {
		for k := range byPrefix {
			delete(byPrefix, k)
		}
		for _, x := range ctx.members {
			if x.BitsLen() >= lvl {
				byPrefix[newPrefix(x, lvl)] = append(byPrefix[newPrefix(x, lvl)], x)
			}
		}
		for _, list := range byPrefix {
			if containsEither(list, u, v) {
				continue // the pair's lists are stamped by T1/T2
			}
			// e = the set's deepest common old list: the common prefix of a
			// string set is min over LCPs against any one member.
			e := len(ctx.oldBits[list[0]])
			for _, y := range list[1:] {
				if c := commonPrefixStrings(ctx.oldBits[list[0]], ctx.oldBits[y]); c < e {
					e = c
				}
			}
			for _, x := range list {
				d.state(x).setTimestamp(lvl, at64(ctx.oldT[x], e))
			}
		}
	}
}

func newPrefix(x *skipgraph.Node, lvl int) string {
	buf := make([]byte, lvl)
	for i := 1; i <= lvl; i++ {
		buf[i-1] = '0' + x.Bit(i)
	}
	return string(buf)
}

func containsEither(list []*skipgraph.Node, u, v *skipgraph.Node) bool {
	for _, x := range list {
		if x == u || x == v {
			return true
		}
	}
	return false
}

// ruleT1 stamps the communicating pair: time t at the size-2 list level d'
// and the singleton level above it; below, each level takes the split
// median that formed it (the merge time of that level's group), falling
// back to the pairwise max of the old timestamps.
func (d *DSG) ruleT1(ctx *transformCtx) {
	u, v, t := ctx.u, ctx.v, ctx.t
	su, sv := d.state(u), d.state(v)
	dPrime := skipgraph.CommonPrefixLen(u, v)
	su.setTimestamp(dPrime, t)
	su.setTimestamp(dPrime+1, t)
	sv.setTimestamp(dPrime, t)
	sv.setTimestamp(dPrime+1, t)
	minB := ctx.oldBu
	if ctx.oldBv < minB {
		minB = ctx.oldBv
	}
	if minB < 0 {
		minB = 0
	}
	oldU, oldV := ctx.oldT[u], ctx.oldT[v]
	for i := dPrime - 1; i >= minB; i-- {
		val := max64(at64(oldU, i), at64(oldV, i))
		if i > ctx.alpha {
			// The level-i list around the pair was formed by the split of
			// the level-(i-1) list; its median is the group's merge time
			// (matches the paper's Fig 4 walk-through).
			if m, ok := ctx.med[u][i-1]; ok && !m.Inf && m.V > 0 {
				val = m.V
			}
		}
		su.setTimestamp(i, val)
		sv.setTimestamp(i, val)
	}
}

// ruleT2 stamps every other node that remains in the pair's group: at each
// level d+1 where the node still holds u's group-id, its timestamp becomes
// its lowest old timestamp exceeding the median it received at level d, or
// that median itself. With the scripted medians of the paper's example this
// yields node E's S9 column exactly (T[1]=2, T[2]=5).
func (d *DSG) ruleT2(ctx *transformCtx) {
	u, v := ctx.u, ctx.v
	uID := u.ID()
	for _, x := range ctx.members {
		if x == u || x == v || x.IsDummy() {
			continue
		}
		sx := d.state(x)
		cPrime := d.newAssociationDepth(ctx, x)
		oldT := ctx.oldT[x]
		for dl := ctx.alpha; dl <= x.BitsLen(); dl++ {
			if sx.group(dl+1) != uID {
				break
			}
			m, ok := ctx.med[x][dl]
			if !ok || m.Inf {
				continue
			}
			set := false
			for c := ctx.alpha; c < cPrime; c++ {
				if tc := at64(oldT, c); tc > m.V {
					sx.setTimestamp(dl+1, tc)
					set = true
					break
				}
			}
			if !set {
				sx.setTimestamp(dl+1, m.V)
			}
		}
	}
}

// newAssociationDepth returns c': the highest level at which x shares a
// list with the nearest communicating node after the transformation (the
// reading of the paper's "longest common postfix" under which its Fig 4
// values c'(E)=2, c'(G)=1 come out; DESIGN.md §3).
func (d *DSG) newAssociationDepth(ctx *transformCtx, x *skipgraph.Node) int {
	cu := skipgraph.CommonPrefixLen(x, ctx.u)
	cv := skipgraph.CommonPrefixLen(x, ctx.v)
	if cu >= cv {
		return cu
	}
	return cv
}

// nearestCommunicating returns whichever of u, v was closer to x in the
// old topology (longer old common prefix).
func (d *DSG) nearestCommunicating(ctx *transformCtx, x *skipgraph.Node) *skipgraph.Node {
	cu := commonPrefixStrings(ctx.oldBits[x], ctx.oldBits[ctx.u])
	cv := commonPrefixStrings(ctx.oldBits[x], ctx.oldBits[ctx.v])
	if cu >= cv {
		return ctx.u
	}
	return ctx.v
}

// ruleT3 handles members of the pair's old groups whose association depth
// shrank: the timestamps across the vacated levels collapse to the old
// value at the deep end.
func (d *DSG) ruleT3(ctx *transformCtx) {
	u, v, alpha := ctx.u, ctx.v, ctx.alpha
	for _, x := range ctx.members {
		if x == u || x == v || x.IsDummy() {
			continue
		}
		oldGx := groupAtOld(ctx, x, alpha)
		if oldGx != groupAtOld(ctx, u, alpha) && oldGx != groupAtOld(ctx, v, alpha) {
			continue
		}
		w := d.nearestCommunicating(ctx, x)
		cPrime := commonPrefixStrings(ctx.oldBits[x], ctx.oldBits[w])
		cDouble := skipgraph.CommonPrefixLen(x, w)
		if cPrime-1 <= cDouble+1 {
			continue
		}
		sx := d.state(x)
		val := at64(ctx.oldT[x], cPrime)
		for i := cPrime - 1; i >= cDouble+1; i-- {
			sx.setTimestamp(i, val)
		}
	}
}

// ruleT4 fills timestamp gaps for nodes that initialized or received
// Glower: zero levels between the group-base and the lowest non-zero
// timestamp adopt that timestamp (DESIGN.md §3 reading).
func (d *DSG) ruleT4(ctx *transformCtx) {
	for x := range ctx.glower {
		if x.IsDummy() {
			continue
		}
		sx := d.state(x)
		lowNZ := -1
		for i := 0; i < len(sx.T); i++ {
			if sx.T[i] != 0 {
				lowNZ = i
				break
			}
		}
		if lowNZ <= sx.B {
			continue
		}
		for i := sx.B; i < lowNZ; i++ {
			sx.setTimestamp(i, sx.T[lowNZ])
		}
	}
}

// ruleT5 backfills the level below a split: a member of an old group that
// split at level dl whose level-(dl-1) timestamp is still zero copies the
// level-dl timestamp down.
func (d *DSG) ruleT5(ctx *transformCtx) {
	for x, splits := range ctx.splitEvents {
		if x.IsDummy() {
			continue
		}
		sx := d.state(x)
		for _, dl := range splits {
			if dl >= 1 && sx.timestamp(dl-1) == 0 && sx.timestamp(dl) != 0 {
				sx.setTimestamp(dl-1, sx.timestamp(dl))
			}
		}
	}
}

// ruleT6 zeroes every timestamp below the group-base.
func (d *DSG) ruleT6(ctx *transformCtx) {
	for _, x := range ctx.members {
		if x.IsDummy() {
			continue
		}
		sx := d.state(x)
		for i := 0; i < sx.B && i < len(sx.T); i++ {
			sx.T[i] = 0
		}
	}
}

func commonPrefixStrings(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func at64(xs []int64, i int) int64 {
	if i < 0 || i >= len(xs) {
		return 0
	}
	return xs[i]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
