package core

import (
	"math/rand"
	"testing"
)

// TestLocalRepairCertifiedGlobally is the differential test for the
// tentpole claim: joins, leaves, and routed requests repair a-balance only
// over their recorded dirty lists, yet after every single event the
// *global* validator — whole-graph Verify plus whole-graph
// BalanceViolations plus state bijection — must certify the result. Any
// list the local paths fail to report as dirty shows up here as a leaked
// violation. (TestChurnFuzz covers the same contract at larger scale with
// shrinking; this test is deterministic, quick, and not skipped in -short.)
func TestLocalRepairCertifiedGlobally(t *testing.T) {
	for _, a := range []int{2, 4} {
		seed := int64(31 + a)
		rng := rand.New(rand.NewSource(seed))
		d := New(20, Config{A: a, Seed: seed})
		d.RepairBalance() // certify the random initial topology once, globally
		if err := d.Validate(); err != nil {
			t.Fatalf("a=%d: invalid before any op: %v", a, err)
		}
		live := make([]int64, 20)
		for i := range live {
			live[i] = int64(i)
		}
		next := int64(20)
		for op := 0; op < 250; op++ {
			switch r := rng.Float64(); {
			case r < 0.5:
				i, j := rng.Intn(len(live)), rng.Intn(len(live))
				if i == j {
					continue
				}
				if _, err := d.Serve(live[i], live[j]); err != nil {
					t.Fatalf("a=%d op %d: serve(%d,%d): %v", a, op, live[i], live[j], err)
				}
				d.RepairBalancePending()
			case r < 0.8:
				if _, err := d.Add(next); err != nil {
					t.Fatalf("a=%d op %d: add(%d): %v", a, op, next, err)
				}
				live = append(live, next)
				next++
			default:
				if len(live) <= 2 {
					continue
				}
				i := rng.Intn(len(live))
				if err := d.RemoveNode(live[i]); err != nil {
					t.Fatalf("a=%d op %d: remove(%d): %v", a, op, live[i], err)
				}
				live = append(live[:i], live[i+1:]...)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("a=%d op %d: global validator rejects locally repaired graph: %v", a, op, err)
			}
		}
	}
}

// TestScopedRepairLeavesNoWorkForGlobal pins the fixed-point contract from
// the other side: right after a scoped repair, a full global RepairBalance
// must find nothing to insert — every violation was inside the dirty set.
// (It may still garbage-collect dummies whose redundancy predates the
// scoped op's dirty window, so only insertions must be zero.)
func TestScopedRepairLeavesNoWorkForGlobal(t *testing.T) {
	d := New(48, Config{A: 2, Seed: 77})
	d.RepairBalance()
	next := int64(48)
	rng := rand.New(rand.NewSource(5))
	for op := 0; op < 60; op++ {
		if op%2 == 0 {
			if _, err := d.Add(next); err != nil {
				t.Fatal(err)
			}
			next++
		} else {
			if err := d.RemoveNode(rng.Int63n(next - 1)); err != nil {
				// The random victim may already be gone; pick the newest.
				if err2 := d.RemoveNode(next - 1); err2 != nil {
					t.Fatalf("op %d: %v / %v", op, err, err2)
				}
				next--
			}
		}
		if ins, _ := d.RepairBalance(); ins != 0 {
			t.Fatalf("op %d: global repair inserted %d dummies after scoped repair", op, ins)
		}
	}
}

// TestLocalityWorkCounters checks the E16 instrumentation: the counters
// advance on membership events and their per-event magnitude stays far
// below the node count — the direct signature of locality.
func TestLocalityWorkCounters(t *testing.T) {
	const n = 512
	d := New(n, Config{A: 4, Seed: 3})
	d.RepairBalance()
	j0, r0 := d.LocalityWork()
	const events = 40
	for i := int64(0); i < events; i++ {
		if _, err := d.Add(int64(n) + i); err != nil {
			t.Fatal(err)
		}
	}
	j1, r1 := d.LocalityWork()
	if j1 <= j0 {
		t.Fatalf("join counter did not advance: %d -> %d", j0, j1)
	}
	if r1 < r0 {
		t.Fatalf("repair counter went backwards: %d -> %d", r0, r1)
	}
	perEvent := float64((j1-j0)+(r1-r0)) / events
	if perEvent >= n/2 {
		t.Fatalf("per-join work %.1f is not local for n=%d", perEvent, n)
	}
}
