package core

import (
	"fmt"
	"math/rand"

	"lsasg/internal/amf"
	"lsasg/internal/skipgraph"
)

// nodeState is the paper's per-node DSG state (§IV-B): a timestamp, a
// group-id and an is-dominating-group flag per level, plus the group-base.
// Slices grow on demand; level indices match the skip graph's levels.
type nodeState struct {
	T []int64 // T[d]: timestamp for level d
	G []int64 // G[d]: group-id for level d
	D []bool  // D[d]: is-dominating-group for level d
	B int     // group-base (Appendix C)
}

func (s *nodeState) ensure(level int) {
	for len(s.T) <= level {
		s.T = append(s.T, 0)
	}
	for len(s.G) <= level {
		s.G = append(s.G, -1)
	}
	for len(s.D) <= level {
		s.D = append(s.D, false)
	}
}

func (s *nodeState) timestamp(d int) int64 {
	if d < 0 || d >= len(s.T) {
		return 0
	}
	return s.T[d]
}

func (s *nodeState) setTimestamp(d int, v int64) {
	if d < 0 {
		return
	}
	s.ensure(d)
	s.T[d] = v
}

func (s *nodeState) group(d int) int64 {
	if d < 0 {
		return -1
	}
	if d >= len(s.G) {
		if len(s.G) == 0 {
			return -1
		}
		// Above the assigned range a node is alone; its group defaults to
		// the highest assigned one.
		return s.G[len(s.G)-1]
	}
	return s.G[d]
}

func (s *nodeState) setGroup(d int, g int64) {
	s.ensure(d)
	s.G[d] = g
}

func (s *nodeState) dominating(d int) bool {
	if d < 0 || d >= len(s.D) {
		return false
	}
	return s.D[d]
}

func (s *nodeState) setDominating(d int, v bool) {
	s.ensure(d)
	s.D[d] = v
}

// Config parameterizes a DSG instance.
type Config struct {
	// A is the a-balance parameter (§III); it must be ≥ 2. Defaults to 4.
	A int
	// Seed drives all randomness (AMF skip lists).
	Seed int64
	// Finder overrides the median-finding subroutine; nil selects the
	// paper's AMF with parameter A.
	Finder MedianFinder
	// CheckInvariants, when true, verifies the full set of structural
	// invariants after every transformation (slow; for tests).
	CheckInvariants bool
	// DummyIDBase, when > 0, is the first identifier handed to dummy nodes.
	// Dummy ids never collide with real ids inside one graph by construction,
	// but a sharded deployment (internal/shard) migrates real nodes between
	// graphs, so each shard gets its own disjoint dummy-id space to keep
	// group ids unambiguous after any migration history.
	DummyIDBase int64
}

func (c Config) withDefaults() Config {
	if c.A == 0 {
		c.A = 4
	}
	if c.A < 2 {
		panic(fmt.Sprintf("core: balance parameter must be >= 2, got %d", c.A))
	}
	return c
}

// DSG is a self-adjusting skip graph: the topology plus the per-node DSG
// state and the logical clock. All methods are single-threaded, matching
// the paper's sequential request model.
type DSG struct {
	cfg    Config
	g      *skipgraph.Graph
	rng    *rand.Rand
	finder MedianFinder
	st     map[*skipgraph.Node]*nodeState
	clock  int64

	nextDummyID int64
	dummyCount  int

	// kvSeq is the value-version clock: each applied Put gets the next
	// version, and migration restores bump it past carried versions so
	// per-key versions stay monotonic across shard moves.
	kvSeq int64

	// Cumulative a-balance repair work (dummy insertions/removals by
	// RepairBalance), read via RepairStats by the trace runner.
	repairInserted int
	repairRemoved  int

	// pending is the dirty-list set the most recent transformation
	// recorded (destroyed dummies' ex-lists, the relinked region, fresh
	// dummies' lists); RepairBalancePending consumes it. Each Serve resets
	// it, so it never grows beyond one request's footprint.
	pending []skipgraph.ListRef

	// Deterministic locality counters (experiment E16): nodes examined
	// while splicing local joins, and nodes scanned by scoped balance
	// repairs.
	joinScan   int
	repairScan int

	// Crash-failure bookkeeping (experiment E20): cumulative crashes,
	// route/transform-time detections of dead peers, and completed crash
	// repairs. crashRepairLog holds the ids of repaired nodes since the last
	// DrainCrashRepairs call, in repair order, so a trace runner can measure
	// per-crash time-to-recovery.
	crashCount       int
	crashDetectCount int
	crashRepairCount int
	crashRepairLog   []int64
}

// New creates a DSG over n nodes with keys and identifiers 0..n-1. The
// initial topology is a random skip graph; initial timestamps are zero,
// each node is its own group at every level, and each group-base is the
// node's singleton level, per §IV-B and Appendix C.
func New(n int, cfg Config) *DSG {
	cfg = cfg.withDefaults()
	d := &DSG{
		cfg:         cfg,
		g:           skipgraph.NewRandom(n, cfg.Seed),
		rng:         rand.New(rand.NewSource(cfg.Seed + 1)),
		st:          make(map[*skipgraph.Node]*nodeState, n),
		nextDummyID: int64(n),
	}
	if cfg.DummyIDBase > d.nextDummyID {
		d.nextDummyID = cfg.DummyIDBase
	}
	if cfg.Finder != nil {
		d.finder = cfg.Finder
	} else {
		d.finder = &AMFFinder{A: cfg.A, Rng: d.rng}
	}
	for node := range d.g.All() {
		d.st[node] = d.freshState(node)
	}
	return d
}

// freshState initializes a node's DSG state with default values.
func (d *DSG) freshState(node *skipgraph.Node) *nodeState {
	s := &nodeState{B: d.g.SingletonLevel(node)}
	top := node.BitsLen() + 1
	s.ensure(top)
	for i := range s.G {
		s.G[i] = node.ID()
	}
	return s
}

// Graph exposes the underlying skip graph (read-only use expected).
func (d *DSG) Graph() *skipgraph.Graph { return d.g }

// Clock returns the logical time (number of served requests).
func (d *DSG) Clock() int64 { return d.clock }

// A returns the balance parameter.
func (d *DSG) A() int { return d.cfg.A }

// DummyCount returns the number of dummy nodes currently in the graph.
func (d *DSG) DummyCount() int { return d.dummyCount }

// NodeByID returns the real node with identifier id (id == key primary).
func (d *DSG) NodeByID(id int64) *skipgraph.Node {
	return d.g.ByKey(skipgraph.KeyOf(id))
}

// state returns the DSG state of a node, creating it if missing (dummies).
func (d *DSG) state(n *skipgraph.Node) *nodeState {
	s, ok := d.st[n]
	if !ok {
		s = d.freshState(n)
		d.st[n] = s
	}
	return s
}

// Timestamp returns T^x_d for a node (0 when unset), for tests and tools.
func (d *DSG) Timestamp(n *skipgraph.Node, level int) int64 {
	return d.state(n).timestamp(level)
}

// Group returns G^x_d for a node.
func (d *DSG) Group(n *skipgraph.Node, level int) int64 {
	return d.state(n).group(level)
}

// GroupBase returns B_x for a node.
func (d *DSG) GroupBase(n *skipgraph.Node) int { return d.state(n).B }

// SetStateForTest force-sets a node's full DSG state; used by tests that
// reconstruct the paper's worked examples mid-history.
func (d *DSG) SetStateForTest(n *skipgraph.Node, ts []int64, groups []int64, dominating []bool, base int) {
	s := d.state(n)
	s.T = append([]int64(nil), ts...)
	s.G = append([]int64(nil), groups...)
	if dominating != nil {
		s.D = append([]bool(nil), dominating...)
	}
	s.B = base
}

// SetClockForTest force-sets the logical clock.
func (d *DSG) SetClockForTest(t int64) { d.clock = t }

// priorityOf is a typed alias to keep rule code readable.
type priority = amf.Value
