package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func allGenerators() []Generator {
	return []Generator{
		Uniform{Seed: 1},
		Zipf{Seed: 2, S: 1.2},
		RepeatedPairs{Seed: 3, K: 4, Hot: 0.9},
		Temporal{Seed: 4, W: 8, Churn: 0.1},
		Clustered{Seed: 5, C: 4, Local: 0.8},
		Adversarial{Seed: 6},
		HotRange{Seed: 7, LoFrac: 0, HiFrac: 0.125, Hot: 0.85},
	}
}

// TestHotRangeConcentration: the hot fraction of requests stays inside the
// configured contiguous range, and the defaults kick in for a degenerate
// range.
func TestHotRangeConcentration(t *testing.T) {
	const n, m = 64, 4000
	g := HotRange{Seed: 11, LoFrac: 0, HiFrac: 0.125, Hot: 0.85}
	reqs := g.Generate(n, m)
	inHot := 0
	for _, r := range reqs {
		if r.Src < 8 && r.Dst < 8 {
			inHot++
		}
	}
	frac := float64(inHot) / float64(m)
	if frac < 0.75 || frac > 0.95 {
		t.Errorf("hot fraction %.3f, want ≈ 0.85", frac)
	}
	// Degenerate fractions fall back to the default eighth.
	d := HotRange{Seed: 12, LoFrac: 0.5, HiFrac: 0.5, Hot: 1}
	for i, r := range d.Generate(n, 100) {
		if r.Src >= 8 || r.Dst >= 8 {
			t.Fatalf("default range: request %d = %+v escapes [0, 8)", i, r)
		}
	}
}

func TestGeneratorsProduceValidRequests(t *testing.T) {
	const n, m = 50, 500
	for _, g := range allGenerators() {
		reqs := g.Generate(n, m)
		if len(reqs) != m {
			t.Fatalf("%s: %d requests, want %d", g.Name(), len(reqs), m)
		}
		for i, r := range reqs {
			if r.Src < 0 || r.Src >= n || r.Dst < 0 || r.Dst >= n {
				t.Fatalf("%s[%d]: out of range %+v", g.Name(), i, r)
			}
			if r.Src == r.Dst {
				t.Fatalf("%s[%d]: self request", g.Name(), i)
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range allGenerators() {
		a := g.Generate(30, 100)
		b := g.Generate(30, 100)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", g.Name(), i)
			}
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	reqs := Zipf{Seed: 7, S: 1.5}.Generate(100, 5000)
	counts := make(map[int]int)
	for _, r := range reqs {
		counts[r.Src]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	// The hottest node should receive far more than the uniform share.
	if maxC < 3*5000/100 {
		t.Errorf("max source count %d too uniform for Zipf(1.5)", maxC)
	}
}

func TestRepeatedPairsHotFraction(t *testing.T) {
	g := RepeatedPairs{Seed: 8, K: 1, Hot: 1.0}
	reqs := g.Generate(64, 200)
	first := reqs[0]
	for i, r := range reqs {
		if r != first {
			t.Fatalf("hot=1.0 k=1 produced a different pair at %d: %+v", i, r)
		}
	}
}

func TestTemporalLocality(t *testing.T) {
	// With no churn, all requests stay within the initial W-node set.
	g := Temporal{Seed: 9, W: 5, Churn: 0}
	reqs := g.Generate(100, 400)
	seen := make(map[int]bool)
	for _, r := range reqs {
		seen[r.Src] = true
		seen[r.Dst] = true
	}
	if len(seen) > 5 {
		t.Fatalf("temporal workload touched %d nodes, want ≤ 5", len(seen))
	}
}

func TestClusteredLocality(t *testing.T) {
	g := Clustered{Seed: 10, C: 5, Local: 1.0}
	reqs := g.Generate(100, 1000)
	// Rebuild community assignment exactly as the generator does.
	comm := make(map[int]int)
	// Local=1.0 means every request is intra-community; we verify by
	// transitivity: union endpoints and check the number of components
	// is at least C.
	parent := make([]int, 100)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, r := range reqs {
		parent[find(r.Src)] = find(r.Dst)
	}
	comps := make(map[int]bool)
	for i := range parent {
		comps[find(i)] = true
	}
	if len(comps) < 5 {
		t.Errorf("fully local clustered workload merged into %d components, want ≥ 5", len(comps))
	}
	_ = comm
}

func TestAdversarialCoversManyPairs(t *testing.T) {
	g := Adversarial{Seed: 11}
	reqs := g.Generate(32, 1000)
	pairs := make(map[Request]bool)
	for _, r := range reqs {
		pairs[r] = true
	}
	if len(pairs) < 500 {
		t.Errorf("adversarial workload repeated pairs too much: %d distinct", len(pairs))
	}
}

func TestZipfWeights(t *testing.T) {
	ws := ZipfWeights(10, 1.0)
	var sum float64
	for i := 1; i < len(ws); i++ {
		if ws[i] > ws[i-1] {
			t.Fatal("weights not decreasing")
		}
	}
	for _, w := range ws {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %f", sum)
	}
}

func TestGenerateQuick(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%100) + 2
		m := int(mRaw % 100)
		reqs := Uniform{Seed: seed}.Generate(n, m)
		if len(reqs) != m {
			return false
		}
		for _, r := range reqs {
			if r.Src == r.Dst || r.Src < 0 || r.Src >= n || r.Dst < 0 || r.Dst >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Uniform{}.Generate(1, 10)
}
