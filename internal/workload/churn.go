package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// minLive is the membership floor every churn generator respects: a leave
// never drops the network below this many nodes, so every trace keeps at
// least one routable pair alive.
const minLive = 2

// PoissonChurn layers memoryless churn over any request generator: before
// each route, a Poisson(Rate)-distributed number of membership events fire,
// each an unbiased coin flip between a fresh join and the departure of a
// uniformly random live node. Rate is the expected number of membership
// events per route, so the network size random-walks around its start value
// — the classic steady-state churn model of DHT studies (cf. Interlaced's
// skip-graph churn stabilization).
type PoissonChurn struct {
	Seed int64
	Rate float64   // expected membership events per route, ≥ 0
	Base Generator // route traffic; defaults to Uniform{Seed}
}

// Name implements TraceGenerator.
func (g PoissonChurn) Name() string {
	return fmt.Sprintf("poisson-churn(rate=%.2f,%s)", g.Rate, g.base().Name())
}

func (g PoissonChurn) base() Generator {
	if g.Base == nil {
		return Uniform{Seed: g.Seed}
	}
	return g.Base
}

// Trace implements TraceGenerator.
func (g PoissonChurn) Trace(n, m int) (Trace, error) {
	if err := ValidateArgs(n, m); err != nil {
		return nil, err
	}
	// Beyond ~700 events per route exp(-lambda) underflows in poisson();
	// any real sweep stays orders of magnitude below that.
	if g.Rate < 0 || g.Rate > 500 || math.IsNaN(g.Rate) {
		return nil, fmt.Errorf("workload: poisson churn rate %v out of range [0, 500]", g.Rate)
	}
	rng := rand.New(rand.NewSource(g.Seed + 101))
	reqs := g.base().Generate(n, m)
	ms := newMembership(n)
	tr := make(Trace, 0, m+int(g.Rate*float64(m))+1)
	routes := 0
	for _, r := range reqs {
		for k := poisson(rng, g.Rate); k > 0; k-- {
			if rng.Intn(2) == 0 || ms.size() <= minLive {
				tr = append(tr, ms.join())
			} else {
				tr = append(tr, ms.leaveAt(rng.Intn(ms.size())))
			}
		}
		if ev, ok := ms.route(r); ok {
			tr = append(tr, ev)
			routes++
		}
	}
	return padRoutes(tr, ms, rng, m-routes), nil
}

// FlashCrowd models a sudden audience: every Period routes, Burst fresh
// nodes join back-to-back, and the previous burst's members all leave at
// the next boundary — the crowd arrives, lingers for one period, and
// dissipates. Between boundaries the base generator drives route traffic.
type FlashCrowd struct {
	Seed   int64
	Period int       // routes between bursts, ≥ 1
	Burst  int       // nodes per burst, ≥ 1
	Base   Generator // route traffic; defaults to Uniform{Seed}
}

// Name implements TraceGenerator.
func (g FlashCrowd) Name() string {
	return fmt.Sprintf("flash-crowd(period=%d,burst=%d,%s)", g.Period, g.Burst, g.base().Name())
}

func (g FlashCrowd) base() Generator {
	if g.Base == nil {
		return Uniform{Seed: g.Seed}
	}
	return g.Base
}

// Trace implements TraceGenerator.
func (g FlashCrowd) Trace(n, m int) (Trace, error) {
	if err := ValidateArgs(n, m); err != nil {
		return nil, err
	}
	if g.Period < 1 || g.Burst < 1 {
		return nil, fmt.Errorf("workload: flash crowd needs period ≥ 1 and burst ≥ 1, got (%d, %d)", g.Period, g.Burst)
	}
	rng := rand.New(rand.NewSource(g.Seed + 202))
	reqs := g.base().Generate(n, m)
	ms := newMembership(n)
	tr := make(Trace, 0, m+2*g.Burst*(m/g.Period+1))
	var crowd []int64 // ids of the burst currently lingering
	routes := 0
	for i, r := range reqs {
		if i%g.Period == 0 {
			for _, id := range crowd {
				for pos, liveID := range ms.live {
					if liveID == id {
						tr = append(tr, ms.leaveAt(pos))
						break
					}
				}
			}
			crowd = crowd[:0]
			for b := 0; b < g.Burst; b++ {
				ev := ms.join()
				crowd = append(crowd, ev.Node)
				tr = append(tr, ev)
			}
		}
		if ev, ok := ms.route(r); ok {
			tr = append(tr, ev)
			routes++
		}
	}
	return padRoutes(tr, ms, rng, m-routes), nil
}

// CorrelatedDepartures models correlated failures (a rack, an AS, a
// provider): every Period routes, Burst id-adjacent live nodes crash
// together, immediately followed by Burst fresh joins (recovery), so the
// network size stays stable while whole key regions blink out at once.
type CorrelatedDepartures struct {
	Seed   int64
	Period int       // routes between failure events, ≥ 1
	Burst  int       // adjacent nodes per failure, ≥ 1
	Base   Generator // route traffic; defaults to Uniform{Seed}
}

// Name implements TraceGenerator.
func (g CorrelatedDepartures) Name() string {
	return fmt.Sprintf("correlated-departures(period=%d,burst=%d,%s)", g.Period, g.Burst, g.base().Name())
}

func (g CorrelatedDepartures) base() Generator {
	if g.Base == nil {
		return Uniform{Seed: g.Seed}
	}
	return g.Base
}

// Trace implements TraceGenerator.
func (g CorrelatedDepartures) Trace(n, m int) (Trace, error) {
	if err := ValidateArgs(n, m); err != nil {
		return nil, err
	}
	if g.Period < 1 || g.Burst < 1 {
		return nil, fmt.Errorf("workload: correlated departures need period ≥ 1 and burst ≥ 1, got (%d, %d)", g.Period, g.Burst)
	}
	rng := rand.New(rand.NewSource(g.Seed + 303))
	reqs := g.base().Generate(n, m)
	ms := newMembership(n)
	tr := make(Trace, 0, m+2*g.Burst*(m/g.Period+1))
	routes := 0
	for i, r := range reqs {
		if i > 0 && i%g.Period == 0 {
			burst := g.Burst
			if max := ms.size() - minLive; burst > max {
				burst = max
			}
			if burst > 0 {
				start := rng.Intn(ms.size() - burst + 1)
				for b := 0; b < burst; b++ {
					tr = append(tr, ms.leaveAt(start)) // positions shift left
				}
				for b := 0; b < burst; b++ {
					tr = append(tr, ms.join())
				}
			}
		}
		if ev, ok := ms.route(r); ok {
			tr = append(tr, ev)
			routes++
		}
	}
	return padRoutes(tr, ms, rng, m-routes), nil
}

// poisson draws a Poisson(lambda)-distributed count (Knuth's product
// method; lambda stays small here, single digits per route).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// padRoutes appends `missing` uniform routes over the final membership so
// every trace carries exactly the requested number of route events even
// when endpoint collisions dropped a few base requests.
func padRoutes(tr Trace, ms *membership, rng *rand.Rand, missing int) Trace {
	for missing > 0 {
		i := rng.Intn(ms.size())
		j := rng.Intn(ms.size())
		if i == j {
			continue
		}
		tr = append(tr, Event{Op: OpRoute, Src: ms.live[i], Dst: ms.live[j]})
		missing--
	}
	return tr
}
