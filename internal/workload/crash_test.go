package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func allCrashGenerators() []TraceGenerator {
	return []TraceGenerator{
		IndependentCrashes{Seed: 1, Rate: 0.1, Stale: 0.3},
		IndependentCrashes{Seed: 2, Rate: 0.5, Stale: 0, Base: Zipf{Seed: 2, S: 1.2}},
		CorrelatedCrashes{Seed: 3, Period: 20, Burst: 3, Stale: 0.2},
		FlashFailure{Seed: 4, Frac: 0.25, Stale: 0.5},
	}
}

// TestCrashTracesAreValid: every crash generator produces a trace that passes
// the three-state validator, carries exactly m routes, and actually crashes
// someone.
func TestCrashTracesAreValid(t *testing.T) {
	const n, m = 32, 400
	for _, g := range allCrashGenerators() {
		tr, err := g.Trace(n, m)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if err := tr.Validate(n); err != nil {
			t.Errorf("%s: invalid trace: %v", g.Name(), err)
		}
		routes, joins, _ := tr.Counts()
		if routes != m {
			t.Errorf("%s: %d routes, want %d", g.Name(), routes, m)
		}
		crashes := tr.Crashes()
		if crashes == 0 {
			t.Errorf("%s: no crash events", g.Name())
		}
		// Every crash is paired with a recovery join: stable network size.
		if joins != crashes {
			t.Errorf("%s: %d joins for %d crashes, want equal", g.Name(), joins, crashes)
		}
	}
}

// TestCrashGeneratorsDeterministic: same seed, same trace.
func TestCrashGeneratorsDeterministic(t *testing.T) {
	for _, g := range allCrashGenerators() {
		a, err := g.Trace(24, 200)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := g.Trace(24, 200)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: trace differs across runs with the same seed", g.Name())
		}
	}
}

// TestIndependentCrashesVolume: the crash count concentrates around the
// Poisson mean rate·m.
func TestIndependentCrashesVolume(t *testing.T) {
	const n, m, rate = 64, 2000, 0.1
	tr, err := IndependentCrashes{Seed: 5, Rate: rate, Stale: 0.3}.Trace(n, m)
	if err != nil {
		t.Fatal(err)
	}
	got, want := float64(tr.Crashes()), rate*m
	if got < want/2 || got > want*2 {
		t.Errorf("%v crashes for Poisson mean %v", got, want)
	}
}

// TestCorrelatedCrashesAdjacent verifies each failure event kills id-adjacent
// nodes: within one crash burst, the dead ids form a contiguous run of the
// pre-burst live set (a rack going dark, not scattered attrition).
func TestCorrelatedCrashesAdjacent(t *testing.T) {
	g := CorrelatedCrashes{Seed: 11, Period: 15, Burst: 4}
	const n, m = 30, 300
	tr, err := g.Trace(n, m)
	if err != nil {
		t.Fatal(err)
	}
	live := map[int64]bool{}
	for i := 0; i < n; i++ {
		live[int64(i)] = true
	}
	var burst []int64
	checkBurst := func() {
		if len(burst) < 2 {
			return
		}
		min, max := burst[0], burst[0]
		dead := map[int64]bool{}
		for _, id := range burst {
			if id < min {
				min = id
			}
			if id > max {
				max = id
			}
			dead[id] = true
		}
		for id := range live {
			if id > min && id < max && !dead[id] {
				t.Errorf("burst %v skipped still-live id %d", burst, id)
			}
		}
	}
	for _, e := range tr {
		switch e.Op {
		case OpCrash:
			burst = append(burst, e.Node)
		default:
			checkBurst()
			for _, id := range burst {
				delete(live, id)
			}
			burst = burst[:0]
			if e.Op == OpJoin {
				live[e.Node] = true
			}
		}
	}
	if tr.Crashes() == 0 {
		t.Error("no crash bursts generated")
	}
}

// TestFlashFailureShape: exactly one burst, at the route midpoint, of size
// ceil(frac·live).
func TestFlashFailureShape(t *testing.T) {
	const n, m = 40, 200
	tr, err := FlashFailure{Seed: 7, Frac: 0.25}.Trace(n, m)
	if err != nil {
		t.Fatal(err)
	}
	wantBurst := int(math.Ceil(0.25 * n))
	if got := tr.Crashes(); got != wantBurst {
		t.Errorf("%d crashes, want one burst of %d", got, wantBurst)
	}
	routesBefore := 0
	firstCrash := -1
	for i, e := range tr {
		if e.Op == OpCrash {
			firstCrash = i
			break
		}
		if e.Op == OpRoute {
			routesBefore++
		}
	}
	if firstCrash < 0 {
		t.Fatal("no crash event")
	}
	if routesBefore < m/2-m/10 || routesBefore > m/2+m/10 {
		t.Errorf("burst after %d routes, want about %d", routesBefore, m/2)
	}
	// The burst is contiguous: crashes then recovery joins, no routes inside.
	for i := firstCrash; i < firstCrash+wantBurst; i++ {
		if tr[i].Op != OpCrash {
			t.Fatalf("event %d inside burst is %s, want crash", i, tr[i].Op)
		}
	}
	for i := firstCrash + wantBurst; i < firstCrash+2*wantBurst; i++ {
		if tr[i].Op != OpJoin {
			t.Fatalf("event %d after burst is %s, want recovery join", i, tr[i].Op)
		}
	}
}

// TestStaleRouteFraction: with Stale=0.5 a substantial fraction of
// post-crash routes target a recently crashed id, and with Stale=0 none do.
// Crashed targets are tracked by replaying the trace's membership.
func TestStaleRouteFraction(t *testing.T) {
	const n, m = 32, 1000
	count := func(stale float64) (staleRoutes, routes int) {
		tr, err := IndependentCrashes{Seed: 9, Rate: 0.05, Stale: stale}.Trace(n, m)
		if err != nil {
			t.Fatal(err)
		}
		crashed := map[int64]bool{}
		sawCrash := false
		for _, e := range tr {
			switch e.Op {
			case OpCrash:
				crashed[e.Node] = true
				sawCrash = true
			case OpRoute:
				if sawCrash {
					routes++
					if crashed[e.Dst] {
						staleRoutes++
					}
				}
			}
		}
		return staleRoutes, routes
	}
	s, r := count(0.5)
	if frac := float64(s) / float64(r); frac < 0.25 || frac > 0.75 {
		t.Errorf("stale fraction %v (%d/%d), want near 0.5", frac, s, r)
	}
	if s, _ := count(0); s != 0 {
		t.Errorf("%d stale routes with Stale=0, want none", s)
	}
}

// TestCrashGeneratorErrors exercises every knob-validation path.
func TestCrashGeneratorErrors(t *testing.T) {
	for _, g := range allCrashGenerators() {
		if _, err := g.Trace(1, 100); err == nil {
			t.Errorf("%s: no error for n=1", g.Name())
		}
		if _, err := g.Trace(10, -1); err == nil {
			t.Errorf("%s: no error for m=-1", g.Name())
		}
	}
	bad := []TraceGenerator{
		IndependentCrashes{Rate: -1},
		IndependentCrashes{Rate: math.NaN()},
		IndependentCrashes{Rate: 0.1, Stale: 1.5},
		IndependentCrashes{Rate: 0.1, Stale: math.NaN()},
		CorrelatedCrashes{Period: 0, Burst: 1},
		CorrelatedCrashes{Period: 5, Burst: 0},
		CorrelatedCrashes{Period: 5, Burst: 1, Stale: -0.1},
		FlashFailure{Frac: 0},
		FlashFailure{Frac: 1.5},
		FlashFailure{Frac: math.NaN()},
		FlashFailure{Frac: 0.5, Stale: 2},
	}
	for _, g := range bad {
		if _, err := g.Trace(10, 10); err == nil {
			t.Errorf("%s: bad knobs accepted", g.Name())
		}
	}
}

// TestCrashTraceValidateRejections covers the validator's crash-specific
// failure modes, which the fuzz harness and trace runner depend on.
func TestCrashTraceValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		n    int
		tr   Trace
		want string
	}{
		{"crash absent", 3, Trace{{Op: OpCrash, Node: 99}}, "crashes an absent node"},
		{"double crash", 3, Trace{
			{Op: OpJoin, Node: 9},
			{Op: OpCrash, Node: 2},
			{Op: OpJoin, Node: 10},
			{Op: OpCrash, Node: 2}}, "already-crashed"},
		{"route from corpse", 3, Trace{
			{Op: OpJoin, Node: 9},
			{Op: OpCrash, Node: 1},
			{Op: OpRoute, Src: 1, Dst: 0}}, "routes from a non-live node"},
		{"crashed id reused", 3, Trace{
			{Op: OpJoin, Node: 9},
			{Op: OpCrash, Node: 1},
			{Op: OpJoin, Node: 1}}, "reuses a crashed id"},
		{"leave of corpse", 3, Trace{
			{Op: OpJoin, Node: 9},
			{Op: OpCrash, Node: 1},
			{Op: OpLeave, Node: 1}}, "leaves a dead node"},
		{"crash below minimum", 2, Trace{{Op: OpCrash, Node: 0}}, "below 2"},
	}
	for _, c := range cases {
		err := c.tr.Validate(c.n)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
	// The legal stale probe: a route TO a crashed id from a live node.
	ok := Trace{
		{Op: OpJoin, Node: 9},
		{Op: OpCrash, Node: 1},
		{Op: OpRoute, Src: 0, Dst: 1},
	}
	if err := ok.Validate(3); err != nil {
		t.Errorf("stale probe should validate: %v", err)
	}
}
