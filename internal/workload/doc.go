// Package workload generates communication-request sequences used to drive
// self-adjusting topologies. All generators are deterministic for a given
// seed so experiments are reproducible.
//
// A request is a (source, destination) pair of node indices in [0, n). The
// generators cover the traffic classes the paper's introduction motivates:
// uniform (no skew to exploit), Zipf-skewed, repeated pairs, temporally
// local ("working set") traffic, community-clustered traffic, and an
// adversarial uniform permutation schedule. Suite returns the canonical
// battery used by the comparison experiments.
//
// Generators with tunable knobs also implement Parameterized, exposing
// their parameters as a map for machine-readable experiment output;
// Describe renders a generator with its full configuration.
//
// Beyond static request sequences, the package generates dynamic
// workloads: a Trace is an ordered sequence of Events (Op = Route, Join,
// or Leave over node identifiers), produced by TraceGenerators that layer
// churn over any request generator — PoissonChurn (memoryless turnover),
// FlashCrowd (join bursts that dissipate a period later), and
// CorrelatedDepartures (key-adjacent group failures with recovery).
// NoChurn wraps a plain generator as the zero-churn baseline, and
// Trace.Validate replays a trace against a membership model to certify it
// is well-formed.
package workload
