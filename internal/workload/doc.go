// Package workload generates communication-request sequences used to drive
// self-adjusting topologies. All generators are deterministic for a given
// seed so experiments are reproducible.
//
// A request is a (source, destination) pair of node indices in [0, n). The
// generators cover the traffic classes the paper's introduction motivates:
// uniform (no skew to exploit), Zipf-skewed, repeated pairs, temporally
// local ("working set") traffic, community-clustered traffic, and an
// adversarial uniform permutation schedule. Suite returns the canonical
// battery used by the comparison experiments.
//
// Generators with tunable knobs also implement Parameterized, exposing
// their parameters as a map for machine-readable experiment output;
// Describe renders a generator with its full configuration.
package workload
