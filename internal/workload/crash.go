package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// This file holds the crash-failure trace generators. Unlike the graceful
// churn shapes in churn.go, a crash (OpCrash) removes a node without a
// leave event — the serving side discovers it only by contacting the dead
// peer. Every generator keeps a bounded window of recently crashed ids and,
// with probability Stale, redirects a route at one of them: the stale-view
// probes whose failures the availability experiments (E20) measure. Each
// crash is paired with a fresh recovery join, so the network size stays
// stable and the failure RATE — not attrition — is the swept variable.

// staleWindow bounds the recently-crashed id window a stale route may target.
const staleWindow = 16

// staleRoute maps a base request onto the live membership and then, with
// probability stale, retargets the destination at a recently crashed id — a
// client routing on a stale view. The source stays live (a dead node issues
// no requests). Returns false when the mapped endpoints collide.
func (ms *membership) staleRoute(rng *rand.Rand, r Request, stale float64) (Event, bool) {
	ev, ok := ms.route(r)
	if !ok {
		return ev, false
	}
	if stale > 0 && len(ms.recentCrashed) > 0 && rng.Float64() < stale {
		ev.Dst = ms.recentCrashed[rng.Intn(len(ms.recentCrashed))]
	}
	return ev, true
}

// checkStale validates a Stale knob.
func checkStale(stale float64) error {
	if stale < 0 || stale > 1 || math.IsNaN(stale) {
		return fmt.Errorf("workload: stale-route fraction %v out of range [0, 1]", stale)
	}
	return nil
}

// IndependentCrashes layers memoryless crash failures over any request
// generator: before each route, a Poisson(Rate)-distributed number of
// uniformly random live nodes crash, each immediately followed by a fresh
// recovery join (stable network size, the steady-state failure model of DHT
// availability studies). Stale is the fraction of routes redirected at a
// recently crashed id.
type IndependentCrashes struct {
	Seed  int64
	Rate  float64   // expected crashes per route, ≥ 0
	Stale float64   // fraction of routes targeting a recently crashed id, [0, 1]
	Base  Generator // route traffic; defaults to Uniform{Seed}
}

// Name implements TraceGenerator.
func (g IndependentCrashes) Name() string {
	return fmt.Sprintf("independent-crashes(rate=%.2f,stale=%.2f,%s)", g.Rate, g.Stale, g.base().Name())
}

func (g IndependentCrashes) base() Generator {
	if g.Base == nil {
		return Uniform{Seed: g.Seed}
	}
	return g.Base
}

// Trace implements TraceGenerator.
func (g IndependentCrashes) Trace(n, m int) (Trace, error) {
	if err := ValidateArgs(n, m); err != nil {
		return nil, err
	}
	if g.Rate < 0 || g.Rate > 500 || math.IsNaN(g.Rate) {
		return nil, fmt.Errorf("workload: independent crash rate %v out of range [0, 500]", g.Rate)
	}
	if err := checkStale(g.Stale); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(g.Seed + 404))
	reqs := g.base().Generate(n, m)
	ms := newMembership(n)
	tr := make(Trace, 0, m+2*int(g.Rate*float64(m))+1)
	routes := 0
	for _, r := range reqs {
		for k := poisson(rng, g.Rate); k > 0; k-- {
			if ms.size() <= minLive {
				break
			}
			tr = append(tr, ms.crashAt(rng.Intn(ms.size())))
			tr = append(tr, ms.join()) // recovery capacity arrives
		}
		if ev, ok := ms.staleRoute(rng, r, g.Stale); ok {
			tr = append(tr, ev)
			routes++
		}
	}
	return padRoutes(tr, ms, rng, m-routes), nil
}

// CorrelatedCrashes models correlated infrastructure failures (a rack, an
// AS, a power domain): every Period routes, Burst key-adjacent live nodes
// crash together, followed by Burst recovery joins. The same shape as
// CorrelatedDepartures, but without the leave-side repair the graceful path
// gets for free — whole key regions go dark at once and must be discovered.
type CorrelatedCrashes struct {
	Seed   int64
	Period int       // routes between failure events, ≥ 1
	Burst  int       // adjacent nodes per failure, ≥ 1
	Stale  float64   // fraction of routes targeting a recently crashed id
	Base   Generator // route traffic; defaults to Uniform{Seed}
}

// Name implements TraceGenerator.
func (g CorrelatedCrashes) Name() string {
	return fmt.Sprintf("correlated-crashes(period=%d,burst=%d,stale=%.2f,%s)",
		g.Period, g.Burst, g.Stale, g.base().Name())
}

func (g CorrelatedCrashes) base() Generator {
	if g.Base == nil {
		return Uniform{Seed: g.Seed}
	}
	return g.Base
}

// Trace implements TraceGenerator.
func (g CorrelatedCrashes) Trace(n, m int) (Trace, error) {
	if err := ValidateArgs(n, m); err != nil {
		return nil, err
	}
	if g.Period < 1 || g.Burst < 1 {
		return nil, fmt.Errorf("workload: correlated crashes need period ≥ 1 and burst ≥ 1, got (%d, %d)", g.Period, g.Burst)
	}
	if err := checkStale(g.Stale); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(g.Seed + 505))
	reqs := g.base().Generate(n, m)
	ms := newMembership(n)
	tr := make(Trace, 0, m+2*g.Burst*(m/g.Period+1))
	routes := 0
	for i, r := range reqs {
		if i > 0 && i%g.Period == 0 {
			burst := g.Burst
			if max := ms.size() - minLive; burst > max {
				burst = max
			}
			if burst > 0 {
				start := rng.Intn(ms.size() - burst + 1)
				for b := 0; b < burst; b++ {
					tr = append(tr, ms.crashAt(start)) // positions shift left
				}
				for b := 0; b < burst; b++ {
					tr = append(tr, ms.join())
				}
			}
		}
		if ev, ok := ms.staleRoute(rng, r, g.Stale); ok {
			tr = append(tr, ev)
			routes++
		}
	}
	return padRoutes(tr, ms, rng, m-routes), nil
}

// FlashFailure models one mass outage: halfway through the trace, a Frac
// fraction of the live population crashes in a single burst (uniformly
// random victims), followed by the same number of recovery joins. Before
// and after the event the base generator drives pure route traffic, so the
// trace isolates the detection-and-repair transient of a single large
// failure.
type FlashFailure struct {
	Seed  int64
	Frac  float64   // fraction of live nodes crashing at the midpoint, (0, 1]
	Stale float64   // fraction of routes targeting a recently crashed id
	Base  Generator // route traffic; defaults to Uniform{Seed}
}

// Name implements TraceGenerator.
func (g FlashFailure) Name() string {
	return fmt.Sprintf("flash-failure(frac=%.2f,stale=%.2f,%s)", g.Frac, g.Stale, g.base().Name())
}

func (g FlashFailure) base() Generator {
	if g.Base == nil {
		return Uniform{Seed: g.Seed}
	}
	return g.Base
}

// Trace implements TraceGenerator.
func (g FlashFailure) Trace(n, m int) (Trace, error) {
	if err := ValidateArgs(n, m); err != nil {
		return nil, err
	}
	if g.Frac <= 0 || g.Frac > 1 || math.IsNaN(g.Frac) {
		return nil, fmt.Errorf("workload: flash failure fraction %v out of range (0, 1]", g.Frac)
	}
	if err := checkStale(g.Stale); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(g.Seed + 606))
	reqs := g.base().Generate(n, m)
	ms := newMembership(n)
	tr := make(Trace, 0, m+2*n)
	routes := 0
	for i, r := range reqs {
		if i == m/2 {
			burst := int(math.Ceil(g.Frac * float64(ms.size())))
			if max := ms.size() - minLive; burst > max {
				burst = max
			}
			for b := 0; b < burst; b++ {
				tr = append(tr, ms.crashAt(rng.Intn(ms.size())))
			}
			for b := 0; b < burst; b++ {
				tr = append(tr, ms.join())
			}
		}
		if ev, ok := ms.staleRoute(rng, r, g.Stale); ok {
			tr = append(tr, ev)
			routes++
		}
	}
	return padRoutes(tr, ms, rng, m-routes), nil
}
