package workload

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestZipfMatchesZipfWeights checks the Zipf generator's empirical endpoint
// distribution against the analytic ZipfWeights: rank-sorted frequencies
// must track 1/r^s within a small L1 distance.
func TestZipfMatchesZipfWeights(t *testing.T) {
	const n, m = 40, 60000
	for _, s := range []float64{1.2, 1.6} {
		reqs := Zipf{Seed: 11, S: s}.Generate(n, m)
		counts := make([]float64, n)
		for _, r := range reqs {
			counts[r.Src]++
			counts[r.Dst]++
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
		total := float64(2 * m)
		// The generator rejects src == dst, so the expected endpoint
		// marginal is the ZipfWeights conditioned on distinct endpoints:
		// P(endpoint = rank i) ∝ w_i(1 - w_i).
		w := ZipfWeights(n, s)
		want := make([]float64, n)
		norm := 0.0
		for i, wi := range w {
			want[i] = wi * (1 - wi)
			norm += want[i]
		}
		l1 := 0.0
		for i := range counts {
			l1 += math.Abs(counts[i]/total - want[i]/norm)
		}
		// Far below a uniform distribution's distance (~0.8 for s=1.2).
		if l1 > 0.05 {
			t.Errorf("s=%.1f: L1 distance to rejection-adjusted ZipfWeights = %.3f", s, l1)
		}
		// The head must dominate: rank-1 frequency ≥ 4x the median rank's.
		if counts[0] < 4*counts[n/2] {
			t.Errorf("s=%.1f: head %f not dominant over median %f", s, counts[0], counts[n/2])
		}
	}
}

// TestTemporalWindowLocality checks the working-set semantics: with zero
// churn all traffic stays inside the initial W-node active set, and with
// churn c every window of requests touches at most W plus the expected
// number of swaps distinct nodes.
func TestTemporalWindowLocality(t *testing.T) {
	const n, m, w = 60, 4000, 8

	distinct := func(reqs []Request) int {
		seen := map[int]bool{}
		for _, r := range reqs {
			seen[r.Src] = true
			seen[r.Dst] = true
		}
		return len(seen)
	}

	frozen := Temporal{Seed: 21, W: w, Churn: 0}.Generate(n, m)
	if got := distinct(frozen); got > w {
		t.Errorf("churn=0: %d distinct nodes, want ≤ %d", got, w)
	}

	const churn = 0.1
	reqs := Temporal{Seed: 22, W: w, Churn: churn}.Generate(n, m)
	if got := distinct(reqs); got <= w {
		t.Errorf("churn=%.1f: active set never mutated (%d distinct nodes)", churn, got)
	}
	const window = 200
	for start := 0; start+window <= m; start += window {
		got := distinct(reqs[start : start+window])
		// A window can touch the W active nodes plus one new node per swap;
		// 3x slack over the expectation keeps the test deterministic-stable.
		limit := w + int(3*churn*window)
		if got > limit {
			t.Errorf("window at %d: %d distinct nodes, want ≤ %d", start, got, limit)
		}
	}
}

// TestClusteredIntraFraction reconstructs the generator's community
// assignment (same seed, same draw order) and checks the realized
// intra-community fraction against Local + (1-Local)/C.
func TestClusteredIntraFraction(t *testing.T) {
	const n, m, c = 64, 40000, 8
	const local = 0.9
	g := Clustered{Seed: 31, C: c, Local: local}
	reqs := g.Generate(n, m)

	// The generator's first rng draw is the community permutation.
	rng := rand.New(rand.NewSource(31))
	perm := rng.Perm(n)
	comm := make([]int, n)
	for i, p := range perm {
		comm[p] = i % c
	}

	intra := 0
	for _, r := range reqs {
		if comm[r.Src] == comm[r.Dst] {
			intra++
		}
	}
	got := float64(intra) / float64(m)
	want := local + (1-local)/float64(c)
	if math.Abs(got-want) > 0.05 {
		t.Errorf("intra-community fraction %.3f, want ≈ %.3f", got, want)
	}
}

// TestAdversarialShape checks the worst-case properties the generator
// promises: balanced endpoint usage (no node is hot) and near-maximal pair
// diversity (few repeats), the shape that maximizes the working set.
func TestAdversarialShape(t *testing.T) {
	const n, m = 50, 2000
	reqs := Adversarial{Seed: 41}.Generate(n, m)

	counts := make([]int, n)
	pairs := map[[2]int]int{}
	for _, r := range reqs {
		counts[r.Src]++
		counts[r.Dst]++
		pairs[[2]int{r.Src, r.Dst}]++
	}
	minC, maxC := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	// Round-robin striding keeps endpoint usage within one stride of even.
	if maxC-minC > n {
		t.Errorf("endpoint counts spread %d..%d, want near-even", minC, maxC)
	}
	// m = 2000 < n(n-1) = 2450 ordered pairs: repeats must stay rare.
	if len(pairs) < m*9/10 {
		t.Errorf("only %d distinct pairs in %d requests", len(pairs), m)
	}
}

// TestValidateArgs covers the error-returning argument validation.
func TestValidateArgs(t *testing.T) {
	if err := ValidateArgs(2, 0); err != nil {
		t.Errorf("ValidateArgs(2, 0) = %v", err)
	}
	if err := ValidateArgs(1, 10); err == nil || !strings.Contains(err.Error(), "at least 2") {
		t.Errorf("ValidateArgs(1, 10) = %v", err)
	}
	if err := ValidateArgs(10, -1); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("ValidateArgs(10, -1) = %v", err)
	}
}

// TestGenerateErrorPath checks the package-level Generate wrapper: invalid
// sizes surface as errors, valid ones produce the same sequence as the
// direct (panicking) entry point.
func TestGenerateErrorPath(t *testing.T) {
	g := Zipf{Seed: 5, S: 1.3}
	if _, err := Generate(g, 1, 10); err == nil {
		t.Error("Generate(g, 1, 10) should error")
	}
	if _, err := Generate(g, 10, -5); err == nil {
		t.Error("Generate(g, 10, -5) should error")
	}
	got, err := Generate(g, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Generate(20, 50)
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("request %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestGeneratePanicContract pins the documented panic behavior of the
// direct Generator entry points on bad input.
func TestGeneratePanicContract(t *testing.T) {
	for _, c := range []struct {
		name string
		n, m int
	}{{"tiny n", 1, 10}, {"negative m", 10, -1}} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic")
				}
				if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "workload:") {
					t.Fatalf("panic value %v, want workload-prefixed message", r)
				}
			}()
			Uniform{Seed: 1}.Generate(c.n, c.m)
		})
	}
}
