package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Parameterized is implemented by generators with tunable knobs. The knob
// map feeds the machine-readable experiment output so result rows carry the
// full workload configuration, not just a display name.
type Parameterized interface {
	// Params returns the generator's knobs (excluding the seed).
	Params() map[string]float64
}

// Params implements Parameterized (no knobs besides the seed).
func (Uniform) Params() map[string]float64 { return map[string]float64{} }

// Params implements Parameterized.
func (g Zipf) Params() map[string]float64 { return map[string]float64{"s": g.S} }

// Params implements Parameterized.
func (g RepeatedPairs) Params() map[string]float64 {
	return map[string]float64{"k": float64(g.K), "hot": g.Hot}
}

// Params implements Parameterized.
func (g Temporal) Params() map[string]float64 {
	return map[string]float64{"w": float64(g.W), "churn": g.Churn}
}

// Params implements Parameterized.
func (g Clustered) Params() map[string]float64 {
	return map[string]float64{"c": float64(g.C), "local": g.Local}
}

// Params implements Parameterized (the schedule is fully seed-determined).
func (Adversarial) Params() map[string]float64 { return map[string]float64{} }

// Params implements Parameterized (churn knobs plus the base generator's).
func (g PoissonChurn) Params() map[string]float64 {
	p := map[string]float64{"rate": g.Rate}
	mergeBaseParams(p, g.base())
	return p
}

// Params implements Parameterized.
func (g FlashCrowd) Params() map[string]float64 {
	p := map[string]float64{"period": float64(g.Period), "burst": float64(g.Burst)}
	mergeBaseParams(p, g.base())
	return p
}

// Params implements Parameterized.
func (g CorrelatedDepartures) Params() map[string]float64 {
	p := map[string]float64{"period": float64(g.Period), "burst": float64(g.Burst)}
	mergeBaseParams(p, g.base())
	return p
}

// Params implements Parameterized.
func (g IndependentCrashes) Params() map[string]float64 {
	p := map[string]float64{"rate": g.Rate, "stale": g.Stale}
	mergeBaseParams(p, g.base())
	return p
}

// Params implements Parameterized.
func (g CorrelatedCrashes) Params() map[string]float64 {
	p := map[string]float64{"period": float64(g.Period), "burst": float64(g.Burst), "stale": g.Stale}
	mergeBaseParams(p, g.base())
	return p
}

// Params implements Parameterized.
func (g FlashFailure) Params() map[string]float64 {
	p := map[string]float64{"frac": g.Frac, "stale": g.Stale}
	mergeBaseParams(p, g.base())
	return p
}

// Params implements Parameterized (delegates to the base generator).
func (g NoChurn) Params() map[string]float64 {
	p := map[string]float64{}
	mergeBaseParams(p, g.base())
	return p
}

// mergeBaseParams folds a base generator's knobs into p under a "base."
// prefix so churn and traffic parameters never collide.
func mergeBaseParams(p map[string]float64, base Generator) {
	bp, ok := base.(Parameterized)
	if !ok {
		return
	}
	for k, v := range bp.Params() {
		p["base."+k] = v
	}
}

// ParamString renders a generator's knobs as a canonical "k1=v1 k2=v2"
// string with sorted keys (empty for knob-free generators). Experiment
// result rows carry it next to the display name so output files record the
// full workload configuration. It accepts both Generator and TraceGenerator
// values — anything implementing Parameterized.
func ParamString(g interface{}) string {
	p, ok := g.(Parameterized)
	if !ok {
		return ""
	}
	params := p.Params()
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%g", k, params[k])
	}
	return strings.Join(parts, " ")
}

// Describe renders a generator as "name" or "name{k1=v1 k2=v2}" for logs
// and result metadata.
func Describe(g Generator) string {
	ps := ParamString(g)
	if ps == "" {
		return g.Name()
	}
	return fmt.Sprintf("%s{%s}", g.Name(), ps)
}

// Suite returns the canonical battery of generators used by the comparison
// experiments (E6, E8): one representative of every traffic class the
// paper's introduction motivates, all deterministic for the given seed.
func Suite(seed int64) []Generator {
	return []Generator{
		Uniform{Seed: seed},
		Zipf{Seed: seed, S: 1.2},
		Zipf{Seed: seed, S: 1.6},
		RepeatedPairs{Seed: seed, K: 4, Hot: 0.9},
		Temporal{Seed: seed, W: 8, Churn: 0.1},
		Clustered{Seed: seed, C: 8, Local: 0.9},
		Adversarial{Seed: seed},
	}
}
