package workload

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseMixNamed(t *testing.T) {
	for name, want := range map[string]MixRatios{
		"a": MixA, "B": MixB, " c ": MixC, "e": MixE, "CRUD": MixCRUD,
	} {
		got, err := ParseMix(name)
		if err != nil {
			t.Fatalf("ParseMix(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseMix(%q) = %+v, want %+v", name, got, want)
		}
	}
}

func TestParseMixWeights(t *testing.T) {
	got, err := ParseMix("50:30:10:5:5")
	if err != nil {
		t.Fatal(err)
	}
	want := MixRatios{Read: 50, Update: 30, Insert: 10, Scan: 5, Delete: 5}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
	n := got.normalized()
	if n.Read != 0.5 || n.Delete != 0.05 {
		t.Errorf("normalized = %+v", n)
	}
}

func TestParseMixErrors(t *testing.T) {
	for _, s := range []string{"z", "1:2:3", "1:2:3:4:x", "-1:0:0:0:0", "0:0:0:0:0"} {
		if _, err := ParseMix(s); err == nil {
			t.Errorf("ParseMix(%q): expected error", s)
		}
	}
}

func TestMixString(t *testing.T) {
	if s := MixB.String(); s != "r0.95+u0.05" {
		t.Errorf("MixB.String() = %q", s)
	}
	if s := MixE.String(); s != "i0.05+s0.95" {
		t.Errorf("MixE.String() = %q", s)
	}
}

func TestKVMixValidates(t *testing.T) {
	for _, mix := range []MixRatios{MixA, MixB, MixC, MixE, MixCRUD} {
		for _, n := range []int{8, 64, 200} {
			g := KVMix{Seed: 7, Mix: mix}
			tr, err := g.Trace(n, 500)
			if err != nil {
				t.Fatalf("%s n=%d: %v", g.Name(), n, err)
			}
			if err := tr.Validate(n); err != nil {
				t.Fatalf("%s n=%d: %v", g.Name(), n, err)
			}
			gets, puts, deletes, scans := tr.KVCounts()
			if gets+puts+deletes+scans != len(tr) {
				t.Fatalf("%s n=%d: non-KV events in a KV trace", g.Name(), n)
			}
		}
	}
}

func TestKVMixEventCount(t *testing.T) {
	// Exactly m events after the carve-out prefix, which holds only deletes.
	g := KVMix{Seed: 3, Mix: MixE}
	tr, err := g.Trace(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	carve := 0
	for _, e := range tr {
		if e.Op != OpDelete {
			break
		}
		carve++
	}
	if carve != 25 { // insert ratio 0.05 × 1000 = 50, capped at n/4 = 25
		t.Errorf("carve-out = %d, want 25", carve)
	}
	if len(tr)-carve != 1000 {
		t.Errorf("main stream = %d events, want 1000", len(tr)-carve)
	}
	gets, puts, _, scans := tr.KVCounts()
	if gets != 0 {
		t.Errorf("MixE produced %d gets", gets)
	}
	if scans == 0 || puts == 0 {
		t.Errorf("MixE produced %d scans, %d puts", scans, puts)
	}
}

func TestKVMixDeterminism(t *testing.T) {
	a, err := KVMix{Seed: 11, Mix: MixCRUD}.Trace(50, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KVMix{Seed: 11, Mix: MixCRUD}.Trace(50, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c, err := KVMix{Seed: 12, Mix: MixCRUD}.Trace(50, 300)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestKVMixScanLimits(t *testing.T) {
	g := KVMix{Seed: 5, Mix: MixRatios{Scan: 1}, MaxScanLen: 4}
	tr, err := g.Trace(32, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr {
		if e.Op != OpScan {
			t.Fatalf("pure-scan mix produced %s", e)
		}
		if e.Limit < 1 || e.Limit > 4 {
			t.Fatalf("scan limit %d outside [1, 4]", e.Limit)
		}
		if e.Dst < 0 || e.Dst >= 32 {
			t.Fatalf("scan start %d outside [0, 32)", e.Dst)
		}
	}
}

func TestKVMixBadInputs(t *testing.T) {
	if _, err := (KVMix{Mix: MixRatios{Read: -1}}).Trace(10, 10); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := (KVMix{Mix: MixA, MaxScanLen: -2}).Trace(10, 10); err == nil {
		t.Error("negative scan cap accepted")
	}
	if _, err := (KVMix{Mix: MixA}).Trace(1, 10); err == nil {
		t.Error("single-node trace accepted")
	}
}

func TestKVMixNameAndParams(t *testing.T) {
	g := KVMix{Seed: 1, Mix: MixB, Base: Zipf{Seed: 1, S: 1.2}}
	if name := g.Name(); !strings.Contains(name, "r0.95+u0.05") || !strings.Contains(name, "zipf") {
		t.Errorf("Name() = %q", name)
	}
	p := g.Params()
	if p["read"] != 0.95 || p["scanlen"] != 16 || p["base.s"] != 1.2 {
		t.Errorf("Params() = %v", p)
	}
}

func TestValidateKVRules(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
		ok   bool
	}{
		{"get-any-target", Trace{{Op: OpGet, Src: 0, Dst: 99}}, true},
		{"get-dead-origin", Trace{{Op: OpGet, Src: 99, Dst: 0}}, false},
		{"put-joins-absent", Trace{
			{Op: OpPut, Src: 0, Dst: 9},
			{Op: OpRoute, Src: 0, Dst: 9},
		}, true},
		{"put-crashed-key", Trace{
			{Op: OpCrash, Node: 2},
			{Op: OpPut, Src: 0, Dst: 2},
		}, false},
		{"delete-then-route-fails", Trace{
			{Op: OpDelete, Src: 0, Dst: 2},
			{Op: OpRoute, Src: 0, Dst: 2},
		}, false},
		{"delete-absent-noop", Trace{
			{Op: OpDelete, Src: 0, Dst: 2},
			{Op: OpDelete, Src: 0, Dst: 2},
		}, true},
		{"delete-below-floor", Trace{
			{Op: OpDelete, Src: 0, Dst: 2},
			{Op: OpDelete, Src: 0, Dst: 1},
		}, false},
		{"delete-crashed-key", Trace{
			{Op: OpCrash, Node: 2},
			{Op: OpDelete, Src: 0, Dst: 2},
		}, false},
		{"scan-zero-limit", Trace{{Op: OpScan, Dst: 0, Limit: 0}}, false},
		{"scan-negative-start", Trace{{Op: OpScan, Dst: -1, Limit: 3}}, false},
		{"scan-ok", Trace{{Op: OpScan, Dst: 2, Limit: 3}}, true},
		{"put-revives-deleted", Trace{
			{Op: OpDelete, Src: 0, Dst: 2},
			{Op: OpPut, Src: 0, Dst: 2},
			{Op: OpRoute, Src: 0, Dst: 2},
		}, true},
	}
	for _, c := range cases {
		err := c.tr.Validate(3)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
