package workload

import "testing"

func TestParamsAndDescribe(t *testing.T) {
	cases := []struct {
		g    Generator
		want string
	}{
		{Uniform{Seed: 1}, "uniform"},
		{Zipf{Seed: 1, S: 1.2}, "zipf(s=1.20){s=1.2}"},
		{RepeatedPairs{Seed: 1, K: 4, Hot: 0.9}, "pairs(k=4,hot=0.90){hot=0.9 k=4}"},
		{Temporal{Seed: 1, W: 8, Churn: 0.1}, "temporal(w=8){churn=0.1 w=8}"},
		{Clustered{Seed: 1, C: 8, Local: 0.9}, "clustered(c=8,local=0.90){c=8 local=0.9}"},
		{Adversarial{Seed: 1}, "adversarial"},
	}
	for _, c := range cases {
		if got := Describe(c.g); got != c.want {
			t.Errorf("Describe(%T) = %q, want %q", c.g, got, c.want)
		}
	}
	if got := ParamString(Uniform{Seed: 1}); got != "" {
		t.Errorf("ParamString(Uniform) = %q, want empty", got)
	}
	if got := ParamString(Temporal{Seed: 1, W: 8, Churn: 0.1}); got != "churn=0.1 w=8" {
		t.Errorf("ParamString(Temporal) = %q", got)
	}
}

func TestSuite(t *testing.T) {
	suite := Suite(7)
	if len(suite) < 6 {
		t.Fatalf("suite has %d generators, want at least 6", len(suite))
	}
	seen := map[string]bool{}
	for _, g := range suite {
		name := g.Name()
		if seen[name] {
			t.Errorf("duplicate generator %q in suite", name)
		}
		seen[name] = true
		if _, ok := g.(Parameterized); !ok {
			t.Errorf("%q does not implement Parameterized", name)
		}
		reqs := g.Generate(16, 50)
		if len(reqs) != 50 {
			t.Errorf("%q generated %d requests, want 50", name, len(reqs))
		}
	}
}
