package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Request is a single source→destination communication request.
type Request struct {
	Src int
	Dst int
}

// Generator produces a request sequence over n nodes.
type Generator interface {
	// Name identifies the generator in experiment tables.
	Name() string
	// Generate returns m requests over node indices [0, n). Implementations
	// panic when (n, m) violates ValidateArgs — the experiment code calls
	// them with compile-time-known sizes, so a bad argument is a programming
	// error there. Callers with untrusted input use the package-level
	// Generate, which validates first and returns an error instead.
	Generate(n, m int) []Request
}

// ValidateArgs reports whether (n, m) is a legal generator input: at least
// two nodes (a request needs distinct endpoints) and a non-negative request
// count.
func ValidateArgs(n, m int) error {
	if n < 2 {
		return fmt.Errorf("workload: need at least 2 nodes, got %d", n)
	}
	if m < 0 {
		return fmt.Errorf("workload: negative request count %d", m)
	}
	return nil
}

func checkArgs(n, m int) {
	if err := ValidateArgs(n, m); err != nil {
		panic(err.Error())
	}
}

// Generate is the error-returning entry point to any generator: it validates
// (n, m) up front and only then invokes g, so callers with runtime-supplied
// sizes never hit the Generator panic contract.
func Generate(g Generator, n, m int) ([]Request, error) {
	if err := ValidateArgs(n, m); err != nil {
		return nil, err
	}
	return g.Generate(n, m), nil
}

// Uniform picks source and destination independently and uniformly.
type Uniform struct {
	Seed int64
}

// Name implements Generator.
func (Uniform) Name() string { return "uniform" }

// Generate implements Generator.
func (g Uniform) Generate(n, m int) []Request {
	checkArgs(n, m)
	rng := rand.New(rand.NewSource(g.Seed))
	reqs := make([]Request, 0, m)
	for len(reqs) < m {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if src == dst {
			continue
		}
		reqs = append(reqs, Request{Src: src, Dst: dst})
	}
	return reqs
}

// Zipf draws both endpoints from a Zipf distribution with exponent S over a
// random permutation of the nodes, yielding the skewed popularity pattern
// typical of peer-to-peer traffic.
type Zipf struct {
	Seed int64
	S    float64 // exponent, must be > 1
}

// Name implements Generator.
func (g Zipf) Name() string { return fmt.Sprintf("zipf(s=%.2f)", g.S) }

// Generate implements Generator.
func (g Zipf) Generate(n, m int) []Request {
	checkArgs(n, m)
	s := g.S
	if s <= 1 {
		s = 1.01
	}
	rng := rand.New(rand.NewSource(g.Seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	perm := rng.Perm(n)
	reqs := make([]Request, 0, m)
	for len(reqs) < m {
		src := perm[int(z.Uint64())]
		dst := perm[int(z.Uint64())]
		if src == dst {
			continue
		}
		reqs = append(reqs, Request{Src: src, Dst: dst})
	}
	return reqs
}

// RepeatedPairs selects K disjoint hot pairs; each request picks a hot pair
// with probability Hot, otherwise a uniform random pair. With Hot = 1 and
// K = 1 this is the best case for any self-adjusting topology.
type RepeatedPairs struct {
	Seed int64
	K    int     // number of hot pairs (≥ 1)
	Hot  float64 // probability of drawing a hot pair
}

// Name implements Generator.
func (g RepeatedPairs) Name() string {
	return fmt.Sprintf("pairs(k=%d,hot=%.2f)", g.K, g.Hot)
}

// Generate implements Generator.
func (g RepeatedPairs) Generate(n, m int) []Request {
	checkArgs(n, m)
	k := g.K
	if k < 1 {
		k = 1
	}
	if 2*k > n {
		k = n / 2
	}
	rng := rand.New(rand.NewSource(g.Seed))
	perm := rng.Perm(n)
	pairs := make([]Request, k)
	for i := 0; i < k; i++ {
		pairs[i] = Request{Src: perm[2*i], Dst: perm[2*i+1]}
	}
	reqs := make([]Request, 0, m)
	for len(reqs) < m {
		if rng.Float64() < g.Hot {
			reqs = append(reqs, pairs[rng.Intn(k)])
			continue
		}
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if src == dst {
			continue
		}
		reqs = append(reqs, Request{Src: src, Dst: dst})
	}
	return reqs
}

// Temporal emulates working-set locality: requests are drawn from a sliding
// set of W currently-active nodes; at each step the active set mutates with
// probability Churn. Small W means strong temporal locality, so the paper's
// working-set bound is small and DSG should win big.
type Temporal struct {
	Seed  int64
	W     int     // working-set size (≥ 2)
	Churn float64 // per-request probability of swapping one active node
}

// Name implements Generator.
func (g Temporal) Name() string { return fmt.Sprintf("temporal(w=%d)", g.W) }

// Generate implements Generator.
func (g Temporal) Generate(n, m int) []Request {
	checkArgs(n, m)
	w := g.W
	if w < 2 {
		w = 2
	}
	if w > n {
		w = n
	}
	rng := rand.New(rand.NewSource(g.Seed))
	perm := rng.Perm(n)
	active := append([]int(nil), perm[:w]...)
	inactive := append([]int(nil), perm[w:]...)
	reqs := make([]Request, 0, m)
	for len(reqs) < m {
		if len(inactive) > 0 && rng.Float64() < g.Churn {
			ai := rng.Intn(len(active))
			ii := rng.Intn(len(inactive))
			active[ai], inactive[ii] = inactive[ii], active[ai]
		}
		i := rng.Intn(len(active))
		j := rng.Intn(len(active))
		if i == j {
			continue
		}
		reqs = append(reqs, Request{Src: active[i], Dst: active[j]})
	}
	return reqs
}

// Clustered partitions the nodes into C communities; a request stays inside
// one community with probability Local. This models the rack/data-center
// hierarchy from the paper's conclusion (VM migration use case).
type Clustered struct {
	Seed  int64
	C     int     // number of communities (≥ 1)
	Local float64 // probability that a request is intra-community
}

// Name implements Generator.
func (g Clustered) Name() string {
	return fmt.Sprintf("clustered(c=%d,local=%.2f)", g.C, g.Local)
}

// Generate implements Generator.
func (g Clustered) Generate(n, m int) []Request {
	checkArgs(n, m)
	c := g.C
	if c < 1 {
		c = 1
	}
	if c > n/2 {
		c = n / 2
	}
	rng := rand.New(rand.NewSource(g.Seed))
	perm := rng.Perm(n)
	communities := make([][]int, c)
	for i, p := range perm {
		communities[i%c] = append(communities[i%c], p)
	}
	reqs := make([]Request, 0, m)
	for len(reqs) < m {
		var src, dst int
		if rng.Float64() < g.Local {
			comm := communities[rng.Intn(c)]
			src = comm[rng.Intn(len(comm))]
			dst = comm[rng.Intn(len(comm))]
		} else {
			src = rng.Intn(n)
			dst = rng.Intn(n)
		}
		if src == dst {
			continue
		}
		reqs = append(reqs, Request{Src: src, Dst: dst})
	}
	return reqs
}

// Adversarial cycles deterministically through all ordered pairs of a random
// permutation in a round-robin order, ensuring every request's working set
// is maximal. No self-adjusting algorithm can beat Θ(log n) per request
// here, making it the stress case for DSG's O(log n) worst-case guarantee.
type Adversarial struct {
	Seed int64
}

// Name implements Generator.
func (Adversarial) Name() string { return "adversarial" }

// Generate implements Generator.
func (g Adversarial) Generate(n, m int) []Request {
	checkArgs(n, m)
	rng := rand.New(rand.NewSource(g.Seed))
	perm := rng.Perm(n)
	reqs := make([]Request, 0, m)
	// Stride through pairs (i, i+stride) with varying stride so consecutive
	// requests share no endpoints and revisit pairs as rarely as possible.
	for stride := 1; len(reqs) < m; stride++ {
		st := stride % (n - 1)
		if st == 0 {
			st = 1
		}
		for i := 0; i < n && len(reqs) < m; i++ {
			j := (i + st) % n
			reqs = append(reqs, Request{Src: perm[i], Dst: perm[j]})
		}
	}
	return reqs
}

// HotRange concentrates traffic on one contiguous key range: with
// probability Hot both endpoints are drawn uniformly from [LoFrac·n,
// HiFrac·n), otherwise uniformly from all nodes. This is the hot-shard
// regime for partitioned deployments — a contiguous range is exactly what a
// range-sharded directory assigns to one shard, so a skew-driven rebalancer
// must split the range to level the load (experiment E18).
type HotRange struct {
	Seed   int64
	LoFrac float64 // start of the hot range as a fraction of n (default 0)
	HiFrac float64 // end of the hot range as a fraction of n (default 0.125)
	Hot    float64 // probability a request stays inside the hot range
}

// Name implements Generator.
func (g HotRange) Name() string {
	lo, hi := g.bounds()
	return fmt.Sprintf("hotrange(%.2f-%.2f,hot=%.2f)", lo, hi, g.Hot)
}

// bounds normalizes the range fractions.
func (g HotRange) bounds() (lo, hi float64) {
	lo, hi = g.LoFrac, g.HiFrac
	if hi <= lo {
		lo, hi = 0, 0.125
	}
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Generate implements Generator.
func (g HotRange) Generate(n, m int) []Request {
	checkArgs(n, m)
	loF, hiF := g.bounds()
	lo := int(loF * float64(n))
	hi := int(hiF * float64(n))
	if hi < lo+2 { // a hot pair needs two distinct keys
		hi = lo + 2
	}
	if hi > n {
		lo, hi = n-2, n
	}
	rng := rand.New(rand.NewSource(g.Seed))
	reqs := make([]Request, 0, m)
	for len(reqs) < m {
		var src, dst int
		if rng.Float64() < g.Hot {
			src = lo + rng.Intn(hi-lo)
			dst = lo + rng.Intn(hi-lo)
		} else {
			src = rng.Intn(n)
			dst = rng.Intn(n)
		}
		if src == dst {
			continue
		}
		reqs = append(reqs, Request{Src: src, Dst: dst})
	}
	return reqs
}

// Zipfian frequency helper used in analyses/tests.

// ZipfWeights returns normalized Zipf weights for ranks 1..n with exponent s.
func ZipfWeights(n int, s float64) []float64 {
	ws := make([]float64, n)
	var sum float64
	for i := range ws {
		ws[i] = 1 / math.Pow(float64(i+1), s)
		sum += ws[i]
	}
	for i := range ws {
		ws[i] /= sum
	}
	return ws
}
