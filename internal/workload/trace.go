package workload

import "fmt"

// Op is the kind of one event in a dynamic workload trace.
type Op int

const (
	// OpRoute is a communication request between two live nodes.
	OpRoute Op = iota
	// OpJoin adds a fresh node to the network.
	OpJoin
	// OpLeave removes a live node from the network.
	OpLeave
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRoute:
		return "route"
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Event is one step of a dynamic workload: either a routing request between
// two live node identifiers (OpRoute, using Src/Dst) or a membership change
// (OpJoin/OpLeave, using Node). Identifiers are int64 to match the network
// packages; a trace over n initial nodes uses ids 0..n-1 for the starting
// membership and fresh ids ≥ n for joins.
type Event struct {
	Op   Op
	Src  int64 // OpRoute source
	Dst  int64 // OpRoute destination
	Node int64 // OpJoin / OpLeave subject
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e.Op == OpRoute {
		return fmt.Sprintf("route(%d→%d)", e.Src, e.Dst)
	}
	return fmt.Sprintf("%s(%d)", e.Op, e.Node)
}

// Trace is an ordered event sequence produced by a TraceGenerator.
type Trace []Event

// Counts returns the number of route, join, and leave events.
func (tr Trace) Counts() (routes, joins, leaves int) {
	for _, e := range tr {
		switch e.Op {
		case OpRoute:
			routes++
		case OpJoin:
			joins++
		case OpLeave:
			leaves++
		}
	}
	return routes, joins, leaves
}

// Validate replays the trace against a membership model and returns the
// first inconsistency: a route touching a dead or unknown id, a join of an
// already-live id, a leave of a dead id, or a leave that would drop the
// membership below two nodes (the minimum for routing). The initial
// membership is ids 0..n-1.
func (tr Trace) Validate(n int) error {
	if n < 2 {
		return fmt.Errorf("workload: trace needs at least 2 initial nodes, got %d", n)
	}
	live := make(map[int64]bool, n)
	for i := 0; i < n; i++ {
		live[int64(i)] = true
	}
	for i, e := range tr {
		switch e.Op {
		case OpRoute:
			if !live[e.Src] || !live[e.Dst] {
				return fmt.Errorf("workload: event %d %s references a dead node", i, e)
			}
			if e.Src == e.Dst {
				return fmt.Errorf("workload: event %d %s is a self route", i, e)
			}
		case OpJoin:
			if live[e.Node] {
				return fmt.Errorf("workload: event %d %s joins a live node", i, e)
			}
			live[e.Node] = true
		case OpLeave:
			if !live[e.Node] {
				return fmt.Errorf("workload: event %d %s leaves a dead node", i, e)
			}
			if len(live) <= 2 {
				return fmt.Errorf("workload: event %d %s would drop membership below 2", i, e)
			}
			delete(live, e.Node)
		default:
			return fmt.Errorf("workload: event %d has unknown op %d", i, int(e.Op))
		}
	}
	return nil
}

// TraceGenerator produces a dynamic workload: a trace with exactly m route
// events, interleaved with the generator's membership events, over an
// initial network of n nodes (ids 0..n-1).
type TraceGenerator interface {
	// Name identifies the generator in experiment tables.
	Name() string
	// Trace returns the event sequence, or an error for invalid (n, m).
	Trace(n, m int) (Trace, error)
}

// NoChurn wraps a plain request generator as a TraceGenerator with no
// membership events, the zero-churn baseline of every churn sweep.
type NoChurn struct {
	Base Generator // route traffic; defaults to Uniform{}
}

func (g NoChurn) base() Generator {
	if g.Base == nil {
		return Uniform{}
	}
	return g.Base
}

// Name implements TraceGenerator.
func (g NoChurn) Name() string { return "nochurn(" + g.base().Name() + ")" }

// Trace implements TraceGenerator.
func (g NoChurn) Trace(n, m int) (Trace, error) {
	reqs, err := Generate(g.base(), n, m)
	if err != nil {
		return nil, err
	}
	tr := make(Trace, len(reqs))
	for i, r := range reqs {
		tr[i] = Event{Op: OpRoute, Src: int64(r.Src), Dst: int64(r.Dst)}
	}
	return tr, nil
}

// membership tracks the live id set while a churn generator interleaves
// joins and leaves with a base request stream. Live ids are kept in id
// order so leave selection is deterministic and correlated departures can
// target key-adjacent nodes.
type membership struct {
	live   []int64 // sorted ascending
	nextID int64   // fresh id for the next join
}

func newMembership(n int) *membership {
	ms := &membership{live: make([]int64, n), nextID: int64(n)}
	for i := range ms.live {
		ms.live[i] = int64(i)
	}
	return ms
}

func (ms *membership) size() int { return len(ms.live) }

// join mints a fresh id, records it live, and returns the join event.
// Fresh ids only grow, so appending keeps the slice sorted.
func (ms *membership) join() Event {
	id := ms.nextID
	ms.nextID++
	ms.live = append(ms.live, id)
	return Event{Op: OpJoin, Node: id}
}

// leaveAt removes the live node at the given position (id order) and
// returns the leave event.
func (ms *membership) leaveAt(pos int) Event {
	id := ms.live[pos]
	ms.live = append(ms.live[:pos], ms.live[pos+1:]...)
	return Event{Op: OpLeave, Node: id}
}

// route maps a base request over the fixed index space [0, n) onto the
// current membership: index i addresses the i-th live node (mod size), so a
// skewed base workload keeps its skew — the hot indices follow whatever
// nodes currently occupy the hot positions. Returns false when the mapped
// endpoints collide (caller skips the base request).
func (ms *membership) route(r Request) (Event, bool) {
	src := ms.live[r.Src%len(ms.live)]
	dst := ms.live[r.Dst%len(ms.live)]
	if src == dst {
		return Event{}, false
	}
	return Event{Op: OpRoute, Src: src, Dst: dst}, true
}
