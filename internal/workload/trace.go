package workload

import "fmt"

// Op is the kind of one event in a dynamic workload trace.
type Op int

const (
	// OpRoute is a communication request between two live nodes — or, under
	// crash failures, from a live node toward a crashed one (a stale client
	// view probing an unavailable peer).
	OpRoute Op = iota
	// OpJoin adds a fresh node to the network.
	OpJoin
	// OpLeave removes a live node from the network (graceful departure).
	OpLeave
	// OpCrash fails a live node without a goodbye: no leave-side repair
	// runs, and the network discovers the failure only when a route
	// contacts the dead peer. Crashed ids are never reused.
	OpCrash
	// OpGet reads Dst's value as an access from Src — the same σ=(o,k)
	// access a route is, so it adjusts the topology too.
	OpGet
	// OpPut writes a value to Dst as an access from Src. A put of an absent
	// id joins it (a tracked join), so puts double as insertions. Trace
	// events carry no value bytes; the replayer synthesizes a deterministic
	// payload from (key, sequence).
	OpPut
	// OpDelete removes Dst from the keyspace — a tracked leave addressed by
	// key, requested by Src. Deleting an absent id is a legal no-op.
	OpDelete
	// OpScan reads up to Limit value-bearing entries starting at the first
	// key ≥ Dst. Read-only: it never adjusts the topology.
	OpScan
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRoute:
		return "route"
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpCrash:
		return "crash"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Event is one step of a dynamic workload: a routing request between two
// node identifiers (OpRoute, using Src/Dst), a membership change
// (OpJoin/OpLeave/OpCrash, using Node), or a KV operation (OpGet/OpPut/
// OpDelete use Src as the origin and Dst as the key; OpScan uses Dst as the
// start key and Limit as the entry cap). Identifiers are int64 to match the
// network packages; a trace over n initial nodes uses ids 0..n-1 for the
// starting membership and fresh ids ≥ n for joins.
type Event struct {
	Op    Op
	Src   int64 // OpRoute / KV op origin
	Dst   int64 // OpRoute destination; KV op key; OpScan start key
	Node  int64 // OpJoin / OpLeave / OpCrash subject
	Limit int   // OpScan entry cap, ≥ 1
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Op {
	case OpRoute:
		return fmt.Sprintf("route(%d→%d)", e.Src, e.Dst)
	case OpGet, OpPut, OpDelete:
		return fmt.Sprintf("%s(%d→%d)", e.Op, e.Src, e.Dst)
	case OpScan:
		return fmt.Sprintf("scan(%d,limit=%d)", e.Dst, e.Limit)
	default:
		return fmt.Sprintf("%s(%d)", e.Op, e.Node)
	}
}

// Trace is an ordered event sequence produced by a TraceGenerator.
type Trace []Event

// Counts returns the number of route, join, and leave events.
func (tr Trace) Counts() (routes, joins, leaves int) {
	for _, e := range tr {
		switch e.Op {
		case OpRoute:
			routes++
		case OpJoin:
			joins++
		case OpLeave:
			leaves++
		}
	}
	return routes, joins, leaves
}

// Crashes returns the number of crash events.
func (tr Trace) Crashes() int {
	c := 0
	for _, e := range tr {
		if e.Op == OpCrash {
			c++
		}
	}
	return c
}

// KVCounts returns the number of get, put, delete, and scan events.
func (tr Trace) KVCounts() (gets, puts, deletes, scans int) {
	for _, e := range tr {
		switch e.Op {
		case OpGet:
			gets++
		case OpPut:
			puts++
		case OpDelete:
			deletes++
		case OpScan:
			scans++
		}
	}
	return gets, puts, deletes, scans
}

// Validate replays the trace against a three-state membership model (live,
// departed, crashed) and returns the first inconsistency: a route from
// anything but a live node, a route to an id that never was or gracefully
// left, a join of a live or crashed id (crashed ids are never reused), a
// leave of a non-live id, a crash of a non-live id (absent, departed, or
// already crashed), or a membership change that would drop the live
// population below two nodes (the minimum for routing). A route TO a crashed
// id is legal — it models a stale client probing an unavailable peer, the
// availability measure of the failure experiments. The initial membership is
// ids 0..n-1.
//
// KV events follow the data-plane contract: a get needs a live origin (any
// key is a legal target — absent and crashed keys read as misses); a put
// needs a live origin and a non-crashed key, and makes an absent key live (a
// put-join); a delete needs a live origin and a non-crashed key — deleting a
// live key obeys the same two-node floor as a leave and makes the key
// absent, deleting an absent key is a no-op; a scan needs a non-negative
// start key and a positive limit.
func (tr Trace) Validate(n int) error {
	if n < 2 {
		return fmt.Errorf("workload: trace needs at least 2 initial nodes, got %d", n)
	}
	live := make(map[int64]bool, n)
	crashed := make(map[int64]bool)
	for i := 0; i < n; i++ {
		live[int64(i)] = true
	}
	for i, e := range tr {
		switch e.Op {
		case OpRoute:
			if !live[e.Src] {
				return fmt.Errorf("workload: event %d %s routes from a non-live node", i, e)
			}
			if !live[e.Dst] && !crashed[e.Dst] {
				return fmt.Errorf("workload: event %d %s references a dead node", i, e)
			}
			if e.Src == e.Dst {
				return fmt.Errorf("workload: event %d %s is a self route", i, e)
			}
		case OpJoin:
			if live[e.Node] {
				return fmt.Errorf("workload: event %d %s joins a live node", i, e)
			}
			if crashed[e.Node] {
				return fmt.Errorf("workload: event %d %s reuses a crashed id", i, e)
			}
			live[e.Node] = true
		case OpLeave:
			if !live[e.Node] {
				return fmt.Errorf("workload: event %d %s leaves a dead node", i, e)
			}
			if len(live) <= 2 {
				return fmt.Errorf("workload: event %d %s would drop membership below 2", i, e)
			}
			delete(live, e.Node)
		case OpCrash:
			if crashed[e.Node] {
				return fmt.Errorf("workload: event %d %s crashes an already-crashed node", i, e)
			}
			if !live[e.Node] {
				return fmt.Errorf("workload: event %d %s crashes an absent node", i, e)
			}
			if len(live) <= 2 {
				return fmt.Errorf("workload: event %d %s would drop membership below 2", i, e)
			}
			delete(live, e.Node)
			crashed[e.Node] = true
		case OpGet:
			if !live[e.Src] {
				return fmt.Errorf("workload: event %d %s reads from a non-live origin", i, e)
			}
		case OpPut:
			if !live[e.Src] {
				return fmt.Errorf("workload: event %d %s writes from a non-live origin", i, e)
			}
			if crashed[e.Dst] {
				return fmt.Errorf("workload: event %d %s writes to a crashed key", i, e)
			}
			live[e.Dst] = true // a put of an absent key joins it
		case OpDelete:
			if !live[e.Src] {
				return fmt.Errorf("workload: event %d %s deletes from a non-live origin", i, e)
			}
			if crashed[e.Dst] {
				return fmt.Errorf("workload: event %d %s deletes a crashed key", i, e)
			}
			if live[e.Dst] {
				if len(live) <= 2 {
					return fmt.Errorf("workload: event %d %s would drop membership below 2", i, e)
				}
				delete(live, e.Dst)
			}
		case OpScan:
			if e.Dst < 0 {
				return fmt.Errorf("workload: event %d %s has a negative start key", i, e)
			}
			if e.Limit < 1 {
				return fmt.Errorf("workload: event %d %s needs limit ≥ 1", i, e)
			}
		default:
			return fmt.Errorf("workload: event %d has unknown op %d", i, int(e.Op))
		}
	}
	return nil
}

// TraceGenerator produces a dynamic workload: a trace with exactly m route
// events, interleaved with the generator's membership events, over an
// initial network of n nodes (ids 0..n-1).
type TraceGenerator interface {
	// Name identifies the generator in experiment tables.
	Name() string
	// Trace returns the event sequence, or an error for invalid (n, m).
	Trace(n, m int) (Trace, error)
}

// NoChurn wraps a plain request generator as a TraceGenerator with no
// membership events, the zero-churn baseline of every churn sweep.
type NoChurn struct {
	Base Generator // route traffic; defaults to Uniform{}
}

func (g NoChurn) base() Generator {
	if g.Base == nil {
		return Uniform{}
	}
	return g.Base
}

// Name implements TraceGenerator.
func (g NoChurn) Name() string { return "nochurn(" + g.base().Name() + ")" }

// Trace implements TraceGenerator.
func (g NoChurn) Trace(n, m int) (Trace, error) {
	reqs, err := Generate(g.base(), n, m)
	if err != nil {
		return nil, err
	}
	tr := make(Trace, len(reqs))
	for i, r := range reqs {
		tr[i] = Event{Op: OpRoute, Src: int64(r.Src), Dst: int64(r.Dst)}
	}
	return tr, nil
}

// membership tracks the live id set while a churn generator interleaves
// joins and leaves with a base request stream. Live ids are kept in id
// order so leave selection is deterministic and correlated departures can
// target key-adjacent nodes.
type membership struct {
	live   []int64 // sorted ascending
	nextID int64   // fresh id for the next join
	// recentCrashed is the window of recently crashed ids a stale route may
	// still target (bounded to staleWindow entries, oldest dropped first).
	recentCrashed []int64
}

func newMembership(n int) *membership {
	ms := &membership{live: make([]int64, n), nextID: int64(n)}
	for i := range ms.live {
		ms.live[i] = int64(i)
	}
	return ms
}

func (ms *membership) size() int { return len(ms.live) }

// join mints a fresh id, records it live, and returns the join event.
// Fresh ids only grow, so appending keeps the slice sorted.
func (ms *membership) join() Event {
	id := ms.nextID
	ms.nextID++
	ms.live = append(ms.live, id)
	return Event{Op: OpJoin, Node: id}
}

// leaveAt removes the live node at the given position (id order) and
// returns the leave event.
func (ms *membership) leaveAt(pos int) Event {
	id := ms.live[pos]
	ms.live = append(ms.live[:pos], ms.live[pos+1:]...)
	return Event{Op: OpLeave, Node: id}
}

// crashAt fails the live node at the given position (id order) and returns
// the crash event. The id moves to the recently-crashed window that stale
// routes may still target.
func (ms *membership) crashAt(pos int) Event {
	id := ms.live[pos]
	ms.live = append(ms.live[:pos], ms.live[pos+1:]...)
	ms.recentCrashed = append(ms.recentCrashed, id)
	if len(ms.recentCrashed) > staleWindow {
		ms.recentCrashed = ms.recentCrashed[len(ms.recentCrashed)-staleWindow:]
	}
	return Event{Op: OpCrash, Node: id}
}

// route maps a base request over the fixed index space [0, n) onto the
// current membership: index i addresses the i-th live node (mod size), so a
// skewed base workload keeps its skew — the hot indices follow whatever
// nodes currently occupy the hot positions. Returns false when the mapped
// endpoints collide (caller skips the base request).
func (ms *membership) route(r Request) (Event, bool) {
	src := ms.live[r.Src%len(ms.live)]
	dst := ms.live[r.Dst%len(ms.live)]
	if src == dst {
		return Event{}, false
	}
	return Event{Op: OpRoute, Src: src, Dst: dst}, true
}
