package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// This file holds the KV workload shapes: YCSB-style operation mixes layered
// over any key-popularity generator. A KV trace drives the data plane — gets
// and puts are accesses that adjust the topology exactly like routes, puts
// of absent keys are insertions (tracked joins), deletes are tracked leaves
// addressed by key, and scans are read-only range reads. The key space is
// the fixed index range [0, n): insertions therefore need free keys, which
// the generator carves out up front with an evenly-strided batch of deletes
// sized to the expected insertion count.

// MixRatios is a YCSB-style operation mix: the relative weight of each KV
// operation kind. Weights need not sum to one — they are normalized — but
// must be non-negative with a positive sum. Read and Update are point
// operations over live keys (get and put respectively); Insert is a put of
// a currently absent key; Scan is a range read; Delete removes a live key.
type MixRatios struct {
	Read   float64
	Update float64
	Insert float64
	Scan   float64
	Delete float64
}

// Named mixes, following the YCSB core-workload letters where they apply.
var (
	// MixA is the update-heavy mix: 50% reads, 50% updates (YCSB-A).
	MixA = MixRatios{Read: 0.5, Update: 0.5}
	// MixB is the read-mostly mix: 95% reads, 5% updates (YCSB-B).
	MixB = MixRatios{Read: 0.95, Update: 0.05}
	// MixC is the read-only mix (YCSB-C).
	MixC = MixRatios{Read: 1}
	// MixE is the scan-heavy mix: 95% short scans, 5% inserts (YCSB-E).
	MixE = MixRatios{Scan: 0.95, Insert: 0.05}
	// MixCRUD is a balanced exercise of every operation kind — not a YCSB
	// letter, but the mix that stresses the full put-join/delete-leave
	// machinery at once.
	MixCRUD = MixRatios{Read: 0.4, Update: 0.25, Insert: 0.15, Scan: 0.1, Delete: 0.1}
)

// namedMixes maps the ParseMix shorthand letters to their ratios.
var namedMixes = map[string]MixRatios{
	"a":    MixA,
	"b":    MixB,
	"c":    MixC,
	"e":    MixE,
	"crud": MixCRUD,
}

// Check validates the mix: every weight non-negative and finite, and the
// sum positive.
func (m MixRatios) Check() error {
	sum := 0.0
	for _, w := range []float64{m.Read, m.Update, m.Insert, m.Scan, m.Delete} {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("workload: mix weight %v out of range [0, ∞)", w)
		}
		sum += w
	}
	if sum <= 0 {
		return fmt.Errorf("workload: mix weights sum to %v, need > 0", sum)
	}
	return nil
}

// normalized returns the mix scaled to sum to one.
func (m MixRatios) normalized() MixRatios {
	sum := m.Read + m.Update + m.Insert + m.Scan + m.Delete
	return MixRatios{
		Read:   m.Read / sum,
		Update: m.Update / sum,
		Insert: m.Insert / sum,
		Scan:   m.Scan / sum,
		Delete: m.Delete / sum,
	}
}

// String renders the normalized mix compactly, nonzero weights only, in the
// fixed order read/update/insert/scan/delete — e.g. "r0.95+u0.05".
func (m MixRatios) String() string {
	n := m.normalized()
	var parts []string
	for _, p := range []struct {
		tag string
		w   float64
	}{{"r", n.Read}, {"u", n.Update}, {"i", n.Insert}, {"s", n.Scan}, {"d", n.Delete}} {
		if p.w > 0 {
			parts = append(parts, fmt.Sprintf("%s%.2f", p.tag, p.w))
		}
	}
	return strings.Join(parts, "+")
}

// ParseMix resolves an operation mix from a string: a named mix ("a", "b",
// "c", "e", "crud", case-insensitive) or five colon-separated weights in the
// order read:update:insert:scan:delete (e.g. "50:30:10:5:5").
func ParseMix(s string) (MixRatios, error) {
	if m, ok := namedMixes[strings.ToLower(strings.TrimSpace(s))]; ok {
		return m, nil
	}
	fields := strings.Split(s, ":")
	if len(fields) != 5 {
		return MixRatios{}, fmt.Errorf("workload: mix %q is neither a named mix (a, b, c, e, crud) nor five read:update:insert:scan:delete weights", s)
	}
	var w [5]float64
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return MixRatios{}, fmt.Errorf("workload: mix %q: weight %q is not a number", s, f)
		}
		w[i] = v
	}
	m := MixRatios{Read: w[0], Update: w[1], Insert: w[2], Scan: w[3], Delete: w[4]}
	if err := m.Check(); err != nil {
		return MixRatios{}, err
	}
	return m, nil
}

// KVMix generates a KV operation trace over the fixed key space [0, n):
// each of the m events is drawn from Mix, with origins and point-operation
// keys drawn through Base (so a skewed base workload yields skewed key
// popularity, mapped onto whatever keys are currently live — exactly like
// the churn generators' route mapping). Scan lengths are uniform in
// [1, MaxScanLen], the YCSB-E convention.
//
// Insertions need absent keys. Before the main stream the generator carves
// out free keyspace with an evenly-strided batch of deletes sized to the
// expected insertion count (capped at a quarter of the key space), so every
// shard of a sharded run loses keys proportionally; each insert then revives
// the lowest carved key, and each delete feeds the free pool. When the free
// pool runs dry an insert degrades to an update, and when the live
// population reaches the floor a delete degrades to an update — the trace
// always carries exactly m KV events.
type KVMix struct {
	Seed       int64
	Mix        MixRatios
	MaxScanLen int       // scan length cap, ≥ 1; defaults to 16
	Base       Generator // origin/key popularity; defaults to Uniform{Seed}
}

// Name implements TraceGenerator.
func (g KVMix) Name() string {
	return fmt.Sprintf("kv[%s](%s)", g.Mix, g.base().Name())
}

func (g KVMix) base() Generator {
	if g.Base == nil {
		return Uniform{Seed: g.Seed}
	}
	return g.Base
}

func (g KVMix) maxScanLen() int {
	if g.MaxScanLen == 0 {
		return 16
	}
	return g.MaxScanLen
}

// Params implements Parameterized.
func (g KVMix) Params() map[string]float64 {
	n := g.Mix.normalized()
	p := map[string]float64{
		"read": n.Read, "update": n.Update, "insert": n.Insert,
		"scan": n.Scan, "delete": n.Delete,
		"scanlen": float64(g.maxScanLen()),
	}
	mergeBaseParams(p, g.base())
	return p
}

// kvState tracks which keys of [0, n) are live during generation. The live
// slice stays sorted (key order) so position-based draws are deterministic
// and skew-preserving; free is a min-ordered pool of absent keys.
type kvState struct {
	live []int64
	pos  map[int64]int // key → index in live
	free []int64       // absent keys, ascending
}

func newKVState(n int) *kvState {
	st := &kvState{live: make([]int64, n), pos: make(map[int64]int, n)}
	for i := range st.live {
		st.live[i] = int64(i)
		st.pos[int64(i)] = i
	}
	return st
}

// at maps a base-generator index onto the i-th live key (mod size).
func (st *kvState) at(i int) int64 { return st.live[i%len(st.live)] }

// remove deletes key from the live set, keeping order, and returns it to
// the free pool.
func (st *kvState) remove(key int64) {
	i := st.pos[key]
	st.live = append(st.live[:i], st.live[i+1:]...)
	delete(st.pos, key)
	for j := i; j < len(st.live); j++ {
		st.pos[st.live[j]] = j
	}
	// Insert into free keeping ascending order (pool stays small).
	j := len(st.free)
	for j > 0 && st.free[j-1] > key {
		j--
	}
	st.free = append(st.free, 0)
	copy(st.free[j+1:], st.free[j:])
	st.free[j] = key
}

// revive pops the lowest free key back into the live set.
func (st *kvState) revive() int64 {
	key := st.free[0]
	st.free = st.free[1:]
	i := len(st.live)
	for i > 0 && st.live[i-1] > key {
		i--
	}
	st.live = append(st.live, 0)
	copy(st.live[i+1:], st.live[i:])
	st.live[i] = key
	for j := i; j < len(st.live); j++ {
		st.pos[st.live[j]] = j
	}
	return key
}

// Trace implements TraceGenerator. The trace carries exactly m KV events
// after the carve-out prefix; every event validates under Trace.Validate.
func (g KVMix) Trace(n, m int) (Trace, error) {
	if err := ValidateArgs(n, m); err != nil {
		return nil, err
	}
	if err := g.Mix.Check(); err != nil {
		return nil, err
	}
	if g.maxScanLen() < 1 {
		return nil, fmt.Errorf("workload: scan length cap %d, need ≥ 1", g.maxScanLen())
	}
	mix := g.Mix.normalized()
	rng := rand.New(rand.NewSource(g.Seed + 808))
	reqs := g.base().Generate(n, m)
	st := newKVState(n)

	// Carve out free keyspace for the expected insertions: an evenly-strided
	// delete batch, so no contiguous key region (= no shard) empties out.
	carve := int(math.Ceil(mix.Insert * float64(m)))
	if max := n / 4; carve > max {
		carve = max
	}
	if max := n - minLive; carve > max {
		carve = max
	}
	tr := make(Trace, 0, m+carve)
	for i := 0; i < carve; i++ {
		key := int64(i * n / carve)
		origin := st.at(rng.Intn(len(st.live)))
		if origin == key {
			origin = st.at(st.pos[key] + 1)
		}
		tr = append(tr, Event{Op: OpDelete, Src: origin, Dst: key})
		st.remove(key)
	}

	cumUpdate := mix.Read + mix.Update
	cumInsert := cumUpdate + mix.Insert
	cumScan := cumInsert + mix.Scan
	for _, r := range reqs {
		origin := st.at(r.Src)
		u := rng.Float64()
		switch {
		case u < mix.Read:
			tr = append(tr, Event{Op: OpGet, Src: origin, Dst: st.at(r.Dst)})
		case u < cumUpdate:
			tr = append(tr, Event{Op: OpPut, Src: origin, Dst: st.at(r.Dst)})
		case u < cumInsert:
			if len(st.free) == 0 { // pool dry: degrade to an update
				tr = append(tr, Event{Op: OpPut, Src: origin, Dst: st.at(r.Dst)})
				continue
			}
			tr = append(tr, Event{Op: OpPut, Src: origin, Dst: st.revive()})
		case u < cumScan:
			tr = append(tr, Event{
				Op:    OpScan,
				Dst:   int64(rng.Intn(n)),
				Limit: 1 + rng.Intn(g.maxScanLen()),
			})
		default: // delete
			key := st.at(r.Dst)
			if len(st.live) <= minLive+1 || key == origin { // floor, or self-delete: degrade
				tr = append(tr, Event{Op: OpPut, Src: origin, Dst: key})
				continue
			}
			tr = append(tr, Event{Op: OpDelete, Src: origin, Dst: key})
			st.remove(key)
		}
	}
	return tr, nil
}
