package workload

import (
	"math"
	"strings"
	"testing"
)

func allTraceGenerators() []TraceGenerator {
	return []TraceGenerator{
		NoChurn{}, // nil Base defaults to Uniform, like the churn generators
		NoChurn{Base: Uniform{Seed: 1}},
		PoissonChurn{Seed: 2, Rate: 0.1, Base: Zipf{Seed: 2, S: 1.2}},
		PoissonChurn{Seed: 3, Rate: 1.5},
		FlashCrowd{Seed: 4, Period: 20, Burst: 5, Base: Temporal{Seed: 4, W: 8, Churn: 0.1}},
		CorrelatedDepartures{Seed: 5, Period: 25, Burst: 4},
	}
}

// TestTracesAreValid replays every churn generator's trace through the
// membership model: routes only touch live nodes, joins are fresh, leaves
// are live, and the membership never drops below two.
func TestTracesAreValid(t *testing.T) {
	const n, m = 40, 600
	for _, g := range allTraceGenerators() {
		tr, err := g.Trace(n, m)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if err := tr.Validate(n); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
		routes, joins, leaves := tr.Counts()
		if routes != m {
			t.Errorf("%s: %d routes, want %d", g.Name(), routes, m)
		}
		t.Logf("%s: %d events (%d routes, %d joins, %d leaves)",
			g.Name(), len(tr), routes, joins, leaves)
	}
}

// TestTracesDeterministic requires identical traces for identical seeds and
// different traces for different seeds.
func TestTracesDeterministic(t *testing.T) {
	for _, g := range allTraceGenerators() {
		a, err := g.Trace(30, 200)
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Trace(30, 200)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ: %d vs %d", g.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: event %d differs: %v vs %v", g.Name(), i, a[i], b[i])
			}
		}
	}
}

// TestPoissonChurnVolume checks that the realized membership-event count
// tracks the configured rate (law of large numbers, loose tolerance).
func TestPoissonChurnVolume(t *testing.T) {
	const n, m = 50, 4000
	for _, rate := range []float64{0.05, 0.5, 2} {
		tr, err := PoissonChurn{Seed: 7, Rate: rate}.Trace(n, m)
		if err != nil {
			t.Fatal(err)
		}
		_, joins, leaves := tr.Counts()
		got := float64(joins + leaves)
		want := rate * float64(m)
		if got < 0.8*want || got > 1.2*want {
			t.Errorf("rate %.2f: %v membership events, want ≈ %v", rate, got, want)
		}
	}
}

// TestFlashCrowdShape verifies the arrive-then-dissipate pattern: every
// burst joins Burst fresh nodes and the previous crowd leaves in full, so
// joins and leaves stay within one burst of each other.
func TestFlashCrowdShape(t *testing.T) {
	g := FlashCrowd{Seed: 9, Period: 10, Burst: 3}
	tr, err := g.Trace(20, 300)
	if err != nil {
		t.Fatal(err)
	}
	_, joins, leaves := tr.Counts()
	if joins == 0 || leaves == 0 {
		t.Fatalf("no churn: %d joins, %d leaves", joins, leaves)
	}
	if joins-leaves != g.Burst {
		t.Errorf("joins-leaves = %d, want the one lingering burst %d", joins-leaves, g.Burst)
	}
}

// TestCorrelatedDeparturesAdjacent verifies each failure event removes
// id-adjacent nodes: within one leave burst, the departed ids form a
// contiguous run of the pre-failure live set.
func TestCorrelatedDeparturesAdjacent(t *testing.T) {
	g := CorrelatedDepartures{Seed: 11, Period: 15, Burst: 4}
	const n, m = 30, 300
	tr, err := g.Trace(n, m)
	if err != nil {
		t.Fatal(err)
	}
	live := map[int64]bool{}
	for i := 0; i < n; i++ {
		live[int64(i)] = true
	}
	var burst []int64
	checkBurst := func() {
		if len(burst) < 2 {
			return
		}
		// All departed ids must have been consecutive in the pre-burst live
		// set: no still-live id may fall strictly between min and max.
		min, max := burst[0], burst[0]
		departed := map[int64]bool{}
		for _, id := range burst {
			if id < min {
				min = id
			}
			if id > max {
				max = id
			}
			departed[id] = true
		}
		for id := range live {
			if id > min && id < max && !departed[id] {
				t.Errorf("burst %v skipped still-live id %d", burst, id)
			}
		}
	}
	for _, e := range tr {
		switch e.Op {
		case OpLeave:
			burst = append(burst, e.Node)
		case OpJoin:
			checkBurst()
			for _, id := range burst {
				delete(live, id)
			}
			burst = burst[:0]
			live[e.Node] = true
		default:
			checkBurst()
			for _, id := range burst {
				delete(live, id)
			}
			burst = burst[:0]
		}
	}
	_, joins, leaves := tr.Counts()
	if joins != leaves || joins == 0 {
		t.Errorf("recovery should match failures: %d joins, %d leaves", joins, leaves)
	}
}

// TestTraceGeneratorErrors exercises the error path of every trace
// generator (bad n/m and bad knobs).
func TestTraceGeneratorErrors(t *testing.T) {
	for _, g := range allTraceGenerators() {
		if _, err := g.Trace(1, 100); err == nil {
			t.Errorf("%s: no error for n=1", g.Name())
		}
		if _, err := g.Trace(10, -1); err == nil {
			t.Errorf("%s: no error for m=-1", g.Name())
		}
	}
	if _, err := (PoissonChurn{Rate: -1}).Trace(10, 10); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := (PoissonChurn{Rate: math.Inf(1)}).Trace(10, 10); err == nil {
		t.Error("infinite rate accepted")
	}
	if _, err := (PoissonChurn{Rate: math.NaN()}).Trace(10, 10); err == nil {
		t.Error("NaN rate accepted")
	}
	if _, err := (FlashCrowd{Period: 0, Burst: 1}).Trace(10, 10); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := (CorrelatedDepartures{Period: 5, Burst: 0}).Trace(10, 10); err == nil {
		t.Error("zero burst accepted")
	}
}

// TestTraceValidateCatchesBadTraces covers the validator's own failure
// modes, which the fuzz harness depends on.
func TestTraceValidateCatchesBadTraces(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
		want string
	}{
		{"dead route", Trace{{Op: OpRoute, Src: 0, Dst: 99}}, "dead node"},
		{"self route", Trace{{Op: OpRoute, Src: 1, Dst: 1}}, "self route"},
		{"double join", Trace{{Op: OpJoin, Node: 1}}, "joins a live node"},
		{"dead leave", Trace{{Op: OpLeave, Node: 42}}, "leaves a dead node"},
		{"drain", Trace{{Op: OpLeave, Node: 0}}, "below 2"},
	}
	for _, c := range cases {
		err := c.tr.Validate(2)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

// TestParamStringTraceGenerators checks that churn knobs and base-generator
// knobs both land in the canonical parameter string.
func TestParamStringTraceGenerators(t *testing.T) {
	g := PoissonChurn{Seed: 1, Rate: 0.25, Base: Zipf{Seed: 1, S: 1.2}}
	ps := ParamString(g)
	if !strings.Contains(ps, "rate=0.25") || !strings.Contains(ps, "base.s=1.2") {
		t.Errorf("ParamString = %q", ps)
	}
	if ps := ParamString(FlashCrowd{Period: 5, Burst: 2}); !strings.Contains(ps, "period=5") {
		t.Errorf("ParamString = %q", ps)
	}
}
