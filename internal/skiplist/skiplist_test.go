package skiplist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildVerify(t *testing.T) {
	for _, a := range []int{2, 3, 4, 8} {
		for _, n := range []int{1, 2, 5, 17, 100, 1000} {
			rng := rand.New(rand.NewSource(int64(a*1000 + n)))
			s := Build(n, a, rng)
			if err := s.Verify(); err != nil {
				t.Fatalf("a=%d n=%d: %v", a, n, err)
			}
			if s.N() != n {
				t.Fatalf("N = %d, want %d", s.N(), n)
			}
		}
	}
}

func TestHeadAlwaysPromoted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Build(64, 4, rng)
	for d := 0; d <= s.Height(); d++ {
		if s.Level(d)[0] != 0 {
			t.Fatalf("level %d head is %d", d, s.Level(d)[0])
		}
	}
	top := s.Level(s.Height())
	if len(top) != 1 {
		t.Fatalf("top level has %d members", len(top))
	}
}

func TestHeightLogarithmic(t *testing.T) {
	// Expected height is log_b n with a/2 ≤ b ≤ 2a; allow slack.
	for _, n := range []int{64, 512, 4096} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := Build(n, 4, rng)
		logN := 0
		for v := 1; v < n; v *= 2 {
			logN++
		}
		if h := s.Height(); h > logN+2 || h < 1 {
			t.Errorf("n=%d: height %d outside sane range (log2 n = %d)", n, h, logN)
		}
	}
}

func TestSumCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 7, 33, 256} {
		s := Build(n, 4, rng)
		values := make([]int64, n)
		var want int64
		for i := range values {
			values[i] = int64(rng.Intn(1000) - 500)
			want += values[i]
		}
		got, rounds := s.Sum(values)
		if got != want {
			t.Fatalf("n=%d: sum = %d, want %d", n, got, want)
		}
		if n > 1 && rounds <= 0 {
			t.Fatalf("n=%d: non-positive round cost %d", n, rounds)
		}
		// Gather+broadcast is O(a · height): assert a loose linear-in-
		// height bound.
		if limit := 4 * 2 * 4 * (s.Height() + 1); rounds > limit {
			t.Errorf("n=%d: rounds %d > %d", n, rounds, limit)
		}
	}
}

func TestCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := Build(100, 4, rng)
	got, _ := s.Count(func(p int) bool { return p%3 == 0 })
	want := 0
	for p := 0; p < 100; p++ {
		if p%3 == 0 {
			want++
		}
	}
	if got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestSumPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	Build(10, 4, rng).Sum(make([]int64, 9))
}

func TestBuildPanicsOnBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { Build(0, 4, rng) },
		func() { Build(10, 1, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

// TestSupportBoundsQuick property-checks the [a/2, 2a] support bounds over
// random sizes and parameters.
func TestSupportBoundsQuick(t *testing.T) {
	f := func(seed int64, szRaw uint16, aRaw uint8) bool {
		n := int(szRaw%2000) + 1
		a := int(aRaw%7) + 2
		rng := rand.New(rand.NewSource(seed))
		return Build(n, a, rng).Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestConstructionRoundsScale asserts the expected O(log n) construction
// cost by checking that rounds grow far slower than n.
func TestConstructionRoundsScale(t *testing.T) {
	mean := func(n int) float64 {
		total := 0
		const trials = 20
		for i := 0; i < trials; i++ {
			rng := rand.New(rand.NewSource(int64(n*1000 + i)))
			total += Build(n, 4, rng).ConstructionRounds
		}
		return float64(total) / trials
	}
	small, large := mean(128), mean(4096)
	// 32x the input should cost well under 8x the rounds if O(log n).
	if large > 8*small {
		t.Errorf("construction rounds scale too fast: %f → %f", small, large)
	}
}
