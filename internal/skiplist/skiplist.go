// Package skiplist implements the balanced probabilistic skip list that the
// paper's AMF algorithm (§V) builds over a linked list of n positions: the
// left-most position steps up to each next level with probability 1, every
// other position with probability 1/a, and local repair guarantees that any
// two consecutive members of a level are supported by at least a/2 and at
// most 2a members of the level below. The structure is reused for the
// distributed-sum (Appendix D), distributed-count, and broadcast primitives
// DSG needs, with synchronous-round accounting for each.
//
// Positions are indices 0..n-1 of the underlying linked list; the package
// is agnostic to what the list's nodes hold.
package skiplist

import (
	"fmt"
	"math/rand"
)

// SkipList is a built structure over n base positions.
type SkipList struct {
	a      int
	levels [][]int // levels[0] = [0..n-1]; each level a subset, starting with 0

	// ConstructionRounds is the synchronous-round cost of the randomized
	// construction: per level, one promotion round plus a linear left-
	// neighbour search bounded by the widest pre-repair gap, plus a
	// constant for the local repair handshake.
	ConstructionRounds int

	broadcastRounds int // cached; structure is immutable after Build
}

// Build constructs the skip list over n positions with balance parameter a.
// It panics if n < 1 or a < 2.
func Build(n, a int, rng *rand.Rand) *SkipList {
	if n < 1 {
		panic(fmt.Sprintf("skiplist: need n >= 1, got %d", n))
	}
	if a < 2 {
		panic(fmt.Sprintf("skiplist: need a >= 2, got %d", a))
	}
	s := &SkipList{a: a}
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	s.levels = append(s.levels, base)
	for len(s.levels[len(s.levels)-1]) > 1 {
		cur := s.levels[len(s.levels)-1]
		next, rounds := promoteAndRepair(cur, a, rng)
		s.ConstructionRounds += rounds
		s.levels = append(s.levels, next)
	}
	s.broadcastRounds = s.computeBroadcastRounds()
	return s
}

// promoteAndRepair produces the next level from cur: random promotion, then
// demotion of under-supported members and extra promotion into over-long
// gaps so that every support lies in [a/2, 2a]. Returned positions are the
// values of cur (base positions); gaps are measured in cur-indices per the
// paper's definition of support.
func promoteAndRepair(cur []int, a int, rng *rand.Rand) (next []int, rounds int) {
	m := len(cur)
	// Promotion: index 0 always; others with probability 1/a.
	idx := []int{0}
	for i := 1; i < m; i++ {
		if rng.Intn(a) == 0 {
			idx = append(idx, i)
		}
	}
	// One promotion round plus linear neighbour search over the widest raw
	// gap (each freshly promoted member walks the lower level to find its
	// level-(d+1) neighbours).
	rounds = 1 + maxGap(idx, m)

	// Repair pass 1: demote members whose support (distance to the previous
	// kept member) is below a/2. The left-most member is never demoted.
	minSup := a / 2
	if minSup < 1 {
		minSup = 1
	}
	kept := idx[:1]
	for _, i := range idx[1:] {
		if i-kept[len(kept)-1] >= minSup {
			kept = append(kept, i)
		}
	}
	// Repair pass 2: split any gap wider than 2a (including the tail after
	// the last member) by promoting evenly spaced extra members.
	maxSup := 2 * a
	repaired := make([]int, 0, len(kept)+m/maxSup+1)
	for j, i := range kept {
		repaired = append(repaired, i)
		end := m // tail gap runs to the (virtual) right end
		if j+1 < len(kept) {
			end = kept[j+1]
		}
		gap := end - i
		if gap <= maxSup {
			continue
		}
		segments := (gap + maxSup - 1) / maxSup
		for k := 1; k < segments; k++ {
			repaired = append(repaired, i+k*gap/segments)
		}
	}
	rounds += 2 // leader election + step-up/step-down messages

	next = make([]int, len(repaired))
	for j, i := range repaired {
		next[j] = cur[i]
	}
	return next, rounds
}

// maxGap returns the widest distance between consecutive members of idx,
// including the tail to position m.
func maxGap(idx []int, m int) int {
	widest := 0
	for j, i := range idx {
		end := m
		if j+1 < len(idx) {
			end = idx[j+1]
		}
		if g := end - i; g > widest {
			widest = g
		}
	}
	return widest
}

// N returns the number of base positions.
func (s *SkipList) N() int { return len(s.levels[0]) }

// A returns the balance parameter.
func (s *SkipList) A() int { return s.a }

// Height returns h: the level at which the left-most position is singleton.
func (s *SkipList) Height() int { return len(s.levels) - 1 }

// Level returns the positions present at level d (a copy).
func (s *SkipList) Level(d int) []int {
	return append([]int(nil), s.levels[d]...)
}

// Collector returns, for a position p present at level d but not level d+1,
// the nearest left neighbour of p that is present at level d+1 — the member
// that gathers p's values in AMF and in the distributed sum.
func (s *SkipList) Collector(d int, p int) int {
	upper := s.levels[d+1]
	best := upper[0]
	for _, q := range upper {
		if q > p {
			break
		}
		best = q
	}
	return best
}

// Verify checks the support bounds on every level transition: supports must
// lie in [a/2, 2a], the tail after a level's last member must be at most 2a,
// and every level's head must be the base head.
func (s *SkipList) Verify() error {
	for d := 0; d+1 < len(s.levels); d++ {
		lower, upper := s.levels[d], s.levels[d+1]
		if upper[0] != lower[0] {
			return fmt.Errorf("level %d head is %d, want %d", d+1, upper[0], lower[0])
		}
		posInLower := make(map[int]int, len(lower))
		for i, p := range lower {
			posInLower[p] = i
		}
		minSup := s.a / 2
		if minSup < 1 {
			minSup = 1
		}
		for j := 1; j < len(upper); j++ {
			i1, ok1 := posInLower[upper[j-1]]
			i2, ok2 := posInLower[upper[j]]
			if !ok1 || !ok2 {
				return fmt.Errorf("level %d member missing from level %d", d+1, d)
			}
			sup := i2 - i1
			if sup < minSup || sup > 2*s.a {
				return fmt.Errorf("level %d support %d outside [%d, %d]", d+1, sup, minSup, 2*s.a)
			}
		}
		// Tail bound: values to the right of the last member must reach it
		// within 2a forwarding rounds.
		if tail := len(lower) - posInLower[upper[len(upper)-1]]; tail > 2*s.a {
			return fmt.Errorf("level %d tail %d exceeds %d", d+1, tail, 2*s.a)
		}
	}
	top := s.levels[len(s.levels)-1]
	if len(top) != 1 || top[0] != s.levels[0][0] {
		return fmt.Errorf("top level is %v, want singleton head", top)
	}
	return nil
}

// Sum computes the distributed sum of values (one per base position) per
// Appendix D: each level forwards partial sums to the nearest left upper
// member; the head computes the total and broadcasts it. It returns the sum
// and the round cost (gather up plus broadcast down). Per the CONGEST
// model, a level's gather costs its longest forwarding segment.
func (s *SkipList) Sum(values []int64) (total int64, rounds int) {
	if len(values) != s.N() {
		panic(fmt.Sprintf("skiplist: Sum over %d values, want %d", len(values), s.N()))
	}
	partial := make(map[int]int64, len(values))
	for p, v := range values {
		partial[p] = v
	}
	for d := 0; d+1 < len(s.levels); d++ {
		lower, upper := s.levels[d], s.levels[d+1]
		levelRounds, segCount := 0, 0
		k := 0 // pointer into upper; upper is a subsequence of lower
		collector := upper[0]
		for _, p := range lower {
			if k < len(upper) && upper[k] == p {
				collector = p
				k++
				segCount = 0
				continue
			}
			partial[collector] += partial[p]
			delete(partial, p)
			segCount++
			if segCount > levelRounds {
				levelRounds = segCount
			}
		}
		rounds += levelRounds
	}
	head := s.levels[0][0]
	return partial[head], rounds + s.BroadcastRounds()
}

// Count is a distributed count: Sum over 0/1 indicators of pred.
func (s *SkipList) Count(pred func(p int) bool) (count int, rounds int) {
	values := make([]int64, s.N())
	for p := range values {
		if pred(p) {
			values[p] = 1
		}
	}
	total, r := s.Sum(values)
	return int(total), r
}

// BroadcastRounds returns the round cost for the head to broadcast one
// O(log n)-bit value to every base position through the skip list: each
// level fans the value out across segments of width at most 2a.
func (s *SkipList) BroadcastRounds() int { return s.broadcastRounds }

func (s *SkipList) computeBroadcastRounds() int {
	rounds := 0
	for d := len(s.levels) - 1; d > 0; d-- {
		lower, upper := s.levels[d-1], s.levels[d]
		idx := make([]int, 0, len(upper))
		k := 0
		for i, p := range lower {
			if k < len(upper) && upper[k] == p {
				idx = append(idx, i)
				k++
			}
		}
		rounds += maxGap(idx, len(lower))
	}
	return rounds
}
