package shard

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"lsasg/internal/workload"
)

// TestShardedStress is the race-detector stress for the sharded path: many
// goroutines route across shards — each route reading an immutable
// skipgraph.Replica snapshot (structurally shared across epochs) plus the
// shared directory pointer — while the background rebalancer swaps directory
// epochs and migrates key ranges through the running adjusters. CI runs this
// with -race on every PR alongside the serve-engine stress.
func TestShardedStress(t *testing.T) {
	const (
		n       = 96
		workers = 8
		perW    = 400
	)
	svc, err := New(n, Config{Shards: 4, Seed: 42, BatchSize: 8, Backlog: 64,
		RebalanceInterval: 200 * time.Microsecond, SkewThreshold: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	// Skewed traffic keeps the planner migrating while workers route.
	gen := workload.HotRange{LoFrac: 0, HiFrac: 0.2, Hot: 0.8}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gw := gen
			gw.Seed = int64(300 + w)
			for _, r := range gw.Generate(n, perW) {
				if _, err := svc.Route(int64(r.Src), int64(r.Dst)); err != nil {
					t.Errorf("worker %d: route %d→%d: %v", w, r.Src, r.Dst, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	live := svc.Live()
	if live.Routed != workers*perW || live.Intra+live.Cross != live.Routed {
		t.Errorf("route books don't balance: %+v", live)
	}
	if live.RebalanceFails != 0 {
		t.Errorf("%d planner passes errored: %+v", live.RebalanceFails, live)
	}
	if live.MigratedKeys != live.Joins || live.MigratedKeys != live.Leaves {
		t.Errorf("migration books don't balance: moved %d, joins %d, leaves %d",
			live.MigratedKeys, live.Joins, live.Leaves)
	}
	for i, sl := range svc.shards {
		if err := sl.dsg.Validate(); err != nil {
			t.Fatalf("shard %d DSG invalid after stress: %v", i, err)
		}
	}
	// The final directory + snapshots route the whole key space.
	dir := svc.Directory()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
		if u == v {
			continue
		}
		if _, err := svc.routeOnce(dir, u, v); err != nil {
			t.Fatalf("final route %d→%d: %v", u, v, err)
		}
	}
	// Every key has exactly one owner, and it is the directory's.
	for k := int64(0); k < n; k++ {
		owner := dir.ShardOf(k)
		for i, sl := range svc.shards {
			if (sl.dsg.NodeByID(k) != nil) != (i == owner) {
				t.Fatalf("key %d: shard %d presence disagrees with owner %d", k, i, owner)
			}
		}
	}
}
