package shard

import (
	"fmt"

	"lsasg/internal/serve"
	"lsasg/internal/skipgraph"
)

// executeMigration runs one planned migration through the given membership
// applier — (*serve.Engine).MigrateEntries against running engines,
// (*serve.Engine).ApplyMigrationBatch between deterministic windows. The
// applier must guarantee that when it returns, the changes are visible in
// the engine's published snapshot; that is what makes the ordering safe:
//
//  1. join the range into the destination shard (snapshot published),
//  2. publish the new directory epoch,
//  3. leave the range from the source shard,
//
// so every directory value ever observable names a shard whose snapshot
// holds the key. The moved records come from the source shard's published
// snapshot (immutable, safe to read while its adjuster works) as full
// entries — id, value, version — so a key's data and its per-key version
// monotonicity survive the move.
func (s *Service) executeMigration(dir *Directory, plan migrationPlan,
	apply func(eng *serve.Engine, joins []skipgraph.Entry, leaves []int64) error) error {
	entries := s.shards[plan.From].eng.Snapshot().Graph.RealEntriesInRange(
		skipgraph.KeyOf(plan.Lo), skipgraph.KeyOf(plan.Hi))
	if len(entries) == 0 {
		return nil
	}
	ids := make([]int64, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
	}
	b, start := plan.boundaryAfter()
	next, err := dir.withBoundary(b, start)
	if err != nil {
		return err
	}
	if err := apply(s.shards[plan.To].eng, entries, nil); err != nil {
		return fmt.Errorf("shard: migrating %d keys into shard %d: %w", len(entries), plan.To, err)
	}
	s.dir.Store(next)
	if err := apply(s.shards[plan.From].eng, nil, ids); err != nil {
		return fmt.Errorf("shard: retiring %d keys from shard %d: %w", len(ids), plan.From, err)
	}
	s.rebalances.Add(1)
	s.movedKeys.Add(int64(len(ids)))
	return nil
}
