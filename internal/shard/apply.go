package shard

import (
	"errors"
	"fmt"

	"lsasg/internal/core"
	"lsasg/internal/skipgraph"
)

// This file is the synchronous op surface: one op at a time against an
// otherwise-idle service, mirroring the deterministic dispatcher's leg
// decomposition (same splitLegs rule, same boundary access sources) so a
// synchronous Get adapts the topology exactly like a pipelined one. Scans
// are pure snapshot reads and work in any mode; mutating ops require every
// involved engine to be idle (no Serve, no Start) because they apply
// outside the adjusters.

// Apply applies one op synchronously and returns its assembled outcome.
// Point ops mutate through the destination shard's engine (published before
// return); cross-shard point ops additionally adapt the origin shard along
// src→exit-boundary. Scans stitch the shards' current snapshots in key
// order, stopping as soon as the limit fills — the exact equivalent of the
// pipeline's fanned scan.
func (s *Service) Apply(op core.Op) (Outcome, error) {
	if err := s.checkOp(op); err != nil {
		return Outcome{}, err
	}
	dir := s.dir.Load()
	switch op.Kind {
	case core.OpScan:
		return Outcome{Op: op, Entries: s.scanExact(dir, op.Dst, op.Limit)}, nil
	case core.OpRoute:
		legs, n, _ := dir.splitLegs(op.Src, op.Dst)
		for i := 0; i < n; i++ {
			if _, err := s.shards[legs[i].shard].eng.ApplyOpIdle(core.RouteOp(legs[i].src, legs[i].dst)); err != nil {
				return Outcome{Op: op}, err
			}
		}
		return Outcome{Op: op}, nil
	}
	// Point op: origin-side access leg first (tolerated — the boundary key
	// may have been deleted), then the op itself on the destination shard.
	si, di := dir.ShardOf(op.Src), dir.ShardOf(op.Dst)
	kv := op
	if si != di {
		higher := op.Dst > op.Src
		if exit := dir.exitKey(si, higher); exit != op.Src {
			if _, err := s.shards[si].eng.ApplyOpIdle(core.RouteOp(op.Src, exit)); err != nil &&
				!errors.Is(err, core.ErrUnknownNode) && !errors.Is(err, core.ErrCrashedNode) {
				return Outcome{Op: op}, fmt.Errorf("shard: origin leg of %s %d→%d: %w", op.Kind, op.Src, op.Dst, err)
			}
		}
		kv.Src = dir.entryKey(di, higher)
	}
	res, err := s.shards[di].eng.ApplyOpIdle(kv)
	if err != nil {
		return Outcome{Op: op}, err
	}
	return Outcome{
		Op:      op,
		Found:   res.Found,
		Value:   res.Value,
		Version: res.Version,
		Existed: res.Existed,
	}, nil
}

// scanExact walks the shards owning [start, n) in directory order, reading
// each engine's current snapshot, until limit entries are collected. Shard
// order is key order, so the stitched result is globally sorted.
func (s *Service) scanExact(dir *Directory, start int64, limit int) []skipgraph.Entry {
	if limit <= 0 {
		limit = 1
	}
	var out []skipgraph.Entry
	for i := dir.ShardOf(start); i < dir.Shards() && len(out) < limit; i++ {
		lo, _ := dir.Range(i)
		from := start
		if lo > from {
			from = lo
		}
		for _, e := range s.shards[i].eng.Snapshot().Scan(from, limit-len(out)) {
			out = append(out, e)
		}
	}
	return out
}
