package shard

import (
	"fmt"
	"sort"
)

// Directory is an immutable, epoch-stamped map from keys to shards. Shard i
// owns the contiguous half-open range [starts[i], starts[i+1]) with an
// implicit sentinel starts[S] = n. Routers load the current directory with
// one atomic pointer read; the rebalancer publishes a fresh value (never
// mutates a published one) with the epoch bumped, so in-flight routes keep a
// consistent view and can detect that they raced a migration.
type Directory struct {
	epoch  int64
	n      int64
	starts []int64 // ascending; starts[0] == 0
}

// newDirectory builds the epoch-0 directory with an even contiguous split of
// [0, n) into s shards.
func newDirectory(n int64, s int) *Directory {
	starts := make([]int64, s)
	for i := range starts {
		starts[i] = n * int64(i) / int64(s)
	}
	return &Directory{n: n, starts: starts}
}

// withBoundary returns a next-epoch copy with shard boundary b (the start of
// shard b, 1 ≤ b < S) moved to key start.
func (d *Directory) withBoundary(b int, start int64) (*Directory, error) {
	if b <= 0 || b >= len(d.starts) {
		return nil, fmt.Errorf("shard: boundary index %d out of range (1..%d)", b, len(d.starts)-1)
	}
	if start <= d.starts[b-1] || (b+1 < len(d.starts) && start >= d.starts[b+1]) || start >= d.n {
		return nil, fmt.Errorf("shard: boundary %d → %d would empty a shard", b, start)
	}
	starts := append([]int64(nil), d.starts...)
	starts[b] = start
	return &Directory{epoch: d.epoch + 1, n: d.n, starts: starts}, nil
}

// Epoch returns the directory epoch (0 for the initial split).
func (d *Directory) Epoch() int64 { return d.epoch }

// Shards returns the shard count.
func (d *Directory) Shards() int { return len(d.starts) }

// ShardOf returns the index of the shard owning key. The key must lie in
// [0, n); the service validates before resolving.
func (d *Directory) ShardOf(key int64) int {
	// First start strictly greater than key, minus one.
	return sort.Search(len(d.starts), func(i int) bool { return d.starts[i] > key }) - 1
}

// Range returns shard i's half-open key range [lo, hi).
func (d *Directory) Range(i int) (lo, hi int64) {
	lo = d.starts[i]
	hi = d.n
	if i+1 < len(d.starts) {
		hi = d.starts[i+1]
	}
	return lo, hi
}

// exitKey is the boundary key a cross-shard route leaves shard i through:
// the shard's edge key nearest the destination.
func (d *Directory) exitKey(i int, towardHigher bool) int64 {
	lo, hi := d.Range(i)
	if towardHigher {
		return hi - 1
	}
	return lo
}

// entryKey is the boundary key a cross-shard route enters shard i through:
// the shard's edge key nearest the source.
func (d *Directory) entryKey(i int, fromLower bool) int64 {
	lo, hi := d.Range(i)
	if fromLower {
		return lo
	}
	return hi - 1
}

// leg is one engine-routable fragment of a request: an intra-shard pair.
type leg struct {
	shard    int
	src, dst int64
}

// splitLegs decomposes src→dst under this directory into its engine legs —
// the shared rule both serving modes use, so their leg decompositions can
// never diverge. An intra-shard request is one leg; a cross-shard request
// is source→exit-boundary and entry-boundary→destination, with a trivial
// leg (the endpoint already is the boundary) omitted. legs[:n] are valid.
func (d *Directory) splitLegs(src, dst int64) (legs [2]leg, n int, cross bool) {
	si, di := d.ShardOf(src), d.ShardOf(dst)
	if si == di {
		legs[0] = leg{shard: si, src: src, dst: dst}
		return legs, 1, false
	}
	higher := dst > src
	if exit := d.exitKey(si, higher); exit != src {
		legs[n] = leg{shard: si, src: src, dst: exit}
		n++
	}
	if entry := d.entryKey(di, higher); entry != dst {
		legs[n] = leg{shard: di, src: entry, dst: dst}
		n++
	}
	return legs, n, true
}
