package shard

import (
	"testing"
	"time"
)

// TestFreeRunningCrashDetectRepair drives the crash cycle through the sharded
// service: an injected crash lands on the owning shard's engine, a route
// addressed at the corpse detects it, the shard's adjuster splices it out,
// and routing between live keys keeps working throughout.
func TestFreeRunningCrashDetectRepair(t *testing.T) {
	const n = 64
	svc, err := New(n, Config{Shards: 4, Seed: 7, BatchSize: 8,
		RebalanceInterval: time.Hour /* keep the ticker out of the way */})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	if _, err := svc.Crash(99); err == nil {
		t.Error("crash of out-of-range key accepted")
	}
	const victim = 12
	ok, err := svc.Crash(victim)
	if err != nil || !ok {
		t.Fatalf("crash injection: ok=%v err=%v", ok, err)
	}
	// Barrier on the owning shard: the crash is applied and published before
	// we probe the corpse.
	sh := svc.dir.Load().ShardOf(victim)
	if err := svc.shards[sh].eng.MigrateMembership(nil, nil); err != nil {
		t.Fatal(err)
	}
	// A stale probe at the corpse fails for the client but triggers the
	// decentralized repair on the owning shard.
	if _, err := svc.Route(3, victim); err == nil {
		t.Fatal("probe of corpse succeeded, want detection error")
	}
	if err := svc.shards[sh].eng.MigrateMembership(nil, nil); err != nil {
		t.Fatal(err)
	}
	// Live traffic is unaffected after the repair, including keys on the
	// victim's shard and cross-shard pairs.
	for _, pair := range [][2]int64{{3, 14}, {3, 40}, {50, 9}} {
		if _, err := svc.Route(pair[0], pair[1]); err != nil {
			t.Fatalf("route %d→%d after repair: %v", pair[0], pair[1], err)
		}
	}
	if err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	st := svc.Live()
	if st.Crashes != 1 || st.DeadDetected < 1 || st.CrashRepairs != 1 {
		t.Errorf("crashes=%d detected=%d repairs=%d, want 1/≥1/1",
			st.Crashes, st.DeadDetected, st.CrashRepairs)
	}
	if svc.shards[sh].dsg.NodeByID(victim) != nil {
		t.Error("corpse still present on its shard after repair")
	}
	for _, sl := range svc.shards {
		if err := sl.dsg.Validate(); err != nil {
			t.Fatalf("shard DSG invalid after crash cycle: %v", err)
		}
	}
}
