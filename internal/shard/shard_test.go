package shard

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"lsasg/internal/core"
	"lsasg/internal/workload"
)

// feed pushes requests into a channel the service consumes.
func feed(reqs []workload.Request) <-chan core.Op {
	ch := make(chan core.Op)
	go func() {
		defer close(ch)
		for _, r := range reqs {
			ch <- core.RouteOp(int64(r.Src), int64(r.Dst))
		}
	}()
	return ch
}

func TestDirectory(t *testing.T) {
	d := newDirectory(64, 4)
	if d.Shards() != 4 || d.Epoch() != 0 {
		t.Fatalf("directory: %d shards epoch %d", d.Shards(), d.Epoch())
	}
	for _, tc := range []struct {
		key  int64
		want int
	}{{0, 0}, {15, 0}, {16, 1}, {31, 1}, {32, 2}, {48, 3}, {63, 3}} {
		if got := d.ShardOf(tc.key); got != tc.want {
			t.Errorf("ShardOf(%d) = %d, want %d", tc.key, got, tc.want)
		}
	}
	if lo, hi := d.Range(2); lo != 32 || hi != 48 {
		t.Errorf("Range(2) = [%d, %d), want [32, 48)", lo, hi)
	}
	if k := d.exitKey(1, true); k != 31 {
		t.Errorf("exitKey(1, higher) = %d, want 31", k)
	}
	if k := d.entryKey(3, true); k != 48 {
		t.Errorf("entryKey(3, fromLower) = %d, want 48", k)
	}

	next, err := d.withBoundary(2, 24)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != 1 || next.ShardOf(28) != 2 || d.ShardOf(28) != 1 {
		t.Errorf("boundary move: epoch %d, new owner of 28 = %d (old %d)",
			next.Epoch(), next.ShardOf(28), d.ShardOf(28))
	}
	if _, err := d.withBoundary(2, 16); err == nil {
		t.Error("boundary move emptying shard 1 must fail")
	}
	if _, err := d.withBoundary(0, 5); err == nil {
		t.Error("moving boundary 0 must fail")
	}
}

func TestPlanRebalance(t *testing.T) {
	dir := newDirectory(32, 4) // 8 keys per shard
	keyLoad := make([]int64, 32)

	if _, ok := planRebalance(dir, keyLoad, nil, 1.5, 2); ok {
		t.Error("zero load must not plan")
	}

	// Balanced load: no plan.
	for i := range keyLoad {
		keyLoad[i] = 10
	}
	if _, ok := planRebalance(dir, keyLoad, nil, 1.5, 2); ok {
		t.Error("balanced load must not plan")
	}

	// Shard 0 hot at its low end: donate its top keys to shard 1.
	keyLoad = make([]int64, 32)
	for k := 0; k < 4; k++ {
		keyLoad[k] = 100
	}
	for k := 4; k < 32; k++ {
		keyLoad[k] = 1
	}
	plan, ok := planRebalance(dir, keyLoad, nil, 1.5, 2)
	if !ok {
		t.Fatal("hot shard 0 must plan")
	}
	if plan.From != 0 || plan.To != 1 {
		t.Fatalf("plan %+v, want 0 → 1", plan)
	}
	if plan.Hi != 8 || plan.Lo < 2 || plan.Lo > 6 {
		t.Errorf("plan moves [%d, %d), want a top slice of shard 0", plan.Lo, plan.Hi)
	}
	if b, start := plan.boundaryAfter(); b != 1 || start != plan.Lo {
		t.Errorf("boundaryAfter = (%d, %d), want (1, %d)", b, start, plan.Lo)
	}

	// Interior hot shard donates toward its lighter neighbour.
	keyLoad = make([]int64, 32)
	for k := 16; k < 24; k++ {
		keyLoad[k] = 50 // shard 2 hot
	}
	for k := 8; k < 16; k++ {
		keyLoad[k] = 20 // shard 1 warmer than shard 3
	}
	for k := 24; k < 32; k++ {
		keyLoad[k] = 1
	}
	plan, ok = planRebalance(dir, keyLoad, nil, 1.5, 2)
	if !ok || plan.From != 2 || plan.To != 3 {
		t.Fatalf("plan %+v ok=%v, want 2 → 3", plan, ok)
	}
	// Donating a top slice to the right neighbour moves that neighbour's
	// start down to the slice's low end.
	if b, start := plan.boundaryAfter(); b != 3 || start != plan.Lo {
		t.Errorf("boundaryAfter = (%d, %d), want (3, %d)", b, start, plan.Lo)
	}

	// Backlog alone biases the ratio but never names keys: no plan.
	keyLoad = make([]int64, 32)
	if _, ok := planRebalance(dir, keyLoad, []int64{1000, 0, 0, 0}, 1.5, 2); ok {
		t.Error("pure-backlog skew must not plan a blind migration")
	}

	// A single hub key at the donated edge carrying more than the whole
	// load gap must not plan: moving it would just invert the imbalance and
	// ping-pong the key back next window.
	keyLoad = make([]int64, 32)
	keyLoad[7] = 1000 // top edge of shard 0
	if plan, ok := planRebalance(dir, keyLoad, nil, 1.5, 2); ok {
		t.Errorf("hub-at-boundary load planned %+v; moving it cannot improve balance", plan)
	}
}

// TestPlanRebalanceTerminates: iterating planner + boundary move against a
// STATIC load distribution must reach quiescence — every emitted plan
// strictly reduces the donor/receiver gap (MovedLoad < gap), so a hub key
// with uniform background load cannot ping-pong between two shards forever.
func TestPlanRebalanceTerminates(t *testing.T) {
	dir := newDirectory(64, 4)
	keyLoad := make([]int64, 64)
	keyLoad[15] = 1000 // hub at the top edge of shard 0
	for k := range keyLoad {
		keyLoad[k] += 3 // uniform background
	}
	for round := 0; ; round++ {
		if round > 8 {
			t.Fatalf("planner still migrating after %d rounds on static load (epoch %d)", round, dir.Epoch())
		}
		plan, ok := planRebalance(dir, keyLoad, nil, 1.5, 2)
		if !ok {
			break
		}
		b, start := plan.boundaryAfter()
		next, err := dir.withBoundary(b, start)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		dir = next
	}
}

// TestServeDeterministicAcrossRuns: the sharded pipeline's core contract —
// same seed, shard count, and request sequence ⇒ identical stats, whatever
// the per-shard parallelism.
func TestServeDeterministicAcrossRuns(t *testing.T) {
	run := func(par int) ServeStats {
		svc, err := New(64, Config{Shards: 4, Seed: 9, Parallelism: par, BatchSize: 8, RebalanceEvery: 100})
		if err != nil {
			t.Fatal(err)
		}
		reqs := workload.Zipf{Seed: 9, S: 1.2}.Generate(64, 400)
		st, err := svc.Serve(context.Background(), feed(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := run(1)
	baseJSON, _ := json.Marshal(base)
	for _, par := range []int{2, 4} {
		got := run(par)
		gotJSON, _ := json.Marshal(got)
		if string(gotJSON) != string(baseJSON) {
			t.Errorf("par=%d stats diverge:\n p=1: %s\n p=%d: %s", par, baseJSON, par, gotJSON)
		}
	}
	if base.Requests != 400 || base.Intra+base.Cross != 400 {
		t.Errorf("request books: %+v", base)
	}
	if base.Cross == 0 {
		t.Error("zipf over 4 shards produced no cross-shard requests")
	}
	if base.Windows != 4 {
		t.Errorf("400 requests at window 100: %d windows, want 4", base.Windows)
	}
}

// TestServeShardsAreConsistent: after a deterministic run with migrations,
// every shard's DSG validates, the directory partitions the key space, and
// every key routes in its owner's snapshot.
func TestServeShardsAreConsistent(t *testing.T) {
	const n = 64
	svc, err := New(n, Config{Shards: 4, Seed: 3, BatchSize: 8, RebalanceEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Hot range in shard 0 forces migrations.
	reqs := workload.HotRange{Seed: 3, LoFrac: 0, HiFrac: 0.125, Hot: 0.85}.Generate(n, 400)
	st, err := svc.Serve(context.Background(), feed(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebalances == 0 || st.MovedKeys == 0 {
		t.Fatalf("hot-range trace triggered no migration: %+v", st)
	}
	if st.LoadRatioLast >= st.LoadRatioFirst {
		t.Errorf("rebalancer did not cut the load ratio: first %.2f, last %.2f",
			st.LoadRatioFirst, st.LoadRatioLast)
	}
	dir := svc.Directory()
	if dir.Epoch() != int64(st.Rebalances) {
		t.Errorf("directory epoch %d, want %d (one per migration)", dir.Epoch(), st.Rebalances)
	}
	for _, sl := range svc.shards {
		if err := sl.dsg.Validate(); err != nil {
			t.Fatalf("shard DSG invalid after migrations: %v", err)
		}
	}
	// Every key lives in exactly the shard the directory names.
	for k := int64(0); k < n; k++ {
		owner := dir.ShardOf(k)
		for i, sl := range svc.shards {
			node := sl.dsg.NodeByID(k)
			if (node != nil) != (i == owner) {
				t.Fatalf("key %d: present=%v in shard %d, owner is %d", k, node != nil, i, owner)
			}
		}
	}
	// And cross-shard routing still reaches everything.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
		if u == v {
			continue
		}
		dirNow := svc.Directory()
		if _, err := svc.routeOnce(dirNow, u, v); err != nil {
			t.Fatalf("route %d→%d after migrations: %v", u, v, err)
		}
	}
}

// TestSingleShardMatchesEngine: with S = 1 the service is exactly one engine
// pipeline — no cross-shard traffic, no migrations, load ratio pinned to 1.
func TestSingleShardMatchesEngine(t *testing.T) {
	svc, err := New(32, Config{Shards: 1, Seed: 7, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.Uniform{Seed: 7}.Generate(32, 200)
	st, err := svc.Serve(context.Background(), feed(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cross != 0 || st.Rebalances != 0 {
		t.Errorf("single shard: %+v", st)
	}
	if st.Legs != st.Requests {
		t.Errorf("legs %d != requests %d for s=1", st.Legs, st.Requests)
	}
	if st.LoadRatioFirst != 1 || st.LoadRatioLast != 1 {
		t.Errorf("s=1 load ratio: first %.2f last %.2f, want 1", st.LoadRatioFirst, st.LoadRatioLast)
	}
}

// TestServeModeConflict: one service, one mode.
func TestServeModeConflict(t *testing.T) {
	svc, err := New(32, Config{Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ch := make(chan core.Op)
	close(ch)
	if _, err := svc.Serve(context.Background(), ch); err == nil {
		t.Error("Serve on a Start()ed service must fail")
	}
	if err := svc.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestServeInvalidRequest: out-of-range keys and self-communication abort.
func TestServeInvalidRequest(t *testing.T) {
	for _, bad := range []core.Op{core.RouteOp(-1, 3), core.RouteOp(3, 99), core.RouteOp(5, 5)} {
		svc, err := New(32, Config{Shards: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ch := make(chan core.Op, 1)
		ch <- bad
		close(ch)
		if _, err := svc.Serve(context.Background(), ch); err == nil {
			t.Errorf("request %+v must abort Serve", bad)
		}
	}
}

// TestFreeRunningRouteAndRebalance: the wall-clock mode routes across
// shards, and a planner pass over skewed load migrates against the running
// engines. The pass is driven explicitly (rebalanceOnce) so the test does
// not depend on ticker scheduling; the background ticker path is covered by
// the stress test.
func TestFreeRunningRouteAndRebalance(t *testing.T) {
	const n = 64
	svc, err := New(n, Config{Shards: 4, Seed: 5, BatchSize: 8, Backlog: 64,
		RebalanceInterval: time.Hour /* keep the ticker out of the way */})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	reqs := workload.HotRange{Seed: 5, LoFrac: 0, HiFrac: 0.125, Hot: 0.85}.Generate(n, 3000)
	half := len(reqs) / 2
	for _, r := range reqs[:half] {
		if _, err := svc.Route(int64(r.Src), int64(r.Dst)); err != nil {
			t.Fatalf("route %d→%d: %v", r.Src, r.Dst, err)
		}
	}
	moved, err := svc.rebalanceOnce()
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if !moved {
		t.Fatal("hot-range load triggered no live migration")
	}
	// Routing continues seamlessly across the new directory epoch.
	for _, r := range reqs[half:] {
		if _, err := svc.Route(int64(r.Src), int64(r.Dst)); err != nil {
			t.Fatalf("route %d→%d after migration: %v", r.Src, r.Dst, err)
		}
	}
	if err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	live := svc.Live()
	if live.Routed != int64(len(reqs)) || live.Intra+live.Cross != live.Routed {
		t.Errorf("route books: %+v", live)
	}
	if live.Rebalances == 0 || live.MigratedKeys == 0 {
		t.Errorf("migration not reflected in stats: %+v", live)
	}
	if live.DirectoryEpoch != live.Rebalances {
		t.Errorf("epoch %d != rebalances %d", live.DirectoryEpoch, live.Rebalances)
	}
	for _, sl := range svc.shards {
		if err := sl.dsg.Validate(); err != nil {
			t.Fatalf("shard DSG invalid after live migrations: %v", err)
		}
	}
}
