package shard

import (
	"errors"
	"fmt"
	"time"

	"lsasg/internal/serve"
	"lsasg/internal/skipgraph"
)

// This file is the free-running mode: Route may be called from any number of
// goroutines; every shard's engine runs its own adjuster, and a background
// rebalancer migrates key ranges on a wall-clock cadence.

// maxRouteRetries bounds the directory-reload retries a route performs when
// it races a migration (each retry observes a strictly newer epoch, and a
// migration bumps the epoch once, so 1 retry usually suffices).
const maxRouteRetries = 3

// RouteInfo reports one routed request.
type RouteInfo struct {
	CrossShard bool
	// Distance and Hops span the whole request: both legs plus the one
	// inter-shard forwarding hop for cross-shard requests.
	Distance int
	Hops     int
	// DirEpoch is the directory epoch the route resolved against.
	DirEpoch int64
}

// Start launches every shard engine's adjuster plus the background
// rebalancer. It must be called exactly once, and only on a service that is
// not used via Serve.
func (s *Service) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("shard: Service.Start called twice")
	}
	if s.serving {
		panic("shard: Service.Start while Serve is running")
	}
	s.started = true
	s.stop = make(chan struct{})
	for _, sl := range s.shards {
		sl.eng.Start()
	}
	s.rebalWG.Add(1)
	go s.rebalanceLoop()
}

// Stop halts the rebalancer, drains and stops every shard engine, and
// returns the first engine error (nil in a healthy run). Safe to call more
// than once.
func (s *Service) Stop() error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return fmt.Errorf("shard: Stop before Start")
	}
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.mu.Unlock()
	s.rebalWG.Wait()
	var firstErr error
	for _, sl := range s.shards {
		if err := sl.eng.Stop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Route routes src → dst through the current directory: one engine route for
// an intra-shard pair, two directory-addressed legs (source → boundary,
// boundary → destination) plus one forwarding hop across shards. Each leg
// routes against its shard's freshest snapshot and offers its adjustment to
// that shard's adjuster. Safe for concurrent use.
//
// A route that races a migration can observe skipgraph.ErrUnknownKey — the
// key left the resolved shard between the directory read and the snapshot
// read. It retries against a fresh directory (bounded), so callers only see
// an error when the topology is genuinely unroutable. A retry re-resolves
// the WHOLE request: the old decomposition is stale (boundaries moved), so
// "re-run only the failed leg" is not well defined across epochs. A leg the
// failed attempt already routed has therefore also already offered its
// adjustment; the retry may offer it again, which at the engine level is
// just a repeated pair — harmless to correctness, bounded by
// maxRouteRetries, and only in the migration race window. Engine-level leg
// counters can accordingly run slightly ahead of the service's Routed
// count.
func (s *Service) Route(src, dst int64) (RouteInfo, error) {
	if err := s.checkKey(src); err != nil {
		return RouteInfo{}, err
	}
	if err := s.checkKey(dst); err != nil {
		return RouteInfo{}, err
	}
	if src == dst {
		return RouteInfo{}, fmt.Errorf("shard: source and destination are both %d", src)
	}
	var lastErr error
	for attempt := 0; attempt <= maxRouteRetries; attempt++ {
		if attempt > 0 {
			s.retried.Add(1)
		}
		info, err := s.routeOnce(s.dir.Load(), src, dst)
		if err == nil {
			s.routed.Add(1)
			if info.CrossShard {
				s.cross.Add(1)
			} else {
				s.intra.Add(1)
			}
			s.distSum.Add(int64(info.Distance))
			s.hopSum.Add(int64(info.Hops))
			s.recordLoad(src, dst)
			return info, nil
		}
		lastErr = err
		if !errors.Is(err, skipgraph.ErrUnknownKey) && !errors.Is(err, skipgraph.ErrDeadNode) {
			break
		}
	}
	return RouteInfo{}, lastErr
}

// Crash injects a crash failure: the node fails in place on whichever shard
// the current directory assigns it, leaving dangling neighbour references
// until routes detect the corpse and the shard's adjuster repairs it. It
// reports whether the injection was accepted (a full engine queue sheds it).
func (s *Service) Crash(id int64) (bool, error) {
	if err := s.checkKey(id); err != nil {
		return false, err
	}
	sh := s.dir.Load().ShardOf(id)
	return s.shards[sh].eng.SubmitCrash(id), nil
}

// routeOnce resolves and routes under one directory value.
func (s *Service) routeOnce(dir *Directory, src, dst int64) (RouteInfo, error) {
	legs, n, cross := dir.splitLegs(src, dst)
	info := RouteInfo{CrossShard: cross, DirEpoch: dir.Epoch()}
	if cross {
		info.Hops = 1 // the directory-addressed inter-shard forwarding hop
	}
	for i := 0; i < n; i++ {
		r, _, err := s.shards[legs[i].shard].eng.Route(legs[i].src, legs[i].dst)
		if err != nil {
			return RouteInfo{}, err
		}
		info.Hops += r.Hops()
	}
	info.Distance = info.Hops - 1
	return info, nil
}

// rebalanceLoop is the background planner: every RebalanceInterval it drains
// the load window, plans, and executes at most one migration.
func (s *Service) rebalanceLoop() {
	defer s.rebalWG.Done()
	ticker := time.NewTicker(s.cfg.rebalanceInterval())
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if _, err := s.rebalanceOnce(); err != nil {
				s.rebalErrors.Add(1)
			}
		}
	}
}

// rebalanceOnce runs one planner pass against the live load window and
// executes the migration it emits, if any. It reports whether a migration
// ran. Only the rebalancer goroutine (or a test driving the service
// single-threadedly between Start and Stop) may call it.
func (s *Service) rebalanceOnce() (bool, error) {
	dir := s.dir.Load()
	keyLoad := s.takeKeyLoads()
	backlog := make([]int64, len(s.shards))
	for i, sl := range s.shards {
		backlog[i] = sl.eng.Pending()
	}
	plan, ok := planRebalance(dir, keyLoad, backlog, s.cfg.skewThreshold(), s.cfg.minShardKeys())
	if !ok {
		return false, nil
	}
	// MigrateEntries serializes through the running adjusters and returns
	// only once the changes are in a published snapshot — the applier
	// contract executeMigration's epoch ordering needs.
	return true, s.executeMigration(dir, plan, func(eng *serve.Engine, joins []skipgraph.Entry, leaves []int64) error {
		return eng.MigrateEntries(joins, leaves)
	})
}

// LiveStats is a point-in-time sample of the free-running counters, summed
// over the service and its shard engines.
type LiveStats struct {
	Routed           int64 // requests routed (legs are not double-counted)
	Intra, Cross     int64 // intra- vs cross-shard requests
	RouteDistanceSum int64 // Σ distance, inter-shard hop included
	RouteHopSum      int64
	Retried          int64 // directory-reload retries after racing a migration

	Rebalances     int64 // migrations executed
	MigratedKeys   int64 // keys moved across shards
	RebalanceFails int64 // planner passes that errored (engines stopping)
	DirectoryEpoch int64

	Applied, Shed, Failed int64 // summed over shard engines
	Pending               int64
	SnapshotsPublished    int64
	Joins, Leaves         int64 // membership ops applied by migrations
	Crashes               int64 // crash injections applied
	DeadDetected          int64 // leg routes that ran into a dead peer
	CrashRepairs          int64 // dead nodes spliced out by shard adjusters
}

// Live samples the free-running counters.
func (s *Service) Live() LiveStats {
	st := LiveStats{
		Routed:           s.routed.Load(),
		Intra:            s.intra.Load(),
		Cross:            s.cross.Load(),
		RouteDistanceSum: s.distSum.Load(),
		RouteHopSum:      s.hopSum.Load(),
		Retried:          s.retried.Load(),
		Rebalances:       s.rebalances.Load(),
		MigratedKeys:     s.movedKeys.Load(),
		RebalanceFails:   s.rebalErrors.Load(),
		DirectoryEpoch:   s.dir.Load().Epoch(),
	}
	for _, sl := range s.shards {
		l := sl.eng.Live()
		st.Applied += l.Applied
		st.Shed += l.Shed
		st.Failed += l.Failed
		st.Pending += l.Pending
		st.SnapshotsPublished += l.SnapshotsPublished
		st.Joins += l.Joins
		st.Leaves += l.Leaves
		st.Crashes += l.Crashes
		st.DeadDetected += l.DeadDetected
		st.CrashRepairs += l.CrashRepairs
	}
	return st
}
