package shard

import (
	"context"
	"fmt"
	"testing"

	"lsasg/internal/core"
)

// KV tests for the sharded service: value records must ride along when the
// rebalancer migrates key ranges between shards, deletions must stick across
// migrations, and stitched scans must stay globally sorted whatever the
// directory looks like.

// feedOps pushes a prebuilt op slice into a channel the service consumes.
func feedOps(ops []core.Op) <-chan core.Op {
	ch := make(chan core.Op)
	go func() {
		defer close(ch)
		for _, op := range ops {
			ch <- op
		}
	}()
	return ch
}

// TestKVValuesSurviveMigration writes a record to every key, then drives a
// hot-range read load that forces the rebalancer to migrate key ranges
// between shards mid-serve. Every record — value bytes, version, deletion —
// must come out of the run exactly as written: migration moves records, it
// never rewrites them.
func TestKVValuesSurviveMigration(t *testing.T) {
	const n = 64
	svc, err := New(n, Config{Shards: 4, Seed: 3, BatchSize: 8, RebalanceEvery: 50})
	if err != nil {
		t.Fatal(err)
	}

	var ops []core.Op
	for k := int64(0); k < n; k++ {
		ops = append(ops, core.Op{Kind: core.OpPut, Src: (k + 1) % n, Dst: k,
			Value: []byte(fmt.Sprintf("val-%d", k))})
	}
	// Two deletions that must stay deleted across every later migration.
	deleted := []int64{5, 40}
	for _, k := range deleted {
		ops = append(ops, core.Op{Kind: core.OpDelete, Src: (k + 1) % n, Dst: k})
	}
	// Hot reads on shard 0's low range force donations toward shard 1.
	for i := 0; i < 400; i++ {
		ops = append(ops, core.Op{Kind: core.OpGet, Src: int64(8 + i%(n-8)), Dst: int64(i % 8)})
	}
	st, err := svc.Serve(context.Background(), feedOps(ops))
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebalances == 0 || st.MovedKeys == 0 {
		t.Fatalf("hot-range KV load triggered no migration: %+v", st)
	}
	if st.Puts != n || st.PutInserts != 0 || st.DeleteHits != int64(len(deleted)) {
		t.Errorf("KV books: %+v", st)
	}

	// Versions were assigned in key order by the puts, per owning shard's
	// clock; the bytes are what identifies the record, the version must be
	// the one the put reported — read both back through the directory.
	isDeleted := func(k int64) bool { return k == deleted[0] || k == deleted[1] }
	for k := int64(0); k < n; k++ {
		o, err := svc.Apply(core.Op{Kind: core.OpGet, Src: (k + 3) % n, Dst: k})
		if err != nil {
			t.Fatalf("get %d after migrations: %v", k, err)
		}
		if isDeleted(k) {
			if o.Found {
				t.Errorf("deleted key %d resurrected with %q after migration", k, o.Value)
			}
			continue
		}
		if !o.Found || string(o.Value) != fmt.Sprintf("val-%d", k) {
			t.Errorf("key %d after migration: found=%v value=%q", k, o.Found, o.Value)
		}
	}

	// Every shard still validates and owns exactly the directory's range.
	dir := svc.Directory()
	if dir.Epoch() != int64(st.Rebalances) {
		t.Errorf("directory epoch %d, want %d", dir.Epoch(), st.Rebalances)
	}
	for _, sl := range svc.shards {
		if err := sl.dsg.Validate(); err != nil {
			t.Fatalf("shard DSG invalid after value migrations: %v", err)
		}
	}

	// A full stitched scan reads the surviving records globally sorted.
	o, err := svc.Apply(core.Op{Kind: core.OpScan, Dst: 0, Limit: n})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Entries) != n-len(deleted) {
		t.Fatalf("full scan returned %d records, want %d", len(o.Entries), n-len(deleted))
	}
	want := int64(0)
	for _, e := range o.Entries {
		for isDeleted(want) {
			want++
		}
		if e.ID != want || string(e.Value) != fmt.Sprintf("val-%d", e.ID) {
			t.Fatalf("scan entry (%d, %q), want key %d with its own record", e.ID, e.Value, want)
		}
		want++
	}
}

// TestKVScanStitchesAcrossShards pins the cross-shard range read: a scan
// whose window spans shard boundaries comes back globally sorted and
// limit-exact, and a scan starting mid-shard begins at the first key ≥
// start.
func TestKVScanStitchesAcrossShards(t *testing.T) {
	const n = 32
	svc, err := New(n, Config{Shards: 4, Seed: 1}) // 8 keys per shard
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < n; k += 2 { // even keys only
		if _, err := svc.Apply(core.Op{Kind: core.OpPut, Src: (k + 1) % n, Dst: k,
			Value: []byte{byte(k)}}); err != nil {
			t.Fatal(err)
		}
	}

	// Start mid-shard-0, span all four shards.
	o, err := svc.Apply(core.Op{Kind: core.OpScan, Dst: 5, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Entries) != 10 {
		t.Fatalf("scan(5, 10) returned %d entries", len(o.Entries))
	}
	for i, e := range o.Entries {
		if want := int64(6 + 2*i); e.ID != want {
			t.Errorf("scan position %d holds key %d, want %d", i, e.ID, want)
		}
	}

	// Limit larger than what remains: exactly the tail comes back.
	o, err = svc.Apply(core.Op{Kind: core.OpScan, Dst: 25, Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Entries) != 3 { // 26, 28, 30
		t.Fatalf("tail scan returned %d entries, want 3", len(o.Entries))
	}
}

// TestServePipelinedScansAndOutcomes drives scans and a delete-then-reinsert
// through the deterministic pipeline and checks the assembled outcomes the
// window barrier hands to OnOutcome: fanned scan legs stitch in shard order
// and truncate at the limit, and the re-put of a deleted key counts as an
// insert.
func TestServePipelinedScansAndOutcomes(t *testing.T) {
	const n = 32
	var outs []Outcome
	svc, err := New(n, Config{Shards: 4, Seed: 2, BatchSize: 1,
		OnOutcome: func(o Outcome) { outs = append(outs, o) }})
	if err != nil {
		t.Fatal(err)
	}
	var ops []core.Op
	for k := int64(0); k < n; k += 4 { // keys 0,4,...,28 across all shards
		ops = append(ops, core.Op{Kind: core.OpPut, Src: (k + 1) % n, Dst: k,
			Value: []byte(fmt.Sprintf("v%d", k))})
	}
	ops = append(ops,
		core.Op{Kind: core.OpScan, Dst: 2, Limit: 5},                       // spans shards, limit-truncated
		core.Op{Kind: core.OpScan, Dst: 30, Limit: 8},                      // tail: nothing at or after 30
		core.Op{Kind: core.OpDelete, Src: 1, Dst: 12},                      // tracked leave
		core.Op{Kind: core.OpPut, Src: 1, Dst: 12, Value: []byte("again")}, // re-join
	)
	st, err := svc.Serve(context.Background(), feedOps(ops))
	if err != nil {
		t.Fatal(err)
	}
	if st.Scans != 2 || st.ScannedEntries != 5 {
		t.Fatalf("scan books = Scans:%d ScannedEntries:%d, want 2/5", st.Scans, st.ScannedEntries)
	}
	if st.PutInserts != 1 || st.DeleteHits != 1 {
		t.Fatalf("reinsert books = PutInserts:%d DeleteHits:%d, want 1/1", st.PutInserts, st.DeleteHits)
	}
	if len(outs) != len(ops) {
		t.Fatalf("observed %d outcomes, want %d", len(outs), len(ops))
	}
	span := outs[len(ops)-4]
	if len(span.Entries) != 5 {
		t.Fatalf("spanning scan = %d entries, want 5", len(span.Entries))
	}
	for i, e := range span.Entries {
		if want := int64(4 + 4*i); e.ID != want || string(e.Value) != fmt.Sprintf("v%d", want) {
			t.Fatalf("scan position %d holds (%d, %q), want key %d", i, e.ID, e.Value, want)
		}
	}
	if tail := outs[len(ops)-3]; len(tail.Entries) != 0 {
		t.Fatalf("tail scan past the last record = %v, want empty", tail.Entries)
	}
	if reput := outs[len(ops)-1]; reput.Existed {
		t.Fatal("put of a freshly deleted key must be an insert")
	}
}

// TestApplySyncRoutesAndErrors covers the synchronous surface beyond KV:
// plain routes decompose into idle-engine legs, a route to a departed key
// fails, and a malformed envelope is rejected before touching any shard.
func TestApplySyncRoutesAndErrors(t *testing.T) {
	const n = 32
	svc, err := New(n, Config{Shards: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if svc.N() != n || svc.Shards() != 4 {
		t.Fatalf("N/Shards = %d/%d, want %d/4", svc.N(), svc.Shards(), n)
	}
	if _, err := svc.Apply(core.RouteOp(3, 27)); err != nil { // cross-shard
		t.Fatalf("cross-shard sync route: %v", err)
	}
	if _, err := svc.Apply(core.RouteOp(5, 6)); err != nil { // intra-shard
		t.Fatalf("intra-shard sync route: %v", err)
	}
	if _, err := svc.Apply(core.Op{Kind: core.OpDelete, Src: 1, Dst: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Apply(core.RouteOp(5, 6)); err == nil {
		t.Fatal("sync route to a deleted key must fail")
	}
	if _, err := svc.Apply(core.RouteOp(-1, 3)); err == nil {
		t.Fatal("out-of-range source must be rejected")
	}
	if _, err := svc.Apply(core.Op{Kind: core.OpGet, Src: 0, Dst: int64(n)}); err == nil {
		t.Fatal("out-of-range key must be rejected")
	}
}

// TestSingleShardDefaultsAndGuards pins the config clamps (Shards < 1 means
// one shard, MinShardKeys floors at 2) and the free-running guards that
// don't need a running service.
func TestSingleShardDefaultsAndGuards(t *testing.T) {
	svc, err := New(16, Config{Shards: 0, MinShardKeys: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Shards() != 1 {
		t.Fatalf("Shards() = %d, want the single-shard clamp", svc.Shards())
	}
	if _, err := svc.Apply(core.Op{Kind: core.OpPut, Src: 1, Dst: 8, Value: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	// A single-shard pipelined scan has fan 1 (intra-shard).
	st, err := svc.Serve(context.Background(), feedOps([]core.Op{{Kind: core.OpScan, Dst: 0, Limit: 4}}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Scans != 1 || st.ScannedEntries != 1 || st.Cross != 0 {
		t.Fatalf("single-shard scan books = %+v", st)
	}

	if err := svc.Stop(); err == nil {
		t.Fatal("Stop before Start must fail")
	}
	if _, err := svc.Route(-1, 3); err == nil {
		t.Fatal("Route with an out-of-range source must fail")
	}
	if _, err := svc.Route(3, 3); err == nil {
		t.Fatal("self-route must fail")
	}
	if _, err := svc.Crash(99); err == nil {
		t.Fatal("Crash of an out-of-range key must fail")
	}
}
