// Package shard is the partitioned serving subsystem: it splits the key
// space [0, n) across S independent self-adjusting skip graphs, each wrapped
// in its own serve.Engine with its own adjuster, behind an immutable,
// epoch-stamped shard directory that maps keys to shards.
//
// # Partitioning model
//
// Shards own contiguous key ranges — the skip graph's membership-vector
// address space is ordered, so a contiguous split keeps every shard a valid
// skip graph over its own keys (Aspnes & Shah) and keeps the directory a
// plain sorted boundary array. Intra-shard requests go straight to that
// shard's engine: routing, transformation, and the scoped a-balance repair
// all stay purely local to one shard, exactly the paper's model at size n/S.
//
// Cross-shard requests are directory-addressed two-leg routes: source →
// boundary inside the source shard, then boundary → destination inside the
// destination shard, plus one inter-shard forwarding hop (the directory
// lookup — O(1), like any partitioned key-value service). Each leg adjusts
// its own shard, so boundary nodes become working-set-hot and cross-shard
// legs get cheap over time; the per-leg worst case stays the per-shard
// a·H(n/S) bound, so a cross-shard request costs at most 2·a·H(n/S) + 1 —
// still O(log n), within a factor 2 of the paper's single-graph a·H(n)
// guarantee for any S, and at or below it once S ≥ √n (then H(n/S) ≤
// H(n)/2).
//
// # Rebalancing
//
// A skew-driven rebalancer watches per-shard load — routed leg endpoints per
// key plus each engine's adjustment backlog — and, when the max/mean shard
// load ratio crosses a threshold, migrates a contiguous key range from the
// hottest shard to its lighter adjacent neighbour. The split point is chosen
// by walking per-key load in from the edge being donated until half the load
// gap has moved. Migration is a tracked leave/join batch through the serve
// engines' membership path (never shed), ordered so a key is always routable
// somewhere:
//
//  1. join the range into the destination shard and wait for its snapshot
//     to publish,
//  2. publish a new directory epoch with the moved boundary,
//  3. leave the range from the source shard.
//
// Between (1) and (3) a key is briefly routable in both shards; both answers
// are correct. A route that loaded the old directory after (3) can miss the
// key in the source shard's snapshot — it observes skipgraph.ErrUnknownKey,
// reloads the directory, and retries (bounded). Adjustments racing the
// migration the same way are tolerated by the engines
// (serve.Config.TolerateAdjustMiss).
//
// # Modes
//
// Like serve.Engine, a Service runs in exactly one of two modes: the
// deterministic Serve pipeline (requests dispatched in order onto concurrent
// per-shard engine pipelines, with rebalancing at deterministic window
// boundaries — every statistic is a pure function of the request sequence
// and configuration) or free-running Start/Route/Stop (any number of
// routing callers, a background rebalancer on a wall-clock interval).
package shard
