package shard

// migrationPlan is one planner decision: move the contiguous key range
// [Lo, Hi) from shard From into the adjacent shard To.
type migrationPlan struct {
	From, To int
	Lo, Hi   int64
	// MovedLoad is the window load carried by the range (diagnostic).
	MovedLoad int64
}

// planRebalance decides at most one migration from the load window. Inputs:
// the directory in force during the window, per-key endpoint counts, and the
// per-shard adjustment backlogs (zero in the deterministic pipeline, where
// windows end at engine-idle barriers).
//
// The decision rule: compute per-shard loads (key loads in range + backlog);
// if the hottest shard exceeds threshold × mean, donate keys to its
// lighter-loaded adjacent neighbour, walking per-key load in from the donated
// edge until half the pairwise load gap has moved (at least one key, and
// never below minKeys remaining). Donating from the adjacent edge is what
// keeps both shards' ranges contiguous. A plan is only emitted when the
// walked keys actually carry load — backlog alone names no keys to move, so
// it biases the ratio test but never triggers a blind migration.
func planRebalance(dir *Directory, keyLoad []int64, backlog []int64, threshold float64, minKeys int) (migrationPlan, bool) {
	s := dir.Shards()
	if s < 2 {
		return migrationPlan{}, false
	}
	loads := make([]int64, s)
	var total int64
	for i := 0; i < s; i++ {
		lo, hi := dir.Range(i)
		for k := lo; k < hi; k++ {
			loads[i] += keyLoad[k]
		}
		if backlog != nil {
			loads[i] += backlog[i]
		}
		total += loads[i]
	}
	if total == 0 {
		return migrationPlan{}, false
	}
	h := 0
	for i := 1; i < s; i++ {
		if loads[i] > loads[h] {
			h = i
		}
	}
	mean := float64(total) / float64(s)
	if float64(loads[h]) < threshold*mean {
		return migrationPlan{}, false
	}
	// Lighter adjacent neighbour (ties toward the left, deterministically).
	t := -1
	if h > 0 {
		t = h - 1
	}
	if h+1 < s && (t < 0 || loads[h+1] < loads[t]) {
		t = h + 1
	}
	if t < 0 || loads[t] >= loads[h] {
		return migrationPlan{}, false
	}
	delta := (loads[h] - loads[t]) / 2
	if delta <= 0 {
		return migrationPlan{}, false
	}

	lo, hi := dir.Range(h)
	maxMove := (hi - lo) - int64(minKeys)
	if maxMove < 1 {
		return migrationPlan{}, false
	}
	gap := loads[h] - loads[t]
	var moved, count int64
	// Walk in from the donated edge until half the gap has moved. step(i)
	// yields the i-th key from that edge.
	step := func(i int64) int64 { return hi - 1 - i } // top edge downward
	if t == h-1 {
		step = func(i int64) int64 { return lo + i } // bottom edge upward
	}
	for count < maxMove && moved < delta {
		moved += keyLoad[step(count)]
		count++
	}
	// Moving load `moved` changes the pairwise gap to |gap − 2·moved|, so
	// the plan improves the balance only while 0 < moved < gap. A single
	// edge key carrying more than the whole gap would otherwise just invert
	// the imbalance and ping-pong back next window; shed keys from the
	// inner end of the walk until the move converges, or give up.
	for count > 0 && moved >= gap {
		count--
		moved -= keyLoad[step(count)]
	}
	if count == 0 || moved == 0 {
		return migrationPlan{}, false
	}
	if t == h-1 {
		return migrationPlan{From: h, To: t, Lo: lo, Hi: lo + count, MovedLoad: moved}, true
	}
	return migrationPlan{From: h, To: t, Lo: hi - count, Hi: hi, MovedLoad: moved}, true
}

// boundaryAfter returns the directory boundary index and new start key that
// realize the plan: moving a top range into the right neighbour shifts that
// neighbour's start down; moving a bottom range into the left neighbour
// shifts the donor's start up.
func (p migrationPlan) boundaryAfter() (index int, start int64) {
	if p.To == p.From+1 {
		return p.To, p.Lo
	}
	return p.From, p.Hi
}
