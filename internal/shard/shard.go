package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lsasg/internal/core"
	"lsasg/internal/obs"
	"lsasg/internal/serve"
	"lsasg/internal/skipgraph"
)

// Config parameterizes a Service.
type Config struct {
	// Shards is the number of partitions S (≥ 1). Values < 1 mean 1.
	Shards int
	// A is the a-balance parameter of every shard's DSG (default 4).
	A int
	// Seed drives all randomness; shard i derives its own stream from it, so
	// results are reproducible for a fixed (Seed, Shards) pair.
	Seed int64
	// Parallelism and BatchSize configure each shard's serve.Engine.
	Parallelism int
	BatchSize   int
	// Backlog bounds each shard's free-running adjustment queue.
	Backlog int

	// RebalanceEvery is the deterministic pipeline's window length in
	// requests: after every window the planner runs at an engine-idle
	// barrier. Values < 1 mean 512.
	RebalanceEvery int
	// RebalanceInterval is the free-running planner period (default 50ms).
	RebalanceInterval time.Duration
	// SkewThreshold is the max/mean shard-load ratio that triggers a
	// migration (default 1.5; values ≤ 1 mean the default).
	SkewThreshold float64
	// MinShardKeys is the smallest key count a migration may leave in a
	// shard (default 2).
	MinShardKeys int

	// OnRequest, when non-nil, observes every request accepted by the
	// deterministic Serve pipeline in sequence order (before its legs are
	// dispatched) — scans included, as the access (src, start). The sharded
	// public API uses it for working-set bookkeeping.
	OnRequest func(src, dst int64, crossShard bool)

	// OnOutcome, when non-nil, receives every op's assembled result — point
	// outcomes, stitched cross-shard scans, and route path measurements — at
	// each window barrier of the deterministic Serve pipeline, in dispatch
	// order.
	OnOutcome func(o Outcome)

	// Tracer, when non-nil, turns on the observability layer: the shard
	// engines feed its stage histograms and per-leg timings, and the
	// dispatcher assembles whole-op spans (with per-leg breakdowns) and
	// per-verb latency at the window barrier. Routes only get spans when
	// OnOutcome is set — untagged route legs leave no fragments to
	// assemble. Wall-clock measurements never feed ServeStats.
	Tracer *obs.Tracer
}

func (c Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

func (c Config) rebalanceEvery() int {
	if c.RebalanceEvery < 1 {
		return 512
	}
	return c.RebalanceEvery
}

func (c Config) rebalanceInterval() time.Duration {
	if c.RebalanceInterval <= 0 {
		return 50 * time.Millisecond
	}
	return c.RebalanceInterval
}

func (c Config) skewThreshold() float64 {
	if c.SkewThreshold <= 1 {
		return 1.5
	}
	return c.SkewThreshold
}

func (c Config) minShardKeys() int {
	if c.MinShardKeys < 2 {
		return 2
	}
	return c.MinShardKeys
}

// slot is one shard: its live DSG and the engine serializing its mutation.
type slot struct {
	dsg *core.DSG
	eng *serve.Engine
}

// Service is a sharded self-adjusting skip-graph service over the static key
// space [0, n). Construction partitions the keys evenly; the rebalancer may
// move contiguous ranges between shards afterwards, so a shard's range is
// whatever the current directory epoch says.
type Service struct {
	cfg    Config
	n      int64
	shards []*slot
	dir    atomic.Pointer[Directory]

	// keyLoad[k] counts routed leg endpoints touching key k in the current
	// load window; the planner consumes and resets it.
	keyLoad []atomic.Int64

	// frags collects tagged KV leg results from the shard engines during a
	// deterministic window; deliverOutcomes drains it at the barrier.
	fragMu sync.Mutex
	frags  map[int64][]tagFrag

	mu      sync.Mutex // guards the mode flags and Stop
	started bool
	serving bool
	stopped bool
	stop    chan struct{}
	rebalWG sync.WaitGroup

	routed      atomic.Int64
	intra       atomic.Int64
	cross       atomic.Int64
	distSum     atomic.Int64
	hopSum      atomic.Int64
	retried     atomic.Int64
	rebalances  atomic.Int64
	movedKeys   atomic.Int64
	rebalErrors atomic.Int64
}

// New builds a sharded service over keys 0..n-1. Every shard needs at least
// MinShardKeys keys in the initial split.
func New(n int, cfg Config) (*Service, error) {
	s := cfg.shards()
	if n < s*cfg.minShardKeys() {
		return nil, fmt.Errorf("shard: %d keys cannot fill %d shards with ≥ %d keys each", n, s, cfg.minShardKeys())
	}
	svc := &Service{cfg: cfg, n: int64(n), keyLoad: make([]atomic.Int64, n), frags: make(map[int64][]tagFrag)}
	dir := newDirectory(int64(n), s)
	svc.dir.Store(dir)
	a := cfg.A
	if a == 0 {
		a = 4
	}
	for i := 0; i < s; i++ {
		lo, hi := dir.Range(i)
		nodes := make([]*skipgraph.Node, 0, hi-lo)
		for k := lo; k < hi; k++ {
			nodes = append(nodes, skipgraph.NewNode(skipgraph.KeyOf(k), k))
		}
		g := skipgraph.NewFromNodes(nodes, skipgraph.RandomBrancher(cfg.Seed+int64(i)*1_000_003))
		d := core.NewFromGraph(g, core.Config{
			A:    a,
			Seed: cfg.Seed + int64(i),
			// Disjoint dummy-id spaces per shard: migration can carry any
			// real id into any shard, so dummy ids live far above them all.
			DummyIDBase: int64(n) + int64(i+1)<<32,
		})
		shardIdx := i
		eng := serve.New(d, serve.Config{
			Parallelism:        cfg.Parallelism,
			BatchSize:          cfg.BatchSize,
			Backlog:            cfg.Backlog,
			TolerateAdjustMiss: true,
			// Engines under a dispatcher feed stage histograms and leg
			// timings only; the dispatcher owns whole-op spans.
			Tracer:        cfg.Tracer,
			TraceLegsOnly: true,
			// Tagged KV legs report their results here for barrier-time
			// assembly; untagged (route) legs pass through.
			OnResult: func(r serve.Result) { svc.captureFrag(shardIdx, r) },
		})
		svc.shards = append(svc.shards, &slot{dsg: d, eng: eng})
	}
	return svc, nil
}

// N returns the total key count.
func (s *Service) N() int { return int(s.n) }

// Shards returns the shard count.
func (s *Service) Shards() int { return len(s.shards) }

// Directory returns the current directory (immutable; callers may hold it).
func (s *Service) Directory() *Directory { return s.dir.Load() }

// Height returns the tallest shard topology.
func (s *Service) Height() int {
	h := 0
	for _, sl := range s.shards {
		if sh := sl.eng.Snapshot().Graph.Height(); sh > h {
			h = sh
		}
	}
	return h
}

// DummyCount sums the dummy populations of all shards.
func (s *Service) DummyCount() int {
	c := 0
	for _, sl := range s.shards {
		c += sl.dsg.DummyCount()
	}
	return c
}

// Verify checks all structural invariants of every shard's topology.
func (s *Service) Verify() error {
	for i, sl := range s.shards {
		if err := sl.dsg.Graph().Verify(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// CrashIdle injects a crash failure synchronously: the node fails in place
// on whichever shard the current directory assigns it, and the post-crash
// snapshot publishes before the call returns. Requires the owning engine to
// be idle (no Serve, no Start) — the deterministic-mode twin of Crash.
func (s *Service) CrashIdle(id int64) error {
	if err := s.checkKey(id); err != nil {
		return err
	}
	sh := s.dir.Load().ShardOf(id)
	return s.shards[sh].eng.ApplyCrashIdle(id)
}

// checkKey validates one endpoint.
func (s *Service) checkKey(k int64) error {
	if k < 0 || k >= s.n {
		return fmt.Errorf("shard: key %d out of range [0, %d)", k, s.n)
	}
	return nil
}

// recordLoad attributes one routed request's endpoints to the load window.
func (s *Service) recordLoad(src, dst int64) {
	s.keyLoad[src].Add(1)
	s.keyLoad[dst].Add(1)
}

// takeKeyLoads drains the per-key load window into a plain slice.
func (s *Service) takeKeyLoads() []int64 {
	out := make([]int64, len(s.keyLoad))
	for i := range s.keyLoad {
		out[i] = s.keyLoad[i].Swap(0)
	}
	return out
}
