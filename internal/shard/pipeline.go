package shard

import (
	"context"
	"fmt"

	"lsasg/internal/core"
	"lsasg/internal/serve"
)

// This file is the deterministic mode: a sequential dispatcher splits the
// request stream into per-shard legs feeding S concurrent engine pipelines,
// and the rebalancer runs at engine-idle barriers between fixed-size request
// windows. Every statistic is a pure function of the request sequence and
// the configuration — independent of Parallelism, shard pipeline scheduling,
// and producer timing — because each shard's leg sequence, each engine's
// batch schedule, and every planner input is fixed by the dispatch order.

// Request is one communication request between two keys, the unit Serve
// consumes.
type Request struct {
	Src, Dst int64
}

// ServeStats aggregates one deterministic Serve run. All fields are
// deterministic for a fixed seed, shard count, and request sequence.
type ServeStats struct {
	Requests int64
	Intra    int64 // requests resolved inside one shard
	Cross    int64 // requests routed source→boundary, boundary→destination
	Legs     int64 // engine-routed legs (≤ Requests + Cross)

	Windows    int64 // non-empty rebalance windows the run spanned
	Rebalances int64 // migrations executed at window barriers
	MovedKeys  int64 // keys moved across shards

	Batches            int64 // summed over shard engines
	SnapshotsPublished int64

	// TotalRouteDistance/Hops span whole requests: leg distances measured in
	// the shards' snapshots, plus the boundary intermediates and the one
	// inter-shard forwarding hop of each cross-shard request.
	TotalRouteDistance int64
	TotalRouteHops     int64
	// MaxLegDistance is the worst single-leg snapshot distance (per-leg, not
	// per-request: legs of one cross-shard request finish in different
	// shards' pipelines).
	MaxLegDistance int64

	TotalTransformRounds int64
	TotalAdjustLag       int64
	MaxAdjustLag         int

	// LoadRatioFirst/Last are the max/mean shard-load ratios of the first
	// non-empty window and the last *full* window — the skew the rebalancer
	// saw before acting and the skew it left behind. A trailing partial
	// window (the stream rarely ends exactly on a window boundary) holds too
	// few requests for its ratio to mean anything, so it only counts when no
	// full window exists at all.
	LoadRatioFirst float64
	LoadRatioLast  float64

	Height     int // tallest shard after the run
	DummyCount int // summed over shards
}

// pipe is one shard's in-flight window pipeline.
type pipe struct {
	ch   chan core.Pair
	done chan struct{}
	st   serve.Stats
	err  error
}

// Serve consumes requests until the channel closes (or ctx is cancelled),
// dispatching each to its shard engines' deterministic pipelines, and
// returns the aggregate statistics. After every RebalanceEvery requests the
// shard pipelines drain to a barrier, the planner inspects the window's
// per-key loads, and at most one contiguous range migrates between adjacent
// shards before the next window starts — so rebalancing decisions (and the
// resulting directory epochs) are as deterministic as everything else.
//
// Serve refuses to run on a service in free-running mode (Start) and rejects
// overlapping calls. Producers should select on the same ctx for every send,
// exactly as with Network.Serve.
func (s *Service) Serve(ctx context.Context, in <-chan Request) (ServeStats, error) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return ServeStats{}, fmt.Errorf("shard: Serve on a service already in free-running mode (Start)")
	}
	if s.serving {
		s.mu.Unlock()
		return ServeStats{}, fmt.Errorf("shard: overlapping Serve calls on one service")
	}
	s.serving = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.serving = false
		s.mu.Unlock()
	}()

	var st ServeStats
	rebal0, moved0 := s.rebalances.Load(), s.movedKeys.Load()
	every := s.cfg.rebalanceEvery()
	batch := s.cfg.BatchSize
	if batch < 1 {
		batch = 32
	}
	var retErr error
	done := false
	sawFullWindow := false
	for !done {
		dir := s.dir.Load()
		pipes := make([]*pipe, len(s.shards))
		for i, sl := range s.shards {
			p := &pipe{ch: make(chan core.Pair, 4*batch), done: make(chan struct{})}
			pipes[i] = p
			go func(sl *slot, p *pipe) {
				p.st, p.err = sl.eng.Serve(ctx, p.ch)
				close(p.done)
			}(sl, p)
		}
		dispatched := 0
		for dispatched < every && retErr == nil && !done {
			select {
			case <-ctx.Done():
				done, retErr = true, ctx.Err()
			case r, ok := <-in:
				if !ok {
					done = true
					break
				}
				if err := s.checkPair(r); err != nil {
					done, retErr = true, err
					break
				}
				if !s.dispatch(ctx, dir, r, pipes, &st) {
					done = true // a pipeline died; its error surfaces below
					break
				}
				dispatched++
			}
		}
		for _, p := range pipes {
			close(p.ch)
		}
		for _, p := range pipes {
			<-p.done
			if p.err != nil && retErr == nil {
				retErr = p.err
			}
			st.Batches += p.st.Batches
			st.SnapshotsPublished += p.st.SnapshotsPublished
			st.TotalRouteDistance += p.st.TotalRouteDistance
			st.TotalRouteHops += p.st.TotalRouteHops
			if p.st.MaxRouteDistance > int(st.MaxLegDistance) {
				st.MaxLegDistance = int64(p.st.MaxRouteDistance)
			}
			st.TotalTransformRounds += p.st.TotalTransformRounds
			st.TotalAdjustLag += p.st.TotalAdjustLag
			if p.st.MaxAdjustLag > st.MaxAdjustLag {
				st.MaxAdjustLag = p.st.MaxAdjustLag
			}
		}
		keyLoad := s.takeKeyLoads()
		if dispatched > 0 {
			st.Windows++
			ratio := loadRatio(dir, keyLoad)
			if st.LoadRatioFirst == 0 {
				st.LoadRatioFirst = ratio
			}
			if dispatched == every {
				st.LoadRatioLast = ratio
				sawFullWindow = true
			} else if !sawFullWindow {
				st.LoadRatioLast = ratio
			}
		}
		if done || retErr != nil {
			break
		}
		// Rebalance at the barrier: every engine is idle between windows.
		if plan, ok := planRebalance(dir, keyLoad, nil, s.cfg.skewThreshold(), s.cfg.minShardKeys()); ok {
			if err := s.executeIdle(dir, plan); err != nil {
				retErr = err
				break
			}
		}
	}
	st.Rebalances = s.rebalances.Load() - rebal0
	st.MovedKeys = s.movedKeys.Load() - moved0
	st.Height = s.Height()
	st.DummyCount = s.DummyCount()
	return st, retErr
}

// dispatch splits one request into shard legs (the shared splitLegs rule)
// and feeds them to the window pipelines, updating the dispatcher-side
// books. It reports false when a pipeline stopped consuming (engine error
// or cancellation).
func (s *Service) dispatch(ctx context.Context, dir *Directory, r Request, pipes []*pipe, st *ServeStats) bool {
	legs, n, cross := dir.splitLegs(r.Src, r.Dst)
	st.Requests++
	s.recordLoad(r.Src, r.Dst)
	if s.cfg.OnRequest != nil {
		s.cfg.OnRequest(r.Src, r.Dst, cross)
	}
	if cross {
		st.Cross++
		st.TotalRouteHops++ // the inter-shard forwarding hop
		// Each non-trivial leg ends (or starts) at a boundary node, which is
		// an intermediate of the whole-request path.
		st.TotalRouteDistance += int64(n)
	} else {
		st.Intra++
	}
	for i := 0; i < n; i++ {
		st.Legs++
		select {
		case pipes[legs[i].shard].ch <- core.Pair{Src: legs[i].src, Dst: legs[i].dst}:
		case <-pipes[legs[i].shard].done:
			return false
		case <-ctx.Done():
			return false
		}
	}
	return true
}

// executeIdle runs one migration with every engine idle, applying
// membership directly (ApplyMembershipBatch publishes the snapshot
// synchronously, satisfying executeMigration's applier contract).
func (s *Service) executeIdle(dir *Directory, plan migrationPlan) error {
	return s.executeMigration(dir, plan, func(eng *serve.Engine, joins, leaves []int64) error {
		return eng.ApplyMembershipBatch(joins, leaves)
	})
}

// checkPair validates one request.
func (s *Service) checkPair(r Request) error {
	if err := s.checkKey(r.Src); err != nil {
		return err
	}
	if err := s.checkKey(r.Dst); err != nil {
		return err
	}
	if r.Src == r.Dst {
		return fmt.Errorf("shard: source and destination are both %d", r.Src)
	}
	return nil
}

// loadRatio computes the max/mean per-shard load ratio of one window.
func loadRatio(dir *Directory, keyLoad []int64) float64 {
	n := dir.Shards()
	var total, max int64
	for i := 0; i < n; i++ {
		lo, hi := dir.Range(i)
		var l int64
		for k := lo; k < hi; k++ {
			l += keyLoad[k]
		}
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(n) / float64(total)
}
