package shard

import (
	"context"
	"fmt"
	"sort"
	"time"

	"lsasg/internal/core"
	"lsasg/internal/obs"
	"lsasg/internal/serve"
	"lsasg/internal/skipgraph"
)

// This file is the deterministic mode: a sequential dispatcher splits the
// op stream into per-shard legs feeding S concurrent engine pipelines, and
// the rebalancer runs at engine-idle barriers between fixed-size request
// windows. Every statistic is a pure function of the request sequence and
// the configuration — independent of Parallelism, shard pipeline scheduling,
// and producer timing — because each shard's leg sequence, each engine's
// batch schedule, and every planner input is fixed by the dispatch order.
//
// KV ops ride the same leg machinery. A point op (Get/Put/Delete) becomes
// an origin-side route leg to the exit boundary (when non-trivial) plus the
// op itself dispatched to the destination shard with the entry boundary as
// its access source — so the access adapts both shards' topologies exactly
// like a cross-shard route. A Scan fans one scan leg to every shard whose
// range intersects [start, ∞), each reading its own epoch snapshot; the
// fragments are correlated by a dispatcher-assigned Tag and stitched in
// shard order (= key order) at the window barrier, where every leg has
// completed — which is what makes multi-shard scans deterministic despite
// the shards' pipelines running concurrently. Outcomes are delivered to
// Config.OnOutcome at the barrier, in dispatch order.

// ServeStats aggregates one deterministic Serve run. All fields are
// deterministic for a fixed seed, shard count, and request sequence.
type ServeStats struct {
	Requests int64
	Intra    int64 // requests resolved inside one shard
	Cross    int64 // requests spanning shards (routed via boundaries / fanned)
	Legs     int64 // engine legs dispatched

	Windows    int64 // non-empty rebalance windows the run spanned
	Rebalances int64 // migrations executed at window barriers
	MovedKeys  int64 // keys moved across shards

	Batches            int64 // summed over shard engines
	SnapshotsPublished int64

	// TotalRouteDistance/Hops span whole requests: leg distances measured in
	// the shards' snapshots, plus the boundary intermediates and the one
	// inter-shard forwarding hop of each cross-shard request.
	TotalRouteDistance int64
	TotalRouteHops     int64
	// MaxLegDistance is the worst single-leg snapshot distance (per-leg, not
	// per-request: legs of one cross-shard request finish in different
	// shards' pipelines).
	MaxLegDistance int64

	TotalTransformRounds int64
	TotalAdjustLag       int64
	MaxAdjustLag         int

	// KV op counters, at request granularity (a scan fanned over three
	// shards is one Scan). Hits/inserts come from the stitched outcomes;
	// RouteMisses sums the engines' unmeasurable KV access paths.
	Gets           int64
	GetHits        int64
	Puts           int64
	PutInserts     int64
	Deletes        int64
	DeleteHits     int64
	Scans          int64
	ScannedEntries int64
	RouteMisses    int64

	// LoadRatioFirst/Last are the max/mean shard-load ratios of the first
	// non-empty window and the last *full* window — the skew the rebalancer
	// saw before acting and the skew it left behind. A trailing partial
	// window (the stream rarely ends exactly on a window boundary) holds too
	// few requests for its ratio to mean anything, so it only counts when no
	// full window exists at all.
	LoadRatioFirst float64
	LoadRatioLast  float64

	Height     int // tallest shard after the run
	DummyCount int // summed over shards
}

// Outcome is one request's assembled result, delivered to Config.OnOutcome
// at the window barrier in dispatch order — every op produces exactly one,
// routes included. Op is the original envelope as the caller dispatched it
// (Tag included). Point ops carry the destination leg's result; scans carry
// the stitched, limit-truncated entries.
type Outcome struct {
	Op      core.Op
	Found   bool
	Value   []byte
	Version int64
	Existed bool
	Entries []skipgraph.Entry

	// RouteDistance and RouteHops sum the op's tagged leg paths (measured in
	// the shards' snapshots) plus the boundary intermediates and forwarding
	// hops of a cross-shard access; 0 for scans, which read without routing.
	// AdjustLag is the worst single leg's pending-adjustment count.
	RouteDistance int
	RouteHops     int
	AdjustLag     int
}

// pipe is one shard's in-flight window pipeline.
type pipe struct {
	ch   chan core.Op
	done chan struct{}
	st   serve.Stats
	err  error
}

// pendingReq is one dispatched op awaiting its leg results at the barrier.
type pendingReq struct {
	tag  int64
	op   core.Op // original envelope
	legs int     // legs carrying the tag (scans and cross-shard routes fan >1)
	// extraDist/extraHops are the dispatcher-side path contributions of a
	// cross-shard op — boundary intermediates and forwarding hops — folded
	// into the outcome on top of the tagged legs' snapshot measurements.
	extraDist int
	extraHops int
}

// tagFrag is one tagged leg result captured from a shard engine.
type tagFrag struct {
	shard int
	r     serve.Result
}

// Serve consumes op envelopes until the channel closes (or ctx is
// cancelled), dispatching each to its shard engines' deterministic
// pipelines, and returns the aggregate statistics. After every
// RebalanceEvery requests the shard pipelines drain to a barrier, KV
// outcomes are assembled and delivered, the planner inspects the window's
// per-key loads, and at most one contiguous range migrates — values riding
// with their keys — between adjacent shards before the next window starts.
//
// Serve refuses to run on a service in free-running mode (Start) and rejects
// overlapping calls. Producers should select on the same ctx for every send,
// exactly as with Network.Serve.
func (s *Service) Serve(ctx context.Context, in <-chan core.Op) (ServeStats, error) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return ServeStats{}, fmt.Errorf("shard: Serve on a service already in free-running mode (Start)")
	}
	if s.serving {
		s.mu.Unlock()
		return ServeStats{}, fmt.Errorf("shard: overlapping Serve calls on one service")
	}
	s.serving = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.serving = false
		s.mu.Unlock()
	}()

	var st ServeStats
	rebal0, moved0 := s.rebalances.Load(), s.movedKeys.Load()
	every := s.cfg.rebalanceEvery()
	batch := s.cfg.BatchSize
	if batch < 1 {
		batch = 32
	}
	var retErr error
	done := false
	sawFullWindow := false
	var nextTag int64
	for !done {
		dir := s.dir.Load()
		pipes := make([]*pipe, len(s.shards))
		for i, sl := range s.shards {
			p := &pipe{ch: make(chan core.Op, 4*batch), done: make(chan struct{})}
			pipes[i] = p
			go func(sl *slot, p *pipe) {
				p.st, p.err = sl.eng.Serve(ctx, p.ch)
				close(p.done)
			}(sl, p)
		}
		var pending []pendingReq
		dispatched := 0
		for dispatched < every && retErr == nil && !done {
			select {
			case <-ctx.Done():
				done, retErr = true, ctx.Err()
			case r, ok := <-in:
				if !ok {
					done = true
					break
				}
				if err := s.checkOp(r); err != nil {
					done, retErr = true, err
					break
				}
				if !s.dispatch(ctx, dir, r, pipes, &st, &pending, &nextTag) {
					done = true // a pipeline died; its error surfaces below
					break
				}
				dispatched++
			}
		}
		for _, p := range pipes {
			close(p.ch)
		}
		for _, p := range pipes {
			<-p.done
			if p.err != nil && retErr == nil {
				retErr = p.err
			}
			st.Batches += p.st.Batches
			st.SnapshotsPublished += p.st.SnapshotsPublished
			st.TotalRouteDistance += p.st.TotalRouteDistance
			st.TotalRouteHops += p.st.TotalRouteHops
			if p.st.MaxRouteDistance > int(st.MaxLegDistance) {
				st.MaxLegDistance = int64(p.st.MaxRouteDistance)
			}
			st.TotalTransformRounds += p.st.TotalTransformRounds
			st.TotalAdjustLag += p.st.TotalAdjustLag
			if p.st.MaxAdjustLag > st.MaxAdjustLag {
				st.MaxAdjustLag = p.st.MaxAdjustLag
			}
			st.RouteMisses += p.st.RouteMisses
		}
		s.deliverOutcomes(pending, &st)
		keyLoad := s.takeKeyLoads()
		if dispatched > 0 {
			st.Windows++
			ratio := loadRatio(dir, keyLoad)
			if st.LoadRatioFirst == 0 {
				st.LoadRatioFirst = ratio
			}
			if dispatched == every {
				st.LoadRatioLast = ratio
				sawFullWindow = true
			} else if !sawFullWindow {
				st.LoadRatioLast = ratio
			}
		}
		if done || retErr != nil {
			break
		}
		// Rebalance at the barrier: every engine is idle between windows.
		if plan, ok := planRebalance(dir, keyLoad, nil, s.cfg.skewThreshold(), s.cfg.minShardKeys()); ok {
			if err := s.executeIdle(dir, plan); err != nil {
				retErr = err
				break
			}
		}
	}
	st.Rebalances = s.rebalances.Load() - rebal0
	st.MovedKeys = s.movedKeys.Load() - moved0
	st.Height = s.Height()
	st.DummyCount = s.DummyCount()
	return st, retErr
}

// dispatch splits one op into shard legs and feeds them to the window
// pipelines, updating the dispatcher-side books. KV ops are tagged so their
// leg results can be assembled at the barrier. It reports false when a
// pipeline stopped consuming (engine error or cancellation).
func (s *Service) dispatch(ctx context.Context, dir *Directory, op core.Op,
	pipes []*pipe, st *ServeStats, pending *[]pendingReq, nextTag *int64) bool {
	st.Requests++
	switch op.Kind {
	case core.OpRoute:
		legs, n, cross := dir.splitLegs(op.Src, op.Dst)
		s.recordLoad(op.Src, op.Dst)
		if s.cfg.OnRequest != nil {
			s.cfg.OnRequest(op.Src, op.Dst, cross)
		}
		// Routes are tagged only when an outcome consumer exists: the tag
		// costs a fragment capture per leg, and route outcomes carry no KV
		// state — nothing downstream needs them otherwise.
		var tag int64
		if s.cfg.OnOutcome != nil {
			*nextTag++
			tag = *nextTag
			pr := pendingReq{tag: tag, op: op, legs: n}
			if cross {
				pr.extraDist, pr.extraHops = n, 1
			}
			*pending = append(*pending, pr)
		}
		if cross {
			st.Cross++
			st.TotalRouteHops++ // the inter-shard forwarding hop
			// Each non-trivial leg ends (or starts) at a boundary node, which is
			// an intermediate of the whole-request path.
			st.TotalRouteDistance += int64(n)
		} else {
			st.Intra++
		}
		for i := 0; i < n; i++ {
			st.Legs++
			if !s.sendLeg(ctx, pipes[legs[i].shard], core.Op{Src: legs[i].src, Dst: legs[i].dst, Tag: tag}) {
				return false
			}
		}
		return true

	case core.OpGet, core.OpPut, core.OpDelete:
		switch op.Kind {
		case core.OpGet:
			st.Gets++
		case core.OpPut:
			st.Puts++
		case core.OpDelete:
			st.Deletes++
		}
		s.recordLoad(op.Src, op.Dst)
		si, di := dir.ShardOf(op.Src), dir.ShardOf(op.Dst)
		cross := si != di
		if s.cfg.OnRequest != nil {
			s.cfg.OnRequest(op.Src, op.Dst, cross)
		}
		*nextTag++
		tag := *nextTag
		pr := pendingReq{tag: tag, op: op, legs: 1}
		kv := op
		kv.Tag = tag
		if cross {
			st.Cross++
			st.TotalRouteHops++
			pr.extraHops++
			higher := op.Dst > op.Src
			if exit := dir.exitKey(si, higher); exit != op.Src {
				st.Legs++
				st.TotalRouteDistance++ // the exit boundary intermediate
				pr.extraDist++
				if !s.sendLeg(ctx, pipes[si], core.Op{Src: op.Src, Dst: exit}) {
					*pending = append(*pending, pr)
					return false
				}
			}
			entry := dir.entryKey(di, higher)
			if entry != op.Dst {
				st.TotalRouteDistance++ // the entry boundary intermediate
				pr.extraDist++
			}
			kv.Src = entry // the access enters the shard at the boundary
		} else {
			st.Intra++
		}
		*pending = append(*pending, pr)
		st.Legs++
		return s.sendLeg(ctx, pipes[di], kv)

	case core.OpScan:
		st.Scans++
		s.keyLoad[op.Dst].Add(1)
		first := dir.ShardOf(op.Dst)
		fan := dir.Shards() - first
		if s.cfg.OnRequest != nil {
			s.cfg.OnRequest(op.Src, op.Dst, fan > 1)
		}
		if fan > 1 {
			st.Cross++
			st.TotalRouteHops += int64(fan - 1) // shard-to-shard forwarding
		} else {
			st.Intra++
		}
		*nextTag++
		tag := *nextTag
		*pending = append(*pending, pendingReq{tag: tag, op: op, legs: fan, extraHops: fan - 1})
		limit := op.Limit
		if limit <= 0 {
			limit = 1
		}
		for i := first; i < dir.Shards(); i++ {
			lo, _ := dir.Range(i)
			start := op.Dst
			if lo > start {
				start = lo
			}
			st.Legs++
			// Every leg carries the full limit: a shard cannot know how many
			// entries its predecessors will contribute, and the barrier stitch
			// truncates exactly.
			if !s.sendLeg(ctx, pipes[i], core.Op{Kind: core.OpScan, Dst: start, Limit: limit, Tag: tag}) {
				return false
			}
		}
		return true
	}
	return true
}

// sendLeg feeds one leg to a shard pipeline, giving up when the pipeline or
// the context dies.
func (s *Service) sendLeg(ctx context.Context, p *pipe, op core.Op) bool {
	select {
	case p.ch <- op:
		return true
	case <-p.done:
		return false
	case <-ctx.Done():
		return false
	}
}

// captureFrag records a tagged leg result from shard engine OnResult
// callbacks; untagged legs (plain routes) pass through untouched. Engines
// call this concurrently, hence the lock; assembly happens single-threaded
// at the barrier.
func (s *Service) captureFrag(shard int, r serve.Result) {
	if r.Op.Tag == 0 {
		return
	}
	s.fragMu.Lock()
	s.frags[r.Op.Tag] = append(s.frags[r.Op.Tag], tagFrag{shard: shard, r: r})
	s.fragMu.Unlock()
}

// deliverOutcomes assembles each pending op's leg results — all complete,
// the pipelines have drained — updates the KV statistics, and hands the
// outcomes to OnOutcome in dispatch order. The fragment store resets for
// the next window.
func (s *Service) deliverOutcomes(pending []pendingReq, st *ServeStats) {
	if len(pending) == 0 {
		return
	}
	s.fragMu.Lock()
	frags := s.frags
	s.frags = make(map[int64][]tagFrag)
	s.fragMu.Unlock()
	for _, p := range pending {
		o := Outcome{Op: p.op}
		fs := frags[p.tag]
		// The access-path view of the whole request: tagged leg measurements
		// plus the dispatcher's boundary/forwarding contributions. Leg order
		// is capture order, but sums and maxima are order-independent.
		for _, f := range fs {
			o.RouteDistance += f.r.RouteDistance
			o.RouteHops += f.r.RouteHops
			if f.r.AdjustLag > o.AdjustLag {
				o.AdjustLag = f.r.AdjustLag
			}
		}
		o.RouteDistance += p.extraDist
		o.RouteHops += p.extraHops
		if p.op.Kind == core.OpScan {
			sort.Slice(fs, func(i, j int) bool { return fs[i].shard < fs[j].shard })
			limit := p.op.Limit
			if limit <= 0 {
				limit = 1
			}
			for _, f := range fs {
				for _, e := range f.r.Entries {
					if len(o.Entries) == limit {
						break
					}
					o.Entries = append(o.Entries, e)
				}
			}
			st.ScannedEntries += int64(len(o.Entries))
		} else if len(fs) > 0 {
			r := fs[0].r
			o.Found, o.Value, o.Version, o.Existed = r.Found, r.Value, r.Version, r.Existed
			switch p.op.Kind {
			case core.OpGet:
				if o.Found {
					st.GetHits++
				}
			case core.OpPut:
				if !o.Existed {
					st.PutInserts++
				}
			case core.OpDelete:
				if o.Existed {
					st.DeleteHits++
				}
			}
		}
		if tr := s.cfg.Tracer; tr != nil && len(fs) > 0 {
			s.recordSpan(tr, p, fs, o)
		}
		if s.cfg.OnOutcome != nil {
			s.cfg.OnOutcome(o)
		}
	}
}

// recordSpan folds one assembled op's leg fragments into the tracer: the
// whole-op verb latency (summed leg service time — queueing and the
// batch-amortized adjuster pass are excluded; they have their own stage
// histograms) and, when slow enough to matter, a slowest-ring span with
// the per-leg breakdown.
func (s *Service) recordSpan(tr *obs.Tracer, p pendingReq, fs []tagFrag, o Outcome) {
	var total int64
	miss := false
	for _, f := range fs {
		total += f.r.RouteNanos
		miss = miss || f.r.RouteMiss
	}
	tr.ObserveOp(int64(p.op.Kind), time.Duration(total))
	if !tr.WouldRecord(total) {
		return
	}
	legs := make([]obs.LegSpan, len(fs))
	for i, f := range fs {
		legs[i] = obs.LegSpan{
			Shard:     int64(f.shard),
			Distance:  int64(f.r.RouteDistance),
			Hops:      int64(f.r.RouteHops),
			AdjustLag: int64(f.r.AdjustLag),
			Epoch:     f.r.Epoch,
			Nanos:     f.r.RouteNanos,
		}
	}
	tr.RecordSpan(obs.Span{
		Seq:           p.tag,
		Kind:          int64(p.op.Kind),
		Src:           p.op.Src,
		Dst:           p.op.Dst,
		Start:         time.Now().UnixNano(),
		TotalNanos:    total,
		Epoch:         fs[0].r.Epoch,
		RouteDistance: int64(o.RouteDistance),
		RouteHops:     int64(o.RouteHops),
		AdjustLag:     int64(o.AdjustLag),
		RouteMiss:     miss,
		Cross:         len(fs) > 1 || p.extraHops > 0,
		Legs:          legs,
	})
}

// executeIdle runs one migration with every engine idle, applying
// membership directly (ApplyMigrationBatch publishes the snapshot
// synchronously, satisfying executeMigration's applier contract).
func (s *Service) executeIdle(dir *Directory, plan migrationPlan) error {
	return s.executeMigration(dir, plan, func(eng *serve.Engine, joins []skipgraph.Entry, leaves []int64) error {
		return eng.ApplyMigrationBatch(joins, leaves)
	})
}

// checkOp validates one op envelope against the static key space.
func (s *Service) checkOp(op core.Op) error {
	if err := s.checkKey(op.Dst); err != nil {
		return err
	}
	switch op.Kind {
	case core.OpRoute:
		if err := s.checkKey(op.Src); err != nil {
			return err
		}
		if op.Src == op.Dst {
			return fmt.Errorf("shard: source and destination are both %d", op.Src)
		}
	case core.OpGet, core.OpPut, core.OpDelete, core.OpScan:
		// Dst (a scan's start key) is already checked; Src is the access
		// origin for every kind.
		return s.checkKey(op.Src)
	default:
		return fmt.Errorf("shard: unknown op kind %d", op.Kind)
	}
	return nil
}

// loadRatio computes the max/mean per-shard load ratio of one window.
func loadRatio(dir *Directory, keyLoad []int64) float64 {
	n := dir.Shards()
	var total, max int64
	for i := 0; i < n; i++ {
		lo, hi := dir.Range(i)
		var l int64
		for k := lo; k < hi; k++ {
			l += keyLoad[k]
		}
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(n) / float64(total)
}
