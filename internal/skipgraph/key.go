// Package skipgraph implements the skip-graph substrate from Aspnes and
// Shah ("Skip Graphs", SODA 2003) as used by the paper: nodes ordered by key
// at level 0, recursively split into sublists by membership-vector bits, with
// the standard top-down routing algorithm (paper Appendix B). The package
// also provides the binary-tree-of-linked-lists view the paper uses for
// exposition (Fig 1), invariant verification, a-balance checking, and node
// join/leave (§IV-G).
package skipgraph

import "fmt"

// Key is a totally ordered node key. Minor exists so that logical "dummy"
// nodes (§IV-F) can be placed between two real keys while keeping the base
// list sorted: real nodes always use Minor == 0 and dummies pick a non-zero
// Minor adjacent to a real neighbour.
type Key struct {
	Primary int64
	Minor   int32
}

// KeyOf returns the real-node key for primary p.
func KeyOf(p int64) Key { return Key{Primary: p} }

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	if k.Primary != o.Primary {
		return k.Primary < o.Primary
	}
	return k.Minor < o.Minor
}

// Compare returns -1, 0, or 1 as k is less than, equal to, or greater than o.
func (k Key) Compare(o Key) int {
	switch {
	case k.Less(o):
		return -1
	case o.Less(k):
		return 1
	default:
		return 0
	}
}

// String renders the key; dummies render with a "+minor" suffix.
func (k Key) String() string {
	if k.Minor == 0 {
		return fmt.Sprintf("%d", k.Primary)
	}
	return fmt.Sprintf("%d+%d", k.Primary, k.Minor)
}
