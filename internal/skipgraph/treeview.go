package skipgraph

import (
	"fmt"
	"strings"
)

// Tree is the binary-tree-of-linked-lists view of a (sub) skip graph that
// the paper uses throughout (Fig 1(b)): every linked list is a tree node;
// the 0-sublist and 1-sublist at the next level are its children.
type Tree struct {
	Prefix string  // common membership-vector prefix ("" at the root)
	Level  int     // list level (== len(Prefix))
	Nodes  []*Node // list members in key order
	Zero   *Tree   // 0-subgraph, nil for leaves
	One    *Tree   // 1-subgraph, nil for leaves
}

// TreeView builds the tree rooted at the base list.
func (g *Graph) TreeView() *Tree {
	return buildTree(g.nodes, 0, "")
}

// SubTreeView builds the tree rooted at the level-`level` list containing n.
func (g *Graph) SubTreeView(n *Node, level int) *Tree {
	list := g.ListAt(n, level)
	return buildTree(list, level, prefixString(n, level))
}

func buildTree(nodes []*Node, level int, prefix string) *Tree {
	t := &Tree{Prefix: prefix, Level: level, Nodes: nodes}
	if len(nodes) < 2 {
		return t
	}
	var zeros, ones []*Node
	for _, n := range nodes {
		if !n.HasBit(level + 1) {
			return t // truncated vector: list does not split further
		}
		if n.Bit(level+1) == 0 {
			zeros = append(zeros, n)
		} else {
			ones = append(ones, n)
		}
	}
	if len(zeros) > 0 {
		t.Zero = buildTree(zeros, level+1, prefix+"0")
	}
	if len(ones) > 0 {
		t.One = buildTree(ones, level+1, prefix+"1")
	}
	return t
}

// Walk visits every tree node in pre-order.
func (t *Tree) Walk(visit func(*Tree)) {
	if t == nil {
		return
	}
	visit(t)
	t.Zero.Walk(visit)
	t.One.Walk(visit)
}

// Label is a function that annotates a node in renderings (e.g. with its
// DSG timestamp as in Fig 4). A nil Label prints nothing.
type Label func(n *Node, level int) string

// RenderLevels renders one line per level listing that level's linked lists
// in key order, the format used by cmd/dsgviz and the figure golden tests:
//
//	L0: A J M | G R W        (lists separated by " | ")
func (t *Tree) RenderLevels(name func(*Node) string, label Label) string {
	if name == nil {
		name = func(n *Node) string { return n.Key().String() }
	}
	byLevel := make(map[int][]*Tree)
	maxLevel := 0
	t.Walk(func(tt *Tree) {
		byLevel[tt.Level] = append(byLevel[tt.Level], tt)
		if tt.Level > maxLevel {
			maxLevel = tt.Level
		}
	})
	var sb strings.Builder
	for level := t.Level; level <= maxLevel; level++ {
		lists := byLevel[level]
		parts := make([]string, 0, len(lists))
		for _, l := range lists {
			names := make([]string, len(l.Nodes))
			for i, n := range l.Nodes {
				names[i] = name(n)
				if label != nil {
					if s := label(n, level); s != "" {
						names[i] += "(" + s + ")"
					}
				}
			}
			parts = append(parts, strings.Join(names, " "))
		}
		fmt.Fprintf(&sb, "L%d: %s\n", level, strings.Join(parts, " | "))
	}
	return sb.String()
}
