package skipgraph

// This file is the read side of copy-on-write snapshot publication
// (see publisher.go for the write side): a Replica is an immutable routing
// view of the graph at one published epoch. Replicas of consecutive epochs
// structurally share every node the intervening batch did not touch, so
// publication costs O(lists touched), not O(n) — the locality the paper
// proves for adjustment work now holds for snapshot work too.
//
// Race-safety audit (why a Replica is safe to share with any number of
// readers while the live graph keeps mutating under the adjuster):
//
//   - A Replica reaches nodes only through repNode values and the slot trie,
//     both frozen at publish time: the publisher path-copies every trie node
//     and repNode it rewrites, so the versions already handed out are never
//     written again.
//   - repNode.h points at the LIVE node, but readers touch only fields that
//     are immutable after construction: key, id, dummy. Liveness (dead) and
//     link state are copied into the repNode at publish, so a later crash or
//     splice on the live node cannot leak into an older epoch.
//   - The key accelerator is a sync.Map shared across epochs and updated by
//     the publisher; it is a hint, not a source of truth. Every hit is
//     verified against the replica's own trie (slot occupied AND the key
//     matches), and a miss or stale hit falls back to a key search over the
//     replica's frozen links — so lookups are correct at every epoch no
//     matter how far the accelerator has moved on.
//   - RouteResult.Path exposes live *Node handles (for key/id inspection);
//     callers must not call link accessors (Next/Prev/MaxLinkedLevel) on
//     them — those read live state owned by the adjuster.
//
// Replica.route mirrors Graph.Route decision for decision (same hop choices,
// same DeadRouteError and "routing stuck" failures, same LevelDrops), which
// is what keeps the golden-pinned experiment CSVs byte-identical across the
// deep-copy → structural-sharing switch. internal/skipgraph's oracle tests
// pin the equivalence against Graph.Clone.

import (
	"fmt"
	"sync"
)

// repNode is one node's frozen per-epoch state: the live handle (immutable
// identity fields only), the liveness flag and value record as of the
// epoch, and the level links encoded as slots into the replica's trie (-1 =
// no neighbour). Slices are trimmed at the node's highest linked level. The
// value slice is shared with the live node — safe because SetValue swaps
// slices per write instead of mutating bytes in place.
type repNode struct {
	h    *Node
	dead bool

	val    []byte
	ver    int64
	hasVal bool

	next []int32
	prev []int32
}

// maxLinkedLevel mirrors Node.MaxLinkedLevel: the highest linked level, 0
// when the node has no links at all.
func (rn *repNode) maxLinkedLevel() int {
	if len(rn.next) == 0 {
		return 0
	}
	return len(rn.next) - 1
}

func (rn *repNode) nextAt(l int) int32 {
	if l < 0 || l >= len(rn.next) {
		return -1
	}
	return rn.next[l]
}

func (rn *repNode) prevAt(l int) int32 {
	if l < 0 || l >= len(rn.prev) {
		return -1
	}
	return rn.prev[l]
}

// Replica is an immutable routing view of a Graph at one published epoch,
// produced by a Publisher. It supports exactly the read surface the serving
// layers need — RouteKeys, Height, RealKeysInRange — and shares all
// untouched state with neighbouring epochs.
type Replica struct {
	root  *trieNode
	depth int
	cap   int32 // slots addressable by this replica's trie
	head  int32 // slot of the minimum-key node; -1 when empty
	hgt   int
	n     int
	keys  *sync.Map
}

// N returns the number of nodes (dummies included) at the replica's epoch.
func (r *Replica) N() int { return r.n }

// Height returns the graph height at the replica's epoch, precomputed at
// publish so it is a pure field read (safe for concurrent use).
func (r *Replica) Height() int { return r.hgt }

// get resolves a slot to its frozen node state, nil when unoccupied or out
// of this epoch's range (a newer slot leaked in via the accelerator).
func (r *Replica) get(slot int32) *repNode {
	if slot < 0 || slot >= r.cap {
		return nil
	}
	nd := r.root
	for l := r.depth; l > 0; l-- {
		nd = nd.kids[(slot>>(uint(l)*repBits))&repMask]
		if nd == nil {
			return nil
		}
	}
	return nd.vals[slot&repMask]
}

// lookup finds the node with the given key at this epoch: accelerator hit
// verified against the trie, with a frozen-link key search as the fallback
// (correct regardless of how stale the shared accelerator is).
func (r *Replica) lookup(k Key) *repNode {
	if v, ok := r.keys.Load(k); ok {
		if rn := r.get(v.(int32)); rn != nil && rn.h.key == k {
			return rn
		}
	}
	return r.search(k)
}

// search walks the replica's frozen links from the head, exactly like a
// skip-graph key search: descend from the head's top level, moving right
// while the next key does not pass the target.
func (r *Replica) search(k Key) *repNode {
	cur := r.get(r.head)
	if cur == nil || k.Less(cur.h.key) {
		return nil
	}
	for level := cur.maxLinkedLevel(); level >= 0; level-- {
		for {
			ns := cur.nextAt(level)
			if ns < 0 {
				break
			}
			next := r.get(ns)
			if k.Less(next.h.key) {
				break
			}
			cur = next
		}
		if cur.h.key == k {
			return cur
		}
	}
	return nil
}

// RouteKeys routes between the nodes with the given keys, mirroring
// Graph.RouteKeys (including its ErrUnknownKey wrapping).
func (r *Replica) RouteKeys(src, dst Key) (RouteResult, error) {
	s := r.lookup(src)
	if s == nil {
		return RouteResult{}, fmt.Errorf("%w: source %v", ErrUnknownKey, src)
	}
	d := r.lookup(dst)
	if d == nil {
		return RouteResult{}, fmt.Errorf("%w: destination %v", ErrUnknownKey, dst)
	}
	return r.route(s, d)
}

// route is Graph.Route transliterated onto frozen per-epoch state: the same
// top-down walk, the same dead-contact detection, the same stuck failure.
// Any divergence here would shift the golden-pinned experiment outputs.
func (r *Replica) route(src, dst *repNode) (RouteResult, error) {
	if src.dead {
		return RouteResult{}, &DeadRouteError{Node: src.h}
	}
	if dst.dead {
		return RouteResult{}, &DeadRouteError{Node: dst.h}
	}
	res := RouteResult{Path: []*Node{src.h}}
	if src == dst {
		return res, nil
	}
	right := src.h.key.Less(dst.h.key)
	cur := src
	level := cur.maxLinkedLevel()
	for cur != dst {
		if right {
			if ns := cur.nextAt(level); ns >= 0 {
				next := r.get(ns)
				if !dst.h.key.Less(next.h.key) {
					if next.dead {
						return res, &DeadRouteError{Node: next.h}
					}
					cur = next
					res.Path = append(res.Path, cur.h)
					continue
				}
			}
		} else {
			if ps := cur.prevAt(level); ps >= 0 {
				next := r.get(ps)
				if !next.h.key.Less(dst.h.key) {
					if next.dead {
						return res, &DeadRouteError{Node: next.h}
					}
					cur = next
					res.Path = append(res.Path, cur.h)
					continue
				}
			}
		}
		if level == 0 {
			return res, fmt.Errorf("skipgraph: routing stuck at %v targeting %v", cur.h.key, dst.h.key)
		}
		level--
		res.LevelDrops++
	}
	return res, nil
}

// RealKeysInRange returns the primary keys of the real (non-dummy) nodes in
// [lo, hi) at the replica's epoch, ascending — the Graph.RealKeysInRange
// equivalent shard migration reads from a published snapshot while the
// donor's adjuster keeps working.
func (r *Replica) RealKeysInRange(lo, hi Key) []int64 {
	cur := r.get(r.head)
	if cur == nil {
		return nil
	}
	if cur.h.key.Less(lo) {
		// Descend to the last node with key < lo, then step right once.
		for level := cur.maxLinkedLevel(); level >= 0; level-- {
			for {
				ns := cur.nextAt(level)
				if ns < 0 {
					break
				}
				next := r.get(ns)
				if !next.h.key.Less(lo) {
					break
				}
				cur = next
			}
		}
		ns := cur.nextAt(0)
		if ns < 0 {
			return nil
		}
		cur = r.get(ns)
	}
	var keys []int64
	for cur != nil && cur.h.key.Less(hi) {
		if !cur.h.dummy {
			keys = append(keys, cur.h.key.Primary)
		}
		ns := cur.nextAt(0)
		if ns < 0 {
			break
		}
		cur = r.get(ns)
	}
	return keys
}
