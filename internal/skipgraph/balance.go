package skipgraph

import "fmt"

// BalanceViolation reports a run of more than `a` consecutive nodes of a
// level-d list that all moved to the same level-(d+1) sublist, violating the
// paper's a-balance property.
type BalanceViolation struct {
	Level  int // the level d of the list containing the run
	Start  Key // first node of the offending run
	RunLen int
	Bit    byte // the shared bit at level d+1
}

// String implements fmt.Stringer.
func (v BalanceViolation) String() string {
	return fmt.Sprintf("level %d: run of %d consecutive nodes with bit %d starting at %v",
		v.Level, v.RunLen, v.Bit, v.Start)
}

// BalanceViolations scans the whole graph and returns every a-balance
// violation: for every list at every level, no a+1 consecutive members may
// share the next level's membership bit.
func (g *Graph) BalanceViolations(a int) []BalanceViolation {
	if a < 1 {
		panic(fmt.Sprintf("skipgraph: balance parameter must be >= 1, got %d", a))
	}
	var out []BalanceViolation
	g.TreeView().Walk(func(t *Tree) {
		out = append(out, listRunViolations(t.Nodes, t.Level, a)...)
	})
	return out
}

// listRunViolations finds over-long same-bit runs inside one list.
func listRunViolations(list []*Node, level, a int) []BalanceViolation {
	var out []BalanceViolation
	if len(list) < 2 {
		return out
	}
	runStart := 0
	for i := 1; i <= len(list); i++ {
		boundary := i == len(list) ||
			!list[i].HasBit(level+1) || !list[runStart].HasBit(level+1) ||
			list[i].Bit(level+1) != list[runStart].Bit(level+1)
		if !boundary {
			continue
		}
		if runLen := i - runStart; runLen > a && list[runStart].HasBit(level+1) {
			out = append(out, BalanceViolation{
				Level:  level,
				Start:  list[runStart].Key(),
				RunLen: runLen,
				Bit:    list[runStart].Bit(level + 1),
			})
		}
		runStart = i
	}
	return out
}

// MaxSearchPath returns a·H, the a-balance guarantee on the search-path
// length between any pair of nodes.
func (g *Graph) MaxSearchPath(a int) int { return a * g.Height() }
