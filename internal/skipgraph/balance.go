package skipgraph

import "fmt"

// BalanceViolation reports a run of more than `a` consecutive nodes of a
// level-d list that all moved to the same level-(d+1) sublist, violating the
// paper's a-balance property.
type BalanceViolation struct {
	Level  int // the level d of the list containing the run
	Start  Key // first node of the offending run
	RunLen int
	Bit    byte // the shared bit at level d+1
}

// String implements fmt.Stringer.
func (v BalanceViolation) String() string {
	return fmt.Sprintf("level %d: run of %d consecutive nodes with bit %d starting at %v",
		v.Level, v.RunLen, v.Bit, v.Start)
}

// BalanceViolations scans the whole graph and returns every a-balance
// violation: for every list at every level, no a+1 consecutive members may
// share the next level's membership bit. The scan descends past members
// whose vector ends (dummies, §IV-F) — they stay singleton above and the
// remaining members keep splitting — unlike TreeView, whose truncation
// semantics serve figure reconstruction and would hide every list below a
// dummy.
func (g *Graph) BalanceViolations(a int) []BalanceViolation {
	if a < 1 {
		panic(fmt.Sprintf("skipgraph: balance parameter must be >= 1, got %d", a))
	}
	var out []BalanceViolation
	var walk func(list []*Node, level int)
	walk = func(list []*Node, level int) {
		out = append(out, listRunViolations(list, level, a)...)
		zeros := make([]*Node, 0, len(list))
		ones := make([]*Node, 0, len(list))
		for _, n := range list {
			if !n.HasBit(level + 1) {
				continue // singleton above this level
			}
			if n.Bit(level+1) == 0 {
				zeros = append(zeros, n)
			} else {
				ones = append(ones, n)
			}
		}
		if len(zeros) >= 2 {
			walk(zeros, level+1)
		}
		if len(ones) >= 2 {
			walk(ones, level+1)
		}
	}
	if len(g.nodes) >= 2 {
		walk(g.nodes, 0)
	}
	return out
}

// listRunViolations finds over-long same-bit runs inside one list. Runs
// consisting solely of dummy nodes are exempt: dummies never split further,
// so such a run costs nothing at the next level, and demanding a chain
// breaker for a run of chain breakers would cascade (every inserted dummy
// spawning runs that need more dummies) until the key space between two
// real nodes is exhausted. The global dummy-population bound keeps the
// routing-path inflation from dummy runs bounded instead.
func listRunViolations(list []*Node, level, a int) []BalanceViolation {
	var out []BalanceViolation
	if len(list) < 2 {
		return out
	}
	runStart := 0
	hasReal := false
	for i := 1; i <= len(list); i++ {
		boundary := i == len(list) ||
			!list[i].HasBit(level+1) || !list[runStart].HasBit(level+1) ||
			list[i].Bit(level+1) != list[runStart].Bit(level+1)
		if !boundary {
			continue
		}
		for j := runStart; j < i && !hasReal; j++ {
			hasReal = !list[j].dummy
		}
		if runLen := i - runStart; runLen > a && list[runStart].HasBit(level+1) && hasReal {
			out = append(out, BalanceViolation{
				Level:  level,
				Start:  list[runStart].Key(),
				RunLen: runLen,
				Bit:    list[runStart].Bit(level + 1),
			})
		}
		runStart = i
		hasReal = false
	}
	return out
}

// MaxSearchPath returns a·H, the a-balance guarantee on the search-path
// length between any pair of nodes.
func (g *Graph) MaxSearchPath(a int) int { return a * g.Height() }
