package skipgraph

import "fmt"

// BalanceViolation reports a run of more than `a` consecutive nodes of a
// level-d list that all moved to the same level-(d+1) sublist, violating the
// paper's a-balance property.
type BalanceViolation struct {
	Level  int // the level d of the list containing the run
	Start  Key // first node of the offending run
	RunLen int
	Bit    byte // the shared bit at level d+1
}

// String implements fmt.Stringer.
func (v BalanceViolation) String() string {
	return fmt.Sprintf("level %d: run of %d consecutive nodes with bit %d starting at %v",
		v.Level, v.RunLen, v.Bit, v.Start)
}

// BalanceViolations scans the whole graph and returns every a-balance
// violation: for every list at every level, no a+1 consecutive members may
// share the next level's membership bit. The scan descends past members
// whose vector ends (dummies, §IV-F) — they stay singleton above and the
// remaining members keep splitting — unlike TreeView, whose truncation
// semantics serve figure reconstruction and would hide every list below a
// dummy.
func (g *Graph) BalanceViolations(a int) []BalanceViolation {
	if a < 1 {
		panic(fmt.Sprintf("skipgraph: balance parameter must be >= 1, got %d", a))
	}
	var out []BalanceViolation
	var walk func(list []*Node, level int)
	walk = func(list []*Node, level int) {
		out = append(out, listRunViolations(list, level, a)...)
		zeros := make([]*Node, 0, len(list))
		ones := make([]*Node, 0, len(list))
		for _, n := range list {
			if !n.HasBit(level + 1) {
				continue // singleton above this level
			}
			if n.Bit(level+1) == 0 {
				zeros = append(zeros, n)
			} else {
				ones = append(ones, n)
			}
		}
		if len(zeros) >= 2 {
			walk(zeros, level+1)
		}
		if len(ones) >= 2 {
			walk(ones, level+1)
		}
	}
	if len(g.nodes) >= 2 {
		walk(g.nodes, 0)
	}
	return out
}

// BalanceViolationsIn is the scoped counterpart of BalanceViolations: it
// checks only the dirty regions named by refs, which must cover every list
// whose membership or next-level bits changed since the graph was last
// balanced (local joins, leaves, and repairs report exactly that set). A
// windowed ref scans the anchor's run neighbourhood — O(a) when the graph
// was balanced before the change — and a Whole ref scans its entire list.
// Stale refs (nodes no longer in the graph) are skipped. The second result
// is the number of nodes examined, the deterministic work measure
// experiment E16 reports.
func (g *Graph) BalanceViolationsIn(a int, refs []ListRef) ([]BalanceViolation, int) {
	if a < 1 {
		panic(fmt.Sprintf("skipgraph: balance parameter must be >= 1, got %d", a))
	}
	type regionID struct {
		anchor *Node
		level  int
		whole  bool
	}
	seen := make(map[regionID]bool, len(refs))
	scanned := 0
	var out []BalanceViolation
	for _, ref := range refs {
		x := ref.Node
		if x == nil || ref.Level < 0 || g.byKey[x.key] != x {
			continue
		}
		id := regionID{anchor: x, level: ref.Level, whole: ref.Whole}
		if seen[id] {
			continue
		}
		seen[id] = true
		window, n := g.dirtyWindow(ref)
		scanned += n
		out = append(out, listRunViolations(window, ref.Level, a)...)
	}
	return out, scanned
}

// Window materializes the dirty region a ref names (see ListRef): the
// anchor's run neighbourhood, or the whole list for a Whole ref. It returns
// nil for a stale ref. The second result is the number of nodes walked.
func (g *Graph) Window(ref ListRef) ([]*Node, int) {
	if ref.Node == nil || ref.Level < 0 || g.byKey[ref.Node.key] != ref.Node {
		return nil, 0
	}
	return g.dirtyWindow(ref)
}

// dirtyWindow materializes the list segment a ref marks dirty, in key
// order, plus the number of nodes walked. For a windowed ref that is the
// anchor's maximal same-bit run (w.r.t. the next level's bit; a node
// lacking the bit forms its own boundary run) extended by the complete
// adjacent run on each side — every run a mutation at the anchor's position
// can have changed, with both edge runs complete so run lengths measured
// inside the window are exact. For a Whole ref it is the full list.
func (g *Graph) dirtyWindow(ref ListRef) ([]*Node, int) {
	x, level := ref.Node, ref.Level
	scanned := 1
	if ref.Whole {
		head := x
		for head.Prev(level) != nil {
			head = head.Prev(level)
			scanned++
		}
		var window []*Node
		for y := head; y != nil; y = y.Next(level) {
			window = append(window, y)
			scanned++
		}
		return window, scanned
	}
	var before, after []*Node
	for cur, cross := x, 0; ; {
		p := cur.Prev(level)
		if p == nil {
			break
		}
		if runBoundary(p, cur, level+1) {
			cross++
			if cross > 1 {
				break
			}
		}
		before = append(before, p)
		cur = p
		scanned++
	}
	for cur, cross := x, 0; ; {
		nx := cur.Next(level)
		if nx == nil {
			break
		}
		if runBoundary(cur, nx, level+1) {
			cross++
			if cross > 1 {
				break
			}
		}
		after = append(after, nx)
		cur = nx
		scanned++
	}
	window := make([]*Node, 0, len(before)+1+len(after))
	for i := len(before) - 1; i >= 0; i-- {
		window = append(window, before[i])
	}
	window = append(window, x)
	window = append(window, after...)
	return window, scanned
}

// runBoundary reports whether adjacent list members y (left) and z (right)
// belong to different runs w.r.t. the level-`bitLevel` membership bit: a
// node lacking the bit never extends a run.
func runBoundary(y, z *Node, bitLevel int) bool {
	return !y.HasBit(bitLevel) || !z.HasBit(bitLevel) || y.Bit(bitLevel) != z.Bit(bitLevel)
}

// listRunViolations finds over-long same-bit runs inside one list. Runs
// consisting solely of dummy nodes are exempt: dummies never split further,
// so such a run costs nothing at the next level, and demanding a chain
// breaker for a run of chain breakers would cascade (every inserted dummy
// spawning runs that need more dummies) until the key space between two
// real nodes is exhausted. The global dummy-population bound keeps the
// routing-path inflation from dummy runs bounded instead.
func listRunViolations(list []*Node, level, a int) []BalanceViolation {
	var out []BalanceViolation
	if len(list) < 2 {
		return out
	}
	runStart := 0
	hasReal := false
	for i := 1; i <= len(list); i++ {
		boundary := i == len(list) ||
			!list[i].HasBit(level+1) || !list[runStart].HasBit(level+1) ||
			list[i].Bit(level+1) != list[runStart].Bit(level+1)
		if !boundary {
			continue
		}
		for j := runStart; j < i && !hasReal; j++ {
			hasReal = !list[j].dummy
		}
		if runLen := i - runStart; runLen > a && list[runStart].HasBit(level+1) && hasReal {
			out = append(out, BalanceViolation{
				Level:  level,
				Start:  list[runStart].Key(),
				RunLen: runLen,
				Bit:    list[runStart].Bit(level + 1),
			})
		}
		runStart = i
		hasReal = false
	}
	return out
}

// MaxSearchPath returns a·H, the a-balance guarantee on the search-path
// length between any pair of nodes.
func (g *Graph) MaxSearchPath(a int) int { return a * g.Height() }
