package skipgraph

import (
	"errors"
	"fmt"
)

// This file is the crash-failure model: a node can vanish without running the
// leave-side protocol. Crash marks the node dead but leaves every link and
// membership bit exactly as they were — its neighbours keep dangling
// references to an unresponsive peer, the way a real fleet loses a machine.
// Detection happens at route time: the first attempt to HOP onto a dead node
// fails with a DeadRouteError naming it, which is the failure detector the
// repair layers (internal/core, internal/serve) act on. Reading a dead
// neighbour's key costs nothing — neighbour tables cache keys — so a dead
// node that merely overshoots the destination is never "contacted" and never
// detected by that route, matching the Rainbow Skip Graph's contact-driven
// failure discovery.

// ErrDeadNode is the sentinel every DeadRouteError wraps; match it with
// errors.Is to tell "this route hit a crashed peer" — retryable after a
// repair — apart from structural routing failures, which are not.
var ErrDeadNode = errors.New("skipgraph: dead node")

// DeadRouteError reports that routing tried to contact a crashed node. Node
// is the dead peer (an endpoint, or the first dead hop on the path); extract
// it with errors.As to drive a targeted repair.
type DeadRouteError struct {
	Node *Node
}

// Error implements error.
func (e *DeadRouteError) Error() string {
	return fmt.Sprintf("skipgraph: dead node %v on route", e.Node.key)
}

// Unwrap makes errors.Is(err, ErrDeadNode) work.
func (e *DeadRouteError) Unwrap() error { return ErrDeadNode }

// Crash marks the node with the given key dead without touching any link or
// membership bit: the node stays in every list it occupied, unresponsive.
// It returns the node, or nil when the key is absent. Crashing a dummy is
// rejected (dummies are logical, not machines) and crashing a dead node is a
// no-op, so Crash is idempotent.
func (g *Graph) Crash(key Key) *Node {
	n := g.byKey[key]
	if n == nil {
		return nil
	}
	if n.dummy {
		panic(fmt.Sprintf("skipgraph: cannot crash dummy %v", key))
	}
	g.touch(n)
	n.dead = true
	return n
}

// DeadNodes returns the crashed nodes still present in the graph, key order.
func (g *Graph) DeadNodes() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.dead {
			out = append(out, n)
		}
	}
	return out
}
