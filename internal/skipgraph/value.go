package skipgraph

// This file is the value side of the KV data plane: every real node can
// carry one versioned value record, mutated only through the Graph so touch
// tracking (publisher.go) sees the write and the next publish re-freezes the
// node into the epoch's replica. Values are immutable per version — SetValue
// swaps slices, never rewrites bytes — which is what lets live node, clone,
// and any number of published replicas share the same backing array.

import "sort"

// Entry is one key's value record as read out of a graph or replica:
// scan results (HasValue always true there) and migration payloads
// (HasValue false for a key that exists but was never written).
type Entry struct {
	ID       int64
	Value    []byte
	Version  int64
	HasValue bool
}

// SetValue stores a value record on n with the given version. It is the one
// mutation choke point for values: the touch makes the next publish freeze
// the new record into the replica. The value slice is stored as-is and must
// not be mutated by the caller afterwards.
func (g *Graph) SetValue(n *Node, v []byte, ver int64) {
	g.touch(n)
	n.val, n.ver, n.hasVal = v, ver, true
}

// GetValue reads the value record of the node with key k from the live
// graph. ok is false when the key is absent, a dummy, crashed (crash-stop:
// the data is unreachable until repair), or holds no value.
func (g *Graph) GetValue(k Key) (val []byte, ver int64, ok bool) {
	n := g.byKey[k]
	if n == nil || n.dummy || n.dead || !n.hasVal {
		return nil, 0, false
	}
	return n.val, n.ver, true
}

// ScanFrom walks the level-0 run of the live graph from the first real key
// ≥ start, collecting up to limit value-bearing entries in ascending key
// order. Dummies, crashed nodes, and keys without values are skipped (they
// occupy the run but hold no readable data).
func (g *Graph) ScanFrom(start Key, limit int) []Entry {
	if limit <= 0 {
		return nil
	}
	i := sort.Search(len(g.nodes), func(i int) bool { return !g.nodes[i].key.Less(start) })
	if i >= len(g.nodes) {
		return nil
	}
	var out []Entry
	for n := g.nodes[i]; n != nil && len(out) < limit; n = n.Next(0) {
		if !n.dummy && !n.dead && n.hasVal {
			out = append(out, Entry{ID: n.key.Primary, Value: n.val, Version: n.ver, HasValue: true})
		}
	}
	return out
}

// RealEntriesInRange returns the full records — id, value, version — of the
// real nodes whose key lies in [lo, hi), ascending: RealKeysInRange plus the
// value payloads, which is what lets shard migration move values with their
// keys. Nodes without values appear with HasValue false (the key itself
// still migrates); dead nodes appear too, matching RealKeysInRange.
func (g *Graph) RealEntriesInRange(lo, hi Key) []Entry {
	start := sort.Search(len(g.nodes), func(i int) bool { return !g.nodes[i].key.Less(lo) })
	var out []Entry
	for _, n := range g.nodes[start:] {
		if !n.key.Less(hi) {
			break
		}
		if !n.dummy {
			out = append(out, Entry{ID: n.key.Primary, Value: n.val, Version: n.ver, HasValue: n.hasVal})
		}
	}
	return out
}

// GetValue reads the value record of the node with key k at the replica's
// epoch: lock-free, immutable, safe for any number of concurrent readers.
// ok is false when the key is absent at the epoch, a dummy, dead, or
// valueless.
func (r *Replica) GetValue(k Key) (val []byte, ver int64, ok bool) {
	rn := r.lookup(k)
	if rn == nil || rn.h.dummy || rn.dead || !rn.hasVal {
		return nil, 0, false
	}
	return rn.val, rn.ver, true
}

// ScanFrom walks the replica's frozen level-0 run from the first key ≥
// start, collecting up to limit value-bearing entries in ascending key
// order — the epoch-consistent range read of the KV data plane. Dummies,
// nodes dead at the epoch, and valueless keys are skipped.
func (r *Replica) ScanFrom(start Key, limit int) []Entry {
	if limit <= 0 {
		return nil
	}
	cur := r.seekCeil(start)
	var out []Entry
	for cur != nil && len(out) < limit {
		if !cur.h.dummy && !cur.dead && cur.hasVal {
			out = append(out, Entry{ID: cur.h.key.Primary, Value: cur.val, Version: cur.ver, HasValue: true})
		}
		ns := cur.nextAt(0)
		if ns < 0 {
			break
		}
		cur = r.get(ns)
	}
	return out
}

// seekCeil returns the frozen node with the smallest key ≥ lo, descending
// the replica's levels to the last node < lo and stepping right once (nil
// when every key is smaller).
func (r *Replica) seekCeil(lo Key) *repNode {
	cur := r.get(r.head)
	if cur == nil || !cur.h.key.Less(lo) {
		return cur
	}
	for level := cur.maxLinkedLevel(); level >= 0; level-- {
		for {
			ns := cur.nextAt(level)
			if ns < 0 {
				break
			}
			next := r.get(ns)
			if !next.h.key.Less(lo) {
				break
			}
			cur = next
		}
	}
	ns := cur.nextAt(0)
	if ns < 0 {
		return nil
	}
	return r.get(ns)
}

// RealEntriesInRange returns the full records of the real nodes in [lo, hi)
// at the replica's epoch, ascending — the value-carrying twin of
// RealKeysInRange, read by shard migration from a published snapshot while
// the donor's adjuster keeps working.
func (r *Replica) RealEntriesInRange(lo, hi Key) []Entry {
	cur := r.seekCeil(lo)
	var out []Entry
	for cur != nil && cur.h.key.Less(hi) {
		if !cur.h.dummy {
			out = append(out, Entry{ID: cur.h.key.Primary, Value: cur.val, Version: cur.ver, HasValue: cur.hasVal})
		}
		ns := cur.nextAt(0)
		if ns < 0 {
			break
		}
		cur = r.get(ns)
	}
	return out
}
