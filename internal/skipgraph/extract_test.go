package skipgraph

import (
	"errors"
	"reflect"
	"testing"
)

// TestRealKeysInRange: extraction respects the half-open bounds, skips
// dummies, and stays in ascending order.
func TestRealKeysInRange(t *testing.T) {
	g := NewRandom(16, 3)
	// Plant a dummy between 7 and 8, the way balance repair does.
	dm := NewDummy(Key{Primary: 7, Minor: 1}, 100)
	g.SpliceIn(dm)

	got := g.RealKeysInRange(KeyOf(5), KeyOf(12))
	want := []int64{5, 6, 7, 8, 9, 10, 11}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RealKeysInRange(5, 12) = %v, want %v", got, want)
	}
	if got := g.RealKeysInRange(KeyOf(16), KeyOf(99)); got != nil {
		t.Errorf("out-of-range extraction = %v, want nil", got)
	}
	if got := g.RealKeysInRange(KeyOf(0), KeyOf(1)); !reflect.DeepEqual(got, []int64{0}) {
		t.Errorf("single-key extraction = %v, want [0]", got)
	}

	min, max, ok := g.RealKeyBounds()
	if !ok || min != 0 || max != 15 {
		t.Errorf("RealKeyBounds = (%d, %d, %v), want (0, 15, true)", min, max, ok)
	}
}

// TestRouteKeysUnknownKeySentinel: a missing endpoint wraps ErrUnknownKey so
// the sharded router can distinguish "key migrated away" from structural
// failures.
func TestRouteKeysUnknownKeySentinel(t *testing.T) {
	g := NewRandom(8, 1)
	if _, err := g.RouteKeys(KeyOf(99), KeyOf(1)); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("unknown source: err = %v, want ErrUnknownKey", err)
	}
	if _, err := g.RouteKeys(KeyOf(1), KeyOf(99)); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("unknown destination: err = %v, want ErrUnknownKey", err)
	}
	if _, err := g.RouteKeys(KeyOf(1), KeyOf(2)); err != nil {
		t.Errorf("valid route errored: %v", err)
	}
}
