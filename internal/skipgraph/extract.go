package skipgraph

import "sort"

// This file is the range-extraction side of shard migration
// (internal/shard): a rebalancer moves a contiguous key range from one
// shard's graph to another via tracked leave/join batches, and needs the
// exact membership of that range as it exists in the live graph.

// RealKeysInRange returns the primary keys of the real (non-dummy) nodes
// whose key lies in [lo, hi), in ascending order. Dummies are excluded: they
// are balance artifacts of the graph they live in and are never migrated —
// the destination shard's own repair re-creates whatever padding its lists
// need (§IV-F).
func (g *Graph) RealKeysInRange(lo, hi Key) []int64 {
	start := sort.Search(len(g.nodes), func(i int) bool { return !g.nodes[i].key.Less(lo) })
	var keys []int64
	for _, n := range g.nodes[start:] {
		if !n.key.Less(hi) {
			break
		}
		if !n.dummy {
			keys = append(keys, n.key.Primary)
		}
	}
	return keys
}

// RealKeyBounds returns the smallest and largest real-node primary keys in
// the graph. ok is false when the graph holds no real nodes.
func (g *Graph) RealKeyBounds() (min, max int64, ok bool) {
	for _, n := range g.nodes {
		if !n.dummy {
			min = n.key.Primary
			ok = true
			break
		}
	}
	if !ok {
		return 0, 0, false
	}
	for i := len(g.nodes) - 1; i >= 0; i-- {
		if !g.nodes[i].dummy {
			max = g.nodes[i].key.Primary
			break
		}
	}
	return min, max, true
}
