package skipgraph

// This file is the write side of copy-on-write snapshot publication: a
// Publisher owns one Graph's dirty-tracking and turns each batch of
// mutations into the next epoch's Replica by path-copying only what the
// batch touched.
//
// Design notes:
//
//   - Indirection through stable integer slots is what makes structural
//     sharing possible at all: skip-graph lists are doubly linked, so
//     sharing *Node pointers directly would cascade a copy of one node into
//     a copy of the whole graph (an unchanged neighbour cannot point at two
//     versions of a changed node). repNodes therefore name their neighbours
//     by slot, and only the slot→repNode mapping (a persistent radix trie)
//     is path-copied per publish.
//
//   - Touch tracking instruments the Graph's mutation choke points directly
//     (every link rewrite flows through Relink/spliceIn/spliceOut/
//     spliceAtLevel, every liveness change through Crash) rather than
//     threading per-operation ListRefs up through internal/core — the
//     choke points are provably complete, while a reported dirty set would
//     have to be trusted. Each node records its pre-touch top linked level
//     at FIRST touch per batch, which is what keeps the published height
//     incremental (a histogram delta) instead of an O(n) rescan.
//
//   - The touch log is bounded. If a batch (or an abandoned engine's graph
//     that keeps mutating without ever publishing) touches more nodes than
//     trackCap, tracking flips to overflow and the next Publish falls back
//     to a full rebuild — the same code path that builds epoch 0. Clone
//     remains available as the independent deep-copy oracle for tests.
//
//   - Single-writer contract: all Publisher methods, like all Graph
//     mutators, must be called from the mutating thread (the serve
//     adjuster, or whoever owns the graph). Readers get their memory
//     ordering from the atomic snapshot pointer the caller publishes
//     through (release on Store, acquire on Load).

import "sync"

const (
	repBits = 5
	repFan  = 1 << repBits
	repMask = repFan - 1
)

// trieNode is one node of the persistent slot trie. gen stamps the publish
// generation that created it: nodes created by the current Publish are
// still private and may be mutated in place; older nodes are shared with
// published replicas and must be copied before modification.
type trieNode struct {
	gen  uint64
	kids [repFan]*trieNode
	vals [repFan]*repNode
}

// touchAdded marks the sentinel pre-state of a node spliced into the graph
// this batch: it has no previous published top level to decrement.
const touchAdded = -2

// startTracking (re)arms dirty tracking on the graph, clearing any previous
// publisher's log. Attaching a new Publisher to a graph that already had
// one simply orphans the old one — its published replicas stay valid, its
// future Publish calls fall back to full rebuilds.
func (g *Graph) startTracking() {
	g.track = make(map[*Node]int)
	g.trackOver = false
}

// trackCap bounds the touch log; beyond it tracking overflows and the next
// publish rebuilds from scratch instead of replaying a log that would cost
// as much as the rebuild anyway.
func (g *Graph) trackCap() int {
	c := 2 * len(g.nodes)
	if c < 1024 {
		c = 1024
	}
	return c
}

// touch records a node about to be mutated (links or liveness), capturing
// its pre-touch top linked level the first time it is seen in the batch.
// It must run BEFORE the mutation. Nil track (no publisher attached) makes
// this a single branch.
func (g *Graph) touch(n *Node) {
	if g.track == nil || g.trackOver {
		return
	}
	if _, ok := g.track[n]; ok {
		return
	}
	if len(g.track) >= g.trackCap() {
		g.trackOver = true
		return
	}
	g.track[n] = linkTop(n)
}

// touchAll records every node of a list subset about to be relinked.
func (g *Graph) touchAll(nodes []*Node) {
	if g.track == nil || g.trackOver {
		return
	}
	for _, n := range nodes {
		g.touch(n)
	}
}

// touchNew records a node being spliced into the graph for the first time
// this batch. A node removed and re-added within one batch keeps its
// original pre-touch record.
func (g *Graph) touchNew(n *Node) {
	if g.track == nil || g.trackOver {
		return
	}
	if _, ok := g.track[n]; ok {
		return
	}
	if len(g.track) >= g.trackCap() {
		g.trackOver = true
		return
	}
	g.track[n] = touchAdded
}

// linkTop returns the highest level at which n has a neighbour, -1 when it
// has none (unlike MaxLinkedLevel, which reports 0 for both "linked only at
// level 0" and "not linked at all" — the height histogram needs the
// difference).
func linkTop(n *Node) int {
	for i := len(n.next) - 1; i >= 0; i-- {
		if n.next[i] != nil || n.prev[i] != nil {
			return i
		}
	}
	return -1
}

// Publisher incrementally publishes immutable Replicas of one Graph. Create
// it with NewPublisher (which builds the epoch-0 replica) and call Publish
// after each batch of mutations, from the mutating thread.
type Publisher struct {
	g *Graph

	slots map[*Node]int32 // live node → slot
	free  []int32         // recycled slots
	next  int32           // first never-used slot
	root  *trieNode
	depth int
	cap   int32
	gen   uint64

	// counts[l] is the number of nodes whose top linked level is l; the
	// published height falls out as (top non-zero index)+1. Maintained as a
	// delta per publish from each touched node's pre/post top level.
	counts []int

	// keys accelerates key→slot resolution for every replica; entries are
	// added when a node first gets a slot and removed (conditionally, so a
	// same-batch re-add of the key is never clobbered) when it leaves.
	keys *sync.Map

	cur *Replica
}

// NewPublisher attaches dirty tracking to g and builds the epoch-0 replica
// (one O(n) pass — the only full-graph walk in a healthy publisher's life).
// Any previously attached publisher is orphaned; see startTracking.
func NewPublisher(g *Graph) *Publisher {
	p := &Publisher{g: g}
	g.startTracking()
	p.cur = p.rebuild()
	return p
}

// Current returns the most recently published replica.
func (p *Publisher) Current() *Replica { return p.cur }

// Publish freezes the mutations since the last publish into a new Replica,
// path-copying the touched nodes and structurally sharing everything else.
// Cost is O(touched · trie depth). A publish with nothing touched returns
// the current replica unchanged.
func (p *Publisher) Publish() *Replica {
	g := p.g
	if g.trackOver {
		g.startTracking()
		p.cur = p.rebuild()
		return p.cur
	}
	if len(g.track) == 0 {
		return p.cur
	}
	p.gen++
	type upd struct {
		n    *Node
		slot int32
	}
	// Pass 1: settle slot assignments (removals free, arrivals allocate) and
	// the height histogram, so pass 2 can resolve every neighbour to a slot.
	ups := make([]upd, 0, len(g.track))
	for n, pre := range g.track {
		if g.byKey[n.key] != n {
			// Removed this batch (or added and removed within it).
			slot, ok := p.slots[n]
			if !ok {
				continue
			}
			delete(p.slots, n)
			p.setSlot(slot, nil)
			p.keys.CompareAndDelete(n.key, slot)
			p.free = append(p.free, slot)
			if pre >= 0 {
				p.counts[pre]--
			}
			continue
		}
		slot, ok := p.slots[n]
		if !ok {
			slot = p.alloc()
			p.slots[n] = slot
			p.keys.Store(n.key, slot)
		}
		if pre >= 0 {
			p.counts[pre]--
		}
		if top := linkTop(n); top >= 0 {
			p.bump(top)
		}
		ups = append(ups, upd{n, slot})
	}
	for _, u := range ups {
		p.setSlot(u.slot, p.repOf(u.n))
	}
	clear(g.track)
	p.cur = p.makeReplica()
	return p.cur
}

// rebuild discards all incremental state and builds a replica from the full
// graph: the epoch-0 constructor and the overflow fallback.
func (p *Publisher) rebuild() *Replica {
	g := p.g
	p.gen++
	p.slots = make(map[*Node]int32, len(g.nodes))
	p.free = nil
	p.next = 0
	p.root = &trieNode{gen: p.gen}
	p.depth = 0
	p.cap = repFan
	p.counts = p.counts[:0]
	p.keys = &sync.Map{}
	for _, n := range g.nodes {
		slot := p.alloc()
		p.slots[n] = slot
		p.keys.Store(n.key, slot)
		if top := linkTop(n); top >= 0 {
			p.bump(top)
		}
	}
	for _, n := range g.nodes {
		p.setSlot(p.slots[n], p.repOf(n))
	}
	p.cur = p.makeReplica()
	return p.cur
}

func (p *Publisher) makeReplica() *Replica {
	head := int32(-1)
	if len(p.g.nodes) > 0 {
		head = p.slots[p.g.nodes[0]]
	}
	return &Replica{
		root:  p.root,
		depth: p.depth,
		cap:   p.cap,
		head:  head,
		hgt:   p.height(),
		n:     len(p.g.nodes),
		keys:  p.keys,
	}
}

func (p *Publisher) height() int {
	for l := len(p.counts) - 1; l >= 0; l-- {
		if p.counts[l] > 0 {
			return l + 1
		}
	}
	return 0
}

func (p *Publisher) bump(l int) {
	for len(p.counts) <= l {
		p.counts = append(p.counts, 0)
	}
	p.counts[l]++
}

// alloc hands out a slot, recycling freed ones first and growing the trie
// by one level whenever the slot space fills.
func (p *Publisher) alloc() int32 {
	if k := len(p.free); k > 0 {
		s := p.free[k-1]
		p.free = p.free[:k-1]
		return s
	}
	s := p.next
	p.next++
	for s >= p.cap {
		root := &trieNode{gen: p.gen}
		root.kids[0] = p.root
		p.root = root
		p.depth++
		p.cap *= repFan
	}
	return s
}

// setSlot writes a slot with path-copying: every trie node on the slot's
// path that predates this publish generation is cloned first, so versions
// reachable from published replicas stay frozen.
func (p *Publisher) setSlot(slot int32, v *repNode) {
	p.root = p.fresh(p.root)
	nd := p.root
	for l := p.depth; l > 0; l-- {
		idx := (slot >> (uint(l) * repBits)) & repMask
		child := nd.kids[idx]
		if child == nil {
			child = &trieNode{gen: p.gen}
		} else {
			child = p.fresh(child)
		}
		nd.kids[idx] = child
		nd = child
	}
	nd.vals[slot&repMask] = v
}

// fresh returns nd if it was created by the current publish, else a private
// copy stamped with the current generation.
func (p *Publisher) fresh(nd *trieNode) *trieNode {
	if nd.gen == p.gen {
		return nd
	}
	c := *nd
	c.gen = p.gen
	return &c
}

// repOf freezes a node's current link and liveness state. Every linked
// neighbour must already hold a slot — guaranteed because linking to a node
// touches it, so a neighbour is either untouched (slot from an earlier
// epoch) or settled in pass 1 of this publish.
func (p *Publisher) repOf(n *Node) *repNode {
	rn := &repNode{h: n, dead: n.dead, val: n.val, ver: n.ver, hasVal: n.hasVal}
	top := linkTop(n)
	if top >= 0 {
		buf := make([]int32, 2*(top+1))
		rn.next = buf[:top+1]
		rn.prev = buf[top+1:]
		for l := 0; l <= top; l++ {
			rn.next[l] = p.slotRef(n.next[l])
			rn.prev[l] = p.slotRef(n.prev[l])
		}
	}
	return rn
}

func (p *Publisher) slotRef(n *Node) int32 {
	if n == nil {
		return -1
	}
	s, ok := p.slots[n]
	if !ok {
		panic("skipgraph: publisher met a linked node without a slot (mutation bypassed touch tracking)")
	}
	return s
}
