package skipgraph

import (
	"errors"
	"fmt"
)

// ErrUnknownKey is wrapped by RouteKeys when an endpoint key is not in the
// graph. The sharded service matches it (errors.Is) to tell "this key moved
// to another shard mid-route" — retryable against a fresh directory — apart
// from structural routing failures, which are not.
var ErrUnknownKey = errors.New("skipgraph: unknown key")

// RouteResult describes one standard skip-graph routing (paper Appendix B).
type RouteResult struct {
	// Path holds the distinct nodes visited, source first and destination
	// last. Level drops do not add entries.
	Path []*Node
	// LevelDrops counts how many times routing dropped a level.
	LevelDrops int
}

// Distance returns the paper's d_S(σ): the number of intermediate nodes on
// the communication path (excluding source and destination).
func (r RouteResult) Distance() int {
	if len(r.Path) < 2 {
		return 0
	}
	return len(r.Path) - 2
}

// Hops returns the number of link traversals (d_S(σ) + 1 for distinct
// endpoints).
func (r RouteResult) Hops() int {
	if len(r.Path) < 1 {
		return 0
	}
	return len(r.Path) - 1
}

// Route performs the standard skip-graph routing from src to dst: starting
// at the source's top level, move toward the destination while the next
// node does not overshoot, otherwise drop one level (Appendix B).
//
// Crashed nodes fail the route at first contact: a dead endpoint, or a hop
// onto a dead intermediate, returns a DeadRouteError naming the peer (the
// failure detector). Key comparisons against a dead neighbour are free —
// neighbour tables cache keys — so only an actual hop detects.
func (g *Graph) Route(src, dst *Node) (RouteResult, error) {
	if src == nil || dst == nil {
		return RouteResult{}, fmt.Errorf("skipgraph: route endpoints must be non-nil")
	}
	if src.dead {
		return RouteResult{}, &DeadRouteError{Node: src}
	}
	if dst.dead {
		return RouteResult{}, &DeadRouteError{Node: dst}
	}
	res := RouteResult{Path: []*Node{src}}
	if src == dst {
		return res, nil
	}
	right := src.key.Less(dst.key)
	cur := src
	level := cur.MaxLinkedLevel()
	for cur != dst {
		var next *Node
		if right {
			next = cur.Next(level)
			if next != nil && !dst.key.Less(next.key) {
				if next.dead {
					return res, &DeadRouteError{Node: next}
				}
				cur = next
				res.Path = append(res.Path, cur)
				// Routing may ascend back to the new node's top level; the
				// classic description keeps the level, which we follow.
				continue
			}
		} else {
			next = cur.Prev(level)
			if next != nil && !next.key.Less(dst.key) {
				if next.dead {
					return res, &DeadRouteError{Node: next}
				}
				cur = next
				res.Path = append(res.Path, cur)
				continue
			}
		}
		if level == 0 {
			return res, fmt.Errorf("skipgraph: routing stuck at %v targeting %v", cur.key, dst.key)
		}
		level--
		res.LevelDrops++
	}
	return res, nil
}

// RouteKeys routes between the nodes with the given keys.
func (g *Graph) RouteKeys(src, dst Key) (RouteResult, error) {
	s, d := g.byKey[src], g.byKey[dst]
	if s == nil {
		return RouteResult{}, fmt.Errorf("%w: source %v", ErrUnknownKey, src)
	}
	if d == nil {
		return RouteResult{}, fmt.Errorf("%w: destination %v", ErrUnknownKey, dst)
	}
	return g.Route(s, d)
}

// DirectlyLinked reports whether u and v share a linked list of size exactly
// two at some level, and returns the lowest such level. This is the paper's
// post-transformation guarantee for a communicating pair.
func (g *Graph) DirectlyLinked(u, v *Node) (bool, int) {
	for level := 1; level <= u.MaxLinkedLevel(); level++ {
		uPrev, uNext := u.Prev(level), u.Next(level)
		if (uNext == v && uPrev == nil && v.Next(level) == nil) ||
			(uPrev == v && uNext == nil && v.Prev(level) == nil) {
			return true, level
		}
	}
	return false, 0
}
