package skipgraph

// This file is the deep-copy snapshot: a Graph can be cloned into a fully
// independent twin that shares no memory with the original.
//
// The concurrent serving engine (internal/serve) no longer publishes clones —
// it publishes structurally shared Replicas built by a Publisher, which cost
// O(lists touched) per epoch instead of O(n); see replica.go for the read
// side and its race-safety audit, publisher.go for the write side. Clone
// stays for two jobs:
//
//   - Oracle: replica_test.go pins Replica routing, height, and range
//     extraction against a clone of the same graph state, so the two
//     snapshot mechanisms check each other.
//   - Fallback idiom: code that wants a frozen copy without attaching a
//     Publisher (one-shot analysis, experiments) can still take one.
//
// The original audit for sharing a clone across goroutines still holds: all
// route-path accessors (Route/RouteKeys, ByKey, DirectlyLinked, ListAt) are
// read-only, and Clone precomputes the height cache so Height() on a clone is
// a pure field read. A clone carries no dirty tracking (its track field is
// nil) regardless of whether the source graph had a Publisher attached.

// Clone returns a deep copy of the graph: fresh Node values with copied keys,
// identifiers, dummy flags, and membership vectors, re-linked level by level
// to mirror the original. The clone shares no memory with the receiver, so
// concurrent readers of the clone are unaffected by later mutations of the
// original (and vice versa). The height cache is precomputed, making every
// read-only accessor — including Height — safe for concurrent use on the
// clone as long as nobody mutates it.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:  make([]*Node, len(g.nodes)),
		byKey:  make(map[Key]*Node, len(g.nodes)),
		height: g.Height(), // precompute: keeps Height() read-only on the clone
	}
	twin := make(map[*Node]*Node, len(g.nodes))
	for i, n := range g.nodes {
		m := &Node{
			key:    n.key,
			id:     n.id,
			dummy:  n.dummy,
			dead:   n.dead,
			val:    append([]byte(nil), n.val...),
			ver:    n.ver,
			hasVal: n.hasVal,
			bits:   append([]byte(nil), n.bits...),
			next:   make([]*Node, len(n.next)),
			prev:   make([]*Node, len(n.prev)),
		}
		c.nodes[i] = m
		c.byKey[m.key] = m
		twin[n] = m
	}
	for i, n := range g.nodes {
		m := c.nodes[i]
		for l, x := range n.next {
			if x != nil {
				m.next[l] = twin[x]
			}
		}
		for l, x := range n.prev {
			if x != nil {
				m.prev[l] = twin[x]
			}
		}
	}
	return c
}
