package skipgraph

// This file is the snapshot side of the concurrent serving engine
// (internal/serve): a Graph can be deep-copied into an immutable routing
// replica that many goroutines read in parallel while the original keeps
// mutating under the single adjuster.
//
// Race-safety audit of the route path (why a frozen clone is safe to share):
//
//   - Route/RouteKeys only read Node.key, Node.next/prev (via Next/Prev) and
//     Node.MaxLinkedLevel; none of them write any field.
//   - ByKey reads the byKey map; no reader mutates it.
//   - DirectlyLinked and ListAt are equally read-only.
//   - The ONE mutating accessor a reader could reach is Height(), which
//     lazily fills the g.height cache. Clone therefore precomputes the
//     height so Height() on a clone is a pure field read.
//
// Anything else on Graph (Insert/Remove/Relink/SpliceIn/...) mutates and must
// stay confined to the adjuster's live graph. The serve engine never hands a
// clone to mutating code; internal/serve's stress test runs this contract
// under the race detector.

// Clone returns a deep copy of the graph: fresh Node values with copied keys,
// identifiers, dummy flags, and membership vectors, re-linked level by level
// to mirror the original. The clone shares no memory with the receiver, so
// concurrent readers of the clone are unaffected by later mutations of the
// original (and vice versa). The height cache is precomputed, making every
// read-only accessor — including Height — safe for concurrent use on the
// clone as long as nobody mutates it.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:  make([]*Node, len(g.nodes)),
		byKey:  make(map[Key]*Node, len(g.nodes)),
		height: g.Height(), // precompute: keeps Height() read-only on the clone
	}
	twin := make(map[*Node]*Node, len(g.nodes))
	for i, n := range g.nodes {
		m := &Node{
			key:   n.key,
			id:    n.id,
			dummy: n.dummy,
			dead:  n.dead,
			bits:  append([]byte(nil), n.bits...),
			next:  make([]*Node, len(n.next)),
			prev:  make([]*Node, len(n.prev)),
		}
		c.nodes[i] = m
		c.byKey[m.key] = m
		twin[n] = m
	}
	for i, n := range g.nodes {
		m := c.nodes[i]
		for l, x := range n.next {
			if x != nil {
				m.next[l] = twin[x]
			}
		}
		for l, x := range n.prev {
			if x != nil {
				m.prev[l] = twin[x]
			}
		}
	}
	return c
}
