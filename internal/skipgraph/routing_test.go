package skipgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRouteAllPairs(t *testing.T) {
	g := NewRandom(48, 9)
	nodes := g.Nodes()
	for _, src := range nodes {
		for _, dst := range nodes {
			r, err := g.Route(src, dst)
			if err != nil {
				t.Fatalf("route %v→%v: %v", src.Key(), dst.Key(), err)
			}
			if r.Path[0] != src || r.Path[len(r.Path)-1] != dst {
				t.Fatalf("route %v→%v: path endpoints wrong", src.Key(), dst.Key())
			}
			// The path is monotone in key order (greedy routing never
			// overshoots).
			right := src.Key().Less(dst.Key())
			for i := 1; i < len(r.Path); i++ {
				prev, cur := r.Path[i-1].Key(), r.Path[i].Key()
				if right && !prev.Less(cur) {
					t.Fatalf("route %v→%v: not rightward at %v", src.Key(), dst.Key(), cur)
				}
				if !right && src != dst && !cur.Less(prev) {
					t.Fatalf("route %v→%v: not leftward at %v", src.Key(), dst.Key(), cur)
				}
			}
		}
	}
}

func TestRouteSelf(t *testing.T) {
	g := NewRandom(4, 2)
	n := g.Nodes()[1]
	r, err := g.Route(n, n)
	if err != nil {
		t.Fatal(err)
	}
	if r.Distance() != 0 || r.Hops() != 0 {
		t.Fatalf("self route: distance %d, hops %d", r.Distance(), r.Hops())
	}
}

func TestRouteDistanceBound(t *testing.T) {
	// Routing in a skip graph of height H takes at most ~2H moves per
	// level in expectation; assert the loose structural bound that hops
	// never exceed n and rarely exceed 4·H for random graphs.
	for _, n := range []int{32, 128, 512} {
		g := NewRandom(n, int64(3*n))
		h := g.Height()
		rng := rand.New(rand.NewSource(int64(n)))
		exceeded := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			r, err := g.RouteKeys(KeyOf(int64(a)), KeyOf(int64(b)))
			if err != nil {
				t.Fatal(err)
			}
			if r.Hops() > 4*h {
				exceeded++
			}
		}
		if exceeded > trials/10 {
			t.Errorf("n=%d: %d/%d routes exceeded 4·H hops", n, exceeded, trials)
		}
	}
}

func TestRouteErrors(t *testing.T) {
	g := NewRandom(4, 2)
	if _, err := g.RouteKeys(KeyOf(0), KeyOf(99)); err == nil {
		t.Error("routing to unknown key should fail")
	}
	if _, err := g.RouteKeys(KeyOf(99), KeyOf(0)); err == nil {
		t.Error("routing from unknown key should fail")
	}
	if _, err := g.Route(nil, g.Head()); err == nil {
		t.Error("nil source should fail")
	}
}

func TestDirectlyLinked(t *testing.T) {
	// Construct a graph where nodes 0 and 1 share a size-2 list at level 1.
	g := NewFromVectors([]VectorEntry{
		{Key: 0, ID: 0, Vector: "00"},
		{Key: 1, ID: 1, Vector: "01"},
		{Key: 2, ID: 2, Vector: "10"},
		{Key: 3, ID: 3, Vector: "11"},
	})
	a, b := g.ByKey(KeyOf(0)), g.ByKey(KeyOf(1))
	ok, lvl := g.DirectlyLinked(a, b)
	if !ok || lvl != 1 {
		t.Fatalf("DirectlyLinked(0,1) = (%v, %d), want (true, 1)", ok, lvl)
	}
	c := g.ByKey(KeyOf(2))
	if ok, _ := g.DirectlyLinked(a, c); ok {
		t.Fatal("nodes 0 and 2 reported directly linked")
	}
}

// TestRoutePropertyQuick: routing always succeeds and terminates at the
// destination for random graphs and random pairs.
func TestRoutePropertyQuick(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		n := 40
		g := NewRandom(n, seed)
		src := int64(a) % int64(n)
		dst := int64(b) % int64(n)
		r, err := g.RouteKeys(KeyOf(src), KeyOf(dst))
		if err != nil {
			return false
		}
		return r.Path[len(r.Path)-1].Key() == KeyOf(dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceViolationsDetection(t *testing.T) {
	// Vector assignment with a long same-bit run at level 0.
	entries := make([]VectorEntry, 8)
	for i := range entries {
		v := "0"
		if i >= 6 {
			v = "1"
		}
		entries[i] = VectorEntry{Key: int64(i), ID: int64(i), Vector: v}
	}
	g := NewFromVectors(entries)
	viol := g.BalanceViolations(4)
	if len(viol) == 0 {
		t.Fatal("expected a violation for a run of 6 zeros with a=4")
	}
	if viol[0].RunLen != 6 || viol[0].Level != 0 {
		t.Errorf("violation = %+v, want run 6 at level 0", viol[0])
	}
	if v := g.BalanceViolations(6); len(v) != 0 {
		t.Errorf("a=6 should tolerate a run of 6, got %v", v)
	}
}

// TestFigure1 reconstructs the paper's Fig 1: a skip graph with 6 nodes and
// 3 levels, where node M has membership vector "01" (0-sublist at level 1,
// 1-sublist at level 2) and the 10-subgraph contains G and W.
func TestFigure1(t *testing.T) {
	// Keys by alphabet position: A=1, G=7, J=10, M=13, R=18, W=23.
	g := NewFromVectors([]VectorEntry{
		{Key: 1, ID: 1, Vector: "00"},   // A
		{Key: 7, ID: 7, Vector: "10"},   // G
		{Key: 10, ID: 10, Vector: "00"}, // J
		{Key: 13, ID: 13, Vector: "01"}, // M
		{Key: 18, ID: 18, Vector: "11"}, // R
		{Key: 23, ID: 23, Vector: "10"}, // W
	})
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	m := g.ByKey(KeyOf(13))
	if got := m.MembershipVector(); got != "01" {
		t.Fatalf("m(M) = %q, want 01", got)
	}
	// Level 1: 0-sublist {A, J, M}, 1-sublist {G, R, W}.
	l1 := g.ListAt(m, 1)
	if len(l1) != 3 || l1[0].ID() != 1 || l1[1].ID() != 10 || l1[2].ID() != 13 {
		t.Fatalf("level-1 0-sublist = %v, want [A J M]", l1)
	}
	// The 10-subgraph (level-2 list with prefix "10") holds G and W.
	gNode := g.ByKey(KeyOf(7))
	l2 := g.ListAt(gNode, 2)
	if len(l2) != 2 || l2[0].ID() != 7 || l2[1].ID() != 23 {
		t.Fatalf("10-subgraph = %v, want [G W]", l2)
	}
	// Tree view renders three levels.
	out := g.TreeView().RenderLevels(nil, nil)
	want := "L0: 1 7 10 13 18 23\nL1: 1 10 13 | 7 18 23\nL2: 1 10 | 13 | 7 23 | 18\n"
	if out != want {
		t.Fatalf("tree view:\n%s\nwant:\n%s", out, want)
	}
}
