package skipgraph

import (
	"fmt"
	"strings"
)

// Node is a skip-graph peer. The membership vector is stored as bits[1..]:
// bits[i] selects the 0- or 1-sublist the node joins when its level-(i-1)
// list splits into level-i lists (the paper's "ith bit of m(x)"). bits[0] is
// unused (level 0 holds every node). next[i]/prev[i] are the level-i linked
// list neighbours; they are nil beyond the node's singleton level.
type Node struct {
	key   Key
	id    int64 // non-negative identifier; doubles as the initial group-id
	dummy bool
	dead  bool // crashed: present in every list but unresponsive

	// Versioned value record (the KV data plane). val is immutable once
	// stored: Graph.SetValue swaps in a fresh slice per write, never mutates
	// one in place, so a published replica can share the slice safely. All
	// writes go through Graph.SetValue so touch tracking sees them.
	val    []byte
	ver    int64
	hasVal bool

	bits []byte
	next []*Node
	prev []*Node
}

// NewNode creates a detached node with the given key and identifier and an
// empty membership vector.
func NewNode(key Key, id int64) *Node {
	if id < 0 {
		panic(fmt.Sprintf("skipgraph: node id must be non-negative, got %d", id))
	}
	return &Node{key: key, id: id, bits: []byte{0}}
}

// NewDummy creates a dummy (logical, §IV-F) node: it carries no data, only
// routes, and destroys itself on the next transformation notification.
func NewDummy(key Key, id int64) *Node {
	n := NewNode(key, id)
	n.dummy = true
	return n
}

// Key returns the node's key.
func (n *Node) Key() Key { return n.key }

// ID returns the node's non-negative identifier.
func (n *Node) ID() int64 { return n.id }

// IsDummy reports whether the node is a dummy placed for a-balance repair.
func (n *Node) IsDummy() bool { return n.dummy }

// Dead reports whether the node has crashed (Graph.Crash). A dead node still
// occupies every list it was in — its neighbours' references dangle at an
// unresponsive peer until a detection-triggered repair splices it out.
func (n *Node) Dead() bool { return n.dead }

// Value returns the node's value record: the stored bytes, the version
// assigned at the write, and whether a value is present at all. The returned
// slice is the stored one — treat it as immutable.
func (n *Node) Value() ([]byte, int64, bool) { return n.val, n.ver, n.hasVal }

// Bit returns the membership-vector bit deciding the node's level-i list
// (i ≥ 1). It panics if the bit has not been assigned.
func (n *Node) Bit(i int) byte {
	if i < 1 || i >= len(n.bits) {
		panic(fmt.Sprintf("skipgraph: node %v has no membership bit for level %d", n.key, i))
	}
	return n.bits[i]
}

// HasBit reports whether the membership bit for level i is assigned.
func (n *Node) HasBit(i int) bool { return i >= 1 && i < len(n.bits) }

// SetBit assigns the membership bit for level i, extending the vector. Bits
// must be assigned contiguously from level 1 upward.
func (n *Node) SetBit(i int, b byte) {
	if b != 0 && b != 1 {
		panic(fmt.Sprintf("skipgraph: bit must be 0 or 1, got %d", b))
	}
	switch {
	case i < 1:
		panic(fmt.Sprintf("skipgraph: invalid bit level %d", i))
	case i < len(n.bits):
		n.bits[i] = b
	case i == len(n.bits):
		n.bits = append(n.bits, b)
	default:
		panic(fmt.Sprintf("skipgraph: non-contiguous bit assignment at level %d (have %d)", i, len(n.bits)-1))
	}
}

// TruncateBits discards membership bits for levels > keep. Used when a
// transformation reassigns the membership vector above a level.
func (n *Node) TruncateBits(keep int) {
	if keep < 0 {
		keep = 0
	}
	if keep+1 < len(n.bits) {
		n.bits = n.bits[:keep+1]
	}
}

// BitsLen returns the highest level with an assigned membership bit.
func (n *Node) BitsLen() int { return len(n.bits) - 1 }

// MembershipVector renders the assigned bits, lowest level first (the
// paper's m(x), e.g. "01" for node M in Fig 1).
func (n *Node) MembershipVector() string {
	var sb strings.Builder
	for i := 1; i < len(n.bits); i++ {
		sb.WriteByte('0' + n.bits[i])
	}
	return sb.String()
}

// Next returns the level-i right neighbour, or nil.
func (n *Node) Next(i int) *Node {
	if i < 0 || i >= len(n.next) {
		return nil
	}
	return n.next[i]
}

// Prev returns the level-i left neighbour, or nil.
func (n *Node) Prev(i int) *Node {
	if i < 0 || i >= len(n.prev) {
		return nil
	}
	return n.prev[i]
}

// MaxLinkedLevel returns the highest level at which the node has a neighbour.
func (n *Node) MaxLinkedLevel() int {
	for i := len(n.next) - 1; i >= 0; i-- {
		if n.next[i] != nil || n.prev[i] != nil {
			return i
		}
	}
	return 0
}

// setLink sets the level-i neighbours, growing the link slices as needed.
func (n *Node) setLink(i int, prev, next *Node) {
	for len(n.next) <= i {
		n.next = append(n.next, nil)
		n.prev = append(n.prev, nil)
	}
	n.prev[i] = prev
	n.next[i] = next
}

// clearLinksAbove removes all links at levels > keep.
func (n *Node) clearLinksAbove(keep int) {
	for i := keep + 1; i < len(n.next); i++ {
		n.next[i] = nil
		n.prev[i] = nil
	}
	if keep+1 < len(n.next) {
		n.next = n.next[:keep+1]
		n.prev = n.prev[:keep+1]
	}
}

// String renders the node for debugging.
func (n *Node) String() string {
	tag := ""
	if n.dummy {
		tag = "~"
	}
	if n.dead {
		tag += "!"
	}
	return fmt.Sprintf("%s%v[%s]", tag, n.key, n.MembershipVector())
}

// CommonPrefixLen returns the paper's α for two nodes: the highest level at
// which both nodes belong to the same linked list, i.e. the length of the
// longest common prefix of their membership vectors (capped by assigned
// bits).
func CommonPrefixLen(u, v *Node) int {
	d := 0
	for i := 1; u.HasBit(i) && v.HasBit(i); i++ {
		if u.bits[i] != v.bits[i] {
			break
		}
		d = i
	}
	return d
}
