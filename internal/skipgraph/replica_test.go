package skipgraph

import (
	"fmt"
	"strings"
	"testing"
)

// The replica oracle tests: after every published epoch, Replica routing,
// height, and range extraction must agree exactly with a deep Clone of the
// same graph state — the two snapshot mechanisms check each other. Old
// replica/clone pairs are re-checked after further churn to pin structural
// sharing's immutability.

// routeSig flattens one routing outcome into a comparable string: the visited
// keys, the level drops, and the exact error text (nil-safe).
func routeSig(res RouteResult, err error) string {
	var b strings.Builder
	for _, n := range res.Path {
		fmt.Fprintf(&b, "%v,", n.Key())
	}
	fmt.Fprintf(&b, "|drops=%d", res.LevelDrops)
	if err != nil {
		fmt.Fprintf(&b, "|err=%v", err)
	}
	return b.String()
}

// checkAgainstClone compares the replica with a clone of the same state over
// every src/dst pair of the given keys (present or not), plus height, size,
// and a few extraction ranges.
func checkAgainstClone(t *testing.T, tag string, rep *Replica, cl *Graph, keys []Key) {
	t.Helper()
	if rep.N() != cl.N() {
		t.Fatalf("%s: replica N=%d, clone N=%d", tag, rep.N(), cl.N())
	}
	if rep.Height() != cl.Height() {
		t.Fatalf("%s: replica height=%d, clone height=%d", tag, rep.Height(), cl.Height())
	}
	for _, s := range keys {
		for _, d := range keys {
			rr, rerr := rep.RouteKeys(s, d)
			cr, cerr := cl.RouteKeys(s, d)
			if got, want := routeSig(rr, rerr), routeSig(cr, cerr); got != want {
				t.Fatalf("%s: route %v->%v diverged:\nreplica: %s\nclone:   %s", tag, s, d, got, want)
			}
		}
	}
	ranges := [][2]Key{
		{KeyOf(-1), KeyOf(1 << 20)},
		{KeyOf(10), KeyOf(40)},
		{KeyOf(1000), KeyOf(1010)},
		{KeyOf(5), KeyOf(5)},
	}
	for _, r := range ranges {
		got := rep.RealKeysInRange(r[0], r[1])
		want := cl.RealKeysInRange(r[0], r[1])
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: RealKeysInRange(%v,%v): replica %v, clone %v", tag, r[0], r[1], got, want)
		}
	}
}

// TestReplicaMatchesCloneUnderChurn drives rounds of joins, leaves, and
// crashes through a published graph, checking replica-vs-clone equivalence at
// every epoch AND re-checking earlier epochs after later churn (immutability
// through structural sharing).
func TestReplicaMatchesCloneUnderChurn(t *testing.T) {
	g := NewRandom(64, 1)
	p := NewPublisher(g)
	br := RandomBrancher(2)

	allKeys := func() []Key {
		ks := []Key{KeyOf(-7)} // always include one absent key for ErrUnknownKey parity
		for _, n := range g.Nodes() {
			ks = append(ks, n.Key())
		}
		return ks
	}

	type epoch struct {
		tag  string
		rep  *Replica
		cl   *Graph
		keys []Key
	}
	var saved []epoch
	check := func(tag string) {
		keys := allKeys()
		rep := p.Publish()
		cl := g.Clone()
		checkAgainstClone(t, tag, rep, cl, keys)
		saved = append(saved, epoch{tag, rep, cl, keys})
	}

	check("epoch0")

	nextKey := int64(1000)
	for round := 0; round < 6; round++ {
		// Joins.
		for i := 0; i < 4; i++ {
			g.InsertTracked(KeyOf(nextKey), nextKey, br)
			nextKey++
		}
		// Leaves: drop a few of the original keys.
		for i := 0; i < 2; i++ {
			k := KeyOf(int64(round*9 + i*3))
			if n, _ := g.RemoveTracked(k); n == nil {
				t.Fatalf("round %d: remove %v missed", round, k)
			}
		}
		// Crashes: kill one node per round, live links untouched.
		g.Crash(KeyOf(int64(60 - round)))
		check(fmt.Sprintf("round%d", round))
	}

	// Every earlier epoch must still agree with ITS clone — later publishes
	// share structure with it but must never have written through it.
	for _, e := range saved {
		checkAgainstClone(t, e.tag+"/replay", e.rep, e.cl, e.keys)
	}
}

// TestReplicaOverflowRebuild forces the touch-log overflow path and checks
// the rebuilt replica is equivalent (the fallback is the epoch-0 code path).
func TestReplicaOverflowRebuild(t *testing.T) {
	g := NewRandom(48, 3)
	p := NewPublisher(g)
	br := RandomBrancher(4)
	g.InsertTracked(KeyOf(500), 500, br)
	g.Crash(KeyOf(10))
	g.trackOver = true // simulate a batch larger than trackCap
	rep := p.Publish()
	checkAgainstClone(t, "overflow", rep, g.Clone(), []Key{
		KeyOf(0), KeyOf(10), KeyOf(23), KeyOf(47), KeyOf(500), KeyOf(-7),
	})
	// Tracking must be re-armed: a further incremental publish works.
	g.InsertTracked(KeyOf(501), 501, br)
	rep2 := p.Publish()
	checkAgainstClone(t, "post-overflow", rep2, g.Clone(), []Key{
		KeyOf(0), KeyOf(47), KeyOf(500), KeyOf(501),
	})
}

// TestPublishNoChangesReusesReplica pins the barrier-publish optimization: a
// publish with nothing touched returns the current replica unchanged.
func TestPublishNoChangesReusesReplica(t *testing.T) {
	g := NewRandom(16, 5)
	p := NewPublisher(g)
	r0 := p.Current()
	if r1 := p.Publish(); r1 != r0 {
		t.Fatalf("publish with no mutations built a new replica")
	}
	g.InsertTracked(KeyOf(100), 100, RandomBrancher(6))
	if r2 := p.Publish(); r2 == r0 {
		t.Fatalf("publish after a mutation returned the stale replica")
	}
}

// TestPublisherReattach pins that attaching a fresh Publisher to a graph that
// already had one orphans the old one safely: the old publisher's replicas
// stay valid and the new one tracks from scratch.
func TestPublisherReattach(t *testing.T) {
	g := NewRandom(32, 7)
	br := RandomBrancher(8)
	p1 := NewPublisher(g)
	g.InsertTracked(KeyOf(200), 200, br)
	old := p1.Publish()
	oldClone := g.Clone()

	p2 := NewPublisher(g) // orphans p1
	g.InsertTracked(KeyOf(201), 201, br)
	g.RemoveTracked(KeyOf(3))
	rep := p2.Publish()
	checkAgainstClone(t, "p2", rep, g.Clone(), []Key{
		KeyOf(0), KeyOf(3), KeyOf(31), KeyOf(200), KeyOf(201), KeyOf(-7),
	})
	// p1's published replica still matches the state it froze.
	checkAgainstClone(t, "orphaned", old, oldClone, []Key{
		KeyOf(0), KeyOf(3), KeyOf(31), KeyOf(200), KeyOf(-7),
	})
}

// TestReplicaSameBatchRemoveReadd pins the accelerator edge case: removing a
// key and re-adding the SAME key in one batch must leave the new node
// routable and the old node gone at the new epoch.
func TestReplicaSameBatchRemoveReadd(t *testing.T) {
	g := NewRandom(24, 9)
	p := NewPublisher(g)
	br := RandomBrancher(10)
	if n, _ := g.RemoveTracked(KeyOf(11)); n == nil {
		t.Fatal("remove missed")
	}
	g.InsertTracked(KeyOf(11), 1111, br)
	rep := p.Publish()
	checkAgainstClone(t, "readd", rep, g.Clone(), []Key{
		KeyOf(0), KeyOf(11), KeyOf(23),
	})
	// And the reverse order: add a fresh key then remove it in one batch.
	g.InsertTracked(KeyOf(300), 300, br)
	if n, _ := g.RemoveTracked(KeyOf(300)); n == nil {
		t.Fatal("remove of fresh key missed")
	}
	rep2 := p.Publish()
	if _, err := rep2.RouteKeys(KeyOf(0), KeyOf(300)); err == nil {
		t.Fatal("key added and removed in one batch still routable")
	}
	checkAgainstClone(t, "add-remove", rep2, g.Clone(), []Key{
		KeyOf(0), KeyOf(11), KeyOf(300),
	})
}

// TestReplicaGrowsTrie pushes past one trie level (repFan slots) so the
// root-growth path and deep path-copying are exercised.
func TestReplicaGrowsTrie(t *testing.T) {
	g := NewRandom(8, 11)
	p := NewPublisher(g)
	br := RandomBrancher(12)
	for i := int64(0); i < 3*repFan; i++ {
		g.InsertTracked(KeyOf(1000+i), 1000+i, br)
		if i%17 == 0 {
			p.Publish()
		}
	}
	rep := p.Publish()
	keys := []Key{KeyOf(0), KeyOf(7), KeyOf(1000), KeyOf(1000 + 3*repFan - 1), KeyOf(-7)}
	checkAgainstClone(t, "grown", rep, g.Clone(), keys)
}
