package skipgraph

import (
	"math/rand"
	"testing"
)

// TestCloneIsDeepAndEquivalent checks that a clone verifies, mirrors the
// original structurally, and shares no nodes with it.
func TestCloneIsDeepAndEquivalent(t *testing.T) {
	g := NewRandom(64, 7)
	c := g.Clone()

	if err := c.Verify(); err != nil {
		t.Fatalf("clone does not verify: %v", err)
	}
	if c.N() != g.N() || c.Height() != g.Height() {
		t.Fatalf("clone shape (n=%d h=%d) differs from original (n=%d h=%d)",
			c.N(), c.Height(), g.N(), g.Height())
	}
	orig := g.Nodes()
	copies := c.Nodes()
	for i, n := range orig {
		m := copies[i]
		if n == m {
			t.Fatalf("clone shares node %v with the original", n.Key())
		}
		if n.Key() != m.Key() || n.ID() != m.ID() || n.IsDummy() != m.IsDummy() ||
			n.MembershipVector() != m.MembershipVector() {
			t.Fatalf("clone node %d mismatch: %v vs %v", i, m, n)
		}
		for l := 0; l <= n.MaxLinkedLevel(); l++ {
			wantNext, wantPrev := keyOrNil(n.Next(l)), keyOrNil(n.Prev(l))
			gotNext, gotPrev := keyOrNil(m.Next(l)), keyOrNil(m.Prev(l))
			if wantNext != gotNext || wantPrev != gotPrev {
				t.Fatalf("clone node %v level %d links (%s,%s), want (%s,%s)",
					m.Key(), l, gotPrev, gotNext, wantPrev, wantNext)
			}
		}
	}
}

// TestCloneIsolation mutates the original after cloning and checks the clone
// still routes identically to a second pristine clone.
func TestCloneIsolation(t *testing.T) {
	g := NewRandom(48, 3)
	snap := g.Clone()
	ref := g.Clone()

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 8; i++ {
		g.Insert(KeyOf(int64(48+i)), int64(48+i), RandomBrancher(int64(i)))
	}
	for i := 0; i < 8; i++ {
		g.Remove(KeyOf(int64(rng.Intn(48))))
	}

	for i := 0; i < 200; i++ {
		u, v := int64(rng.Intn(48)), int64(rng.Intn(48))
		if u == v {
			continue
		}
		a, errA := snap.RouteKeys(KeyOf(u), KeyOf(v))
		b, errB := ref.RouteKeys(KeyOf(u), KeyOf(v))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("route %d→%d: errors diverge (%v vs %v)", u, v, errA, errB)
		}
		if errA == nil && a.Distance() != b.Distance() {
			t.Fatalf("route %d→%d: snapshot distance %d, pristine clone %d",
				u, v, a.Distance(), b.Distance())
		}
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("snapshot corrupted by mutations of the original: %v", err)
	}
}

func keyOrNil(n *Node) string {
	if n == nil {
		return "<nil>"
	}
	return n.Key().String()
}
