package skipgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRandomVerify(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33, 100, 257} {
		g := NewRandom(n, int64(n))
		if g.N() != n {
			t.Fatalf("n=%d: N() = %d", n, g.N())
		}
		if err := g.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestHeightLogarithmic(t *testing.T) {
	// Random membership vectors give height O(log n) w.h.p.; allow a
	// generous 4x factor.
	for _, n := range []int{16, 64, 256, 1024} {
		g := NewRandom(n, 7)
		h := g.Height()
		logN := 0
		for v := 1; v < n; v <<= 1 {
			logN++
		}
		if h > 4*logN {
			t.Errorf("n=%d: height %d > 4·log n = %d", n, h, 4*logN)
		}
		if h < logN {
			t.Errorf("n=%d: height %d < log n = %d (cannot distinguish %d nodes)", n, h, logN, n)
		}
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := NewRandom(1, 1)
	if h := g.Height(); h != 0 {
		t.Errorf("single node height = %d, want 0", h)
	}
	n := g.Head()
	if n.Next(0) != nil || n.Prev(0) != nil {
		t.Errorf("single node has level-0 neighbours")
	}
}

func TestListAtLevels(t *testing.T) {
	g := NewRandom(32, 3)
	for _, n := range g.Nodes() {
		base := g.ListAt(n, 0)
		if len(base) != 32 {
			t.Fatalf("base list has %d nodes", len(base))
		}
		for lvl := 1; lvl <= n.MaxLinkedLevel(); lvl++ {
			list := g.ListAt(n, lvl)
			for _, m := range list {
				if !samePrefix(n, m, lvl) {
					t.Fatalf("level-%d list of %v contains %v with different prefix", lvl, n, m)
				}
			}
			// Lists shrink (weakly) going up.
			upper := g.ListAt(n, lvl)
			lower := g.ListAt(n, lvl-1)
			if len(upper) > len(lower) {
				t.Fatalf("level %d list larger than level %d", lvl, lvl-1)
			}
		}
	}
}

func TestSingletonLevel(t *testing.T) {
	g := NewRandom(64, 11)
	for _, n := range g.Nodes() {
		s := g.SingletonLevel(n)
		if got := len(g.ListAt(n, s)); got != 1 {
			t.Fatalf("node %v: list at singleton level %d has %d members", n, s, got)
		}
		if s > 0 {
			if got := len(g.ListAt(n, s-1)); got < 2 {
				t.Fatalf("node %v: list below singleton level has %d members", n, got)
			}
		}
	}
}

func TestInsertRemove(t *testing.T) {
	g := NewRandom(8, 5)
	br := RandomBrancher(99)
	// Insert keys in the middle and at the ends.
	for _, k := range []int64{100, 101, 50} {
		g.Insert(KeyOf(k), k, br)
		if err := g.Verify(); err != nil {
			t.Fatalf("after insert %d: %v", k, err)
		}
	}
	if g.N() != 11 {
		t.Fatalf("N = %d, want 11", g.N())
	}
	r, err := g.RouteKeys(KeyOf(0), KeyOf(101))
	if err != nil {
		t.Fatalf("route to inserted node: %v", err)
	}
	if r.Path[len(r.Path)-1].Key() != KeyOf(101) {
		t.Fatalf("route ended at %v", r.Path[len(r.Path)-1])
	}
	for _, k := range []int64{100, 50, 0} {
		if n := g.Remove(KeyOf(k)); n == nil {
			t.Fatalf("Remove(%d) returned nil", k)
		}
		if err := g.Verify(); err != nil {
			t.Fatalf("after remove %d: %v", k, err)
		}
	}
	if g.Remove(KeyOf(12345)) != nil {
		t.Fatal("Remove of absent key returned a node")
	}
	if g.N() != 8 {
		t.Fatalf("N = %d, want 8", g.N())
	}
}

func TestSpliceInDummy(t *testing.T) {
	g := NewRandom(16, 21)
	// Dummy between keys 3 and 4 sharing node 3's first bit.
	n3 := g.ByKey(KeyOf(3))
	dm := NewDummy(Key{Primary: 3, Minor: 1}, 1000)
	dm.SetBit(1, n3.Bit(1))
	g.SpliceIn(dm)
	if err := g.Verify(); err != nil {
		t.Fatalf("after SpliceIn: %v", err)
	}
	if g.N() != 17 {
		t.Fatalf("N = %d, want 17", g.N())
	}
	// The dummy is routable through.
	if _, err := g.RouteKeys(KeyOf(0), KeyOf(15)); err != nil {
		t.Fatalf("routing across dummy: %v", err)
	}
	g.Remove(dm.Key())
	if err := g.Verify(); err != nil {
		t.Fatalf("after removing dummy: %v", err)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	entries := []VectorEntry{
		{Key: 1, ID: 1, Vector: "000"},
		{Key: 2, ID: 2, Vector: "001"},
		{Key: 3, ID: 3, Vector: "01"},
		{Key: 4, ID: 4, Vector: "1"},
	}
	g := NewFromVectors(entries)
	tests := []struct {
		a, b int64
		want int
	}{
		{1, 2, 2}, {1, 3, 1}, {1, 4, 0}, {3, 4, 0}, {2, 3, 1},
	}
	for _, tc := range tests {
		got := CommonPrefixLen(g.ByKey(KeyOf(tc.a)), g.ByKey(KeyOf(tc.b)))
		if got != tc.want {
			t.Errorf("CommonPrefixLen(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestKeyOrdering(t *testing.T) {
	ks := []Key{
		{Primary: 1, Minor: 0},
		{Primary: 1, Minor: 1},
		{Primary: 1, Minor: 2},
		{Primary: 2, Minor: 0},
	}
	for i := 0; i+1 < len(ks); i++ {
		if !ks[i].Less(ks[i+1]) {
			t.Errorf("%v should be < %v", ks[i], ks[i+1])
		}
		if ks[i+1].Less(ks[i]) {
			t.Errorf("%v should not be < %v", ks[i+1], ks[i])
		}
		if ks[i].Compare(ks[i+1]) != -1 || ks[i+1].Compare(ks[i]) != 1 {
			t.Errorf("Compare inconsistent for %v, %v", ks[i], ks[i+1])
		}
	}
	if KeyOf(5).Compare(KeyOf(5)) != 0 {
		t.Error("equal keys should compare 0")
	}
	if got := (Key{Primary: 3, Minor: 2}).String(); got != "3+2" {
		t.Errorf("dummy key renders %q", got)
	}
}

// TestVerifyPropertyQuick builds random graphs from random seeds and
// verifies all structural invariants hold (property-based).
func TestVerifyPropertyQuick(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%200) + 2
		g := NewRandom(n, seed)
		return g.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMembershipVectorRoundTrip checks SetBit/Bit/MembershipVector and
// truncation behaviour.
func TestMembershipVectorRoundTrip(t *testing.T) {
	n := NewNode(KeyOf(1), 1)
	bits := []byte{0, 1, 1, 0}
	for i, b := range bits {
		n.SetBit(i+1, b)
	}
	if got := n.MembershipVector(); got != "0110" {
		t.Fatalf("vector = %q", got)
	}
	if n.BitsLen() != 4 {
		t.Fatalf("BitsLen = %d", n.BitsLen())
	}
	n.TruncateBits(2)
	if got := n.MembershipVector(); got != "01" {
		t.Fatalf("after truncate: %q", got)
	}
	if n.HasBit(3) {
		t.Fatal("bit 3 survived truncation")
	}
	n.SetBit(3, 1) // reassign contiguously
	if got := n.MembershipVector(); got != "011" {
		t.Fatalf("after reassign: %q", got)
	}
}

func TestSetBitPanics(t *testing.T) {
	n := NewNode(KeyOf(1), 1)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"non-contiguous", func() { n.SetBit(3, 0) }},
		{"bad value", func() { n.SetBit(1, 2) }},
		{"level zero", func() { n.SetBit(0, 0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestRelinkSubsetAfterVectorChange(t *testing.T) {
	// Reassign the vectors of one level-1 sublist and relink only that
	// subset; the rest of the graph must stay intact.
	g := NewRandom(40, 17)
	n0 := g.Nodes()[0]
	sub := g.ListAt(n0, 1)
	if len(sub) < 4 {
		t.Skip("sublist too small for this seed")
	}
	for _, m := range sub {
		m.TruncateBits(1)
	}
	rng := rand.New(rand.NewSource(5))
	g.Relink(sub, 1, func(*Node, int) byte { return byte(rng.Intn(2)) })
	if err := g.Verify(); err != nil {
		t.Fatalf("after subset relink: %v", err)
	}
}
