package skipgraph

import (
	"math/rand"
	"testing"
)

// recomputeHeight drops the cache and recomputes from the links — the
// oracle for the dirty() invalidation tests.
func recomputeHeight(g *Graph) int {
	g.height = -1
	return g.Height()
}

// TestLocalJoinFuzz drives a long random Insert/Remove sequence and checks
// the full structural invariant set after every operation: the local join
// must leave exactly the same class of graphs the global relink did —
// Verify-clean, with every real node's vector distinct from its direct
// neighbours' — without ever relinking the whole graph.
func TestLocalJoinFuzz(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		g := NewRandom(8, seed)
		br := RandomBrancher(seed + 100)
		live := []int64{0, 1, 2, 3, 4, 5, 6, 7}
		next := int64(8)
		for op := 0; op < 400; op++ {
			if rng.Intn(2) == 0 || len(live) <= 2 {
				g.Insert(KeyOf(next), next, br)
				live = append(live, next)
				next++
			} else {
				i := rng.Intn(len(live))
				if g.Remove(KeyOf(live[i])) == nil {
					t.Fatalf("seed %d op %d: Remove(%d) returned nil", seed, op, live[i])
				}
				live = append(live[:i], live[i+1:]...)
			}
			if err := g.Verify(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
			if g.N() != len(live) {
				t.Fatalf("seed %d op %d: N = %d, want %d", seed, op, g.N(), len(live))
			}
			for n := range g.All() {
				top := n.BitsLen()
				for _, nb := range []*Node{n.Prev(top), n.Next(top)} {
					if nb != nil && !nb.IsDummy() {
						t.Fatalf("seed %d op %d: nodes %d and %d adjacent at %d's top level %d",
							seed, op, n.ID(), nb.ID(), n.ID(), top)
					}
				}
			}
			if got, want := g.Height(), recomputeHeight(g); got != want {
				t.Fatalf("seed %d op %d: cached height %d, recomputed %d", seed, op, got, want)
			}
		}
	}
}

// TestInsertTrackedEffect checks the join's dirty-set contract: the effect
// covers every level the new node occupies, anchors only live nodes, and
// extended peers really did grow their vectors.
func TestInsertTrackedEffect(t *testing.T) {
	g := NewRandom(32, 3)
	br := RandomBrancher(17)
	before := make(map[*Node]int)
	for n := range g.All() {
		before[n] = n.BitsLen()
	}
	n, eff := g.InsertTracked(KeyOf(100), 100, br)
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	covered := make(map[int]bool)
	for _, ref := range eff.Touched {
		if ref.Node == nil || g.ByKey(ref.Node.Key()) != ref.Node {
			t.Fatalf("touched ref anchors a dead node: %+v", ref)
		}
		if ref.Node == n {
			covered[ref.Level] = true
		}
	}
	for l := 0; l <= n.MaxLinkedLevel(); l++ {
		if !covered[l] {
			t.Errorf("no touched ref for the new node at level %d", l)
		}
	}
	for _, x := range eff.Extended {
		if x.BitsLen() <= before[x] {
			t.Errorf("peer %d reported extended but vector stayed at %d bits", x.ID(), x.BitsLen())
		}
	}
	if eff.Work < n.MaxLinkedLevel() {
		t.Errorf("work %d below the node's own %d splice levels", eff.Work, n.MaxLinkedLevel())
	}
}

// TestRemoveTrackedRefs checks the leave's dirty-set contract: one ref per
// occupied level, each anchored at a node that survives the removal.
func TestRemoveTrackedRefs(t *testing.T) {
	g := NewRandom(32, 9)
	victim := g.ByKey(KeyOf(13))
	levels := victim.MaxLinkedLevel()
	removed, refs := g.RemoveTracked(KeyOf(13))
	if removed != victim {
		t.Fatalf("RemoveTracked returned %v", removed)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(refs) != levels+1 {
		t.Fatalf("%d refs for %d occupied levels", len(refs), levels+1)
	}
	seen := make(map[int]bool)
	for _, ref := range refs {
		if g.ByKey(ref.Node.Key()) != ref.Node {
			t.Fatalf("ref at level %d anchors a dead node", ref.Level)
		}
		seen[ref.Level] = true
	}
	for l := 0; l <= levels; l++ {
		if !seen[l] {
			t.Errorf("no ref for level %d", l)
		}
	}
}

// TestHeightInvalidation exercises every mutator the centralized dirty()
// helper guards: Insert, Remove, SpliceIn, and Relink must each leave the
// cached height equal to a from-scratch recomputation.
func TestHeightInvalidation(t *testing.T) {
	g := NewRandom(16, 11)
	br := RandomBrancher(23)
	check := func(step string) {
		t.Helper()
		got := g.Height() // reads (and caches) via the dirty flag
		if want := recomputeHeight(g); got != want {
			t.Fatalf("%s: cached height %d, recomputed %d", step, got, want)
		}
	}
	check("initial")
	g.Insert(KeyOf(100), 100, br)
	check("after Insert")
	g.Remove(KeyOf(100))
	check("after Remove")
	n5 := g.ByKey(KeyOf(5))
	dm := NewDummy(Key{Primary: 5, Minor: 1}, 1000)
	dm.SetBit(1, n5.Bit(1))
	g.SpliceIn(dm)
	check("after SpliceIn")
	g.Remove(dm.Key())
	check("after dummy Remove")
	g.Relink(g.Nodes(), 0, br)
	check("after Relink")
	// An interleaved sequence, reading Height between every mutation so a
	// stale cache cannot hide behind a later invalidation.
	for i := int64(0); i < 20; i++ {
		g.Insert(KeyOf(200+i), 200+i, br)
		check("sequence insert")
		if i%3 == 0 {
			g.Remove(KeyOf(200 + i))
			check("sequence remove")
		}
	}
}

// TestBalanceViolationsInWindow checks the scoped scan against the global
// one: seeding the dirty set with a windowed ref for every node of every
// level must surface every violation the whole-graph walk finds.
func TestBalanceViolationsInWindow(t *testing.T) {
	// NewRandom's independent vectors carry no balance guarantee, so
	// violations exist with high probability at this size.
	g := NewRandom(256, 2)
	const a = 2
	global := g.BalanceViolations(a)
	if len(global) == 0 {
		t.Skip("seed produced a balanced graph; pick another seed")
	}
	key := func(v BalanceViolation) [4]int64 {
		return [4]int64{int64(v.Level), v.Start.Primary, int64(v.Start.Minor), int64(v.Bit)}
	}
	want := make(map[[4]int64]bool, len(global))
	for _, v := range global {
		want[key(v)] = true
	}
	var refs []ListRef
	for n := range g.All() {
		for l := 0; l <= n.MaxLinkedLevel(); l++ {
			refs = append(refs, ListRef{Node: n, Level: l})
		}
	}
	scoped, scanned := g.BalanceViolationsIn(a, refs)
	if scanned == 0 {
		t.Fatal("scoped scan reported zero work")
	}
	got := make(map[[4]int64]bool, len(scoped))
	for _, v := range scoped {
		got[key(v)] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("global violation %v missed by the scoped scan", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("scoped scan invented violation %v", k)
		}
	}
}
