package skipgraph

import (
	"fmt"
	"iter"
	"math/rand"
	"sort"
)

// Brancher chooses the membership bit for a node whose level-(i-1) list is
// splitting and whose bit for level i is not yet assigned. The static
// (non-adjusting) skip graph uses a random brancher; DSG assigns every bit
// explicitly and uses no brancher.
type Brancher func(n *Node, level int) byte

// RandomBrancher returns a Brancher drawing independent fair bits from seed.
func RandomBrancher(seed int64) Brancher {
	rng := rand.New(rand.NewSource(seed))
	return func(*Node, int) byte { return byte(rng.Intn(2)) }
}

// Graph is a skip graph: a base doubly linked list of nodes in key order,
// recursively split into per-level linked lists by membership-vector bits.
type Graph struct {
	nodes  []*Node // key order
	byKey  map[Key]*Node
	height int // cached; -1 when dirty

	// Dirty tracking for copy-on-write snapshot publication (publisher.go).
	// With a Publisher attached, track maps every node whose links or
	// liveness changed since the last publish to its pre-touch top linked
	// level (touchAdded for nodes spliced in this batch); nil track means no
	// publisher and zero overhead. trackOver flags a batch too large to log —
	// the next publish falls back to a full rebuild.
	track     map[*Node]int
	trackOver bool
}

// NewRandom builds a skip graph over n real nodes with keys and identifiers
// 0..n-1 and independently random membership vectors (the classic Aspnes-
// Shah construction, used as the static baseline topology).
func NewRandom(n int, seed int64) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("skipgraph: need at least one node, got %d", n))
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(KeyOf(int64(i)), int64(i))
	}
	return NewFromNodes(nodes, RandomBrancher(seed))
}

// NewFromNodes builds a graph from pre-created nodes (sorted internally by
// key). Missing membership bits are drawn from brancher; if brancher is nil,
// every node must already carry enough bits to become singleton.
func NewFromNodes(nodes []*Node, brancher Brancher) *Graph {
	g := &Graph{byKey: make(map[Key]*Node, len(nodes)), height: -1}
	g.nodes = append(g.nodes, nodes...)
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i].key.Less(g.nodes[j].key) })
	for i := 1; i < len(g.nodes); i++ {
		if !g.nodes[i-1].key.Less(g.nodes[i].key) {
			panic(fmt.Sprintf("skipgraph: duplicate key %v", g.nodes[i].key))
		}
	}
	for _, n := range g.nodes {
		g.byKey[n.key] = n
	}
	g.Relink(g.nodes, 0, brancher)
	return g
}

// VectorEntry describes one node for NewFromVectors.
type VectorEntry struct {
	Key    int64
	ID     int64
	Vector string // membership bits, level 1 first, e.g. "01"
}

// NewFromVectors builds a graph with explicit membership vectors, used to
// reconstruct the paper's figures exactly. Vectors may be partial; lists
// that still hold ≥ 2 nodes after all bits are consumed stay unsplit, which
// matches the truncated figures (e.g. Fig 1 shows only 3 levels).
func NewFromVectors(entries []VectorEntry) *Graph {
	nodes := make([]*Node, len(entries))
	for i, e := range entries {
		n := NewNode(KeyOf(e.Key), e.ID)
		for j, c := range e.Vector {
			switch c {
			case '0':
				n.SetBit(j+1, 0)
			case '1':
				n.SetBit(j+1, 1)
			default:
				panic(fmt.Sprintf("skipgraph: bad vector %q", e.Vector))
			}
		}
		nodes[i] = n
	}
	g := &Graph{byKey: make(map[Key]*Node, len(nodes)), height: -1}
	g.nodes = append(g.nodes, nodes...)
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i].key.Less(g.nodes[j].key) })
	for _, n := range g.nodes {
		g.byKey[n.key] = n
	}
	g.relinkPartial(g.nodes, 0)
	return g
}

// N returns the number of nodes, including dummies.
func (g *Graph) N() int { return len(g.nodes) }

// RealN returns the number of non-dummy nodes.
func (g *Graph) RealN() int {
	c := 0
	for _, n := range g.nodes {
		if !n.dummy {
			c++
		}
	}
	return c
}

// Nodes returns the nodes in key order. The returned slice is a copy.
func (g *Graph) Nodes() []*Node {
	return append([]*Node(nil), g.nodes...)
}

// All returns an in-order iterator over the nodes (dummies included)
// without copying the backing slice. The graph must not be mutated while
// iterating; callers that mutate should collect into a slice first (or use
// Nodes).
func (g *Graph) All() iter.Seq[*Node] {
	return func(yield func(*Node) bool) {
		for _, n := range g.nodes {
			if !yield(n) {
				return
			}
		}
	}
}

// dirty invalidates the cached height. Every mutator — anything that adds
// or removes a node, rewrites links, or extends a membership vector — must
// call it before touching the structure.
func (g *Graph) dirty() { g.height = -1 }

// ByKey returns the node with the given key, or nil.
func (g *Graph) ByKey(k Key) *Node { return g.byKey[k] }

// Head returns the first node of the base list.
func (g *Graph) Head() *Node {
	if len(g.nodes) == 0 {
		return nil
	}
	return g.nodes[0]
}

// Relink rebuilds all linked lists for the given key-ordered node subset
// from the given level upward, assigning missing membership bits via
// brancher (nil brancher panics on a missing bit). The subset must be the
// complete membership of one level-`level` list.
func (g *Graph) Relink(nodes []*Node, level int, brancher Brancher) {
	g.dirty()
	g.touchAll(nodes)
	g.relink(nodes, level, brancher)
}

func (g *Graph) relink(nodes []*Node, level int, brancher Brancher) {
	linkChain(nodes, level)
	if len(nodes) < 2 {
		if len(nodes) == 1 {
			nodes[0].clearLinksAbove(level)
		}
		return
	}
	zeros := make([]*Node, 0, len(nodes))
	ones := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if !n.HasBit(level + 1) {
			if n.dummy || brancher == nil {
				// A vector may legitimately end here: dummies never
				// participate in transformations (§IV-F), and a real node
				// stops splitting once every other member of its list is a
				// dummy. Such nodes stay singleton above this level.
				n.clearLinksAbove(level)
				continue
			}
			n.SetBit(level+1, brancher(n, level+1))
		}
		if n.Bit(level+1) == 0 {
			zeros = append(zeros, n)
		} else {
			ones = append(ones, n)
		}
	}
	g.relink(zeros, level+1, brancher)
	g.relink(ones, level+1, brancher)
}

// relinkPartial is like relink but stops splitting a list when any member
// lacks the next bit (used for truncated figure reconstructions).
func (g *Graph) relinkPartial(nodes []*Node, level int) {
	g.dirty()
	g.touchAll(nodes)
	linkChain(nodes, level)
	if len(nodes) < 2 {
		if len(nodes) == 1 {
			nodes[0].clearLinksAbove(level)
		}
		return
	}
	zeros := make([]*Node, 0, len(nodes))
	ones := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if !n.HasBit(level + 1) {
			for _, m := range nodes {
				m.clearLinksAbove(level)
			}
			return
		}
		if n.Bit(level+1) == 0 {
			zeros = append(zeros, n)
		} else {
			ones = append(ones, n)
		}
	}
	g.relinkPartial(zeros, level+1)
	g.relinkPartial(ones, level+1)
}

func linkChain(nodes []*Node, level int) {
	for i, n := range nodes {
		var p, nx *Node
		if i > 0 {
			p = nodes[i-1]
		}
		if i < len(nodes)-1 {
			nx = nodes[i+1]
		}
		n.setLink(level, p, nx)
	}
}

// Height returns the smallest L such that every node is singleton in its
// level-L list; lists exist at levels 0..L. A single-node graph has height 0.
func (g *Graph) Height() int {
	if g.height >= 0 {
		return g.height
	}
	h := 0
	for _, n := range g.nodes {
		if l := n.MaxLinkedLevel(); l+1 > h && (n.Next(l) != nil || n.Prev(l) != nil) {
			h = l + 1
		}
	}
	g.height = h
	return h
}

// ListAt returns the complete level-i linked list containing n, in key
// order. It returns nil when n has no level-i membership.
func (g *Graph) ListAt(n *Node, i int) []*Node {
	head := n
	for head.Prev(i) != nil {
		head = head.Prev(i)
	}
	var list []*Node
	for x := head; x != nil; x = x.Next(i) {
		list = append(list, x)
	}
	return list
}

// SingletonLevel returns the lowest level at which n is alone in its list.
func (g *Graph) SingletonLevel(n *Node) int {
	return n.MaxLinkedLevel() + 1
}

// SpliceIn inserts a detached node (with fully assigned membership bits)
// into the graph's node order and into every level's list it belongs to.
// Callers that have invalidated upper-level links (mid-transformation) must
// follow up with Relink.
func (g *Graph) SpliceIn(n *Node) { g.spliceIn(n) }

// spliceIn inserts a detached node (with fully assigned membership bits for
// levels 1..depth) into the graph's node order and into every level's list
// it belongs to.
func (g *Graph) spliceIn(n *Node) {
	if _, ok := g.byKey[n.key]; ok {
		panic(fmt.Sprintf("skipgraph: duplicate key %v", n.key))
	}
	g.dirty()
	g.touchNew(n)
	pos := sort.Search(len(g.nodes), func(i int) bool { return n.key.Less(g.nodes[i].key) })
	g.nodes = append(g.nodes, nil)
	copy(g.nodes[pos+1:], g.nodes[pos:])
	g.nodes[pos] = n
	g.byKey[n.key] = n
	for level := 0; level <= n.BitsLen(); level++ {
		if level > 0 && !n.HasBit(level) {
			break
		}
		var left, right *Node
		for i := pos - 1; i >= 0; i-- {
			if samePrefix(g.nodes[i], n, level) {
				left = g.nodes[i]
				break
			}
		}
		for i := pos + 1; i < len(g.nodes); i++ {
			if samePrefix(g.nodes[i], n, level) {
				right = g.nodes[i]
				break
			}
		}
		n.setLink(level, left, right)
		if left != nil {
			g.touch(left)
			left.setLink(level, left.Prev(level), n)
		}
		if right != nil {
			g.touch(right)
			right.setLink(level, n, right.Next(level))
		}
		if left == nil && right == nil && level > 0 {
			break // singleton from here up
		}
	}
}

// spliceOut removes a node from the node order and from every list.
func (g *Graph) spliceOut(n *Node) {
	if g.byKey[n.key] != n {
		panic(fmt.Sprintf("skipgraph: node %v not in graph", n.key))
	}
	g.dirty()
	g.touch(n)
	pos := sort.Search(len(g.nodes), func(i int) bool { return !g.nodes[i].key.Less(n.key) })
	g.nodes = append(g.nodes[:pos], g.nodes[pos+1:]...)
	delete(g.byKey, n.key)
	for level := 0; level <= n.MaxLinkedLevel(); level++ {
		left, right := n.Prev(level), n.Next(level)
		if left != nil {
			g.touch(left)
			left.setLink(level, left.Prev(level), right)
		}
		if right != nil {
			g.touch(right)
			right.setLink(level, left, right.Next(level))
		}
	}
	n.clearLinksAbove(-1)
}

// samePrefix reports whether a and b share membership bits 1..level.
func samePrefix(a, b *Node, level int) bool {
	for i := 1; i <= level; i++ {
		if !a.HasBit(i) || !b.HasBit(i) || a.bits[i] != b.bits[i] {
			return false
		}
	}
	return true
}

// ListRef names a dirty region of one linked list: a live anchor node plus
// the list's level. Mutating operations report ListRefs for everything they
// touched so a-balance repair can stay local (§IV-F/§IV-G) instead of
// rescanning the whole graph. By default the dirty region is the *window*
// around the anchor — its same-bit run plus the complete adjacent run on
// each side, the only runs a splice, departure, or bit extension at the
// anchor's position can have changed. Whole marks the entire list dirty,
// used when a transformation rebuilt it outright.
type ListRef struct {
	Node  *Node
	Level int
	Whole bool
}

// JoinEffect reports what a local join touched.
type JoinEffect struct {
	// Touched names every list that gained a member or whose run structure
	// changed (a newly drawn bit turns a run boundary into a run member).
	Touched []ListRef
	// Extended lists the pre-existing peers whose membership vectors grew
	// to stay distinct from the newcomer.
	Extended []*Node
	// Work is a deterministic count of the nodes examined while splicing —
	// the locality measure reported by experiment E16.
	Work int
}

// Insert adds a real node with the given key and id, assigning membership
// bits via brancher until singleton (standard skip-graph join, §IV-G).
func (g *Graph) Insert(key Key, id int64, brancher Brancher) *Node {
	n, _ := g.InsertTracked(key, id, brancher)
	return n
}

// InsertTracked adds a real node via a local join: the newcomer splices
// into the base list, then draws membership bits level by level, linking
// into exactly the lists it enters. A real peer left directly adjacent to
// another real node at the top of its vector draws further bits until
// distinct again; no node outside the join's search path is touched. With
// a nil brancher the node only splices into the base list (it carries no
// bits to go higher). The returned effect names every touched list — the
// dirty set a scoped balance repair must examine — and every extended peer.
func (g *Graph) InsertTracked(key Key, id int64, brancher Brancher) (*Node, JoinEffect) {
	n := NewNode(key, id)
	g.spliceIn(n) // a fresh node carries no bits, so this links level 0 only
	eff := JoinEffect{Touched: []ListRef{{Node: n, Level: 0}}, Work: 1}
	if brancher != nil {
		g.localJoin(n, brancher, &eff)
	}
	return n, eff
}

// localJoin assigns membership bits to the freshly spliced node until it is
// singleton at its top level. Invariant restored: no real node sits
// directly next to another real node at the top of its own vector (the
// distinctness the validator checks), so any real peer the newcomer lands
// beside at that peer's top level extends too, cascading only along
// adjacency. Bits are drawn one level at a time in key order — the same
// order a global relink restricted to these lists would use.
func (g *Graph) localJoin(n *Node, brancher Brancher, eff *JoinEffect) {
	cand := []*Node{n}
	for _, nb := range []*Node{n.Prev(0), n.Next(0)} {
		if nb != nil && !nb.dummy && !nb.dead && nb.BitsLen() == 0 {
			cand = append(cand, nb)
		}
	}
	extended := make(map[*Node]bool)
	for level := 0; len(cand) > 0; level++ {
		bitLevel := level + 1
		ext := cand[:0]
		for _, x := range cand {
			if x.BitsLen() != level {
				continue // already extended past this level
			}
			if x == n {
				// The newcomer keeps drawing while it has any neighbour —
				// dummies included — exactly like the recursive construction.
				if x.Prev(level) != nil || x.Next(level) != nil {
					ext = append(ext, x)
				}
			} else if hasRealNeighbor(x, level) {
				ext = append(ext, x)
			}
		}
		if len(ext) == 0 {
			return
		}
		sort.Slice(ext, func(i, j int) bool { return ext[i].key.Less(ext[j].key) })
		for _, x := range ext {
			x.SetBit(bitLevel, brancher(x, bitLevel))
		}
		var next []*Node
		queued := make(map[*Node]bool, len(ext)+2)
		push := func(x *Node) {
			if !queued[x] {
				queued[x] = true
				next = append(next, x)
			}
		}
		for _, x := range ext {
			eff.Work += g.spliceAtLevel(x, bitLevel)
			eff.Touched = append(eff.Touched, ListRef{Node: x, Level: bitLevel})
			if x != n && !extended[x] {
				extended[x] = true
				eff.Extended = append(eff.Extended, x)
			}
			push(x)
			// Splicing x can strand a real neighbour at the top of its
			// vector; it must extend next round.
			for _, nb := range []*Node{x.Prev(bitLevel), x.Next(bitLevel)} {
				if nb != nil && !nb.dummy && !nb.dead && nb.BitsLen() == bitLevel {
					push(nb)
				}
			}
		}
		cand = next
	}
}

// spliceAtLevel links x into the level-m list it belongs to by scanning its
// level-(m-1) list for the nearest members sharing x's level-m bit. The
// a-balance property bounds the scan to O(a) plus intervening dummies. It
// returns the number of nodes examined.
func (g *Graph) spliceAtLevel(x *Node, m int) int {
	work := 1
	b := x.Bit(m)
	var left, right *Node
	for y := x.Prev(m - 1); y != nil; y = y.Prev(m - 1) {
		work++
		if y.HasBit(m) && y.Bit(m) == b {
			left = y
			break
		}
	}
	for y := x.Next(m - 1); y != nil; y = y.Next(m - 1) {
		work++
		if y.HasBit(m) && y.Bit(m) == b {
			right = y
			break
		}
	}
	g.touch(x)
	x.setLink(m, left, right)
	if left != nil {
		g.touch(left)
		left.setLink(m, left.Prev(m), x)
	}
	if right != nil {
		g.touch(right)
		right.setLink(m, x, right.Next(m))
	}
	return work
}

// hasRealNeighbor reports whether x has a live real (non-dummy, non-dead)
// direct neighbour at level l. At l == x.BitsLen() this is exactly the
// distinctness requirement: a real node must not share the top of its
// membership vector with an adjacent live real node. Dead neighbours count
// like dummies — they cannot participate in a bit-extension round, and their
// eventual repair splices them out anyway.
func hasRealNeighbor(x *Node, l int) bool {
	if p := x.Prev(l); p != nil && !p.dummy && !p.dead {
		return true
	}
	if nx := x.Next(l); nx != nil && !nx.dummy && !nx.dead {
		return true
	}
	return false
}

// ExtendDistinctFrom restores vector distinctness after a splice-out brought
// previously separated nodes together: any candidate real live node adjacent
// to another real live node at the top of its own vector draws further bits
// until distinct again, cascading only along adjacency — the same rule
// localJoin enforces for joins. A graceful leave never needs this (two live
// real nodes are never adjacent at either one's top level), but removing a
// DEAD node can: a corpse is exempt from the distinctness invariant, so it
// may be the only thing separating two live nodes that share a full prefix.
// Candidates no longer in the graph (or dummy/dead) are skipped. The effect
// names every touched list and extended node, like InsertTracked.
func (g *Graph) ExtendDistinctFrom(cands []*Node, brancher Brancher) JoinEffect {
	var eff JoinEffect
	queue := append([]*Node(nil), cands...)
	queued := make(map[*Node]bool, len(cands))
	for _, x := range cands {
		queued[x] = true
	}
	extended := make(map[*Node]bool)
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		queued[x] = false
		if x.dummy || x.dead || g.byKey[x.key] != x {
			continue
		}
		for hasRealNeighbor(x, x.BitsLen()) {
			bitLevel := x.BitsLen() + 1
			g.dirty()
			x.SetBit(bitLevel, brancher(x, bitLevel))
			eff.Work += g.spliceAtLevel(x, bitLevel)
			eff.Touched = append(eff.Touched, ListRef{Node: x, Level: bitLevel})
			if !extended[x] {
				extended[x] = true
				eff.Extended = append(eff.Extended, x)
			}
			// x stays a member of every lower list it shared with its old
			// neighbours, so THEY may still be stranded — and the splice can
			// strand x's new-level neighbours too. Queue both sides.
			for _, nb := range []*Node{x.Prev(bitLevel - 1), x.Next(bitLevel - 1),
				x.Prev(bitLevel), x.Next(bitLevel)} {
				if nb != nil && !nb.dummy && !nb.dead && !queued[nb] {
					queued[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	return eff
}

// Remove deletes the node with the given key (standard skip-graph leave).
// It returns the removed node, or nil if the key is absent. Callers that
// need the departure's dirty set use RemoveTracked instead — Remove itself
// computes none, so repair paths that already hold the refs pay nothing
// extra.
func (g *Graph) Remove(key Key) *Node {
	n := g.byKey[key]
	if n == nil {
		return nil
	}
	g.spliceOut(n)
	return n
}

// RemoveTracked deletes the node with the given key and returns, for every
// list the node occupied, a ListRef anchored at a surviving neighbour — the
// dirty set a scoped balance repair must re-examine, since a departure can
// merge two same-bit runs. It returns (nil, nil) when the key is absent.
func (g *Graph) RemoveTracked(key Key) (*Node, []ListRef) {
	n := g.byKey[key]
	if n == nil {
		return nil, nil
	}
	refs := ExListRefs(n)
	g.spliceOut(n)
	return n, refs
}

// ExListRefs returns, for every list n occupies, a ListRef anchored at a
// neighbour, so the refs stay valid after n itself leaves the graph. This
// is the dirty set of a departure: each level's run structure can only
// have changed around the vacated position.
func ExListRefs(n *Node) []ListRef {
	var refs []ListRef
	for l := 0; l <= n.MaxLinkedLevel(); l++ {
		if p := n.Prev(l); p != nil {
			refs = append(refs, ListRef{Node: p, Level: l})
		} else if nx := n.Next(l); nx != nil {
			refs = append(refs, ListRef{Node: nx, Level: l})
		}
	}
	return refs
}

// Verify checks every structural invariant: strict base-key order, link
// symmetry, and that each level-i list is exactly the key-ordered set of
// nodes sharing an i-bit membership prefix. It returns the first violation.
func (g *Graph) Verify() error {
	for i := 1; i < len(g.nodes); i++ {
		if !g.nodes[i-1].key.Less(g.nodes[i].key) {
			return fmt.Errorf("base order violated at %v >= %v", g.nodes[i-1].key, g.nodes[i].key)
		}
	}
	if len(g.byKey) != len(g.nodes) {
		return fmt.Errorf("byKey has %d entries, want %d", len(g.byKey), len(g.nodes))
	}
	maxLevel := 0
	for _, n := range g.nodes {
		if l := n.MaxLinkedLevel(); l > maxLevel {
			maxLevel = l
		}
	}
	for level := 0; level <= maxLevel; level++ {
		// Expected lists: group nodes by level-length prefix, in key order.
		groups := make(map[string][]*Node)
		var order []string
		for _, n := range g.nodes {
			ok := true
			for i := 1; i <= level; i++ {
				if !n.HasBit(i) {
					ok = false
					break
				}
			}
			if !ok {
				// Node has no level-`level` membership; it must be singleton
				// (no links) at this level.
				if n.Next(level) != nil || n.Prev(level) != nil {
					return fmt.Errorf("node %v linked at level %d beyond its vector", n.key, level)
				}
				continue
			}
			p := prefixString(n, level)
			if _, seen := groups[p]; !seen {
				order = append(order, p)
			}
			groups[p] = append(groups[p], n)
		}
		for _, p := range order {
			list := groups[p]
			for i, n := range list {
				var wantPrev, wantNext *Node
				if i > 0 {
					wantPrev = list[i-1]
				}
				if i < len(list)-1 {
					wantNext = list[i+1]
				}
				if n.Prev(level) != wantPrev {
					return fmt.Errorf("node %v level %d: prev = %v, want %v", n.key, level, n.Prev(level), wantPrev)
				}
				if n.Next(level) != wantNext {
					return fmt.Errorf("node %v level %d: next = %v, want %v", n.key, level, n.Next(level), wantNext)
				}
			}
		}
	}
	return nil
}

func prefixString(n *Node, level int) string {
	buf := make([]byte, level)
	for i := 1; i <= level; i++ {
		buf[i-1] = '0' + n.bits[i]
	}
	return string(buf)
}
