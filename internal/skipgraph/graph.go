package skipgraph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Brancher chooses the membership bit for a node whose level-(i-1) list is
// splitting and whose bit for level i is not yet assigned. The static
// (non-adjusting) skip graph uses a random brancher; DSG assigns every bit
// explicitly and uses no brancher.
type Brancher func(n *Node, level int) byte

// RandomBrancher returns a Brancher drawing independent fair bits from seed.
func RandomBrancher(seed int64) Brancher {
	rng := rand.New(rand.NewSource(seed))
	return func(*Node, int) byte { return byte(rng.Intn(2)) }
}

// Graph is a skip graph: a base doubly linked list of nodes in key order,
// recursively split into per-level linked lists by membership-vector bits.
type Graph struct {
	nodes  []*Node // key order
	byKey  map[Key]*Node
	height int // cached; -1 when dirty
}

// NewRandom builds a skip graph over n real nodes with keys and identifiers
// 0..n-1 and independently random membership vectors (the classic Aspnes-
// Shah construction, used as the static baseline topology).
func NewRandom(n int, seed int64) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("skipgraph: need at least one node, got %d", n))
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(KeyOf(int64(i)), int64(i))
	}
	return NewFromNodes(nodes, RandomBrancher(seed))
}

// NewFromNodes builds a graph from pre-created nodes (sorted internally by
// key). Missing membership bits are drawn from brancher; if brancher is nil,
// every node must already carry enough bits to become singleton.
func NewFromNodes(nodes []*Node, brancher Brancher) *Graph {
	g := &Graph{byKey: make(map[Key]*Node, len(nodes)), height: -1}
	g.nodes = append(g.nodes, nodes...)
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i].key.Less(g.nodes[j].key) })
	for i := 1; i < len(g.nodes); i++ {
		if !g.nodes[i-1].key.Less(g.nodes[i].key) {
			panic(fmt.Sprintf("skipgraph: duplicate key %v", g.nodes[i].key))
		}
	}
	for _, n := range g.nodes {
		g.byKey[n.key] = n
	}
	g.Relink(g.nodes, 0, brancher)
	return g
}

// VectorEntry describes one node for NewFromVectors.
type VectorEntry struct {
	Key    int64
	ID     int64
	Vector string // membership bits, level 1 first, e.g. "01"
}

// NewFromVectors builds a graph with explicit membership vectors, used to
// reconstruct the paper's figures exactly. Vectors may be partial; lists
// that still hold ≥ 2 nodes after all bits are consumed stay unsplit, which
// matches the truncated figures (e.g. Fig 1 shows only 3 levels).
func NewFromVectors(entries []VectorEntry) *Graph {
	nodes := make([]*Node, len(entries))
	for i, e := range entries {
		n := NewNode(KeyOf(e.Key), e.ID)
		for j, c := range e.Vector {
			switch c {
			case '0':
				n.SetBit(j+1, 0)
			case '1':
				n.SetBit(j+1, 1)
			default:
				panic(fmt.Sprintf("skipgraph: bad vector %q", e.Vector))
			}
		}
		nodes[i] = n
	}
	g := &Graph{byKey: make(map[Key]*Node, len(nodes)), height: -1}
	g.nodes = append(g.nodes, nodes...)
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i].key.Less(g.nodes[j].key) })
	for _, n := range g.nodes {
		g.byKey[n.key] = n
	}
	g.relinkPartial(g.nodes, 0)
	return g
}

// N returns the number of nodes, including dummies.
func (g *Graph) N() int { return len(g.nodes) }

// RealN returns the number of non-dummy nodes.
func (g *Graph) RealN() int {
	c := 0
	for _, n := range g.nodes {
		if !n.dummy {
			c++
		}
	}
	return c
}

// Nodes returns the nodes in key order. The returned slice is a copy.
func (g *Graph) Nodes() []*Node {
	return append([]*Node(nil), g.nodes...)
}

// ByKey returns the node with the given key, or nil.
func (g *Graph) ByKey(k Key) *Node { return g.byKey[k] }

// Head returns the first node of the base list.
func (g *Graph) Head() *Node {
	if len(g.nodes) == 0 {
		return nil
	}
	return g.nodes[0]
}

// Relink rebuilds all linked lists for the given key-ordered node subset
// from the given level upward, assigning missing membership bits via
// brancher (nil brancher panics on a missing bit). The subset must be the
// complete membership of one level-`level` list.
func (g *Graph) Relink(nodes []*Node, level int, brancher Brancher) {
	g.height = -1
	g.relink(nodes, level, brancher)
}

func (g *Graph) relink(nodes []*Node, level int, brancher Brancher) {
	linkChain(nodes, level)
	if len(nodes) < 2 {
		if len(nodes) == 1 {
			nodes[0].clearLinksAbove(level)
		}
		return
	}
	zeros := make([]*Node, 0, len(nodes))
	ones := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if !n.HasBit(level + 1) {
			if n.dummy || brancher == nil {
				// A vector may legitimately end here: dummies never
				// participate in transformations (§IV-F), and a real node
				// stops splitting once every other member of its list is a
				// dummy. Such nodes stay singleton above this level.
				n.clearLinksAbove(level)
				continue
			}
			n.SetBit(level+1, brancher(n, level+1))
		}
		if n.Bit(level+1) == 0 {
			zeros = append(zeros, n)
		} else {
			ones = append(ones, n)
		}
	}
	g.relink(zeros, level+1, brancher)
	g.relink(ones, level+1, brancher)
}

// relinkPartial is like relink but stops splitting a list when any member
// lacks the next bit (used for truncated figure reconstructions).
func (g *Graph) relinkPartial(nodes []*Node, level int) {
	linkChain(nodes, level)
	if len(nodes) < 2 {
		if len(nodes) == 1 {
			nodes[0].clearLinksAbove(level)
		}
		return
	}
	zeros := make([]*Node, 0, len(nodes))
	ones := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if !n.HasBit(level + 1) {
			for _, m := range nodes {
				m.clearLinksAbove(level)
			}
			return
		}
		if n.Bit(level+1) == 0 {
			zeros = append(zeros, n)
		} else {
			ones = append(ones, n)
		}
	}
	g.relinkPartial(zeros, level+1)
	g.relinkPartial(ones, level+1)
}

func linkChain(nodes []*Node, level int) {
	for i, n := range nodes {
		var p, nx *Node
		if i > 0 {
			p = nodes[i-1]
		}
		if i < len(nodes)-1 {
			nx = nodes[i+1]
		}
		n.setLink(level, p, nx)
	}
}

// Height returns the smallest L such that every node is singleton in its
// level-L list; lists exist at levels 0..L. A single-node graph has height 0.
func (g *Graph) Height() int {
	if g.height >= 0 {
		return g.height
	}
	h := 0
	for _, n := range g.nodes {
		if l := n.MaxLinkedLevel(); l+1 > h && (n.Next(l) != nil || n.Prev(l) != nil) {
			h = l + 1
		}
	}
	g.height = h
	return h
}

// ListAt returns the complete level-i linked list containing n, in key
// order. It returns nil when n has no level-i membership.
func (g *Graph) ListAt(n *Node, i int) []*Node {
	head := n
	for head.Prev(i) != nil {
		head = head.Prev(i)
	}
	var list []*Node
	for x := head; x != nil; x = x.Next(i) {
		list = append(list, x)
	}
	return list
}

// SingletonLevel returns the lowest level at which n is alone in its list.
func (g *Graph) SingletonLevel(n *Node) int {
	return n.MaxLinkedLevel() + 1
}

// SpliceIn inserts a detached node (with fully assigned membership bits)
// into the graph's node order and into every level's list it belongs to.
// Callers that have invalidated upper-level links (mid-transformation) must
// follow up with Relink.
func (g *Graph) SpliceIn(n *Node) { g.spliceIn(n) }

// spliceIn inserts a detached node (with fully assigned membership bits for
// levels 1..depth) into the graph's node order and into every level's list
// it belongs to.
func (g *Graph) spliceIn(n *Node) {
	if _, ok := g.byKey[n.key]; ok {
		panic(fmt.Sprintf("skipgraph: duplicate key %v", n.key))
	}
	g.height = -1
	pos := sort.Search(len(g.nodes), func(i int) bool { return n.key.Less(g.nodes[i].key) })
	g.nodes = append(g.nodes, nil)
	copy(g.nodes[pos+1:], g.nodes[pos:])
	g.nodes[pos] = n
	g.byKey[n.key] = n
	for level := 0; level <= n.BitsLen(); level++ {
		if level > 0 && !n.HasBit(level) {
			break
		}
		var left, right *Node
		for i := pos - 1; i >= 0; i-- {
			if samePrefix(g.nodes[i], n, level) {
				left = g.nodes[i]
				break
			}
		}
		for i := pos + 1; i < len(g.nodes); i++ {
			if samePrefix(g.nodes[i], n, level) {
				right = g.nodes[i]
				break
			}
		}
		n.setLink(level, left, right)
		if left != nil {
			left.setLink(level, left.Prev(level), n)
		}
		if right != nil {
			right.setLink(level, n, right.Next(level))
		}
		if left == nil && right == nil && level > 0 {
			break // singleton from here up
		}
	}
}

// spliceOut removes a node from the node order and from every list.
func (g *Graph) spliceOut(n *Node) {
	if g.byKey[n.key] != n {
		panic(fmt.Sprintf("skipgraph: node %v not in graph", n.key))
	}
	g.height = -1
	pos := sort.Search(len(g.nodes), func(i int) bool { return !g.nodes[i].key.Less(n.key) })
	g.nodes = append(g.nodes[:pos], g.nodes[pos+1:]...)
	delete(g.byKey, n.key)
	for level := 0; level <= n.MaxLinkedLevel(); level++ {
		left, right := n.Prev(level), n.Next(level)
		if left != nil {
			left.setLink(level, left.Prev(level), right)
		}
		if right != nil {
			right.setLink(level, left, right.Next(level))
		}
	}
	n.clearLinksAbove(-1)
}

// samePrefix reports whether a and b share membership bits 1..level.
func samePrefix(a, b *Node, level int) bool {
	for i := 1; i <= level; i++ {
		if !a.HasBit(i) || !b.HasBit(i) || a.bits[i] != b.bits[i] {
			return false
		}
	}
	return true
}

// Insert adds a real node with the given key and id, assigning membership
// bits via brancher until singleton (standard skip-graph join, §IV-G).
func (g *Graph) Insert(key Key, id int64, brancher Brancher) *Node {
	if _, ok := g.byKey[key]; ok {
		panic(fmt.Sprintf("skipgraph: duplicate key %v", key))
	}
	n := NewNode(key, id)
	pos := sort.Search(len(g.nodes), func(i int) bool { return key.Less(g.nodes[i].key) })
	g.nodes = append(g.nodes, nil)
	copy(g.nodes[pos+1:], g.nodes[pos:])
	g.nodes[pos] = n
	g.byKey[key] = n
	// Relinking with the brancher assigns the new node's bits lazily and
	// extends any peer whose vector is now too short to stay distinct.
	g.Relink(g.nodes, 0, brancher)
	return n
}

// Remove deletes the node with the given key (standard skip-graph leave).
// It returns the removed node, or nil if the key is absent.
func (g *Graph) Remove(key Key) *Node {
	n := g.byKey[key]
	if n == nil {
		return nil
	}
	g.spliceOut(n)
	return n
}

// Verify checks every structural invariant: strict base-key order, link
// symmetry, and that each level-i list is exactly the key-ordered set of
// nodes sharing an i-bit membership prefix. It returns the first violation.
func (g *Graph) Verify() error {
	for i := 1; i < len(g.nodes); i++ {
		if !g.nodes[i-1].key.Less(g.nodes[i].key) {
			return fmt.Errorf("base order violated at %v >= %v", g.nodes[i-1].key, g.nodes[i].key)
		}
	}
	if len(g.byKey) != len(g.nodes) {
		return fmt.Errorf("byKey has %d entries, want %d", len(g.byKey), len(g.nodes))
	}
	maxLevel := 0
	for _, n := range g.nodes {
		if l := n.MaxLinkedLevel(); l > maxLevel {
			maxLevel = l
		}
	}
	for level := 0; level <= maxLevel; level++ {
		// Expected lists: group nodes by level-length prefix, in key order.
		groups := make(map[string][]*Node)
		var order []string
		for _, n := range g.nodes {
			ok := true
			for i := 1; i <= level; i++ {
				if !n.HasBit(i) {
					ok = false
					break
				}
			}
			if !ok {
				// Node has no level-`level` membership; it must be singleton
				// (no links) at this level.
				if n.Next(level) != nil || n.Prev(level) != nil {
					return fmt.Errorf("node %v linked at level %d beyond its vector", n.key, level)
				}
				continue
			}
			p := prefixString(n, level)
			if _, seen := groups[p]; !seen {
				order = append(order, p)
			}
			groups[p] = append(groups[p], n)
		}
		for _, p := range order {
			list := groups[p]
			for i, n := range list {
				var wantPrev, wantNext *Node
				if i > 0 {
					wantPrev = list[i-1]
				}
				if i < len(list)-1 {
					wantNext = list[i+1]
				}
				if n.Prev(level) != wantPrev {
					return fmt.Errorf("node %v level %d: prev = %v, want %v", n.key, level, n.Prev(level), wantPrev)
				}
				if n.Next(level) != wantNext {
					return fmt.Errorf("node %v level %d: next = %v, want %v", n.key, level, n.Next(level), wantNext)
				}
			}
		}
	}
	return nil
}

func prefixString(n *Node, level int) string {
	buf := make([]byte, level)
	for i := 1; i <= level; i++ {
		buf[i-1] = '0' + n.bits[i]
	}
	return string(buf)
}
