// Package cliutil centralizes the flag conventions shared by the repo's
// binaries (cmd/dsgexp, cmd/dsgbench, cmd/dsgsim, cmd/dsgviz) so every tool
// is reproducible the same way:
//
//   - -seed selects the deterministic random stream (default 1; two runs
//     with the same flags and seed produce the same captured output);
//   - -out captures the result — a directory for grid runners (dsgexp), a
//     file for text reporters (the others; empty means stdout);
//   - timing and progress chatter belongs on stderr, never in the captured
//     output, so -out files can be diffed across commits.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"lsasg/internal/workload"
)

// AddSeed registers the shared -seed flag.
func AddSeed(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 1, "base random seed; identical seeds reproduce identical results")
}

// AddOut registers the shared -out flag with a tool-specific usage string.
func AddOut(fs *flag.FlagSet, usage string) *string {
	return fs.String("out", "", usage)
}

// AddShards registers the shared -shards flag: a comma-separated list of
// shard counts for the partitioned-serving experiments (E18). An empty value
// keeps the scale's default sweep, so grid runs have the same -seed/-out
// reproducibility whether or not shards are overridden.
func AddShards(fs *flag.FlagSet) *string {
	return fs.String("shards", "", "comma-separated shard counts for sharded experiments (e.g. 1,2,4,8); empty = scale default")
}

// ParseShards parses an AddShards value into shard counts. Empty input
// yields nil (meaning: keep the default sweep); entries must be positive
// integers.
func ParseShards(v string) ([]int, error) {
	v = strings.TrimSpace(v)
	if v == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("cliutil: bad shard count %q (want positive integers, e.g. 1,2,4,8)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty -shards list %q", v)
	}
	return out, nil
}

// AddMix registers the shared -mix flag: a comma-separated list of KV
// operation mixes for the KV-workload experiments (E19). An empty value
// keeps the scale's default sweep, mirroring -shards.
func AddMix(fs *flag.FlagSet) *string {
	return fs.String("mix", "", "comma-separated KV mixes for KV experiments (named: a,b,c,e,crud; or read:update:insert:scan:delete weights); empty = scale default")
}

// ParseMixes parses an AddMix value into mix names, validating each against
// workload.ParseMix. Empty input yields nil (meaning: keep the default
// sweep).
func ParseMixes(v string) ([]string, error) {
	v = strings.TrimSpace(v)
	if v == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, err := workload.ParseMix(part); err != nil {
			return nil, fmt.Errorf("cliutil: bad -mix entry %q: %w", part, err)
		}
		out = append(out, part)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty -mix list %q", v)
	}
	return out, nil
}

// nopWriteCloser wraps stdout so text reporters can Close unconditionally.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// Output resolves the -out flag for text reporters: an empty path yields a
// non-closing stdout wrapper, anything else creates the file (and its parent
// directories).
func Output(path string) (io.WriteCloser, error) {
	if path == "" {
		return nopWriteCloser{os.Stdout}, nil
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("creating output directory: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("creating output file: %w", err)
	}
	return f, nil
}

// DefaultRunDir returns the conventional default output directory for grid
// runners: <tool>_runs/<timestamp>.
func DefaultRunDir(tool string) string {
	return filepath.Join(tool+"_runs", time.Now().Format("20060102_150405"))
}

// Fail prints a prefixed error to stderr and exits non-zero. Every binary
// reports fatal errors the same way.
func Fail(tool, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
	os.Exit(1)
}
