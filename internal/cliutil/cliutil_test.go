package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	seed := AddSeed(fs)
	out := AddOut(fs, "output file")
	if err := fs.Parse([]string{"-seed", "7", "-out", "report.txt"}); err != nil {
		t.Fatal(err)
	}
	if *seed != 7 || *out != "report.txt" {
		t.Fatalf("parsed seed=%d out=%q", *seed, *out)
	}

	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	if *AddSeed(fs2) != 1 {
		t.Error("default seed must be 1 in every binary")
	}
}

func TestOutputStdoutAndFile(t *testing.T) {
	w, err := Output("")
	if err != nil {
		t.Fatal(err)
	}
	if w.(nopWriteCloser).Writer != os.Stdout {
		t.Error("empty -out should resolve to stdout")
	}
	if err := w.Close(); err != nil {
		t.Error("closing the stdout wrapper must be a no-op")
	}

	path := filepath.Join(t.TempDir(), "nested", "dir", "report.txt")
	f, err := Output(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello\n" {
		t.Fatalf("read back %q, %v", data, err)
	}
}

func TestDefaultRunDir(t *testing.T) {
	dir := DefaultRunDir("dsgexp")
	if !strings.HasPrefix(dir, "dsgexp_runs"+string(filepath.Separator)) {
		t.Errorf("run dir %q lacks the <tool>_runs prefix", dir)
	}
}
