package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	seed := AddSeed(fs)
	out := AddOut(fs, "output file")
	if err := fs.Parse([]string{"-seed", "7", "-out", "report.txt"}); err != nil {
		t.Fatal(err)
	}
	if *seed != 7 || *out != "report.txt" {
		t.Fatalf("parsed seed=%d out=%q", *seed, *out)
	}

	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	if *AddSeed(fs2) != 1 {
		t.Error("default seed must be 1 in every binary")
	}
}

func TestParseShards(t *testing.T) {
	fs := flag.NewFlagSet("z", flag.ContinueOnError)
	shards := AddShards(fs)
	if err := fs.Parse([]string{"-shards", "1, 2,4,8"}); err != nil {
		t.Fatal(err)
	}
	got, err := ParseShards(*shards)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != 1 || got[3] != 8 {
		t.Fatalf("ParseShards = %v, want [1 2 4 8]", got)
	}

	if got, err := ParseShards(""); err != nil || got != nil {
		t.Errorf("empty -shards must mean the default sweep, got %v, %v", got, err)
	}
	for _, bad := range []string{"0", "-1", "two", "1,,x", ","} {
		if _, err := ParseShards(bad); err == nil {
			t.Errorf("ParseShards(%q) must fail", bad)
		}
	}
}

func TestParseMixes(t *testing.T) {
	fs := flag.NewFlagSet("m", flag.ContinueOnError)
	mix := AddMix(fs)
	if err := fs.Parse([]string{"-mix", "a, crud,50:30:10:5:5"}); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMixes(*mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "crud" || got[2] != "50:30:10:5:5" {
		t.Fatalf("ParseMixes = %v", got)
	}

	if got, err := ParseMixes(""); err != nil || got != nil {
		t.Errorf("empty -mix must mean the default sweep, got %v, %v", got, err)
	}
	for _, bad := range []string{"z", "a,bogus", "1:2:3", ","} {
		if _, err := ParseMixes(bad); err == nil {
			t.Errorf("ParseMixes(%q) must fail", bad)
		}
	}
}

func TestOutputStdoutAndFile(t *testing.T) {
	w, err := Output("")
	if err != nil {
		t.Fatal(err)
	}
	if w.(nopWriteCloser).Writer != os.Stdout {
		t.Error("empty -out should resolve to stdout")
	}
	if err := w.Close(); err != nil {
		t.Error("closing the stdout wrapper must be a no-op")
	}

	path := filepath.Join(t.TempDir(), "nested", "dir", "report.txt")
	f, err := Output(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello\n" {
		t.Fatalf("read back %q, %v", data, err)
	}
}

func TestDefaultRunDir(t *testing.T) {
	dir := DefaultRunDir("dsgexp")
	if !strings.HasPrefix(dir, "dsgexp_runs"+string(filepath.Separator)) {
		t.Errorf("run dir %q lacks the <tool>_runs prefix", dir)
	}
}
