package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample. The JSON tags give it a
// stable wire form for the experiment-runner output files.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Summarize computes a Summary of xs. It returns a zero Summary when xs is
// empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    Percentile(sorted, 0.50),
		P90:    Percentile(sorted, 0.90),
		P99:    Percentile(sorted, 0.99),
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 1) of a sorted sample using
// linear interpolation between closest ranks. The input must be sorted.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanInts is a convenience mean over integer samples.
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// MaxInts returns the maximum of xs, or 0 when xs is empty.
func MaxInts(xs []int) int {
	maxV := 0
	for i, x := range xs {
		if i == 0 || x > maxV {
			maxV = x
		}
	}
	return maxV
}

// LinearFit fits y = a + b*x by least squares and returns (a, b, r2).
// It returns zeros when fewer than two points are provided.
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1
	}
	var ssRes float64
	for i := range xs {
		d := ys[i] - (a + b*xs[i])
		ssRes += d * d
	}
	return a, b, 1 - ssRes/ssTot
}

// Histogram is a fixed-width bucket histogram over float64 samples.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Under   int
	Over    int
	width   float64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n), width: (hi - lo) / float64(n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / h.width)
		if idx >= len(h.Buckets) {
			idx = len(h.Buckets) - 1
		}
		h.Buckets[idx]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int {
	total := h.Under + h.Over
	for _, b := range h.Buckets {
		total += b
	}
	return total
}

// String renders a compact ASCII bar chart.
func (h *Histogram) String() string {
	const barWidth = 40
	maxCount := 0
	for _, b := range h.Buckets {
		if b > maxCount {
			maxCount = b
		}
	}
	out := ""
	for i, b := range h.Buckets {
		lo := h.Lo + float64(i)*h.width
		bar := 0
		if maxCount > 0 {
			bar = b * barWidth / maxCount
		}
		out += fmt.Sprintf("%10.2f | %-*s %d\n", lo, barWidth, repeat('#', bar), b)
	}
	return out
}

func repeat(c byte, n int) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = c
	}
	return string(buf)
}
