package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %f", s.Stddev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.2f = %f, want %f", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r2 := LinearFit(xs, ys)
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("fit = (%f, %f, %f)", a, b, r2)
	}
	if _, _, r := LinearFit(xs[:1], ys[:1]); r != 0 {
		t.Error("degenerate fit should return zeros")
	}
}

func TestMeanMaxInts(t *testing.T) {
	if MeanInts([]int{2, 4, 6}) != 4 {
		t.Error("mean wrong")
	}
	if MeanInts(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if MaxInts([]int{3, 9, 1}) != 9 {
		t.Error("max wrong")
	}
	if MaxInts(nil) != 0 {
		t.Error("empty max should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1, 5, 9.9, 10, 100} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("render has no bars")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("E1: demo", "n", "value", "note")
	tb.AddRow(8, 3.14159, "ok")
	tb.AddRow(1024, 12345.6, "big")
	out := tb.String()
	if !strings.Contains(out, "## E1: demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float formatting: %s", out)
	}
	if !strings.Contains(out, "12346") {
		t.Errorf("large float formatting: %s", out)
	}
	// Title, header, separator, and two data rows.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5", len(lines))
	}
}
