// Package stats provides the small statistical toolkit used by the
// experiment harness: summaries, percentiles, histograms, and linear fits.
// It deliberately avoids any external dependency.
//
// Table is the central type: experiments accumulate typed rows into a
// Table, which renders as an aligned plain-text table (cmd/dsgbench), as
// deterministic RFC-4180 CSV (WriteCSV), or as JSON with typed cells
// (MarshalJSON). Aggregate folds the per-repeat tables of one experiment
// into a single table with mean and sample-stddev columns, the form
// cmd/dsgexp writes when -repeats > 1.
package stats
