package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file holds the machine-readable emitters for Table: CSV and JSON
// output plus the repeat aggregator used by cmd/dsgexp. CSV cells are
// formatted deterministically (full-precision 'g' floats), so two runs with
// the same seed produce byte-identical files.

// csvCell formats one raw cell for CSV/JSON-stable output.
func csvCell(c interface{}) string {
	switch v := c.(type) {
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(v), 'g', -1, 32)
	case bool:
		return strconv.FormatBool(v)
	default:
		return fmt.Sprintf("%v", c)
	}
}

// WriteCSV writes the table as RFC-4180 CSV: one header row with the column
// names followed by the data rows. The title is not included; it lives in
// the JSON emitter and the file name.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.raw {
		rec := make([]string, len(row))
		for i, c := range row {
			rec[i] = csvCell(c)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV renders the table to a CSV string.
func (t *Table) CSV() string {
	var sb strings.Builder
	if err := t.WriteCSV(&sb); err != nil {
		panic(err) // strings.Builder never errors; csv only errors on bad field counts
	}
	return sb.String()
}

// tableJSON is the wire form of a Table.
type tableJSON struct {
	Title   string          `json:"title"`
	Columns []string        `json:"columns"`
	Rows    [][]interface{} `json:"rows"`
}

// MarshalJSON encodes the table as {title, columns, rows} with typed cells
// (numbers stay numbers, bools stay bools).
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.raw
	if rows == nil {
		rows = [][]interface{}{}
	}
	return json.Marshal(tableJSON{Title: t.Title, Columns: t.Columns, Rows: rows})
}

// UnmarshalJSON decodes a table previously written by MarshalJSON.
func (t *Table) UnmarshalJSON(data []byte) error {
	var tj tableJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return err
	}
	t.Title = tj.Title
	t.Columns = tj.Columns
	t.rows = nil
	t.raw = nil
	for _, row := range tj.Rows {
		t.AddRow(row...)
	}
	return nil
}

// asFloat reports whether c is numeric and converts it.
func asFloat(c interface{}) (float64, bool) {
	switch v := c.(type) {
	case float64:
		return v, true
	case float32:
		return float64(v), true
	case int:
		return float64(v), true
	case int8:
		return float64(v), true
	case int16:
		return float64(v), true
	case int32:
		return float64(v), true
	case int64:
		return float64(v), true
	case uint:
		return float64(v), true
	case uint8:
		return float64(v), true
	case uint16:
		return float64(v), true
	case uint32:
		return float64(v), true
	case uint64:
		return float64(v), true
	default:
		return 0, false
	}
}

// Aggregate combines k same-shape tables — the per-repeat outputs of one
// experiment — into a single table. Numeric columns are replaced by a
// mean column (same name) plus a "<name> sd" sample-stddev column; boolean
// columns become the conjunction across repeats (a bound that failed in any
// repeat reports false); string columns must agree across repeats (they are
// the row keys: n, workload name, …) and are passed through.
//
// Aggregating a single table returns it unchanged.
func Aggregate(tables []*Table) (*Table, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("stats: no tables to aggregate")
	}
	first := tables[0]
	if len(tables) == 1 {
		return first, nil
	}
	for i, t := range tables[1:] {
		if len(t.Columns) != len(first.Columns) || t.NumRows() != first.NumRows() {
			return nil, fmt.Errorf("stats: repeat %d has shape %dx%d, want %dx%d",
				i+1, t.NumRows(), len(t.Columns), first.NumRows(), len(first.Columns))
		}
	}
	if first.NumRows() == 0 {
		return first, nil
	}

	// Classify each column by the first table's first row.
	numeric := make([]bool, len(first.Columns))
	boolean := make([]bool, len(first.Columns))
	for j := range first.Columns {
		c := first.Row(0)[j]
		if _, ok := asFloat(c); ok {
			numeric[j] = true
		} else if _, ok := c.(bool); ok {
			boolean[j] = true
		}
	}

	cols := make([]string, 0, 2*len(first.Columns))
	for j, name := range first.Columns {
		cols = append(cols, name)
		if numeric[j] {
			cols = append(cols, name+" sd")
		}
	}
	out := NewTable(first.Title, cols...)
	k := float64(len(tables))
	for i := 0; i < first.NumRows(); i++ {
		row := make([]interface{}, 0, len(cols))
		for j := range first.Columns {
			switch {
			case numeric[j]:
				var sum, sumSq float64
				for _, t := range tables {
					x, ok := asFloat(t.Row(i)[j])
					if !ok {
						return nil, fmt.Errorf("stats: column %q row %d: non-numeric cell %v",
							first.Columns[j], i, t.Row(i)[j])
					}
					sum += x
					sumSq += x * x
				}
				mean := sum / k
				variance := sumSq/k - mean*mean
				if variance < 0 {
					variance = 0
				}
				// Sample stddev (n-1) so two identical repeats report 0.
				sd := 0.0
				if k > 1 {
					sd = math.Sqrt(variance * k / (k - 1))
				}
				row = append(row, mean, sd)
			case boolean[j]:
				all := true
				for _, t := range tables {
					b, ok := t.Row(i)[j].(bool)
					if !ok {
						return nil, fmt.Errorf("stats: column %q row %d: non-bool cell %v",
							first.Columns[j], i, t.Row(i)[j])
					}
					all = all && b
				}
				row = append(row, all)
			default:
				want := csvCell(first.Row(i)[j])
				for _, t := range tables {
					if got := csvCell(t.Row(i)[j]); got != want {
						return nil, fmt.Errorf("stats: key column %q row %d differs across repeats: %q vs %q",
							first.Columns[j], i, want, got)
					}
				}
				row = append(row, first.Row(i)[j])
			}
		}
		out.AddRow(row...)
	}
	return out, nil
}
