package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders an aligned plain-text table, the output
// format used by cmd/dsgbench to regenerate the experiment tables. It keeps
// the raw (typed) cell values alongside the display strings so the CSV/JSON
// emitters in emit.go and the repeat aggregator can work on full-precision
// data.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	raw     [][]interface{}
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	t.raw = append(t.raw, append([]interface{}(nil), cells...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.raw) }

// Row returns the raw (typed) cells of row i.
func (t *Table) Row(i int) []interface{} { return t.raw[i] }

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the formatted table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
