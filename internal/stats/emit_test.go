package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func demoTable(shift float64) *Table {
	t := NewTable("E0 — demo", "n", "workload", "mean dist", "ok")
	t.AddRow(32, "uniform", 3.25+shift, true)
	t.AddRow(64, "zipf(s=1.20)", 4.5+shift, true)
	return t
}

func TestTableCSV(t *testing.T) {
	got := demoTable(0).CSV()
	want := "n,workload,mean dist,ok\n" +
		"32,uniform,3.25,true\n" +
		"64,zipf(s=1.20),4.5,true\n"
	if got != want {
		t.Errorf("CSV:\n%s\nwant:\n%s", got, want)
	}
	// Byte stability: the same table must render identically every time.
	if again := demoTable(0).CSV(); again != got {
		t.Error("CSV output is not deterministic")
	}
}

func TestTableCSVFullPrecision(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(1.0 / 3.0)
	if got := tb.CSV(); !strings.Contains(got, "0.3333333333333333") {
		t.Errorf("CSV should keep full float precision, got %q", got)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := demoTable(0)
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"title":"E0 — demo"`, `"columns":["n","workload","mean dist","ok"]`, `3.25`, `true`} {
		if !strings.Contains(string(data), frag) {
			t.Errorf("JSON %s lacks %s", data, frag)
		}
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != tb.Title || back.NumRows() != tb.NumRows() {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// JSON numbers decode as float64; CSV form must still agree cell-for-cell.
	if back.CSV() != tb.CSV() {
		t.Errorf("round-tripped CSV differs:\n%s\nvs\n%s", back.CSV(), tb.CSV())
	}
}

func TestTableJSONEmpty(t *testing.T) {
	data, err := json.Marshal(NewTable("empty", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"rows":[]`) {
		t.Errorf("empty table should marshal rows as [], got %s", data)
	}
}

func TestAggregate(t *testing.T) {
	agg, err := Aggregate([]*Table{demoTable(0), demoTable(1)})
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"n", "n sd", "workload", "mean dist", "mean dist sd", "ok"}
	if len(agg.Columns) != len(wantCols) {
		t.Fatalf("columns = %v, want %v", agg.Columns, wantCols)
	}
	for i, c := range wantCols {
		if agg.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", agg.Columns, wantCols)
		}
	}
	row := agg.Row(0) // n, n sd, workload, mean, sd, ok
	if m, _ := asFloat(row[3]); m != 3.75 {
		t.Errorf("mean = %v, want 3.75", row[3])
	}
	// Sample stddev of {3.25, 4.25} is sqrt(0.5) ≈ 0.7071.
	if sd, _ := asFloat(row[4]); sd < 0.707 || sd > 0.708 {
		t.Errorf("stddev = %v, want ~0.7071", row[4])
	}
	if ok, isBool := row[5].(bool); !isBool || !ok {
		t.Errorf("ok column = %v, want true", row[5])
	}
}

func TestAggregateSingle(t *testing.T) {
	tb := demoTable(0)
	agg, err := Aggregate([]*Table{tb})
	if err != nil {
		t.Fatal(err)
	}
	if agg != tb {
		t.Error("aggregating one table should return it unchanged")
	}
}

func TestAggregateBoolConjunction(t *testing.T) {
	a := NewTable("", "ok")
	a.AddRow(true)
	b := NewTable("", "ok")
	b.AddRow(false)
	agg, err := Aggregate([]*Table{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if ok := agg.Row(0)[0].(bool); ok {
		t.Error("a bound failing in any repeat must report false")
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate(nil); err == nil {
		t.Error("empty input should error")
	}
	a := NewTable("", "x")
	a.AddRow(1)
	b := NewTable("", "x", "y")
	b.AddRow(1, 2)
	if _, err := Aggregate([]*Table{a, b}); err == nil {
		t.Error("shape mismatch should error")
	}
	c := NewTable("", "w")
	c.AddRow("uniform")
	d := NewTable("", "w")
	d.AddRow("zipf")
	if _, err := Aggregate([]*Table{c, d}); err == nil {
		t.Error("diverging key column should error")
	}
}
