package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {255, 0}, {256, 0},
		{257, 1}, {512, 1},
		{513, 2}, {1024, 2},
		{int64(BucketBound(NumBuckets - 1)), NumBuckets - 1},
		{int64(BucketBound(NumBuckets-1)) + 1, NumBuckets},
		{1 << 62, NumBuckets},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every finite bucket's bound must land in its own bucket.
	for i := 0; i < NumBuckets; i++ {
		if got := bucketOf(int64(BucketBound(i))); got != i {
			t.Errorf("bucketOf(BucketBound(%d)) = %d", i, got)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", q)
	}
	// 99 fast observations and 1 slow one: p50 stays in the fast bucket,
	// p99+ sees the slow one.
	for i := 0; i < 99; i++ {
		h.Observe(200 * time.Nanosecond)
	}
	h.Observe(100 * time.Microsecond)
	if c := h.Count(); c != 100 {
		t.Fatalf("count = %d, want 100", c)
	}
	if p50 := h.Quantile(0.50); p50 != BucketBound(0) {
		t.Errorf("p50 = %v, want %v", p50, BucketBound(0))
	}
	p999 := h.Quantile(0.999)
	if p999 < 100*time.Microsecond {
		t.Errorf("p99.9 = %v, want ≥ 100µs", p999)
	}
	buckets, sum, count := h.Snapshot()
	if buckets[0] != 99 {
		t.Errorf("bucket[0] = %d, want 99", buckets[0])
	}
	if wantSum := int64(99*200 + 100_000); sum != wantSum {
		t.Errorf("sum = %d, want %d", sum, wantSum)
	}
	if count != 100 {
		t.Errorf("snapshot count = %d, want 100", count)
	}
}

func TestHistogramNegativeDurationClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	buckets, sum, _ := h.Snapshot()
	if buckets[0] != 1 || sum != 0 {
		t.Fatalf("negative observation: bucket[0]=%d sum=%d, want 1/0", buckets[0], sum)
	}
}

func TestSpanRingKeepsSlowest(t *testing.T) {
	tr := NewTracerN(4)
	for i := int64(1); i <= 10; i++ {
		tr.RecordSpan(Span{Seq: i, TotalNanos: i * 100})
	}
	got := tr.SlowSpans(0)
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	for i, want := range []int64{1000, 900, 800, 700} {
		if got[i].TotalNanos != want {
			t.Errorf("slowest[%d].TotalNanos = %d, want %d", i, got[i].TotalNanos, want)
		}
	}
	// Once full, a too-fast span must not be admitted (and WouldRecord
	// must agree before the caller even builds the span).
	if tr.WouldRecord(600) {
		t.Error("WouldRecord(600) = true with min retained 700")
	}
	if !tr.WouldRecord(800) {
		t.Error("WouldRecord(800) = false with min retained 700")
	}
	tr.RecordSpan(Span{Seq: 99, TotalNanos: 600})
	if got := tr.SlowSpans(0); got[len(got)-1].TotalNanos != 700 {
		t.Errorf("fast span displaced a slower one: min = %d", got[len(got)-1].TotalNanos)
	}
	// Limit truncates.
	if got := tr.SlowSpans(2); len(got) != 2 || got[0].TotalNanos != 1000 {
		t.Errorf("SlowSpans(2) = %+v", got)
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	tr := NewTracerN(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.RecordSpan(Span{Seq: int64(w*1000 + i), TotalNanos: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	got := tr.SlowSpans(0)
	if len(got) != 8 {
		t.Fatalf("retained %d spans, want 8", len(got))
	}
	// Every retained span must be among the slowest observed values
	// (999 was recorded by all four workers; the 8 slowest all have
	// TotalNanos ≥ 998).
	for _, s := range got {
		if s.TotalNanos < 998 {
			t.Errorf("retained span with TotalNanos=%d, want ≥ 998", s.TotalNanos)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.ObserveOp(KindGet, time.Millisecond)
	tr.ObserveStage(StageRouteLeg, time.Millisecond)
	tr.RetryEvent(EventShed)
	tr.RecordSpan(Span{TotalNanos: 1})
	if tr.WouldRecord(1) {
		t.Error("nil tracer WouldRecord = true")
	}
	if got := tr.SlowSpans(0); got != nil {
		t.Errorf("nil tracer SlowSpans = %v", got)
	}
	if got := tr.VerbLatencies(); got != nil {
		t.Errorf("nil tracer VerbLatencies = %v", got)
	}
	if tr.RetryEvents(EventShed) != 0 {
		t.Error("nil tracer RetryEvents != 0")
	}
	if tr.VerbHistogram(KindGet) != nil || tr.StageHistogram(StageRouteLeg) != nil {
		t.Error("nil tracer histograms are non-nil")
	}
}

func TestTracerVerbLatencies(t *testing.T) {
	tr := NewTracer()
	tr.ObserveOp(KindRoute, 300*time.Nanosecond)
	tr.ObserveOp(KindRoute, 300*time.Nanosecond)
	tr.ObserveOp(KindScan, 2*time.Microsecond)
	tr.ObserveOp(int64(-1), time.Second) // out of range: dropped
	tr.ObserveOp(NumKinds(), time.Second)
	ls := tr.VerbLatencies()
	if len(ls) != 2 {
		t.Fatalf("VerbLatencies = %+v, want 2 entries", ls)
	}
	if ls[0].Kind != KindRoute || ls[0].Count != 2 {
		t.Errorf("ls[0] = %+v", ls[0])
	}
	if ls[1].Kind != KindScan || ls[1].Count != 1 {
		t.Errorf("ls[1] = %+v", ls[1])
	}
	if ls[0].P50Nanos <= 0 || ls[0].P99Nanos < ls[0].P50Nanos {
		t.Errorf("quantiles out of order: %+v", ls[0])
	}
}

func TestTracerRetryEvents(t *testing.T) {
	tr := NewTracer()
	tr.RetryEvent(EventShed)
	tr.RetryEvent(EventShed)
	tr.RetryEvent(EventDeadRoute)
	tr.RetryEvent(-1) // dropped
	tr.RetryEvent(NumEvents())
	if got := tr.RetryEvents(EventShed); got != 2 {
		t.Errorf("shed = %d, want 2", got)
	}
	if got := tr.RetryEvents(EventUnknownKey); got != 0 {
		t.Errorf("unknown_key = %d, want 0", got)
	}
	if got := tr.RetryEvents(EventDeadRoute); got != 1 {
		t.Errorf("dead_route = %d, want 1", got)
	}
}

func TestNames(t *testing.T) {
	for k, want := range map[int64]string{
		KindRoute: "route", KindGet: "get", KindPut: "put",
		KindDelete: "delete", KindScan: "scan", 99: "kind(99)",
	} {
		if got := KindName(k); got != want {
			t.Errorf("KindName(%d) = %q, want %q", k, got, want)
		}
	}
	if StageName(StageRouteLeg) != "route_leg" || StageName(StageAdjustApply) != "adjust_apply" {
		t.Error("stage names changed")
	}
	if EventName(EventShed) != "shed" || EventName(EventUnknownKey) != "unknown_key" || EventName(EventDeadRoute) != "dead_route" {
		t.Error("event names changed")
	}
	if StageName(99) != "stage(99)" || EventName(99) != "event(99)" {
		t.Error("out-of-range names changed")
	}
}

func TestBucketBoundsRender(t *testing.T) {
	// The collector renders bounds in seconds with %g; make sure the
	// smallest and largest are sane and strictly increasing.
	prev := time.Duration(0)
	for i := 0; i < NumBuckets; i++ {
		b := BucketBound(i)
		if b <= prev {
			t.Fatalf("bound %d (%v) not greater than previous (%v)", i, b, prev)
		}
		prev = b
	}
	if BucketBound(0) != 256*time.Nanosecond {
		t.Errorf("first bound = %v", BucketBound(0))
	}
	if BucketBound(NumBuckets-1) < time.Minute {
		t.Errorf("last finite bound = %v, want ≥ 1m", BucketBound(NumBuckets-1))
	}
	_ = fmt.Sprintf("%g", BucketBound(0).Seconds())
}
