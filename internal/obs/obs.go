// Package obs is the serving stack's low-overhead observability layer:
// fixed-boundary log₂-bucket latency histograms (per op verb and per
// pipeline stage), retry-event counters, and a slowest-N span ring holding
// exemplar per-op traces with their per-leg breakdowns.
//
// Everything on the hot path is a handful of atomics — no locks, no
// allocation — and every call site threads through a *Tracer that may be
// nil, in which case the instrumented layer skips even the clock reads.
// Wall-clock measurements never feed the deterministic serving statistics:
// span durations are exempt from the byte-identical golden contracts
// exactly like E17's req/s columns, while the batch-domain span fields
// (epoch, distance, hops, adjustment lag) stay deterministic.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// --- histograms -------------------------------------------------------------

const (
	// NumBuckets is the number of finite histogram buckets. Bucket i counts
	// observations ≤ BucketBound(i); one extra overflow bucket catches the
	// rest. Bounds double from 256ns, so the finite range tops out around
	// two minutes — far past any sane op latency.
	NumBuckets = 30

	// firstBoundNanos is the smallest bucket's upper bound.
	firstBoundNanos = 256
)

// BucketBound returns the upper bound of finite bucket i.
func BucketBound(i int) time.Duration {
	return time.Duration(int64(firstBoundNanos) << uint(i))
}

// bucketOf maps a duration in nanoseconds onto its bucket index
// (NumBuckets = the overflow bucket).
func bucketOf(ns int64) int {
	if ns <= firstBoundNanos {
		return 0
	}
	i := bits.Len64(uint64(ns-1)) - 8
	if i >= NumBuckets {
		return NumBuckets
	}
	return i
}

// Histogram is a fixed-boundary log₂-bucket latency histogram. Observe is
// two atomic adds — the observation count is derived from the buckets at
// read time, keeping the hot path minimal; rendering and quantile
// estimation read a consistent enough snapshot for monitoring (individual
// loads race in-flight observations, as every lock-free collector does).
type Histogram struct {
	buckets [NumBuckets + 1]atomic.Int64
	sum     atomic.Int64 // total nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// Snapshot copies the bucket counts plus the running sum and count.
func (h *Histogram) Snapshot() (buckets [NumBuckets + 1]int64, sumNanos, count int64) {
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		count += buckets[i]
	}
	return buckets, h.sum.Load(), count
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var c int64
	for i := range h.buckets {
		c += h.buckets[i].Load()
	}
	return c
}

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket holding the rank — the standard upper-bound estimate for
// fixed-boundary histograms. It returns 0 for an empty histogram; ranks
// landing in the overflow bucket report the largest finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	buckets, _, count := h.Snapshot()
	if count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += buckets[i]
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// --- spans ------------------------------------------------------------------

// Span kinds mirror the op envelope's kinds (core.OpKind / lsasg.OpKind
// values), kept as plain integers so the wire codec round-trips spans
// without an import cycle.
const (
	KindRoute int64 = iota
	KindGet
	KindPut
	KindDelete
	KindScan
	numKinds
)

// KindName names a span kind for rendering.
func KindName(k int64) string {
	switch k {
	case KindRoute:
		return "route"
	case KindGet:
		return "get"
	case KindPut:
		return "put"
	case KindDelete:
		return "delete"
	case KindScan:
		return "scan"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// LegSpan is one engine leg of an op: the snapshot work of one shard's
// pipeline. Single-graph ops have exactly one leg; cross-shard routes and
// fanned scans carry one per participating shard. Nanos is wall time
// (exempt from the determinism contracts); everything else is
// batch-domain and deterministic.
type LegSpan struct {
	Shard     int64
	Distance  int64
	Hops      int64
	AdjustLag int64
	Epoch     int64
	Nanos     int64
}

// Span is one op's compact trace record: identity (Seq, Kind, Src, Dst),
// the deterministic access-path measurements summed over its legs, and the
// wall-clock service time. Start is unix nanoseconds at record time; Start
// and TotalNanos (and the legs' Nanos) are the only wall-clock fields.
type Span struct {
	Seq        int64
	Kind       int64
	Src, Dst   int64
	Start      int64 // unix nanoseconds when the span was recorded
	TotalNanos int64 // summed leg service time (snapshot-side work)

	Epoch         int64 // snapshot epoch of the first leg
	RouteDistance int64
	RouteHops     int64
	AdjustLag     int64
	RouteMiss     bool
	Cross         bool // the op spanned more than one shard

	Legs []LegSpan
}

// DefaultRingSize is the slowest-span ring capacity.
const DefaultRingSize = 64

// spanRing retains the slowest-N spans seen so far: a min-heap on
// TotalNanos under a mutex, gated by an atomic admission threshold so that
// once the ring is full, faster-than-everything ops skip the lock (and the
// span allocation — see Tracer.WouldRecord) entirely.
type spanRing struct {
	min  atomic.Int64 // admission threshold once full; 0 admits everything
	mu   sync.Mutex
	cap  int
	heap []Span // min-heap on TotalNanos
}

func (r *spanRing) record(s Span) {
	if len(r.heap) == r.cap && s.TotalNanos <= r.min.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.heap) < r.cap {
		r.heap = append(r.heap, s)
		r.up(len(r.heap) - 1)
	} else {
		if s.TotalNanos <= r.heap[0].TotalNanos {
			return // raced a concurrent admit
		}
		r.heap[0] = s
		r.down(0)
	}
	if len(r.heap) == r.cap {
		r.min.Store(r.heap[0].TotalNanos)
	}
}

func (r *spanRing) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if r.heap[p].TotalNanos <= r.heap[i].TotalNanos {
			return
		}
		r.heap[p], r.heap[i] = r.heap[i], r.heap[p]
		i = p
	}
}

func (r *spanRing) down(i int) {
	n := len(r.heap)
	for {
		l, s := 2*i+1, i
		if l < n && r.heap[l].TotalNanos < r.heap[s].TotalNanos {
			s = l
		}
		if l+1 < n && r.heap[l+1].TotalNanos < r.heap[s].TotalNanos {
			s = l + 1
		}
		if s == i {
			return
		}
		r.heap[s], r.heap[i] = r.heap[i], r.heap[s]
		i = s
	}
}

func (r *spanRing) slowest(limit int) []Span {
	r.mu.Lock()
	out := make([]Span, len(r.heap))
	copy(out, r.heap)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNanos != out[j].TotalNanos {
			return out[i].TotalNanos > out[j].TotalNanos
		}
		return out[i].Seq < out[j].Seq
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// --- stages and retry events ------------------------------------------------

// Pipeline stages with their own latency histograms.
const (
	// StageRouteLeg is one engine leg's snapshot-side work: the parallel
	// route (plus any Get/Scan snapshot read) of one op within a batch.
	StageRouteLeg = iota
	// StageAdjustApply is one batch's serialized adjuster pass: every
	// mutation of the batch applied in sequence order.
	StageAdjustApply
	numStages
)

// StageName names a stage for metric labels.
func StageName(s int) string {
	switch s {
	case StageRouteLeg:
		return "route_leg"
	case StageAdjustApply:
		return "adjust_apply"
	}
	return fmt.Sprintf("stage(%d)", s)
}

// Retry events: transient conditions that forced (or will force) an op to
// be retried or degraded.
const (
	// EventShed is a free-running adjustment dropped on a full queue.
	EventShed = iota
	// EventUnknownKey is an op that ran into lsasg.ErrUnknownKey — the
	// endpoint vanished mid-flight (deleted or migrated); retryable.
	EventUnknownKey
	// EventDeadRoute is a route that detected a crash-failed peer
	// (skipgraph.DeadRouteError) before its repair landed.
	EventDeadRoute
	numEvents
)

// EventName names a retry event for metric labels.
func EventName(e int) string {
	switch e {
	case EventShed:
		return "shed"
	case EventUnknownKey:
		return "unknown_key"
	case EventDeadRoute:
		return "dead_route"
	}
	return fmt.Sprintf("event(%d)", e)
}

// --- tracer -----------------------------------------------------------------

// VerbLatency is one verb's latency summary: observation count plus the
// p50/p99 upper-bound estimates, in nanoseconds.
type VerbLatency struct {
	Kind     int64
	Count    int64
	P50Nanos int64
	P99Nanos int64
}

// Tracer bundles the observability state one serving stack shares: per-verb
// and per-stage latency histograms, retry-event counters, and the
// slowest-span ring. A nil *Tracer is valid everywhere and disables
// everything — instrumented layers check for nil before reading the clock,
// so the disabled cost is one predictable branch per choke point.
type Tracer struct {
	verbs   [numKinds]Histogram
	stages  [numStages]Histogram
	retries [numEvents]atomic.Int64
	ring    spanRing
}

// NewTracer creates a tracer with the default slowest-span ring size.
func NewTracer() *Tracer { return NewTracerN(DefaultRingSize) }

// NewTracerN creates a tracer retaining the n slowest spans (n ≥ 1).
func NewTracerN(n int) *Tracer {
	if n < 1 {
		n = 1
	}
	t := &Tracer{}
	t.ring.cap = n
	t.ring.heap = make([]Span, 0, n)
	return t
}

// ObserveOp records one completed op's service time under its verb.
func (t *Tracer) ObserveOp(kind int64, d time.Duration) {
	if t == nil || kind < 0 || kind >= numKinds {
		return
	}
	t.verbs[kind].Observe(d)
}

// ObserveStage records one pipeline-stage duration.
func (t *Tracer) ObserveStage(stage int, d time.Duration) {
	if t == nil || stage < 0 || stage >= numStages {
		return
	}
	t.stages[stage].Observe(d)
}

// RetryEvent counts one transient retry condition.
func (t *Tracer) RetryEvent(event int) {
	if t == nil || event < 0 || event >= numEvents {
		return
	}
	t.retries[event].Add(1)
}

// RetryEvents returns the counter for one event.
func (t *Tracer) RetryEvents(event int) int64 {
	if t == nil || event < 0 || event >= numEvents {
		return 0
	}
	return t.retries[event].Load()
}

// WouldRecord reports whether a span of the given duration would currently
// be admitted to the slowest-span ring — the allocation-free pre-check
// callers use to skip building the span (and its legs slice) for the fast
// majority of ops once the ring has warmed up.
func (t *Tracer) WouldRecord(totalNanos int64) bool {
	if t == nil {
		return false
	}
	return len(t.ring.heap) < t.ring.cap || totalNanos > t.ring.min.Load()
}

// RecordSpan offers one span to the slowest-span ring.
func (t *Tracer) RecordSpan(s Span) {
	if t == nil {
		return
	}
	t.ring.record(s)
}

// SlowSpans returns up to limit retained spans, slowest first (limit ≤ 0
// returns all of them).
func (t *Tracer) SlowSpans(limit int) []Span {
	if t == nil {
		return nil
	}
	return t.ring.slowest(limit)
}

// VerbHistogram exposes one verb's latency histogram (nil kind → nil).
func (t *Tracer) VerbHistogram(kind int64) *Histogram {
	if t == nil || kind < 0 || kind >= numKinds {
		return nil
	}
	return &t.verbs[kind]
}

// StageHistogram exposes one stage's latency histogram.
func (t *Tracer) StageHistogram(stage int) *Histogram {
	if t == nil || stage < 0 || stage >= numStages {
		return nil
	}
	return &t.stages[stage]
}

// VerbLatencies summarizes every verb with at least one observation, in
// kind order.
func (t *Tracer) VerbLatencies() []VerbLatency {
	if t == nil {
		return nil
	}
	var out []VerbLatency
	for k := int64(0); k < numKinds; k++ {
		h := &t.verbs[k]
		c := h.Count()
		if c == 0 {
			continue
		}
		out = append(out, VerbLatency{
			Kind:     k,
			Count:    c,
			P50Nanos: int64(h.Quantile(0.50)),
			P99Nanos: int64(h.Quantile(0.99)),
		})
	}
	return out
}

// NumKinds returns the number of span kinds (for renderers iterating the
// verb histograms).
func NumKinds() int64 { return numKinds }

// NumStages returns the number of pipeline stages.
func NumStages() int { return numStages }

// NumEvents returns the number of retry-event kinds.
func NumEvents() int { return numEvents }
