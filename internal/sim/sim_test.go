package sim

import (
	"math/rand"
	"testing"

	"lsasg/internal/skipgraph"
	"lsasg/internal/skiplist"
)

// echoProc sends one message to a peer and stops.
type echoProc struct {
	id, peer NodeID
	sent     bool
	got      bool
}

func (p *echoProc) Step(_ int, inbox []Message) []Message {
	for _, m := range inbox {
		if m.Kind == "ping" {
			p.got = true
		}
	}
	if p.sent {
		return nil
	}
	p.sent = true
	return []Message{{From: p.id, To: p.peer, Kind: "ping", Ints: []int64{1}}}
}

func (p *echoProc) Done() bool { return p.sent && p.got }

func TestEngineBasics(t *testing.T) {
	e := NewEngine()
	a := &echoProc{id: 0, peer: 1}
	b := &echoProc{id: 1, peer: 0}
	e.Add(0, a)
	e.Add(1, b)
	rounds, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 1 || rounds > 3 {
		t.Fatalf("rounds = %d", rounds)
	}
	if e.Messages != 2 {
		t.Fatalf("messages = %d, want 2", e.Messages)
	}
	if e.MaxLinkLoad > 1 {
		t.Fatalf("link load %d violates CONGEST", e.MaxLinkLoad)
	}
}

type congestViolator struct{ fired bool }

func (p *congestViolator) Step(_ int, _ []Message) []Message {
	if p.fired {
		return nil
	}
	p.fired = true
	big := make([]int64, 100)
	return []Message{{From: 0, To: 0, Kind: "big", Ints: big}}
}
func (p *congestViolator) Done() bool { return p.fired }

func TestEngineRejectsOversizedMessage(t *testing.T) {
	e := NewEngine()
	e.Add(0, &congestViolator{})
	if _, err := e.Run(5); err == nil {
		t.Fatal("oversized message accepted")
	}
}

// TestDistributedRouteMatchesSequential (experiment E12): the token-passing
// routing takes exactly RouteResult.Hops rounds and the same hop count.
func TestDistributedRouteMatchesSequential(t *testing.T) {
	g := skipgraph.NewRandom(48, 5)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 60; i++ {
		a := int64(rng.Intn(48))
		b := int64(rng.Intn(48))
		seq, err := g.RouteKeys(skipgraph.KeyOf(a), skipgraph.KeyOf(b))
		if err != nil {
			t.Fatal(err)
		}
		dist, err := DistributedRoute(g, skipgraph.KeyOf(a), skipgraph.KeyOf(b))
		if err != nil {
			t.Fatalf("route %d→%d: %v", a, b, err)
		}
		if int(dist.Hops) != seq.Hops() {
			t.Errorf("route %d→%d: distributed hops %d, sequential %d", a, b, dist.Hops, seq.Hops())
		}
		if a != b && dist.Rounds != seq.Hops() {
			t.Errorf("route %d→%d: rounds %d, want %d (one hop per round)", a, b, dist.Rounds, seq.Hops())
		}
	}
}

// TestDistributedSumMatches (experiment E12): the message-passing fold
// computes the exact sum, within the sequential round estimate.
func TestDistributedSumMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 9, 64, 300} {
		sl := skiplist.Build(n, 4, rng)
		values := make([]int64, n)
		var want int64
		for i := range values {
			values[i] = int64(rng.Intn(100))
			want += values[i]
		}
		out, err := DistributedSum(sl, values)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if out.Total != want {
			t.Fatalf("n=%d: total %d, want %d", n, out.Total, want)
		}
		_, seqRounds := sl.Sum(values)
		// The sequential accounting adds a broadcast and runs levels
		// sequentially, so the pipelined execution must not exceed it.
		if out.Rounds > seqRounds {
			t.Errorf("n=%d: distributed rounds %d exceed sequential estimate %d",
				n, out.Rounds, seqRounds)
		}
	}
}

func TestDistributedSumSizeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sl := skiplist.Build(4, 2, rng)
	if _, err := DistributedSum(sl, make([]int64, 3)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

type forever struct{}

func (forever) Step(_ int, _ []Message) []Message { return nil }
func (forever) Done() bool                        { return false }

func TestEngineTimeout(t *testing.T) {
	e := NewEngine()
	e.Add(0, forever{})
	if _, err := e.Run(3); err == nil {
		t.Fatal("no timeout error")
	}
}
