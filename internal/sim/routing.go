package sim

import (
	"fmt"

	"lsasg/internal/skipgraph"
)

// routerProc is the node-local standard skip-graph routing protocol
// (Appendix B) run as a message-passing process: a routing token hops
// greedily toward the destination, one link per round.
type routerProc struct {
	id     NodeID
	key    skipgraph.Key
	next   []NodeID // level-i right neighbour (or -1)
	prev   []NodeID // level-i left neighbour (or -1)
	keys   map[NodeID]skipgraph.Key
	done   bool
	arrive func(hops int64)
}

// Step implements Process.
func (r *routerProc) Step(_ int, inbox []Message) []Message {
	var out []Message
	for _, m := range inbox {
		if m.Kind != "route" {
			continue
		}
		dst := NodeID(m.Ints[0])
		level := int(m.Ints[1])
		hops := m.Ints[2]
		if dst == r.id {
			r.done = true
			if r.arrive != nil {
				r.arrive(hops)
			}
			continue
		}
		out = append(out, r.forward(dst, level, hops))
	}
	return out
}

// forward applies one step of Appendix B: move toward the destination at
// the highest level whose next node does not overshoot.
func (r *routerProc) forward(dst NodeID, level int, hops int64) Message {
	target := r.keys[dst]
	rightward := r.key.Less(target)
	for lvl := level; lvl >= 0; lvl-- {
		var hop NodeID = -1
		if rightward {
			if n := r.next[lvl]; n >= 0 && !target.Less(r.keys[n]) {
				hop = n
			}
		} else {
			if p := r.prev[lvl]; p >= 0 && !r.keys[p].Less(target) {
				hop = p
			}
		}
		if hop >= 0 {
			return Message{From: r.id, To: hop, Kind: "route", Ints: []int64{int64(dst), int64(lvl), hops + 1}}
		}
	}
	panic(fmt.Sprintf("sim: routing stuck at %v toward %v", r.key, target))
}

// Done implements Process. Routers are passive relays: they are always
// quiescent; the engine keeps running while the token (a pending message)
// is in flight.
func (r *routerProc) Done() bool { return true }

// RouteOutcome reports a distributed routing execution.
type RouteOutcome struct {
	Hops   int64 // link traversals taken by the token
	Rounds int   // synchronous rounds until delivery
}

// DistributedRoute runs the standard skip-graph routing src → dst as a
// message-passing protocol over the given graph and returns the hops and
// rounds measured by the engine. It validates that the sequential
// RouteResult matches a genuinely distributed execution.
func DistributedRoute(g *skipgraph.Graph, src, dst skipgraph.Key) (RouteOutcome, error) {
	nodes := g.Nodes()
	ids := make(map[skipgraph.Key]NodeID, len(nodes))
	for i, n := range nodes {
		ids[n.Key()] = NodeID(i)
	}
	keys := make(map[NodeID]skipgraph.Key, len(nodes))
	for k, id := range ids {
		keys[id] = k
	}
	var outcome RouteOutcome
	eng := NewEngine()
	var procs []*routerProc
	for i, n := range nodes {
		top := n.MaxLinkedLevel()
		p := &routerProc{id: NodeID(i), key: n.Key(), keys: keys}
		p.next = make([]NodeID, top+1)
		p.prev = make([]NodeID, top+1)
		for lvl := 0; lvl <= top; lvl++ {
			p.next[lvl], p.prev[lvl] = -1, -1
			if nn := n.Next(lvl); nn != nil {
				p.next[lvl] = ids[nn.Key()]
			}
			if pp := n.Prev(lvl); pp != nil {
				p.prev[lvl] = ids[pp.Key()]
			}
		}
		p.arrive = func(hops int64) { outcome.Hops = hops }
		procs = append(procs, p)
		eng.Add(p.id, p)
	}
	srcID, ok := ids[src]
	if !ok {
		return outcome, fmt.Errorf("sim: unknown source %v", src)
	}
	dstID, ok := ids[dst]
	if !ok {
		return outcome, fmt.Errorf("sim: unknown destination %v", dst)
	}
	if srcID == dstID {
		return outcome, nil
	}
	// Inject the token: the source "receives" the request in round 1.
	sp := procs[srcID]
	start := sp.forward(dstID, len(sp.next)-1, 0)
	eng.inboxes[start.To] = []Message{start}
	eng.Messages++
	rounds, err := eng.Run(16 * (g.N() + 2))
	if err != nil {
		return outcome, err
	}
	outcome.Rounds = rounds
	return outcome, nil
}
