package sim

import (
	"fmt"

	"lsasg/internal/skiplist"
)

// sumProc is the node-local distributed-sum protocol of Appendix D run
// over a balanced skip list. At each level, a node that did not step up
// forwards its running subtotal to its left neighbour at that level; the
// subtotal thus flows hop by hop into the nearest left member of the next
// level, exactly like AMF's leftward gather. A node advances to its next
// level once its inflow at the current level (at most one message, from
// its adjacent right neighbour) has arrived.
type sumProc struct {
	id     NodeID
	top    int      // highest skip-list level this node belongs to
	left   []NodeID // left neighbour per level (or -1)
	inflow []bool   // expect a message at this level?

	level   int
	sum     int64
	pending map[int]int64 // early arrivals per level
	got     map[int]bool

	isHead bool
	total  *int64
	sent   bool
	done   bool
}

// Step implements Process.
func (p *sumProc) Step(_ int, inbox []Message) []Message {
	for _, m := range inbox {
		if m.Kind != "sum" {
			continue
		}
		lvl := int(m.Ints[1])
		p.pending[lvl] += m.Ints[0]
		p.got[lvl] = true
	}
	if p.done {
		return nil
	}
	for {
		if p.inflow[p.level] && !p.got[p.level] {
			return nil // wait for the chain on this level
		}
		p.sum += p.pending[p.level]
		p.pending[p.level] = 0
		if p.level < p.top {
			p.level++
			continue
		}
		// Topmost level reached with complete inflow: fold left or finish.
		p.done = true
		if p.isHead {
			*p.total = p.sum
			return nil
		}
		return []Message{{
			From: p.id, To: p.left[p.level], Kind: "sum",
			Ints: []int64{p.sum, int64(p.level)},
		}}
	}
}

// Done implements Process.
func (p *sumProc) Done() bool { return p.done }

// SumOutcome reports a distributed sum execution.
type SumOutcome struct {
	Total  int64
	Rounds int
}

// DistributedSum executes the Appendix D distributed sum over the given
// balanced skip list as a message-passing protocol and returns the total
// and the measured rounds (gather only; the sequential accounting adds a
// broadcast costing BroadcastRounds more). Because independent segments
// pipeline here while the paper's accounting sums per-level maxima, the
// measured rounds are at most the sequential estimate; experiment E12
// checks both that and the exact total.
func DistributedSum(sl *skiplist.SkipList, values []int64) (SumOutcome, error) {
	n := sl.N()
	if len(values) != n {
		return SumOutcome{}, fmt.Errorf("sim: %d values for %d positions", len(values), n)
	}
	top := make([]int, n)
	for d := 0; d <= sl.Height(); d++ {
		for _, pos := range sl.Level(d) {
			top[pos] = d
		}
	}
	procs := make([]*sumProc, n)
	head := sl.Level(0)[0]
	for pos := 0; pos < n; pos++ {
		procs[pos] = &sumProc{
			id:      NodeID(pos),
			top:     top[pos],
			left:    make([]NodeID, top[pos]+1),
			inflow:  make([]bool, top[pos]+1),
			sum:     values[pos],
			pending: make(map[int]int64),
			got:     make(map[int]bool),
			isHead:  pos == head,
		}
		for i := range procs[pos].left {
			procs[pos].left[i] = -1
		}
	}
	procs[head].total = new(int64)
	for d := 0; d <= sl.Height(); d++ {
		members := sl.Level(d)
		for i, pos := range members {
			if i > 0 {
				procs[pos].left[d] = NodeID(members[i-1])
			}
			// Inflow at level d: the adjacent right member exists and tops
			// out exactly at d (so it will fold leftward into us).
			if i+1 < len(members) && top[members[i+1]] == d {
				procs[pos].inflow[d] = true
			}
		}
	}
	eng := NewEngine()
	for _, p := range procs {
		eng.Add(p.id, p)
	}
	rounds, err := eng.Run(16 * (n + 2))
	if err != nil {
		return SumOutcome{}, err
	}
	return SumOutcome{Total: *procs[head].total, Rounds: rounds}, nil
}
