// Package sim is a synchronous round-based message-passing simulator for
// the CONGEST model the paper assumes (§III): computation proceeds in
// rounds; per round a node may send at most one message over each link,
// and every message is limited to O(log n) bits.
//
// The package hosts genuinely distributed executions of the building
// blocks — skip-graph routing (Appendix B) and the skip-list gather/sum
// behind AMF (Appendix D) — whose measured round counts validate the
// analytical round accounting used by the sequential DSG implementation
// (experiment E12 in docs/EXPERIMENTS.md).
package sim
