package sim

import (
	"math/rand"
	"testing"

	"lsasg/internal/skipgraph"
	"lsasg/internal/skiplist"
)

// simFingerprint captures everything a seeded E12-style run can vary on:
// the per-execution rounds, totals, and hop counts of a fixed set of
// distributed sums and routes.
type simFingerprint struct {
	SumRounds []int
	SumTotals []int64
	Hops      []int64
	RouteRnds []int
}

// runSeededSim executes the same seeded workload the E12 experiment uses:
// pipelined skip-list sums and token-passing routes. Every call must
// produce identical results — the engine schedules processes in NodeID
// order, so no map-iteration nondeterminism can leak into the outcome.
func runSeededSim(t *testing.T) simFingerprint {
	t.Helper()
	var fp simFingerprint
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4; trial++ {
		n := 50 + 25*trial
		sl := skiplist.Build(n, 4, rng)
		values := make([]int64, n)
		for i := range values {
			values[i] = int64(rng.Intn(1000))
		}
		out, err := DistributedSum(sl, values)
		if err != nil {
			t.Fatal(err)
		}
		fp.SumRounds = append(fp.SumRounds, out.Rounds)
		fp.SumTotals = append(fp.SumTotals, out.Total)
	}
	g := skipgraph.NewRandom(64, 17)
	for i := 0; i < 20; i++ {
		a := int64(rng.Intn(64))
		b := int64(rng.Intn(64))
		res, err := DistributedRoute(g, skipgraph.KeyOf(a), skipgraph.KeyOf(b))
		if err != nil {
			t.Fatal(err)
		}
		fp.Hops = append(fp.Hops, res.Hops)
		fp.RouteRnds = append(fp.RouteRnds, res.Rounds)
	}
	return fp
}

// TestEngineDeterministic is the regression test for the engine's schedule:
// the same seeded workload run twice must agree on every round and hop
// count. Before the engine iterated NodeIDs in sorted order, map iteration
// made message emission — and with it seeded E12 results — irreproducible.
// Run under -count=2 to also cover cross-process variation of map seeds.
func TestEngineDeterministic(t *testing.T) {
	first := runSeededSim(t)
	second := runSeededSim(t)
	for i := range first.SumRounds {
		if first.SumRounds[i] != second.SumRounds[i] || first.SumTotals[i] != second.SumTotals[i] {
			t.Fatalf("sum %d not reproducible: rounds %d vs %d, total %d vs %d",
				i, first.SumRounds[i], second.SumRounds[i], first.SumTotals[i], second.SumTotals[i])
		}
	}
	for i := range first.Hops {
		if first.Hops[i] != second.Hops[i] || first.RouteRnds[i] != second.RouteRnds[i] {
			t.Fatalf("route %d not reproducible: hops %d vs %d, rounds %d vs %d",
				i, first.Hops[i], second.Hops[i], first.RouteRnds[i], second.RouteRnds[i])
		}
	}
}
