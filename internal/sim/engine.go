package sim

import (
	"fmt"
	"slices"
	"sort"
)

// NodeID identifies a simulated process.
type NodeID int

// Message is one O(log n)-bit datagram: a small fixed number of words.
type Message struct {
	From NodeID
	To   NodeID
	Kind string
	Ints []int64
}

// Process is a node-local protocol: each round it consumes its inbox and
// emits an outbox. A process signals completion via Done.
type Process interface {
	// Step runs one synchronous round. The inbox holds every message
	// delivered this round; the returned messages are delivered next round.
	Step(round int, inbox []Message) []Message
	// Done reports local termination (quiescence).
	Done() bool
}

// Engine drives a set of processes in synchronous rounds and enforces the
// CONGEST constraints.
type Engine struct {
	// MaxWords bounds the payload words per message (CONGEST: O(log n)
	// bits ≈ a constant number of machine words). Default 8.
	MaxWords int

	procs   map[NodeID]Process
	inboxes map[NodeID][]Message

	// Rounds is the number of rounds executed by the last Run.
	Rounds int
	// Messages counts all delivered messages in the last Run.
	Messages int
	// MaxLinkLoad is the maximum number of messages sent over a single
	// directed link in a single round (must be 1 in a valid execution).
	MaxLinkLoad int
}

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	return &Engine{
		MaxWords: 8,
		procs:    make(map[NodeID]Process),
		inboxes:  make(map[NodeID][]Message),
	}
}

// Add registers a process.
func (e *Engine) Add(id NodeID, p Process) {
	if _, dup := e.procs[id]; dup {
		panic(fmt.Sprintf("sim: duplicate process %d", id))
	}
	e.procs[id] = p
}

// Run executes rounds until every process is Done or maxRounds elapses.
// It returns the number of rounds executed and an error on CONGEST
// violations or timeout. Execution is deterministic: processes step in
// NodeID order and every inbox is sorted by sender, so two runs over the
// same seeded processes produce identical rounds, message counts, and
// message orderings (Go map iteration order would not).
func (e *Engine) Run(maxRounds int) (int, error) {
	e.Rounds, e.Messages, e.MaxLinkLoad = 0, 0, 0
	ids := make([]NodeID, 0, len(e.procs))
	for id := range e.procs {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for round := 1; round <= maxRounds; round++ {
		allDone := true
		for _, id := range ids {
			if !e.procs[id].Done() {
				allDone = false
				break
			}
		}
		if allDone && e.pendingMessages() == 0 {
			return e.Rounds, nil
		}
		e.Rounds = round

		next := make(map[NodeID][]Message)
		linkLoad := make(map[[2]NodeID]int)
		for _, id := range ids {
			p := e.procs[id]
			inbox := e.inboxes[id]
			out := p.Step(round, inbox)
			for _, m := range out {
				if m.From != id {
					return round, fmt.Errorf("sim: process %d forged sender %d", id, m.From)
				}
				if _, ok := e.procs[m.To]; !ok {
					return round, fmt.Errorf("sim: process %d sent to unknown %d", id, m.To)
				}
				if len(m.Ints) > e.MaxWords {
					return round, fmt.Errorf("sim: CONGEST violation: %d words on %d→%d (max %d)",
						len(m.Ints), m.From, m.To, e.MaxWords)
				}
				link := [2]NodeID{m.From, m.To}
				linkLoad[link]++
				if linkLoad[link] > 1 {
					return round, fmt.Errorf("sim: CONGEST violation: two messages on link %d→%d in round %d",
						m.From, m.To, round)
				}
				next[m.To] = append(next[m.To], m)
				e.Messages++
			}
		}
		for _, load := range linkLoad {
			if load > e.MaxLinkLoad {
				e.MaxLinkLoad = load
			}
		}
		// At most one message per directed link per round, so senders are
		// unique within an inbox and sorting by sender is a total order.
		for _, msgs := range next {
			sort.Slice(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
		}
		e.inboxes = next
	}
	return e.Rounds, fmt.Errorf("sim: no quiescence within %d rounds", maxRounds)
}

func (e *Engine) pendingMessages() int {
	total := 0
	for _, msgs := range e.inboxes {
		total += len(msgs)
	}
	return total
}
