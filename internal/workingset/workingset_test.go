package workingset

import (
	"math"
	"math/rand"
	"testing"
)

// TestFigure2 reproduces the paper's Fig 2: for the access pattern
// e→a, a→k, u→b(?), ..., ending with a repeat of (u, v), the communication
// graph restricted to the window since the last (u, v) communication
// connects exactly 5 distinct nodes to u or v, so T(u, v) = 5.
//
// We use the pattern described in the figure: after (u,v) communicate,
// nodes e, a, k, u, v exchange messages while other pairs (x, y) also
// communicate but stay disconnected from u and v; the repeated (u, v)
// request then has working-set number 5.
func TestFigure2(t *testing.T) {
	// Node indices: u=0, v=1, e=2, a=3, k=4, x=5, y=6, z=7.
	tr := NewTracker(8)
	tr.Record(0, 1) // u ↔ v   (the "last time u and v communicated")
	tr.Record(2, 3) // e ↔ a
	tr.Record(3, 4) // a ↔ k
	tr.Record(4, 0) // k ↔ u   connects {e,a,k} to u
	tr.Record(5, 6) // x ↔ y   unrelated component
	tr.Record(6, 7) // y ↔ z   unrelated component
	got := tr.WorkingSetNumber(0, 1)
	if got != 5 {
		t.Fatalf("T(u,v) = %d, want 5 (e, a, k, u, v)", got)
	}
}

// TestFigure3 checks the working-set bound scenario of Fig 3 / Theorem 1's
// example: U and V communicate, then k-1 other nodes communicate with
// members of the window; the working-set number for the repeat (U, V) is
// k+1, so the distance bound is log2(k+1).
func TestFigure3Scenario(t *testing.T) {
	k := 8
	tr := NewTracker(2 * k)
	tr.Record(0, 1) // U ↔ V at time t'
	// A1..A_{k-1} communicate in a chain hanging off U.
	prev := 0
	for i := 2; i <= k; i++ {
		tr.Record(prev, i)
		prev = i
	}
	got := tr.WorkingSetNumber(0, 1)
	if got != k+1 {
		t.Fatalf("T(U,V) = %d, want %d", got, k+1)
	}
}

func TestFirstTimePairIsN(t *testing.T) {
	tr := NewTracker(10)
	if got := tr.WorkingSetNumber(3, 7); got != 10 {
		t.Fatalf("first-time pair: T = %d, want n = 10", got)
	}
	tr.Record(3, 7)
	if got := tr.WorkingSetNumber(3, 7); got != 2 {
		t.Fatalf("immediate repeat: T = %d, want 2", got)
	}
}

func TestWindowRestriction(t *testing.T) {
	// Communication before the last (u,v) exchange must not count.
	tr := NewTracker(6)
	tr.Record(0, 2) // u ↔ a (old)
	tr.Record(2, 3) // a ↔ b (old)
	tr.Record(0, 1) // u ↔ v  ← window starts here
	tr.Record(0, 4) // u ↔ c (new)
	// Old edges (u,a) and (a,b) are outside the window: a's last
	// communication with u was at time 1 < window start 3.
	if got := tr.WorkingSetNumber(0, 1); got != 3 {
		t.Fatalf("T = %d, want 3 (u, v, c)", got)
	}
	// But if a communicates with u again, it re-enters the window, and
	// the a–b edge is still stale.
	tr.Record(0, 2)
	if got := tr.WorkingSetNumber(0, 1); got != 4 {
		t.Fatalf("T = %d, want 4 (u, v, c, a)", got)
	}
}

func TestSymmetry(t *testing.T) {
	tr := NewTracker(5)
	tr.Record(1, 2)
	if tr.WorkingSetNumber(1, 2) != tr.WorkingSetNumber(2, 1) {
		t.Fatal("working-set number not symmetric")
	}
}

func TestRecordReturnsPreRecordingNumber(t *testing.T) {
	tr := NewTracker(4)
	if got := tr.Record(0, 1); got != 4 {
		t.Fatalf("first Record returned %d, want n = 4", got)
	}
	if got := tr.Record(0, 1); got != 2 {
		t.Fatalf("repeat Record returned %d, want 2", got)
	}
}

func TestBoundAccumulation(t *testing.T) {
	b := NewBound(8)
	b.Add(0, 1) // T = 8 → log2 8 = 3
	b.Add(0, 1) // T = 2 → log2 2 = 1
	want := 3.0 + 1.0
	if math.Abs(b.Total()-want) > 1e-9 {
		t.Fatalf("WS = %f, want %f", b.Total(), want)
	}
	if math.Abs(b.PerRequest()-want/2) > 1e-9 {
		t.Fatalf("per-request = %f", b.PerRequest())
	}
	if b.Count() != 2 {
		t.Fatalf("count = %d", b.Count())
	}
}

// TestRepeatedPairConverges: with only one pair communicating, every
// working-set number after the first is 2, so WS grows by 1 per request.
func TestRepeatedPairConverges(t *testing.T) {
	b := NewBound(100)
	b.Add(10, 20)
	for i := 0; i < 50; i++ {
		if ws := b.Add(10, 20); ws != 2 {
			t.Fatalf("repeat %d: T = %d, want 2", i, ws)
		}
	}
}

// TestWorkingSetMonotoneInActivity: more unrelated-but-connected activity
// between repeats cannot decrease the working-set number.
func TestWorkingSetMonotoneInActivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 20
		extra := rng.Intn(8)
		tr := NewTracker(n)
		tr.Record(0, 1)
		// A connected chain of `extra` communications touching node 0.
		prev := 0
		for i := 0; i < extra; i++ {
			next := 2 + i
			tr.Record(prev, next)
			prev = next
		}
		got := tr.WorkingSetNumber(0, 1)
		if got != 2+extra {
			t.Fatalf("extra=%d: T = %d, want %d", extra, got, 2+extra)
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range node")
		}
	}()
	tr := NewTracker(4)
	tr.WorkingSetNumber(0, 9)
}
