// Package workingset implements the paper's working-set machinery (§III):
// the communication graph, the working-set number T_t(u, v), and the
// working-set bound WS(σ) = Σ log2 T_i(σ_i) (Theorem 1's lower bound on the
// amortized routing cost of any algorithm conforming to the model).
//
// The working-set number for a request (u, v) at time t is defined over the
// communication graph G restricted to the time window that starts at the
// last time u and v communicated with each other and ends at t: it is the
// number of distinct nodes reachable from u or v in that restricted graph.
// If u and v never communicated before, T_t(u, v) = n by definition.
package workingset

import (
	"fmt"
	"math"
)

// pair is an unordered node pair used as a map key.
type pair struct {
	a, b int
}

func mkPair(u, v int) pair {
	if u > v {
		u, v = v, u
	}
	return pair{a: u, b: v}
}

// Tracker maintains the communication history of an n-node system and
// answers working-set-number queries. Memory is O(#distinct pairs).
type Tracker struct {
	n        int
	clock    int
	lastPair map[pair]int   // last time each unordered pair communicated
	adj      map[int][]edge // adjacency with last-communication timestamps
}

type edge struct {
	to   int
	last int // most recent communication time on this edge
}

// NewTracker creates a Tracker for n nodes. Time starts at 1 on the first
// Record call (timestamps are always positive, matching the paper's
// requirement that t > any stored timestamp).
func NewTracker(n int) *Tracker {
	if n < 2 {
		panic(fmt.Sprintf("workingset: need at least 2 nodes, got %d", n))
	}
	return &Tracker{
		n:        n,
		lastPair: make(map[pair]int),
		adj:      make(map[int][]edge),
	}
}

// N returns the number of nodes in the system.
func (t *Tracker) N() int { return t.n }

// Clock returns the current logical time (the number of recorded requests).
func (t *Tracker) Clock() int { return t.clock }

// WorkingSetNumber returns T_{now}(u, v) for the next request (u, v): the
// number of distinct nodes connected to u or v in the communication graph
// restricted to edges whose most recent communication happened at or after
// the last (u, v) communication. Returns n when the pair never communicated.
func (t *Tracker) WorkingSetNumber(u, v int) int {
	t.checkNode(u)
	t.checkNode(v)
	since, ok := t.lastPair[mkPair(u, v)]
	if !ok {
		return t.n
	}
	// BFS from u and v over edges with last >= since. u and v themselves
	// count (they communicated at time since, within the window).
	visited := map[int]bool{u: true, v: true}
	queue := []int{u, v}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, e := range t.adj[x] {
			if e.last >= since && !visited[e.to] {
				visited[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	return len(visited)
}

// Record advances the logical clock and records a communication between u
// and v at the new time. It returns the working-set number the request had
// at the moment it was issued (i.e. computed before recording).
func (t *Tracker) Record(u, v int) int {
	ws := t.WorkingSetNumber(u, v)
	t.clock++
	p := mkPair(u, v)
	t.lastPair[p] = t.clock
	t.bumpEdge(u, v)
	t.bumpEdge(v, u)
	return ws
}

func (t *Tracker) bumpEdge(from, to int) {
	list := t.adj[from]
	for i := range list {
		if list[i].to == to {
			list[i].last = t.clock
			return
		}
	}
	t.adj[from] = append(list, edge{to: to, last: t.clock})
}

func (t *Tracker) checkNode(x int) {
	if x < 0 || x >= t.n {
		panic(fmt.Sprintf("workingset: node %d out of range [0,%d)", x, t.n))
	}
}

// Bound accumulates the working-set bound WS(σ) = Σ log2 T_i(σ_i) for a
// request sequence as it is recorded.
type Bound struct {
	tracker *Tracker
	total   float64
	count   int
}

// NewBound creates a Bound accumulator over n nodes.
func NewBound(n int) *Bound {
	return &Bound{tracker: NewTracker(n)}
}

// Tracker exposes the underlying tracker (shared clock).
func (b *Bound) Tracker() *Tracker { return b.tracker }

// Add records one request and returns its working-set number.
func (b *Bound) Add(u, v int) int {
	ws := b.tracker.Record(u, v)
	b.total += math.Log2(float64(ws))
	b.count++
	return ws
}

// Total returns WS(σ) for the requests recorded so far.
func (b *Bound) Total() float64 { return b.total }

// PerRequest returns WS(σ)/m, the amortized per-request lower bound.
func (b *Bound) PerRequest() float64 {
	if b.count == 0 {
		return 0
	}
	return b.total / float64(b.count)
}

// Count returns the number of requests recorded.
func (b *Bound) Count() int { return b.count }
