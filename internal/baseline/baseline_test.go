package baseline

import (
	"math/rand"
	"testing"
)

func TestStaticRoutes(t *testing.T) {
	s := NewStatic(64, 3)
	if err := s.Graph().Verify(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(64), rng.Intn(64)
		d, err := s.Request(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 {
			t.Fatalf("negative distance %d", d)
		}
	}
	if _, err := s.Request(-1, 0); err == nil {
		t.Error("out-of-range request should fail")
	}
}

func TestStaticNeverAdapts(t *testing.T) {
	s := NewStatic(32, 7)
	d1, _ := s.Request(0, 31)
	for i := 0; i < 50; i++ {
		s.Request(0, 31)
	}
	d2, _ := s.Request(0, 31)
	if d1 != d2 {
		t.Fatalf("static topology changed: %d → %d", d1, d2)
	}
}

func TestSplayNetInvariants(t *testing.T) {
	s := NewSplayNet(63)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		u, v := rng.Intn(63), rng.Intn(63)
		if u == v {
			continue
		}
		d, err := s.Request(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if d < 1 {
			t.Fatalf("distance %d for distinct nodes", d)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("after request %d: %v", i, err)
		}
	}
}

// TestSplayNetRepeatedPair: after serving (u, v), they are adjacent in the
// tree, so the repeat costs exactly 1.
func TestSplayNetRepeatedPair(t *testing.T) {
	s := NewSplayNet(64)
	if _, err := s.Request(5, 40); err != nil {
		t.Fatal(err)
	}
	d, err := s.Request(5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("repeat distance = %d, want 1", d)
	}
}

// TestSplayNetAmortized: on a skewed workload the average distance must
// beat the uniform-workload average (self-adjustment pays off).
func TestSplayNetAmortized(t *testing.T) {
	avg := func(hot bool) float64 {
		s := NewSplayNet(128)
		rng := rand.New(rand.NewSource(9))
		total, count := 0, 0
		for i := 0; i < 2000; i++ {
			var u, v int
			if hot {
				u, v = rng.Intn(8), rng.Intn(8) // hot subset
			} else {
				u, v = rng.Intn(128), rng.Intn(128)
			}
			if u == v {
				continue
			}
			d, err := s.Request(u, v)
			if err != nil {
				t.Fatal(err)
			}
			total += d
			count++
		}
		return float64(total) / float64(count)
	}
	hot, uniform := avg(true), avg(false)
	if hot >= uniform {
		t.Errorf("skewed average %.2f not better than uniform %.2f", hot, uniform)
	}
}

func TestSplayNetBadRequests(t *testing.T) {
	s := NewSplayNet(8)
	for _, rq := range [][2]int{{0, 0}, {-1, 3}, {3, 9}} {
		if _, err := s.Request(rq[0], rq[1]); err == nil {
			t.Errorf("request %v should fail", rq)
		}
	}
}

func TestSplayNetPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSplayNet(1)
}

// TestStaticChurn exercises the dynamic membership path: joins and leaves
// keep the topology verifiable and routable between surviving ids.
func TestStaticChurn(t *testing.T) {
	s := NewStatic(16, 3)
	for i := 0; i < 8; i++ {
		if err := s.Join(int64(16 + i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Leave(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Graph().Verify(); err != nil {
		t.Fatalf("after churn: %v", err)
	}
	if got := s.Graph().RealN(); got != 16 {
		t.Errorf("population %d after balanced churn, want 16", got)
	}
	d, err := s.RouteIDs(8, 23)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 {
		t.Errorf("distance %d", d)
	}
	if err := s.Join(8); err == nil {
		t.Error("double join should fail")
	}
	if err := s.Leave(0); err == nil {
		t.Error("leave of departed node should fail")
	}
	if _, err := s.RouteIDs(0, 8); err == nil {
		t.Error("route from departed node should fail")
	}
}
