// Package baseline implements the comparison systems for the evaluation:
//
//   - Static: a random skip graph — the classic Aspnes-Shah topology DSG
//     starts from — that routes but never adapts, so every request costs
//     the full skip-graph routing distance regardless of the pattern;
//   - SplayNet: the self-adjusting binary-search-tree network of Avin,
//     Haeupler, Lotker, Scheideler & Schmid (IPDPS 2013), the single-BST
//     prior work the paper positions itself against in §II — amortized
//     O(log n) only, with no per-request guarantee.
//
// Experiments E8–E10 compare DSG against both across workload skews.
package baseline
