package baseline

import (
	"fmt"

	"lsasg/internal/skipgraph"
)

// Static is a random skip graph that routes but never adapts. It is the
// "no self-adjustment" baseline: every request costs the full skip-graph
// routing distance regardless of the communication pattern. Membership can
// still change — Join and Leave perform the standard skip-graph node
// insertion/removal with random membership bits (Aspnes-Shah §5) — the
// topology just never adapts to traffic.
type Static struct {
	g        *skipgraph.Graph
	n        int
	brancher skipgraph.Brancher
}

// NewStatic builds a static skip graph over n nodes.
func NewStatic(n int, seed int64) *Static {
	return &Static{
		g:        skipgraph.NewRandom(n, seed),
		n:        n,
		brancher: skipgraph.RandomBrancher(seed + 1),
	}
}

// N returns the node count.
func (s *Static) N() int { return s.n }

// Height returns the skip-graph height.
func (s *Static) Height() int { return s.g.Height() }

// Request routes src → dst and returns the routing distance d_S (the
// number of intermediate nodes). The topology never changes.
func (s *Static) Request(src, dst int) (int, error) {
	if src < 0 || src >= s.n || dst < 0 || dst >= s.n {
		return 0, fmt.Errorf("baseline: index out of range: (%d, %d)", src, dst)
	}
	route, err := s.g.RouteKeys(skipgraph.KeyOf(int64(src)), skipgraph.KeyOf(int64(dst)))
	if err != nil {
		return 0, err
	}
	return route.Distance(), nil
}

// RouteIDs routes between two live node identifiers (key = id), the
// id-addressed form used by dynamic workload traces.
func (s *Static) RouteIDs(src, dst int64) (int, error) {
	route, err := s.g.RouteKeys(skipgraph.KeyOf(src), skipgraph.KeyOf(dst))
	if err != nil {
		return 0, err
	}
	return route.Distance(), nil
}

// Join adds a node with the given identifier via the standard skip-graph
// join with random membership bits.
func (s *Static) Join(id int64) error {
	if s.g.ByKey(skipgraph.KeyOf(id)) != nil {
		return fmt.Errorf("baseline: node %d already present", id)
	}
	s.g.Insert(skipgraph.KeyOf(id), id, s.brancher)
	s.n++
	return nil
}

// Leave removes the node with the given identifier (standard skip-graph
// leave).
func (s *Static) Leave(id int64) error {
	if s.g.Remove(skipgraph.KeyOf(id)) == nil {
		return fmt.Errorf("baseline: node %d not present", id)
	}
	s.n--
	return nil
}

// Graph exposes the underlying topology for verification in tests.
func (s *Static) Graph() *skipgraph.Graph { return s.g }
