package baseline

import (
	"fmt"

	"lsasg/internal/skipgraph"
)

// Static is a random skip graph that routes but never adapts. It is the
// "no self-adjustment" baseline: every request costs the full skip-graph
// routing distance regardless of the communication pattern.
type Static struct {
	g *skipgraph.Graph
	n int
}

// NewStatic builds a static skip graph over n nodes.
func NewStatic(n int, seed int64) *Static {
	return &Static{g: skipgraph.NewRandom(n, seed), n: n}
}

// N returns the node count.
func (s *Static) N() int { return s.n }

// Height returns the skip-graph height.
func (s *Static) Height() int { return s.g.Height() }

// Request routes src → dst and returns the routing distance d_S (the
// number of intermediate nodes). The topology never changes.
func (s *Static) Request(src, dst int) (int, error) {
	if src < 0 || src >= s.n || dst < 0 || dst >= s.n {
		return 0, fmt.Errorf("baseline: index out of range: (%d, %d)", src, dst)
	}
	route, err := s.g.RouteKeys(skipgraph.KeyOf(int64(src)), skipgraph.KeyOf(int64(dst)))
	if err != nil {
		return 0, err
	}
	return route.Distance(), nil
}

// Graph exposes the underlying topology for verification in tests.
func (s *Static) Graph() *skipgraph.Graph { return s.g }
