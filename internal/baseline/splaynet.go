package baseline

import "fmt"

// SplayNet is the self-adjusting binary-search-tree network of Avin et al.
// (IPDPS 2013): nodes are arranged in a BST over their identifiers; a
// request (u, v) costs the tree distance between u and v, after which u is
// splayed to the root of the lowest subtree containing both endpoints and
// v is splayed to u's child on v's side (the "double splay"). SplayNet is
// the paper's closest prior work; unlike DSG it offers only amortized
// (not per-request) O(log n) guarantees and no fault tolerance.
type SplayNet struct {
	n      int
	root   int
	left   []int
	right  []int
	parent []int
}

const nilNode = -1

// NewSplayNet builds a balanced BST over identifiers 0..n-1.
func NewSplayNet(n int) *SplayNet {
	if n < 2 {
		panic(fmt.Sprintf("baseline: SplayNet needs at least 2 nodes, got %d", n))
	}
	s := &SplayNet{
		n:      n,
		left:   make([]int, n),
		right:  make([]int, n),
		parent: make([]int, n),
	}
	for i := range s.left {
		s.left[i], s.right[i], s.parent[i] = nilNode, nilNode, nilNode
	}
	s.root = s.buildBalanced(0, n-1, nilNode)
	return s
}

func (s *SplayNet) buildBalanced(lo, hi, parent int) int {
	if lo > hi {
		return nilNode
	}
	mid := (lo + hi) / 2
	s.parent[mid] = parent
	s.left[mid] = s.buildBalanced(lo, mid-1, mid)
	s.right[mid] = s.buildBalanced(mid+1, hi, mid)
	return mid
}

// N returns the node count.
func (s *SplayNet) N() int { return s.n }

// Request serves (u, v): it returns the current BST distance between u and
// v (number of edges on the tree path, so direct neighbours cost 1), then
// performs the SplayNet double splay.
func (s *SplayNet) Request(u, v int) (int, error) {
	if u < 0 || u >= s.n || v < 0 || v >= s.n || u == v {
		return 0, fmt.Errorf("baseline: bad request (%d, %d)", u, v)
	}
	dist := s.distance(u, v)
	// Double splay: bring u to the root of the lowest subtree containing
	// both endpoints, then v just below it.
	lca := s.lca(u, v)
	lcaParent := s.parent[lca]
	s.splayUnder(u, lcaParent)
	// After the first splay u occupies the old LCA position, so v lies in
	// one of u's subtrees; splay v to u's child.
	if u != v {
		s.splayUnder(v, u)
	}
	return dist, nil
}

// distance returns the number of edges on the tree path u → v.
func (s *SplayNet) distance(u, v int) int {
	du, dv := s.depth(u), s.depth(v)
	x, y := u, v
	dist := 0
	for du > dv {
		x = s.parent[x]
		du--
		dist++
	}
	for dv > du {
		y = s.parent[y]
		dv--
		dist++
	}
	for x != y {
		x = s.parent[x]
		y = s.parent[y]
		dist += 2
	}
	return dist
}

func (s *SplayNet) depth(x int) int {
	d := 0
	for p := s.parent[x]; p != nilNode; p = s.parent[p] {
		d++
	}
	return d
}

// lca returns the lowest common ancestor of u and v. In a BST over
// integer keys it is the first node on the root path whose key lies in
// [min(u,v), max(u,v)].
func (s *SplayNet) lca(u, v int) int {
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	x := s.root
	for {
		switch {
		case hi < x:
			x = s.left[x]
		case lo > x:
			x = s.right[x]
		default:
			return x
		}
	}
}

// splayUnder splays x until its parent is `stop` (nilNode splays to root).
func (s *SplayNet) splayUnder(x, stop int) {
	for s.parent[x] != stop {
		p := s.parent[x]
		g := s.parent[p]
		if g == stop {
			s.rotate(x) // zig
			continue
		}
		if (s.left[g] == p) == (s.left[p] == x) {
			s.rotate(p) // zig-zig
			s.rotate(x)
		} else {
			s.rotate(x) // zig-zag
			s.rotate(x)
		}
	}
}

// rotate lifts x above its parent, preserving BST order.
func (s *SplayNet) rotate(x int) {
	p := s.parent[x]
	if p == nilNode {
		return
	}
	g := s.parent[p]
	if s.left[p] == x {
		s.left[p] = s.right[x]
		if s.right[x] != nilNode {
			s.parent[s.right[x]] = p
		}
		s.right[x] = p
	} else {
		s.right[p] = s.left[x]
		if s.left[x] != nilNode {
			s.parent[s.left[x]] = p
		}
		s.left[x] = p
	}
	s.parent[p] = x
	s.parent[x] = g
	if g == nilNode {
		s.root = x
	} else if s.left[g] == p {
		s.left[g] = x
	} else {
		s.right[g] = x
	}
}

// Verify checks the BST invariants (for tests): parent/child symmetry and
// in-order key order.
func (s *SplayNet) Verify() error {
	seen := 0
	var prev = -1
	var walk func(x int) error
	var check func(x int) error
	check = func(x int) error {
		if x == nilNode {
			return nil
		}
		for _, c := range []int{s.left[x], s.right[x]} {
			if c != nilNode && s.parent[c] != x {
				return fmt.Errorf("node %d: child %d has parent %d", x, c, s.parent[c])
			}
		}
		if err := check(s.left[x]); err != nil {
			return err
		}
		return check(s.right[x])
	}
	walk = func(x int) error {
		if x == nilNode {
			return nil
		}
		if err := walk(s.left[x]); err != nil {
			return err
		}
		if x <= prev {
			return fmt.Errorf("in-order violation at %d after %d", x, prev)
		}
		prev = x
		seen++
		return walk(s.right[x])
	}
	if s.parent[s.root] != nilNode {
		return fmt.Errorf("root %d has parent %d", s.root, s.parent[s.root])
	}
	if err := check(s.root); err != nil {
		return err
	}
	if err := walk(s.root); err != nil {
		return err
	}
	if seen != s.n {
		return fmt.Errorf("walked %d nodes, want %d", seen, s.n)
	}
	return nil
}
