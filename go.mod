module lsasg

go 1.24
