package lsasg

import (
	"context"
	"fmt"

	"lsasg/internal/core"
	"lsasg/internal/serve"
	"lsasg/internal/skipgraph"
)

// This file is the public KV data plane: every node index doubles as a key
// that can hold one versioned value, and the point operations adjust the
// topology exactly like communication requests — a Get or Put of key k from
// origin o is the access σ=(o,k) of the paper, feeding the same
// transformation and scoped a-balance repair. Put of an absent key joins
// it; Delete leaves it; Scan reads the sorted level-0 run without
// adjusting. Both Network and ShardedNetwork expose the same surface: a
// synchronous API (Get/Put/Delete/Scan) and a batched deterministic one
// (ServeOps).

// OpKind discriminates a public op envelope. RouteKind is the zero value,
// so Op{Src: a, Dst: b} is a plain communication request.
type OpKind uint8

const (
	// RouteKind is a pure communication request between two live keys.
	RouteKind OpKind = iota
	// GetKind reads Dst's value from the batch's topology snapshot.
	GetKind
	// PutKind writes Value to Dst (update, or join when absent).
	PutKind
	// DeleteKind removes Dst from the keyspace (a tracked leave).
	DeleteKind
	// ScanKind reads up to Limit entries starting at the first key ≥ Dst.
	ScanKind
)

// Op is one request envelope consumed by ServeOps.
type Op struct {
	Kind     OpKind
	Src, Dst int
	Value    []byte
	Limit    int
}

// RouteOp builds a communication request: route Src→Dst and adjust.
func RouteOp(src, dst int) Op { return Op{Kind: RouteKind, Src: src, Dst: dst} }

// GetOp builds a read of key from origin src.
func GetOp(src, key int) Op { return Op{Kind: GetKind, Src: src, Dst: key} }

// PutOp builds a write of value to key from origin src.
func PutOp(src, key int, value []byte) Op {
	return Op{Kind: PutKind, Src: src, Dst: key, Value: value}
}

// DeleteOp builds a removal of key, requested by src.
func DeleteOp(src, key int) Op { return Op{Kind: DeleteKind, Src: src, Dst: key} }

// ScanOp builds a range read of up to limit entries from the first key ≥
// start, requested by origin src. Like every other op, a scan carries its
// origin: src flows into the working-set bookkeeping (a scan from src
// starting at k is the access (src, k)), though scans remain read-only and
// never adjust the topology.
func ScanOp(src, start, limit int) Op {
	return Op{Kind: ScanKind, Src: src, Dst: start, Limit: limit}
}

// LegacyScanOp builds a range read with the scan's start doubling as its
// origin — the pre-origin envelope shape, a self-access with no working-set
// effect.
//
// Deprecated: use ScanOp(src, start, limit), which carries an explicit
// origin like every other op. LegacyScanOp will be removed in the next
// release.
func LegacyScanOp(start, limit int) Op { return ScanOp(start, start, limit) }

// KV is one scanned entry: a key, its value, and the version the value was
// written at. The value slice is immutable — treat it as read-only.
type KV struct {
	Key     int
	Value   []byte
	Version int64
}

// OpResult is one op's outcome, delivered by ServeOps in request order.
type OpResult struct {
	Op      Op
	Found   bool   // GetKind: key held a value at the read epoch
	Value   []byte // GetKind: the value read
	Version int64  // GetKind: version read; PutKind: version written
	Existed bool   // PutKind: overwrote; DeleteKind: removed something
	Entries []KV   // ScanKind: the stitched range read

	// RouteDistance and RouteHops measure the op's access path in the
	// snapshot it routed against (0 for scans, which read without routing).
	// On a sharded run they cover the destination-shard access leg plus the
	// boundary intermediates and forwarding hops of a cross-shard access.
	RouteDistance int
	RouteHops     int
	// AdjustLag is the number of adjustments pending when the op was routed
	// (its own included) — the worst single leg's lag on a sharded run.
	AdjustLag int
}

func kvEntries(es []skipgraph.Entry) []KV {
	if len(es) == 0 {
		return nil
	}
	out := make([]KV, len(es))
	for i, e := range es {
		out[i] = KV{Key: int(e.ID), Value: e.Value, Version: e.Version}
	}
	return out
}

func (op Op) internal() core.Op {
	return core.Op{
		Kind:  core.OpKind(op.Kind),
		Src:   int64(op.Src),
		Dst:   int64(op.Dst),
		Value: op.Value,
		Limit: op.Limit,
	}
}

// Validate checks the envelope against the fixed key space [0, n): every
// endpoint must be in range (a scan's origin included) and a route must
// connect two distinct keys. Out-of-range endpoints report
// errors.Is(err, ErrOutOfRange). The wire server validates envelopes with
// it before feeding them to a pipeline; library producers may use it to
// pre-flight ops before ServeOps aborts a run on them.
func (op Op) Validate(n int) error {
	if op.Kind > ScanKind {
		return fmt.Errorf("lsasg: unknown op kind %d", op.Kind)
	}
	if op.Dst < 0 || op.Dst >= n {
		return fmt.Errorf("%w: key %d not in [0, %d)", ErrOutOfRange, op.Dst, n)
	}
	if op.Src < 0 || op.Src >= n {
		return fmt.Errorf("%w: key %d not in [0, %d)", ErrOutOfRange, op.Src, n)
	}
	if op.Kind == RouteKind && op.Src == op.Dst {
		return fmt.Errorf("lsasg: source and destination are both %d", op.Src)
	}
	return nil
}

// Get reads key's value as an access from src: the value (with its version)
// comes back, and the topology adapts to the access exactly as a Request
// would make it. found is false when the key is absent, crashed, or was
// never written. Not safe for concurrent use with other Network methods.
func (nw *Network) Get(src, key int) (value []byte, version int64, found bool, err error) {
	if err := GetOp(src, key).Validate(nw.n); err != nil {
		return nil, 0, false, err
	}
	res, err := nw.dsg.ApplyOp(core.Op{Kind: core.OpGet, Src: int64(src), Dst: int64(key)})
	if err != nil {
		return nil, 0, false, wrapErr(err)
	}
	nw.noteKVAccess(src, key)
	return res.Value, res.Version, res.Found, nil
}

// Put writes value to key as an access from src. An absent key joins the
// topology (a tracked join with scoped balance repair); a crashed key is
// repaired and rejoined fresh. Returns the version assigned to the write
// and whether the key already held a live record.
func (nw *Network) Put(src, key int, value []byte) (version int64, existed bool, err error) {
	if err := PutOp(src, key, value).Validate(nw.n); err != nil {
		return 0, false, err
	}
	res, err := nw.dsg.ApplyOp(core.Op{Kind: core.OpPut, Src: int64(src), Dst: int64(key), Value: value})
	if err != nil {
		return 0, false, wrapErr(err)
	}
	nw.noteKVAccess(src, key)
	return res.Version, res.Existed, nil
}

// Delete removes key from the keyspace — a tracked leave with scoped
// balance repair (or a crash repair when the key is dead). Deleting an
// absent key is a no-op with existed == false.
func (nw *Network) Delete(src, key int) (existed bool, err error) {
	if err := DeleteOp(src, key).Validate(nw.n); err != nil {
		return false, err
	}
	res, err := nw.dsg.ApplyOp(core.Op{Kind: core.OpDelete, Src: int64(src), Dst: int64(key)})
	if err != nil {
		return false, wrapErr(err)
	}
	nw.noteKVAccess(src, key)
	return res.Existed, nil
}

// Scan reads up to limit value-bearing entries in ascending key order,
// starting at the first key ≥ start, requested by origin src. Read-only:
// the topology does not adjust, but the access feeds the working-set
// bookkeeping like any other op.
func (nw *Network) Scan(src, start, limit int) ([]KV, error) {
	if err := ScanOp(src, start, limit).Validate(nw.n); err != nil {
		return nil, err
	}
	res, err := nw.dsg.ApplyOp(core.Op{Kind: core.OpScan, Dst: int64(start), Limit: limit})
	if err != nil {
		return nil, wrapErr(err)
	}
	nw.noteKVAccess(src, start)
	return kvEntries(res.Entries), nil
}

// noteKVAccess is Request's sequence-order bookkeeping for a synchronous KV
// access.
func (nw *Network) noteKVAccess(src, key int) {
	if nw.ws != nil && src != key {
		nw.ws.Add(src, key)
	}
	nw.requests++
}

// ServeOps consumes op envelopes — routes and KV operations — until the
// channel closes (or ctx is cancelled) and serves them through the same
// deterministic engine pipeline as Serve: Get and Scan read lock-free from
// the batch's immutable snapshot while the adjuster applies every mutation
// (including Put-joins and Delete-leaves) in request order. onResult, when
// non-nil, receives each op's outcome in request order. The producer
// contract matches Serve's.
func (nw *Network) ServeOps(ctx context.Context, ops <-chan Op, onResult func(OpResult)) (ServeStats, error) {
	eng := serve.New(nw.dsg, serve.Config{
		Parallelism: nw.parallelism,
		BatchSize:   nw.batchSize,
		Tracer:      nw.tracer,
		OnResult: func(r serve.Result) {
			// Sequence-order bookkeeping, identical to Request's. Every op
			// feeds the working set — a scan is the access (src, start) —
			// but only routed accesses carry distance samples into Stats.
			if nw.ws != nil && r.Op.Src != r.Op.Dst {
				nw.ws.Add(int(r.Op.Src), int(r.Op.Dst))
			}
			if r.Op.Kind != core.OpScan {
				nw.totalRouteDistance += int64(r.RouteDistance)
				nw.totalTransformRounds += int64(r.TransformRounds)
				if r.RouteDistance > nw.maxRouteDistance {
					nw.maxRouteDistance = r.RouteDistance
				}
			}
			nw.requests++
			if onResult != nil {
				onResult(OpResult{
					Op:            opFromInternal(r.Op),
					Found:         r.Found,
					Value:         r.Value,
					Version:       r.Version,
					Existed:       r.Existed,
					Entries:       kvEntries(r.Entries),
					RouteDistance: r.RouteDistance,
					RouteHops:     r.RouteHops,
					AdjustLag:     r.AdjustLag,
				})
			}
		},
	})
	st, err := runServeOps(ops, nw.n, func(inner <-chan core.Op) (serve.Stats, error) {
		return eng.Serve(ctx, inner)
	})
	return engineServeStats(st, nw.dsg.Graph().Height(), nw.dsg.DummyCount()), err
}

func opFromInternal(op core.Op) Op {
	return Op{
		Kind:  OpKind(op.Kind),
		Src:   int(op.Src),
		Dst:   int(op.Dst),
		Value: op.Value,
		Limit: op.Limit,
	}
}
