package lsasg

import (
	"context"
	"fmt"
	"testing"
)

// Public-surface tests for the KV data plane: the synchronous
// Get/Put/Delete/Scan API and the batched ServeOps pipeline, on both the
// single-graph Network and the sharded service.

func TestNetworkKVRoundTrip(t *testing.T) {
	nw, err := New(16, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}

	// Never-written keys miss.
	if _, _, found, err := nw.Get(0, 9); err != nil || found {
		t.Fatalf("get of unwritten key: found=%v err=%v", found, err)
	}

	ver, existed, err := nw.Put(0, 9, []byte("hello"))
	if err != nil || !existed || ver != 1 {
		t.Fatalf("put: version=%d existed=%v err=%v", ver, existed, err)
	}
	val, rver, found, err := nw.Get(3, 9)
	if err != nil || !found || string(val) != "hello" || rver != ver {
		t.Fatalf("get after put: %q v%d found=%v err=%v", val, rver, found, err)
	}

	// Overwrite bumps the version.
	ver2, existed, err := nw.Put(0, 9, []byte("world"))
	if err != nil || !existed || ver2 <= ver {
		t.Fatalf("overwrite: version=%d existed=%v err=%v", ver2, existed, err)
	}

	// Delete leaves the keyspace; a repeat is an idempotent miss; a put
	// re-joins the key fresh.
	if existed, err := nw.Delete(0, 9); err != nil || !existed {
		t.Fatalf("delete: existed=%v err=%v", existed, err)
	}
	if existed, err := nw.Delete(0, 9); err != nil || existed {
		t.Fatalf("second delete: existed=%v err=%v", existed, err)
	}
	if _, existed, err := nw.Put(1, 9, []byte("again")); err != nil || existed {
		t.Fatalf("put after delete: existed=%v err=%v", existed, err)
	}
	if err := nw.Verify(); err != nil {
		t.Fatal(err)
	}

	// KV accesses count as requests and feed the working-set tracker.
	if nw.Requests() == 0 {
		t.Error("KV traffic not reflected in Requests()")
	}
}

func TestNetworkScan(t *testing.T) {
	nw, err := New(16, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{12, 3, 7} {
		if _, _, err := nw.Put(0, k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := nw.Scan(1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 3 || kvs[0].Key != 3 || kvs[1].Key != 7 || kvs[2].Key != 12 {
		t.Fatalf("scan = %v, want keys [3 7 12]", kvs)
	}
	kvs, err = nw.Scan(1, 4, 1)
	if err != nil || len(kvs) != 1 || kvs[0].Key != 7 {
		t.Fatalf("scan(1,4,1) = %v, %v", kvs, err)
	}
}

func TestNetworkKVErrors(t *testing.T) {
	nw, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := nw.Get(0, 8); err == nil {
		t.Error("get of out-of-range key must fail")
	}
	if _, _, err := nw.Put(-1, 3, nil); err == nil {
		t.Error("put from out-of-range origin must fail")
	}
	if _, err := nw.Delete(0, -1); err == nil {
		t.Error("delete of negative key must fail")
	}
	if _, err := nw.Scan(0, 9, 1); err == nil {
		t.Error("scan start out of range must fail")
	}
	if _, err := nw.Scan(8, 0, 1); err == nil {
		t.Error("scan origin out of range must fail")
	}
}

// TestNetworkServeOps runs a mixed op batch through the deterministic
// pipeline: results arrive in request order with the right outcomes, and the
// KV stats add up.
func TestNetworkServeOps(t *testing.T) {
	// BatchSize 1 publishes a snapshot per op, so each read observes every
	// earlier op — the simplest deterministic read point to assert against.
	nw, err := New(32, WithSeed(4), WithBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		PutOp(1, 10, []byte("a")),
		PutOp(2, 20, []byte("b")),
		RouteOp(3, 17),
		GetOp(4, 10),
		GetOp(4, 11), // never written: miss
		ScanOp(7, 0, 32),
		DeleteOp(5, 20),
		GetOp(6, 20), // after the delete's snapshot: miss
	}
	ch := make(chan Op)
	go func() {
		defer close(ch)
		for _, op := range ops {
			ch <- op
		}
	}()
	var results []OpResult
	st, err := nw.ServeOps(context.Background(), ch, func(r OpResult) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ops) {
		t.Fatalf("%d results for %d ops", len(results), len(ops))
	}
	for i, r := range results {
		if r.Op.Kind != ops[i].Kind || r.Op.Dst != ops[i].Dst {
			t.Fatalf("result %d is for %+v, want %+v", i, r.Op, ops[i])
		}
	}
	if !results[0].Existed || results[0].Version != 1 {
		t.Errorf("put result: %+v", results[0])
	}
	if !results[3].Found || string(results[3].Value) != "a" {
		t.Errorf("pipelined get of 10: %+v", results[3])
	}
	if results[4].Found {
		t.Errorf("get of unwritten key hit: %+v", results[4])
	}
	if len(results[5].Entries) != 2 {
		t.Errorf("scan saw %d records, want 2", len(results[5].Entries))
	}
	if !results[6].Existed {
		t.Errorf("delete of live key: %+v", results[6])
	}
	if results[7].Found {
		t.Errorf("get after delete hit: %+v", results[7])
	}
	if st.Requests != int64(len(ops)) || st.Gets != 3 || st.GetHits != 1 || st.Puts != 2 || st.Deletes != 1 || st.Scans != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.ScannedEntries != 2 || st.DeleteHits != 1 || st.PutInserts != 0 {
		t.Errorf("KV stat details: %+v", st)
	}
	if err := nw.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedKVRoundTrip exercises the same synchronous surface through the
// shard directory, including cross-shard point ops and boundary-spanning
// scans.
func TestShardedKVRoundTrip(t *testing.T) {
	nw, err := NewSharded(32, WithShards(4), WithSeed(2)) // 8 keys per shard
	if err != nil {
		t.Fatal(err)
	}
	// Cross-shard put: origin in shard 0, key in shard 3.
	if _, existed, err := nw.Put(1, 30, []byte("far")); err != nil || !existed {
		t.Fatalf("cross-shard put: existed=%v err=%v", existed, err)
	}
	val, _, found, err := nw.Get(2, 30)
	if err != nil || !found || string(val) != "far" {
		t.Fatalf("cross-shard get: %q found=%v err=%v", val, found, err)
	}

	// Values on both sides of a shard boundary; the stitched scan spans it.
	if _, _, err := nw.Put(0, 7, []byte("lo")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := nw.Put(0, 8, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	kvs, err := nw.Scan(1, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 3 || kvs[0].Key != 7 || kvs[1].Key != 8 || kvs[2].Key != 30 {
		t.Fatalf("stitched scan = %v, want keys [7 8 30]", kvs)
	}

	if existed, err := nw.Delete(3, 30); err != nil || !existed {
		t.Fatalf("cross-shard delete: existed=%v err=%v", existed, err)
	}
	if _, _, found, _ := nw.Get(2, 30); found {
		t.Error("deleted key still readable")
	}
	if _, _, _, err := nw.Get(0, 99); err == nil {
		t.Error("out-of-range key must fail on the sharded surface too")
	}
}

// TestShardedServeOpsCrossShardScan drives the pipelined sharded surface
// with a KV mix whose scans span shards, and checks the stitched outcomes
// and books.
func TestShardedServeOpsCrossShardScan(t *testing.T) {
	nw, err := NewSharded(32, WithShards(4), WithSeed(6), WithBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	var ops []Op
	for k := 0; k < 32; k += 4 {
		ops = append(ops, PutOp((k+1)%32, k, []byte(fmt.Sprintf("v%d", k))))
	}
	ops = append(ops, ScanOp(1, 2, 6)) // spans shards 0..3: keys 4,8,...,24
	ops = append(ops, ScanOp(1, 30, 8))
	ch := make(chan Op)
	go func() {
		defer close(ch)
		for _, op := range ops {
			ch <- op
		}
	}()
	var scans [][]KV
	st, err := nw.ServeOps(context.Background(), ch, func(r OpResult) {
		if r.Op.Kind == ScanKind {
			scans = append(scans, r.Entries)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scans) != 2 {
		t.Fatalf("%d scan outcomes, want 2", len(scans))
	}
	if len(scans[0]) != 6 {
		t.Fatalf("spanning scan = %v, want 6 entries", scans[0])
	}
	for i, kv := range scans[0] {
		if want := 4 + 4*i; kv.Key != want || string(kv.Value) != fmt.Sprintf("v%d", want) {
			t.Errorf("scan position %d = (%d, %q), want key %d", i, kv.Key, kv.Value, want)
		}
	}
	if len(scans[1]) != 0 {
		t.Errorf("tail scan past the last record = %v, want empty", scans[1])
	}
	if st.Puts != 8 || st.PutInserts != 0 || st.Scans != 2 || st.ScannedEntries != 6 {
		t.Errorf("sharded KV stats: %+v", st)
	}
	if st.Shards != 4 {
		t.Errorf("stats report %d shards", st.Shards)
	}
}
