// Package lsasg is a Go implementation of Locally Self-Adjusting Skip
// Graphs (Huq and Ghosh, ICDCS 2017): a distributed self-adjusting skip
// graph (DSG) that serves communication requests with the standard
// skip-graph routing and then locally and partially rebuilds the topology
// so that frequently communicating nodes drift together, while preserving
// O(log n) height (and therefore O(log n) worst-case routing) for every
// individual request.
//
// The entry point is Network:
//
//	nw, _ := lsasg.New(64)
//	res, _ := nw.Request(3, 41) // route 3 → 41, then self-adjust
//	fmt.Println(res.RouteDistance, res.ServiceCost)
//
// Repeated communication between the same (or nearby, in the working-set
// sense) pairs becomes cheap: after one request the pair is directly
// linked, and the amortized routing cost tracks the paper's working-set
// bound WS(σ) within a constant factor.
package lsasg

import (
	"fmt"
	"io"

	"lsasg/internal/core"
	"lsasg/internal/obs"
	"lsasg/internal/skipgraph"
	"lsasg/internal/workingset"
)

// Option configures a Network.
type Option func(*options)

type options struct {
	balance         int
	seed            int64
	checkInvariants bool
	exactMedian     bool
	trackWorkingSet bool
	parallelism     int
	batchSize       int
	shards          int
	rebalanceWindow int
	trace           bool
}

// WithBalance sets the a-balance parameter (≥ 2). Larger values reduce
// dummy-node overhead but loosen the per-level balance guarantee; the
// search-path bound is a·H. The default is 4.
func WithBalance(a int) Option {
	return func(o *options) { o.balance = a }
}

// WithSeed fixes the random seed (AMF skip lists, initial topology).
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithInvariantChecks enables full structural verification after every
// request. Intended for tests; it is O(n·H) per request.
func WithInvariantChecks() Option {
	return func(o *options) { o.checkInvariants = true }
}

// WithExactMedian replaces the randomized AMF subroutine with an exact
// median (idealized O(log n)-round cost). Useful to isolate approximation
// effects in experiments.
func WithExactMedian() Option {
	return func(o *options) { o.exactMedian = true }
}

// WithoutWorkingSetTracking disables the built-in working-set bookkeeping
// (which costs O(edges) memory and BFS time per request).
func WithoutWorkingSetTracking() Option {
	return func(o *options) { o.trackWorkingSet = false }
}

// WithParallelism sets the number of routing workers Serve fans requests
// over (default 1). Routing reads an immutable topology snapshot, so workers
// scale across cores without changing any result.
func WithParallelism(p int) Option {
	return func(o *options) { o.parallelism = p }
}

// WithBatchSize sets the number of adjustments Serve applies between
// topology-snapshot publications (default 32). Larger batches amortize the
// snapshot cost but increase the adjustment lag requests observe.
func WithBatchSize(k int) Option {
	return func(o *options) { o.batchSize = k }
}

// WithShards sets the number of partitions a sharded network splits the key
// space across (NewSharded only; default 4). Each shard is an independent
// self-adjusting skip graph with its own adjuster, so aggregate adjustment
// throughput scales with the shard count.
func WithShards(s int) Option {
	return func(o *options) { o.shards = s }
}

// WithRebalanceWindow sets the sharded deterministic pipeline's window
// length in requests (NewSharded only; default 512): after every window the
// shard engines drain to a barrier where KV outcomes are assembled and the
// skew-driven rebalancer may migrate one key range. Smaller windows deliver
// ServeOps outcomes sooner (a window of 1 delivers every op's result before
// the next op dispatches — what a synchronous wire client needs) at the
// cost of more frequent barriers.
func WithRebalanceWindow(w int) Option {
	return func(o *options) { o.rebalanceWindow = w }
}

// WithTracing enables the observability layer (internal/obs): per-verb and
// per-stage latency histograms, retry-event counters, and a slowest-span
// exemplar ring, all threaded through the serving pipelines. The
// measurements are wall-clock and exempt from the deterministic-statistics
// contracts — enabling tracing never changes any Stats or ServeOps result.
// Read the tracer back with Network.Tracer / ShardedNetwork.Tracer.
func WithTracing() Option {
	return func(o *options) { o.trace = true }
}

// Result reports one served request.
type Result struct {
	// RouteDistance is d_S(σ): intermediate nodes on the routing path.
	RouteDistance int
	// RouteHops is RouteDistance + 1: link traversals source → destination.
	RouteHops int
	// TransformRounds is ρ: synchronous rounds of topology adaptation.
	TransformRounds int
	// ServiceCost is the paper's d_S(σ) + ρ + 1.
	ServiceCost int
	// DirectLevel is the level of the new size-2 list holding the pair.
	DirectLevel int
	// WorkingSetNumber is T_t(u, v) at request time (0 when tracking is
	// disabled): n for first-time pairs, small for recent communication.
	WorkingSetNumber int
	// Alpha is the highest level at which the pair shared a list before
	// the transformation.
	Alpha int
	// HeightAfter is the skip-graph height after the transformation.
	HeightAfter int
}

// Network is a self-adjusting skip-graph overlay of n nodes addressed
// 0..n-1. Methods are not safe for concurrent use; the paper's model
// serves requests sequentially. Serve is the concurrent entry point: it
// parallelizes routing internally (over immutable topology snapshots) while
// keeping all adjustment serialized, but the Serve call itself must still
// not overlap other Network methods.
type Network struct {
	dsg *core.DSG
	ws  *workingset.Bound
	n   int

	parallelism int
	batchSize   int
	tracer      *obs.Tracer

	requests             int
	totalRouteDistance   int64
	totalTransformRounds int64
	maxRouteDistance     int
}

// New creates a Network over n ≥ 2 nodes.
func New(n int, opts ...Option) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("lsasg: need at least 2 nodes, got %d", n)
	}
	o := options{balance: 4, seed: 1, trackWorkingSet: true}
	for _, opt := range opts {
		opt(&o)
	}
	cfg := core.Config{A: o.balance, Seed: o.seed, CheckInvariants: o.checkInvariants}
	if o.exactMedian {
		cfg.Finder = core.ExactFinder{}
	}
	nw := &Network{dsg: core.New(n, cfg), n: n, parallelism: o.parallelism, batchSize: o.batchSize}
	if o.trace {
		nw.tracer = obs.NewTracer()
	}
	if o.trackWorkingSet {
		nw.ws = workingset.NewBound(n)
	}
	return nw, nil
}

// Tracer returns the observability tracer when the network was built with
// WithTracing, nil otherwise. A nil tracer is safe everywhere — every
// method no-ops on it.
func (nw *Network) Tracer() *obs.Tracer { return nw.tracer }

// N returns the number of (real) nodes.
func (nw *Network) N() int { return nw.n }

// Height returns the current skip-graph height.
func (nw *Network) Height() int { return nw.dsg.Graph().Height() }

// DummyCount returns the number of dummy (routing-only) nodes currently
// maintaining the a-balance property.
func (nw *Network) DummyCount() int { return nw.dsg.DummyCount() }

// Balance returns the a-balance parameter.
func (nw *Network) Balance() int { return nw.dsg.A() }

// Requests returns the number of requests served.
func (nw *Network) Requests() int { return nw.requests }

// Request serves a communication request from src to dst (distinct node
// indices in [0, N)): it routes in the current topology, then runs the DSG
// transformation that directly links the pair.
func (nw *Network) Request(src, dst int) (Result, error) {
	if err := nw.checkIndex(src); err != nil {
		return Result{}, err
	}
	if err := nw.checkIndex(dst); err != nil {
		return Result{}, err
	}
	if src == dst {
		return Result{}, fmt.Errorf("lsasg: source and destination are both %d", src)
	}
	wsNum := 0
	if nw.ws != nil {
		wsNum = nw.ws.Add(src, dst)
	}
	r, err := nw.dsg.Serve(int64(src), int64(dst))
	if err != nil {
		return Result{}, wrapErr(err)
	}
	nw.requests++
	nw.totalRouteDistance += int64(r.RouteDistance)
	nw.totalTransformRounds += int64(r.TransformRounds)
	if r.RouteDistance > nw.maxRouteDistance {
		nw.maxRouteDistance = r.RouteDistance
	}
	return Result{
		RouteDistance:    r.RouteDistance,
		RouteHops:        r.RouteHops,
		TransformRounds:  r.TransformRounds,
		ServiceCost:      r.ServiceCost(),
		DirectLevel:      r.DirectLevel,
		WorkingSetNumber: wsNum,
		Alpha:            r.Alpha,
		HeightAfter:      r.HeightAfter,
	}, nil
}

// Distance returns the current routing distance d_S(src, dst) without
// adjusting the topology.
func (nw *Network) Distance(src, dst int) (int, error) {
	if err := nw.checkIndex(src); err != nil {
		return 0, err
	}
	if err := nw.checkIndex(dst); err != nil {
		return 0, err
	}
	route, err := nw.dsg.Graph().RouteKeys(skipgraph.KeyOf(int64(src)), skipgraph.KeyOf(int64(dst)))
	if err != nil {
		return 0, wrapErr(err)
	}
	return route.Distance(), nil
}

// DirectlyLinked reports whether src and dst currently share a linked list
// of size two (a direct link) and at which level.
func (nw *Network) DirectlyLinked(src, dst int) (bool, int) {
	u := nw.dsg.NodeByID(int64(src))
	v := nw.dsg.NodeByID(int64(dst))
	if u == nil || v == nil {
		return false, 0
	}
	return nw.dsg.Graph().DirectlyLinked(u, v)
}

// Stats summarizes the served request sequence. The concurrency/sharding
// fields at the bottom carry the stable names documented in internal/serve's
// package comment; they stay zero for configurations that cannot produce
// them (an unsharded Network never sheds, migrates, or rebalances).
type Stats struct {
	Requests             int
	MeanRouteDistance    float64
	MaxRouteDistance     int
	TotalTransformRounds int64
	// WorkingSetBound is WS(σ) = Σ log2 T_i, the paper's lower bound on
	// any conforming algorithm's total routing cost (0 when tracking is
	// disabled).
	WorkingSetBound float64
	Height          int
	DummyCount      int

	// ShedAdjustments counts adjustments dropped by free-running engines
	// because their queue was full. The deterministic Serve pipelines never
	// shed, so this is non-zero only for free-running sharded use.
	ShedAdjustments int64
	// Rebalances counts skew-driven migrations the sharded rebalancer
	// executed; MigratedKeys counts the keys those migrations moved between
	// shards. Both are 0 for an unsharded Network.
	Rebalances   int64
	MigratedKeys int64
}

// Stats returns aggregate statistics for the requests served so far.
func (nw *Network) Stats() Stats {
	s := Stats{
		Requests:             nw.requests,
		MaxRouteDistance:     nw.maxRouteDistance,
		TotalTransformRounds: nw.totalTransformRounds,
		Height:               nw.dsg.Graph().Height(),
		DummyCount:           nw.dsg.DummyCount(),
	}
	if nw.requests > 0 {
		s.MeanRouteDistance = float64(nw.totalRouteDistance) / float64(nw.requests)
	}
	if nw.ws != nil {
		s.WorkingSetBound = nw.ws.Total()
	}
	return s
}

// WorkingSetNumber returns T_t(u, v) for the next request between u and v
// (n for first-time pairs). It returns 0 when tracking is disabled.
func (nw *Network) WorkingSetNumber(u, v int) int {
	if nw.ws == nil {
		return 0
	}
	return nw.ws.Tracker().WorkingSetNumber(u, v)
}

// Verify checks all structural invariants of the current topology.
func (nw *Network) Verify() error { return nw.dsg.Graph().Verify() }

// AddNode joins a new node and returns its index (standard skip-graph
// join; §IV-G). Note that working-set tracking is sized at construction,
// so networks that grow should disable it.
func (nw *Network) AddNode() (int, error) {
	if nw.ws != nil {
		return 0, fmt.Errorf("lsasg: AddNode requires WithoutWorkingSetTracking")
	}
	id := int64(nw.n)
	if _, err := nw.dsg.Add(id); err != nil {
		return 0, wrapErr(err)
	}
	nw.n++
	return int(id), nil
}

// RemoveNode removes a node (standard skip-graph leave; §IV-G). The index
// becomes unroutable; other indices are unaffected.
func (nw *Network) RemoveNode(idx int) error {
	if nw.ws != nil {
		return fmt.Errorf("lsasg: RemoveNode requires WithoutWorkingSetTracking")
	}
	return wrapErr(nw.dsg.RemoveNode(int64(idx)))
}

// Crash injects a crash failure: the node fails in place with dangling
// neighbour references, exactly as if its process died. Requests that run
// into the corpse report ErrDeadNode until a repair splices it out; the
// data plane repairs crashed keys on Put and Delete. Like every other
// method, Crash must not run concurrently with a Serve call.
func (nw *Network) Crash(idx int) error {
	if err := nw.checkIndex(idx); err != nil {
		return err
	}
	return wrapErr(nw.dsg.Crash(int64(idx)))
}

// RenderTopology writes the tree-of-linked-lists view of the current
// topology (the paper's Fig 1(b) layout) to w.
func (nw *Network) RenderTopology(w io.Writer) {
	tree := nw.dsg.Graph().TreeView()
	fmt.Fprint(w, tree.RenderLevels(nil, nil))
}

func (nw *Network) checkIndex(i int) error {
	if i < 0 || i >= nw.n {
		return fmt.Errorf("%w: node index %d not in [0, %d)", ErrOutOfRange, i, nw.n)
	}
	return nil
}
