package lsasg

import (
	"context"
	"encoding/json"
	"testing"
)

// shardedFeed pushes a request list into a channel NewSharded's Serve
// consumes.
func shardedFeed(reqs [][2]int) <-chan Pair {
	ch := make(chan Pair)
	go func() {
		defer close(ch)
		for _, r := range reqs {
			ch <- Pair{Src: r[0], Dst: r[1]}
		}
	}()
	return ch
}

// hotShardTrace concentrates most requests on keys [0, 8) of a 64-key
// space — shard 0 of the default 4-shard split.
func hotShardTrace(m int) [][2]int {
	reqs := make([][2]int, 0, m)
	for i := 0; len(reqs) < m; i++ {
		if i%10 < 8 {
			a, b := i%8, (i+1+i/10)%8
			if a == b {
				b = (b + 1) % 8
			}
			reqs = append(reqs, [2]int{a, b})
		} else {
			a, b := i%64, (i*7+13)%64
			if a == b {
				b = (b + 1) % 64
			}
			reqs = append(reqs, [2]int{a, b})
		}
	}
	return reqs
}

// TestShardedServeDeterministic: the public sharded pipeline is
// deterministic across runs and parallelism settings, and the sharded stat
// fields are populated.
func TestShardedServeDeterministic(t *testing.T) {
	run := func(par int) ServeStats {
		nw, err := NewSharded(64, WithShards(4), WithSeed(5), WithParallelism(par), WithBatchSize(8))
		if err != nil {
			t.Fatal(err)
		}
		st, err := nw.Serve(context.Background(), shardedFeed(hotShardTrace(600)))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := run(1)
	baseJSON, _ := json.Marshal(base)
	for _, par := range []int{2, 4} {
		got := run(par)
		gotJSON, _ := json.Marshal(got)
		if string(gotJSON) != string(baseJSON) {
			t.Errorf("par=%d sharded stats diverge:\n p=1: %s\n p=%d: %s", par, baseJSON, par, gotJSON)
		}
	}
	if base.Requests != 600 || base.Shards != 4 {
		t.Errorf("served %d requests over %d shards", base.Requests, base.Shards)
	}
	if base.CrossShardRequests == 0 {
		t.Error("trace produced no cross-shard requests")
	}
	if base.Height <= 0 || base.MeanRouteDistance <= 0 {
		t.Errorf("degenerate topology stats: %+v", base)
	}
}

// TestShardedStatsPlumbing: rebalance-migration counts flow into Stats()
// under their stable field names, and the working-set bound tracks the
// dispatch order.
func TestShardedStatsPlumbing(t *testing.T) {
	nw, err := NewSharded(64, WithShards(4), WithSeed(5), WithBatchSize(8))
	if err != nil {
		t.Fatal(err)
	}
	serveStats, err := nw.Serve(context.Background(), shardedFeed(hotShardTrace(2000)))
	if err != nil {
		t.Fatal(err)
	}
	if serveStats.Rebalances == 0 || serveStats.MigratedKeys == 0 {
		t.Fatalf("hot-shard trace triggered no rebalance: %+v", serveStats)
	}
	st := nw.Stats()
	if st.Requests != 2000 {
		t.Errorf("Stats.Requests = %d, want 2000", st.Requests)
	}
	if st.Rebalances != serveStats.Rebalances || st.MigratedKeys != serveStats.MigratedKeys {
		t.Errorf("Stats migration counters (%d, %d) disagree with ServeStats (%d, %d)",
			st.Rebalances, st.MigratedKeys, serveStats.Rebalances, serveStats.MigratedKeys)
	}
	if st.ShedAdjustments != 0 {
		t.Errorf("deterministic pipeline shed %d adjustments, want 0", st.ShedAdjustments)
	}
	if st.WorkingSetBound <= 0 {
		t.Error("working-set bound not tracked")
	}
	if nw.DirectoryEpoch() != serveStats.Rebalances {
		t.Errorf("directory epoch %d, want %d", nw.DirectoryEpoch(), serveStats.Rebalances)
	}
	// A plain Network keeps the sharded counters at their zero values.
	plain, err := New(16, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Request(1, 9); err != nil {
		t.Fatal(err)
	}
	ps := plain.Stats()
	if ps.ShedAdjustments != 0 || ps.Rebalances != 0 || ps.MigratedKeys != 0 {
		t.Errorf("unsharded network reports sharded activity: %+v", ps)
	}
}

// TestNewShardedValidation: option and size validation.
func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(4, WithShards(4)); err == nil {
		t.Error("4 keys over 4 shards must fail (needs ≥ 2 per shard)")
	}
	if _, err := NewSharded(64, WithShards(0)); err == nil {
		t.Error("WithShards(0) must fail")
	}
	nw, err := NewSharded(64)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Shards() != 4 {
		t.Errorf("default shard count %d, want 4", nw.Shards())
	}
}
