package lsasg

import (
	"context"

	"lsasg/internal/core"
	"lsasg/internal/shard"
)

// This file is the sharded KV surface: the same Get/Put/Delete/Scan +
// ServeOps API as Network, served across the shard directory. Point ops
// land on the shard owning the key (a cross-shard access adapts the origin
// shard along src→boundary too, exactly like a cross-shard route); Scan
// stitches the shards' level-0 runs in directory order — shard order is key
// order — so a range read spanning shards comes back globally sorted and
// limit-exact.

// Get reads key's value as an access from src. Synchronous: the service
// must not be in free-running mode (Start) or mid-Serve.
func (nw *ShardedNetwork) Get(src, key int) (value []byte, version int64, found bool, err error) {
	if err := checkOp(GetOp(src, key), nw.n); err != nil {
		return nil, 0, false, err
	}
	o, err := nw.svc.Apply(core.Op{Kind: core.OpGet, Src: int64(src), Dst: int64(key)})
	if err != nil {
		return nil, 0, false, err
	}
	nw.noteKVAccess(src, key)
	return o.Value, o.Version, o.Found, nil
}

// Put writes value to key as an access from src; an absent key joins the
// owning shard's topology.
func (nw *ShardedNetwork) Put(src, key int, value []byte) (version int64, existed bool, err error) {
	if err := checkOp(PutOp(src, key, value), nw.n); err != nil {
		return 0, false, err
	}
	o, err := nw.svc.Apply(core.Op{Kind: core.OpPut, Src: int64(src), Dst: int64(key), Value: value})
	if err != nil {
		return 0, false, err
	}
	nw.noteKVAccess(src, key)
	return o.Version, o.Existed, nil
}

// Delete removes key from its owning shard (a tracked leave). Deleting an
// absent key is a no-op with existed == false.
func (nw *ShardedNetwork) Delete(src, key int) (existed bool, err error) {
	if err := checkOp(DeleteOp(src, key), nw.n); err != nil {
		return false, err
	}
	o, err := nw.svc.Apply(core.Op{Kind: core.OpDelete, Src: int64(src), Dst: int64(key)})
	if err != nil {
		return false, err
	}
	nw.noteKVAccess(src, key)
	return o.Existed, nil
}

// Scan reads up to limit value-bearing entries in ascending key order
// starting at the first key ≥ start, stitching across shard boundaries.
func (nw *ShardedNetwork) Scan(start, limit int) ([]KV, error) {
	if err := checkOp(ScanOp(start, limit), nw.n); err != nil {
		return nil, err
	}
	o, err := nw.svc.Apply(core.Op{Kind: core.OpScan, Dst: int64(start), Limit: limit})
	if err != nil {
		return nil, err
	}
	return kvEntries(o.Entries), nil
}

// noteKVAccess is the synchronous KV twin of the OnRequest bookkeeping.
func (nw *ShardedNetwork) noteKVAccess(src, key int) {
	if nw.ws != nil && src != key {
		nw.ws.Add(src, key)
	}
	nw.requests++
}

// ServeOps consumes op envelopes — routes and KV operations — until the
// channel closes (or ctx is cancelled) and serves them through the sharded
// deterministic pipeline. Cross-shard scans fan one leg per intersecting
// shard and stitch the fragments at the window barrier, where every leg has
// completed; onResult, when non-nil, receives each KV op's assembled
// outcome there, in dispatch order (route ops produce no outcome). The
// producer contract matches Serve's.
func (nw *ShardedNetwork) ServeOps(ctx context.Context, ops <-chan Op, onResult func(OpResult)) (ServeStats, error) {
	if onResult != nil {
		nw.onOutcome = func(o shard.Outcome) {
			onResult(OpResult{
				Op:      opFromInternal(o.Op),
				Found:   o.Found,
				Value:   o.Value,
				Version: o.Version,
				Existed: o.Existed,
				Entries: kvEntries(o.Entries),
			})
		}
		defer func() { nw.onOutcome = nil }()
	}
	inner := make(chan core.Op)
	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(inner)
		for {
			select {
			case <-done:
				return
			case op, ok := <-ops:
				if !ok {
					return
				}
				if err := checkOp(op, nw.n); err != nil {
					errc <- err
					return
				}
				select {
				case inner <- op.internal():
				case <-done:
					return
				}
			}
		}
	}()
	st, err := nw.svc.Serve(ctx, inner)
	close(done)
	if err == nil {
		select {
		case err = <-errc:
		default:
		}
	}
	out := nw.serveStatsFrom(st)
	out.Gets = st.Gets
	out.GetHits = st.GetHits
	out.Puts = st.Puts
	out.PutInserts = st.PutInserts
	out.Deletes = st.Deletes
	out.DeleteHits = st.DeleteHits
	out.Scans = st.Scans
	out.ScannedEntries = st.ScannedEntries
	return out, err
}
