package lsasg

import (
	"context"

	"lsasg/internal/core"
	"lsasg/internal/shard"
)

// This file is the sharded KV surface: the same Get/Put/Delete/Scan +
// ServeOps API as Network, served across the shard directory. Point ops
// land on the shard owning the key (a cross-shard access adapts the origin
// shard along src→boundary too, exactly like a cross-shard route); Scan
// stitches the shards' level-0 runs in directory order — shard order is key
// order — so a range read spanning shards comes back globally sorted and
// limit-exact.

// Get reads key's value as an access from src. Synchronous: the service
// must not be in free-running mode (Start) or mid-Serve.
func (nw *ShardedNetwork) Get(src, key int) (value []byte, version int64, found bool, err error) {
	if err := GetOp(src, key).Validate(nw.n); err != nil {
		return nil, 0, false, err
	}
	o, err := nw.svc.Apply(core.Op{Kind: core.OpGet, Src: int64(src), Dst: int64(key)})
	if err != nil {
		return nil, 0, false, wrapErr(err)
	}
	nw.noteKVAccess(src, key)
	return o.Value, o.Version, o.Found, nil
}

// Put writes value to key as an access from src; an absent key joins the
// owning shard's topology.
func (nw *ShardedNetwork) Put(src, key int, value []byte) (version int64, existed bool, err error) {
	if err := PutOp(src, key, value).Validate(nw.n); err != nil {
		return 0, false, err
	}
	o, err := nw.svc.Apply(core.Op{Kind: core.OpPut, Src: int64(src), Dst: int64(key), Value: value})
	if err != nil {
		return 0, false, wrapErr(err)
	}
	nw.noteKVAccess(src, key)
	return o.Version, o.Existed, nil
}

// Delete removes key from its owning shard (a tracked leave). Deleting an
// absent key is a no-op with existed == false.
func (nw *ShardedNetwork) Delete(src, key int) (existed bool, err error) {
	if err := DeleteOp(src, key).Validate(nw.n); err != nil {
		return false, err
	}
	o, err := nw.svc.Apply(core.Op{Kind: core.OpDelete, Src: int64(src), Dst: int64(key)})
	if err != nil {
		return false, wrapErr(err)
	}
	nw.noteKVAccess(src, key)
	return o.Existed, nil
}

// Scan reads up to limit value-bearing entries in ascending key order
// starting at the first key ≥ start, requested by origin src, stitching
// across shard boundaries. Read-only, but the access feeds the working-set
// bookkeeping like any other op.
func (nw *ShardedNetwork) Scan(src, start, limit int) ([]KV, error) {
	if err := ScanOp(src, start, limit).Validate(nw.n); err != nil {
		return nil, err
	}
	o, err := nw.svc.Apply(core.Op{Kind: core.OpScan, Src: int64(src), Dst: int64(start), Limit: limit})
	if err != nil {
		return nil, wrapErr(err)
	}
	nw.noteKVAccess(src, start)
	return kvEntries(o.Entries), nil
}

// noteKVAccess is the synchronous KV twin of the OnRequest bookkeeping.
func (nw *ShardedNetwork) noteKVAccess(src, key int) {
	if nw.ws != nil && src != key {
		nw.ws.Add(src, key)
	}
	nw.requests++
}

// ServeOps consumes op envelopes — routes and KV operations — until the
// channel closes (or ctx is cancelled) and serves them through the sharded
// deterministic pipeline. Cross-shard scans fan one leg per intersecting
// shard and stitch the fragments at the window barrier, where every leg has
// completed; onResult, when non-nil, receives every op's assembled outcome
// there — routes included, matching Network.ServeOps — in dispatch order.
// The producer contract matches Serve's.
func (nw *ShardedNetwork) ServeOps(ctx context.Context, ops <-chan Op, onResult func(OpResult)) (ServeStats, error) {
	if onResult != nil {
		nw.onOutcome = func(o shard.Outcome) {
			onResult(OpResult{
				Op:            opFromInternal(o.Op),
				Found:         o.Found,
				Value:         o.Value,
				Version:       o.Version,
				Existed:       o.Existed,
				Entries:       kvEntries(o.Entries),
				RouteDistance: o.RouteDistance,
				RouteHops:     o.RouteHops,
				AdjustLag:     o.AdjustLag,
			})
		}
		defer func() { nw.onOutcome = nil }()
	}
	st, err := runServeOps(ops, nw.n, func(inner <-chan core.Op) (shard.ServeStats, error) {
		return nw.svc.Serve(ctx, inner)
	})
	return nw.serveStatsFrom(st), err
}
