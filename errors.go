package lsasg

import (
	"errors"

	"lsasg/internal/core"
	"lsasg/internal/skipgraph"
)

// The public error surface: stable sentinels a caller (or a wire client on
// the far side of a connection) can match with errors.Is instead of
// string-matching. Every error leaving the public API that stems from one
// of the known internal conditions carries both the root sentinel and the
// internal error in its chain, so existing errors.Is checks against the
// internal sentinels keep working too.
var (
	// ErrUnknownKey reports an endpoint that is not in the keyspace — it
	// was deleted, it migrated mid-route, or it never existed. Transient
	// during shard migrations: a retry against a fresh directory usually
	// succeeds.
	ErrUnknownKey = errors.New("lsasg: unknown key")

	// ErrDeadNode reports an operation that ran into a crash-failed node
	// before a repair spliced it out. Transient by design: detection
	// enqueues the repair, so a retry after the next snapshot usually
	// succeeds.
	ErrDeadNode = errors.New("lsasg: dead node")

	// ErrOutOfRange reports a key or node index outside [0, N).
	ErrOutOfRange = errors.New("lsasg: index out of range")
)

// wrapErr lifts an internal error into the public error surface: if err's
// chain contains one of the known internal sentinels, the matching root
// sentinel is joined in front of it. Unknown errors pass through untouched.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	switch {
	case errors.Is(err, skipgraph.ErrUnknownKey), errors.Is(err, core.ErrUnknownNode):
		return errors.Join(ErrUnknownKey, err)
	case errors.Is(err, skipgraph.ErrDeadNode), errors.Is(err, core.ErrCrashedNode):
		return errors.Join(ErrDeadNode, err)
	}
	return err
}
