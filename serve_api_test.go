package lsasg

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

func serveAll(t *testing.T, nw *Network, pairs []Pair) ServeStats {
	t.Helper()
	ch := make(chan Pair)
	go func() {
		defer close(ch)
		for _, p := range pairs {
			ch <- p
		}
	}()
	st, err := nw.Serve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func servePairs(n, m int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]Pair, 0, m)
	for len(pairs) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			pairs = append(pairs, Pair{Src: u, Dst: v})
		}
	}
	return pairs
}

// TestServePublicAPI drives the concurrent engine through the public surface
// and checks it feeds the same bookkeeping as Request.
func TestServePublicAPI(t *testing.T) {
	nw, err := New(48, WithSeed(11), WithParallelism(4), WithBatchSize(8))
	if err != nil {
		t.Fatal(err)
	}
	pairs := servePairs(48, 160, 11)
	st := serveAll(t, nw, pairs)

	if st.Requests != 160 || st.Batches != 20 {
		t.Fatalf("served %d requests in %d batches, want 160 in 20", st.Requests, st.Batches)
	}
	if st.MeanAdjustLag != 4.5 || st.MaxAdjustLag != 8 {
		t.Errorf("adjust lag mean/max = %v/%d, want 4.5/8", st.MeanAdjustLag, st.MaxAdjustLag)
	}
	if nw.Requests() != 160 {
		t.Errorf("Network.Requests() = %d after Serve, want 160", nw.Requests())
	}
	agg := nw.Stats()
	if agg.Requests != 160 || agg.WorkingSetBound <= 0 {
		t.Errorf("Stats() not fed by Serve: %+v", agg)
	}
	if err := nw.Verify(); err != nil {
		t.Fatalf("invalid after Serve: %v", err)
	}
	// The served pairs are now adapted: a repeat of the last pair is free.
	last := pairs[len(pairs)-1]
	if d, err := nw.Distance(last.Src, last.Dst); err != nil || d != 0 {
		t.Errorf("last served pair routes at distance %d (err %v), want 0", d, err)
	}
}

// TestServeDeterministicPublic mirrors the engine-level determinism contract
// at the API level: p=1 and p=8 produce identical ServeStats.
func TestServeDeterministicPublic(t *testing.T) {
	run := func(p int) ServeStats {
		nw, err := New(32, WithSeed(4), WithParallelism(p), WithBatchSize(16))
		if err != nil {
			t.Fatal(err)
		}
		return serveAll(t, nw, servePairs(32, 320, 4))
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ServeStats diverge across parallelism:\n p=1: %+v\n p=8: %+v", a, b)
	}
}

// TestServeValidation: invalid pairs abort with an error.
func TestServeValidation(t *testing.T) {
	nw, err := New(8, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Pair{{0, 0}, {-1, 2}, {3, 8}} {
		ch := make(chan Pair, 1)
		ch <- bad
		close(ch)
		if _, err := nw.Serve(context.Background(), ch); err == nil {
			t.Errorf("pair %+v should fail", bad)
		}
	}
}
