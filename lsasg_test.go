package lsasg

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNetworkBasics(t *testing.T) {
	nw, err := New(32, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 32 || nw.Balance() != 4 {
		t.Fatalf("N=%d balance=%d", nw.N(), nw.Balance())
	}
	res, err := nw.Request(3, 29)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkingSetNumber != 32 {
		t.Errorf("first request working set = %d, want 32", res.WorkingSetNumber)
	}
	if res.ServiceCost != res.RouteDistance+res.TransformRounds+1 {
		t.Errorf("service cost mismatch: %+v", res)
	}
	if ok, lvl := nw.DirectlyLinked(3, 29); !ok || lvl < 1 {
		t.Errorf("pair not directly linked (lvl=%d)", lvl)
	}
	d, err := nw.Distance(3, 29)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("post-adjust distance = %d, want 0", d)
	}
	res2, err := nw.Request(3, 29)
	if err != nil {
		t.Fatal(err)
	}
	if res2.WorkingSetNumber != 2 {
		t.Errorf("repeat working set = %d, want 2", res2.WorkingSetNumber)
	}
	if err := nw.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkErrors(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("n=1 should fail")
	}
	nw, _ := New(8, WithSeed(2))
	if _, err := nw.Request(0, 0); err == nil {
		t.Error("self request should fail")
	}
	if _, err := nw.Request(-1, 3); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := nw.Request(3, 8); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := nw.Distance(0, 99); err == nil {
		t.Error("distance to unknown should fail")
	}
}

func TestNetworkStats(t *testing.T) {
	nw, _ := New(16, WithSeed(3), WithInvariantChecks())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		u, v := rng.Intn(16), rng.Intn(16)
		if u == v {
			continue
		}
		if _, err := nw.Request(u, v); err != nil {
			t.Fatal(err)
		}
	}
	s := nw.Stats()
	if s.Requests == 0 || s.MeanRouteDistance < 0 || s.Height < 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.WorkingSetBound <= 0 {
		t.Fatal("working-set bound not accumulated")
	}
	if s.TotalTransformRounds <= 0 {
		t.Fatal("no transformation rounds recorded")
	}
}

func TestExactMedianOption(t *testing.T) {
	nw, _ := New(16, WithSeed(5), WithExactMedian())
	for i := 0; i < 20; i++ {
		if _, err := nw.Request(i%15, 15); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAddRemoveRequiresNoTracking(t *testing.T) {
	nw, _ := New(8, WithSeed(6))
	if _, err := nw.AddNode(); err == nil {
		t.Error("AddNode with tracking should fail")
	}
	nw2, _ := New(8, WithSeed(6), WithoutWorkingSetTracking())
	idx, err := nw2.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 8 {
		t.Fatalf("new index = %d, want 8", idx)
	}
	if _, err := nw2.Request(0, idx); err != nil {
		t.Fatal(err)
	}
	if err := nw2.RemoveNode(idx); err != nil {
		t.Fatal(err)
	}
	if nw2.WorkingSetNumber(0, 1) != 0 {
		t.Error("working-set number should be 0 when tracking disabled")
	}
}

func TestRenderTopology(t *testing.T) {
	nw, _ := New(8, WithSeed(7))
	var sb strings.Builder
	nw.RenderTopology(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "L0: 0 1 2 3 4 5 6 7") {
		t.Fatalf("unexpected topology render:\n%s", out)
	}
	if !strings.Contains(out, "L1:") {
		t.Fatal("missing level 1")
	}
}

func TestBalanceOption(t *testing.T) {
	nw, _ := New(16, WithSeed(8), WithBalance(2))
	if nw.Balance() != 2 {
		t.Fatalf("balance = %d", nw.Balance())
	}
	for i := 1; i < 16; i++ {
		if _, err := nw.Request(0, i); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSelfAdjustmentBeatsStaticOnSkew is the package-level headline check:
// repeated traffic between a small hot set becomes much cheaper than the
// uniform baseline cost.
func TestSelfAdjustmentBeatsStaticOnSkew(t *testing.T) {
	nw, _ := New(64, WithSeed(9))
	rng := rand.New(rand.NewSource(10))
	hot := []int{3, 17, 42}
	// Warm-up: serve hot pairs.
	for i := 0; i < 30; i++ {
		u, v := hot[rng.Intn(3)], hot[rng.Intn(3)]
		if u == v {
			continue
		}
		if _, err := nw.Request(u, v); err != nil {
			t.Fatal(err)
		}
	}
	// After warm-up every hot pair should be within a couple of hops.
	for _, u := range hot {
		for _, v := range hot {
			if u == v {
				continue
			}
			d, err := nw.Distance(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if d > 3 {
				t.Errorf("hot pair (%d,%d) distance %d after warm-up", u, v, d)
			}
		}
	}
}
