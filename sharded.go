package lsasg

import (
	"context"
	"fmt"

	"lsasg/internal/obs"
	"lsasg/internal/shard"
	"lsasg/internal/workingset"
)

// ShardedNetwork is a partitioned self-adjusting skip-graph service: the key
// space 0..n-1 splits across WithShards contiguous ranges, each an
// independent DSG with its own serving engine and adjuster, behind an
// epoch-stamped shard directory. Intra-shard requests are served exactly
// like Network.Serve at size n/S; cross-shard requests route
// source→boundary and boundary→destination in their respective shards plus
// one directory-addressed forwarding hop, so the worst case stays bounded by
// 2·a·H(n/S) + 1: every leg keeps the per-shard a·H(n/S) bound, and the
// total stays O(log n) — within a factor 2 of the single-graph a·H(n)
// guarantee, and below it once S ≥ √n. A skew-driven rebalancer migrates
// contiguous key ranges between adjacent shards when per-shard load skews
// past a threshold.
//
// A ShardedNetwork reuses the Pair/Serve/Stats surface of Network. Like
// Network, its methods must not be called concurrently — all concurrency
// lives inside the service.
type ShardedNetwork struct {
	svc    *shard.Service
	ws     *workingset.Bound
	n      int
	tracer *obs.Tracer

	requests           int64
	crossShard         int64
	totalRouteDistance int64
	totalTransform     int64
	maxLegDistance     int

	// onOutcome is the per-ServeOps result callback; the service's
	// OnOutcome hook (fixed at construction) forwards through it.
	onOutcome func(o shard.Outcome)
}

// NewSharded creates a sharded network over n ≥ 2·shards nodes. It honours
// the same options as New where they apply (WithShards, WithBalance,
// WithSeed, WithParallelism, WithBatchSize, WithoutWorkingSetTracking); the
// shard count defaults to 4.
func NewSharded(n int, opts ...Option) (*ShardedNetwork, error) {
	o := options{balance: 4, seed: 1, trackWorkingSet: true, shards: 4}
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards < 1 {
		return nil, fmt.Errorf("lsasg: need at least 1 shard, got %d", o.shards)
	}
	nw := &ShardedNetwork{n: n}
	if o.trace {
		nw.tracer = obs.NewTracer()
	}
	if o.trackWorkingSet {
		nw.ws = workingset.NewBound(n)
	}
	svc, err := shard.New(n, shard.Config{
		Shards:         o.shards,
		A:              o.balance,
		Seed:           o.seed,
		Parallelism:    o.parallelism,
		BatchSize:      o.batchSize,
		RebalanceEvery: o.rebalanceWindow,
		OnRequest: func(src, dst int64, cross bool) {
			// Sequence-order bookkeeping, mirroring Network.Serve's. KV ops
			// may be self-accesses (src == dst), which the bound tracker
			// has no use for.
			if nw.ws != nil && src != dst {
				nw.ws.Add(int(src), int(dst))
			}
			nw.requests++
			if cross {
				nw.crossShard++
			}
		},
		OnOutcome: func(o shard.Outcome) {
			if nw.onOutcome != nil {
				nw.onOutcome(o)
			}
		},
		Tracer: nw.tracer,
	})
	if err != nil {
		return nil, err
	}
	nw.svc = svc
	return nw, nil
}

// N returns the number of nodes.
func (nw *ShardedNetwork) N() int { return nw.n }

// Tracer returns the observability tracer when the network was built with
// WithTracing, nil otherwise.
func (nw *ShardedNetwork) Tracer() *obs.Tracer { return nw.tracer }

// Shards returns the shard count.
func (nw *ShardedNetwork) Shards() int { return nw.svc.Shards() }

// DirectoryEpoch returns the current shard-directory epoch: 0 at
// construction, +1 per rebalancer migration.
func (nw *ShardedNetwork) DirectoryEpoch() int64 { return nw.svc.Directory().Epoch() }

// Height returns the tallest shard topology.
func (nw *ShardedNetwork) Height() int { return nw.svc.Height() }

// DummyCount sums the dummy populations of all shards.
func (nw *ShardedNetwork) DummyCount() int { return nw.svc.DummyCount() }

// Serve consumes communication requests from the channel until it closes (or
// ctx is cancelled) and serves them through the sharded deterministic
// pipeline: a dispatcher splits each request into per-shard legs feeding S
// concurrent engine pipelines (each with WithParallelism routing workers and
// its own adjuster), and after every load window the rebalancer may migrate
// one contiguous key range between adjacent shards at an engine-idle
// barrier. For a fixed seed, shard count, and request sequence, every
// statistic — including the rebalancing decisions — is deterministic.
//
// The producer contract is the same as Network.Serve: pair every send with
// the same ctx and cancel it once Serve returns.
//
// Serve is exactly ServeOps over a pure-route stream.
func (nw *ShardedNetwork) Serve(ctx context.Context, reqs <-chan Pair) (ServeStats, error) {
	return forwardPairs(ctx, reqs, nw.ServeOps)
}

// serveStatsFrom folds one sharded run's statistics into the public shape
// and advances the network's cumulative counters.
func (nw *ShardedNetwork) serveStatsFrom(st shard.ServeStats) ServeStats {
	nw.totalRouteDistance += st.TotalRouteDistance
	nw.totalTransform += st.TotalTransformRounds
	if int(st.MaxLegDistance) > nw.maxLegDistance {
		nw.maxLegDistance = int(st.MaxLegDistance)
	}
	out := ServeStats{
		Requests:             st.Requests,
		Batches:              st.Batches,
		MaxRouteDistance:     int(st.MaxLegDistance),
		TotalTransformRounds: st.TotalTransformRounds,
		MaxAdjustLag:         st.MaxAdjustLag,
		Height:               st.Height,
		DummyCount:           st.DummyCount,
		Shards:               nw.svc.Shards(),
		CrossShardRequests:   st.Cross,
		Rebalances:           st.Rebalances,
		MigratedKeys:         st.MovedKeys,
		Gets:                 st.Gets,
		GetHits:              st.GetHits,
		Puts:                 st.Puts,
		PutInserts:           st.PutInserts,
		Deletes:              st.Deletes,
		DeleteHits:           st.DeleteHits,
		Scans:                st.Scans,
		ScannedEntries:       st.ScannedEntries,
	}
	if st.Requests > 0 {
		out.MeanRouteDistance = float64(st.TotalRouteDistance) / float64(st.Requests)
	}
	if st.Legs > 0 {
		out.MeanAdjustLag = float64(st.TotalAdjustLag) / float64(st.Legs)
	}
	return out
}

// Stats returns aggregate statistics for the requests served so far, with
// the sharded counters (ShedAdjustments, Rebalances, MigratedKeys) filled in
// under their stable names.
func (nw *ShardedNetwork) Stats() Stats {
	live := nw.svc.Live()
	s := Stats{
		Requests:             int(nw.requests),
		MaxRouteDistance:     nw.maxLegDistance,
		TotalTransformRounds: nw.totalTransform,
		Height:               nw.svc.Height(),
		DummyCount:           nw.svc.DummyCount(),
		ShedAdjustments:      live.Shed,
		Rebalances:           live.Rebalances,
		MigratedKeys:         live.MigratedKeys,
	}
	if nw.requests > 0 {
		s.MeanRouteDistance = float64(nw.totalRouteDistance) / float64(nw.requests)
	}
	if nw.ws != nil {
		s.WorkingSetBound = nw.ws.Total()
	}
	return s
}

// Verify checks all structural invariants of every shard's topology.
func (nw *ShardedNetwork) Verify() error { return nw.svc.Verify() }

// Crash injects a crash failure: the node fails in place on whichever shard
// the current directory assigns it, with dangling neighbour references until
// a repair splices it out. Must not run concurrently with a Serve call.
func (nw *ShardedNetwork) Crash(idx int) error {
	return wrapErr(nw.svc.CrashIdle(int64(idx)))
}
