// Adversary: unlike purely amortized structures (e.g. splay-based
// networks), DSG guarantees O(log n) routing for every individual request
// — the a-balance property caps the search path at a·H even under an
// adversarial sequence designed to maximize working sets. This example
// stresses that guarantee and prints the worst request seen.
package main

import (
	"fmt"
	"log"
	"math"

	"lsasg"
	"lsasg/internal/workload"
)

func main() {
	const (
		n        = 128
		requests = 3000
	)
	nw, err := lsasg.New(n, lsasg.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	reqs := workload.Adversarial{Seed: 11}.Generate(n, requests)

	worst, worstAt := 0, 0
	maxHeight := 0
	for i, r := range reqs {
		res, err := nw.Request(r.Src, r.Dst)
		if err != nil {
			log.Fatal(err)
		}
		if res.RouteDistance > worst {
			worst, worstAt = res.RouteDistance, i
		}
		if res.HeightAfter > maxHeight {
			maxHeight = res.HeightAfter
		}
	}

	st := nw.Stats()
	logBound := nw.Balance() * maxHeight // a·H search-path guarantee
	fmt.Printf("adversarial sequence over %d nodes, %d requests\n\n", n, requests)
	fmt.Printf("mean routing distance: %.2f\n", st.MeanRouteDistance)
	fmt.Printf("worst routing distance: %d (request %d)\n", worst, worstAt)
	fmt.Printf("a·H per-request bound:  %d\n", logBound)
	fmt.Printf("max height observed:    %d (log_1.5 n = %.1f)\n",
		maxHeight, math.Log(float64(n))/math.Log(1.5))
	if worst <= logBound {
		fmt.Println("\nper-request O(log n) guarantee held for the whole sequence ✓")
	} else {
		fmt.Println("\nWARNING: a request exceeded the a·H bound")
	}
}
