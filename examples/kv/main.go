// KV data plane: every node index doubles as a key holding one versioned
// value, and point operations adjust the topology exactly like
// communication requests — a Get or Put of key k from origin o is the
// paper's access σ=(o,k). The tour: synchronous Get/Put/Delete/Scan on a
// single graph (puts of absent keys join, deletes leave), the same surface
// on the sharded service with boundary-spanning scans, and a YCSB-style
// mixed workload batched through the deterministic ServeOps pipeline.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"lsasg"
)

func main() {
	// --- Single graph: the synchronous surface. -------------------------
	nw, err := lsasg.New(64, lsasg.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	ver, existed, _ := nw.Put(3, 29, []byte("hello"))
	fmt.Printf("put 29 from origin 3: version %d (existed=%v)\n", ver, existed)

	// The access adjusted the topology: 3 and 29 now share a direct link,
	// like any communicating pair.
	if linked, lvl := nw.DirectlyLinked(3, 29); linked {
		fmt.Printf("3 and 29 are directly linked at level %d after the access\n", lvl)
	}

	val, ver, found, _ := nw.Get(7, 29)
	fmt.Printf("get 29 from origin 7: %q v%d (found=%v)\n", val, ver, found)

	// Delete is a tracked leave; a put of the departed key re-joins it.
	existed, _ = nw.Delete(3, 29)
	fmt.Printf("delete 29: existed=%v\n", existed)
	_, existed, _ = nw.Put(5, 29, []byte("rejoined"))
	fmt.Printf("put 29 again: existed=%v (false: the put was a tracked join)\n", existed)

	for _, k := range []int{40, 35, 44} {
		nw.Put(0, k, []byte{byte('a' + k%26)})
	}
	kvs, _ := nw.Scan(0, 30, 8)
	fmt.Printf("scan from 30: %d entries, first key %d (sorted level-0 walk)\n\n",
		len(kvs), kvs[0].Key)

	// --- Sharded: same surface, scans stitch across shards. -------------
	const n, shards = 512, 8
	snw, err := lsasg.NewSharded(n, lsasg.WithShards(shards), lsasg.WithSeed(42),
		lsasg.WithParallelism(2), lsasg.WithBatchSize(32))
	if err != nil {
		log.Fatal(err)
	}
	for k := 60; k < 70; k++ { // straddles the shard 0 / shard 1 boundary (64)
		snw.Put((k+1)%n, k, []byte(fmt.Sprintf("v%d", k)))
	}
	kvs, _ = snw.Scan(0, 60, 16)
	fmt.Printf("sharded scan from 60 over %d shards: %d entries, keys %d..%d (boundary-spanning, globally sorted)\n\n",
		snw.Shards(), len(kvs), kvs[0].Key, kvs[len(kvs)-1].Key)

	// --- A YCSB-style mix through the deterministic pipeline. -----------
	// serveMix takes the unified lsasg.Service interface, so the same
	// driver fronts the sharded service here and would front the single
	// graph (or the wire daemon's backing service) unchanged.
	stats, err := serveMix(snw, 8192)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d ops across %d shards: %d gets (%.0f%% hit), %d puts (%d joins), %d deletes, %d scans (%.1f entries avg)\n",
		stats.Requests, stats.Shards,
		stats.Gets, 100*float64(stats.GetHits)/float64(stats.Gets),
		stats.Puts, stats.PutInserts, stats.Deletes,
		stats.Scans, float64(stats.ScannedEntries)/float64(stats.Scans))
	fmt.Printf("cross-shard accesses: %d; rebalancer moved %d keys in %d migrations\n",
		stats.CrossShardRequests, stats.MigratedKeys, stats.Rebalances)
}

// serveMix batches a zipf-skewed mix — 50% reads, 25% updates, 15% scans,
// 10% deletes-then-reinserts — through any lsasg.Service: the hot keys
// drift together exactly as hot communication pairs would.
func serveMix(svc lsasg.Service, total int) (lsasg.ServeStats, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	size := svc.N()
	ops := make(chan lsasg.Op)
	go func() {
		defer close(ops)
		rng := rand.New(rand.NewSource(7))
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(size-1))
		key := func() int { return int(zipf.Uint64()) }
		for i := 0; i < total; i++ {
			var op lsasg.Op
			switch r := rng.Float64(); {
			case r < 0.50:
				op = lsasg.GetOp(rng.Intn(size), key())
			case r < 0.75:
				op = lsasg.PutOp(rng.Intn(size), key(), []byte(fmt.Sprintf("u%d", i)))
			case r < 0.90:
				op = lsasg.ScanOp(rng.Intn(size), key(), 1+rng.Intn(16))
			default:
				k := key()
				op = lsasg.DeleteOp(rng.Intn(size), k)
				if k == op.Src { // deleting the origin itself: make it an update
					op = lsasg.PutOp(op.Src, k, []byte("kept"))
				}
			}
			select {
			case ops <- op:
			case <-ctx.Done():
				return
			}
		}
	}()
	return svc.ServeOps(ctx, ops, nil)
}
